package cqp

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"cqp/internal/catalog"
	"cqp/internal/core"
	"cqp/internal/estimate"
	"cqp/internal/exec"
	"cqp/internal/obs"
	"cqp/internal/prefspace"
	"cqp/internal/rewrite"
	"cqp/internal/storage"
)

// ErrInfeasible reports that no preference subset satisfies the problem's
// constraints (Definition 2 has an empty feasible region for this query and
// profile). The Personalize family wraps it with the concrete problem; test
// with errors.Is.
var ErrInfeasible = errors.New("cqp: no personalized query satisfies the problem")

// Personalizer wires the CQP pipeline of the paper's Figure 2 over one
// database: Preference Space extraction, Parameter Estimation, State Space
// Search, and Personalized Query Construction.
//
// A Personalizer is safe for concurrent use: many goroutines may call the
// Personalize* family while another calls Refresh or Observe. A running
// personalization keeps the estimator it started with; calls that begin
// after a Refresh see the rebuilt statistics.
type Personalizer struct {
	db *storage.DB

	mu      sync.RWMutex // guards est, metrics, acc replacement
	est     *estimate.Estimator
	metrics *obs.Registry
	acc     *obs.Accuracy
	// memoOff disables the per-preference estimate memo on the current and
	// every future estimator (see SetEstimateMemo).
	memoOff bool

	gen atomic.Uint64 // statistics generation, bumped by Refresh
}

// NewPersonalizer builds a personalizer over the database, collecting
// statistics immediately. Call Refresh after bulk-loading more data. It
// panics if the statistics scan fails, which only a persistent backend can
// make happen — serving daemons use NewPersonalizerWith and handle the
// error instead.
func NewPersonalizer(db *DB) *Personalizer {
	p, err := NewPersonalizerWith(db)
	if err != nil {
		panic(err)
	}
	return p
}

// NewPersonalizerWith is NewPersonalizer surfacing statistics-scan
// failures (possible when the database is served by the persistent
// block-store backend) instead of panicking.
func NewPersonalizerWith(db *DB) (*Personalizer, error) {
	p := &Personalizer{db: db}
	if err := p.Refresh(); err != nil {
		return nil, err
	}
	return p, nil
}

// Refresh rebuilds catalog statistics (cardinalities, block counts, value
// frequencies) from the current table contents and advances Generation.
// Safe to call during live traffic: in-flight personalizations finish on
// the statistics they started with. On a failed statistics scan (possible
// only with a persistent backend) the previous estimator stays in place,
// Generation does not advance, and the error is returned.
func (p *Personalizer) Refresh() error {
	cat, err := catalog.Build(p.db)
	if err != nil {
		return fmt.Errorf("cqp: refresh statistics: %w", err)
	}
	est := estimate.New(cat, estimate.DefaultBlockMillis)
	p.mu.Lock()
	p.est = est
	if p.memoOff {
		p.est.DisableMemo()
	}
	if p.metrics != nil {
		p.est.EnableTiming()
		p.est.ObserveMemo(p.metrics)
	}
	p.mu.Unlock()
	p.gen.Add(1)
	return nil
}

// SetEstimateMemo switches the cross-request per-preference estimate memo
// on or off, now and across future Refreshes. It is on by default; the off
// switch exists for A/B benchmarking and incident bisection (cqpd
// -estmemo=false), mirroring Config.NoCoalesce.
func (p *Personalizer) SetEstimateMemo(on bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.memoOff = !on
	if !on {
		p.est.DisableMemo()
	}
}

// EstimateMemoCounts reports the current estimator's memo hit/miss totals
// (zeros while the memo is disabled). Counts reset on Refresh — the memo
// dies with its statistics generation.
func (p *Personalizer) EstimateMemoCounts() (hits, misses int64) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.est.MemoCounts()
}

// Generation returns the statistics generation: 1 after construction,
// incremented by every Refresh. Caches keyed on personalization output
// include it so a Refresh invalidates them.
func (p *Personalizer) Generation() uint64 { return p.gen.Load() }

// Observe attaches a metrics registry to the whole pipeline: storage scans,
// executor unions, search runs and estimator accuracy all record into reg
// from here on. Passing nil detaches (instrumentation reverts to no-ops).
func (p *Personalizer) Observe(reg *obs.Registry) {
	p.mu.Lock()
	p.metrics = reg
	p.db.SetMetrics(reg)
	p.acc = obs.NewAccuracy(reg)
	if reg != nil {
		p.est.EnableTiming()
	}
	p.est.ObserveMemo(reg)
	p.mu.Unlock()
}

// pipeline snapshots the replaceable pipeline state under the read lock so
// one call runs against a coherent (estimator, registry, accuracy) triple
// even when Refresh or Observe swaps them mid-flight.
func (p *Personalizer) pipeline() (*estimate.Estimator, *obs.Registry, *obs.Accuracy) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.est, p.metrics, p.acc
}

// Metrics returns the attached registry (nil when observability is off).
func (p *Personalizer) Metrics() *obs.Registry {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.metrics
}

// EstimatorAccuracy summarizes estimated-versus-actual cost and size over
// the personalized queries executed since Observe.
func (p *Personalizer) EstimatorAccuracy() obs.AccuracySummary {
	p.mu.RLock()
	acc := p.acc
	p.mu.RUnlock()
	return acc.Summary()
}

// options collects per-call settings.
type options struct {
	algorithm string
	maxK      int
	anyMatch  bool
	merge     bool
	budget    int
}

// defaultOptions is the single source of the per-call knob defaults.
// PersonalizeContext, PersonalizeFrontContext and BatchItem.fingerprint
// all resolve options through it, so batch-dedup identity can never drift
// from the defaults the pipeline actually runs — a default changed in one
// site used to silently merge batch items whose effective behavior
// differed.
func defaultOptions() options {
	return options{maxK: 20, budget: 1 << 20}
}

// Option customizes one Personalize call.
type Option func(*options)

// WithAlgorithm selects the Problem-2 search algorithm by its figure name
// (see AlgorithmNames), "PORTFOLIO" to race all five concurrently, or
// "EXHAUSTIVE" for ground-truth enumeration on small K. Default
// C_MaxBounds.
func WithAlgorithm(name string) Option { return func(o *options) { o.algorithm = name } }

// WithMaxK caps the number of preferences extracted from the profile
// (default 20, the paper's default K).
func WithMaxK(k int) Option { return func(o *options) { o.maxK = k } }

// WithAnyMatch builds the personalized query with HAVING COUNT(*) >= 1 and
// doi-ranked results instead of the paper's all-match intersection.
func WithAnyMatch() Option { return func(o *options) { o.anyMatch = true } }

// WithMergedSubQueries combines preferences that share a functional join
// path into one sub-query (the optimization of the paper's footnote 1),
// reducing the personalized query's I/O without changing its all-match
// answer. Incompatible with WithAnyMatch.
func WithMergedSubQueries() Option { return func(o *options) { o.merge = true } }

// WithStateBudget caps the states a search may visit. The default is 2^20
// states, which keeps even the paper's deliberately slow algorithms
// responsive; pass n ≤ 0 for an unlimited (paper-faithful) search.
func WithStateBudget(n int) Option { return func(o *options) { o.budget = n } }

// Result is the outcome of one personalization.
type Result struct {
	// Solution reports the chosen preference subset and its estimated
	// doi/cost/size.
	Solution Solution
	// SQL is the personalized query in the paper's union form.
	SQL string
	// Preferences lists the chosen preferences in profile terms
	// ("doi(<condition>) = <doi>").
	Preferences []string
	// PreferenceDois holds the chosen preferences' degrees of interest,
	// aligned with Preferences.
	PreferenceDois []float64
	// Supreme reports the supreme cost (all K preferences) for context.
	Supreme float64

	db          *storage.DB
	pq          *rewrite.Personalized
	sp          *prefspace.Space
	prob        Problem
	acc         *obs.Accuracy
	blockMillis float64
}

// Execute runs the personalized query on the database, returning ranked
// rows.
func (r *Result) Execute() (*exec.UnionResult, error) {
	return r.ExecuteContext(context.Background())
}

// ExecuteContext is Execute with tracing: when ctx carries a trace it opens
// an "execute" span with one child per sub-query. Every execution also
// feeds the estimator-accuracy tracker (when the personalizer observes a
// registry) with estimated versus actual cost and size — the live
// counterpart of the paper's Figure 15 comparison.
func (r *Result) ExecuteContext(ctx context.Context) (*exec.UnionResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("cqp: execute: %w", err)
	}
	_, span := obs.StartSpan(ctx, "execute")
	res, err := r.pq.ExecuteContext(ctx, r.db)
	span.End()
	if err != nil {
		return nil, err
	}
	span.SetAttr("rows", len(res.Rows))
	span.SetAttr("blocks", res.BlockReads)
	for i, s := range res.Subs {
		span.AddChild(fmt.Sprintf("subquery[%d]", i), s.Elapsed,
			obs.Attr{Key: "rows", Value: fmt.Sprint(s.Rows)},
			obs.Attr{Key: "blocks", Value: fmt.Sprint(s.BlockReads)})
	}
	b := time.Duration(r.blockMillis * float64(time.Millisecond))
	actMS := float64(exec.RealCost(res.BlockReads, res.Elapsed, b)) / float64(time.Millisecond)
	r.acc.Record(r.Solution.Cost, actMS, r.Solution.Size, float64(len(res.Rows)))
	return res, nil
}

// ExecuteTopKContext is ExecuteContext keeping only the k best-ranked
// rows via the executor's bounded heap — the full ranked answer never
// materializes. The accuracy tracker records the kept rows against the
// estimate, so top-k executions still feed Figure 15's comparison.
func (r *Result) ExecuteTopKContext(ctx context.Context, k int) (*exec.UnionResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("cqp: execute: %w", err)
	}
	_, span := obs.StartSpan(ctx, "execute")
	res, err := r.pq.ExecuteTopKContext(ctx, r.db, k)
	span.End()
	if err != nil {
		return nil, err
	}
	span.SetAttr("rows", len(res.Rows))
	span.SetAttr("blocks", res.BlockReads)
	b := time.Duration(r.blockMillis * float64(time.Millisecond))
	actMS := float64(exec.RealCost(res.BlockReads, res.Elapsed, b)) / float64(time.Millisecond)
	r.acc.Record(r.Solution.Cost, actMS, r.Solution.Size, float64(len(res.Rows)))
	return res, nil
}

// Explain renders a human-readable account of the personalization: the
// problem solved, every candidate preference with its parameters, whether
// it was integrated, and how much of each bound the solution consumes.
func (r *Result) Explain() string {
	var b strings.Builder
	fmt.Fprintf(&b, "problem: %s\n", r.prob)
	fmt.Fprintf(&b, "solver:  %s (%d states, %s)\n",
		r.Solution.Stats.Algorithm, r.Solution.Stats.StatesVisited,
		obs.FormatDuration(r.Solution.Stats.Duration))
	chosen := make(map[int]bool, len(r.Solution.Set))
	for _, i := range r.Solution.Set {
		chosen[i] = true
	}
	fmt.Fprintf(&b, "candidates (K = %d, by doi):\n", r.sp.K)
	for i, pref := range r.sp.P {
		mark := " "
		if chosen[i] {
			mark = "*"
		}
		fmt.Fprintf(&b, " %s doi %-8.4f cost %6.0fms  size ×%-7.4f %s\n",
			mark, pref.Doi, pref.Cost, pref.Shrink, pref.Imp.Condition())
	}
	fmt.Fprintf(&b, "solution: %d/%d preferences, doi %.4f, cost %.0f ms, est. size %.1f rows\n",
		len(r.Solution.Set), r.sp.K, r.Solution.Doi, r.Solution.Cost, r.Solution.Size)
	if r.prob.CostMax > 0 {
		fmt.Fprintf(&b, "cost bound: %.0f of %.0f ms used (%.0f%%); all %d preferences would cost %.0f ms\n",
			r.Solution.Cost, r.prob.CostMax, 100*r.Solution.Cost/r.prob.CostMax, r.sp.K, r.Supreme)
	}
	if r.prob.DoiMin > 0 {
		fmt.Fprintf(&b, "doi bound: %.4f against required %.4f\n", r.Solution.Doi, r.prob.DoiMin)
	}
	if r.prob.SizeMin > 0 || r.prob.SizeMax > 0 {
		fmt.Fprintf(&b, "size window: %.1f rows within [%g, %g]\n",
			r.Solution.Size, r.prob.SizeMin, r.prob.SizeMax)
	}
	if r.Solution.Stats.Truncated {
		b.WriteString("note: search hit its state budget; the answer is best-found, not proven optimal\n")
	}
	return b.String()
}

// Personalize runs the CQP pipeline: extract the preferences of profile u
// related to q, search for the optimal subset under the problem's
// objective and constraints, and construct the personalized query.
func (p *Personalizer) Personalize(q *Query, u *Profile, prob Problem, opts ...Option) (*Result, error) {
	return p.PersonalizeContext(context.Background(), q, u, prob, opts...)
}

// PersonalizeContext is Personalize with tracing: when ctx carries a trace
// (see StartTrace), the pipeline records one span per Figure-2 phase —
// prefspace (with the estimator's accumulated share as an "estimate"
// child), search (with one child per raced portfolio algorithm), and
// construct; ExecuteContext adds the execute phase. Without a trace in ctx
// the call behaves exactly like Personalize.
func (p *Personalizer) PersonalizeContext(ctx context.Context, q *Query, u *Profile, prob Problem, opts ...Option) (*Result, error) {
	o := defaultOptions()
	for _, fn := range opts {
		fn(&o)
	}
	if err := q.Validate(p.db.Schema()); err != nil {
		return nil, err
	}
	if err := u.Validate(p.db.Schema()); err != nil {
		return nil, err
	}
	if err := prob.Validate(); err != nil {
		return nil, err
	}
	// Option compatibility is validated up front: rejecting merge+anyMatch
	// only at construction time would waste the whole extraction and search.
	if o.merge && o.anyMatch {
		return nil, fmt.Errorf("cqp: merged sub-queries require all-match semantics")
	}
	est, metrics, acc := p.pipeline()
	start := time.Now()
	ctx, span := obs.StartSpan(ctx, "personalize")
	defer span.End()
	if span != nil {
		// Estimation happens inside prefspace.Build; per-call accounting is
		// what lets the trace carve out the estimate phase.
		est.EnableTiming()
	}
	// Deadline checks sit at the Figure-2 phase boundaries: a canceled or
	// expired context aborts before the next phase starts (the daemon's
	// per-request deadlines ride on this).
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("cqp: personalize: %w", err)
	}

	_, psSpan := obs.StartSpan(ctx, "prefspace")
	calls0, spent0 := est.TimingTotals()
	sp, err := prefspace.BuildContext(ctx, q, u, est, prefspace.Options{
		MaxK:    o.maxK,
		CostMax: prob.CostMax,
	})
	psSpan.End()
	if err != nil {
		return nil, err
	}
	psSpan.SetAttr("k", sp.K)
	if calls1, spent1 := est.TimingTotals(); calls1 > calls0 {
		psSpan.AddChild("estimate", spent1-spent0,
			obs.Attr{Key: "calls", Value: fmt.Sprint(calls1 - calls0)})
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("cqp: personalize: %w", err)
	}

	in := core.FromSpace(sp)
	in.StateBudget = o.budget
	_, searchSpan := obs.StartSpan(ctx, "search")
	sol, err := core.Solve(in, prob, o.algorithm)
	searchSpan.End()
	if err != nil {
		return nil, err
	}
	searchSpan.SetAttr("algorithm", sol.Stats.Algorithm)
	searchSpan.SetAttr("states", sol.Stats.StatesVisited)
	if sol.Stats.Truncated {
		searchSpan.SetAttr("truncated", true)
	}
	for _, st := range sol.Portfolio {
		searchSpan.AddChild(st.Algorithm, st.Duration,
			obs.Attr{Key: "states", Value: fmt.Sprint(st.StatesVisited)},
			obs.Attr{Key: "peak_mem", Value: fmt.Sprint(st.PeakMemBytes)})
	}
	recordSearch(metrics, sol)
	if !sol.Feasible {
		return nil, fmt.Errorf("%w (%s)", ErrInfeasible, prob)
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("cqp: personalize: %w", err)
	}

	chosen := make([]prefspace.Pref, 0, len(sol.Set))
	prefStrs := make([]string, 0, len(sol.Set))
	prefDois := make([]float64, 0, len(sol.Set))
	for _, i := range sol.Set {
		chosen = append(chosen, sp.P[i])
		prefStrs = append(prefStrs, sp.P[i].Imp.String())
		prefDois = append(prefDois, sp.P[i].Doi)
	}
	_, conSpan := obs.StartSpan(ctx, "construct")
	var pq *rewrite.Personalized
	if o.merge {
		pq = rewrite.ConstructMerged(q, chosen, p.db.Schema())
	} else {
		pq = rewrite.Construct(q, chosen, !o.anyMatch)
	}
	conSpan.End()
	conSpan.SetAttr("subqueries", len(pq.Subs))

	if reg := metrics; reg != nil {
		reg.Counter("personalize_total").Inc()
		reg.Histogram("personalize_ms", obs.DurationBucketsMS).
			Observe(float64(time.Since(start)) / float64(time.Millisecond))
	}
	return &Result{
		Solution:       sol,
		SQL:            pq.SQL(),
		Preferences:    prefStrs,
		PreferenceDois: prefDois,
		Supreme:        sp.SupremeCost(),
		db:             p.db,
		pq:             pq,
		sp:             sp,
		prob:           prob,
		acc:            acc,
		blockMillis:    est.BlockMillis,
	}, nil
}

// recordSearch feeds one solve's Stats into the registry, per algorithm —
// the live counterparts of the paper's Figures 12 and 13. Portfolio runs
// record each raced algorithm under its own label as well as the
// aggregate.
func recordSearch(reg *obs.Registry, sol Solution) {
	recordSearchStats(reg, append([]core.Stats{sol.Stats}, sol.Portfolio...)...)
}

// recordSearchStats records per-algorithm search counters; PARETO frontier
// enumerations report through here too.
func recordSearchStats(reg *obs.Registry, stats ...core.Stats) {
	if reg == nil {
		return
	}
	for _, st := range stats {
		algo := st.Algorithm
		reg.Counter("search_solves_total", "algorithm", algo).Inc()
		reg.Counter("search_states_visited_total", "algorithm", algo).Add(int64(st.StatesVisited))
		reg.Counter("search_memo_hits_total", "algorithm", algo).Add(int64(st.MemoHits))
		reg.Gauge("search_queue_high_water", "algorithm", algo).SetMax(int64(st.QueueHighWater))
		reg.Gauge("search_peak_mem_bytes", "algorithm", algo).SetMax(st.PeakMemBytes)
		if st.Truncated {
			reg.Counter("search_truncated_total", "algorithm", algo).Inc()
		}
		reg.Histogram("search_ms", obs.DurationBucketsMS, "algorithm", algo).
			Observe(float64(st.Duration) / float64(time.Millisecond))
	}
}

// FrontPoint is one non-dominated personalized query candidate: no other
// candidate has both higher interest and lower cost.
type FrontPoint struct {
	// Preferences lists the point's preferences in profile terms.
	Preferences []string
	Doi         float64
	CostMS      float64
	Size        float64
	// Knee marks the elbow of the frontier — the default pick when the
	// context provides no explicit bounds.
	Knee bool
}

// Front is a Pareto-frontier menu of personalized query candidates.
type Front struct {
	// Points holds the non-dominated candidates, cheapest first.
	Points []FrontPoint
	// Truncated reports that the frontier search hit its state budget: the
	// menu is best-found, not proven complete. Callers presenting the
	// frontier as exhaustive must check this.
	Truncated bool
	// Stats carries the frontier search's counters (states visited, peak
	// memory, duration), as recorded into the metrics registry.
	Stats SearchStats
}

// PersonalizeFront enumerates the doi/cost Pareto frontier of personalized
// queries — the paper's Section 8 future work ("more than one query
// parameter may be optimized simultaneously") — instead of committing to a
// single Table 1 problem. Optional constraints come from the problem-like
// bounds; maxPoints caps the menu (0 = all).
func (p *Personalizer) PersonalizeFront(q *Query, u *Profile, costMax, sizeMin, sizeMax float64, maxPoints int, opts ...Option) (*Front, error) {
	return p.PersonalizeFrontContext(context.Background(), q, u, costMax, sizeMin, sizeMax, maxPoints, opts...)
}

// PersonalizeFrontContext is PersonalizeFront under a context: a canceled
// or expired ctx aborts the enumeration at the same phase boundaries
// PersonalizeContext checks (before extraction, before the frontier search,
// before construction of the menu).
func (p *Personalizer) PersonalizeFrontContext(ctx context.Context, q *Query, u *Profile, costMax, sizeMin, sizeMax float64, maxPoints int, opts ...Option) (*Front, error) {
	o := defaultOptions()
	for _, fn := range opts {
		fn(&o)
	}
	if err := q.Validate(p.db.Schema()); err != nil {
		return nil, err
	}
	if err := u.Validate(p.db.Schema()); err != nil {
		return nil, err
	}
	est, metrics, _ := p.pipeline()
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("cqp: front: %w", err)
	}
	sp, err := prefspace.BuildContext(ctx, q, u, est, prefspace.Options{MaxK: o.maxK, CostMax: costMax})
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("cqp: front: %w", err)
	}
	in := core.FromSpace(sp)
	in.StateBudget = o.budget
	front, stats := core.ParetoFront(in, core.ParetoOptions{
		CostMax: costMax, SizeMin: sizeMin, SizeMax: sizeMax, MaxPoints: maxPoints,
	})
	recordSearchStats(metrics, stats)
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("cqp: front: %w", err)
	}
	kneeIdx, hasKnee := core.KneeIndex(front)
	out := &Front{Points: make([]FrontPoint, 0, len(front)), Truncated: stats.Truncated, Stats: stats}
	for fi, fp := range front {
		names := make([]string, 0, len(fp.Set))
		for _, i := range fp.Set {
			names = append(names, sp.P[i].Imp.String())
		}
		out.Points = append(out.Points, FrontPoint{
			Preferences: names,
			Doi:         fp.Doi,
			CostMS:      fp.Cost,
			Size:        fp.Size,
			// Marked by frontier index: float equality against the knee's
			// parameters would miss it whenever two points tie.
			Knee: hasKnee && fi == kneeIdx,
		})
	}
	return out, nil
}

// PersonalizeTopK returns the k highest-interest answers for the user: an
// any-match personalization whose results are ranked by the conjunction of
// the preferences each row satisfies, truncated to k rows. This is the
// top-k reading of personalization the paper contrasts CQP with (Section
// 2): a bound on how many answers come back rather than on the query's
// parameters.
func (p *Personalizer) PersonalizeTopK(q *Query, u *Profile, costMax float64, k int, opts ...Option) ([]RankedAnswer, error) {
	return p.PersonalizeTopKContext(context.Background(), q, u, costMax, k, opts...)
}

// PersonalizeTopKContext is PersonalizeTopK under a context: the
// personalization honors ctx at every Figure-2 phase boundary and the
// execution aborts when ctx dies before it starts.
func (p *Personalizer) PersonalizeTopKContext(ctx context.Context, q *Query, u *Profile, costMax float64, k int, opts ...Option) ([]RankedAnswer, error) {
	if k <= 0 {
		return nil, fmt.Errorf("cqp: top-k needs k > 0")
	}
	// Full-slice expression: appending into the caller's backing array
	// would leak WithAnyMatch into a slice the caller may reuse.
	opts = append(opts[:len(opts):len(opts)], WithAnyMatch())
	res, err := p.PersonalizeContext(ctx, q, u, Problem2(costMax), opts...)
	if err != nil {
		return nil, err
	}
	// The bounded-heap execution path: the executor keeps the k best rows
	// as groups stream by and never materializes the full ranked answer.
	rows, err := res.ExecuteTopKContext(ctx, k)
	if err != nil {
		return nil, err
	}
	out := make([]RankedAnswer, 0, k)
	for _, r := range rows.Rows {
		out = append(out, RankedAnswer{Row: r.Key, Doi: r.Doi, Matched: len(r.Matched)})
	}
	return out, nil
}

// RankedAnswer is one row of a top-k personalized answer.
type RankedAnswer struct {
	Row Row
	// Doi scores the row by the preferences it satisfies (Formula 10).
	Doi float64
	// Matched counts the satisfied preferences.
	Matched int
}

// EstimateQuery reports the estimator's (cost ms, size rows) for a plain
// conjunctive query — useful for choosing problem bounds.
func (p *Personalizer) EstimateQuery(q *Query) (costMS, size float64, err error) {
	if err := q.Validate(p.db.Schema()); err != nil {
		return 0, 0, err
	}
	est, _, _ := p.pipeline()
	return est.QueryCost(q), est.QuerySize(q), nil
}

// Evaluate executes a plain conjunctive query on the database.
func (p *Personalizer) Evaluate(q *Query) (*exec.Result, error) {
	return exec.Eval(p.db, q)
}
