package cqp

import (
	"errors"
	"math"
	"strings"
	"testing"
)

// paperDB builds the paper's example movie database through the public API.
func paperDB(t *testing.T) *DB {
	t.Helper()
	s := NewSchema()
	s.MustAddRelation("MOVIE", "mid",
		Column{Name: "mid", Type: Int(0).Kind()},
		Column{Name: "title", Type: Str("").Kind()},
		Column{Name: "year", Type: Int(0).Kind()},
		Column{Name: "duration", Type: Int(0).Kind()},
		Column{Name: "did", Type: Int(0).Kind()})
	s.MustAddRelation("DIRECTOR", "did",
		Column{Name: "did", Type: Int(0).Kind()},
		Column{Name: "name", Type: Str("").Kind()})
	s.MustAddRelation("GENRE", "",
		Column{Name: "mid", Type: Int(0).Kind()},
		Column{Name: "genre", Type: Str("").Kind()})
	s.MustAddJoin("MOVIE.did", "DIRECTOR.did")
	s.MustAddJoin("MOVIE.mid", "GENRE.mid")
	db := NewDB(s, 512)
	d := db.MustTable("DIRECTOR")
	d.MustInsert(Int(1), Str("W. Allen"))
	d.MustInsert(Int(2), Str("S. Kubrick"))
	m := db.MustTable("MOVIE")
	m.MustInsert(Int(1), Str("Bananas"), Int(1971), Int(82), Int(1))
	m.MustInsert(Int(2), Str("Everyone Says I Love You"), Int(1996), Int(101), Int(1))
	m.MustInsert(Int(3), Str("The Shining"), Int(1980), Int(146), Int(2))
	g := db.MustTable("GENRE")
	g.MustInsert(Int(1), Str("comedy"))
	g.MustInsert(Int(2), Str("musical"))
	g.MustInsert(Int(3), Str("horror"))
	return db
}

const figure1 = `
doi(GENRE.genre = 'musical') = 0.5
doi(MOVIE.mid = GENRE.mid) = 0.9
doi(MOVIE.did = DIRECTOR.did) = 1.0
doi(DIRECTOR.name = 'W. Allen') = 0.8
`

func TestEndToEndPaperExample(t *testing.T) {
	db := paperDB(t)
	p := NewPersonalizer(db)
	profile, err := ParseProfile(figure1)
	if err != nil {
		t.Fatal(err)
	}
	q, err := ParseQuery(db.Schema(), "select title from MOVIE")
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Personalize(q, profile, Problem2(10000))
	if err != nil {
		t.Fatal(err)
	}
	// With a generous budget both preferences integrate:
	// doi = 1 − (1−0.8)(1−0.45) = 0.89.
	if math.Abs(res.Solution.Doi-0.89) > 1e-9 {
		t.Errorf("doi = %v, want 0.89", res.Solution.Doi)
	}
	if len(res.Preferences) != 2 {
		t.Errorf("preferences = %v", res.Preferences)
	}
	for _, want := range []string{"UNION ALL", "HAVING COUNT(*) = 2", "W. Allen", "musical"} {
		if !strings.Contains(res.SQL, want) {
			t.Errorf("SQL missing %q:\n%s", want, res.SQL)
		}
	}
	rows, err := res.Execute()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Rows) != 1 || rows.Rows[0].Key[0].String() != "Everyone Says I Love You" {
		t.Errorf("rows = %v", rows.Rows)
	}
}

func TestTightBudgetDropsPreferences(t *testing.T) {
	db := paperDB(t)
	p := NewPersonalizer(db)
	profile, _ := ParseProfile(figure1)
	q, _ := ParseQuery(db.Schema(), "select title from MOVIE")

	est, _, err := p.EstimateQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	// Budget below any single sub-query: personalization degenerates to Q.
	res, err := p.Personalize(q, profile, Problem2(est))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Solution.Set) != 0 || res.SQL != q.SQL() {
		t.Errorf("expected bare query, got %s", res.SQL)
	}
	// Budget below even the base query: the sentinel infeasibility error.
	if _, err := p.Personalize(q, profile, Problem2(est/10)); !errors.Is(err, ErrInfeasible) {
		t.Errorf("infeasible problem: err = %v, want ErrInfeasible", err)
	}
}

func TestAllProblemsThroughFacade(t *testing.T) {
	db := SyntheticMovieDB(400, 1)
	p := NewPersonalizer(db)
	profile := SyntheticProfile(30, 2)
	q, err := ParseQuery(db.Schema(), "SELECT title FROM MOVIE")
	if err != nil {
		t.Fatal(err)
	}
	cost, size, err := p.EstimateQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	problems := []Problem{
		Problem1(1, size),
		Problem2(cost * 20),
		Problem3(cost*20, 1, size),
		Problem4(0.5),
		Problem5(0.5, 1, size),
		Problem6(1, size),
	}
	for i, prob := range problems {
		res, err := p.Personalize(q, profile, prob, WithMaxK(10))
		if err != nil {
			t.Errorf("problem %d (%s): %v", i+1, prob, err)
			continue
		}
		if !res.Solution.Feasible {
			t.Errorf("problem %d: infeasible solution returned", i+1)
		}
		if _, err := res.Execute(); err != nil {
			t.Errorf("problem %d execute: %v", i+1, err)
		}
	}
}

func TestOptions(t *testing.T) {
	db := SyntheticMovieDB(400, 1)
	p := NewPersonalizer(db)
	profile := SyntheticProfile(30, 2)
	q, _ := ParseQuery(db.Schema(), "SELECT title FROM MOVIE")
	cost, _, _ := p.EstimateQuery(q)

	for _, name := range AlgorithmNames() {
		res, err := p.Personalize(q, profile, Problem2(cost*10),
			WithAlgorithm(name), WithMaxK(8), WithStateBudget(100000))
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if len(res.Solution.Set) > 8 {
			t.Errorf("%s: MaxK not honored", name)
		}
	}
	res, err := p.Personalize(q, profile, Problem2(cost*10), WithAnyMatch(), WithMaxK(5))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.SQL, ">= 1") {
		t.Errorf("any-match SQL: %s", res.SQL)
	}
	if _, err := p.Personalize(q, profile, Problem2(cost*10), WithAlgorithm("NOPE")); err == nil {
		t.Error("unknown algorithm must fail")
	}
}

func TestValidationErrors(t *testing.T) {
	db := paperDB(t)
	p := NewPersonalizer(db)
	profile, _ := ParseProfile(figure1)
	q, _ := ParseQuery(db.Schema(), "select title from MOVIE")

	if _, err := p.Personalize(q, profile, Problem{}); err == nil {
		t.Error("invalid problem must fail")
	}
	badProfile := NewProfile()
	if err := badProfile.AddSelection(AttrRef{Relation: "NOPE", Attr: "x"}, 0, Int(1), 0.5); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Personalize(q, badProfile, Problem2(100)); err == nil {
		t.Error("invalid profile must fail")
	}
	badQ := &Query{From: []string{"NOPE"}}
	if _, err := p.Personalize(badQ, profile, Problem2(100)); err == nil {
		t.Error("invalid query must fail")
	}
	if _, _, err := p.EstimateQuery(badQ); err == nil {
		t.Error("EstimateQuery must validate")
	}
}

func TestEvaluatePlainQuery(t *testing.T) {
	db := paperDB(t)
	p := NewPersonalizer(db)
	q, _ := ParseQuery(db.Schema(), "select title from MOVIE where year >= 1980")
	res, err := p.Evaluate(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Errorf("rows = %d", len(res.Rows))
	}
}

func TestRefreshPicksUpNewData(t *testing.T) {
	db := paperDB(t)
	p := NewPersonalizer(db)
	q, _ := ParseQuery(db.Schema(), "select title from MOVIE")
	costBefore, _, _ := p.EstimateQuery(q)
	m := db.MustTable("MOVIE")
	for i := 10; i < 200; i++ {
		m.MustInsert(Int(int64(i)), Str("Filler"), Int(2000), Int(90), Int(1))
	}
	costStale, _, _ := p.EstimateQuery(q)
	if costStale != costBefore {
		t.Error("estimates should be stale before Refresh")
	}
	p.Refresh()
	costAfter, _, _ := p.EstimateQuery(q)
	if costAfter <= costBefore {
		t.Errorf("refresh did not pick up growth: %v -> %v", costBefore, costAfter)
	}
}

func TestPersonalizeFront(t *testing.T) {
	db := SyntheticMovieDB(400, 1)
	p := NewPersonalizer(db)
	profile := SyntheticProfile(30, 2)
	q, _ := ParseQuery(db.Schema(), "SELECT title FROM MOVIE")
	cost, _, _ := p.EstimateQuery(q)

	front, err := p.PersonalizeFront(q, profile, cost*20, 0, 0, 6, WithMaxK(10))
	if err != nil {
		t.Fatal(err)
	}
	pts := front.Points
	if len(pts) == 0 || len(pts) > 6 {
		t.Fatalf("front size = %d", len(pts))
	}
	if front.Truncated {
		t.Error("unbudgeted frontier reported truncated")
	}
	if front.Stats.Algorithm != "PARETO" {
		t.Errorf("front stats algorithm = %q, want PARETO", front.Stats.Algorithm)
	}
	knees := 0
	for i, fp := range pts {
		if fp.CostMS > cost*20+1e-9 {
			t.Errorf("point %d violates cost bound", i)
		}
		if i > 0 && (fp.CostMS < pts[i-1].CostMS || fp.Doi <= pts[i-1].Doi) {
			t.Errorf("front not sorted/strictly improving at %d", i)
		}
		if fp.Knee {
			knees++
		}
	}
	if knees != 1 {
		t.Errorf("expected exactly one knee, got %d", knees)
	}
	// Validation errors propagate.
	if _, err := p.PersonalizeFront(&Query{From: []string{"NOPE"}}, profile, 0, 0, 0, 0); err == nil {
		t.Error("invalid query must fail")
	}
}

func TestWithMergedSubQueries(t *testing.T) {
	db := SyntheticMovieDB(400, 1)
	p := NewPersonalizer(db)
	profile := SyntheticProfile(30, 2)
	q, _ := ParseQuery(db.Schema(), "SELECT title FROM MOVIE")
	cost, _, _ := p.EstimateQuery(q)

	plain, err := p.Personalize(q, profile, Problem2(cost*10), WithMaxK(8))
	if err != nil {
		t.Fatal(err)
	}
	merged, err := p.Personalize(q, profile, Problem2(cost*10), WithMaxK(8), WithMergedSubQueries())
	if err != nil {
		t.Fatal(err)
	}
	pr, err := plain.Execute()
	if err != nil {
		t.Fatal(err)
	}
	mr, err := merged.Execute()
	if err != nil {
		t.Fatal(err)
	}
	if len(pr.Rows) != len(mr.Rows) {
		t.Errorf("merged changed the answer: %d vs %d rows", len(pr.Rows), len(mr.Rows))
	}
	if mr.BlockReads > pr.BlockReads {
		t.Errorf("merging increased I/O: %d vs %d", mr.BlockReads, pr.BlockReads)
	}
	if _, err := p.Personalize(q, profile, Problem2(cost*10), WithMergedSubQueries(), WithAnyMatch()); err == nil {
		t.Error("merge + any-match must be rejected")
	}
}

func TestCSVLoadDumpThroughFacade(t *testing.T) {
	db := SyntheticMovieDB(50, 1)
	var buf strings.Builder
	if err := DumpCSV(db, "MOVIE", &buf); err != nil {
		t.Fatal(err)
	}
	fresh := NewDB(MovieSchema(), 0)
	n, err := LoadCSV(fresh, "MOVIE", strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if n != 50 || fresh.MustTable("MOVIE").RowCount() != 50 {
		t.Errorf("loaded %d rows", n)
	}
	if _, err := LoadCSV(fresh, "NOPE", strings.NewReader("")); err == nil {
		t.Error("unknown relation must fail")
	}
	if err := DumpCSV(fresh, "NOPE", &buf); err == nil {
		t.Error("unknown relation must fail")
	}
}

func TestExplain(t *testing.T) {
	db := paperDB(t)
	p := NewPersonalizer(db)
	profile, _ := ParseProfile(figure1)
	q, _ := ParseQuery(db.Schema(), "select title from MOVIE")
	res, err := p.Personalize(q, profile, Problem2(10000))
	if err != nil {
		t.Fatal(err)
	}
	out := res.Explain()
	for _, want := range []string{
		"problem: MAX doi",
		"solver:",
		"candidates (K = 2",
		"W. Allen",
		"musical",
		"solution: 2/2 preferences",
		"cost bound:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Explain missing %q:\n%s", want, out)
		}
	}
	// Chosen preferences are starred.
	if strings.Count(out, "\n * ") != 2 && strings.Count(out, " * doi") != 2 {
		t.Errorf("expected two starred candidates:\n%s", out)
	}
}

func TestGroupProfilePersonalization(t *testing.T) {
	db := paperDB(t)
	p := NewPersonalizer(db)
	alice, _ := ParseProfile(`
doi(MOVIE.mid = GENRE.mid) = 0.9
doi(GENRE.genre = 'musical') = 0.8
`)
	bob, _ := ParseProfile(`
doi(MOVIE.mid = GENRE.mid) = 0.9
doi(GENRE.genre = 'comedy') = 0.9
doi(GENRE.genre = 'musical') = 0.2
`)
	group, err := CombineProfiles(CombineAverage, alice, bob)
	if err != nil {
		t.Fatal(err)
	}
	q, _ := ParseQuery(db.Schema(), "select title from MOVIE")
	res, err := p.Personalize(q, group, Problem2(1000), WithAnyMatch())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Preferences) == 0 {
		t.Fatal("group personalization selected nothing")
	}
	rows, err := res.Execute()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Rows) == 0 {
		t.Error("no group answers")
	}
}

func TestPersonalizeTopK(t *testing.T) {
	db := paperDB(t)
	p := NewPersonalizer(db)
	profile, _ := ParseProfile(figure1)
	q, _ := ParseQuery(db.Schema(), "select title from MOVIE")
	top, err := p.PersonalizeTopK(q, profile, 1000, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 2 {
		t.Fatalf("top = %v", top)
	}
	if top[0].Row[0].String() != "Everyone Says I Love You" || top[0].Matched != 2 {
		t.Errorf("first answer = %+v", top[0])
	}
	if top[0].Doi < top[1].Doi {
		t.Error("top-k must be doi-ordered")
	}
	if _, err := p.PersonalizeTopK(q, profile, 1000, 0); err == nil {
		t.Error("k = 0 must fail")
	}
}

func TestPortfolioThroughFacade(t *testing.T) {
	db := paperDB(t)
	p := NewPersonalizer(db)
	profile, _ := ParseProfile(figure1)
	q, _ := ParseQuery(db.Schema(), "select title from MOVIE")
	res, err := p.Personalize(q, profile, Problem2(1000), WithAlgorithm("PORTFOLIO"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Solution.Doi != 0.89 {
		t.Errorf("portfolio doi = %v", res.Solution.Doi)
	}
	if !strings.HasPrefix(res.Solution.Stats.Algorithm, "PORTFOLIO(") {
		t.Errorf("algorithm = %s", res.Solution.Stats.Algorithm)
	}
}

func TestEmptyProfilePersonalization(t *testing.T) {
	db := paperDB(t)
	p := NewPersonalizer(db)
	q, _ := ParseQuery(db.Schema(), "select title from MOVIE")
	res, err := p.Personalize(q, NewProfile(), Problem2(1000))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Preferences) != 0 || res.SQL != q.SQL() {
		t.Errorf("empty profile must return the bare query: %s", res.SQL)
	}
	rows, err := res.Execute()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Rows) != 3 {
		t.Errorf("bare query rows = %d", len(rows.Rows))
	}
}

func TestEmptyDatabasePersonalization(t *testing.T) {
	db := NewDB(MovieSchema(), 0)
	p := NewPersonalizer(db)
	profile := SyntheticProfile(10, 1)
	q, _ := ParseQuery(db.Schema(), "SELECT title FROM MOVIE")
	// Empty tables: base cost 0, every sub-query cost 0 — personalization
	// is trivially feasible and execution returns nothing.
	res, err := p.Personalize(q, profile, Problem2(100))
	if err != nil {
		t.Fatal(err)
	}
	rows, err := res.Execute()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Rows) != 0 {
		t.Errorf("rows from empty db: %d", len(rows.Rows))
	}
}

func TestUnrelatedProfilePersonalization(t *testing.T) {
	db := paperDB(t)
	p := NewPersonalizer(db)
	// Preferences anchored at DIRECTOR only, query over GENRE: unrelated.
	profile, _ := ParseProfile(`doi(DIRECTOR.name = 'W. Allen') = 0.8`)
	q, _ := ParseQuery(db.Schema(), "SELECT DISTINCT genre FROM GENRE")
	res, err := p.Personalize(q, profile, Problem2(1000))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Preferences) != 0 {
		t.Errorf("unrelated profile should contribute nothing: %v", res.Preferences)
	}
}
