// Package cqp is a Go implementation of Constrained Query Personalization
// (Koutrika & Ioannidis, SIGMOD 2005): database query personalization as a
// family of constrained optimization problems solved by state-space search.
//
// Given a conjunctive query, a user profile of weighted preferences, and a
// search context expressed as one of the six CQP problems of the paper's
// Table 1, the library selects the subset of preferences whose integration
// optimizes one query parameter (degree of interest or execution cost)
// while the others stay within bounds, rewrites the query accordingly, and
// can execute it on the bundled in-memory relational engine.
//
// Quick start:
//
//	db := cqp.NewDB(schema, 0)            // load data ...
//	p := cqp.NewPersonalizer(db)
//	profile, _ := cqp.ParseProfile("doi(GENRE.genre = 'musical') = 0.5\n...")
//	q, _ := cqp.ParseQuery(db.Schema(), "SELECT title FROM MOVIE")
//	res, _ := p.Personalize(q, profile, cqp.Problem2(400)) // cost ≤ 400 ms
//	fmt.Println(res.SQL)                                    // rewritten query
//	rows, _ := res.Execute()                                // ranked answers
//
// A Personalizer is safe for concurrent use; cmd/cqpd wraps one in an
// HTTP/JSON serving daemon with a versioned profile store, admission
// control and result caching (see internal/server).
package cqp

import (
	"context"
	"fmt"
	"io"
	"time"

	"cqp/internal/core"
	"cqp/internal/obs"
	"cqp/internal/prefs"
	"cqp/internal/query"
	"cqp/internal/schema"
	"cqp/internal/sqlparse"
	"cqp/internal/storage"
	"cqp/internal/value"
	"cqp/internal/workload"
)

// Schema describes relations, attributes and schema-graph join edges.
type Schema = schema.Schema

// Relation is one relation definition within a Schema.
type Relation = schema.Relation

// Column is a typed attribute of a relation.
type Column = schema.Column

// AttrRef names an attribute as Relation.Attr.
type AttrRef = schema.AttrRef

// DB is the in-memory relational store with block-granular simulated I/O.
type DB = storage.DB

// Row is one tuple.
type Row = storage.Row

// Value is a typed scalar (INT, FLOAT, VARCHAR, BOOLEAN or NULL).
type Value = value.Value

// Query is a conjunctive select-project-join query.
type Query = query.Query

// Profile is a user profile: atomic selection and join preferences with
// degrees of interest over the personalization graph.
type Profile = prefs.Profile

// Problem is one member of the CQP family (Table 1 of the paper).
type Problem = core.Problem

// Solution reports the preference subset a solver chose and its estimated
// parameters.
type Solution = core.Solution

// SearchStats carries one search run's counters: algorithm name, duration,
// states visited, peak memory, and whether the state budget truncated it.
type SearchStats = core.Stats

// Metrics is the engine's concurrency-safe metrics registry. Attach one to
// a Personalizer with Observe; read it back via Snapshot, Render,
// WritePrometheus or Expvar. A nil *Metrics disables all recording.
type Metrics = obs.Registry

// Trace is one timed span of a pipeline trace tree (see StartTrace).
type Trace = obs.Span

// MetricSnapshot is the frozen state of one metric in a Metrics snapshot.
type MetricSnapshot = obs.MetricSnapshot

// AccuracySummary aggregates estimator accuracy (q-errors of estimated
// versus actual cost and size) over executed personalized queries.
type AccuracySummary = obs.AccuracySummary

// NewMetrics returns an empty metrics registry.
func NewMetrics() *Metrics { return obs.NewRegistry() }

// FormatDuration renders a duration at the microsecond precision the
// pipeline reports everywhere.
func FormatDuration(d time.Duration) string { return obs.FormatDuration(d) }

// StartTrace starts a pipeline trace and returns a context carrying it.
// Pass the context to PersonalizeContext / ExecuteContext, then render the
// tree with Trace.Tree after the spans complete.
func StartTrace(ctx context.Context, name string) (context.Context, *Trace) {
	tr := obs.NewTrace(name)
	return obs.ContextWith(ctx, tr), tr
}

// NewSchema returns an empty schema.
func NewSchema() *Schema { return schema.New() }

// NewDB creates an empty database over the schema. blockSize ≤ 0 selects
// the 8 KiB default.
func NewDB(s *Schema, blockSize int) *DB { return storage.NewDB(s, blockSize) }

// Scalar constructors.
var (
	// Int builds an integer value.
	Int = value.Int
	// Float builds a floating-point value.
	Float = value.Float
	// Str builds a string value.
	Str = value.Str
	// Bool builds a boolean value.
	Bool = value.Bool
	// Null builds the NULL value.
	Null = value.Null
)

// ParseQuery parses a SQL SELECT statement in the supported subset and
// validates it against the schema.
func ParseQuery(s *Schema, sql string) (*Query, error) { return sqlparse.Parse(s, sql) }

// ParseProfile parses the text profile format: one
// "doi(<condition>) = <number>" preference per line.
func ParseProfile(src string) (*Profile, error) { return prefs.ParseProfile(src) }

// NewProfile returns an empty profile for programmatic construction.
func NewProfile() *Profile { return prefs.NewProfile() }

// Group-profile combination modes (personalizing for "members of
// particular groups", per the paper's introduction).
const (
	// CombineAverage scales each preference by group consensus.
	CombineAverage = prefs.CombineAverage
	// CombineMax keeps the strongest member's interest.
	CombineMax = prefs.CombineMax
	// CombineMin keeps only unanimous preferences at their weakest doi.
	CombineMin = prefs.CombineMin
)

// CombineProfiles merges member profiles into one group profile.
func CombineProfiles(mode prefs.CombineMode, members ...*Profile) (*Profile, error) {
	return prefs.CombineProfiles(mode, members...)
}

// The six problems of Table 1. Bounds use milliseconds for cost and
// estimated rows for sizes.
var (
	// Problem1 maximizes doi subject to smin ≤ size ≤ smax.
	Problem1 = core.Problem1
	// Problem2 maximizes doi subject to cost ≤ cmax.
	Problem2 = core.Problem2
	// Problem3 maximizes doi subject to cost ≤ cmax and smin ≤ size ≤ smax.
	Problem3 = core.Problem3
	// Problem4 minimizes cost subject to doi ≥ dmin.
	Problem4 = core.Problem4
	// Problem5 minimizes cost subject to doi ≥ dmin and smin ≤ size ≤ smax.
	Problem5 = core.Problem5
	// Problem6 minimizes cost subject to smin ≤ size ≤ smax.
	Problem6 = core.Problem6
)

// BuildProblem instantiates problem n of Table 1 from the full bound set,
// ignoring the bounds the problem does not use — the shared entry point for
// surfaces that take the problem number and bounds as user input (the cqp
// shell's flags, cqpd's JSON requests).
func BuildProblem(n int, cmax, smin, smax, dmin float64) (Problem, error) {
	switch n {
	case 1:
		return Problem1(smin, smax), nil
	case 2:
		return Problem2(cmax), nil
	case 3:
		return Problem3(cmax, smin, smax), nil
	case 4:
		return Problem4(dmin), nil
	case 5:
		return Problem5(dmin, smin, smax), nil
	case 6:
		return Problem6(smin, smax), nil
	default:
		return Problem{}, fmt.Errorf("cqp: problem must be 1-6, got %d", n)
	}
}

// AlgorithmNames lists the paper's five Problem-2 search algorithms in
// figure order, for use with WithAlgorithm.
func AlgorithmNames() []string {
	out := make([]string, len(core.Algorithms))
	for i, a := range core.Algorithms {
		out[i] = a.Name
	}
	return out
}

// SyntheticMovieDB generates a seeded IMDB-like movie database (MOVIE,
// DIRECTOR, GENRE, ACTOR, CAST) with Zipf-skewed value distributions, for
// examples and experiments.
func SyntheticMovieDB(movies int, seed int64) *DB {
	return workload.GenerateDB(workload.DBConfig{Movies: movies, Seed: seed})
}

// SyntheticProfile generates a seeded profile over SyntheticMovieDB's
// schema with the given number of selection preferences.
func SyntheticProfile(selections int, seed int64) *Profile {
	return workload.GenerateProfile(workload.ProfileConfig{SelectionPrefs: selections, Seed: seed})
}

// MovieSchema returns the synthetic movie schema (MOVIE, DIRECTOR, GENRE,
// ACTOR, CAST) used by SyntheticMovieDB, for loading external data into the
// same shape.
func MovieSchema() *Schema { return workload.Schema() }

// LoadCSV bulk-loads CSV (header row of column names first) into the named
// relation and returns the number of rows loaded. Call
// Personalizer.Refresh afterwards so statistics track the new data.
func LoadCSV(db *DB, relation string, r io.Reader) (int, error) {
	t, err := db.Table(relation)
	if err != nil {
		return 0, err
	}
	return t.ReadCSV(r)
}

// DumpCSV writes the named relation as CSV.
func DumpCSV(db *DB, relation string, w io.Writer) error {
	t, err := db.Table(relation)
	if err != nil {
		return err
	}
	return t.WriteCSV(w)
}
