package cqp_test

// ExecuteBatch's shared-work path (cross-request estimate memo + shared
// base-relation scans) must be indistinguishable from running every item
// alone: byte-identical personalized SQL, solutions, ranked answers and
// per-item I/O charges across the paper's full algorithm grid, on both the
// in-memory and the persistent block-store backends. This is the
// acceptance test for the batch fast path.

import (
	"context"
	"fmt"
	"testing"

	"cqp"
	"cqp/internal/blockstore"
	"cqp/internal/workload"
)

func TestExecuteBatchMatchesSequentialAcrossAlgorithms(t *testing.T) {
	const movies, dbSeed = 400, 57
	mem := cqp.SyntheticMovieDB(movies, dbSeed)

	st, err := blockstore.Open(t.TempDir(), cqp.MovieSchema(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	disk, err := st.DB()
	if err != nil {
		t.Fatal(err)
	}
	workload.GenerateInto(disk, workload.DBConfig{Movies: movies, Seed: dbSeed})
	if err := st.Sync(); err != nil {
		t.Fatal(err)
	}

	profile := cqp.SyntheticProfile(40, 58)
	for _, backend := range []struct {
		name string
		db   *cqp.DB
	}{{"mem", mem}, {"disk", disk}} {
		t.Run(backend.name, func(t *testing.T) {
			shared := cqp.NewPersonalizer(backend.db) // memo on, batch scans shared
			seq := cqp.NewPersonalizer(backend.db)    // one item at a time, memo off
			seq.SetEstimateMemo(false)

			queries := []string{
				"SELECT title FROM MOVIE",
				"SELECT title, name FROM MOVIE, DIRECTOR WHERE MOVIE.did = DIRECTOR.did AND MOVIE.year >= 1950",
			}
			var items []cqp.BatchItem
			for _, sql := range queries {
				q, err := cqp.ParseQuery(backend.db.Schema(), sql)
				if err != nil {
					t.Fatal(err)
				}
				base, _, err := shared.EstimateQuery(q)
				if err != nil {
					t.Fatal(err)
				}
				for _, alg := range cqp.AlgorithmNames() {
					items = append(items, cqp.BatchItem{
						Query: q, Profile: profile, Problem: cqp.Problem2(base * 12),
						Opts: []cqp.Option{cqp.WithAlgorithm(alg), cqp.WithMaxK(10)},
					})
				}
				// One duplicate per query exercises dedup + Exec copying.
				items = append(items, items[len(items)-1])
			}

			res := shared.ExecuteBatch(context.Background(), items, 4, 0)
			if len(res) != len(items) {
				t.Fatalf("got %d results for %d items", len(res), len(items))
			}
			for i, it := range items {
				name := fmt.Sprintf("item %d", i)
				if res[i].Err != nil {
					t.Fatalf("%s: batch: %v", name, res[i].Err)
				}
				if res[i].Result == nil || res[i].Exec == nil {
					t.Fatalf("%s: missing Result/Exec", name)
				}
				rr, err := seq.Personalize(it.Query, it.Profile, it.Problem, it.Opts...)
				if err != nil {
					t.Fatalf("%s: sequential personalize: %v", name, err)
				}
				ar, err := rr.Execute()
				if err != nil {
					t.Fatalf("%s: sequential execute: %v", name, err)
				}
				br := res[i]
				if br.Result.SQL != rr.SQL {
					t.Fatalf("%s: SQL differs:\nbatch: %s\nseq:   %s", name, br.Result.SQL, rr.SQL)
				}
				if br.Result.Solution.Doi != rr.Solution.Doi || br.Result.Solution.Cost != rr.Solution.Cost ||
					br.Result.Solution.Size != rr.Solution.Size {
					t.Fatalf("%s: solutions differ: batch %+v, seq %+v", name, br.Result.Solution, rr.Solution)
				}
				if got, want := renderRanked(br.Exec), renderRanked(ar); got != want {
					t.Fatalf("%s: ranked answers differ (%d vs %d rows)", name, len(br.Exec.Rows), len(ar.Rows))
				}
				if br.Exec.BlockReads != ar.BlockReads {
					t.Fatalf("%s: charged I/O differs: batch %d, seq %d", name, br.Exec.BlockReads, ar.BlockReads)
				}
			}
			for _, i := range []int{len(cqp.AlgorithmNames()), len(items) - 1} {
				if !res[i].Duplicate {
					t.Errorf("item %d: expected Duplicate", i)
				}
			}
		})
	}
}
