// Command cqpbench regenerates the paper's evaluation (Section 7): every
// figure and table, printed as aligned text tables and optionally as CSV
// files for plotting.
//
// Usage:
//
//	cqpbench                         # all experiments, laptop scale
//	cqpbench -exp fig12a             # one experiment
//	cqpbench -profiles 20 -queries 10 -budget 0   # the paper's full scale
//	cqpbench -csv out/               # also write CSV series
//	cqpbench -json summary.json      # machine-readable per-experiment rollup
//	cqpbench -metrics                # dump the run's metrics at the end
//	cqpbench -http :8080             # serve /metrics, /debug/vars, /debug/pprof
//	cqpbench -faults 'exec.union:lat:0.1:20ms'   # run the figures under injected faults
//	cqpbench -herd 64 -bursts 8 -gate -json BENCH_5.json   # thundering-herd serving benchmark
//	cqpbench -batch 32                                     # /personalize/batch vs singleton requests
//	cqpbench -spillbench 6000 -spillbudget 262144 -gate    # union-all peak heap, unbounded vs spilled
//	cqpbench -cluster-drill -json results/BENCH_9.json     # kill -9 failover + join/leave membership drill
package main

import (
	"context"
	_ "expvar"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"cqp/internal/bench"
	"cqp/internal/fault"
	"cqp/internal/obs"
	"cqp/internal/workload"
)

func main() {
	var (
		exp       = flag.String("exp", "all", "experiment id ("+strings.Join(bench.ExperimentIDs(), ", ")+" or all)")
		profiles  = flag.Int("profiles", 4, "profiles per data point (paper: 20)")
		queries   = flag.Int("queries", 5, "queries per data point (paper: 10)")
		ks        = flag.String("ks", "10,20,30,40", "comma-separated K sweep")
		cmaxMS    = flag.Float64("cmax", 400, "default cmax in ms (paper: 400)")
		defK      = flag.Int("k", 20, "default K (paper: 20)")
		budget    = flag.Int("budget", 1<<20, "per-run state budget; 0 = unlimited (paper-faithful, slow)")
		movies    = flag.Int("movies", 4000, "movies in the synthetic database")
		seed      = flag.Int64("seed", 1, "workload seed")
		csvDir    = flag.String("csv", "", "directory to also write CSV series into")
		jsonPath  = flag.String("json", "", "file to write a machine-readable per-experiment summary into")
		metrics   = flag.Bool("metrics", false, "dump the run's metrics registry after the experiments")
		httpAddr  = flag.String("http", "", "serve /metrics (Prometheus), /debug/vars and /debug/pprof on this address while running")
		faults    = flag.String("faults", os.Getenv("FAULTS"), "fault-injection plan, e.g. 'storage.scan:err:0.05' (also via FAULTS env)")
		faultSeed = flag.Int64("faultseed", 1, "seed for the fault plan's injection decisions")
		herd      = flag.Int("herd", 0, "serving benchmark: this many concurrent duplicate requests per burst, with and without coalescing (0 = off)")
		bursts    = flag.Int("bursts", 8, "herd mode: distinct cache-miss bursts to fire")
		batchN    = flag.Int("batch", 0, "serving benchmark: one /personalize/batch of this many items vs the same items as singletons (0 = off)")
		batchB    = flag.Int("batchbench", 0, "serving benchmark: one execute-mode batch of this many all-distinct items, shared-work layers (estimate memo + scan share) on vs off (0 = off)")
		gate      = flag.Bool("gate", false, "herd mode: exit non-zero when coalescing loses to the no-coalesce baseline; spillbench mode: when spilling fails to cut peak heap")
		spillN    = flag.Int("spillbench", 0, "executor benchmark: union-all over this many movies, unbounded vs spill-budgeted (0 = off)")
		spillBudg = flag.Int64("spillbudget", 256<<10, "spillbench mode: per-run executor memory budget in bytes")
		drill     = flag.Bool("cluster-drill", false, "robustness drill: boot a 3-node replicated cqpd cluster, kill -9 a profile's owner, verify failover and zero acked-mutation loss; then join a 4th node under load and drain it back out with zero failed requests")
		cqpdBin   = flag.String("cqpd", "", "cluster-drill mode: path to a cqpd binary (empty = go build one)")
	)
	flag.Parse()

	if *drill {
		// The drill wants enough profiles that every node owns a few;
		// -profiles' laptop default of 4 is too thin unless set explicitly.
		nProf := 24
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "profiles" {
				nProf = *profiles
			}
		})
		if err := runClusterDrill(*cqpdBin, nProf, *seed, *jsonPath); err != nil {
			fatal(err)
		}
		return
	}
	if *herd > 0 || *batchN > 0 {
		if err := runServeBench(*movies, *seed, *herd, *bursts, *batchN, *jsonPath, *gate); err != nil {
			fatal(err)
		}
		return
	}
	if *batchB > 0 {
		if err := runBatchBench(*movies, *seed, *batchB, *jsonPath, *gate); err != nil {
			fatal(err)
		}
		return
	}
	if *spillN > 0 {
		if err := runSpillBench(*spillN, *seed, *spillBudg, *jsonPath, *gate); err != nil {
			fatal(err)
		}
		return
	}

	if *faults != "" {
		plan, err := fault.Parse(*faults, *faultSeed)
		if err != nil {
			fatal(err)
		}
		fault.Arm(plan)
		defer func() { fmt.Printf("\nfault report:\n%s", plan.Report()) }()
		fmt.Printf("fault plan armed: %s (seed %d)\n", plan, *faultSeed)
	}

	ksList, err := parseInts(*ks)
	if err != nil {
		fatal(err)
	}
	cfg := bench.Config{
		DB:            workload.DBConfig{Movies: *movies},
		Profiles:      *profiles,
		Queries:       *queries,
		Ks:            ksList,
		DefaultK:      *defK,
		DefaultCmaxMS: *cmaxMS,
		StateBudget:   *budget,
		Seed:          *seed,
	}
	if *budget == 0 {
		cfg.StateBudget = -1 // explicit "unlimited" (Config treats 0 as default)
	}
	reg := obs.NewRegistry()
	cfg.Obs = reg
	var srv *http.Server
	if *httpAddr != "" {
		srv = serveHTTP(*httpAddr, reg)
	}
	r := bench.NewRunner(cfg)
	fmt.Printf("workload: %d movies, %d profiles × %d queries = %d runs/point, state budget %s\n\n",
		*movies, *profiles, *queries, r.Pairs(), budgetStr(cfg.StateBudget))

	var tables []*bench.Table
	if *exp == "all" {
		tables, err = r.All()
	} else {
		var t *bench.Table
		t, err = r.ByID(*exp)
		tables = []*bench.Table{t}
	}
	if err != nil {
		fatal(err)
	}
	for _, t := range tables {
		fmt.Println(t.Render())
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fatal(err)
		}
		for _, t := range tables {
			path := filepath.Join(*csvDir, t.ID+".csv")
			if err := os.WriteFile(path, []byte(t.CSV()), 0o644); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote %s\n", path)
		}
	}
	if *jsonPath != "" {
		f, err := os.Create(*jsonPath)
		if err != nil {
			fatal(err)
		}
		err = r.Summary(tables).WriteJSON(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *jsonPath)
	}
	if *metrics {
		fmt.Println("== metrics ==")
		fmt.Print(reg.Render())
	}
	if srv != nil {
		fmt.Printf("experiments done; still serving on %s (ctrl-C to exit)\n", *httpAddr)
		sigc := make(chan os.Signal, 1)
		signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
		<-sigc
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			fatal(err)
		}
	}
}

// serveHTTP exposes the registry and the stdlib debug handlers: /metrics in
// the Prometheus text format, plus /debug/vars and /debug/pprof, which the
// expvar and net/http/pprof imports register on the default mux themselves
// (the registry joins /debug/vars under "cqp"). The returned server carries
// a header-read timeout and supports context-based Shutdown — a bare
// ListenAndServe would let a silent client pin a connection forever and
// gives no drain path.
func serveHTTP(addr string, reg *obs.Registry) *http.Server {
	reg.PublishExpvar("cqp")
	http.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		if err := reg.WritePrometheus(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	srv := &http.Server{
		Addr:              addr,
		Handler:           http.DefaultServeMux,
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	go func() {
		if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			fmt.Fprintln(os.Stderr, "cqpbench: http:", err)
		}
	}()
	fmt.Printf("serving /metrics, /debug/vars, /debug/pprof on %s\n", addr)
	return srv
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad -ks element %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}

func budgetStr(b int) string {
	if b <= 0 {
		return "unlimited"
	}
	return strconv.Itoa(b)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cqpbench:", err)
	os.Exit(1)
}
