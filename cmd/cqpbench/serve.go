package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"sync"
	"time"

	"cqp"
	"cqp/internal/fault"
	"cqp/internal/server"
)

// The serving benchmarks (-herd, -batch) measure the daemon rather than the
// pipeline: what duplicate-heavy traffic costs with and without
// singleflight coalescing, and what the batch endpoint saves over singleton
// requests. They drive a real Server over HTTP (httptest transport) so
// admission control, caching and coalescing are all on the measured path.
//
// Both benchmarks run under an injected estimator latency
// (estimate.histogram:lat), emulating a daemon whose cost model reads a
// remote or disk-resident catalog. That keeps each pipeline run I/O-bound,
// so concurrent requests genuinely overlap the in-flight run on any core
// count — the scenario coalescing and batching exist for — instead of
// serializing behind a CPU-bound search on small runners.

// armServeLatency injects the estimator latency both serving benchmarks
// run under; the caller must invoke the returned disarm.
func armServeLatency() (func(), error) {
	plan, err := fault.Parse("estimate.histogram:lat:1:1ms", 1)
	if err != nil {
		return nil, err
	}
	fault.Arm(plan)
	return fault.Disarm, nil
}

// herdStats is one mode's view of the thundering-herd run.
type herdStats struct {
	P50MS         float64 `json:"p50_ms"`
	P99MS         float64 `json:"p99_ms"`
	P999MS        float64 `json:"p999_ms"`
	ThroughputRPS float64 `json:"throughput_rps"`
	Leaders       int64   `json:"coalesce_leaders"`
	Followers     int64   `json:"coalesce_followers"`
	HitRatio      float64 `json:"coalesce_hit_ratio"`
	PipelineRuns  int64   `json:"pipeline_runs"`
	Errors        int     `json:"errors"`
	// PhaseP50MS/PhaseP99MS break request latency down by attribution phase
	// (queue wait, coalesce wait, prefspace, search, ...), read from the
	// daemon's server_phase_ms histograms after the run.
	PhaseP50MS map[string]float64 `json:"phase_p50_ms,omitempty"`
	PhaseP99MS map[string]float64 `json:"phase_p99_ms,omitempty"`
	// SLO is the daemon's own rolling-window view of the run, as /slo
	// reports it.
	SLO any `json:"slo,omitempty"`
}

type herdReport struct {
	Concurrency int                  `json:"concurrency"`
	Bursts      int                  `json:"bursts"`
	Modes       map[string]herdStats `json:"modes"`
	// Speedup is coalesced over uncoalesced duplicate-miss throughput —
	// the number the CI gate checks stays >= 1.
	Speedup float64 `json:"duplicate_miss_speedup"`
}

type batchReport struct {
	Items       int     `json:"items"`
	Distinct    int     `json:"distinct"`
	BatchMS     float64 `json:"batch_ms"`
	SingletonMS float64 `json:"singleton_ms"`
	Speedup     float64 `json:"speedup"`
}

type serveBenchReport struct {
	Herd  *herdReport  `json:"herd,omitempty"`
	Batch *batchReport `json:"batch,omitempty"`
}

// runServeBench runs the requested serving benchmarks, writes the JSON
// report to jsonPath when set, and — with gate — fails when coalescing
// loses to the no-coalesce baseline on duplicate-miss throughput.
func runServeBench(movies int, seed int64, herdSize, bursts, batchItems int, jsonPath string, gate bool) error {
	var rep serveBenchReport
	if herdSize > 0 {
		hr := herdReport{Concurrency: herdSize, Bursts: bursts, Modes: map[string]herdStats{}}
		for _, m := range []struct {
			name       string
			noCoalesce bool
		}{{"coalesce", false}, {"nocoalesce", true}} {
			st, err := herdOnce(movies, seed, herdSize, bursts, m.noCoalesce)
			if err != nil {
				return err
			}
			hr.Modes[m.name] = st
			fmt.Printf("herd %-10s  p50 %7.2fms  p99 %7.2fms  %7.1f req/s  runs %4d  hit %4.1f%%  errors %d\n",
				m.name, st.P50MS, st.P99MS, st.ThroughputRPS, st.PipelineRuns, st.HitRatio*100, st.Errors)
		}
		if base := hr.Modes["nocoalesce"].ThroughputRPS; base > 0 {
			hr.Speedup = hr.Modes["coalesce"].ThroughputRPS / base
		}
		fmt.Printf("herd duplicate-miss speedup: %.2fx\n", hr.Speedup)
		rep.Herd = &hr
	}
	if batchItems > 0 {
		br, err := batchOnce(movies, seed, batchItems)
		if err != nil {
			return err
		}
		fmt.Printf("batch %d items (%d distinct): batch %7.2fms  singletons %7.2fms  %.2fx\n",
			br.Items, br.Distinct, br.BatchMS, br.SingletonMS, br.Speedup)
		rep.Batch = &br
	}
	if jsonPath != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", jsonPath)
	}
	if gate && rep.Herd != nil {
		for name, st := range rep.Herd.Modes {
			if st.Errors > 0 {
				return fmt.Errorf("herd gate: %s mode saw %d request errors", name, st.Errors)
			}
		}
		if rep.Herd.Speedup < 1 {
			return fmt.Errorf("herd gate: coalescing regressed duplicate-miss throughput (%.2fx < 1x)",
				rep.Herd.Speedup)
		}
	}
	return nil
}

// newBenchServer builds a daemon over a synthetic database with a stored
// profile "bench", wrapped in an httptest transport.
func newBenchServer(movies int, seed int64, cfg server.Config) (*server.Server, *httptest.Server, error) {
	db := cqp.SyntheticMovieDB(movies, seed)
	s, err := server.New(db, cfg)
	if err != nil {
		return nil, nil, err
	}
	if _, err := s.Profiles().Put("bench", cqp.SyntheticProfile(40, seed+1).String()); err != nil {
		return nil, nil, err
	}
	return s, httptest.NewServer(s.Handler()), nil
}

// herdOnce fires bursts rounds of herdSize concurrent identical requests —
// each round a fresh cache miss (the query varies per round) — and reports
// latency percentiles, throughput, and the coalescing counters.
func herdOnce(movies int, seed int64, herdSize, bursts int, noCoalesce bool) (herdStats, error) {
	disarm, err := armServeLatency()
	if err != nil {
		return herdStats{}, err
	}
	defer disarm()
	s, ts, err := newBenchServer(movies, seed, server.Config{NoCoalesce: noCoalesce})
	if err != nil {
		return herdStats{}, err
	}
	defer func() {
		ts.Close()
		_ = s.Shutdown(context.Background())
	}()
	client := ts.Client()

	var mu sync.Mutex
	var lat []float64
	errs := 0
	start := time.Now()
	for b := 0; b < bursts; b++ {
		body := fmt.Sprintf(`{"sql":"SELECT title FROM MOVIE WHERE year >= %d","profile_id":"bench","problem":{"number":2,"cmax_ms":10000}}`, 1900+b)
		ready := make(chan struct{})
		var wg sync.WaitGroup
		for i := 0; i < herdSize; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-ready
				t0 := time.Now()
				resp, err := client.Post(ts.URL+"/personalize", "application/json", bytes.NewReader([]byte(body)))
				ms := float64(time.Since(t0)) / float64(time.Millisecond)
				ok := err == nil && resp.StatusCode == http.StatusOK
				if resp != nil {
					_, _ = io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
				mu.Lock()
				if ok {
					lat = append(lat, ms)
				} else {
					errs++
				}
				mu.Unlock()
			}()
		}
		close(ready)
		wg.Wait()
	}
	elapsed := time.Since(start)

	reg := s.Registry()
	st := herdStats{
		P50MS:         percentile(lat, 0.50),
		P99MS:         percentile(lat, 0.99),
		P999MS:        percentile(lat, 0.999),
		ThroughputRPS: float64(len(lat)) / elapsed.Seconds(),
		Leaders:       reg.Counter("coalesce_leaders_total", "endpoint", "personalize").Value(),
		Followers:     reg.Counter("coalesce_followers_total", "endpoint", "personalize").Value(),
		PipelineRuns:  reg.Counter("personalize_total").Value(),
		Errors:        errs,
		PhaseP50MS:    map[string]float64{},
		PhaseP99MS:    map[string]float64{},
		SLO:           s.SLO().Report(),
	}
	for _, phase := range []string{"parse", "cache", "queue", "coalesce", "prefspace", "search", "construct", "encode", "other"} {
		h := reg.Histogram("server_phase_ms", nil, "endpoint", "personalize", "phase", phase)
		if h.Count() == 0 {
			continue // a NaN quantile would poison the JSON report
		}
		st.PhaseP50MS[phase] = h.Quantile(0.50)
		st.PhaseP99MS[phase] = h.Quantile(0.99)
	}
	if total := herdSize * bursts; total > 0 {
		st.HitRatio = float64(st.Followers) / float64(total)
	}
	return st, nil
}

// batchOnce compares one /personalize/batch call against the same items as
// sequential singleton requests, each side on a fresh (cold-cache) daemon.
func batchOnce(movies int, seed int64, items int) (batchReport, error) {
	disarm, err := armServeLatency()
	if err != nil {
		return batchReport{}, err
	}
	defer disarm()
	distinct := (items + 3) / 4 // a list page repeats itself ~4:1
	mkItem := func(i int) map[string]any {
		return map[string]any{
			"sql":        fmt.Sprintf("SELECT title FROM MOVIE WHERE year >= %d", 1900+i%distinct),
			"profile_id": "bench",
			"problem":    map[string]any{"number": 2, "cmax_ms": 10000},
		}
	}

	// One batch round trip.
	s, ts, err := newBenchServer(movies, seed, server.Config{})
	if err != nil {
		return batchReport{}, err
	}
	list := make([]map[string]any, items)
	for i := range list {
		list[i] = mkItem(i)
	}
	body, _ := json.Marshal(map[string]any{"items": list})
	t0 := time.Now()
	resp, err := ts.Client().Post(ts.URL+"/personalize/batch", "application/json", bytes.NewReader(body))
	batchMS := float64(time.Since(t0)) / float64(time.Millisecond)
	if err == nil {
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			err = fmt.Errorf("batch: HTTP %d", resp.StatusCode)
		}
	}
	ts.Close()
	_ = s.Shutdown(context.Background())
	if err != nil {
		return batchReport{}, err
	}

	// The same items as sequential singleton requests, cold cache.
	s, ts, err = newBenchServer(movies, seed, server.Config{})
	if err != nil {
		return batchReport{}, err
	}
	defer func() {
		ts.Close()
		_ = s.Shutdown(context.Background())
	}()
	t0 = time.Now()
	for i := 0; i < items; i++ {
		b, _ := json.Marshal(mkItem(i))
		resp, err := ts.Client().Post(ts.URL+"/personalize", "application/json", bytes.NewReader(b))
		if err != nil {
			return batchReport{}, err
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return batchReport{}, fmt.Errorf("singleton %d: HTTP %d", i, resp.StatusCode)
		}
	}
	singleMS := float64(time.Since(t0)) / float64(time.Millisecond)

	br := batchReport{Items: items, Distinct: distinct, BatchMS: batchMS, SingletonMS: singleMS}
	if batchMS > 0 {
		br.Speedup = singleMS / batchMS
	}
	return br, nil
}

// percentile returns the p-quantile of values (nearest-rank); 0 when empty.
func percentile(values []float64, p float64) float64 {
	if len(values) == 0 {
		return 0
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	idx := int(p * float64(len(sorted)-1))
	return sorted[idx]
}
