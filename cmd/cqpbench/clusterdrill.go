package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"time"

	"cqp"
)

// The cluster drill is the repo's kill -9 acceptance test as a benchmark:
// boot a 3-node replicated cqpd cluster as real OS processes, write
// profiles through every node, SIGKILL the node owning a tracked profile,
// and measure how long reads of that profile stay dark. The drill fails
// (non-zero exit) when any acked mutation is lost — during the outage or
// after the killed owner rejoins — or when failover never completes.
//
// A second, membership leg then scales the healthy cluster out and back
// in: a 4th node boots as a cluster of itself and joins via POST
// /cluster/join while a mixed PUT/GET load hammers the original members,
// every shard the new ring assigns to it is verified moved (route sweep
// across all four nodes must agree at the new epoch), then the node
// leaves again and the exact pre-join assignment must come back. The
// gate for this leg: zero failed load requests, zero acked-mutation
// loss, routing agreement at every step.

const (
	drillNodes       = 3
	drillBootWait    = 30 * time.Second
	drillDrainWait   = 15 * time.Second
	drillFailoverCap = 10 * time.Second
	drillMemberWait  = 60 * time.Second
)

// drillResult is the BENCH_9.json shape.
type drillResult struct {
	Nodes          int    `json:"nodes"`
	Profiles       int    `json:"profiles"`
	Victim         string `json:"victim"`
	TrackedProfile string `json:"tracked_profile"`
	// FailoverMS is kill -9 to the first successful read of the tracked
	// profile through a surviving node.
	FailoverMS float64 `json:"failover_ms"`
	// OutageReads sweeps every acked profile through the survivors while
	// the owner is dead; StaleReplicaServes counts the answers that came
	// from the follower's replica.
	OutageReads        int `json:"outage_reads"`
	OutageReadErrors   int `json:"outage_read_errors"`
	StaleReplicaServes int `json:"stale_replica_serves"`
	// LostMutations counts acked PUTs that became unreadable or regressed
	// to an older version at any point in the drill. The gate: must be 0.
	LostMutations int     `json:"lost_mutations"`
	CatchupMS     float64 `json:"catchup_ms"`
	// RejoinListingOK: the restarted owner's /profiles listing holds every
	// profile it owns at exactly the acked version.
	RejoinListingOK bool `json:"rejoin_listing_ok"`

	// Membership leg: scale out to 4 nodes and back under load.
	JoinMS  float64 `json:"join_ms"`  // /cluster/join call to committed epoch on all nodes
	LeaveMS float64 `json:"leave_ms"` // /cluster/leave call to committed epoch on survivors
	// MovedShards is how many tracked profiles the new ring assigned to
	// the joiner — each verified present there and evicted from its old
	// owner after the join, and restored after the leave.
	MovedShards int `json:"moved_shards"`
	// MembershipLoadOps/Errors score the PUT/GET loop that ran through
	// both transitions. The gate: errors must be 0.
	MembershipLoadOps    int64 `json:"membership_load_ops"`
	MembershipLoadErrors int64 `json:"membership_load_errors"`
	// MembershipRouteAgree: all four nodes answered /cluster/route
	// identically at the post-join epoch for every tracked profile.
	MembershipRouteAgree bool `json:"membership_route_agree"`
	// MembershipRestored: after the leave, ownership of every tracked
	// profile matched the pre-join map exactly and read back at the
	// acked version.
	MembershipRestored bool `json:"membership_restored"`
}

// drillNode is one cqpd process under the drill's control.
type drillNode struct {
	id   string
	addr string // host:port
	base string // http://host:port
	args []string
	cmd  *exec.Cmd
	log  string // log file path
}

func (n *drillNode) start() error {
	f, err := os.OpenFile(n.log, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	cmd := exec.Command(n.args[0], n.args[1:]...)
	cmd.Stdout, cmd.Stderr = f, f
	if err := cmd.Start(); err != nil {
		f.Close()
		return fmt.Errorf("starting %s: %v", n.id, err)
	}
	n.cmd = cmd
	// Reap on exit so a killed node never lingers as a zombie; the file
	// closes once the process (the only writer) is gone.
	go func() { cmd.Wait(); f.Close() }()
	return nil
}

// kill delivers SIGKILL — the drill's whole point is that the process gets
// no chance to flush, drain, or say goodbye.
func (n *drillNode) kill() {
	if n.cmd != nil && n.cmd.Process != nil {
		n.cmd.Process.Kill()
	}
}

func (n *drillNode) tail() string {
	b, err := os.ReadFile(n.log)
	if err != nil {
		return ""
	}
	lines := strings.Split(strings.TrimSpace(string(b)), "\n")
	if len(lines) > 12 {
		lines = lines[len(lines)-12:]
	}
	return fmt.Sprintf("--- %s log tail ---\n%s\n", n.id, strings.Join(lines, "\n"))
}

// runClusterDrill builds (or takes) a cqpd binary, runs the kill-and-
// recover drill, writes the result JSON, and fails on any acked loss.
func runClusterDrill(cqpdBin string, nProfiles int, seed int64, jsonPath string) error {
	tmp, err := os.MkdirTemp("", "cqp-drill-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)

	if cqpdBin == "" {
		cqpdBin = filepath.Join(tmp, "cqpd")
		fmt.Println("cluster drill: building cqpd...")
		if out, err := exec.Command("go", "build", "-o", cqpdBin, "cqp/cmd/cqpd").CombinedOutput(); err != nil {
			return fmt.Errorf("building cqpd: %v\n%s", err, out)
		}
	}

	addrs, err := freeAddrs(drillNodes)
	if err != nil {
		return err
	}
	nodes := make([]*drillNode, drillNodes)
	peerParts := make([]string, drillNodes)
	for i := range nodes {
		id := fmt.Sprintf("n%d", i+1)
		peerParts[i] = id + "=http://" + addrs[i]
		nodes[i] = &drillNode{id: id, addr: addrs[i], base: "http://" + addrs[i]}
	}
	peers := strings.Join(peerParts, ",")
	for _, n := range nodes {
		n.log = filepath.Join(tmp, n.id+".log")
		n.args = []string{cqpdBin,
			"-addr", n.addr,
			"-movies", "300", "-seed", fmt.Sprint(seed),
			"-data", filepath.Join(tmp, n.id),
			"-node-id", n.id, "-peers", peers, "-replicate",
			"-probe-interval", "100ms",
		}
		if err := n.start(); err != nil {
			return err
		}
	}
	defer func() {
		for _, n := range nodes {
			n.kill()
		}
	}()
	fail := func(format string, a ...any) error {
		for _, n := range nodes {
			fmt.Fprint(os.Stderr, n.tail())
		}
		return fmt.Errorf(format, a...)
	}

	for _, n := range nodes {
		if err := waitHealthy(n.base, drillBootWait); err != nil {
			return fail("node %s never became healthy: %v", n.id, err)
		}
	}
	fmt.Printf("cluster drill: %d nodes up (%s)\n", drillNodes, peers)

	// Acked mutations: PUT through every node round-robin, so roughly two
	// thirds of the writes prove owner-proxying on the way in.
	text := cqp.SyntheticProfile(12, seed+1).String()
	acked := make(map[string]uint64, nProfiles)
	ids := make([]string, 0, nProfiles)
	for i := 0; i < nProfiles; i++ {
		id := fmt.Sprintf("user-%02d", i)
		v, err := putDrillProfile(nodes[i%drillNodes].base, id, text)
		if err != nil {
			return fail("PUT %s: %v", id, err)
		}
		acked[id] = v
		ids = append(ids, id)
	}

	owner := make(map[string]string, nProfiles)
	follower := make(map[string]string, nProfiles)
	for _, id := range ids {
		var route struct {
			Owner    string `json:"owner"`
			Follower string `json:"follower"`
		}
		if _, err := drillGet(nodes[0].base+"/cluster/route/"+id, &route); err != nil {
			return fail("route %s: %v", id, err)
		}
		owner[id], follower[id] = route.Owner, route.Follower
	}

	// Replication drain: every acked profile must sit in its follower's
	// replica at the acked version before anything is killed — otherwise
	// the drill would measure replication lag, not failover.
	if err := waitReplicated(nodes, ids, acked, follower); err != nil {
		return fail("replication never drained: %v", err)
	}

	tracked := ids[0]
	var victim *drillNode
	survivors := make([]*drillNode, 0, drillNodes-1)
	for _, n := range nodes {
		if n.id == owner[tracked] {
			victim = n
		} else {
			survivors = append(survivors, n)
		}
	}
	fmt.Printf("cluster drill: killing %s (owner of %s; follower %s) with SIGKILL\n",
		victim.id, tracked, follower[tracked])
	victim.kill()
	killedAt := time.Now()

	// Failover: hammer the tracked profile through a survivor until it
	// answers. The first read already exercises the one-strike breaker.
	res := drillResult{Nodes: drillNodes, Profiles: nProfiles,
		Victim: victim.id, TrackedProfile: tracked}
	for {
		pj, code, err := getDrillProfile(survivors[0].base, tracked)
		if err == nil && code == http.StatusOK && pj.Version == acked[tracked] {
			res.FailoverMS = float64(time.Since(killedAt).Microseconds()) / 1000
			break
		}
		if time.Since(killedAt) > drillFailoverCap {
			return fail("no failover within %s (last: code=%d err=%v)", drillFailoverCap, code, err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	fmt.Printf("cluster drill: failover in %.1fms\n", res.FailoverMS)

	// Outage sweep: every acked profile stays readable through the
	// survivors; the dead node's shard must come back stale from the
	// follower's replica at exactly the acked version.
	for i, id := range ids {
		pj, code, err := getDrillProfile(survivors[i%len(survivors)].base, id)
		res.OutageReads++
		switch {
		case err != nil || code != http.StatusOK:
			res.OutageReadErrors++
			if owner[id] == victim.id {
				res.LostMutations++
			}
		case pj.Version != acked[id]:
			res.LostMutations++
		case pj.StaleReplica:
			res.StaleReplicaServes++
		}
	}
	fmt.Printf("cluster drill: outage sweep: %d reads, %d errors, %d stale-replica serves, %d lost\n",
		res.OutageReads, res.OutageReadErrors, res.StaleReplicaServes, res.LostMutations)

	// Rejoin: same binary, same flags, same data dir. The node must replay
	// its WAL, catch up from peers, and only then report healthy.
	restartAt := time.Now()
	if err := victim.start(); err != nil {
		return fail("restarting %s: %v", victim.id, err)
	}
	if err := waitHealthy(victim.base, drillBootWait); err != nil {
		return fail("%s never rejoined: %v", victim.id, err)
	}
	res.CatchupMS = float64(time.Since(restartAt).Microseconds()) / 1000

	// Zero acked loss, part two: the rejoined owner's own listing holds
	// every profile it owns at exactly the acked version...
	var listing struct {
		Profiles []struct {
			ID      string `json:"id"`
			Version uint64 `json:"version"`
		} `json:"profiles"`
	}
	if _, err := drillGet(victim.base+"/profiles", &listing); err != nil {
		return fail("rejoined listing: %v", err)
	}
	recovered := make(map[string]uint64, len(listing.Profiles))
	for _, p := range listing.Profiles {
		recovered[p.ID] = p.Version
	}
	res.RejoinListingOK = true
	for _, id := range ids {
		if owner[id] != victim.id {
			continue
		}
		if recovered[id] != acked[id] {
			res.RejoinListingOK = false
			res.LostMutations++
		}
	}
	// ...and every profile reads back undegraded through the rejoined node.
	for _, id := range ids {
		pj, code, err := getDrillProfile(victim.base, id)
		if err != nil || code != http.StatusOK || pj.Version != acked[id] || pj.StaleReplica {
			res.LostMutations++
		}
	}
	fmt.Printf("cluster drill: %s rejoined in %.0fms, listing ok=%v, lost=%d\n",
		victim.id, res.CatchupMS, res.RejoinListingOK, res.LostMutations)

	// Membership leg: the cluster is whole again — scale it out to a 4th
	// node and back in, under load, without dropping a single request.
	if err := runMembershipLeg(tmp, cqpdBin, seed, nodes, ids, text, acked, owner, &res); err != nil {
		return fail("membership leg: %v", err)
	}

	if jsonPath != "" {
		if dir := filepath.Dir(jsonPath); dir != "." {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				return err
			}
		}
		b, _ := json.MarshalIndent(res, "", "  ")
		if err := os.WriteFile(jsonPath, append(b, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", jsonPath)
	}
	if res.LostMutations > 0 || res.OutageReadErrors > 0 || !res.RejoinListingOK {
		return fail("drill failed: %d lost mutations, %d outage read errors, listing ok=%v",
			res.LostMutations, res.OutageReadErrors, res.RejoinListingOK)
	}
	if res.MembershipLoadErrors > 0 || !res.MembershipRouteAgree || !res.MembershipRestored {
		return fail("membership leg failed: %d load errors, route agree=%v, restored=%v",
			res.MembershipLoadErrors, res.MembershipRouteAgree, res.MembershipRestored)
	}
	fmt.Println("cluster drill: PASS — zero acked mutations lost, zero failed requests through join/leave")
	return nil
}

// runMembershipLeg boots n4 as a 1-node cluster, joins it into the ring
// through POST /cluster/join while a mixed PUT/GET loop runs against the
// original members, verifies shard movement and routing agreement, then
// drains it back out with /cluster/leave and checks the exact pre-join
// assignment returned. Populates the Membership* fields of res; returns
// an error only on infrastructure failure — scoring failures land in res
// and are gated by the caller.
func runMembershipLeg(tmp, cqpdBin string, seed int64, nodes []*drillNode, ids []string,
	text string, acked map[string]uint64, owner map[string]string, res *drillResult) error {
	addrs, err := freeAddrs(1)
	if err != nil {
		return err
	}
	joiner := &drillNode{id: "n4", addr: addrs[0], base: "http://" + addrs[0],
		log: filepath.Join(tmp, "n4.log")}
	joiner.args = []string{cqpdBin,
		"-addr", joiner.addr,
		"-movies", "300", "-seed", fmt.Sprint(seed),
		"-data", filepath.Join(tmp, "n4"),
		"-node-id", "n4", "-peers", "n4=" + joiner.base, "-replicate",
		"-probe-interval", "100ms",
	}
	if err := joiner.start(); err != nil {
		return err
	}
	defer joiner.kill()
	if err := waitHealthy(joiner.base, drillBootWait); err != nil {
		fmt.Fprint(os.Stderr, joiner.tail())
		return fmt.Errorf("joiner never became healthy: %v", err)
	}

	var st struct {
		Ring struct {
			Epoch uint64 `json:"epoch"`
		} `json:"ring"`
	}
	if _, err := drillGet(nodes[0].base+"/cluster/state", &st); err != nil {
		return err
	}
	joinEpoch, leaveEpoch := st.Ring.Epoch+1, st.Ring.Epoch+2

	// Sustained mixed load against the original members, running through
	// both transitions. Every request must succeed.
	stopLoad := make(chan struct{})
	loadDone := make(chan struct{})
	go func() {
		defer close(loadDone)
		for i := 0; ; i++ {
			select {
			case <-stopLoad:
				return
			default:
			}
			base := nodes[i%len(nodes)].base
			id := fmt.Sprintf("load-%02d", i%20)
			if _, err := putDrillProfile(base, id, text); err != nil {
				res.MembershipLoadErrors++
				fmt.Fprintf(os.Stderr, "membership load: PUT %s: %v\n", id, err)
			}
			res.MembershipLoadOps++
			if i > 0 {
				gid := fmt.Sprintf("load-%02d", (i-1)%20)
				if _, code, err := getDrillProfile(base, gid); err != nil || code != http.StatusOK {
					res.MembershipLoadErrors++
					fmt.Fprintf(os.Stderr, "membership load: GET %s: code=%d err=%v\n", gid, code, err)
				}
				res.MembershipLoadOps++
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()
	stopped := false
	stop := func() {
		if !stopped {
			stopped = true
			close(stopLoad)
			<-loadDone
		}
	}
	defer stop()
	time.Sleep(100 * time.Millisecond) // load demonstrably in flight first

	fmt.Printf("cluster drill: joining %s into the ring under load\n", joiner.id)
	joinAt := time.Now()
	if err := drillPost(nodes[0].base+"/cluster/join",
		map[string]any{"id": joiner.id, "url": joiner.base}); err != nil {
		return fmt.Errorf("join: %v", err)
	}
	all := append(append([]*drillNode{}, nodes...), joiner)
	if err := waitDrillEpoch(all, joinEpoch); err != nil {
		return fmt.Errorf("join never committed: %v", err)
	}
	res.JoinMS = float64(time.Since(joinAt).Microseconds()) / 1000

	// Route sweep: all four nodes must agree on every tracked profile at
	// the new epoch; the profiles now owned by the joiner are the moved set.
	res.MembershipRouteAgree = true
	moved := make([]string, 0, len(ids))
	for _, id := range ids {
		o, ok, err := drillRouteAgreement(all, id, joinEpoch)
		if err != nil {
			return err
		}
		if !ok {
			res.MembershipRouteAgree = false
		}
		if o == joiner.id {
			moved = append(moved, id)
		}
	}
	res.MovedShards = len(moved)
	if len(moved) == 0 {
		return fmt.Errorf("join moved no tracked shards to %s", joiner.id)
	}

	// Every moved shard was handed off: present on the joiner at the acked
	// version, evicted from its old owner, and readable undegraded.
	joinerStore, err := drillStoreMap(joiner.base)
	if err != nil {
		return err
	}
	oldStores := make(map[string]map[string]uint64, len(nodes))
	for _, n := range nodes {
		if oldStores[n.id], err = drillStoreMap(n.base); err != nil {
			return err
		}
	}
	for i, id := range moved {
		if joinerStore[id] != acked[id] {
			res.LostMutations++
			fmt.Fprintf(os.Stderr, "membership: %s on joiner at v%d, acked v%d\n", id, joinerStore[id], acked[id])
		}
		if _, still := oldStores[owner[id]][id]; still {
			return fmt.Errorf("moved shard %s still on old owner %s", id, owner[id])
		}
		pj, code, err := getDrillProfile(nodes[i%len(nodes)].base, id)
		if err != nil || code != http.StatusOK || pj.Version != acked[id] || pj.StaleReplica {
			res.LostMutations++
			fmt.Fprintf(os.Stderr, "membership: read %s post-join: code=%d v=%d stale=%v err=%v\n",
				id, code, pj.Version, pj.StaleReplica, err)
		}
	}
	fmt.Printf("cluster drill: join committed epoch %d in %.0fms, %d of %d shards moved\n",
		joinEpoch, res.JoinMS, len(moved), len(ids))

	// Scale back in: the joiner leaves, still under load.
	leaveAt := time.Now()
	if err := drillPost(nodes[0].base+"/cluster/leave",
		map[string]any{"id": joiner.id}); err != nil {
		return fmt.Errorf("leave: %v", err)
	}
	if err := waitDrillEpoch(nodes, leaveEpoch); err != nil {
		return fmt.Errorf("leave never committed: %v", err)
	}
	res.LeaveMS = float64(time.Since(leaveAt).Microseconds()) / 1000
	stop()

	// The exact pre-join assignment is restored and nothing was lost on
	// the round trip through the joiner.
	res.MembershipRestored = true
	for i, id := range ids {
		o, ok, err := drillRouteAgreement(nodes, id, leaveEpoch)
		if err != nil {
			return err
		}
		if !ok || o != owner[id] {
			res.MembershipRestored = false
			fmt.Fprintf(os.Stderr, "membership: %s owned by %s after leave, was %s (agree=%v)\n", id, o, owner[id], ok)
		}
		pj, code, err := getDrillProfile(nodes[i%len(nodes)].base, id)
		if err != nil || code != http.StatusOK || pj.Version != acked[id] || pj.StaleReplica {
			res.LostMutations++
			res.MembershipRestored = false
			fmt.Fprintf(os.Stderr, "membership: read %s post-leave: code=%d v=%d stale=%v err=%v\n",
				id, code, pj.Version, pj.StaleReplica, err)
		}
	}
	fmt.Printf("cluster drill: leave committed epoch %d in %.0fms; load %d ops, %d errors\n",
		leaveEpoch, res.LeaveMS, res.MembershipLoadOps, res.MembershipLoadErrors)
	return nil
}

// drillRouteAgreement asks every node to route id and reports the agreed
// owner, whether all answers matched at the wanted epoch, or an error on
// transport failure.
func drillRouteAgreement(nodes []*drillNode, id string, epoch uint64) (string, bool, error) {
	ownerSeen := ""
	for _, n := range nodes {
		var route struct {
			Owner string `json:"owner"`
			Epoch uint64 `json:"epoch"`
		}
		if _, err := drillGet(n.base+"/cluster/route/"+id, &route); err != nil {
			return "", false, fmt.Errorf("route %s via %s: %v", id, n.id, err)
		}
		if route.Epoch != epoch {
			return route.Owner, false, nil
		}
		if ownerSeen == "" {
			ownerSeen = route.Owner
		} else if route.Owner != ownerSeen {
			return ownerSeen, false, nil
		}
	}
	return ownerSeen, true, nil
}

// drillStoreMap fetches a node's authoritative store listing as id→version.
func drillStoreMap(base string) (map[string]uint64, error) {
	var st struct {
		Store []struct {
			ID      string `json:"id"`
			Version uint64 `json:"version"`
		} `json:"store"`
	}
	if _, err := drillGet(base+"/cluster/state", &st); err != nil {
		return nil, err
	}
	m := make(map[string]uint64, len(st.Store))
	for _, e := range st.Store {
		m[e.ID] = e.Version
	}
	return m, nil
}

// waitDrillEpoch polls until every node reports the target ring epoch.
func waitDrillEpoch(nodes []*drillNode, epoch uint64) error {
	deadline := time.Now().Add(drillMemberWait)
	for {
		behind := ""
		for _, n := range nodes {
			var st struct {
				Ring struct {
					Epoch uint64 `json:"epoch"`
				} `json:"ring"`
			}
			if _, err := drillGet(n.base+"/cluster/state", &st); err != nil {
				behind = fmt.Sprintf("%s: %v", n.id, err)
				break
			}
			if st.Ring.Epoch != epoch {
				behind = fmt.Sprintf("%s at epoch %d", n.id, st.Ring.Epoch)
				break
			}
		}
		if behind == "" {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("epoch %d not reached within %s (%s)", epoch, drillMemberWait, behind)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// drillPost sends a JSON body and expects 200; membership transitions can
// take a while, so it uses its own generous timeout.
func drillPost(url string, body any) error {
	b, err := json.Marshal(body)
	if err != nil {
		return err
	}
	cli := &http.Client{Timeout: drillMemberWait}
	resp, err := cli.Post(url, "application/json", strings.NewReader(string(b)))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		rb, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("POST %s: %d: %s", url, resp.StatusCode, rb)
	}
	io.Copy(io.Discard, resp.Body)
	return nil
}

var drillClient = &http.Client{Timeout: 3 * time.Second}

// freeAddrs reserves n distinct loopback ports by binding and releasing
// them. The usual tiny race (another process grabbing a port between close
// and cqpd's bind) surfaces as a node that never turns healthy.
func freeAddrs(n int) ([]string, error) {
	addrs := make([]string, 0, n)
	lns := make([]net.Listener, 0, n)
	defer func() {
		for _, ln := range lns {
			ln.Close()
		}
	}()
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		lns = append(lns, ln)
		addrs = append(addrs, ln.Addr().String())
	}
	return addrs, nil
}

func waitHealthy(base string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		resp, err := drillClient.Get(base + "/healthz")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("not healthy after %s", timeout)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// waitReplicated polls each follower's /cluster/state until its replica
// holds every profile it follows at the acked version.
func waitReplicated(nodes []*drillNode, ids []string, acked map[string]uint64, follower map[string]string) error {
	byBase := make(map[string]string, len(nodes))
	for _, n := range nodes {
		byBase[n.id] = n.base
	}
	deadline := time.Now().Add(drillDrainWait)
	for {
		missing := ""
		replica := make(map[string]map[string]uint64, len(nodes))
		for id, base := range byBase {
			var state struct {
				Replica []struct {
					ID      string `json:"id"`
					Version uint64 `json:"version"`
				} `json:"replica"`
			}
			if _, err := drillGet(base+"/cluster/state", &state); err != nil {
				return err
			}
			m := make(map[string]uint64, len(state.Replica))
			for _, r := range state.Replica {
				m[r.ID] = r.Version
			}
			replica[id] = m
		}
		for _, id := range ids {
			if replica[follower[id]][id] != acked[id] {
				missing = fmt.Sprintf("%s@%d not on %s", id, acked[id], follower[id])
				break
			}
		}
		if missing == "" {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("after %s: %s", drillDrainWait, missing)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func drillGet(url string, out any) (int, error) {
	resp, err := drillClient.Get(url)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, fmt.Errorf("GET %s: %d: %s", url, resp.StatusCode, b)
	}
	return resp.StatusCode, json.NewDecoder(resp.Body).Decode(out)
}

// drillProfile is the subset of the profile response the drill checks.
type drillProfile struct {
	ID           string `json:"id"`
	Version      uint64 `json:"version"`
	StaleReplica bool   `json:"stale_replica"`
}

func getDrillProfile(base, id string) (drillProfile, int, error) {
	var pj drillProfile
	resp, err := drillClient.Get(base + "/profiles/" + id)
	if err != nil {
		return pj, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return pj, resp.StatusCode, nil
	}
	return pj, resp.StatusCode, json.NewDecoder(resp.Body).Decode(&pj)
}

func putDrillProfile(base, id, text string) (uint64, error) {
	req, err := http.NewRequest(http.MethodPut, base+"/profiles/"+id, strings.NewReader(text))
	if err != nil {
		return 0, err
	}
	resp, err := drillClient.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		return 0, fmt.Errorf("PUT %s: %d: %s", id, resp.StatusCode, b)
	}
	var pj drillProfile
	if err := json.NewDecoder(resp.Body).Decode(&pj); err != nil {
		return 0, err
	}
	return pj.Version, nil
}
