package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"time"

	"cqp"
)

// The cluster drill is the repo's kill -9 acceptance test as a benchmark:
// boot a 3-node replicated cqpd cluster as real OS processes, write
// profiles through every node, SIGKILL the node owning a tracked profile,
// and measure how long reads of that profile stay dark. The drill fails
// (non-zero exit) when any acked mutation is lost — during the outage or
// after the killed owner rejoins — or when failover never completes.

const (
	drillNodes       = 3
	drillBootWait    = 30 * time.Second
	drillDrainWait   = 15 * time.Second
	drillFailoverCap = 10 * time.Second
)

// drillResult is the BENCH_8.json shape.
type drillResult struct {
	Nodes          int    `json:"nodes"`
	Profiles       int    `json:"profiles"`
	Victim         string `json:"victim"`
	TrackedProfile string `json:"tracked_profile"`
	// FailoverMS is kill -9 to the first successful read of the tracked
	// profile through a surviving node.
	FailoverMS float64 `json:"failover_ms"`
	// OutageReads sweeps every acked profile through the survivors while
	// the owner is dead; StaleReplicaServes counts the answers that came
	// from the follower's replica.
	OutageReads        int `json:"outage_reads"`
	OutageReadErrors   int `json:"outage_read_errors"`
	StaleReplicaServes int `json:"stale_replica_serves"`
	// LostMutations counts acked PUTs that became unreadable or regressed
	// to an older version at any point in the drill. The gate: must be 0.
	LostMutations int     `json:"lost_mutations"`
	CatchupMS     float64 `json:"catchup_ms"`
	// RejoinListingOK: the restarted owner's /profiles listing holds every
	// profile it owns at exactly the acked version.
	RejoinListingOK bool `json:"rejoin_listing_ok"`
}

// drillNode is one cqpd process under the drill's control.
type drillNode struct {
	id   string
	addr string // host:port
	base string // http://host:port
	args []string
	cmd  *exec.Cmd
	log  string // log file path
}

func (n *drillNode) start() error {
	f, err := os.OpenFile(n.log, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	cmd := exec.Command(n.args[0], n.args[1:]...)
	cmd.Stdout, cmd.Stderr = f, f
	if err := cmd.Start(); err != nil {
		f.Close()
		return fmt.Errorf("starting %s: %v", n.id, err)
	}
	n.cmd = cmd
	// Reap on exit so a killed node never lingers as a zombie; the file
	// closes once the process (the only writer) is gone.
	go func() { cmd.Wait(); f.Close() }()
	return nil
}

// kill delivers SIGKILL — the drill's whole point is that the process gets
// no chance to flush, drain, or say goodbye.
func (n *drillNode) kill() {
	if n.cmd != nil && n.cmd.Process != nil {
		n.cmd.Process.Kill()
	}
}

func (n *drillNode) tail() string {
	b, err := os.ReadFile(n.log)
	if err != nil {
		return ""
	}
	lines := strings.Split(strings.TrimSpace(string(b)), "\n")
	if len(lines) > 12 {
		lines = lines[len(lines)-12:]
	}
	return fmt.Sprintf("--- %s log tail ---\n%s\n", n.id, strings.Join(lines, "\n"))
}

// runClusterDrill builds (or takes) a cqpd binary, runs the kill-and-
// recover drill, writes the result JSON, and fails on any acked loss.
func runClusterDrill(cqpdBin string, nProfiles int, seed int64, jsonPath string) error {
	tmp, err := os.MkdirTemp("", "cqp-drill-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)

	if cqpdBin == "" {
		cqpdBin = filepath.Join(tmp, "cqpd")
		fmt.Println("cluster drill: building cqpd...")
		if out, err := exec.Command("go", "build", "-o", cqpdBin, "cqp/cmd/cqpd").CombinedOutput(); err != nil {
			return fmt.Errorf("building cqpd: %v\n%s", err, out)
		}
	}

	addrs, err := freeAddrs(drillNodes)
	if err != nil {
		return err
	}
	nodes := make([]*drillNode, drillNodes)
	peerParts := make([]string, drillNodes)
	for i := range nodes {
		id := fmt.Sprintf("n%d", i+1)
		peerParts[i] = id + "=http://" + addrs[i]
		nodes[i] = &drillNode{id: id, addr: addrs[i], base: "http://" + addrs[i]}
	}
	peers := strings.Join(peerParts, ",")
	for _, n := range nodes {
		n.log = filepath.Join(tmp, n.id+".log")
		n.args = []string{cqpdBin,
			"-addr", n.addr,
			"-movies", "300", "-seed", fmt.Sprint(seed),
			"-data", filepath.Join(tmp, n.id),
			"-node-id", n.id, "-peers", peers, "-replicate",
			"-probe-interval", "100ms",
		}
		if err := n.start(); err != nil {
			return err
		}
	}
	defer func() {
		for _, n := range nodes {
			n.kill()
		}
	}()
	fail := func(format string, a ...any) error {
		for _, n := range nodes {
			fmt.Fprint(os.Stderr, n.tail())
		}
		return fmt.Errorf(format, a...)
	}

	for _, n := range nodes {
		if err := waitHealthy(n.base, drillBootWait); err != nil {
			return fail("node %s never became healthy: %v", n.id, err)
		}
	}
	fmt.Printf("cluster drill: %d nodes up (%s)\n", drillNodes, peers)

	// Acked mutations: PUT through every node round-robin, so roughly two
	// thirds of the writes prove owner-proxying on the way in.
	text := cqp.SyntheticProfile(12, seed+1).String()
	acked := make(map[string]uint64, nProfiles)
	ids := make([]string, 0, nProfiles)
	for i := 0; i < nProfiles; i++ {
		id := fmt.Sprintf("user-%02d", i)
		v, err := putDrillProfile(nodes[i%drillNodes].base, id, text)
		if err != nil {
			return fail("PUT %s: %v", id, err)
		}
		acked[id] = v
		ids = append(ids, id)
	}

	owner := make(map[string]string, nProfiles)
	follower := make(map[string]string, nProfiles)
	for _, id := range ids {
		var route struct {
			Owner    string `json:"owner"`
			Follower string `json:"follower"`
		}
		if _, err := drillGet(nodes[0].base+"/cluster/route/"+id, &route); err != nil {
			return fail("route %s: %v", id, err)
		}
		owner[id], follower[id] = route.Owner, route.Follower
	}

	// Replication drain: every acked profile must sit in its follower's
	// replica at the acked version before anything is killed — otherwise
	// the drill would measure replication lag, not failover.
	if err := waitReplicated(nodes, ids, acked, follower); err != nil {
		return fail("replication never drained: %v", err)
	}

	tracked := ids[0]
	var victim *drillNode
	survivors := make([]*drillNode, 0, drillNodes-1)
	for _, n := range nodes {
		if n.id == owner[tracked] {
			victim = n
		} else {
			survivors = append(survivors, n)
		}
	}
	fmt.Printf("cluster drill: killing %s (owner of %s; follower %s) with SIGKILL\n",
		victim.id, tracked, follower[tracked])
	victim.kill()
	killedAt := time.Now()

	// Failover: hammer the tracked profile through a survivor until it
	// answers. The first read already exercises the one-strike breaker.
	res := drillResult{Nodes: drillNodes, Profiles: nProfiles,
		Victim: victim.id, TrackedProfile: tracked}
	for {
		pj, code, err := getDrillProfile(survivors[0].base, tracked)
		if err == nil && code == http.StatusOK && pj.Version == acked[tracked] {
			res.FailoverMS = float64(time.Since(killedAt).Microseconds()) / 1000
			break
		}
		if time.Since(killedAt) > drillFailoverCap {
			return fail("no failover within %s (last: code=%d err=%v)", drillFailoverCap, code, err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	fmt.Printf("cluster drill: failover in %.1fms\n", res.FailoverMS)

	// Outage sweep: every acked profile stays readable through the
	// survivors; the dead node's shard must come back stale from the
	// follower's replica at exactly the acked version.
	for i, id := range ids {
		pj, code, err := getDrillProfile(survivors[i%len(survivors)].base, id)
		res.OutageReads++
		switch {
		case err != nil || code != http.StatusOK:
			res.OutageReadErrors++
			if owner[id] == victim.id {
				res.LostMutations++
			}
		case pj.Version != acked[id]:
			res.LostMutations++
		case pj.StaleReplica:
			res.StaleReplicaServes++
		}
	}
	fmt.Printf("cluster drill: outage sweep: %d reads, %d errors, %d stale-replica serves, %d lost\n",
		res.OutageReads, res.OutageReadErrors, res.StaleReplicaServes, res.LostMutations)

	// Rejoin: same binary, same flags, same data dir. The node must replay
	// its WAL, catch up from peers, and only then report healthy.
	restartAt := time.Now()
	if err := victim.start(); err != nil {
		return fail("restarting %s: %v", victim.id, err)
	}
	if err := waitHealthy(victim.base, drillBootWait); err != nil {
		return fail("%s never rejoined: %v", victim.id, err)
	}
	res.CatchupMS = float64(time.Since(restartAt).Microseconds()) / 1000

	// Zero acked loss, part two: the rejoined owner's own listing holds
	// every profile it owns at exactly the acked version...
	var listing struct {
		Profiles []struct {
			ID      string `json:"id"`
			Version uint64 `json:"version"`
		} `json:"profiles"`
	}
	if _, err := drillGet(victim.base+"/profiles", &listing); err != nil {
		return fail("rejoined listing: %v", err)
	}
	recovered := make(map[string]uint64, len(listing.Profiles))
	for _, p := range listing.Profiles {
		recovered[p.ID] = p.Version
	}
	res.RejoinListingOK = true
	for _, id := range ids {
		if owner[id] != victim.id {
			continue
		}
		if recovered[id] != acked[id] {
			res.RejoinListingOK = false
			res.LostMutations++
		}
	}
	// ...and every profile reads back undegraded through the rejoined node.
	for _, id := range ids {
		pj, code, err := getDrillProfile(victim.base, id)
		if err != nil || code != http.StatusOK || pj.Version != acked[id] || pj.StaleReplica {
			res.LostMutations++
		}
	}
	fmt.Printf("cluster drill: %s rejoined in %.0fms, listing ok=%v, lost=%d\n",
		victim.id, res.CatchupMS, res.RejoinListingOK, res.LostMutations)

	if jsonPath != "" {
		if dir := filepath.Dir(jsonPath); dir != "." {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				return err
			}
		}
		b, _ := json.MarshalIndent(res, "", "  ")
		if err := os.WriteFile(jsonPath, append(b, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", jsonPath)
	}
	if res.LostMutations > 0 || res.OutageReadErrors > 0 || !res.RejoinListingOK {
		return fail("drill failed: %d lost mutations, %d outage read errors, listing ok=%v",
			res.LostMutations, res.OutageReadErrors, res.RejoinListingOK)
	}
	fmt.Println("cluster drill: PASS — zero acked mutations lost")
	return nil
}

var drillClient = &http.Client{Timeout: 3 * time.Second}

// freeAddrs reserves n distinct loopback ports by binding and releasing
// them. The usual tiny race (another process grabbing a port between close
// and cqpd's bind) surfaces as a node that never turns healthy.
func freeAddrs(n int) ([]string, error) {
	addrs := make([]string, 0, n)
	lns := make([]net.Listener, 0, n)
	defer func() {
		for _, ln := range lns {
			ln.Close()
		}
	}()
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		lns = append(lns, ln)
		addrs = append(addrs, ln.Addr().String())
	}
	return addrs, nil
}

func waitHealthy(base string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		resp, err := drillClient.Get(base + "/healthz")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("not healthy after %s", timeout)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// waitReplicated polls each follower's /cluster/state until its replica
// holds every profile it follows at the acked version.
func waitReplicated(nodes []*drillNode, ids []string, acked map[string]uint64, follower map[string]string) error {
	byBase := make(map[string]string, len(nodes))
	for _, n := range nodes {
		byBase[n.id] = n.base
	}
	deadline := time.Now().Add(drillDrainWait)
	for {
		missing := ""
		replica := make(map[string]map[string]uint64, len(nodes))
		for id, base := range byBase {
			var state struct {
				Replica []struct {
					ID      string `json:"id"`
					Version uint64 `json:"version"`
				} `json:"replica"`
			}
			if _, err := drillGet(base+"/cluster/state", &state); err != nil {
				return err
			}
			m := make(map[string]uint64, len(state.Replica))
			for _, r := range state.Replica {
				m[r.ID] = r.Version
			}
			replica[id] = m
		}
		for _, id := range ids {
			if replica[follower[id]][id] != acked[id] {
				missing = fmt.Sprintf("%s@%d not on %s", id, acked[id], follower[id])
				break
			}
		}
		if missing == "" {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("after %s: %s", drillDrainWait, missing)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func drillGet(url string, out any) (int, error) {
	resp, err := drillClient.Get(url)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, fmt.Errorf("GET %s: %d: %s", url, resp.StatusCode, b)
	}
	return resp.StatusCode, json.NewDecoder(resp.Body).Decode(out)
}

// drillProfile is the subset of the profile response the drill checks.
type drillProfile struct {
	ID           string `json:"id"`
	Version      uint64 `json:"version"`
	StaleReplica bool   `json:"stale_replica"`
}

func getDrillProfile(base, id string) (drillProfile, int, error) {
	var pj drillProfile
	resp, err := drillClient.Get(base + "/profiles/" + id)
	if err != nil {
		return pj, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return pj, resp.StatusCode, nil
	}
	return pj, resp.StatusCode, json.NewDecoder(resp.Body).Decode(&pj)
}

func putDrillProfile(base, id, text string) (uint64, error) {
	req, err := http.NewRequest(http.MethodPut, base+"/profiles/"+id, strings.NewReader(text))
	if err != nil {
		return 0, err
	}
	resp, err := drillClient.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		return 0, fmt.Errorf("PUT %s: %d: %s", id, resp.StatusCode, b)
	}
	var pj drillProfile
	if err := json.NewDecoder(resp.Body).Decode(&pj); err != nil {
		return 0, err
	}
	return pj.Version, nil
}
