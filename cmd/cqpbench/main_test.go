package main

import "testing"

func TestParseInts(t *testing.T) {
	got, err := parseInts("10, 20,30")
	if err != nil || len(got) != 3 || got[0] != 10 || got[2] != 30 {
		t.Errorf("parseInts: %v %v", got, err)
	}
	if _, err := parseInts("10,x"); err == nil {
		t.Error("bad element must fail")
	}
}

func TestBudgetStr(t *testing.T) {
	if budgetStr(0) != "unlimited" || budgetStr(-1) != "unlimited" {
		t.Error("unlimited rendering")
	}
	if budgetStr(42) != "42" {
		t.Error("numeric rendering")
	}
}
