package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"time"

	"cqp/internal/server"
)

// The batch benchmark (-batchbench) measures the shared-work layers that
// make batching actually pay: the cross-request per-preference estimate
// memo and the shared-scan batch executor. One execute-mode batch of all-
// distinct items (no dedup help) runs twice on fresh daemons — once with
// both layers on (the default) and once with both off (-estmemo=false
// -scanshare=false equivalent) — under the same injected estimator latency
// as the other serving benchmarks. The gate requires the shared run to beat
// the private run by 1.5x; for context the report also times the same items
// as sequential singleton requests, the comparison that used to sit at
// 0.99x before the shared-work layers existed.

// batchBenchGate is the minimum shared-over-private speedup -gate accepts.
const batchBenchGate = 1.5

// batchBenchMode is one configuration's measured run.
type batchBenchMode struct {
	BatchMS       float64 `json:"batch_ms"`
	MemoHits      int64   `json:"memo_hits"`
	MemoMisses    int64   `json:"memo_misses"`
	PhysicalScans int64   `json:"physical_scans"`
	SharedScans   int64   `json:"shared_scans"`
	Errors        int     `json:"errors"`
}

type batchBenchReport struct {
	Items  int                       `json:"items"`
	Movies int                       `json:"movies"`
	Modes  map[string]batchBenchMode `json:"modes"`
	// SharedWorkSpeedup is private batch_ms over shared batch_ms — the
	// number the CI gate requires to stay >= 1.5.
	SharedWorkSpeedup float64 `json:"shared_work_speedup"`
	// SingletonMS times the same items as sequential /execute singletons
	// against a shared-work daemon; BatchVsSingletons is that over the
	// shared batch time — the old 0.99x regression number.
	SingletonMS       float64 `json:"singleton_ms"`
	BatchVsSingletons float64 `json:"batch_vs_singletons"`
}

// batchBenchItem builds the i-th all-distinct request body. Every item
// scans MOVIE with a different filter: the memo shares estimates across
// them (same FROM set, same profile) and the scan share collapses their
// physical passes, while the dedup layer sees nothing to coalesce.
func batchBenchItem(i int) map[string]any {
	return map[string]any{
		"sql":        fmt.Sprintf("SELECT title FROM MOVIE WHERE year >= %d", 1900+i),
		"profile_id": "bench",
		"any_match":  true,
		"problem":    map[string]any{"number": 2, "cmax_ms": 10000},
	}
}

// batchBenchOnce boots a fresh daemon in the given sharing configuration,
// fires one execute-mode batch of items all-distinct requests, and reads
// the shared-work counters back out of the daemon's registry.
func batchBenchOnce(movies int, seed int64, items int, private bool) (batchBenchMode, error) {
	s, ts, err := newBenchServer(movies, seed, server.Config{NoEstimateMemo: private, NoScanShare: private})
	if err != nil {
		return batchBenchMode{}, err
	}
	defer func() {
		ts.Close()
		_ = s.Shutdown(context.Background())
	}()

	list := make([]map[string]any, items)
	for i := range list {
		list[i] = batchBenchItem(i)
	}
	body, _ := json.Marshal(map[string]any{"items": list, "execute": true})
	t0 := time.Now()
	resp, err := ts.Client().Post(ts.URL+"/personalize/batch", "application/json", bytes.NewReader(body))
	ms := float64(time.Since(t0)) / float64(time.Millisecond)
	if err != nil {
		return batchBenchMode{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return batchBenchMode{}, fmt.Errorf("batchbench: HTTP %d", resp.StatusCode)
	}
	var br struct {
		Results []struct {
			Error *struct {
				Message string `json:"message"`
			} `json:"error"`
		} `json:"results"`
		PhysicalScans int64 `json:"physical_scans"`
		SharedScans   int64 `json:"shared_scans"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		return batchBenchMode{}, err
	}
	mode := batchBenchMode{
		BatchMS:       ms,
		MemoHits:      s.Registry().Counter("estimate_memo_hits_total").Value(),
		MemoMisses:    s.Registry().Counter("estimate_memo_misses_total").Value(),
		PhysicalScans: br.PhysicalScans,
		SharedScans:   br.SharedScans,
	}
	for _, r := range br.Results {
		if r.Error != nil {
			mode.Errors++
		}
	}
	return mode, nil
}

// batchBenchSingletons times the same items as sequential /execute requests
// against one shared-work daemon — the pre-batching serving shape.
func batchBenchSingletons(movies int, seed int64, items int) (float64, error) {
	s, ts, err := newBenchServer(movies, seed, server.Config{})
	if err != nil {
		return 0, err
	}
	defer func() {
		ts.Close()
		_ = s.Shutdown(context.Background())
	}()
	t0 := time.Now()
	for i := 0; i < items; i++ {
		b, _ := json.Marshal(batchBenchItem(i))
		resp, err := ts.Client().Post(ts.URL+"/execute", "application/json", bytes.NewReader(b))
		if err != nil {
			return 0, err
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return 0, fmt.Errorf("singleton %d: HTTP %d", i, resp.StatusCode)
		}
	}
	return float64(time.Since(t0)) / float64(time.Millisecond), nil
}

// runBatchBench runs the shared-vs-private batch benchmark, writes the JSON
// report to jsonPath when set, and — with gate — fails unless shared work
// delivers batchBenchGate over the private baseline with zero errors.
func runBatchBench(movies int, seed int64, items int, jsonPath string, gate bool) error {
	disarm, err := armServeLatency()
	if err != nil {
		return err
	}
	defer disarm()

	rep := batchBenchReport{Items: items, Movies: movies, Modes: map[string]batchBenchMode{}}
	for _, m := range []struct {
		name    string
		private bool
	}{{"shared", false}, {"private", true}} {
		st, err := batchBenchOnce(movies, seed, items, m.private)
		if err != nil {
			return err
		}
		rep.Modes[m.name] = st
		fmt.Printf("batchbench %-8s  %8.2fms  memo %d/%d hit/miss  scans %d physical %d shared  errors %d\n",
			m.name, st.BatchMS, st.MemoHits, st.MemoMisses, st.PhysicalScans, st.SharedScans, st.Errors)
	}
	if shared := rep.Modes["shared"].BatchMS; shared > 0 {
		rep.SharedWorkSpeedup = rep.Modes["private"].BatchMS / shared
	}
	if rep.SingletonMS, err = batchBenchSingletons(movies, seed, items); err != nil {
		return err
	}
	if shared := rep.Modes["shared"].BatchMS; shared > 0 {
		rep.BatchVsSingletons = rep.SingletonMS / shared
	}
	fmt.Printf("batchbench shared-work speedup: %.2fx (gate %.1fx); batch vs singletons: %.2fx (%.2fms vs %.2fms)\n",
		rep.SharedWorkSpeedup, batchBenchGate, rep.BatchVsSingletons, rep.Modes["shared"].BatchMS, rep.SingletonMS)

	if jsonPath != "" {
		data, err := json.MarshalIndent(map[string]any{"batchbench": rep}, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", jsonPath)
	}
	if gate {
		for name, st := range rep.Modes {
			if st.Errors > 0 {
				return fmt.Errorf("batchbench gate: %s mode saw %d item errors", name, st.Errors)
			}
		}
		if rep.SharedWorkSpeedup < batchBenchGate {
			return fmt.Errorf("batchbench gate: shared work under %.1fx (%.2fx)", batchBenchGate, rep.SharedWorkSpeedup)
		}
	}
	return nil
}
