package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"runtime/metrics"
	"sync"
	"time"

	"cqp/internal/exec"
	"cqp/internal/iter"
	"cqp/internal/query"
	"cqp/internal/sqlparse"
	"cqp/internal/workload"
)

// The spill benchmark (-spillbench) measures the executor's memory budget:
// the same union-all personalized query is evaluated unbounded and under a
// tight iter.Budget, and the two runs are compared on peak heap, wall time
// and — bit for bit — their ranked answers. The budgeted run must spill
// (Grace-partitioned join build sides, distinct sets and the union group
// table all move to temp files) yet return the identical ranking; the
// report records how much working memory that bought.

// spillModeStats is one mode's view of the run.
type spillModeStats struct {
	WallMS        float64 `json:"wall_ms"`
	PeakHeapBytes uint64  `json:"peak_heap_bytes"`
	// WorkingSetBytes is the peak live heap (bytes surviving GC marks,
	// per /gc/heap/live:bytes) minus the pre-run baseline — the
	// executor's own state on top of the resident database, which is
	// what the spill budget governs. Unlike HeapAlloc it excludes
	// not-yet-collected garbage, so runs with different allocation rates
	// compare fairly.
	WorkingSetBytes uint64 `json:"working_set_bytes"`
	AllocBytes      uint64 `json:"alloc_bytes"`
	SpillRuns       int64  `json:"spill_runs"`
	SpillRows       int64  `json:"spill_rows"`
	SpillFileBytes  int64  `json:"spill_file_bytes"`
	Rows            int    `json:"rows"`
	BlockReads      int64  `json:"block_reads"`
}

type spillReport struct {
	Movies      int                       `json:"movies"`
	Subqueries  int                       `json:"subqueries"`
	BudgetBytes int64                     `json:"budget_bytes"`
	Modes       map[string]spillModeStats `json:"modes"`
	// WorkingSetReduction is the unbounded run's peak working set over
	// the budgeted run's; > 1 means the budget genuinely shrank the
	// executor's memory footprint.
	WorkingSetReduction float64 `json:"working_set_reduction"`
	Identical           bool    `json:"identical_answers"`
}

// runSpillBench evaluates a union-all over a movies-sized database with and
// without a spill budget and writes the comparison (optionally as JSON).
func runSpillBench(movies int, seed int64, budget int64, jsonPath string, gate bool) error {
	if budget <= 0 {
		return fmt.Errorf("-spillbudget must be positive, got %d", budget)
	}
	db := workload.GenerateDB(workload.DBConfig{Movies: movies, Seed: seed})
	var subs []*query.Query
	var dois []float64
	const nsubs = 8
	// Each sub-query forces a full CAST build side (the actor selection
	// pushes down to ACTOR, not CAST), so the executor's budget-governed
	// state — hash-join build tables — dominates the unbounded run's
	// memory while the final answer stays small.
	for i := 0; i < nsubs; i++ {
		subs = append(subs, sqlparse.MustParse(db.Schema(), fmt.Sprintf(
			`SELECT title FROM MOVIE, CAST, ACTOR
			 WHERE MOVIE.mid = CAST.mid AND CAST.aid = ACTOR.aid AND ACTOR.name = 'Actor %05d'`,
			i+1)))
		dois = append(dois, 1-float64(i)/nsubs)
	}
	fmt.Printf("spill benchmark: %d movies, %d-way union-all, budget %d bytes\n",
		movies, nsubs, budget)

	spillDir, err := os.MkdirTemp("", "cqpbench-spill")
	if err != nil {
		return err
	}
	defer os.RemoveAll(spillDir)

	run := func(ctx context.Context) (*exec.UnionResult, spillModeStats, error) {
		var st spillModeStats
		runs0, rows0, bytes0 := iter.SpillStats()
		// Keep GC close on the heels of the live set so the sampled peak
		// measures working state, not accumulated garbage.
		defer debug.SetGCPercent(debug.SetGCPercent(20))
		runtime.GC()
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		alloc0 := ms.TotalAlloc
		peakHeap := ms.HeapAlloc
		live0 := liveHeap()
		peakLive := live0
		// Sample while the query runs; the peak live heap is the
		// executor's working set on top of the resident database.
		done := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			tick := time.NewTicker(time.Millisecond)
			defer tick.Stop()
			for {
				select {
				case <-done:
					return
				case <-tick.C:
					var s runtime.MemStats
					runtime.ReadMemStats(&s)
					if s.HeapAlloc > peakHeap {
						peakHeap = s.HeapAlloc
					}
					if l := liveHeap(); l > peakLive {
						peakLive = l
					}
				}
			}
		}()
		start := time.Now()
		res, err := exec.EvalUnionContext(ctx, db, subs, dois, 1)
		st.WallMS = float64(time.Since(start).Microseconds()) / 1000
		close(done)
		wg.Wait()
		if err != nil {
			return nil, st, err
		}
		runtime.GC()
		runtime.ReadMemStats(&ms)
		if ms.HeapAlloc > peakHeap {
			peakHeap = ms.HeapAlloc
		}
		if l := liveHeap(); l > peakLive {
			peakLive = l
		}
		st.PeakHeapBytes = peakHeap
		if peakLive > live0 {
			st.WorkingSetBytes = peakLive - live0
		}
		st.AllocBytes = ms.TotalAlloc - alloc0
		runs1, rows1, bytes1 := iter.SpillStats()
		st.SpillRuns, st.SpillRows, st.SpillFileBytes = runs1-runs0, rows1-rows0, bytes1-bytes0
		st.Rows = len(res.Rows)
		st.BlockReads = res.BlockReads
		return res, st, nil
	}

	full, fullStats, err := run(context.Background())
	if err != nil {
		return err
	}
	ctx := iter.WithBudget(context.Background(), iter.Budget{Bytes: budget, Dir: spillDir})
	tight, tightStats, err := run(ctx)
	if err != nil {
		return err
	}

	rep := spillReport{
		Movies:      movies,
		Subqueries:  nsubs,
		BudgetBytes: budget,
		Modes: map[string]spillModeStats{
			"unbounded": fullStats,
			"budget":    tightStats,
		},
		Identical: sameRanking(full, tight),
	}
	if tightStats.WorkingSetBytes > 0 {
		rep.WorkingSetReduction = float64(fullStats.WorkingSetBytes) / float64(tightStats.WorkingSetBytes)
	}

	for _, m := range []string{"unbounded", "budget"} {
		s := rep.Modes[m]
		fmt.Printf("%-10s %8.1f ms  working set %6.1f MiB (peak heap %6.1f MiB)  alloc %6.1f MiB  rows %d  spill runs %d (%d rows, %.1f MiB)\n",
			m, s.WallMS, mib(s.WorkingSetBytes), mib(s.PeakHeapBytes), mib(s.AllocBytes), s.Rows,
			s.SpillRuns, s.SpillRows, mib(uint64(s.SpillFileBytes)))
	}
	fmt.Printf("working-set reduction: %.2fx  identical answers: %v\n",
		rep.WorkingSetReduction, rep.Identical)

	if jsonPath != "" {
		f, err := os.Create(jsonPath)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		err = enc.Encode(rep)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", jsonPath)
	}

	if !rep.Identical {
		return fmt.Errorf("budgeted run changed the ranked answer")
	}
	if tightStats.SpillRuns == 0 {
		return fmt.Errorf("budget %d did not engage spilling; lower -spillbudget or raise -spillbench", budget)
	}
	if gate && rep.WorkingSetReduction <= 1 {
		return fmt.Errorf("gate: spilling did not reduce the peak working set (%.2fx)", rep.WorkingSetReduction)
	}
	return nil
}

// sameRanking reports whether two union evaluations ranked the same rows in
// the same order with the same dois.
func sameRanking(a, b *exec.UnionResult) bool {
	if len(a.Rows) != len(b.Rows) {
		return false
	}
	for i := range a.Rows {
		if a.Rows[i].Doi != b.Rows[i].Doi || len(a.Rows[i].Key) != len(b.Rows[i].Key) {
			return false
		}
		for j := range a.Rows[i].Key {
			if a.Rows[i].Key[j].Compare(b.Rows[i].Key[j]) != 0 {
				return false
			}
		}
	}
	return true
}

// liveHeap reads the runtime's live-heap estimate: bytes that survived the
// latest GC mark phase, i.e. actually reachable state.
func liveHeap() uint64 {
	s := []metrics.Sample{{Name: "/gc/heap/live:bytes"}}
	metrics.Read(s)
	if s[0].Value.Kind() != metrics.KindUint64 {
		return 0
	}
	return s[0].Value.Uint64()
}

func mib(b uint64) float64 { return float64(b) / (1 << 20) }
