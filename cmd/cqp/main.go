// Command cqp is an interactive constrained-query-personalization shell
// over the synthetic movie database: type SQL, get back the personalized
// query chosen for the configured CQP problem and its ranked answers.
//
// Usage:
//
//	cqp                              # Problem 2, cmax 400 ms
//	cqp -problem 3 -cmax 200 -smax 10
//	cqp -profile my.profile          # load a profile file
//
// Shell commands: plain SQL executes personalized; "\plain <sql>" skips
// personalization; "\explain <sql>" shows the decision; "\front <sql>"
// prints the doi/cost Pareto frontier; "\trace <sql>" personalizes and
// executes under a span trace and prints the phase tree; "\stats" dumps
// the session's metrics and estimator accuracy; "\profile" prints the
// active profile; "\quit" exits.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"cqp"
)

func main() {
	var (
		problem  = flag.Int("problem", 2, "CQP problem number (1-6, Table 1)")
		cmaxMS   = flag.Float64("cmax", 400, "cost bound in ms (problems 2, 3)")
		smin     = flag.Float64("smin", 1, "result-size lower bound (problems 1, 3, 5, 6)")
		smax     = flag.Float64("smax", 50, "result-size upper bound (problems 1, 3, 5, 6)")
		dmin     = flag.Float64("dmin", 0.9, "doi lower bound (problems 4, 5)")
		k        = flag.Int("k", 20, "preferences considered (K)")
		movies   = flag.Int("movies", 4000, "synthetic database size")
		dataDir  = flag.String("data", "", "directory of relation CSVs (from datagen) to load instead of generating")
		seed     = flag.Int64("seed", 1, "workload seed")
		anyMatch = flag.Bool("anymatch", false, "rank by doi over any matching preference instead of requiring all")
		profPath = flag.String("profile", "", "profile file (default: synthetic profile)")
	)
	flag.Parse()

	prob, err := cqp.BuildProblem(*problem, *cmaxMS, *smin, *smax, *dmin)
	if err != nil {
		fatal(err)
	}
	var db *cqp.DB
	if *dataDir != "" {
		var err error
		db, err = loadDir(*dataDir)
		if err != nil {
			fatal(err)
		}
	} else {
		db = cqp.SyntheticMovieDB(*movies, *seed)
	}
	p := cqp.NewPersonalizer(db)
	metrics := cqp.NewMetrics()
	p.Observe(metrics)
	profile := loadProfile(*profPath, *seed)
	if err := profile.Validate(db.Schema()); err != nil {
		fatal(err)
	}

	fmt.Printf("CQP shell — %s, K=%d, %d movies. Type SQL, or \\help.\n", prob, *k, *movies)
	sc := bufio.NewScanner(os.Stdin)
	fmt.Print("cqp> ")
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
		case line == "\\quit" || line == "\\q":
			return
		case line == "\\help":
			fmt.Println("SQL executes personalized; \\plain <sql>; \\explain <sql>; \\front <sql>; \\trace <sql>; \\stats; \\profile; \\quit")
		case line == "\\profile":
			fmt.Print(profile.String())
		case line == "\\stats":
			fmt.Print(metrics.Render())
			fmt.Println(p.EstimatorAccuracy())
		case strings.HasPrefix(line, "\\trace "):
			runTrace(p, db, profile, prob, strings.TrimPrefix(line, "\\trace "), *k)
		case strings.HasPrefix(line, "\\plain "):
			runPlain(p, db, strings.TrimPrefix(line, "\\plain "))
		case strings.HasPrefix(line, "\\explain "):
			runExplain(p, db, profile, prob, strings.TrimPrefix(line, "\\explain "), *k)
		case strings.HasPrefix(line, "\\front "):
			runFront(p, db, profile, strings.TrimPrefix(line, "\\front "), *k)
		case strings.HasPrefix(line, "\\"):
			fmt.Printf("unknown command %q; \\help lists commands\n", line)
		default:
			runPersonalized(p, db, profile, prob, line, *k, *anyMatch)
		}
		fmt.Print("cqp> ")
	}
}

// loadDir builds a movie-schema database from datagen CSV files.
func loadDir(dir string) (*cqp.DB, error) {
	db := cqp.NewDB(cqp.MovieSchema(), 0)
	for _, rel := range db.Schema().RelationNames() {
		path := dir + "/" + strings.ToLower(rel) + ".csv"
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		n, err := cqp.LoadCSV(db, rel, f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("%s: %v", path, err)
		}
		fmt.Printf("loaded %s: %d rows\n", rel, n)
	}
	return db, nil
}

func loadProfile(path string, seed int64) *cqp.Profile {
	if path == "" {
		return cqp.SyntheticProfile(60, seed+1)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	profile, err := cqp.ParseProfile(string(data))
	if err != nil {
		fatal(err)
	}
	return profile
}

func runPlain(p *cqp.Personalizer, db *cqp.DB, sql string) {
	q, err := cqp.ParseQuery(db.Schema(), sql)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	res, err := p.Evaluate(q)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("%d rows, %d block reads\n", len(res.Rows), res.BlockReads)
	printRows(res.Rows, 10)
}

func runPersonalized(p *cqp.Personalizer, db *cqp.DB, profile *cqp.Profile, prob cqp.Problem, sql string, k int, anyMatch bool) {
	q, err := cqp.ParseQuery(db.Schema(), sql)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	opts := []cqp.Option{cqp.WithMaxK(k)}
	if anyMatch {
		opts = append(opts, cqp.WithAnyMatch())
	}
	res, err := p.Personalize(q, profile, prob, opts...)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("chosen %d/%d preferences (doi %.4f, est. cost %.0f ms, est. size %.1f):\n",
		len(res.Preferences), k, res.Solution.Doi, res.Solution.Cost, res.Solution.Size)
	for _, pr := range res.Preferences {
		fmt.Println("  ", pr)
	}
	fmt.Println("personalized query:")
	fmt.Println("  ", res.SQL)
	rows, err := res.Execute()
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("%d rows (%d block reads):\n", len(rows.Rows), rows.BlockReads)
	for i, r := range rows.Rows {
		if i >= 10 {
			fmt.Printf("   ... %d more\n", len(rows.Rows)-10)
			break
		}
		fmt.Printf("   %.4f  %v\n", r.Doi, r.Key)
	}
}

// runExplain prints the personalization decision for the query.
func runExplain(p *cqp.Personalizer, db *cqp.DB, profile *cqp.Profile, prob cqp.Problem, sql string, k int) {
	q, err := cqp.ParseQuery(db.Schema(), sql)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	res, err := p.Personalize(q, profile, prob, cqp.WithMaxK(k))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Print(res.Explain())
}

// runTrace personalizes and executes the query under a span trace and
// prints the Figure-2 phase tree with per-phase durations.
func runTrace(p *cqp.Personalizer, db *cqp.DB, profile *cqp.Profile, prob cqp.Problem, sql string, k int) {
	q, err := cqp.ParseQuery(db.Schema(), sql)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	ctx, tr := cqp.StartTrace(context.Background(), "request")
	res, err := p.PersonalizeContext(ctx, q, profile, prob, cqp.WithMaxK(k))
	if err != nil {
		tr.End()
		fmt.Print(tr.Tree())
		fmt.Println("error:", err)
		return
	}
	rows, err := res.ExecuteContext(ctx)
	tr.End()
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Print(tr.Tree())
	fmt.Printf("%d rows, %d block reads\n", len(rows.Rows), rows.BlockReads)
}

// runFront prints the doi/cost Pareto frontier for the query.
func runFront(p *cqp.Personalizer, db *cqp.DB, profile *cqp.Profile, sql string, k int) {
	q, err := cqp.ParseQuery(db.Schema(), sql)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	front, err := p.PersonalizeFront(q, profile, 0, 0, 0, 12, cqp.WithMaxK(k))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	for i, fp := range front.Points {
		mark := " "
		if fp.Knee {
			mark = "*"
		}
		fmt.Printf(" %s %2d: doi %.4f  cost %6.0f ms  size %8.1f  (%d prefs)\n",
			mark, i+1, fp.Doi, fp.CostMS, fp.Size, len(fp.Preferences))
	}
	if front.Truncated {
		fmt.Println("note: frontier search hit its state budget; menu may be incomplete")
	}
}

func printRows(rows []cqp.Row, limit int) {
	for i, r := range rows {
		if i >= limit {
			fmt.Printf("   ... %d more\n", len(rows)-limit)
			return
		}
		fmt.Printf("   %v\n", r)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cqp:", err)
	os.Exit(1)
}
