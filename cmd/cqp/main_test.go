package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cqp"
)

func TestBuildProblem(t *testing.T) {
	for n := 1; n <= 6; n++ {
		p, err := cqp.BuildProblem(n, 100, 1, 50, 0.8)
		if err != nil {
			t.Errorf("problem %d: %v", n, err)
		}
		if err := p.Validate(); err != nil {
			t.Errorf("problem %d invalid: %v", n, err)
		}
	}
	if _, err := cqp.BuildProblem(7, 100, 1, 50, 0.8); err == nil {
		t.Error("problem 7 must fail")
	}
}

func TestLoadDir(t *testing.T) {
	dir := t.TempDir()
	// Produce a tiny dataset with the library itself.
	src := cqp.SyntheticMovieDB(20, 1)
	for _, rel := range src.Schema().RelationNames() {
		f, err := os.Create(filepath.Join(dir, dirName(rel)))
		if err != nil {
			t.Fatal(err)
		}
		if err := cqp.DumpCSV(src, rel, f); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}
	db, err := loadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if db.MustTable("MOVIE").RowCount() != 20 {
		t.Errorf("loaded %d movies", db.MustTable("MOVIE").RowCount())
	}
	if _, err := loadDir(t.TempDir()); err == nil {
		t.Error("missing files must fail")
	}
}

func dirName(rel string) string {
	out := make([]rune, 0, len(rel))
	for _, r := range rel {
		if r >= 'A' && r <= 'Z' {
			r += 'a' - 'A'
		}
		out = append(out, r)
	}
	return string(out) + ".csv"
}

// capture redirects stdout around fn.
func capture(t *testing.T, fn func()) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		data, _ := io.ReadAll(r)
		done <- string(data)
	}()
	fn()
	w.Close()
	os.Stdout = old
	return <-done
}

func shellFixture(t *testing.T) (*cqp.Personalizer, *cqp.DB, *cqp.Profile) {
	t.Helper()
	db := cqp.SyntheticMovieDB(300, 1)
	return cqp.NewPersonalizer(db), db, cqp.SyntheticProfile(20, 2)
}

func TestRunPlain(t *testing.T) {
	p, db, _ := shellFixture(t)
	out := capture(t, func() { runPlain(p, db, "SELECT title FROM MOVIE LIMIT 3") })
	if !strings.Contains(out, "3 rows") {
		t.Errorf("runPlain output: %q", out)
	}
	out = capture(t, func() { runPlain(p, db, "not sql") })
	if !strings.Contains(out, "error:") {
		t.Errorf("bad sql should report an error: %q", out)
	}
}

func TestRunPersonalized(t *testing.T) {
	p, db, profile := shellFixture(t)
	prob, _ := cqp.BuildProblem(2, 400, 1, 50, 0.9)
	out := capture(t, func() {
		runPersonalized(p, db, profile, prob, "SELECT title FROM MOVIE", 10, false)
	})
	for _, want := range []string{"chosen", "personalized query:", "block reads"} {
		if !strings.Contains(out, want) {
			t.Errorf("runPersonalized missing %q:\n%s", want, out)
		}
	}
	out = capture(t, func() {
		runPersonalized(p, db, profile, prob, "garbage", 10, false)
	})
	if !strings.Contains(out, "error:") {
		t.Errorf("bad sql: %q", out)
	}
}

func TestRunExplainAndFront(t *testing.T) {
	p, db, profile := shellFixture(t)
	prob, _ := cqp.BuildProblem(2, 400, 1, 50, 0.9)
	out := capture(t, func() {
		runExplain(p, db, profile, prob, "SELECT title FROM MOVIE", 10)
	})
	if !strings.Contains(out, "candidates (K") {
		t.Errorf("explain output: %q", out)
	}
	out = capture(t, func() {
		runFront(p, db, profile, "SELECT title FROM MOVIE", 10)
	})
	if !strings.Contains(out, "doi") || !strings.Contains(out, "*") {
		t.Errorf("front output: %q", out)
	}
	out = capture(t, func() { runFront(p, db, profile, "nope", 10) })
	if !strings.Contains(out, "error:") {
		t.Errorf("front error path: %q", out)
	}
}
