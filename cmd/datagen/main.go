// Command datagen materializes the synthetic evaluation workload to disk
// for inspection or use by external tools: one CSV file per relation plus
// generated profile files in the text format of the paper's Figure 1.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"cqp/internal/workload"
)

func main() {
	var (
		out      = flag.String("out", "dataset", "output directory")
		movies   = flag.Int("movies", 4000, "number of movies")
		profiles = flag.Int("profiles", 20, "number of profiles")
		seed     = flag.Int64("seed", 1, "generator seed")
	)
	flag.Parse()

	if err := run(*out, *movies, *profiles, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
}

func run(out string, movies, profiles int, seed int64) error {
	if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}
	db := workload.GenerateDB(workload.DBConfig{Movies: movies, Seed: seed})
	for _, rel := range db.Schema().Relations() {
		t := db.MustTable(rel.Name)
		path := filepath.Join(out, strings.ToLower(rel.Name)+".csv")
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := t.WriteCSV(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("%s: %d rows, %d blocks\n", path, t.RowCount(), t.Blocks())
	}
	for i := 0; i < profiles; i++ {
		p := workload.GenerateProfile(workload.ProfileConfig{Seed: seed + int64(i)*7919})
		path := filepath.Join(out, fmt.Sprintf("profile%02d.txt", i))
		if err := os.WriteFile(path, []byte(p.String()), 0o644); err != nil {
			return err
		}
	}
	fmt.Printf("%d profiles written to %s\n", profiles, out)
	return nil
}
