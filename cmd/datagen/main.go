// Command datagen materializes the synthetic evaluation workload to disk
// for inspection or use by external tools: one CSV file per relation plus
// generated profile files in the text format of the paper's Figure 1.
// With -blockstore it instead writes a ready-to-serve persistent
// block-store database (one page file per relation plus a manifest) that
// cqpd -backend disk opens directly.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"cqp/internal/blockstore"
	"cqp/internal/workload"
)

func main() {
	var (
		out      = flag.String("out", "dataset", "output directory")
		movies   = flag.Int("movies", 4000, "number of movies")
		profiles = flag.Int("profiles", 20, "number of profiles")
		seed     = flag.Int64("seed", 1, "generator seed")
		bstore   = flag.Bool("blockstore", false, "write a persistent block-store database instead of CSVs")
		pageSize = flag.Int("pagesize", 0, "block-store page size in bytes (0 = default)")
	)
	flag.Parse()

	var err error
	if *bstore {
		err = runBlockstore(*out, *movies, *profiles, *seed, *pageSize)
	} else {
		err = run(*out, *movies, *profiles, *seed)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
}

// runBlockstore generates the workload straight into a persistent block
// store: rows stream onto fixed-size CRC-framed pages as they are
// generated, so the dataset never has to fit in memory.
func runBlockstore(out string, movies, profiles int, seed int64, pageSize int) error {
	st, err := blockstore.Open(out, workload.Schema(), pageSize)
	if err != nil {
		return err
	}
	defer st.Close()
	if !st.Empty() {
		return fmt.Errorf("%s already holds a populated block store", out)
	}
	db, err := st.DB()
	if err != nil {
		return err
	}
	workload.GenerateInto(db, workload.DBConfig{Movies: movies, Seed: seed})
	if err := st.Sync(); err != nil {
		return err
	}
	for _, rel := range db.Schema().Relations() {
		t := db.MustTable(rel.Name)
		fmt.Printf("%s: %d rows, %d blocks\n",
			filepath.Join(out, strings.ToLower(rel.Name)+".tbl"), t.RowCount(), t.Blocks())
	}
	if err := writeProfiles(out, profiles, seed); err != nil {
		return err
	}
	fmt.Printf("%d profiles written to %s\n", profiles, out)
	return nil
}

func run(out string, movies, profiles int, seed int64) error {
	if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}
	db := workload.GenerateDB(workload.DBConfig{Movies: movies, Seed: seed})
	for _, rel := range db.Schema().Relations() {
		t := db.MustTable(rel.Name)
		path := filepath.Join(out, strings.ToLower(rel.Name)+".csv")
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := t.WriteCSV(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("%s: %d rows, %d blocks\n", path, t.RowCount(), t.Blocks())
	}
	if err := writeProfiles(out, profiles, seed); err != nil {
		return err
	}
	fmt.Printf("%d profiles written to %s\n", profiles, out)
	return nil
}

func writeProfiles(out string, profiles int, seed int64) error {
	for i := 0; i < profiles; i++ {
		p := workload.GenerateProfile(workload.ProfileConfig{Seed: seed + int64(i)*7919})
		path := filepath.Join(out, fmt.Sprintf("profile%02d.txt", i))
		if err := os.WriteFile(path, []byte(p.String()), 0o644); err != nil {
			return err
		}
	}
	return nil
}
