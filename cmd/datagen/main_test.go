package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunWritesDatasetAndProfiles(t *testing.T) {
	dir := t.TempDir()
	if err := run(dir, 50, 3, 7); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{"movie.csv", "director.csv", "genre.csv", "actor.csv", "cast.csv"} {
		data, err := os.ReadFile(filepath.Join(dir, f))
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		if len(strings.Split(strings.TrimSpace(string(data)), "\n")) < 2 {
			t.Errorf("%s: no rows", f)
		}
	}
	for i := 0; i < 3; i++ {
		name := filepath.Join(dir, "profile0"+string(rune('0'+i))+".txt")
		data, err := os.ReadFile(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !strings.Contains(string(data), "doi(") {
			t.Errorf("%s: not a profile", name)
		}
	}
	// Movie CSV header matches the schema.
	movie, _ := os.ReadFile(filepath.Join(dir, "movie.csv"))
	if !strings.HasPrefix(string(movie), "mid,title,year,duration,did") {
		t.Errorf("movie header: %s", strings.SplitN(string(movie), "\n", 2)[0])
	}
}

func TestRunBadDirectory(t *testing.T) {
	// A file where the directory should be.
	f := filepath.Join(t.TempDir(), "occupied")
	if err := os.WriteFile(f, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(f, 10, 1, 1); err == nil {
		t.Error("writing into a file path must fail")
	}
}
