package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cqp"
	"cqp/internal/server"
)

func TestBuildDBSynthetic(t *testing.T) {
	db, err := buildDB("", 200, 1)
	if err != nil {
		t.Fatal(err)
	}
	if n := db.MustTable("MOVIE").RowCount(); n != 200 {
		t.Fatalf("MOVIE rows = %d, want 200", n)
	}
}

// TestBuildDBFromCSV dumps a synthetic database relation-by-relation and
// reloads it via -csv, checking row counts survive the round trip.
func TestBuildDBFromCSV(t *testing.T) {
	src := cqp.SyntheticMovieDB(150, 3)
	dir := t.TempDir()
	for _, rel := range src.Schema().RelationNames() {
		f, err := os.Create(filepath.Join(dir, strings.ToLower(rel)+".csv"))
		if err != nil {
			t.Fatal(err)
		}
		err = cqp.DumpCSV(src, rel, f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	db, err := buildDB(dir, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, rel := range src.Schema().RelationNames() {
		want := src.MustTable(rel).RowCount()
		got := db.MustTable(rel).RowCount()
		if got != want {
			t.Errorf("%s: %d rows after round trip, want %d", rel, got, want)
		}
	}
}

func TestBuildDBMissingCSV(t *testing.T) {
	if _, err := buildDB(t.TempDir(), 0, 0); err == nil {
		t.Fatal("empty data dir accepted")
	}
}

func TestPreloadProfile(t *testing.T) {
	srv, err := server.New(cqp.SyntheticMovieDB(100, 1), server.Config{})
	if err != nil {
		t.Fatal(err)
	}
	sp, err := preloadProfile(srv, 20, 1)
	if err != nil {
		t.Fatal(err)
	}
	if sp.ID != "default" || sp.Profile.Len() == 0 {
		t.Fatalf("preloaded %+v", sp)
	}
	if _, ok := srv.Profiles().Get("default"); !ok {
		t.Fatal("preloaded profile not in store")
	}
}
