package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cqp"
	"cqp/internal/server"
)

func TestBuildDBSynthetic(t *testing.T) {
	db, _, err := buildDB("mem", "", "", 200, 1)
	if err != nil {
		t.Fatal(err)
	}
	if n := db.MustTable("MOVIE").RowCount(); n != 200 {
		t.Fatalf("MOVIE rows = %d, want 200", n)
	}
}

// TestBuildDBFromCSV dumps a synthetic database relation-by-relation and
// reloads it via -csv, checking row counts survive the round trip.
func TestBuildDBFromCSV(t *testing.T) {
	src := cqp.SyntheticMovieDB(150, 3)
	dir := t.TempDir()
	for _, rel := range src.Schema().RelationNames() {
		f, err := os.Create(filepath.Join(dir, strings.ToLower(rel)+".csv"))
		if err != nil {
			t.Fatal(err)
		}
		err = cqp.DumpCSV(src, rel, f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	db, _, err := buildDB("mem", "", dir, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, rel := range src.Schema().RelationNames() {
		want := src.MustTable(rel).RowCount()
		got := db.MustTable(rel).RowCount()
		if got != want {
			t.Errorf("%s: %d rows after round trip, want %d", rel, got, want)
		}
	}
}

func TestBuildDBMissingCSV(t *testing.T) {
	if _, _, err := buildDB("mem", "", t.TempDir(), 0, 0); err == nil {
		t.Fatal("empty data dir accepted")
	}
}

// TestBuildDBDisk seeds a block store on first start and serves the same
// rows from the persisted pages on the second.
func TestBuildDBDisk(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "db")
	db, store, err := buildDB("disk", dir, "", 150, 2)
	if err != nil {
		t.Fatal(err)
	}
	if store == nil {
		t.Fatal("disk backend returned no store")
	}
	want := db.MustTable("MOVIE").RowCount()
	if want != 150 {
		t.Fatalf("MOVIE rows = %d, want 150", want)
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}
	// Second start must reopen, not regenerate: ask for a different size
	// and still see the persisted one.
	db2, store2, err := buildDB("disk", dir, "", 9999, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	if got := db2.MustTable("MOVIE").RowCount(); got != want {
		t.Fatalf("reopened MOVIE rows = %d, want persisted %d", got, want)
	}
}

func TestBuildDBUnknownBackend(t *testing.T) {
	if _, _, err := buildDB("tape", "", "", 10, 1); err == nil {
		t.Fatal("unknown backend accepted")
	}
}

func TestParsePeers(t *testing.T) {
	peers, err := parsePeers("n1=http://10.0.0.1:8344, n2=10.0.0.2:8344 ,n3=http://h3:8344/")
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{
		"n1": "http://10.0.0.1:8344",
		"n2": "http://10.0.0.2:8344", // scheme defaulted
		"n3": "http://h3:8344",       // trailing slash trimmed
	}
	if len(peers) != len(want) {
		t.Fatalf("parsed %v, want %v", peers, want)
	}
	for id, url := range want {
		if peers[id] != url {
			t.Fatalf("peer %s = %q, want %q", id, peers[id], url)
		}
	}

	for _, bad := range []string{"", "n1", "=http://x", "n1=", "n1=a,n1=b"} {
		if _, err := parsePeers(bad); err == nil {
			t.Fatalf("parsePeers(%q) accepted", bad)
		}
	}
}

// TestValidateStartup: every impossible flag combination dies with one
// actionable line naming the flag to fix.
func TestValidateStartup(t *testing.T) {
	peers := "n1=http://h1:1,n2=http://h2:1"
	cases := []struct {
		name                string
		nodeID, peers, data string
		replicate           bool
		spill               int64
		wantErr             string
	}{
		{name: "standalone ok"},
		{name: "cluster ok", nodeID: "n1", peers: peers, data: "d", replicate: true},
		{name: "cluster without replication ok", nodeID: "n1", peers: peers},
		{name: "negative spill", spill: -1, wantErr: "-spill"},
		{name: "node-id without peers", nodeID: "n1", wantErr: "-peers"},
		{name: "peers without node-id", peers: peers, wantErr: "-node-id"},
		{name: "node-id not in peers", nodeID: "nx", peers: peers, wantErr: "not in -peers"},
		{name: "replicate without peers", replicate: true, wantErr: "-replicate needs a cluster"},
		{name: "replicate without data", nodeID: "n1", peers: peers, replicate: true, wantErr: "-replicate needs -data"},
		{name: "malformed peers", nodeID: "n1", peers: "garbage", wantErr: "id=url"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got, err := validateStartup(c.nodeID, c.peers, c.replicate, c.data, c.spill)
			if c.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				if c.peers != "" && len(got) != 2 {
					t.Fatalf("peer map: %v", got)
				}
				return
			}
			if err == nil {
				t.Fatal("accepted")
			}
			if !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("error %q does not mention %q", err, c.wantErr)
			}
			if strings.Contains(err.Error(), "\n") {
				t.Fatalf("error is not one line: %q", err)
			}
		})
	}
}

func TestValidateClusterKnobs(t *testing.T) {
	cases := []struct {
		name                       string
		replicas, strikes, handoff int
		wantErr                    string
	}{
		{name: "defaults", replicas: 2, strikes: 1, handoff: 20000},
		{name: "r3", replicas: 3, strikes: 2, handoff: 1},
		{name: "zero replicas", replicas: 0, strikes: 1, handoff: 1, wantErr: "-replicas"},
		{name: "absurd replicas", replicas: 10, strikes: 1, handoff: 1, wantErr: "-replicas"},
		{name: "zero strikes", replicas: 2, strikes: 0, handoff: 1, wantErr: "-peer-strikes"},
		{name: "zero handoff rate", replicas: 2, strikes: 1, handoff: 0, wantErr: "-handoff-rate"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := validateClusterKnobs(c.replicas, c.strikes, c.handoff)
			if c.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("error %v does not mention %q", err, c.wantErr)
			}
		})
	}
}

func TestPreloadProfile(t *testing.T) {
	srv, err := server.New(cqp.SyntheticMovieDB(100, 1), server.Config{})
	if err != nil {
		t.Fatal(err)
	}
	sp, err := preloadProfile(srv, 20, 1)
	if err != nil {
		t.Fatal(err)
	}
	if sp.ID != "default" || sp.Profile.Len() == 0 {
		t.Fatalf("preloaded %+v", sp)
	}
	if _, ok := srv.Profiles().Get("default"); !ok {
		t.Fatal("preloaded profile not in store")
	}
}
