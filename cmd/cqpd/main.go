// Command cqpd is the CQP serving daemon: a long-lived HTTP/JSON process
// that holds user profiles, admits personalization requests through a
// bounded worker pool with per-request deadlines, caches results, and
// drains gracefully on SIGTERM.
//
// Usage:
//
//	cqpd                              # :8344 over a 4000-movie synthetic DB
//	cqpd -addr :9000 -movies 20000
//	cqpd -csv out/                    # load datagen CSVs instead
//	cqpd -backend disk -dbdir db/     # serve a persistent block-store DB
//	                                  # (ingests -csv or synthesizes when empty)
//	cqpd -spill 67108864              # cap executor state at 64 MiB per request
//	cqpd -data state/                 # durable profiles: WAL + snapshots
//	cqpd -data state/ -fsync interval -snapshot-every 256
//	cqpd -workers 8 -queue 128 -cache 4096 -timeout 10s -maxtimeout 1m
//	cqpd -coalesce=false -batch-max 16   # A/B: no singleflight, small batches
//	cqpd -preload 60                  # store a synthetic profile as "default"
//	cqpd -faults 'storage.scan:err:0.05' -faultseed 42   # chaos run
//	cqpd -slowlog 50ms -logjson       # attribute every request ≥ 50ms, JSON logs
//	cqpd -flight 1024                 # retain more requests for /debug/requests
//	cqpd -node-id n1 -data s1/ -replicate \
//	     -peers 'n1=http://h1:8344,n2=http://h2:8344,n3=http://h3:8344'
//	                                  # one member of a 3-node cluster
//	cqpd -node-id n4 -data s4/ -replicate -peers 'n4=http://h4:8344'
//	                                  # boot a joiner alone, then:
//	                                  # POST any member /cluster/join
//	                                  # {"id":"n4","url":"http://h4:8344"}
//	cqpd ... -replicas 3 -peer-strikes 2 -antientropy 10s
//	                                  # R=3, slower breaker, 10s repair period
//
// Endpoints: POST /personalize, /personalize/batch, /execute, /front,
// /topk; PUT/GET/DELETE
// /profiles/{id}, GET /profiles; POST /refresh; GET /healthz, /metrics,
// /slo, /debug/requests, /debug/requests/{id}, /debug/vars, /debug/pprof.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"cqp"
	"cqp/internal/blockstore"
	"cqp/internal/fault"
	"cqp/internal/server"
	"cqp/internal/workload"
)

func main() {
	var (
		addr      = flag.String("addr", ":8344", "listen address")
		movies    = flag.Int("movies", 4000, "synthetic database size")
		seed      = flag.Int64("seed", 1, "workload seed")
		csvDir    = flag.String("csv", "", "directory of relation CSVs (from datagen) to load instead of generating")
		backend   = flag.String("backend", "mem", "table backend: mem (in-memory heap files) or disk (persistent block store)")
		dbDir     = flag.String("dbdir", "cqpdb", "block-store database directory for -backend disk")
		spill     = flag.Int64("spill", 0, "per-request executor memory budget in bytes; past it joins and union group tables spill to temp files (0 = unlimited)")
		spillDir  = flag.String("spilldir", "", "directory for executor spill files (empty = OS temp dir)")
		dataDir   = flag.String("data", "", "durable profile-store directory (write-ahead log + snapshots); empty = in-memory")
		fsync     = flag.String("fsync", "always", "WAL fsync policy: always|interval|never")
		snapEvery = flag.Int("snapshot-every", 1024, "logged mutations between snapshots (negative disables)")
		workers   = flag.Int("workers", 0, "concurrent pipeline workers (0 = GOMAXPROCS)")
		queue     = flag.Int("queue", 64, "admission queue depth before shedding with 429")
		cache     = flag.Int("cache", 1024, "LRU result-cache entries")
		timeout   = flag.Duration("timeout", 30*time.Second, "default per-request deadline")
		maxTO     = flag.Duration("maxtimeout", 2*time.Minute, "cap on per-request deadlines (timeout_ms)")
		maxRows   = flag.Int("maxrows", 100, "default row cap for /execute responses")
		maxBody   = flag.Int64("maxbody", 1<<20, "request-body size cap in bytes (oversize gets 413)")
		coalesce  = flag.Bool("coalesce", true, "coalesce concurrent identical pipeline requests into one run")
		estMemo   = flag.Bool("estmemo", true, "memoize per-preference cost/size estimates across requests (per statistics generation)")
		scanShare = flag.Bool("scanshare", true, "share one physical scan per relation across an executed batch's items")
		batchMax  = flag.Int("batch-max", 64, "max items per /personalize/batch request")
		preload   = flag.Int("preload", 0, "store a synthetic profile with this many selection preferences as \"default\"")
		grace     = flag.Duration("grace", 10*time.Second, "shutdown drain deadline")
		faults    = flag.String("faults", os.Getenv("FAULTS"), "fault-injection plan, e.g. 'storage.scan:err:0.05' (also via FAULTS env)")
		faultSeed = flag.Int64("faultseed", 1, "seed for the fault plan's injection decisions")
		logJSON   = flag.Bool("logjson", false, "emit request logs as JSON instead of logfmt-style text")
		slowLog   = flag.Duration("slowlog", -1, "log per-phase latency attribution for requests at least this slow (0 = every request; negative disables)")
		flightN   = flag.Int("flight", 256, "flight-recorder ring size for /debug/requests (negative disables retention)")
		nodeID    = flag.String("node-id", "", "this node's ID in a multi-node cluster (requires -peers)")
		peersCSV  = flag.String("peers", "", "static cluster peer list: comma-separated id=url pairs including this node, e.g. 'n1=http://10.0.0.1:8344,n2=http://10.0.0.2:8344'")
		replicate = flag.Bool("replicate", false, "ship acked WAL frames to followers so reads fail over when an owner dies (requires -peers and -data)")
		replicas  = flag.Int("replicas", 2, "replication factor R: owner plus R−1 followers per profile (must match across the cluster; R=3 survives two simultaneous owner deaths)")
		strikes   = flag.Int("peer-strikes", 1, "consecutive probe/proxy failures before a peer's breaker opens (raise on lossy networks to avoid flapping into stale_replica reads)")
		probeIvl  = flag.Duration("probe-interval", 500*time.Millisecond, "cluster peer health-probe period (the failover detection bound)")
		handoff   = flag.Int("handoff-rate", 20000, "membership-change shard handoff streaming bound, records/second")
		antiEnt   = flag.Duration("antientropy", 5*time.Second, "background replica digest-diff repair period (negative disables)")
	)
	flag.Parse()

	peers, err := validateStartup(*nodeID, *peersCSV, *replicate, *dataDir, *spill)
	if err != nil {
		fatal(err)
	}
	if err := validateClusterKnobs(*replicas, *strikes, *handoff); err != nil {
		fatal(err)
	}

	var handler slog.Handler = slog.NewTextHandler(os.Stderr, nil)
	if *logJSON {
		handler = slog.NewJSONHandler(os.Stderr, nil)
	}
	logger := slog.New(handler)
	// -slowlog 0 means "attribute everything": map it to the smallest
	// positive threshold, since zero Config.SlowLog disables the slow log.
	slowThreshold := *slowLog
	if slowThreshold == 0 {
		slowThreshold = 1
	} else if slowThreshold < 0 {
		slowThreshold = 0
	}

	if *faults != "" {
		plan, err := fault.Parse(*faults, *faultSeed)
		if err != nil {
			fatal(err)
		}
		fault.Arm(plan)
		fmt.Printf("cqpd: fault plan armed: %s (seed %d)\n", plan, *faultSeed)
	}

	db, store, err := buildDB(*backend, *dbDir, *csvDir, *movies, *seed)
	if err != nil {
		fatal(err)
	}
	srv, err := server.New(db, server.Config{
		Workers:        *workers,
		QueueDepth:     *queue,
		CacheEntries:   *cache,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTO,
		MaxRows:        *maxRows,
		MaxBodyBytes:   *maxBody,
		NoCoalesce:     !*coalesce,
		NoEstimateMemo: !*estMemo,
		NoScanShare:    !*scanShare,
		BatchMaxItems:  *batchMax,
		DataDir:        *dataDir,
		FsyncPolicy:    *fsync,
		SnapshotEvery:  *snapEvery,
		Logger:         logger,
		SlowLog:        slowThreshold,
		FlightRecords:  *flightN,
		SpillBytes:     *spill,
		SpillDir:       *spillDir,
		NodeID:         *nodeID,
		ClusterPeers:   peers,
		Replicate:      *replicate,
		Replicas:       *replicas,
		PeerStrikes:    *strikes,
		ProbeInterval:  *probeIvl,
		HandoffRate:    *handoff,
		AntiEntropy:    *antiEnt,
		Backend:        *backend,
	})
	if err != nil {
		fatal(err)
	}
	if *nodeID != "" {
		fmt.Printf("cqpd: cluster node %s of %d peers (replicate=%v)\n", *nodeID, len(peers), *replicate)
	}
	if store != nil {
		store.Observe(srv.Registry())
		fmt.Printf("cqpd: block store %s: %d rows across %d tables\n",
			*dbDir, store.Rows(), len(db.Schema().RelationNames()))
	}
	if rec := srv.Recovery(); rec != nil {
		fmt.Printf("cqpd: recovered %d profiles (clock %d, %d log records, %d torn bytes truncated) in %s from %s\n",
			len(rec.Profiles), rec.Clock, rec.LogRecords, rec.TornBytes, rec.Duration.Round(time.Millisecond), *dataDir)
	}
	if *preload > 0 {
		sp, err := preloadProfile(srv, *preload, *seed)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("cqpd: preloaded profile %q (%d preferences, version %d)\n",
			sp.ID, sp.Profile.Len(), sp.Version)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("cqpd: serving on %s\n", ln.Addr())
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		if err != nil {
			fatal(err)
		}
	case sig := <-sigc:
		fmt.Printf("cqpd: %s, draining (up to %s)\n", sig, *grace)
		ctx, cancel := context.WithTimeout(context.Background(), *grace)
		err := srv.Shutdown(ctx)
		cancel()
		if err != nil {
			fatal(err)
		}
		if store != nil {
			if err := store.Close(); err != nil {
				fatal(err)
			}
		}
		if p := fault.Armed(); p != nil {
			fmt.Printf("cqpd: fault report:\n%s", p.Report())
		}
		fmt.Println("cqpd: drained, bye")
	}
}

// buildDB assembles the serving database. With -backend mem it loads
// datagen CSVs from csvDir (-csv), or generates the synthetic movie
// database when csvDir is empty. With -backend disk it opens (or creates)
// a persistent block store under dbDir; an empty store is seeded once —
// from the CSVs when given, synthetically otherwise — and every later
// start serves the same on-disk pages. The returned store is non-nil only
// for the disk backend; the caller owns its Close.
func buildDB(backend, dbDir, csvDir string, movies int, seed int64) (*cqp.DB, *blockstore.Store, error) {
	switch backend {
	case "mem":
		if csvDir == "" {
			return cqp.SyntheticMovieDB(movies, seed), nil, nil
		}
		db := cqp.NewDB(cqp.MovieSchema(), 0)
		if err := loadCSVDir(db, csvDir); err != nil {
			return nil, nil, err
		}
		return db, nil, nil
	case "disk":
		st, err := blockstore.Open(dbDir, cqp.MovieSchema(), 0)
		if err != nil {
			return nil, nil, err
		}
		db, err := st.DB()
		if err != nil {
			st.Close()
			return nil, nil, err
		}
		if st.Empty() {
			if csvDir != "" {
				err = loadCSVDir(db, csvDir)
			} else {
				workload.GenerateInto(db, workload.DBConfig{Movies: movies, Seed: seed})
			}
			if err == nil {
				err = st.Sync()
			}
			if err != nil {
				st.Close()
				return nil, nil, err
			}
			fmt.Printf("cqpd: seeded block store %s (%d rows)\n", dbDir, st.Rows())
		}
		return db, st, nil
	default:
		return nil, nil, fmt.Errorf("unknown -backend %q (want mem or disk)", backend)
	}
}

// loadCSVDir ingests one datagen CSV per schema relation from dir.
func loadCSVDir(db *cqp.DB, dir string) error {
	for _, rel := range db.Schema().RelationNames() {
		path := dir + "/" + strings.ToLower(rel) + ".csv"
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		_, err = cqp.LoadCSV(db, rel, f)
		f.Close()
		if err != nil {
			return fmt.Errorf("%s: %v", path, err)
		}
	}
	return nil
}

// preloadProfile stores a synthetic profile under the ID "default" so a
// fresh daemon answers personalize requests without a prior PUT.
func preloadProfile(srv *server.Server, selections int, seed int64) (*server.StoredProfile, error) {
	return srv.Profiles().Put("default", cqp.SyntheticProfile(selections, seed+1).String())
}

// parsePeers parses the -peers list: comma-separated id=url pairs. A URL
// without a scheme gets http://; trailing slashes are trimmed so path
// concatenation stays clean.
func parsePeers(s string) (map[string]string, error) {
	peers := make(map[string]string)
	for _, ent := range strings.Split(s, ",") {
		ent = strings.TrimSpace(ent)
		if ent == "" {
			continue
		}
		id, url, ok := strings.Cut(ent, "=")
		if !ok || id == "" || url == "" {
			return nil, fmt.Errorf("-peers entry %q is not id=url; example: n1=http://10.0.0.1:8344", ent)
		}
		if !strings.Contains(url, "://") {
			url = "http://" + url
		}
		if _, dup := peers[id]; dup {
			return nil, fmt.Errorf("-peers lists node %q twice; every node needs a distinct ID", id)
		}
		peers[id] = strings.TrimRight(url, "/")
	}
	if len(peers) == 0 {
		return nil, fmt.Errorf("-peers is empty; pass comma-separated id=url pairs including this node")
	}
	return peers, nil
}

// validateStartup cross-checks the flag combinations that cannot work and
// turns each into one actionable error before the daemon touches disk or
// the network. Returns the parsed peer map (nil when standalone).
func validateStartup(nodeID, peersCSV string, replicate bool, dataDir string, spill int64) (map[string]string, error) {
	if spill < 0 {
		return nil, fmt.Errorf("-spill must be ≥ 0 bytes (got %d); omit it for unlimited or pass a positive budget", spill)
	}
	if peersCSV == "" {
		if nodeID != "" {
			return nil, fmt.Errorf("-node-id %q needs -peers; pass the full id=url list, including this node", nodeID)
		}
		if replicate {
			return nil, fmt.Errorf("-replicate needs a cluster; pass -node-id and -peers (and -data for the WAL it ships)")
		}
		return nil, nil
	}
	if nodeID == "" {
		return nil, fmt.Errorf("-peers needs -node-id; name which entry of the peer list this process is")
	}
	peers, err := parsePeers(peersCSV)
	if err != nil {
		return nil, err
	}
	if _, ok := peers[nodeID]; !ok {
		ids := make([]string, 0, len(peers))
		for id := range peers {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		return nil, fmt.Errorf("-node-id %q is not in -peers (%s); every node must appear in its own peer list", nodeID, strings.Join(ids, ", "))
	}
	if replicate && dataDir == "" {
		return nil, fmt.Errorf("-replicate needs -data; replication ships the write-ahead log, and a memory-only node has no log to ship")
	}
	return peers, nil
}

// validateClusterKnobs bounds the cluster tuning flags. Replicas is
// capped at 9 — past that every node follows every shard on any
// realistic cluster and the flag is almost certainly a typo.
func validateClusterKnobs(replicas, strikes, handoffRate int) error {
	if replicas < 1 || replicas > 9 {
		return fmt.Errorf("-replicas must be 1..9 (got %d); 2 is the default, 3 survives two simultaneous owner deaths", replicas)
	}
	if strikes < 1 {
		return fmt.Errorf("-peer-strikes must be ≥ 1 (got %d); 1 is instant failover", strikes)
	}
	if handoffRate < 1 {
		return fmt.Errorf("-handoff-rate must be ≥ 1 records/second (got %d)", handoffRate)
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cqpd:", err)
	os.Exit(1)
}
