module cqp

go 1.22
