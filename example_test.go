package cqp_test

import (
	"fmt"
	"log"

	"cqp"
)

// exampleDB builds the paper's Section 3 movie database.
func exampleDB() *cqp.DB {
	s := cqp.NewSchema()
	s.MustAddRelation("MOVIE", "mid",
		cqp.Column{Name: "mid", Type: cqp.Int(0).Kind()},
		cqp.Column{Name: "title", Type: cqp.Str("").Kind()},
		cqp.Column{Name: "year", Type: cqp.Int(0).Kind()},
		cqp.Column{Name: "duration", Type: cqp.Int(0).Kind()},
		cqp.Column{Name: "did", Type: cqp.Int(0).Kind()})
	s.MustAddRelation("DIRECTOR", "did",
		cqp.Column{Name: "did", Type: cqp.Int(0).Kind()},
		cqp.Column{Name: "name", Type: cqp.Str("").Kind()})
	s.MustAddRelation("GENRE", "",
		cqp.Column{Name: "mid", Type: cqp.Int(0).Kind()},
		cqp.Column{Name: "genre", Type: cqp.Str("").Kind()})
	s.MustAddJoin("MOVIE.did", "DIRECTOR.did")
	s.MustAddJoin("MOVIE.mid", "GENRE.mid")

	db := cqp.NewDB(s, 0)
	d := db.MustTable("DIRECTOR")
	d.MustInsert(cqp.Int(1), cqp.Str("W. Allen"))
	d.MustInsert(cqp.Int(2), cqp.Str("A. Hitchcock"))
	m := db.MustTable("MOVIE")
	m.MustInsert(cqp.Int(1), cqp.Str("Bananas"), cqp.Int(1971), cqp.Int(82), cqp.Int(1))
	m.MustInsert(cqp.Int(2), cqp.Str("Everyone Says I Love You"), cqp.Int(1996), cqp.Int(101), cqp.Int(1))
	m.MustInsert(cqp.Int(3), cqp.Str("Vertigo"), cqp.Int(1958), cqp.Int(128), cqp.Int(2))
	g := db.MustTable("GENRE")
	g.MustInsert(cqp.Int(1), cqp.Str("comedy"))
	g.MustInsert(cqp.Int(2), cqp.Str("musical"))
	g.MustInsert(cqp.Int(3), cqp.Str("thriller"))
	return db
}

// Example personalizes the paper's running query under a cost bound
// (Problem 2) and executes the rewritten query.
func Example() {
	db := exampleDB()
	p := cqp.NewPersonalizer(db)
	profile, err := cqp.ParseProfile(`
doi(GENRE.genre = 'musical') = 0.5
doi(MOVIE.mid = GENRE.mid) = 0.9
doi(MOVIE.did = DIRECTOR.did) = 1.0
doi(DIRECTOR.name = 'W. Allen') = 0.8
`)
	if err != nil {
		log.Fatal(err)
	}
	q, err := cqp.ParseQuery(db.Schema(), "select title from MOVIE")
	if err != nil {
		log.Fatal(err)
	}
	res, err := p.Personalize(q, profile, cqp.Problem2(1000))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("doi %.2f with %d preferences\n", res.Solution.Doi, len(res.Preferences))
	rows, err := res.Execute()
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range rows.Rows {
		fmt.Println(r.Key[0])
	}
	// Output:
	// doi 0.89 with 2 preferences
	// Everyone Says I Love You
}

// ExampleParseProfile shows the Figure 1 profile text format.
func ExampleParseProfile() {
	profile, err := cqp.ParseProfile(`
# join preference: how DIRECTOR preferences influence MOVIE
doi(MOVIE.did = DIRECTOR.did) = 1.0
doi(DIRECTOR.name = 'W. Allen') = 0.8
`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(profile.Len(), "preferences")
	// Output:
	// 2 preferences
}

// ExamplePersonalizer_EstimateQuery prices a query before choosing bounds.
func ExamplePersonalizer_EstimateQuery() {
	db := exampleDB()
	p := cqp.NewPersonalizer(db)
	q, _ := cqp.ParseQuery(db.Schema(), "SELECT title FROM MOVIE WHERE year >= 1970")
	costMS, size, _ := p.EstimateQuery(q)
	fmt.Printf("cost %.0f ms, about %.1f rows\n", costMS, size)
	// Output:
	// cost 1 ms, about 2.0 rows
}

// ExamplePersonalizer_Personalize_minCost shows a cost-minimization problem
// (Problem 4): the cheapest personalization that is still clearly personal.
func ExamplePersonalizer_Personalize_minCost() {
	db := exampleDB()
	p := cqp.NewPersonalizer(db)
	profile, _ := cqp.ParseProfile(`
doi(MOVIE.mid = GENRE.mid) = 0.9
doi(GENRE.genre = 'musical') = 0.5
doi(MOVIE.year >= 1990) = 0.7
`)
	q, _ := cqp.ParseQuery(db.Schema(), "select title from MOVIE")
	res, err := p.Personalize(q, profile, cqp.Problem4(0.6))
	if err != nil {
		log.Fatal(err)
	}
	// The atomic year preference (doi 0.7 ≥ 0.6) is cheaper than the
	// GENRE join path.
	fmt.Println(len(res.Preferences), "preference, doi", res.Solution.Doi)
	// Output:
	// 1 preference, doi 0.7
}
