package cqp

import (
	"context"
	"errors"
	"strings"
	"testing"
)

func batchSetup(t *testing.T) (*Personalizer, *Query, *Profile, float64) {
	t.Helper()
	db := SyntheticMovieDB(300, 1)
	p := NewPersonalizer(db)
	u := SyntheticProfile(30, 2)
	q, err := ParseQuery(db.Schema(), "SELECT title FROM MOVIE")
	if err != nil {
		t.Fatal(err)
	}
	cost, _, _ := p.EstimateQuery(q)
	return p, q, u, cost
}

// TestPersonalizeBatch: duplicates coalesce onto one pipeline run, a
// malformed item fails alone, and results stay aligned with input order.
func TestPersonalizeBatch(t *testing.T) {
	p, q, u, cost := batchSetup(t)
	reg := NewMetrics()
	p.Observe(reg)
	q2, err := ParseQuery(p.db.Schema(), "SELECT title FROM MOVIE WHERE year >= 1990")
	if err != nil {
		t.Fatal(err)
	}
	prob := Problem2(cost * 20)
	items := []BatchItem{
		{Query: q, Profile: u, Problem: prob},                                             // 0: leader
		{Query: q2, Profile: u, Problem: prob},                                            // 1: distinct
		{Query: q, Profile: u, Problem: prob},                                             // 2: dup of 0
		{Query: nil, Profile: u, Problem: prob},                                           // 3: malformed
		{Query: q, Profile: u, Problem: prob},                                             // 4: dup of 0
		{Query: q, Profile: u, Problem: Problem2(cost * 20), Opts: []Option{WithMaxK(5)}}, // 5: distinct opts
	}
	res := p.PersonalizeBatch(context.Background(), items, 4)
	if len(res) != len(items) {
		t.Fatalf("got %d results for %d items", len(res), len(items))
	}
	for _, i := range []int{0, 1, 2, 4, 5} {
		if res[i].Err != nil {
			t.Fatalf("item %d: %v", i, res[i].Err)
		}
		if res[i].Result == nil {
			t.Fatalf("item %d: nil result", i)
		}
	}
	if res[3].Err == nil || !strings.Contains(res[3].Err.Error(), "item 3") {
		t.Errorf("malformed item error = %v, want per-item error naming index 3", res[3].Err)
	}
	if res[3].Result != nil {
		t.Error("malformed item must not carry a result")
	}
	// Duplicates share the leader's outcome without a second run.
	if !res[2].Duplicate || !res[4].Duplicate {
		t.Errorf("items 2 and 4 should be marked duplicates: %+v %+v", res[2], res[4])
	}
	if res[2].Result != res[0].Result || res[4].Result != res[0].Result {
		t.Error("duplicates must share the leader's result")
	}
	if res[0].Duplicate || res[1].Duplicate || res[5].Duplicate {
		t.Error("leaders must not be marked duplicates")
	}
	// Order preservation: each result answers its own query.
	if res[1].Result.SQL == res[0].Result.SQL {
		t.Error("distinct queries produced identical SQL — results misaligned?")
	}
	// Exactly one pipeline run per distinct item: 0, 1, 5.
	if got := reg.Counter("personalize_total").Value(); got != 3 {
		t.Errorf("personalize_total = %d, want 3 (deduplicated runs)", got)
	}
}

// TestPersonalizeBatchCancelled: a dead context fails every distinct item
// with its error rather than hanging or panicking.
func TestPersonalizeBatchCancelled(t *testing.T) {
	p, q, u, cost := batchSetup(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res := p.PersonalizeBatch(ctx, []BatchItem{{Query: q, Profile: u, Problem: Problem2(cost * 20)}}, 0)
	if !errors.Is(res[0].Err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", res[0].Err)
	}
}

// TestMergeAnyMatchRejectedUpFront pins the option-validation fix: the
// incompatible WithMergedSubQueries+WithAnyMatch combination must be
// rejected before the prefspace build, so the estimator sees zero calls.
func TestMergeAnyMatchRejectedUpFront(t *testing.T) {
	p, q, u, cost := batchSetup(t)
	p.Observe(NewMetrics()) // enables estimator call accounting
	est, _, _ := p.pipeline()
	calls0, _ := est.TimingTotals()
	_, err := p.Personalize(q, u, Problem2(cost*20), WithMergedSubQueries(), WithAnyMatch())
	if err == nil || !strings.Contains(err.Error(), "all-match") {
		t.Fatalf("err = %v, want merged/any-match incompatibility", err)
	}
	if calls1, _ := est.TimingTotals(); calls1 != calls0 {
		t.Errorf("estimator ran %d calls for an invalid option combo, want 0", calls1-calls0)
	}
}

// TestTopKOptsNoAliasing pins the slice-aliasing fix: PersonalizeTopK must
// not write WithAnyMatch into the caller's backing array when the passed
// opts slice has spare capacity.
func TestTopKOptsNoAliasing(t *testing.T) {
	p, q, u, cost := batchSetup(t)
	backing := make([]Option, 1, 4)
	backing[0] = WithMaxK(8)
	// mine shares backing's array; the old in-place append would overwrite
	// its second element with WithAnyMatch.
	mine := append(backing, WithStateBudget(123456))
	if _, err := p.PersonalizeTopK(q, u, cost*20, 3, backing...); err != nil {
		t.Fatal(err)
	}
	var o options
	for _, fn := range mine {
		fn(&o)
	}
	if o.budget != 123456 {
		t.Errorf("caller's option slice was clobbered: budget = %d, want 123456", o.budget)
	}
	if o.anyMatch {
		t.Error("WithAnyMatch leaked into the caller's backing array")
	}
}
