package cqp

import (
	"context"
	"strings"
	"testing"

	"cqp/internal/obs"
)

// TestTracedPipeline drives one personalization and execution under a trace
// and checks that every Figure-2 phase appears in the span tree with a
// duration.
func TestTracedPipeline(t *testing.T) {
	db := paperDB(t)
	p := NewPersonalizer(db)
	profile, err := ParseProfile(figure1)
	if err != nil {
		t.Fatal(err)
	}
	q, err := ParseQuery(db.Schema(), "select title from MOVIE")
	if err != nil {
		t.Fatal(err)
	}

	ctx, tr := StartTrace(context.Background(), "personalize-request")
	res, err := p.PersonalizeContext(ctx, q, profile, Problem2(10000))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := res.ExecuteContext(ctx); err != nil {
		t.Fatal(err)
	}
	tr.End()

	for _, phase := range []string{"personalize", "prefspace", "estimate", "search", "construct", "execute"} {
		sp := tr.Find(phase)
		if sp == nil {
			t.Fatalf("span tree missing phase %q:\n%s", phase, tr.Tree())
		}
		if sp.Duration() < 0 {
			t.Errorf("phase %q has negative duration", phase)
		}
	}
	// Execution spawns one child span per sub-query.
	exe := tr.Find("execute")
	if got := len(exe.Children()); got != 2 {
		t.Errorf("execute span has %d sub-query children, want 2:\n%s", got, tr.Tree())
	}
	tree := tr.Tree()
	for _, want := range []string{"personalize-request", "  personalize", "subquery[0]", "subquery[1]"} {
		if !strings.Contains(tree, want) {
			t.Errorf("rendered tree missing %q:\n%s", want, tree)
		}
	}
}

// TestTracedPortfolio checks that a PORTFOLIO solve attaches one child span
// per raced algorithm under the search span.
func TestTracedPortfolio(t *testing.T) {
	db := paperDB(t)
	p := NewPersonalizer(db)
	profile, _ := ParseProfile(figure1)
	q, _ := ParseQuery(db.Schema(), "select title from MOVIE")

	ctx, tr := StartTrace(context.Background(), "req")
	if _, err := p.PersonalizeContext(ctx, q, profile, Problem2(10000),
		WithAlgorithm("PORTFOLIO")); err != nil {
		t.Fatal(err)
	}
	tr.End()
	search := tr.Find("search")
	if search == nil {
		t.Fatalf("no search span:\n%s", tr.Tree())
	}
	if got := len(search.Children()); got != 5 {
		t.Errorf("search span has %d algorithm children, want 5:\n%s", got, tr.Tree())
	}
}

// TestObservedPipelineMetrics attaches a registry and checks that every
// layer — search, storage, executor, estimator accuracy — records into it.
func TestObservedPipelineMetrics(t *testing.T) {
	db := paperDB(t)
	p := NewPersonalizer(db)
	reg := NewMetrics()
	p.Observe(reg)
	profile, _ := ParseProfile(figure1)
	q, _ := ParseQuery(db.Schema(), "select title from MOVIE")

	res, err := p.Personalize(q, profile, Problem2(10000))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := res.Execute(); err != nil {
		t.Fatal(err)
	}

	names := make(map[string]bool)
	for _, m := range reg.Snapshot() {
		names[m.Name] = true
	}
	for _, want := range []string{
		"personalize_total", "personalize_ms",
		"search_solves_total", "search_states_visited_total", "search_ms",
		"storage_scans_total", "storage_block_reads_total", "storage_rows_scanned_total",
		"exec_unions_total", "exec_subquery_ms", "exec_block_reads_total",
		"estimator_qerror_cost", "estimator_qerror_size",
	} {
		if !names[want] {
			t.Errorf("registry missing series %q (have %v)", want, names)
		}
	}
	if v := reg.Counter("personalize_total").Value(); v != 1 {
		t.Errorf("personalize_total = %d, want 1", v)
	}
	acc := p.EstimatorAccuracy()
	if acc.Queries != 1 {
		t.Fatalf("accuracy queries = %d, want 1", acc.Queries)
	}
	if acc.MeanCostQErr < 1 || acc.MeanSizeQErr < 1 {
		t.Errorf("q-errors below 1: %+v", acc)
	}
	// The all-match answer is 1 row against an independence estimate — the
	// recorded actuals must match the execution.
	if acc.Last.ActRows != 1 {
		t.Errorf("actual rows = %v, want 1", acc.Last.ActRows)
	}

	// Detaching stops recording.
	p.Observe(nil)
	if _, err := p.Personalize(q, profile, Problem2(10000)); err != nil {
		t.Fatal(err)
	}
	if v := reg.Counter("personalize_total").Value(); v != 1 {
		t.Errorf("detached personalizer still recorded: personalize_total = %d", v)
	}
}

// TestDisabledObservabilityIsInert verifies the default path stays free of
// observability artifacts: no registry, no trace, nil accuracy.
func TestDisabledObservabilityIsInert(t *testing.T) {
	db := paperDB(t)
	p := NewPersonalizer(db)
	if p.Metrics() != nil {
		t.Error("fresh personalizer has a registry")
	}
	profile, _ := ParseProfile(figure1)
	q, _ := ParseQuery(db.Schema(), "select title from MOVIE")
	res, err := p.Personalize(q, profile, Problem2(10000))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := res.Execute(); err != nil {
		t.Fatal(err)
	}
	if s := p.EstimatorAccuracy(); s.Queries != 0 {
		t.Errorf("accuracy recorded without a registry: %+v", s)
	}
	if got := obs.FromContext(context.Background()); got != nil {
		t.Errorf("background context carries a span: %v", got)
	}
}

// TestRefreshKeepsObservability checks that rebuilding statistics does not
// silently drop estimator timing or the registry wiring.
func TestRefreshKeepsObservability(t *testing.T) {
	db := paperDB(t)
	p := NewPersonalizer(db)
	reg := NewMetrics()
	p.Observe(reg)
	p.Refresh()
	profile, _ := ParseProfile(figure1)
	q, _ := ParseQuery(db.Schema(), "select title from MOVIE")

	ctx, tr := StartTrace(context.Background(), "req")
	if _, err := p.PersonalizeContext(ctx, q, profile, Problem2(10000)); err != nil {
		t.Fatal(err)
	}
	tr.End()
	if tr.Find("estimate") == nil {
		t.Errorf("estimate span lost after Refresh:\n%s", tr.Tree())
	}
	if p.Metrics() != reg {
		t.Error("registry lost after Refresh")
	}
}
