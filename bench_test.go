package cqp

// Benchmarks: one testing.B entry per table/figure of the paper's
// evaluation, so `go test -bench=.` regenerates the performance side of
// Section 7 (the cqpbench command prints the full row/series form).
//
// Sub-benchmarks name the paper's series: algorithms × K for Figure 12(a),
// extraction modes for 12(b), cmax percentages for 12(c,d). Memory
// (Figure 13) and quality (Figure 14) are emitted as custom metrics
// (peak-KB, gap-e7) alongside the timings. Figure 15's estimated and real
// costs are reported as est-ms / real-ms metrics.

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"cqp/internal/core"
	"cqp/internal/exec"
	"cqp/internal/metaheur"
	"cqp/internal/prefspace"
	"cqp/internal/rewrite"
	"cqp/internal/workload"
)

// benchBudget caps search states per run so `go test -bench=.` stays in a
// laptop envelope even at K = 40 (the paper's slow algorithms run for
// hundreds of seconds there by design).
const benchBudget = 200_000

var (
	benchOnce sync.Once
	benchEnv  *workload.Env
	benchProf *Profile
	benchQ    *Query
	benchIns  map[int]*core.Instance
	benchSps  map[int]*prefspace.Space
)

func benchSetup(b *testing.B) {
	b.Helper()
	benchOnce.Do(func() {
		benchEnv = workload.NewEnv(workload.DBConfig{Movies: 2000, Seed: 9}, 1)
		benchProf = workload.GenerateProfile(workload.ProfileConfig{Seed: 10})
		benchQ = workload.Queries(1, 11)[0]
		benchIns = make(map[int]*core.Instance)
		benchSps = make(map[int]*prefspace.Space)
		for _, k := range []int{10, 20, 30, 40} {
			sp, err := prefspace.Build(benchQ, benchProf, benchEnv.Est, prefspace.Options{MaxK: k})
			if err != nil {
				panic(err)
			}
			in := core.FromSpace(sp)
			in.StateBudget = benchBudget
			benchSps[k] = sp
			benchIns[k] = in
		}
	})
}

// BenchmarkFig12aOptimizationTime regenerates Figure 12(a): optimization
// time per algorithm as K grows (cmax = 400 ms).
func BenchmarkFig12aOptimizationTime(b *testing.B) {
	benchSetup(b)
	for _, k := range []int{10, 20, 40} {
		for _, a := range core.Algorithms {
			b.Run(fmt.Sprintf("%s/K=%d", a.Name, k), func(b *testing.B) {
				in := benchIns[k]
				cmax := in.SupremeCost() * 0.4 // keep the bound binding at every K
				for i := 0; i < b.N; i++ {
					a.Solve(in, cmax)
				}
			})
		}
	}
}

// BenchmarkFig12bPreferenceSpace regenerates Figure 12(b): preference
// extraction with doi-only ordering (D_PrefSelTime) vs full C/S ordering
// (C_PrefSelTime).
func BenchmarkFig12bPreferenceSpace(b *testing.B) {
	benchSetup(b)
	for _, k := range []int{10, 20, 40} {
		b.Run(fmt.Sprintf("D_PrefSelTime/K=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := prefspace.Build(benchQ, benchProf, benchEnv.Est, prefspace.Options{
					MaxK: k, SkipCostVector: true, SkipSizeVector: true,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("C_PrefSelTime/K=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := prefspace.Build(benchQ, benchProf, benchEnv.Est, prefspace.Options{MaxK: k}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig12cCmaxSweep regenerates Figures 12(c,d): optimization time
// as cmax sweeps the Supreme-Cost percentage scale at K = 20.
func BenchmarkFig12cCmaxSweep(b *testing.B) {
	benchSetup(b)
	in := benchIns[20]
	for _, pct := range []int{10, 50, 100} {
		cmax := in.SupremeCost() * float64(pct) / 100
		for _, a := range core.Algorithms {
			b.Run(fmt.Sprintf("%s/pct=%d", a.Name, pct), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					a.Solve(in, cmax)
				}
			})
		}
	}
}

// BenchmarkFig13Memory regenerates Figure 13: the peak-KB metric per
// algorithm at the default setting (K = 20, cmax = 400 ms).
func BenchmarkFig13Memory(b *testing.B) {
	benchSetup(b)
	in := benchIns[20]
	cmax := in.SupremeCost() * 0.4
	for _, a := range core.Algorithms {
		b.Run(a.Name, func(b *testing.B) {
			var peak int64
			for i := 0; i < b.N; i++ {
				sol := a.Solve(in, cmax)
				peak = sol.Stats.PeakMemBytes
			}
			b.ReportMetric(float64(peak)/1024, "peak-KB")
		})
	}
}

// BenchmarkFig14Quality regenerates Figure 14: the heuristics' doi gap
// (×1e7) against the best answer found, at the default setting.
func BenchmarkFig14Quality(b *testing.B) {
	benchSetup(b)
	in := benchIns[20]
	cmax := in.SupremeCost() * 0.4
	ref := 0.0
	for _, a := range core.Algorithms {
		if sol := a.Solve(in, cmax); sol.Doi > ref {
			ref = sol.Doi
		}
	}
	for _, a := range core.Algorithms {
		if a.Exact {
			continue
		}
		b.Run(a.Name, func(b *testing.B) {
			var gap float64
			for i := 0; i < b.N; i++ {
				sol := a.Solve(in, cmax)
				gap = (ref - sol.Doi) * 1e7
			}
			b.ReportMetric(gap, "gap-e7")
		})
	}
}

// BenchmarkFig15CostPrediction regenerates Figure 15: executing the fully
// personalized query and reporting estimated vs real cost as metrics.
func BenchmarkFig15CostPrediction(b *testing.B) {
	benchSetup(b)
	for _, k := range []int{10, 20, 40} {
		b.Run(fmt.Sprintf("K=%d", k), func(b *testing.B) {
			sp := benchSps[k]
			pq := rewrite.Construct(sp.Query, sp.P, true)
			var est, real float64
			for i := 0; i < b.N; i++ {
				res, err := pq.Execute(benchEnv.DB)
				if err != nil {
					b.Fatal(err)
				}
				est = sp.SupremeCost()
				real = float64(exec.RealCost(res.BlockReads, res.Elapsed, time.Millisecond)) /
					float64(time.Millisecond)
			}
			b.ReportMetric(est, "est-ms")
			b.ReportMetric(real, "real-ms")
		})
	}
}

// BenchmarkTable1Problems solves each of the six CQP problems of Table 1 on
// the default instance.
func BenchmarkTable1Problems(b *testing.B) {
	benchSetup(b)
	in := benchIns[20]
	cmax := in.SupremeCost() * 0.4
	smin := 1.0
	smax := in.BaseSize / 2
	problems := []core.Problem{
		core.Problem1(smin, smax),
		core.Problem2(cmax),
		core.Problem3(cmax, smin, smax),
		core.Problem4(0.95),
		core.Problem5(0.95, smin, smax),
		core.Problem6(smin, smax),
	}
	for i, prob := range problems {
		prob := prob
		b.Run(fmt.Sprintf("problem%d", i+1), func(b *testing.B) {
			for j := 0; j < b.N; j++ {
				if _, err := core.Solve(in, prob, ""); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationBaselines times the generic optimizers the paper cites
// (Section 2) against the same Problem-2 instance.
func BenchmarkAblationBaselines(b *testing.B) {
	benchSetup(b)
	in := benchIns[20]
	baselines := []struct {
		name  string
		solve func(*core.Instance, float64) core.Solution
	}{
		{"GREEDY", metaheur.Greedy},
		{"KNAPSACK-DP", func(in *core.Instance, cmax float64) core.Solution {
			return metaheur.KnapsackDP(in, cmax, 0)
		}},
		{"GENETIC", func(in *core.Instance, cmax float64) core.Solution {
			return metaheur.Genetic(in, cmax, metaheur.GAConfig{Seed: 1})
		}},
		{"ANNEAL", func(in *core.Instance, cmax float64) core.Solution {
			return metaheur.Anneal(in, cmax, metaheur.SAConfig{Seed: 1})
		}},
		{"TABU", func(in *core.Instance, cmax float64) core.Solution {
			return metaheur.Tabu(in, cmax, metaheur.TabuConfig{Seed: 1})
		}},
	}
	for _, bl := range baselines {
		b.Run(bl.name, func(b *testing.B) {
			var doi float64
			for i := 0; i < b.N; i++ {
				doi = bl.solve(in, 400).Doi
			}
			b.ReportMetric(doi, "doi")
		})
	}
}

// BenchmarkEndToEndPersonalize measures the full public-API pipeline:
// extraction, search, rewriting (Problem 2 at the paper defaults).
func BenchmarkEndToEndPersonalize(b *testing.B) {
	db := SyntheticMovieDB(2000, 21)
	p := NewPersonalizer(db)
	profile := SyntheticProfile(60, 22)
	q, err := ParseQuery(db.Schema(), "SELECT title FROM MOVIE")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Personalize(q, profile, Problem2(400), WithStateBudget(benchBudget)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExecutor measures raw conjunctive evaluation on the store.
func BenchmarkExecutor(b *testing.B) {
	benchSetup(b)
	q := workload.Queries(3, 30)[2]
	for i := 0; i < b.N; i++ {
		if _, err := exec.Eval(benchEnv.DB, q); err != nil {
			b.Fatal(err)
		}
	}
}
