package cqp

// Cross-module integration tests: the estimator, search, rewriter and
// executor must agree end to end on randomized synthetic workloads.

import (
	"math"
	"math/rand"
	"testing"

	"cqp/internal/prefs"
)

// TestCostEstimateMatchesExecutorIO: under the paper's cost model the
// estimated cost of the chosen personalized query (in ms at b = 1 ms/block)
// must equal the executor's block reads exactly — the model and the engine
// implement the same assumptions.
func TestCostEstimateMatchesExecutorIO(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	db := SyntheticMovieDB(600, 52)
	p := NewPersonalizer(db)
	for trial := 0; trial < 10; trial++ {
		profile := SyntheticProfile(30, rng.Int63())
		q, err := ParseQuery(db.Schema(), "SELECT title FROM MOVIE")
		if err != nil {
			t.Fatal(err)
		}
		base, _, _ := p.EstimateQuery(q)
		res, err := p.Personalize(q, profile, Problem2(base*(2+rng.Float64()*20)), WithMaxK(12))
		if err != nil {
			t.Fatal(err)
		}
		rows, err := res.Execute()
		if err != nil {
			t.Fatal(err)
		}
		wantBlocks := res.Solution.Cost // ms at 1 ms/block
		if len(res.Preferences) == 0 {
			// The bare query executes once; estimate equals its scan cost.
			wantBlocks = base
		}
		if math.Abs(float64(rows.BlockReads)-wantBlocks) > 1e-6 {
			t.Fatalf("trial %d: estimated %.0f blocks, executor read %d",
				trial, wantBlocks, rows.BlockReads)
		}
	}
}

// TestExecutedDoiMatchesSolutionDoi: every all-match answer satisfies all
// integrated preferences, so its executed doi equals the solution's doi.
func TestExecutedDoiMatchesSolutionDoi(t *testing.T) {
	db := SyntheticMovieDB(600, 53)
	p := NewPersonalizer(db)
	profile := SyntheticProfile(40, 54)
	q, _ := ParseQuery(db.Schema(), "SELECT title FROM MOVIE")
	base, size, _ := p.EstimateQuery(q)
	res, err := p.Personalize(q, profile, Problem3(base*8, 1, size), WithMaxK(12))
	if err != nil {
		t.Fatal(err)
	}
	rows, err := res.Execute()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows.Rows {
		if math.Abs(r.Doi-res.Solution.Doi) > 1e-9 {
			t.Fatalf("row doi %v != solution doi %v", r.Doi, res.Solution.Doi)
		}
		if len(r.Matched) != len(res.Preferences) {
			t.Fatalf("all-match row matched %d of %d preferences",
				len(r.Matched), len(res.Preferences))
		}
	}
}

// TestSolutionDoiIsConjunctionOfPreferences: the reported doi composes the
// chosen preferences' dois with Formula 10.
func TestSolutionDoiIsConjunctionOfPreferences(t *testing.T) {
	db := SyntheticMovieDB(600, 55)
	p := NewPersonalizer(db)
	profile := SyntheticProfile(40, 56)
	q, _ := ParseQuery(db.Schema(), "SELECT title FROM MOVIE")
	base, _, _ := p.EstimateQuery(q)
	res, err := p.Personalize(q, profile, Problem2(base*10), WithMaxK(10))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PreferenceDois) != len(res.Preferences) {
		t.Fatalf("PreferenceDois misaligned: %d vs %d", len(res.PreferenceDois), len(res.Preferences))
	}
	if got := prefs.Conjunction(res.PreferenceDois...); math.Abs(got-res.Solution.Doi) > 1e-9 {
		t.Fatalf("conjunction of reported preferences %v != solution doi %v", got, res.Solution.Doi)
	}
}

// TestAlgorithmsAgreeOnWorkloads: the exact algorithms agree with each
// other end to end on synthetic instances (heuristics stay within bound).
func TestAlgorithmsAgreeOnWorkloads(t *testing.T) {
	db := SyntheticMovieDB(600, 57)
	p := NewPersonalizer(db)
	profile := SyntheticProfile(40, 58)
	q, _ := ParseQuery(db.Schema(), "SELECT title FROM MOVIE")
	base, _, _ := p.EstimateQuery(q)
	for _, mult := range []float64{3, 6, 12} {
		prob := Problem2(base * mult)
		exact := -1.0
		for _, name := range []string{"C_Boundaries", "D_MaxDoi"} {
			res, err := p.Personalize(q, profile, prob, WithAlgorithm(name), WithMaxK(12))
			if err != nil {
				t.Fatal(err)
			}
			if exact < 0 {
				exact = res.Solution.Doi
			} else if math.Abs(res.Solution.Doi-exact) > 1e-9 {
				t.Fatalf("exact algorithms disagree at cmax ×%v: %v vs %v", mult, res.Solution.Doi, exact)
			}
		}
		for _, name := range []string{"C_MaxBounds", "D_SingleMaxDoi", "D_HeurDoi"} {
			res, err := p.Personalize(q, profile, prob, WithAlgorithm(name), WithMaxK(12))
			if err != nil {
				t.Fatal(err)
			}
			if res.Solution.Doi > exact+1e-9 {
				t.Fatalf("%s beats the exact optimum", name)
			}
		}
	}
}

// TestProblemSemantics: tighter bounds never improve the objective
// (monotonicity of constrained optima).
func TestProblemSemantics(t *testing.T) {
	db := SyntheticMovieDB(600, 59)
	p := NewPersonalizer(db)
	profile := SyntheticProfile(40, 60)
	q, _ := ParseQuery(db.Schema(), "SELECT title FROM MOVIE")
	base, _, _ := p.EstimateQuery(q)
	prevDoi := -1.0
	for _, mult := range []float64{2, 4, 8, 16, 32} {
		res, err := p.Personalize(q, profile, Problem2(base*mult), WithMaxK(12))
		if err != nil {
			t.Fatal(err)
		}
		if res.Solution.Doi < prevDoi-1e-9 {
			t.Fatalf("loosening cmax reduced doi: %v after %v", res.Solution.Doi, prevDoi)
		}
		prevDoi = res.Solution.Doi
	}
	// Problems 4: raising dmin never lowers the minimal cost.
	prevCost := -1.0
	for _, dmin := range []float64{0.3, 0.6, 0.9, 0.99} {
		res, err := p.Personalize(q, profile, Problem4(dmin), WithMaxK(12))
		if err != nil {
			continue // high dmin may be infeasible; that's fine
		}
		if res.Solution.Cost < prevCost-1e-9 {
			t.Fatalf("raising dmin reduced cost: %v after %v", res.Solution.Cost, prevCost)
		}
		prevCost = res.Solution.Cost
	}
}
