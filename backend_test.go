package cqp_test

// The disk backend must be indistinguishable from the in-memory backend at
// the API surface: the same workload generated into a persistent block
// store must produce byte-identical personalized queries, solutions,
// ranked answers and I/O charges across the paper's full algorithm grid.
// This is the acceptance test for serving out of the block store.

import (
	"fmt"
	"strings"
	"testing"

	"cqp"
	"cqp/internal/blockstore"
	"cqp/internal/exec"
	"cqp/internal/workload"
)

// renderRanked serializes a ranked union answer, order and all.
func renderRanked(res *exec.UnionResult) string {
	var b strings.Builder
	for _, r := range res.Rows {
		for _, v := range r.Key {
			b.WriteString(v.SQL())
			b.WriteByte('|')
		}
		fmt.Fprintf(&b, "doi=%.12f matched=%v\n", r.Doi, r.Matched)
	}
	return b.String()
}

func TestDiskBackendMatchesMemAcrossAlgorithms(t *testing.T) {
	const movies, dbSeed = 600, 57
	mem := cqp.SyntheticMovieDB(movies, dbSeed)

	st, err := blockstore.Open(t.TempDir(), cqp.MovieSchema(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	disk, err := st.DB()
	if err != nil {
		t.Fatal(err)
	}
	workload.GenerateInto(disk, workload.DBConfig{Movies: movies, Seed: dbSeed})
	if err := st.Sync(); err != nil {
		t.Fatal(err)
	}

	pm := cqp.NewPersonalizer(mem)
	pd := cqp.NewPersonalizer(disk)
	profile := cqp.SyntheticProfile(40, 58)
	queries := []string{
		"SELECT title FROM MOVIE",
		"SELECT title, name FROM MOVIE, DIRECTOR WHERE MOVIE.did = DIRECTOR.did AND MOVIE.year >= 1950",
	}
	for qi, sql := range queries {
		q, err := cqp.ParseQuery(mem.Schema(), sql)
		if err != nil {
			t.Fatal(err)
		}
		base, _, err := pm.EstimateQuery(q)
		if err != nil {
			t.Fatal(err)
		}
		for _, mult := range []float64{3, 12} {
			prob := cqp.Problem2(base * mult)
			for _, alg := range cqp.AlgorithmNames() {
				name := fmt.Sprintf("q%d/x%g/%s", qi, mult, alg)
				rm, err := pm.Personalize(q, profile, prob, cqp.WithAlgorithm(alg), cqp.WithMaxK(12))
				if err != nil {
					t.Fatalf("%s: mem: %v", name, err)
				}
				rd, err := pd.Personalize(q, profile, prob, cqp.WithAlgorithm(alg), cqp.WithMaxK(12))
				if err != nil {
					t.Fatalf("%s: disk: %v", name, err)
				}
				if rm.SQL != rd.SQL {
					t.Fatalf("%s: personalized SQL differs:\nmem:  %s\ndisk: %s", name, rm.SQL, rd.SQL)
				}
				if rm.Solution.Doi != rd.Solution.Doi || rm.Solution.Cost != rd.Solution.Cost {
					t.Fatalf("%s: solutions differ: mem doi=%v cost=%v, disk doi=%v cost=%v",
						name, rm.Solution.Doi, rm.Solution.Cost, rd.Solution.Doi, rd.Solution.Cost)
				}
				am, err := rm.Execute()
				if err != nil {
					t.Fatalf("%s: mem execute: %v", name, err)
				}
				ad, err := rd.Execute()
				if err != nil {
					t.Fatalf("%s: disk execute: %v", name, err)
				}
				if got, want := renderRanked(ad), renderRanked(am); got != want {
					t.Fatalf("%s: ranked answers differ (%d vs %d rows)", name, len(ad.Rows), len(am.Rows))
				}
				if am.BlockReads != ad.BlockReads {
					t.Fatalf("%s: charged I/O differs: mem %d, disk %d", name, am.BlockReads, ad.BlockReads)
				}
			}
		}
	}
	if s := st.Stats(); s.PageReads == 0 {
		t.Fatal("disk run never read a page — the block store was not actually serving")
	}
}

// Reopening the store must serve the same answers as the freshly generated
// one: persistence survives a full close/open cycle mid-grid.
func TestDiskBackendReopenServesSameAnswers(t *testing.T) {
	const movies, dbSeed = 400, 9
	dir := t.TempDir()
	st, err := blockstore.Open(dir, cqp.MovieSchema(), 0)
	if err != nil {
		t.Fatal(err)
	}
	disk, err := st.DB()
	if err != nil {
		t.Fatal(err)
	}
	workload.GenerateInto(disk, workload.DBConfig{Movies: movies, Seed: dbSeed})
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	run := func(db *cqp.DB) string {
		t.Helper()
		p := cqp.NewPersonalizer(db)
		q, err := cqp.ParseQuery(db.Schema(), "SELECT title FROM MOVIE")
		if err != nil {
			t.Fatal(err)
		}
		base, _, err := p.EstimateQuery(q)
		if err != nil {
			t.Fatal(err)
		}
		res, err := p.Personalize(q, cqp.SyntheticProfile(30, 10), cqp.Problem2(base*8), cqp.WithMaxK(10))
		if err != nil {
			t.Fatal(err)
		}
		ans, err := res.Execute()
		if err != nil {
			t.Fatal(err)
		}
		return res.SQL + "\n" + renderRanked(ans)
	}

	want := run(cqp.SyntheticMovieDB(movies, dbSeed))
	st2, err := blockstore.Open(dir, cqp.MovieSchema(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	disk2, err := st2.DB()
	if err != nil {
		t.Fatal(err)
	}
	if got := run(disk2); got != want {
		t.Fatal("reopened block store serves a different answer than the in-memory backend")
	}
}
