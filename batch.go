package cqp

import (
	"context"
	"fmt"
	"hash/fnv"
	"runtime"
	"sync"

	"cqp/internal/exec"
)

// BatchItem is one personalization request in a PersonalizeBatch call.
type BatchItem struct {
	Query   *Query
	Profile *Profile
	Problem Problem
	Opts    []Option
}

// BatchResult is the outcome of one BatchItem, aligned by index with the
// input slice. Exactly one of Result and Err is set.
type BatchResult struct {
	Result *Result
	Err    error
	// Exec holds the executed personalized query's ranked answer when the
	// batch ran through ExecuteBatch; nil under PersonalizeBatch.
	Exec *exec.UnionResult
	// Duplicate reports that this item was coalesced with an earlier
	// identical item: its Result/Err are shared with that item's, and no
	// extra pipeline run was spent on it.
	Duplicate bool
}

// fingerprint derives the batch-dedup identity of an item: the query's
// canonical fingerprint, the profile text (rendered once per distinct
// Profile by the caller), the problem, and the resolved options — written
// as explicit named fields, not a %+v of the options struct, so a field
// rename or reorder can never silently change dedup identity. Two items
// with equal fingerprints would run the exact same pipeline, so one run
// can answer both.
func (it BatchItem) fingerprint(profileText string) string {
	o := defaultOptions()
	for _, fn := range it.Opts {
		fn(&o)
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%s|%s|a=%s k=%d any=%v merge=%v b=%d",
		it.Query.Fingerprint(), profileText, it.Problem,
		o.algorithm, o.maxK, o.anyMatch, o.merge, o.budget)
	return fmt.Sprintf("%016x", h.Sum64())
}

// dedupBatch partitions items into leaders (first item per fingerprint)
// and followers, recording input errors for invalid items. Profile text is
// rendered once per distinct *Profile — a batch fanning one profile across
// many queries used to re-render it per item.
func dedupBatch(items []BatchItem, out []BatchResult) (leaders []int, followers map[int][]int) {
	leaders = make([]int, 0, len(items))
	leaderOf := make(map[string]int, len(items))
	followers = make(map[int][]int)
	profText := make(map[*Profile]string)
	for i, it := range items {
		if it.Query == nil || it.Profile == nil {
			out[i].Err = fmt.Errorf("cqp: batch item %d: query and profile are required", i)
			continue
		}
		text, ok := profText[it.Profile]
		if !ok {
			text = it.Profile.String()
			profText[it.Profile] = text
		}
		fp := it.fingerprint(text)
		if li, ok := leaderOf[fp]; ok {
			followers[li] = append(followers[li], i)
			continue
		}
		leaderOf[fp] = i
		leaders = append(leaders, i)
	}
	return leaders, followers
}

// runBatch drives run over the leader indices across a bounded worker
// group, then copies leader outcomes onto followers.
func runBatch(leaders []int, followers map[int][]int, out []BatchResult, parallelism int, run func(i int)) {
	workers := parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(leaders) {
		workers = len(leaders)
	}
	if workers <= 1 {
		for _, i := range leaders {
			run(i)
		}
	} else {
		work := make(chan int)
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for i := range work {
					run(i)
				}
			}()
		}
		for _, i := range leaders {
			work <- i
		}
		close(work)
		wg.Wait()
	}
	for li, dups := range followers {
		for _, i := range dups {
			out[i] = out[li]
			out[i].Duplicate = true
		}
	}
}

// PersonalizeBatch personalizes many (query, profile, problem) items in one
// call — the serving shape of a list page, where one screen fans into many
// closely related personalizations. Items are deduplicated by fingerprint
// (query + profile + problem + options) so each distinct pipeline runs
// once, distinct items run across a bounded worker group (parallelism ≤ 0
// selects GOMAXPROCS), and results come back in input order, one per item,
// with per-item errors: a malformed item fails alone without poisoning its
// batch. Distinct items also share work below the dedup layer: every
// per-preference cost/shrink estimate lands in the estimator's
// cross-request memo, so items over the same relations re-estimate nothing.
// A canceled ctx aborts the underlying personalizations with its error.
func (p *Personalizer) PersonalizeBatch(ctx context.Context, items []BatchItem, parallelism int) []BatchResult {
	out := make([]BatchResult, len(items))
	leaders, followers := dedupBatch(items, out)
	runBatch(leaders, followers, out, parallelism, func(i int) {
		it := items[i]
		out[i].Result, out[i].Err = p.PersonalizeContext(ctx, it.Query, it.Profile, it.Problem, it.Opts...)
	})
	return out
}

// ExecuteBatch is PersonalizeBatch plus execution: each distinct item's
// personalized query runs against the database and BatchResult.Exec holds
// its ranked answer. All items execute under one scan share — one physical
// pass per base relation feeds every item's (and every sub-query's) filter
// tree, while each item is still charged the cost model's full per-open
// block count — so a batch of distinct items over the same tables reads
// each table once instead of items × sub-queries times. The share is valid
// because the batch runs inside one statistics generation: the storage
// contract keeps tables immutable while cursors are open, so no MVCC is
// needed. shareBytes caps the per-relation materialization (≤ 0 selects
// exec.DefaultShareBytes); oversized relations fall back to private
// streaming scans.
func (p *Personalizer) ExecuteBatch(ctx context.Context, items []BatchItem, parallelism int, shareBytes int64) []BatchResult {
	out := make([]BatchResult, len(items))
	leaders, followers := dedupBatch(items, out)
	ctx = exec.WithScanShare(ctx, exec.NewScanShare(shareBytes))
	runBatch(leaders, followers, out, parallelism, func(i int) {
		it := items[i]
		res, err := p.PersonalizeContext(ctx, it.Query, it.Profile, it.Problem, it.Opts...)
		if err != nil {
			out[i].Err = err
			return
		}
		rows, err := res.ExecuteContext(ctx)
		if err != nil {
			out[i].Err = err
			return
		}
		out[i].Result, out[i].Exec = res, rows
	})
	return out
}
