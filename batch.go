package cqp

import (
	"context"
	"fmt"
	"hash/fnv"
	"runtime"
	"sync"
)

// BatchItem is one personalization request in a PersonalizeBatch call.
type BatchItem struct {
	Query   *Query
	Profile *Profile
	Problem Problem
	Opts    []Option
}

// BatchResult is the outcome of one BatchItem, aligned by index with the
// input slice. Exactly one of Result and Err is set.
type BatchResult struct {
	Result *Result
	Err    error
	// Duplicate reports that this item was coalesced with an earlier
	// identical item: its Result/Err are shared with that item's, and no
	// extra pipeline run was spent on it.
	Duplicate bool
}

// fingerprint derives the batch-dedup identity of an item: the query's
// canonical fingerprint, the profile text, the problem, and the resolved
// options. Two items with equal fingerprints would run the exact same
// pipeline, so one run can answer both.
func (it BatchItem) fingerprint() string {
	o := options{maxK: 20, budget: 1 << 20}
	for _, fn := range it.Opts {
		fn(&o)
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%s|%s|%+v", it.Query.Fingerprint(), it.Profile.String(), it.Problem, o)
	return fmt.Sprintf("%016x", h.Sum64())
}

// PersonalizeBatch personalizes many (query, profile, problem) items in one
// call — the serving shape of a list page, where one screen fans into many
// closely related personalizations. Items are deduplicated by fingerprint
// (query + profile + problem + options) so each distinct pipeline runs
// once, distinct items run across a bounded worker group (parallelism ≤ 0
// selects GOMAXPROCS), and results come back in input order, one per item,
// with per-item errors: a malformed item fails alone without poisoning its
// batch. A canceled ctx aborts the underlying personalizations with its
// error.
func (p *Personalizer) PersonalizeBatch(ctx context.Context, items []BatchItem, parallelism int) []BatchResult {
	out := make([]BatchResult, len(items))
	// Dedup pass: the first item with a given fingerprint becomes the
	// leader; later duplicates copy its outcome after the run.
	leaders := make([]int, 0, len(items))
	leaderOf := make(map[string]int, len(items))
	followers := make(map[int][]int)
	for i, it := range items {
		if it.Query == nil || it.Profile == nil {
			out[i].Err = fmt.Errorf("cqp: batch item %d: query and profile are required", i)
			continue
		}
		fp := it.fingerprint()
		if li, ok := leaderOf[fp]; ok {
			followers[li] = append(followers[li], i)
			continue
		}
		leaderOf[fp] = i
		leaders = append(leaders, i)
	}

	workers := parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(leaders) {
		workers = len(leaders)
	}
	run := func(i int) {
		it := items[i]
		out[i].Result, out[i].Err = p.PersonalizeContext(ctx, it.Query, it.Profile, it.Problem, it.Opts...)
	}
	if workers <= 1 {
		for _, i := range leaders {
			run(i)
		}
	} else {
		work := make(chan int)
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for i := range work {
					run(i)
				}
			}()
		}
		for _, i := range leaders {
			work <- i
		}
		close(work)
		wg.Wait()
	}

	for li, dups := range followers {
		for _, i := range dups {
			out[i] = out[li]
			out[i].Duplicate = true
		}
	}
	return out
}
