package cqp

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
)

// TestEstimateMemoHitsAcrossRequests: the first personalization fills the
// per-preference estimate memo, a repeat run is served from it (hits, no
// new misses), and the memoized path returns byte-identical output to the
// cold path — with the memo disabled the same run still agrees.
func TestEstimateMemoHitsAcrossRequests(t *testing.T) {
	db := SyntheticMovieDB(300, 1)
	p := NewPersonalizer(db)
	u := SyntheticProfile(30, 2)
	q, err := ParseQuery(db.Schema(), "SELECT title FROM MOVIE")
	if err != nil {
		t.Fatal(err)
	}
	cost, _, _ := p.EstimateQuery(q)
	prob := Problem2(cost * 20)

	r1, err := p.Personalize(q, u, prob)
	if err != nil {
		t.Fatal(err)
	}
	h1, m1 := p.EstimateMemoCounts()
	if m1 == 0 {
		t.Fatal("cold run recorded no memo misses")
	}

	r2, err := p.Personalize(q, u, prob)
	if err != nil {
		t.Fatal(err)
	}
	h2, m2 := p.EstimateMemoCounts()
	if m2 != m1 {
		t.Errorf("warm run recorded new misses: %d -> %d", m1, m2)
	}
	if h2 <= h1 {
		t.Errorf("warm run recorded no memo hits: %d -> %d", h1, h2)
	}
	if r1.SQL != r2.SQL {
		t.Errorf("memoized run produced different SQL:\ncold: %s\nwarm: %s", r1.SQL, r2.SQL)
	}
	// Compare the semantic solution fields (the Solution stringer includes
	// wall-clock search timing, which legitimately varies run to run).
	if fmt.Sprint(r1.Solution.Set) != fmt.Sprint(r2.Solution.Set) ||
		r1.Solution.Doi != r2.Solution.Doi || r1.Solution.Cost != r2.Solution.Cost ||
		r1.Solution.Size != r2.Solution.Size || r1.Solution.Feasible != r2.Solution.Feasible {
		t.Errorf("memoized run produced different solution:\ncold: %+v\nwarm: %+v", r1.Solution, r2.Solution)
	}

	p.SetEstimateMemo(false)
	r3, err := p.Personalize(q, u, prob)
	if err != nil {
		t.Fatal(err)
	}
	if r3.SQL != r1.SQL {
		t.Errorf("memo-off run produced different SQL:\non:  %s\noff: %s", r1.SQL, r3.SQL)
	}
	if h3, m3 := p.EstimateMemoCounts(); h3 != 0 || m3 != 0 {
		t.Errorf("disabled memo still counting: (%d hits, %d misses)", h3, m3)
	}
}

// TestEstimateMemoInvalidatedByRefresh: Refresh swaps the estimator (and
// with it the memo), so estimates computed before a bulk load cannot leak
// into the new statistics generation.
func TestEstimateMemoInvalidatedByRefresh(t *testing.T) {
	db := SyntheticMovieDB(200, 3)
	p := NewPersonalizer(db)
	u := SyntheticProfile(12, 4)
	q, err := ParseQuery(db.Schema(), "SELECT title FROM MOVIE")
	if err != nil {
		t.Fatal(err)
	}
	cost, _, _ := p.EstimateQuery(q)
	r1, err := p.Personalize(q, u, Problem2(cost*20))
	if err != nil {
		t.Fatal(err)
	}
	if _, m := p.EstimateMemoCounts(); m == 0 {
		t.Fatal("cold run recorded no memo misses")
	}

	// Bulk-load ten times more movies: block counts and frequencies move.
	var csv strings.Builder
	csv.WriteString("mid,title,year,duration,did\n")
	for i := 0; i < 2000; i++ {
		fmt.Fprintf(&csv, "%d,extra movie %d,%d,%d,%d\n", 100000+i, i, 1950+i%60, 80+i%60, 1+i%7)
	}
	if _, err := LoadCSV(db, "MOVIE", strings.NewReader(csv.String())); err != nil {
		t.Fatal(err)
	}
	if err := p.Refresh(); err != nil {
		t.Fatal(err)
	}
	if h, m := p.EstimateMemoCounts(); h != 0 || m != 0 {
		t.Fatalf("memo counts survived Refresh: (%d hits, %d misses)", h, m)
	}

	cost2, _, _ := p.EstimateQuery(q)
	r2, err := p.Personalize(q, u, Problem2(cost2*20))
	if err != nil {
		t.Fatal(err)
	}
	if _, m := p.EstimateMemoCounts(); m == 0 {
		t.Error("post-Refresh run recorded no misses — stale estimates served")
	}
	// Supreme is the estimated cost of all K preferences: ten times the
	// movies means more blocks, so re-estimation must move it.
	if r2.Supreme <= r1.Supreme {
		t.Errorf("Supreme did not grow with the data: %g -> %g", r1.Supreme, r2.Supreme)
	}
}

// TestEstimateMemoConcurrentPipelines runs parallel personalizations over
// distinct profiles against one Personalizer while Refresh swaps the
// estimator mid-flight — the -race witness for the shared memo in its real
// call path.
func TestEstimateMemoConcurrentPipelines(t *testing.T) {
	db := SyntheticMovieDB(200, 5)
	p := NewPersonalizer(db)
	q, err := ParseQuery(db.Schema(), "SELECT title FROM MOVIE")
	if err != nil {
		t.Fatal(err)
	}
	cost, _, _ := p.EstimateQuery(q)
	prob := Problem2(cost * 20)

	profiles := make([]*Profile, 4)
	for i := range profiles {
		profiles[i] = SyntheticProfile(10, int64(10+i))
	}
	errc := make(chan error, 16)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				if _, err := p.PersonalizeContext(context.Background(), q, profiles[g], prob); err != nil {
					errc <- fmt.Errorf("goroutine %d iter %d: %w", g, i, err)
					return
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := p.Refresh(); err != nil {
			errc <- err
		}
	}()
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}
