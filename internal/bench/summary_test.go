package bench

import (
	"bytes"
	"encoding/json"
	"testing"

	"cqp/internal/obs"
)

func TestSummaryRollupAndJSON(t *testing.T) {
	r := NewRunner(tinyConfig())
	table, err := r.ByID("fig12a")
	if err != nil {
		t.Fatal(err)
	}
	s := r.Summary([]*Table{table})
	if len(s.Experiments) != 1 {
		t.Fatalf("experiments = %d", len(s.Experiments))
	}
	es := s.Experiments[0]
	if es.ID != "fig12a" {
		t.Errorf("id = %q", es.ID)
	}
	// fig12a runs 5 algorithms × 2 Ks × 4 pairs.
	if want := 5 * 2 * 4; es.Runs != want {
		t.Errorf("runs = %d, want %d", es.Runs, want)
	}
	if es.MeanStates <= 0 || es.MeanTimeMS < 0 || es.MeanMemKB <= 0 {
		t.Errorf("degenerate rollup: %+v", es)
	}
	if s.Movies != 300 || s.Profiles != 2 || s.Queries != 2 {
		t.Errorf("config echo wrong: %+v", s)
	}

	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Summary
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("round-trip: %v\n%s", err, buf.String())
	}
	if back.Experiments[0].Runs != es.Runs || back.Experiments[0].MeanStates != es.MeanStates {
		t.Errorf("round-trip mismatch: %+v vs %+v", back.Experiments[0], es)
	}
}

// TestSummaryWithoutRollup covers experiments that do no Problem-2 solves:
// the summary still lists them, with zero runs.
func TestSummaryWithoutRollup(t *testing.T) {
	r := NewRunner(tinyConfig())
	table, err := r.ByID("fig12b")
	if err != nil {
		t.Fatal(err)
	}
	s := r.Summary([]*Table{table})
	if s.Experiments[0].Runs != 0 {
		t.Errorf("fig12b rolled up %d solver runs, expected none", s.Experiments[0].Runs)
	}
}

// TestRunnerObsWiring checks that a configured registry receives search and
// storage series from a harness run.
func TestRunnerObsWiring(t *testing.T) {
	cfg := tinyConfig()
	cfg.Obs = obs.NewRegistry()
	r := NewRunner(cfg)
	if _, err := r.ByID("fig12a"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.ByID("fig15"); err != nil { // executes queries → storage/exec series
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, m := range cfg.Obs.Snapshot() {
		names[m.Name] = true
	}
	for _, want := range []string{"search_solves_total", "search_ms", "storage_scans_total", "exec_unions_total"} {
		if !names[want] {
			t.Errorf("registry missing %q after harness run", want)
		}
	}
}
