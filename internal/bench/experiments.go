package bench

import (
	"fmt"
	"time"

	"cqp/internal/core"
	"cqp/internal/exec"
	"cqp/internal/metaheur"
	"cqp/internal/prefspace"
	"cqp/internal/rewrite"
	"cqp/internal/workload"
)

// algoNames lists the five algorithms in the figures' legend order.
func algoNames() []string {
	names := make([]string, len(core.Algorithms))
	for i, a := range core.Algorithms {
		names[i] = a.Name
	}
	return names
}

// runPoint runs one algorithm over all pairs at (K, cmax-fraction or
// absolute cmax) and aggregates.
func (r *Runner) runPoint(name string, k int, cmaxMS float64, pctOfSupreme int) (*point, error) {
	solver, err := core.SolverByName(name)
	if err != nil {
		return nil, err
	}
	p := &point{}
	for pair := 0; pair < r.Pairs(); pair++ {
		in, err := r.Instance(pair, k)
		if err != nil {
			return nil, err
		}
		cmax := cmaxMS
		if pctOfSupreme > 0 {
			cmax = in.SupremeCost() * float64(pctOfSupreme) / 100
		}
		sol := solver(in, cmax)
		r.recordSol(sol)
		p.add(sol)
	}
	r.noteRuns(p)
	return p, nil
}

// Fig12a regenerates Figure 12(a): CQP optimization time vs K for the five
// algorithms at the default cmax.
func (r *Runner) Fig12a() (*Table, error) {
	t := &Table{
		ID:     "fig12a",
		Title:  fmt.Sprintf("CQP optimization time vs K (cmax = %.0f ms, %d runs/point)", r.Cfg.DefaultCmaxMS, r.Pairs()),
		Header: append([]string{"K"}, algoNames()...),
	}
	truncNote := 0
	for _, k := range r.Cfg.Ks {
		row := []string{fmt.Sprintf("%d", k)}
		for _, name := range algoNames() {
			p, err := r.runPoint(name, k, r.Cfg.DefaultCmaxMS, 0)
			if err != nil {
				return nil, err
			}
			row = append(row, fmtDur(p.meanDur()))
			truncNote += p.truncated
		}
		t.AddRow(row...)
	}
	if truncNote > 0 {
		t.Notes = append(t.Notes, fmt.Sprintf(
			"%d runs hit the state budget (%d states) and report truncated search time",
			truncNote, r.Cfg.StateBudget))
	}
	return t, nil
}

// Fig12b regenerates Figure 12(b): preference-selection time vs K for
// D-ordered output (D_PrefSelTime) and fully ordered output
// (C_PrefSelTime).
func (r *Runner) Fig12b() (*Table, error) {
	t := &Table{
		ID:     "fig12b",
		Title:  "Preference Space time vs K",
		Header: []string{"K", "D_PrefSelTime", "C_PrefSelTime"},
	}
	for _, k := range r.Cfg.Ks {
		var dTotal, cTotal time.Duration
		for pair := 0; pair < r.Pairs(); pair++ {
			profile, q := r.pairAt(pair)
			start := time.Now()
			if _, err := prefspace.Build(q, profile, r.Env.Est, prefspace.Options{
				MaxK: k, SkipCostVector: true, SkipSizeVector: true,
			}); err != nil {
				return nil, err
			}
			dTotal += time.Since(start)
			start = time.Now()
			if _, err := prefspace.Build(q, profile, r.Env.Est, prefspace.Options{MaxK: k}); err != nil {
				return nil, err
			}
			cTotal += time.Since(start)
		}
		n := time.Duration(r.Pairs())
		t.AddRow(fmt.Sprintf("%d", k), fmtDur(dTotal/n), fmtDur(cTotal/n))
	}
	return t, nil
}

// Fig12c regenerates Figure 12(c): optimization time vs cmax (% of Supreme
// Cost) at the default K, all five algorithms.
func (r *Runner) Fig12c() (*Table, error) {
	return r.cmaxSweep("fig12c", "CQP optimization time vs cmax (%% of Supreme Cost)", algoNames(),
		func(p *point) string { return fmtDur(p.meanDur()) })
}

// Fig12d regenerates Figure 12(d): the zoom on the fast algorithms.
func (r *Runner) Fig12d() (*Table, error) {
	return r.cmaxSweep("fig12d", "zoom: fast algorithms vs cmax",
		[]string{"C_Boundaries", "C_MaxBounds", "D_HeurDoi"},
		func(p *point) string { return fmtDur(p.meanDur()) })
}

// Fig13a regenerates Figure 13(a): peak memory vs K.
func (r *Runner) Fig13a() (*Table, error) {
	t := &Table{
		ID:     "fig13a",
		Title:  "peak memory (KB) vs K",
		Header: append([]string{"K"}, algoNames()...),
	}
	for _, k := range r.Cfg.Ks {
		row := []string{fmt.Sprintf("%d", k)}
		for _, name := range algoNames() {
			p, err := r.runPoint(name, k, r.Cfg.DefaultCmaxMS, 0)
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%.1f", p.meanMemKB()))
		}
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		"memory counts live search structures (queue, boundaries, visited set); the paper's variant stores no visited set — see EXPERIMENTS.md")
	return t, nil
}

// Fig13b regenerates Figure 13(b): peak memory vs cmax.
func (r *Runner) Fig13b() (*Table, error) {
	return r.cmaxSweep("fig13b", "peak memory (KB) vs cmax (%% of Supreme Cost)", algoNames(),
		func(p *point) string { return fmt.Sprintf("%.1f", p.meanMemKB()) })
}

// cmaxSweep renders a table over the CmaxPcts sweep at the default K.
func (r *Runner) cmaxSweep(id, title string, names []string, cell func(*point) string) (*Table, error) {
	t := &Table{
		ID:     id,
		Title:  fmt.Sprintf(title+" (K = %d, %d runs/point)", r.Cfg.DefaultK, r.Pairs()),
		Header: append([]string{"%supreme"}, names...),
	}
	for _, pct := range r.Cfg.CmaxPcts {
		row := []string{fmt.Sprintf("%d", pct)}
		for _, name := range names {
			p, err := r.runPoint(name, r.Cfg.DefaultK, 0, pct)
			if err != nil {
				return nil, err
			}
			row = append(row, cell(p))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// qualityReference returns the best doi found by any algorithm per pair —
// the paper uses D-MAXDOI's optimum; with a state budget in force we take
// the max over all algorithms so a truncated reference cannot go below a
// heuristic's answer.
func (r *Runner) qualityReference(k int, cmaxMS float64, pct int) (map[int]float64, error) {
	ref := make(map[int]float64)
	for _, name := range algoNames() {
		solver, _ := core.SolverByName(name)
		for pair := 0; pair < r.Pairs(); pair++ {
			in, err := r.Instance(pair, k)
			if err != nil {
				return nil, err
			}
			cmax := cmaxMS
			if pct > 0 {
				cmax = in.SupremeCost() * float64(pct) / 100
			}
			sol := solver(in, cmax)
			if sol.Doi > ref[pair] {
				ref[pair] = sol.Doi
			}
		}
	}
	return ref, nil
}

// heuristicNames are the algorithms Figure 14 grades.
func heuristicNames() []string {
	var out []string
	for _, a := range core.Algorithms {
		if !a.Exact {
			out = append(out, a.Name)
		}
	}
	return out
}

// Fig14a regenerates Figure 14(a): quality gap (doi_opt − doi_found, ×1e7)
// vs K for the heuristic algorithms.
func (r *Runner) Fig14a() (*Table, error) {
	t := &Table{
		ID:     "fig14a",
		Title:  "quality gap ×1e7 vs K",
		Header: append([]string{"K"}, heuristicNames()...),
	}
	for _, k := range r.Cfg.Ks {
		ref, err := r.qualityReference(k, r.Cfg.DefaultCmaxMS, 0)
		if err != nil {
			return nil, err
		}
		row := []string{fmt.Sprintf("%d", k)}
		for _, name := range heuristicNames() {
			solver, _ := core.SolverByName(name)
			gap := 0.0
			for pair := 0; pair < r.Pairs(); pair++ {
				in, _ := r.Instance(pair, k)
				sol := solver(in, r.Cfg.DefaultCmaxMS)
				gap += ref[pair] - sol.Doi
			}
			row = append(row, fmt.Sprintf("%.2f", gap/float64(r.Pairs())*1e7))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// Fig14b regenerates Figure 14(b): quality gap ×1e7 vs cmax.
func (r *Runner) Fig14b() (*Table, error) {
	t := &Table{
		ID:     "fig14b",
		Title:  fmt.Sprintf("quality gap ×1e7 vs cmax (K = %d)", r.Cfg.DefaultK),
		Header: append([]string{"%supreme"}, heuristicNames()...),
	}
	for _, pct := range r.Cfg.CmaxPcts {
		ref, err := r.qualityReference(r.Cfg.DefaultK, 0, pct)
		if err != nil {
			return nil, err
		}
		row := []string{fmt.Sprintf("%d", pct)}
		for _, name := range heuristicNames() {
			solver, _ := core.SolverByName(name)
			gap := 0.0
			for pair := 0; pair < r.Pairs(); pair++ {
				in, _ := r.Instance(pair, r.Cfg.DefaultK)
				cmax := in.SupremeCost() * float64(pct) / 100
				sol := solver(in, cmax)
				gap += ref[pair] - sol.Doi
			}
			row = append(row, fmt.Sprintf("%.2f", gap/float64(r.Pairs())*1e7))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// Fig15 regenerates Figure 15: estimated vs real execution time of the
// personalized query that integrates all K preferences, as a function of K.
// "Real" is the executor's actual block reads at b per block plus measured
// in-memory compute time (the paper measured Oracle wall-clock; our
// substrate is the simulated-I/O engine — see DESIGN.md §4).
func (r *Runner) Fig15() (*Table, error) {
	t := &Table{
		ID:     "fig15",
		Title:  "personalized query cost prediction: estimated vs real (ms) vs K",
		Header: []string{"K", "EstimatedMS", "RealMS"},
	}
	b := time.Duration(r.Env.Est.BlockMillis * float64(time.Millisecond))
	for _, k := range r.Cfg.Ks {
		var est, real float64
		runs := 0
		for pair := 0; pair < r.Pairs(); pair++ {
			sp, err := r.Space(pair, k)
			if err != nil {
				return nil, err
			}
			if sp.K == 0 {
				continue
			}
			pq := rewrite.Construct(sp.Query, sp.P, true)
			res, err := pq.Execute(r.Env.DB)
			if err != nil {
				return nil, err
			}
			est += sp.SupremeCost()
			real += float64(exec.RealCost(res.BlockReads, res.Elapsed, b)) / float64(time.Millisecond)
			runs++
		}
		if runs == 0 {
			continue
		}
		t.AddRow(fmt.Sprintf("%d", k),
			fmt.Sprintf("%.1f", est/float64(runs)),
			fmt.Sprintf("%.1f", real/float64(runs)))
	}
	return t, nil
}

// Table1 demonstrates all six CQP problems of Table 1 on one instance.
func (r *Runner) Table1() (*Table, error) {
	t := &Table{
		ID:     "table1",
		Title:  "the six CQP problems on one workload instance",
		Header: []string{"problem", "objective+constraints", "solver", "|Px|", "doi", "cost(ms)", "size"},
	}
	in, err := r.Instance(0, r.Cfg.DefaultK)
	if err != nil {
		return nil, err
	}
	cmax := in.SupremeCost() * 0.4
	smin := in.SetSize(nil) * 0.001
	smax := in.BaseSize * 0.5
	if smin < 1 {
		smin = 1
	}
	probs := []struct {
		id string
		p  core.Problem
	}{
		{"1", core.Problem1(smin, smax)},
		{"2", core.Problem2(cmax)},
		{"3", core.Problem3(cmax, smin, smax)},
		{"4", core.Problem4(0.95)},
		{"5", core.Problem5(0.95, smin, smax)},
		{"6", core.Problem6(smin, smax)},
	}
	for _, pr := range probs {
		sol, err := core.Solve(in, pr.p, "")
		if err != nil {
			return nil, err
		}
		t.AddRow(pr.id, pr.p.String(), sol.Stats.Algorithm,
			fmt.Sprintf("%d", len(sol.Set)),
			fmt.Sprintf("%.4f", sol.Doi),
			fmt.Sprintf("%.1f", sol.Cost),
			fmt.Sprintf("%.1f", sol.Size))
	}
	return t, nil
}

// Ablation compares the paper's algorithms against the generic baselines it
// cites (GA, SA, tabu) and the knapsack ablation, at the default setting.
func (r *Runner) Ablation() (*Table, error) {
	t := &Table{
		ID:     "ablation",
		Title:  fmt.Sprintf("CQP algorithms vs generic baselines (K = %d, cmax = %.0f ms)", r.Cfg.DefaultK, r.Cfg.DefaultCmaxMS),
		Header: []string{"method", "mean time", "mean doi", "gap ×1e7 vs best"},
	}
	type entry struct {
		name  string
		solve func(in *core.Instance, cmax float64) core.Solution
	}
	entries := []entry{
		{"C_MaxBounds", core.CMaxBounds},
		{"D_HeurDoi", core.DHeurDoi},
		{"GREEDY", metaheur.Greedy},
		{"KNAPSACK-DP", func(in *core.Instance, cmax float64) core.Solution {
			return metaheur.KnapsackDP(in, cmax, 0)
		}},
		{"GENETIC", func(in *core.Instance, cmax float64) core.Solution {
			return metaheur.Genetic(in, cmax, metaheur.GAConfig{Seed: r.Cfg.Seed})
		}},
		{"ANNEAL", func(in *core.Instance, cmax float64) core.Solution {
			return metaheur.Anneal(in, cmax, metaheur.SAConfig{Seed: r.Cfg.Seed})
		}},
		{"TABU", func(in *core.Instance, cmax float64) core.Solution {
			return metaheur.Tabu(in, cmax, metaheur.TabuConfig{Seed: r.Cfg.Seed})
		}},
	}
	type agg struct {
		dur time.Duration
		doi float64
	}
	results := make(map[string]*agg)
	best := make([]float64, r.Pairs())
	for _, e := range entries {
		a := &agg{}
		for pair := 0; pair < r.Pairs(); pair++ {
			in, err := r.Instance(pair, r.Cfg.DefaultK)
			if err != nil {
				return nil, err
			}
			sol := e.solve(in, r.Cfg.DefaultCmaxMS)
			a.dur += sol.Stats.Duration
			a.doi += sol.Doi
			if sol.Doi > best[pair] {
				best[pair] = sol.Doi
			}
		}
		results[e.name] = a
	}
	var bestTotal float64
	for _, b := range best {
		bestTotal += b
	}
	n := float64(r.Pairs())
	for _, e := range entries {
		a := results[e.name]
		t.AddRow(e.name,
			fmtDur(a.dur/time.Duration(r.Pairs())),
			fmt.Sprintf("%.6f", a.doi/n),
			fmt.Sprintf("%.2f", (bestTotal-a.doi)/n*1e7))
	}
	return t, nil
}

// Merge quantifies the footnote-1 sub-query merging optimization: block
// reads of the personalized query with and without merging, per K.
func (r *Runner) Merge() (*Table, error) {
	t := &Table{
		ID:     "merge",
		Title:  "sub-query merging (footnote 1): block reads per personalized query",
		Header: []string{"K", "SubQueries", "MergedSubQueries", "BlocksPlain", "BlocksMerged", "saved%"},
	}
	for _, k := range r.Cfg.Ks {
		var subs, msubs, plainIO, mergedIO float64
		runs := 0
		for pair := 0; pair < r.Pairs(); pair++ {
			sp, err := r.Space(pair, k)
			if err != nil {
				return nil, err
			}
			if sp.K == 0 {
				continue
			}
			plain := rewrite.Construct(sp.Query, sp.P, true)
			merged := rewrite.ConstructMerged(sp.Query, sp.P, r.Env.DB.Schema())
			pres, err := plain.Execute(r.Env.DB)
			if err != nil {
				return nil, err
			}
			mres, err := merged.Execute(r.Env.DB)
			if err != nil {
				return nil, err
			}
			subs += float64(len(plain.Subs))
			msubs += float64(len(merged.Subs))
			plainIO += float64(pres.BlockReads)
			mergedIO += float64(mres.BlockReads)
			runs++
		}
		if runs == 0 {
			continue
		}
		n := float64(runs)
		t.AddRow(fmt.Sprintf("%d", k),
			fmt.Sprintf("%.1f", subs/n),
			fmt.Sprintf("%.1f", msubs/n),
			fmt.Sprintf("%.0f", plainIO/n),
			fmt.Sprintf("%.0f", mergedIO/n),
			fmt.Sprintf("%.1f", (1-mergedIO/plainIO)*100))
	}
	return t, nil
}

// Memo quantifies the one structural divergence from the paper: our
// algorithms memoize visited states, the paper's store "no part of the
// graph visited". The ablation runs C-BOUNDARIES both ways per K,
// reporting time, states and peak memory (no-memo runs under the state
// budget, so its numbers are lower bounds once truncated).
func (r *Runner) Memo() (*Table, error) {
	t := &Table{
		ID:    "memo",
		Title: "visited-set ablation on C-BOUNDARIES (paper stores no visited graph)",
		Header: []string{"K", "memo time", "memo states", "memo KB",
			"no-memo time", "no-memo states", "no-memo KB", "no-memo truncated"},
	}
	for _, k := range r.Cfg.Ks {
		var with, without point
		for pair := 0; pair < r.Pairs(); pair++ {
			in, err := r.Instance(pair, k)
			if err != nil {
				return nil, err
			}
			cmax := in.SupremeCost() * 0.4
			with.add(core.CBoundaries(in, cmax))
			noMemo := *in
			noMemo.DisableMemo = true
			without.add(core.CBoundaries(&noMemo, cmax))
		}
		r.noteRuns(&with)
		r.noteRuns(&without)
		n := int64(r.Pairs())
		t.AddRow(fmt.Sprintf("%d", k),
			fmtDur(with.meanDur()), fmt.Sprintf("%d", with.totalStates/n),
			fmt.Sprintf("%.1f", with.meanMemKB()),
			fmtDur(without.meanDur()), fmt.Sprintf("%d", without.totalStates/n),
			fmt.Sprintf("%.1f", without.meanMemKB()),
			fmt.Sprintf("%d/%d", without.truncated, r.Pairs()))
	}
	return t, nil
}

// Pareto demonstrates the Section 8 future work: the doi/cost frontier of
// one workload instance with its knee point.
func (r *Runner) Pareto() (*Table, error) {
	t := &Table{
		ID:     "pareto",
		Title:  fmt.Sprintf("multi-objective frontier (K = %d): doi vs cost", r.Cfg.DefaultK),
		Header: []string{"point", "|Px|", "doi", "cost(ms)", "size", "knee"},
	}
	in, err := r.Instance(0, r.Cfg.DefaultK)
	if err != nil {
		return nil, err
	}
	front, _ := core.ParetoFront(in, core.ParetoOptions{MaxPoints: 12})
	knee, _ := core.KneePoint(front)
	for i, p := range front {
		mark := ""
		if p.Cost == knee.Cost && p.Doi == knee.Doi {
			mark = "*"
		}
		t.AddRow(fmt.Sprintf("%d", i+1),
			fmt.Sprintf("%d", len(p.Set)),
			fmt.Sprintf("%.6f", p.Doi),
			fmt.Sprintf("%.1f", p.Cost),
			fmt.Sprintf("%.1f", p.Size),
			mark)
	}
	return t, nil
}

// DBScale verifies a structural property the paper relies on implicitly:
// CQP search time is independent of database size (it searches preference
// subsets, not data), while query costs scale with block counts. One
// fresh environment per scale, same profile/query seeds.
func (r *Runner) DBScale() (*Table, error) {
	t := &Table{
		ID:     "dbscale",
		Title:  fmt.Sprintf("database-scale independence (K = %d)", r.Cfg.DefaultK),
		Header: []string{"movies", "blocks", "SupremeCost(ms)", "search time (C_MaxBounds)", "states"},
	}
	for _, movies := range []int{1000, 2000, 4000, 8000} {
		env := workload.NewEnv(workload.DBConfig{Movies: movies, Seed: r.Cfg.Seed + 1}, 1)
		profile := workload.Profiles(1, workload.ProfileConfig{Seed: r.Cfg.Seed + 3})[0]
		q := workload.Queries(1, r.Cfg.Seed+2)[0]
		sp, err := prefspace.Build(q, profile, env.Est, prefspace.Options{MaxK: r.Cfg.DefaultK})
		if err != nil {
			return nil, err
		}
		in := core.FromSpace(sp)
		in.StateBudget = r.Cfg.StateBudget
		sol := core.CMaxBounds(in, in.SupremeCost()*0.4)
		t.AddRow(fmt.Sprintf("%d", movies),
			fmt.Sprintf("%d", env.DB.TotalBlocks()),
			fmt.Sprintf("%.0f", in.SupremeCost()),
			fmtDur(sol.Stats.Duration),
			fmt.Sprintf("%d", sol.Stats.StatesVisited))
	}
	return t, nil
}

// fmtDur renders a duration with stable precision for tables.
func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d)/float64(time.Millisecond))
	default:
		return fmt.Sprintf("%.0fµs", float64(d)/float64(time.Microsecond))
	}
}

// All runs every experiment in paper order.
func (r *Runner) All() ([]*Table, error) {
	type gen struct {
		name string
		f    func() (*Table, error)
	}
	gens := []gen{
		{"table1", r.Table1},
		{"fig12a", r.Fig12a},
		{"fig12b", r.Fig12b},
		{"fig12c", r.Fig12c},
		{"fig12d", r.Fig12d},
		{"fig13a", r.Fig13a},
		{"fig13b", r.Fig13b},
		{"fig14a", r.Fig14a},
		{"fig14b", r.Fig14b},
		{"fig15", r.Fig15},
		{"ablation", r.Ablation},
		{"merge", r.Merge},
		{"pareto", r.Pareto},
		{"memo", r.Memo},
		{"dbscale", r.DBScale},
	}
	var out []*Table
	for _, g := range gens {
		r.current = g.name
		t, err := g.f()
		r.current = ""
		if err != nil {
			return nil, fmt.Errorf("bench: %s: %v", g.name, err)
		}
		out = append(out, t)
	}
	return out, nil
}

// ByID runs one experiment by id.
func (r *Runner) ByID(id string) (*Table, error) {
	r.current = id
	defer func() { r.current = "" }()
	switch id {
	case "table1":
		return r.Table1()
	case "fig12a":
		return r.Fig12a()
	case "fig12b":
		return r.Fig12b()
	case "fig12c":
		return r.Fig12c()
	case "fig12d":
		return r.Fig12d()
	case "fig13a":
		return r.Fig13a()
	case "fig13b":
		return r.Fig13b()
	case "fig14a":
		return r.Fig14a()
	case "fig14b":
		return r.Fig14b()
	case "fig15":
		return r.Fig15()
	case "ablation":
		return r.Ablation()
	case "merge":
		return r.Merge()
	case "pareto":
		return r.Pareto()
	case "memo":
		return r.Memo()
	case "dbscale":
		return r.DBScale()
	default:
		return nil, fmt.Errorf("bench: unknown experiment %q", id)
	}
}

// ExperimentIDs lists the available experiments.
func ExperimentIDs() []string {
	return []string{"table1", "fig12a", "fig12b", "fig12c", "fig12d",
		"fig13a", "fig13b", "fig14a", "fig14b", "fig15", "ablation",
		"merge", "pareto", "memo", "dbscale"}
}
