package bench

import (
	"strconv"
	"strings"
	"testing"

	"cqp/internal/workload"
)

// tinyConfig keeps harness tests fast: small DB, few pairs, small Ks.
func tinyConfig() Config {
	return Config{
		DB:            workload.DBConfig{Movies: 300, Directors: 40, Actors: 150, BlockSize: 2048},
		Profiles:      2,
		Queries:       2,
		Ks:            []int{5, 10},
		CmaxPcts:      []int{25, 50, 100},
		DefaultK:      10,
		DefaultCmaxMS: 120,
		StateBudget:   50000,
		Seed:          1,
	}
}

func TestRunnerSetup(t *testing.T) {
	r := NewRunner(tinyConfig())
	if r.Pairs() != 4 {
		t.Fatalf("pairs = %d", r.Pairs())
	}
	in, err := r.Instance(0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if in.K != 10 {
		t.Errorf("K = %d", in.K)
	}
	if in.StateBudget != 50000 {
		t.Error("state budget not applied")
	}
	// Caching returns the same object.
	in2, _ := r.Instance(0, 10)
	if in != in2 {
		t.Error("instance cache miss")
	}
}

func TestConfigDefaults(t *testing.T) {
	var c Config
	c.Defaults()
	if c.Profiles != 4 || c.Queries != 5 || c.DefaultK != 20 || c.DefaultCmaxMS != 400 {
		t.Errorf("defaults: %+v", c)
	}
	if len(c.Ks) != 4 || len(c.CmaxPcts) != 10 {
		t.Errorf("sweep defaults: %+v", c)
	}
	if c.StateBudget != 1<<20 {
		t.Errorf("budget default: %d", c.StateBudget)
	}
}

func TestAllExperimentsProduceTables(t *testing.T) {
	r := NewRunner(tinyConfig())
	tables, err := r.All()
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != len(ExperimentIDs()) {
		t.Fatalf("got %d tables, want %d", len(tables), len(ExperimentIDs()))
	}
	for _, tb := range tables {
		if len(tb.Rows) == 0 {
			t.Errorf("%s: empty table", tb.ID)
		}
		out := tb.Render()
		if !strings.Contains(out, tb.ID) {
			t.Errorf("%s: render missing id", tb.ID)
		}
		csv := tb.CSV()
		if len(strings.Split(strings.TrimSpace(csv), "\n")) != len(tb.Rows)+1 {
			t.Errorf("%s: csv row count wrong", tb.ID)
		}
	}
}

func TestByID(t *testing.T) {
	r := NewRunner(tinyConfig())
	for _, id := range ExperimentIDs() {
		tb, err := r.ByID(id)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if tb.ID != id {
			t.Errorf("ByID(%s) returned %s", id, tb.ID)
		}
		break // one is enough here; TestAllExperimentsProduceTables covers the rest
	}
	if _, err := r.ByID("nope"); err == nil {
		t.Error("unknown id must fail")
	}
}

// TestFig15ShapeHolds: estimated cost within a factor of the measured cost
// and both grow with K (the paper's Figure 15 claim).
func TestFig15ShapeHolds(t *testing.T) {
	r := NewRunner(tinyConfig())
	tb, err := r.Fig15()
	if err != nil {
		t.Fatal(err)
	}
	var prevEst float64
	for _, row := range tb.Rows {
		est, err1 := strconv.ParseFloat(row[1], 64)
		real, err2 := strconv.ParseFloat(row[2], 64)
		if err1 != nil || err2 != nil {
			t.Fatalf("bad row %v", row)
		}
		if est <= 0 || real <= 0 {
			t.Fatalf("non-positive costs: %v", row)
		}
		ratio := real / est
		if ratio < 0.5 || ratio > 2.0 {
			t.Errorf("estimated and real diverge: %v (ratio %.2f)", row, ratio)
		}
		if est < prevEst {
			t.Errorf("estimated cost should grow with K: %v", tb.Rows)
		}
		prevEst = est
	}
}

// TestFig14GapsNonNegative: the quality reference must dominate every
// heuristic (gaps ≥ 0).
func TestFig14GapsNonNegative(t *testing.T) {
	r := NewRunner(tinyConfig())
	tb, err := r.Fig14a()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tb.Rows {
		for _, cell := range row[1:] {
			v, err := strconv.ParseFloat(cell, 64)
			if err != nil {
				t.Fatalf("bad cell %q", cell)
			}
			if v < -1e-6 {
				t.Errorf("negative quality gap %v in %v", v, row)
			}
		}
	}
}

// TestTable1AllProblemsSolved: each of the six problems yields a feasible
// answer on the workload instance.
func TestTable1AllProblemsSolved(t *testing.T) {
	r := NewRunner(tinyConfig())
	tb, err := r.Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 6 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		if row[2] == "" {
			t.Errorf("problem %s: no solver", row[0])
		}
	}
}

func TestTableRendering(t *testing.T) {
	tb := &Table{ID: "x", Title: "t", Header: []string{"a", "bb"}}
	tb.AddRow("1", "2")
	tb.Notes = append(tb.Notes, "note text")
	out := tb.Render()
	for _, want := range []string{"== x — t ==", "a  bb", "note: note text"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	csvTb := &Table{Header: []string{"a,b", "c"}}
	csvTb.AddRow("x\"y", "z")
	csv := csvTb.CSV()
	if !strings.Contains(csv, `"a,b"`) || !strings.Contains(csv, `"x""y"`) {
		t.Errorf("csv escaping: %q", csv)
	}
}
