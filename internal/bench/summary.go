package bench

import (
	"encoding/json"
	"io"
	"time"
)

// ExperimentSummary is the machine-readable rollup of one experiment:
// every Problem-2 solver invocation the experiment made, aggregated. It is
// the -json counterpart of the human-readable Table, meant for regression
// tracking across commits (the tables format durations for reading, which
// makes them useless to diff numerically).
type ExperimentSummary struct {
	ID    string `json:"id"`
	Title string `json:"title"`
	// Runs counts the solver invocations rolled up below; 0 for
	// experiments that measure something other than Problem-2 solves
	// (e.g. preference-selection time or query execution).
	Runs          int      `json:"runs"`
	MeanTimeMS    float64  `json:"mean_time_ms"`
	MeanStates    float64  `json:"mean_states"`
	MeanMemKB     float64  `json:"mean_mem_kb"`
	TruncatedRuns int      `json:"truncated_runs"`
	Notes         []string `json:"notes,omitempty"`
}

// Summary bundles one cqpbench invocation for -json output.
type Summary struct {
	Movies      int                 `json:"movies"`
	Profiles    int                 `json:"profiles"`
	Queries     int                 `json:"queries"`
	StateBudget int                 `json:"state_budget"`
	Seed        int64               `json:"seed"`
	Experiments []ExperimentSummary `json:"experiments"`
}

// noteRuns folds one aggregated point into the rollup of the experiment
// currently running under All or ByID. Experiments invoked directly (as
// the tests do) have no current id and roll up nothing.
func (r *Runner) noteRuns(p *point) {
	if r.current == "" {
		return
	}
	agg, ok := r.rollups[r.current]
	if !ok {
		agg = &point{}
		r.rollups[r.current] = agg
	}
	agg.totalDur += p.totalDur
	agg.totalMem += p.totalMem
	agg.totalStates += p.totalStates
	agg.totalDoi += p.totalDoi
	agg.truncated += p.truncated
	agg.runs += p.runs
}

// Summary assembles the machine-readable rollup for the given tables (in
// the order they ran).
func (r *Runner) Summary(tables []*Table) *Summary {
	s := &Summary{
		Movies:      r.Cfg.DB.Movies,
		Profiles:    r.Cfg.Profiles,
		Queries:     r.Cfg.Queries,
		StateBudget: r.Cfg.StateBudget,
		Seed:        r.Cfg.Seed,
	}
	for _, t := range tables {
		es := ExperimentSummary{ID: t.ID, Title: t.Title, Notes: t.Notes}
		if p := r.rollups[t.ID]; p != nil && p.runs > 0 {
			es.Runs = p.runs
			es.MeanTimeMS = float64(p.totalDur) / float64(p.runs) / float64(time.Millisecond)
			es.MeanStates = float64(p.totalStates) / float64(p.runs)
			es.MeanMemKB = float64(p.totalMem) / float64(p.runs) / 1024
			es.TruncatedRuns = p.truncated
		}
		s.Experiments = append(s.Experiments, es)
	}
	return s
}

// WriteJSON writes the summary as indented JSON.
func (s *Summary) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}
