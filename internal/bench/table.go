package bench

import (
	"fmt"
	"strings"
)

// Table is one rendered experiment artifact: a titled grid matching the
// rows/series the paper's figure or table reports.
type Table struct {
	ID     string // experiment id, e.g. "fig12a"
	Title  string
	Header []string
	Rows   [][]string
	// Notes carries caveats (truncation counts, substitutions).
	Notes []string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Render formats the table as aligned plain text.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s — %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (headers first).
func (t *Table) CSV() string {
	var b strings.Builder
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return "\"" + strings.ReplaceAll(s, "\"", "\"\"") + "\""
		}
		return s
	}
	row := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString(",")
			}
			b.WriteString(esc(c))
		}
		b.WriteString("\n")
	}
	row(t.Header)
	for _, r := range t.Rows {
		row(r)
	}
	return b.String()
}
