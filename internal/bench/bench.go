// Package bench is the experiment harness: it regenerates every table and
// figure of the paper's evaluation (Section 7) on the synthetic workload,
// printing rows in the same shape the paper reports.
//
// Scale knobs default to a laptop-friendly configuration (fewer runs per
// point than the paper's 200 and a per-run state budget); the cqpbench
// binary exposes flags to raise them toward the paper's setting.
package bench

import (
	"time"

	"cqp/internal/core"
	"cqp/internal/obs"
	"cqp/internal/prefs"
	"cqp/internal/prefspace"
	"cqp/internal/query"
	"cqp/internal/workload"
)

// Config scales the experiments.
type Config struct {
	// DB sizes the synthetic database.
	DB workload.DBConfig
	// Profiles × Queries is the number of runs averaged per data point
	// (the paper used 20 × 10 = 200).
	Profiles int
	Queries  int
	// Ks is the preference-count sweep of Figures 12(a)/12(b)/13(a)/14(a).
	Ks []int
	// CmaxPcts is the Supreme-Cost percentage sweep of Figures 12(c,d),
	// 13(b), 14(b).
	CmaxPcts []int
	// DefaultK and DefaultCmaxMS are the paper's defaults (20 and 400 ms).
	DefaultK      int
	DefaultCmaxMS float64
	// StateBudget caps states visited per algorithm run (0 = unlimited —
	// the paper's slow algorithms then run for real; see DESIGN.md).
	StateBudget int
	// Seed drives all generators.
	Seed int64
	// Obs, when set, receives live metrics from the whole harness run:
	// storage scans and executor unions record through the shared DB, and
	// every solver invocation records search series per algorithm. Used by
	// cqpbench's -metrics / -http surfaces.
	Obs *obs.Registry
}

// Defaults fills zero fields with the standard configuration.
func (c *Config) Defaults() {
	if c.Profiles <= 0 {
		c.Profiles = 4
	}
	if c.Queries <= 0 {
		c.Queries = 5
	}
	if len(c.Ks) == 0 {
		c.Ks = []int{10, 20, 30, 40}
	}
	if len(c.CmaxPcts) == 0 {
		c.CmaxPcts = []int{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
	}
	if c.DefaultK <= 0 {
		c.DefaultK = 20
	}
	if c.DefaultCmaxMS <= 0 {
		c.DefaultCmaxMS = 400
	}
	if c.StateBudget == 0 {
		c.StateBudget = 1 << 20
	}
	if c.DB.Seed == 0 {
		c.DB.Seed = c.Seed + 1
	}
}

// Runner prepares the shared workload and caches extracted instances.
type Runner struct {
	Cfg      Config
	Env      *workload.Env
	profiles []*prefs.Profile
	queries  []*query.Query
	// instances caches (pair, K) → instance so sweeps reuse extraction.
	instances map[instKey]*core.Instance
	spaces    map[instKey]*prefspace.Space
	// current is the experiment id running under All/ByID; rollups
	// aggregates its solver runs for the -json summary.
	current string
	rollups map[string]*point
}

type instKey struct {
	pair int
	k    int
}

// NewRunner generates the database, profiles and queries.
func NewRunner(cfg Config) *Runner {
	cfg.Defaults()
	r := &Runner{
		Cfg:       cfg,
		Env:       workload.NewEnv(cfg.DB, 1),
		profiles:  workload.Profiles(cfg.Profiles, workload.ProfileConfig{Seed: cfg.Seed + 3}),
		queries:   workload.Queries(cfg.Queries, cfg.Seed+2),
		instances: make(map[instKey]*core.Instance),
		spaces:    make(map[instKey]*prefspace.Space),
		rollups:   make(map[string]*point),
	}
	r.Env.DB.SetMetrics(cfg.Obs)
	return r
}

// recordSol feeds one solver run into the configured registry.
func (r *Runner) recordSol(sol core.Solution) {
	reg := r.Cfg.Obs
	if reg == nil {
		return
	}
	algo := sol.Stats.Algorithm
	reg.Counter("search_solves_total", "algorithm", algo).Inc()
	reg.Counter("search_states_visited_total", "algorithm", algo).Add(int64(sol.Stats.StatesVisited))
	reg.Counter("search_memo_hits_total", "algorithm", algo).Add(int64(sol.Stats.MemoHits))
	reg.Gauge("search_queue_high_water", "algorithm", algo).SetMax(int64(sol.Stats.QueueHighWater))
	reg.Gauge("search_peak_mem_bytes", "algorithm", algo).SetMax(sol.Stats.PeakMemBytes)
	if sol.Stats.Truncated {
		reg.Counter("search_truncated_total", "algorithm", algo).Inc()
	}
	reg.Histogram("search_ms", obs.DurationBucketsMS, "algorithm", algo).
		Observe(float64(sol.Stats.Duration) / float64(time.Millisecond))
}

// Pairs returns the number of (profile, query) pairs per data point.
func (r *Runner) Pairs() int { return len(r.profiles) * len(r.queries) }

// pairAt decomposes a pair index into its profile and query.
func (r *Runner) pairAt(i int) (*prefs.Profile, *query.Query) {
	return r.profiles[i/len(r.queries)], r.queries[i%len(r.queries)]
}

// Space extracts (and caches) the preference space for a pair at the given
// K.
func (r *Runner) Space(pair, k int) (*prefspace.Space, error) {
	key := instKey{pair, k}
	if sp, ok := r.spaces[key]; ok {
		return sp, nil
	}
	profile, q := r.pairAt(pair)
	sp, err := prefspace.Build(q, profile, r.Env.Est, prefspace.Options{MaxK: k})
	if err != nil {
		return nil, err
	}
	r.spaces[key] = sp
	return sp, nil
}

// Instance extracts (and caches) the CQP instance for a pair at the given
// K, with the configured state budget applied.
func (r *Runner) Instance(pair, k int) (*core.Instance, error) {
	key := instKey{pair, k}
	if in, ok := r.instances[key]; ok {
		return in, nil
	}
	sp, err := r.Space(pair, k)
	if err != nil {
		return nil, err
	}
	in := core.FromSpace(sp)
	in.StateBudget = r.Cfg.StateBudget
	r.instances[key] = in
	return in, nil
}

// point aggregates one (algorithm, sweep-value) measurement across pairs.
type point struct {
	totalDur    time.Duration
	totalMem    int64
	totalStates int64
	totalDoi    float64
	truncated   int
	runs        int
}

func (p *point) add(sol core.Solution) {
	p.totalDur += sol.Stats.Duration
	p.totalMem += sol.Stats.PeakMemBytes
	p.totalStates += int64(sol.Stats.StatesVisited)
	p.totalDoi += sol.Doi
	if sol.Stats.Truncated {
		p.truncated++
	}
	p.runs++
}

func (p *point) meanDur() time.Duration {
	if p.runs == 0 {
		return 0
	}
	return p.totalDur / time.Duration(p.runs)
}

func (p *point) meanMemKB() float64 {
	if p.runs == 0 {
		return 0
	}
	return float64(p.totalMem) / float64(p.runs) / 1024
}

func (p *point) meanDoi() float64 {
	if p.runs == 0 {
		return 0
	}
	return p.totalDoi / float64(p.runs)
}
