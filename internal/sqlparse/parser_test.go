package sqlparse

import (
	"strings"
	"testing"
	"testing/quick"

	"cqp/internal/query"
	"cqp/internal/testutil"
	"cqp/internal/value"
)

func TestParsePaperExample(t *testing.T) {
	s := testutil.MovieSchema()
	q, err := Parse(s, "select title from MOVIE")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.From) != 1 || q.From[0] != "MOVIE" {
		t.Errorf("From = %v", q.From)
	}
	if len(q.Project) != 1 || q.Project[0].String() != "MOVIE.title" {
		t.Errorf("Project = %v", q.Project)
	}
}

func TestParseSubquery(t *testing.T) {
	s := testutil.MovieSchema()
	// The paper's Q1 sub-query (no aliases in our subset).
	q, err := Parse(s, `SELECT title FROM MOVIE, DIRECTOR
		WHERE MOVIE.did = DIRECTOR.did AND DIRECTOR.name = 'W. Allen'`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Joins) != 1 {
		t.Fatalf("Joins = %v", q.Joins)
	}
	if q.Joins[0].String() != "MOVIE.did = DIRECTOR.did" {
		t.Errorf("join = %s", q.Joins[0])
	}
	if len(q.Selections) != 1 || q.Selections[0].Value.AsStr() != "W. Allen" {
		t.Errorf("Selections = %v", q.Selections)
	}
}

func TestParseLiteralKinds(t *testing.T) {
	s := testutil.MovieSchema()
	q := MustParse(s, "SELECT title FROM MOVIE WHERE year >= 1990 AND duration < 120")
	if len(q.Selections) != 2 {
		t.Fatalf("Selections = %v", q.Selections)
	}
	if q.Selections[0].Op != query.OpGe || q.Selections[0].Value.AsInt() != 1990 {
		t.Errorf("first selection = %v", q.Selections[0])
	}
	if q.Selections[1].Op != query.OpLt {
		t.Errorf("second selection = %v", q.Selections[1])
	}
}

func TestParseDistinctAndMultipleProjections(t *testing.T) {
	s := testutil.MovieSchema()
	q := MustParse(s, "SELECT DISTINCT MOVIE.title, year FROM MOVIE")
	if !q.Distinct || len(q.Project) != 2 {
		t.Errorf("q = %+v", q)
	}
	if q.Project[1].Relation != "MOVIE" {
		t.Error("bare year should resolve to MOVIE")
	}
}

func TestBareColumnResolution(t *testing.T) {
	s := testutil.MovieSchema()
	// mid is ambiguous between MOVIE and GENRE.
	_, err := Parse(s, "SELECT mid FROM MOVIE, GENRE WHERE MOVIE.mid = GENRE.mid")
	if err == nil || !strings.Contains(err.Error(), "ambiguous") {
		t.Errorf("ambiguity should be reported, got %v", err)
	}
	// genre is unique.
	q, err := Parse(s, "SELECT genre FROM MOVIE, GENRE WHERE MOVIE.mid = GENRE.mid")
	if err != nil {
		t.Fatal(err)
	}
	if q.Project[0].Relation != "GENRE" {
		t.Errorf("resolved to %v", q.Project[0])
	}
	// missing column
	if _, err := Parse(s, "SELECT nothere FROM MOVIE"); err == nil {
		t.Error("unknown bare column should fail")
	}
}

func TestParseFloatAndEscapedString(t *testing.T) {
	s := testutil.MovieSchema()
	q := MustParse(s, "SELECT name FROM DIRECTOR WHERE name <> 'O''Brien'")
	if q.Selections[0].Value.AsStr() != "O'Brien" {
		t.Errorf("escaped string = %q", q.Selections[0].Value.AsStr())
	}
	q2 := MustParse(s, "SELECT title FROM MOVIE WHERE duration >= 90.5")
	if q2.Selections[0].Value.Kind() != value.KindFloat {
		t.Error("decimal literal should be FLOAT")
	}
	q3 := MustParse(s, "SELECT title FROM MOVIE WHERE year > -5")
	if q3.Selections[0].Value.AsInt() != -5 {
		t.Error("negative literal")
	}
}

func TestSyntaxErrors(t *testing.T) {
	s := testutil.MovieSchema()
	bad := []string{
		"",
		"SELECT",
		"SELECT FROM MOVIE",
		"SELECT title",
		"SELECT title FROM",
		"SELECT title FROM MOVIE WHERE",
		"SELECT title FROM MOVIE WHERE year",
		"SELECT title FROM MOVIE WHERE year ==",
		"SELECT title FROM MOVIE WHERE year = ",
		"SELECT title FROM MOVIE WHERE year = 'x",            // unterminated string
		"SELECT title FROM MOVIE extra",                      // trailing input
		"SELECT title FROM MOVIE WHERE year < title_",        // unknown column
		"SELECT title FROM MOVIE WHERE MOVIE.did < DIRECTOR", // bad join op target
		"SELECT title FROM MOVIE WHERE year = - ",            // dangling minus
		"SELECT title FROM MOVIE WHERE year ! 3",             // bad char
		"SELECT MOVIE. FROM MOVIE",                           // dot without column
		"UPDATE MOVIE",                                       // not a select
	}
	for _, src := range bad {
		if _, err := Parse(s, src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
	// Join with non-equality operator must be rejected.
	if _, err := Parse(s, "SELECT title FROM MOVIE, GENRE WHERE MOVIE.mid < GENRE.mid"); err == nil {
		t.Error("non-equality join should fail")
	}
	var serr *SyntaxError
	_, err := Parse(s, "SELECT title FROM MOVIE ???")
	if err == nil {
		t.Fatal("expected error")
	}
	if se, ok := err.(*SyntaxError); ok {
		serr = se
	}
	if serr == nil || serr.Pos == 0 || !strings.Contains(serr.Error(), "offset") {
		t.Errorf("expected positioned SyntaxError, got %#v", err)
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse should panic on bad input")
		}
	}()
	MustParse(testutil.MovieSchema(), "not sql")
}

// TestRoundTrip checks Parse(q.SQL()) reproduces the same query for
// generated well-formed queries.
func TestRoundTrip(t *testing.T) {
	s := testutil.MovieSchema()
	srcs := []string{
		"SELECT MOVIE.title FROM MOVIE",
		"SELECT MOVIE.title FROM MOVIE, GENRE WHERE MOVIE.mid = GENRE.mid AND GENRE.genre = 'musical'",
		"SELECT MOVIE.title, DIRECTOR.name FROM MOVIE, DIRECTOR WHERE MOVIE.did = DIRECTOR.did AND MOVIE.year >= 1980",
		"SELECT DISTINCT GENRE.genre FROM GENRE",
	}
	for _, src := range srcs {
		q1 := MustParse(s, src)
		q2 := MustParse(s, q1.SQL())
		if q1.Fingerprint() != q2.Fingerprint() {
			t.Errorf("round trip changed query:\n%s\n%s", q1.SQL(), q2.SQL())
		}
	}
}

// TestParseNeverPanicsProperty fuzzes the parser lightly: arbitrary input
// must produce an error or a valid query, never a panic.
func TestParseNeverPanicsProperty(t *testing.T) {
	s := testutil.MovieSchema()
	f := func(src string) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		q, err := Parse(s, src)
		if err == nil && q == nil {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// Also some targeted adversarial strings.
	for _, src := range []string{"SELECT ' FROM", "SELECT 1.2.3 FROM MOVIE", "SELECT .. FROM", "select select from from"} {
		func() {
			defer func() {
				if recover() != nil {
					t.Errorf("panic on %q", src)
				}
			}()
			Parse(s, src) //nolint:errcheck // outcome irrelevant, must not panic
		}()
	}
}
