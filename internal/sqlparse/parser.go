package sqlparse

import (
	"strconv"
	"strings"

	"cqp/internal/query"
	"cqp/internal/schema"
	"cqp/internal/value"
)

// parser consumes tokens and builds a query.Query, resolving bare column
// names against the schema.
type parser struct {
	lex *lexer
	tok token
	sch *schema.Schema
}

// Parse parses one SELECT statement against the schema and validates the
// resulting query.
func Parse(sch *schema.Schema, src string) (*query.Query, error) {
	p := &parser{lex: &lexer{src: src}, sch: sch}
	if err := p.advance(); err != nil {
		return nil, err
	}
	q, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	if p.tok.kind != tokEOF {
		return nil, p.errf("unexpected trailing input %q", p.tok.text)
	}
	if err := q.Validate(sch); err != nil {
		return nil, err
	}
	return q, nil
}

// MustParse is Parse panicking on error, for tests and static examples.
func MustParse(sch *schema.Schema, src string) *query.Query {
	q, err := Parse(sch, src)
	if err != nil {
		panic(err)
	}
	return q
}

func (p *parser) errf(format string, args ...any) error {
	return p.lex.errf(p.tok.pos, format, args...)
}

// advance moves to the next token.
func (p *parser) advance() error {
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

// keyword reports whether the current token is the given keyword
// (case-insensitive).
func (p *parser) keyword(kw string) bool {
	return p.tok.kind == tokIdent && strings.EqualFold(p.tok.text, kw)
}

// expectKeyword consumes the keyword or fails.
func (p *parser) expectKeyword(kw string) error {
	if !p.keyword(kw) {
		return p.errf("expected %s, found %q", kw, p.tok.text)
	}
	return p.advance()
}

// parseSelect parses the whole statement.
func (p *parser) parseSelect() (*query.Query, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	q := &query.Query{}
	if p.keyword("DISTINCT") {
		q.Distinct = true
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	// Projection list: raw (possibly unqualified) attribute names; resolved
	// after FROM is known.
	type rawAttr struct {
		rel, attr string
		pos       int
	}
	var proj []rawAttr
	for {
		rel, attr, pos, err := p.parseRawAttr()
		if err != nil {
			return nil, err
		}
		proj = append(proj, rawAttr{rel, attr, pos})
		if p.tok.kind != tokComma {
			break
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	for {
		if p.tok.kind != tokIdent {
			return nil, p.errf("expected relation name, found %q", p.tok.text)
		}
		q.From = append(q.From, p.tok.text)
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.tok.kind != tokComma {
			break
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	for _, raw := range proj {
		a, err := p.resolveAttr(q, raw.rel, raw.attr, raw.pos)
		if err != nil {
			return nil, err
		}
		q.Project = append(q.Project, a)
	}
	if p.keyword("WHERE") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		for {
			if err := p.parseCondition(q); err != nil {
				return nil, err
			}
			if !p.keyword("AND") {
				break
			}
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
	}
	if p.keyword("ORDER") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			rel, attr, pos, err := p.parseRawAttr()
			if err != nil {
				return nil, err
			}
			a, err := p.resolveAttr(q, rel, attr, pos)
			if err != nil {
				return nil, err
			}
			key := query.OrderKey{Attr: a}
			if p.keyword("DESC") {
				key.Desc = true
				if err := p.advance(); err != nil {
					return nil, err
				}
			} else if p.keyword("ASC") {
				if err := p.advance(); err != nil {
					return nil, err
				}
			}
			q.OrderBy = append(q.OrderBy, key)
			if p.tok.kind != tokComma {
				break
			}
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
	}
	if p.keyword("LIMIT") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.tok.kind != tokNumber {
			return nil, p.errf("expected number after LIMIT, found %q", p.tok.text)
		}
		n, err := strconv.Atoi(p.tok.text)
		if err != nil || n < 0 {
			return nil, p.errf("bad LIMIT %q", p.tok.text)
		}
		q.Limit = n
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	return q, nil
}

// parseRawAttr parses ident[.ident] returning the (possibly empty) relation
// qualifier and the attribute name.
func (p *parser) parseRawAttr() (rel, attr string, pos int, err error) {
	if p.tok.kind != tokIdent {
		return "", "", 0, p.errf("expected attribute, found %q", p.tok.text)
	}
	first, firstPos := p.tok.text, p.tok.pos
	if err := p.advance(); err != nil {
		return "", "", 0, err
	}
	if p.tok.kind != tokDot {
		return "", first, firstPos, nil
	}
	if err := p.advance(); err != nil {
		return "", "", 0, err
	}
	if p.tok.kind != tokIdent {
		return "", "", 0, p.errf("expected column after %q.", first)
	}
	attr = p.tok.text
	if err := p.advance(); err != nil {
		return "", "", 0, err
	}
	return first, attr, firstPos, nil
}

// resolveAttr resolves a possibly unqualified attribute against the query's
// FROM list, requiring uniqueness for bare names.
func (p *parser) resolveAttr(q *query.Query, rel, attr string, pos int) (schema.AttrRef, error) {
	if rel != "" {
		return schema.AttrRef{Relation: rel, Attr: attr}, nil
	}
	var found []string
	for _, name := range q.From {
		r := p.sch.Relation(name)
		if r != nil && r.ColumnIndex(attr) >= 0 {
			found = append(found, name)
		}
	}
	switch len(found) {
	case 1:
		return schema.AttrRef{Relation: found[0], Attr: attr}, nil
	case 0:
		return schema.AttrRef{}, p.lex.errf(pos, "column %s not found in FROM relations", attr)
	default:
		return schema.AttrRef{}, p.lex.errf(pos, "column %s is ambiguous (%s)", attr, strings.Join(found, ", "))
	}
}

// parseCondition parses one conjunct: join or selection.
func (p *parser) parseCondition(q *query.Query) error {
	rel, attr, pos, err := p.parseRawAttr()
	if err != nil {
		return err
	}
	left, err := p.resolveAttr(q, rel, attr, pos)
	if err != nil {
		return err
	}
	if p.tok.kind != tokOp {
		return p.errf("expected comparison operator, found %q", p.tok.text)
	}
	op, err := query.ParseOp(p.tok.text)
	if err != nil {
		return p.errf("%v", err)
	}
	if err := p.advance(); err != nil {
		return err
	}
	switch p.tok.kind {
	case tokIdent:
		// Could be a join (attr = attr), or TRUE/FALSE/NULL literal.
		switch strings.ToUpper(p.tok.text) {
		case "TRUE", "FALSE", "NULL":
			v, _ := value.ParseLiteral(p.tok.text)
			q.Selections = append(q.Selections, query.Selection{Attr: left, Op: op, Value: v})
			return p.advance()
		}
		rel2, attr2, pos2, err := p.parseRawAttr()
		if err != nil {
			return err
		}
		right, err := p.resolveAttr(q, rel2, attr2, pos2)
		if err != nil {
			return err
		}
		if op != query.OpEq {
			return p.lex.errf(pos2, "join conditions must use =, found %s", op)
		}
		q.Joins = append(q.Joins, query.Join{Left: left, Right: right})
		return nil
	case tokNumber:
		v, perr := parseNumber(p.tok.text)
		if perr != nil {
			return p.errf("%v", perr)
		}
		q.Selections = append(q.Selections, query.Selection{Attr: left, Op: op, Value: v})
		return p.advance()
	case tokString:
		q.Selections = append(q.Selections, query.Selection{Attr: left, Op: op, Value: value.Str(p.tok.text)})
		return p.advance()
	default:
		return p.errf("expected literal or attribute, found %q", p.tok.text)
	}
}

// parseNumber parses an integer or float literal.
func parseNumber(s string) (value.Value, error) {
	if i, err := strconv.ParseInt(s, 10, 64); err == nil {
		return value.Int(i), nil
	}
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return value.Value{}, err
	}
	return value.Float(f), nil
}
