package sqlparse

import (
	"testing"

	"cqp/internal/query"
	"cqp/internal/testutil"
)

func TestParseOrderBy(t *testing.T) {
	s := testutil.MovieSchema()
	q := MustParse(s, "SELECT title, year FROM MOVIE ORDER BY year DESC, title")
	if len(q.OrderBy) != 2 {
		t.Fatalf("OrderBy = %v", q.OrderBy)
	}
	if !q.OrderBy[0].Desc || q.OrderBy[0].Attr.Attr != "year" {
		t.Errorf("first key = %v", q.OrderBy[0])
	}
	if q.OrderBy[1].Desc || q.OrderBy[1].Attr.Attr != "title" {
		t.Errorf("second key = %v", q.OrderBy[1])
	}
	// Explicit ASC parses and normalizes.
	q2 := MustParse(s, "SELECT year FROM MOVIE ORDER BY year ASC")
	if q2.OrderBy[0].Desc {
		t.Error("ASC must not set Desc")
	}
}

func TestParseLimit(t *testing.T) {
	s := testutil.MovieSchema()
	q := MustParse(s, "SELECT title FROM MOVIE LIMIT 3")
	if q.Limit != 3 {
		t.Errorf("Limit = %d", q.Limit)
	}
	q2 := MustParse(s, "SELECT title, year FROM MOVIE WHERE year >= 1960 ORDER BY year LIMIT 2")
	if q2.Limit != 2 || len(q2.OrderBy) != 1 || len(q2.Selections) != 1 {
		t.Errorf("combined clause parse: %+v", q2)
	}
}

func TestOrderLimitErrors(t *testing.T) {
	s := testutil.MovieSchema()
	bad := []string{
		"SELECT title FROM MOVIE ORDER year",             // missing BY
		"SELECT title FROM MOVIE ORDER BY",               // missing key
		"SELECT title FROM MOVIE ORDER BY year",          // key not projected
		"SELECT title FROM MOVIE LIMIT",                  // missing count
		"SELECT title FROM MOVIE LIMIT x",                // non-numeric
		"SELECT title FROM MOVIE LIMIT -1",               // negative
		"SELECT title FROM MOVIE LIMIT 2 ORDER BY title", // wrong clause order
	}
	for _, src := range bad {
		if _, err := Parse(s, src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestOrderLimitRoundTrip(t *testing.T) {
	s := testutil.MovieSchema()
	srcs := []string{
		"SELECT MOVIE.title, MOVIE.year FROM MOVIE ORDER BY MOVIE.year DESC LIMIT 5",
		"SELECT MOVIE.title FROM MOVIE ORDER BY MOVIE.title",
	}
	for _, src := range srcs {
		q1 := MustParse(s, src)
		q2 := MustParse(s, q1.SQL())
		if q1.Fingerprint() != q2.Fingerprint() {
			t.Errorf("round trip changed query:\n%s\n%s", q1.SQL(), q2.SQL())
		}
	}
	// Fingerprint distinguishes limits and orders.
	a := MustParse(s, "SELECT MOVIE.title FROM MOVIE LIMIT 5")
	b := MustParse(s, "SELECT MOVIE.title FROM MOVIE LIMIT 6")
	if a.Fingerprint() == b.Fingerprint() {
		t.Error("limit must participate in fingerprint")
	}
	_ = query.OrderKey{}
}
