// Package sqlparse implements a lexer and recursive-descent parser for the
// SQL subset CQP personalizes: conjunctive SELECT-FROM-WHERE queries.
//
// Grammar (case-insensitive keywords):
//
//	query      = "SELECT" ["DISTINCT"] projList "FROM" relList
//	             ["WHERE" condList] ["ORDER" "BY" orderList] ["LIMIT" number]
//	projList   = attr {"," attr}
//	relList    = ident {"," ident}
//	condList   = cond {"AND" cond}
//	cond       = attr op literal | attr "=" attr
//	orderList  = attr ["ASC"|"DESC"] {"," attr ["ASC"|"DESC"]}
//	attr       = ident "." ident | ident
//	op         = "=" | "<>" | "!=" | "<" | "<=" | ">" | ">="
//	literal    = number | string | TRUE | FALSE | NULL
//
// Bare column names are resolved against the FROM relations and must be
// unambiguous.
package sqlparse

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexical tokens.
type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokComma
	tokDot
	tokOp // comparison operators
)

// token is one lexical token with its source position (byte offset).
type token struct {
	kind tokenKind
	text string
	pos  int
}

// SyntaxError reports a parse failure with the byte offset in the input.
type SyntaxError struct {
	Pos int
	Msg string
}

// Error implements the error interface.
func (e *SyntaxError) Error() string {
	return fmt.Sprintf("sqlparse: at offset %d: %s", e.Pos, e.Msg)
}

// lexer tokenizes the input on demand.
type lexer struct {
	src string
	pos int
}

func (l *lexer) errf(pos int, format string, args ...any) error {
	return &SyntaxError{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// next returns the next token.
func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) && unicode.IsSpace(rune(l.src[l.pos])) {
		l.pos++
	}
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, pos: l.pos}, nil
	}
	start := l.pos
	c := l.src[l.pos]
	switch {
	case c == ',':
		l.pos++
		return token{kind: tokComma, text: ",", pos: start}, nil
	case c == '.':
		l.pos++
		return token{kind: tokDot, text: ".", pos: start}, nil
	case c == '\'':
		return l.lexString()
	case c == '=':
		l.pos++
		return token{kind: tokOp, text: "=", pos: start}, nil
	case c == '<':
		l.pos++
		if l.pos < len(l.src) && (l.src[l.pos] == '=' || l.src[l.pos] == '>') {
			l.pos++
		}
		return token{kind: tokOp, text: l.src[start:l.pos], pos: start}, nil
	case c == '>':
		l.pos++
		if l.pos < len(l.src) && l.src[l.pos] == '=' {
			l.pos++
		}
		return token{kind: tokOp, text: l.src[start:l.pos], pos: start}, nil
	case c == '!':
		l.pos++
		if l.pos < len(l.src) && l.src[l.pos] == '=' {
			l.pos++
			return token{kind: tokOp, text: "!=", pos: start}, nil
		}
		return token{}, l.errf(start, "unexpected character %q", c)
	case c == '-' || c >= '0' && c <= '9':
		return l.lexNumber()
	case isIdentStart(rune(c)):
		return l.lexIdent()
	default:
		return token{}, l.errf(start, "unexpected character %q", c)
	}
}

// lexString scans a single-quoted string with ” escaping.
func (l *lexer) lexString() (token, error) {
	start := l.pos
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\'' {
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
				b.WriteByte('\'')
				l.pos += 2
				continue
			}
			l.pos++
			return token{kind: tokString, text: b.String(), pos: start}, nil
		}
		b.WriteByte(c)
		l.pos++
	}
	return token{}, l.errf(start, "unterminated string literal")
}

// lexNumber scans an optionally signed integer or decimal number.
func (l *lexer) lexNumber() (token, error) {
	start := l.pos
	if l.src[l.pos] == '-' {
		l.pos++
		if l.pos >= len(l.src) || l.src[l.pos] < '0' || l.src[l.pos] > '9' {
			return token{}, l.errf(start, "dangling minus sign")
		}
	}
	seenDot := false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c >= '0' && c <= '9' {
			l.pos++
			continue
		}
		if c == '.' && !seenDot && l.pos+1 < len(l.src) &&
			l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9' {
			seenDot = true
			l.pos++
			continue
		}
		break
	}
	return token{kind: tokNumber, text: l.src[start:l.pos], pos: start}, nil
}

// lexIdent scans an identifier or keyword.
func (l *lexer) lexIdent() (token, error) {
	start := l.pos
	for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
		l.pos++
	}
	return token{kind: tokIdent, text: l.src[start:l.pos], pos: start}, nil
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}
