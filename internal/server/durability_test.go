package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"cqp"
	"cqp/internal/fault"
)

// newDurableServer builds a daemon whose profile store persists under dir.
// Callers shut it down themselves (Shutdown syncs and closes the log) so a
// successor can reopen the same directory.
func newDurableServer(t *testing.T, dir string, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	cfg.DataDir = dir
	db := cqp.SyntheticMovieDB(300, 1)
	s, err := New(db, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func shutdown(t *testing.T, s *Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

func listProfiles(t *testing.T, base string) []ProfileInfo {
	t.Helper()
	resp, body := doJSON(t, http.MethodGet, base+"/profiles", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /profiles: %d: %s", resp.StatusCode, body)
	}
	var out struct {
		Profiles []ProfileInfo `json:"profiles"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	return out.Profiles
}

// TestServerRecoveryRoundTrip: profiles PUT (and one DELETE) through the
// HTTP surface survive a shutdown/reopen cycle with their exact versions,
// /profiles lists them in the documented ID order, and the first PUT after
// recovery gets a version strictly above every pre-restart version — the
// regression pin for the PR-2 cache-key contract (ID@version never
// aliases), which a reset clock would silently break.
func TestServerRecoveryRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s1, ts1 := newDurableServer(t, dir, Config{})
	text := testProfileText()
	putProfile(t, ts1.URL, "carol", text)
	alice := putProfile(t, ts1.URL, "alice", text)
	putProfile(t, ts1.URL, "bob", text)
	bob2 := putProfile(t, ts1.URL, "bob", text) // replacement bumps version
	resp, _ := doJSON(t, http.MethodDelete, ts1.URL+"/profiles/carol", nil)
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("DELETE: %d", resp.StatusCode)
	}
	maxVersion := bob2.Version // delete advanced the clock past this
	shutdown(t, s1)

	s2, ts2 := newDurableServer(t, dir, Config{})
	if rec := s2.Recovery(); rec == nil || rec.Clock <= maxVersion {
		t.Fatalf("recovery %+v; clock must exceed last acked version %d", rec, maxVersion)
	}
	got := listProfiles(t, ts2.URL)
	if len(got) != 2 || got[0].ID != "alice" || got[1].ID != "bob" {
		t.Fatalf("recovered listing %+v; want [alice bob] in ID order", got)
	}
	if got[0].Version != alice.Version || got[1].Version != bob2.Version {
		t.Fatalf("versions changed across restart: %+v (want alice@%d bob@%d)",
			got, alice.Version, bob2.Version)
	}
	if _, ok := s2.Profiles().Get("carol"); ok {
		t.Fatal("deleted profile resurrected by recovery")
	}
	fresh := putProfile(t, ts2.URL, "dave", text)
	if fresh.Version <= maxVersion {
		t.Fatalf("post-recovery version %d not strictly above pre-crash max %d: cache keys can alias",
			fresh.Version, maxVersion)
	}
	// The recovered profile serves the pipeline.
	resp, body := doJSON(t, http.MethodPost, ts2.URL+"/personalize", personalizeBody("alice"))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("personalize with recovered profile: %d: %s", resp.StatusCode, body)
	}
	shutdown(t, s2)
}

// TestHealthzDuringRecovery: until replay completes the daemon must answer
// 503 so load balancers keep traffic away from a store that is not yet the
// acked state.
func TestHealthzDuringRecovery(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	s.ready.Store(false)
	resp, body := doJSON(t, http.MethodGet, ts.URL+"/healthz", nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz while recovering: %d: %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "recovering") {
		t.Fatalf("healthz body %s; want status recovering", body)
	}
	s.ready.Store(true)
	resp, _ = doJSON(t, http.MethodGet, ts.URL+"/healthz", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz after recovery: %d", resp.StatusCode)
	}
}

// TestHealthzReportsWAL: a durable daemon's health body carries the wal
// counters operators alert on.
func TestHealthzReportsWAL(t *testing.T) {
	s, ts := newDurableServer(t, t.TempDir(), Config{})
	putProfile(t, ts.URL, "alice", testProfileText())
	_, body := doJSON(t, http.MethodGet, ts.URL+"/healthz", nil)
	for _, want := range []string{"log_bytes", "records_since_snapshot", "last_snapshot_age_ms"} {
		if !strings.Contains(string(body), want) {
			t.Errorf("healthz missing wal field %s: %s", want, body)
		}
	}
	shutdown(t, s)
}

// TestMutationDurabilityFault: with wal.append erroring, a PUT and a
// DELETE must answer 503 (not 400), leave the store unchanged, and succeed
// once the fault clears — the mutation path's append-before-ack contract.
func TestMutationDurabilityFault(t *testing.T) {
	s, ts := newDurableServer(t, t.TempDir(), Config{})
	text := testProfileText()
	putProfile(t, ts.URL, "alice", text)

	plan, err := fault.NewPlan(7, fault.Rule{Point: fault.WALAppend, Mode: fault.ModeErr})
	if err != nil {
		t.Fatal(err)
	}
	fault.Arm(plan)
	t.Cleanup(fault.Disarm)

	req, _ := http.NewRequest(http.MethodPut, ts.URL+"/profiles/bob", strings.NewReader(text))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("PUT under wal.append fault: %d, want 503", resp.StatusCode)
	}
	if _, ok := s.Profiles().Get("bob"); ok {
		t.Fatal("unacked PUT visible in store")
	}
	resp, _ = doJSON(t, http.MethodDelete, ts.URL+"/profiles/alice", nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("DELETE under wal.append fault: %d, want 503", resp.StatusCode)
	}
	if _, ok := s.Profiles().Get("alice"); !ok {
		t.Fatal("unacked DELETE applied to store")
	}

	fault.Disarm()
	putProfile(t, ts.URL, "bob", text)
	shutdown(t, s)
}

// TestWALChaosAckedStateSurvives is the durability chaos drill: sustained
// PUTs while wal.append and wal.fsync fire probabilistically, then a
// restart. Every acked response must be recovered exactly; every faulted
// (503) mutation must be absent unless later re-acked.
func TestWALChaosAckedStateSurvives(t *testing.T) {
	dir := t.TempDir()
	s1, ts1 := newDurableServer(t, dir, Config{SnapshotEvery: 16})
	text := testProfileText()
	plan, err := fault.Parse("wal.append:err:0.2,wal.fsync:err:0.1", 99)
	if err != nil {
		t.Fatal(err)
	}
	fault.Arm(plan)
	t.Cleanup(fault.Disarm)

	acked := map[string]uint64{} // id -> last acked version
	var failed, okCount int
	for i := 0; i < 120; i++ {
		id := fmt.Sprintf("user-%d", i%17)
		req, _ := http.NewRequest(http.MethodPut, ts1.URL+"/profiles/"+id, strings.NewReader(text))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		switch resp.StatusCode {
		case http.StatusOK:
			var pj profileJSON
			if err := json.NewDecoder(resp.Body).Decode(&pj); err != nil {
				t.Fatal(err)
			}
			acked[id] = pj.Version
			okCount++
		case http.StatusServiceUnavailable:
			failed++
		default:
			t.Fatalf("PUT %s: unexpected status %d", id, resp.StatusCode)
		}
		resp.Body.Close()
	}
	fault.Disarm()
	if failed == 0 || okCount == 0 {
		t.Fatalf("chaos plan fired %d faults over %d acks; want both nonzero", failed, okCount)
	}
	shutdown(t, s1)

	s2, ts2 := newDurableServer(t, dir, Config{})
	got := map[string]uint64{}
	for _, p := range listProfiles(t, ts2.URL) {
		got[p.ID] = p.Version
	}
	if len(got) != len(acked) {
		t.Fatalf("recovered %d profiles, acked %d", len(got), len(acked))
	}
	for id, v := range acked {
		if got[id] != v {
			t.Fatalf("profile %s recovered at version %d, acked %d", id, got[id], v)
		}
	}
	shutdown(t, s2)
}

// TestRecoveryRefusesCorruptLog: a daemon pointed at a mid-log-corrupted
// data directory must fail construction, not serve a hole in acked state.
func TestRecoveryRefusesCorruptLog(t *testing.T) {
	dir := t.TempDir()
	s1, ts1 := newDurableServer(t, dir, Config{})
	for i := 0; i < 5; i++ {
		putProfile(t, ts1.URL, fmt.Sprintf("user-%d", i), testProfileText())
	}
	shutdown(t, s1)

	// Flip a byte in the first record's payload: damage strictly before
	// the final record is corruption, never a torn tail.
	logs, err := filepathGlob(dir, "wal-*.log")
	if err != nil || len(logs) != 1 {
		t.Fatalf("logs = %v, %v", logs, err)
	}
	flipFileByte(t, logs[0], 20)

	db := cqp.SyntheticMovieDB(300, 1)
	if _, err := New(db, Config{DataDir: dir}); err == nil {
		t.Fatal("New accepted a corrupt log")
	}
}

func filepathGlob(dir, pattern string) ([]string, error) {
	return filepath.Glob(filepath.Join(dir, pattern))
}

func flipFileByte(t *testing.T, path string, off int) {
	t.Helper()
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if off >= len(buf) {
		t.Fatalf("offset %d beyond %d-byte file", off, len(buf))
	}
	buf[off] ^= 0x40
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
}
