package server

import (
	"encoding/json"
	"net/http"
	"testing"
)

// batchBody builds a /personalize/batch request around a list of items.
func batchBody(items ...map[string]any) map[string]any {
	return map[string]any{"items": items}
}

func batchItem(profileID, sql string) map[string]any {
	return map[string]any{
		"sql":        sql,
		"profile_id": profileID,
		"problem":    map[string]any{"number": 2, "cmax_ms": 10000},
	}
}

// TestBatchEndpoint: duplicates within a batch coalesce onto one pipeline
// run, a malformed item fails alone with a per-item error, and results stay
// aligned with input order.
func TestBatchEndpoint(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	putProfile(t, ts.URL, "alice", testProfileText())

	const q2 = "SELECT title FROM MOVIE WHERE year >= 1990"
	resp, body := doJSON(t, http.MethodPost, ts.URL+"/personalize/batch", batchBody(
		batchItem("alice", testSQL),                    // 0: leader
		batchItem("alice", q2),                         // 1: distinct query
		batchItem("alice", testSQL),                    // 2: duplicate of 0
		batchItem("alice", "SELECT nope FROM NOWHERE"), // 3: malformed, fails alone
		batchItem("alice", testSQL),                    // 4: duplicate of 0
	))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch: %d: %s", resp.StatusCode, body)
	}
	var br struct {
		Results []struct {
			SQL       string `json:"sql"`
			ProfileID string `json:"profile_id"`
			Duplicate bool   `json:"duplicate"`
			Error     *struct {
				Class   string `json:"class"`
				Message string `json:"message"`
			} `json:"error"`
		} `json:"results"`
		Distinct   int `json:"distinct"`
		Duplicates int `json:"duplicates"`
	}
	if err := json.Unmarshal(body, &br); err != nil {
		t.Fatalf("batch body: %v: %s", err, body)
	}
	if len(br.Results) != 5 {
		t.Fatalf("got %d results for 5 items", len(br.Results))
	}
	if br.Distinct != 2 || br.Duplicates != 2 {
		t.Errorf("distinct=%d duplicates=%d, want 2 and 2", br.Distinct, br.Duplicates)
	}
	for _, i := range []int{0, 1, 2, 4} {
		r := br.Results[i]
		if r.Error != nil {
			t.Fatalf("item %d: unexpected error %+v", i, r.Error)
		}
		if r.SQL == "" || r.ProfileID != "alice" {
			t.Fatalf("item %d: incomplete response: %+v", i, r)
		}
	}
	if br.Results[3].Error == nil || br.Results[3].Error.Class != "bad_request" {
		t.Errorf("malformed item error = %+v, want per-item bad_request", br.Results[3].Error)
	}
	if br.Results[3].SQL != "" {
		t.Error("failed item must not carry a response body")
	}
	if !br.Results[2].Duplicate || !br.Results[4].Duplicate {
		t.Error("items 2 and 4 should be marked duplicate")
	}
	if br.Results[0].Duplicate || br.Results[1].Duplicate {
		t.Error("leaders must not be marked duplicate")
	}
	// Order preservation: each result answers its own item's query shape.
	if br.Results[0].SQL == br.Results[1].SQL {
		t.Error("distinct queries produced identical rewrites — results misaligned?")
	}
	if br.Results[2].SQL != br.Results[0].SQL {
		t.Error("duplicate must share its leader's rewrite")
	}
	// Exactly one pipeline run per distinct item.
	if got := s.reg.Counter("personalize_total").Value(); got != 2 {
		t.Errorf("personalize_total = %d, want 2 (deduplicated runs)", got)
	}
	// Batch leaders fill the shared result cache: a singleton /personalize
	// for the same work is now a cache hit.
	resp2, body2 := doJSON(t, http.MethodPost, ts.URL+"/personalize", map[string]any{
		"sql": testSQL, "profile_id": "alice",
		"problem": map[string]any{"number": 2, "cmax_ms": 10000},
	})
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("follow-up personalize: %d: %s", resp2.StatusCode, body2)
	}
	var single personalizeResponse
	if err := json.Unmarshal(body2, &single); err != nil {
		t.Fatal(err)
	}
	if !single.Cached {
		t.Error("singleton request after a batch leader should hit the cache")
	}
}

// TestBatchEndpointLimits: empty batches and batches past BatchMaxItems are
// rejected whole with 400.
func TestBatchEndpointLimits(t *testing.T) {
	_, ts := newTestServer(t, Config{BatchMaxItems: 2})
	resp, _ := doJSON(t, http.MethodPost, ts.URL+"/personalize/batch", batchBody())
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty batch: %d, want 400", resp.StatusCode)
	}
	resp, body := doJSON(t, http.MethodPost, ts.URL+"/personalize/batch", batchBody(
		batchItem("a", testSQL), batchItem("b", testSQL), batchItem("c", testSQL),
	))
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("oversized batch: %d, want 400: %s", resp.StatusCode, body)
	}
}

// TestBatchEndpointUnknownProfile: a missing stored profile is a per-item
// 404-class error, not a whole-batch failure.
func TestBatchEndpointUnknownProfile(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	putProfile(t, ts.URL, "alice", testProfileText())
	resp, body := doJSON(t, http.MethodPost, ts.URL+"/personalize/batch", batchBody(
		batchItem("ghost", testSQL),
		batchItem("alice", testSQL),
	))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch: %d: %s", resp.StatusCode, body)
	}
	var br struct {
		Results []struct {
			SQL   string `json:"sql"`
			Error *struct {
				Class string `json:"class"`
			} `json:"error"`
		} `json:"results"`
	}
	if err := json.Unmarshal(body, &br); err != nil {
		t.Fatal(err)
	}
	if br.Results[0].Error == nil || br.Results[0].Error.Class != "not_found" {
		t.Errorf("unknown profile item = %+v, want not_found error", br.Results[0])
	}
	if br.Results[1].Error != nil || br.Results[1].SQL == "" {
		t.Errorf("valid item should still succeed: %+v", br.Results[1])
	}
}
