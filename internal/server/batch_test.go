package server

import (
	"encoding/json"
	"net/http"
	"testing"

	"cqp/internal/obs"
)

// batchBody builds a /personalize/batch request around a list of items.
func batchBody(items ...map[string]any) map[string]any {
	return map[string]any{"items": items}
}

func batchItem(profileID, sql string) map[string]any {
	return map[string]any{
		"sql":        sql,
		"profile_id": profileID,
		"problem":    map[string]any{"number": 2, "cmax_ms": 10000},
	}
}

// TestBatchEndpoint: duplicates within a batch coalesce onto one pipeline
// run, a malformed item fails alone with a per-item error, and results stay
// aligned with input order.
func TestBatchEndpoint(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	putProfile(t, ts.URL, "alice", testProfileText())

	const q2 = "SELECT title FROM MOVIE WHERE year >= 1990"
	resp, body := doJSON(t, http.MethodPost, ts.URL+"/personalize/batch", batchBody(
		batchItem("alice", testSQL),                    // 0: leader
		batchItem("alice", q2),                         // 1: distinct query
		batchItem("alice", testSQL),                    // 2: duplicate of 0
		batchItem("alice", "SELECT nope FROM NOWHERE"), // 3: malformed, fails alone
		batchItem("alice", testSQL),                    // 4: duplicate of 0
	))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch: %d: %s", resp.StatusCode, body)
	}
	var br struct {
		Results []struct {
			SQL       string `json:"sql"`
			ProfileID string `json:"profile_id"`
			Duplicate bool   `json:"duplicate"`
			Error     *struct {
				Class   string `json:"class"`
				Message string `json:"message"`
			} `json:"error"`
		} `json:"results"`
		Distinct   int `json:"distinct"`
		Duplicates int `json:"duplicates"`
	}
	if err := json.Unmarshal(body, &br); err != nil {
		t.Fatalf("batch body: %v: %s", err, body)
	}
	if len(br.Results) != 5 {
		t.Fatalf("got %d results for 5 items", len(br.Results))
	}
	if br.Distinct != 2 || br.Duplicates != 2 {
		t.Errorf("distinct=%d duplicates=%d, want 2 and 2", br.Distinct, br.Duplicates)
	}
	for _, i := range []int{0, 1, 2, 4} {
		r := br.Results[i]
		if r.Error != nil {
			t.Fatalf("item %d: unexpected error %+v", i, r.Error)
		}
		if r.SQL == "" || r.ProfileID != "alice" {
			t.Fatalf("item %d: incomplete response: %+v", i, r)
		}
	}
	if br.Results[3].Error == nil || br.Results[3].Error.Class != "bad_request" {
		t.Errorf("malformed item error = %+v, want per-item bad_request", br.Results[3].Error)
	}
	if br.Results[3].SQL != "" {
		t.Error("failed item must not carry a response body")
	}
	if !br.Results[2].Duplicate || !br.Results[4].Duplicate {
		t.Error("items 2 and 4 should be marked duplicate")
	}
	if br.Results[0].Duplicate || br.Results[1].Duplicate {
		t.Error("leaders must not be marked duplicate")
	}
	// Order preservation: each result answers its own item's query shape.
	if br.Results[0].SQL == br.Results[1].SQL {
		t.Error("distinct queries produced identical rewrites — results misaligned?")
	}
	if br.Results[2].SQL != br.Results[0].SQL {
		t.Error("duplicate must share its leader's rewrite")
	}
	// Exactly one pipeline run per distinct item.
	if got := s.reg.Counter("personalize_total").Value(); got != 2 {
		t.Errorf("personalize_total = %d, want 2 (deduplicated runs)", got)
	}
	// Batch leaders fill the shared result cache: a singleton /personalize
	// for the same work is now a cache hit.
	resp2, body2 := doJSON(t, http.MethodPost, ts.URL+"/personalize", map[string]any{
		"sql": testSQL, "profile_id": "alice",
		"problem": map[string]any{"number": 2, "cmax_ms": 10000},
	})
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("follow-up personalize: %d: %s", resp2.StatusCode, body2)
	}
	var single personalizeResponse
	if err := json.Unmarshal(body2, &single); err != nil {
		t.Fatal(err)
	}
	if !single.Cached {
		t.Error("singleton request after a batch leader should hit the cache")
	}
}

// TestBatchEndpointLimits: empty batches and batches past BatchMaxItems are
// rejected whole with 400.
func TestBatchEndpointLimits(t *testing.T) {
	_, ts := newTestServer(t, Config{BatchMaxItems: 2})
	resp, _ := doJSON(t, http.MethodPost, ts.URL+"/personalize/batch", batchBody())
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty batch: %d, want 400", resp.StatusCode)
	}
	resp, body := doJSON(t, http.MethodPost, ts.URL+"/personalize/batch", batchBody(
		batchItem("a", testSQL), batchItem("b", testSQL), batchItem("c", testSQL),
	))
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("oversized batch: %d, want 400: %s", resp.StatusCode, body)
	}
}

// TestBatchEndpointUnknownProfile: a missing stored profile is a per-item
// 404-class error, not a whole-batch failure.
func TestBatchEndpointUnknownProfile(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	putProfile(t, ts.URL, "alice", testProfileText())
	resp, body := doJSON(t, http.MethodPost, ts.URL+"/personalize/batch", batchBody(
		batchItem("ghost", testSQL),
		batchItem("alice", testSQL),
	))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch: %d: %s", resp.StatusCode, body)
	}
	var br struct {
		Results []struct {
			SQL   string `json:"sql"`
			Error *struct {
				Class string `json:"class"`
			} `json:"error"`
		} `json:"results"`
	}
	if err := json.Unmarshal(body, &br); err != nil {
		t.Fatal(err)
	}
	if br.Results[0].Error == nil || br.Results[0].Error.Class != "not_found" {
		t.Errorf("unknown profile item = %+v, want not_found error", br.Results[0])
	}
	if br.Results[1].Error != nil || br.Results[1].SQL == "" {
		t.Errorf("valid item should still succeed: %+v", br.Results[1])
	}
}

// TestRungSeverityOrdering pins the severity lattice the batch aggregate
// sorts by: full fidelity < stale_replica < stale < heuristic < tight-cmax
// < unknown rungs < unavailable.
func TestRungSeverityOrdering(t *testing.T) {
	order := []string{"", degradedStaleReplica, "stale", "heuristic", "tight-cmax", "brand-new-rung", "unavailable"}
	for i := 1; i < len(order); i++ {
		if rungSeverity(order[i-1]) >= rungSeverity(order[i]) {
			t.Errorf("severity(%q)=%d not below severity(%q)=%d",
				order[i-1], rungSeverity(order[i-1]), order[i], rungSeverity(order[i]))
		}
	}
}

// TestBatchRungAggregation: a batch whose units land on different ladder
// rungs must record the WORST rung on its flight record — not whichever
// unit's goroutine wrote last — and break the spectrum down in
// degraded_counts. One item is answered from the stale cache (rung
// "stale"), the other exhausts the ladder (rung "unavailable").
func TestBatchRungAggregation(t *testing.T) {
	s, ts := newTestServer(t, Config{RetryAttempts: 1})
	putProfile(t, ts.URL, "alice", testProfileText())

	// Warm the cache for item A, then rotate the profile version: A's
	// exact cache key dies but its stale key survives.
	resp, raw := doJSON(t, http.MethodPost, ts.URL+"/personalize", personalizeBody("alice"))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm run: %d: %s", resp.StatusCode, raw)
	}
	putProfile(t, ts.URL, "alice", testProfileText())

	// Every search attempt now dies: item A falls to its stale answer,
	// item B (no stale entry) exhausts the whole ladder.
	armPlan(t, "search.expand:err:1", 1)
	resp, raw = doJSON(t, http.MethodPost, ts.URL+"/personalize/batch", batchBody(
		batchItem("alice", testSQL),
		batchItem("alice", "SELECT title FROM MOVIE WHERE year >= 1990"),
	))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch: %d: %s", resp.StatusCode, raw)
	}
	var br struct {
		Results []struct {
			Degraded string `json:"degraded"`
			Error    *struct {
				Class string `json:"class"`
			} `json:"error"`
		} `json:"results"`
		DegradedCounts map[string]int `json:"degraded_counts"`
	}
	if err := json.Unmarshal(raw, &br); err != nil {
		t.Fatalf("batch body: %v: %s", err, raw)
	}
	if br.Results[0].Error != nil || br.Results[0].Degraded != "stale" {
		t.Fatalf("item A = %+v, want degraded:stale", br.Results[0])
	}
	if br.Results[1].Error == nil || br.Results[1].Error.Class != "degraded_unavailable" {
		t.Fatalf("item B = %+v, want degraded_unavailable error", br.Results[1])
	}
	if br.DegradedCounts["stale"] != 1 || br.DegradedCounts["unavailable"] != 1 {
		t.Errorf("degraded_counts = %v, want {stale:1 unavailable:1}", br.DegradedCounts)
	}
	recs := s.flight.Snapshot(obs.Filter{Endpoint: "batch", Limit: 1})
	if len(recs) != 1 {
		t.Fatalf("flight records for batch = %d, want 1", len(recs))
	}
	// The regression: concurrent units each SetRung on the shared record,
	// so the record showed whichever unit finished last ("stale" half the
	// time). The aggregate must always pick the worst.
	if recs[0].Rung != "unavailable" {
		t.Errorf("flight record rung = %q, want unavailable (the worst of the batch)", recs[0].Rung)
	}
}

// TestBatchExecuteSharedScans: execute-mode batches return ranked rows per
// item, run one physical pass per base relation for the whole batch (the
// rest of the opens are answered from the share), and fill the /execute
// result cache so a follow-up singleton is a hit.
func TestBatchExecuteSharedScans(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	putProfile(t, ts.URL, "alice", testProfileText())

	// any_match keeps the executed answers non-empty (the all-match
	// intersection of a 40-selection profile is usually empty).
	item := func(sql string) map[string]any {
		m := batchItem("alice", sql)
		m["any_match"] = true
		return m
	}
	body := map[string]any{
		"execute": true,
		"items": []map[string]any{
			item(testSQL),
			item("SELECT title FROM MOVIE WHERE year >= 1990"),
			item(testSQL), // duplicate of 0
		},
	}
	resp, raw := doJSON(t, http.MethodPost, ts.URL+"/personalize/batch", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch: %d: %s", resp.StatusCode, raw)
	}
	var br struct {
		Results []struct {
			SQL       string `json:"sql"`
			Duplicate bool   `json:"duplicate"`
			RowCount  int    `json:"row_count"`
			TotalRows int    `json:"total_rows"`
			Blocks    int64  `json:"block_reads"`
			Rows      []struct {
				Values []string `json:"values"`
			} `json:"rows"`
			Error *struct {
				Message string `json:"message"`
			} `json:"error"`
		} `json:"results"`
		SharedScans   int64 `json:"shared_scans"`
		PhysicalScans int64 `json:"physical_scans"`
	}
	if err := json.Unmarshal(raw, &br); err != nil {
		t.Fatalf("batch body: %v: %s", err, raw)
	}
	for i, r := range br.Results {
		if r.Error != nil {
			t.Fatalf("item %d: %+v", i, r.Error)
		}
		if r.SQL == "" || r.TotalRows == 0 || len(r.Rows) == 0 || r.Blocks == 0 {
			t.Fatalf("item %d: incomplete execute payload: %+v", i, r)
		}
	}
	if !br.Results[2].Duplicate || br.Results[2].TotalRows != br.Results[0].TotalRows {
		t.Errorf("duplicate item should replay its leader's execution: %+v", br.Results[2])
	}
	if br.PhysicalScans == 0 || br.SharedScans == 0 {
		t.Errorf("scan share never engaged: physical=%d shared=%d", br.PhysicalScans, br.SharedScans)
	}
	if got := s.reg.Counter("server_batch_shared_scans_total").Value(); got != br.SharedScans {
		t.Errorf("shared-scan counter = %d, response says %d", got, br.SharedScans)
	}

	// Cache interop: the same item as a singleton /execute is now a hit.
	resp, raw = doJSON(t, http.MethodPost, ts.URL+"/execute", map[string]any{
		"sql": testSQL, "profile_id": "alice", "any_match": true,
		"problem": map[string]any{"number": 2, "cmax_ms": 10000},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("follow-up execute: %d: %s", resp.StatusCode, raw)
	}
	var single executeResponse
	if err := json.Unmarshal(raw, &single); err != nil {
		t.Fatal(err)
	}
	if !single.Cached {
		t.Error("singleton /execute after an execute-mode batch leader should hit the cache")
	}
	if single.TotalRows != br.Results[0].TotalRows || single.BlockReads != br.Results[0].Blocks {
		t.Errorf("singleton answer diverged from batch: %d rows/%d blocks vs %d/%d",
			single.TotalRows, single.BlockReads, br.Results[0].TotalRows, br.Results[0].Blocks)
	}
}
