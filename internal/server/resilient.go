package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"

	"cqp"
	"cqp/internal/fault"
	"cqp/internal/obs"
	"cqp/internal/resilience"
)

// errPanic marks a pipeline panic that the serving path recovered: the
// request failed, the worker lives. Classified transient — injected panics
// (the fault harness's panic mode) and genuine pipeline bugs both warrant a
// retry and, failing that, the degradation ladder.
var errPanic = errors.New("server: pipeline panicked")

// transientFault reports whether an error is a backend fault the serving
// path may retry or degrade around. ONLY injected faults and recovered
// panics qualify; context errors, cqp.ErrInfeasible and caller mistakes
// (unknown algorithms, bad SQL) are permanent — retrying them would mask
// the caller's error and burn workers.
func transientFault(err error) bool {
	return errors.Is(err, fault.ErrInjected) || errors.Is(err, errPanic)
}

// permanentErr is transientFault's complement, in the shape
// resilience.Walk's predicate wants.
func permanentErr(err error) bool { return !transientFault(err) }

// safeRun executes one pipeline attempt, converting a panic into an
// errPanic-classed error. First line of panic containment: the pool worker
// and the HTTP middleware behind it are belt and braces.
func safeRun(ctx context.Context, fn func(context.Context) (any, error)) (v any, err error) {
	defer func() {
		if r := recover(); r != nil {
			v, err = nil, fmt.Errorf("%w: %v", errPanic, r)
		}
	}()
	return fn(ctx)
}

// step builds one degradation-ladder rung over a pipeline closure: panics
// are contained, and an infeasibility verdict is treated as "rung
// unavailable" rather than a request error — a degraded search (heuristic
// algorithm, tightened cmax) can miss solutions the full-fidelity search
// would find, so its infeasibility proves nothing about the caller's
// problem. A genuinely infeasible problem surfaces from the primary
// attempt, which is exact.
func (s *Server) step(name string, run func(context.Context) (any, error)) resilience.Step {
	return resilience.Step{Name: name, Run: func(ctx context.Context) (any, error) {
		v, err := safeRun(ctx, run)
		if err != nil && errors.Is(err, cqp.ErrInfeasible) {
			return nil, resilience.ErrStepUnavailable
		}
		return v, err
	}}
}

// runResilient executes one pipeline request with the daemon's full fault
// posture. The primary (full-fidelity) attempt runs under the circuit
// breaker and the retry policy; when it fails transiently, when the breaker
// is open, or when the admission queue is past its high-water mark, the
// degradation ladder runs instead: (1) the stale-cache rung, then (2+) the
// endpoint's cheaper rungs, in order. Returns the answer, the name of the
// rung that produced it ("" = full fidelity), and the terminal error.
//
// This is the operational reading of the paper's algorithm family: exact
// search (C-BOUNDARIES, D-MAXDOI) down to the D-HEURDOI heuristic and a
// tighter cmax are all answers to the same question at different
// quality/cost points, so the daemon sheds quality before it sheds
// requests.
func (s *Server) runResilient(ctx context.Context, endpoint, staleKey string, primary func(context.Context) (any, error), rungs ...resilience.Step) (any, string, error) {
	bypass := ""
	switch {
	case s.pool.Pressured():
		bypass = "pressure"
	case !s.breaker.Allow():
		bypass = "breaker-open"
	}
	if bypass == "" {
		var val any
		pol := resilience.RetryPolicy{
			MaxAttempts: s.cfg.RetryAttempts,
			Retryable:   transientFault,
			OnRetry: func(int, error) {
				s.reg.Counter("server_retries_total", "endpoint", endpoint).Inc()
			},
		}
		err := resilience.Retry(ctx, pol, func(ctx context.Context) error {
			v, err := safeRun(ctx, primary)
			if err != nil {
				return err
			}
			val = v
			return nil
		})
		switch {
		case err == nil:
			s.breaker.Success()
			return val, "", nil
		case !transientFault(err):
			// The backend did its job; the request failed on its own terms
			// (infeasible problem, dead deadline, caller mistake). Settles
			// the breaker grant as a success: this is not backend illness.
			s.breaker.Success()
			return nil, "", err
		default:
			s.breaker.Failure()
			s.reg.Counter("server_pipeline_faults_total", "endpoint", endpoint).Inc()
		}
	} else {
		s.reg.Counter("server_degraded_bypass_total",
			"endpoint", endpoint, "reason", bypass).Inc()
	}

	steps := make([]resilience.Step, 0, len(rungs)+1)
	steps = append(steps, resilience.Step{Name: "stale", Run: func(context.Context) (any, error) {
		if v, ok := s.cache.GetStale(staleKey); ok {
			return v, nil
		}
		return nil, resilience.ErrStepUnavailable
	}})
	steps = append(steps, rungs...)
	v, rung, err := resilience.Walk(ctx, permanentErr, steps...)
	if err != nil {
		// The ladder ran dry: every rung was unavailable or failed. Counted
		// under its own rung so the degradation spectrum (stale → heuristic →
		// tight-cmax → unavailable) reads off one metric.
		s.reg.Counter("server_degraded_total", "endpoint", endpoint, "rung", "unavailable").Inc()
		obs.RequestFromContext(ctx).SetRung("unavailable")
		return nil, "", err
	}
	s.reg.Counter("server_degraded_total", "endpoint", endpoint, "rung", rung).Inc()
	return v, rung, nil
}

// shedOrStale answers an admission failure (saturated queue, shutdown,
// queued-deadline skip): the last good stale answer when one exists —
// shedding quality instead of the request — otherwise the admission error
// itself.
func (s *Server) shedOrStale(w http.ResponseWriter, rec *obs.Request, endpoint, staleKey string, admitErr error) {
	if v, ok := s.cache.GetStale(staleKey); ok {
		s.reg.Counter("server_degraded_total", "endpoint", endpoint, "rung", "stale").Inc()
		rec.SetRung("stale")
		writeJSON(w, http.StatusOK, markStale(v))
		return
	}
	s.admit(w, admitErr)
}

// markStale copies a stale-index response value and sets its Cached and
// Degraded markers (the shared cached pointer must never be mutated).
func markStale(v any) any {
	switch t := v.(type) {
	case *personalizeResponse:
		resp := *t
		resp.Cached, resp.Degraded = true, "stale"
		return resp
	case *executeResponse:
		resp := *t
		resp.Cached, resp.Degraded = true, "stale"
		return resp
	case *frontResponse:
		resp := *t
		resp.Cached, resp.Degraded = true, "stale"
		return resp
	case *topkResponse:
		resp := *t
		resp.Cached, resp.Degraded = true, "stale"
		return resp
	}
	return v
}

// cacheGet is the result cache's read path with the server.cache fault
// point in front: an injected error degrades to a miss (the pipeline
// recomputes), an injected panic exercises the middleware recovery.
func (s *Server) cacheGet(key string) (any, bool) {
	if key == "" {
		return nil, false
	}
	if err := fault.Inject(fault.ServerCache); err != nil {
		s.reg.Counter("server_cache_faults_total").Inc()
		return nil, false
	}
	return s.cache.Get(key)
}

// cachePut stores a full-fidelity response under both the exact key and the
// version-free stale key, behind the server.cache fault point (an injected
// error skips the store — the cache is an optimization, never a
// correctness dependency).
func (s *Server) cachePut(key, staleKey, profileID string, val any) {
	if key == "" && staleKey == "" {
		return
	}
	if err := fault.Inject(fault.ServerCache); err != nil {
		s.reg.Counter("server_cache_faults_total").Inc()
		return
	}
	if key != "" {
		s.cache.Put(key, profileID, val)
	}
	s.cache.PutStale(staleKey, val)
}

// staleKey builds the version-free companion of cacheKey: profile version
// and statistics generation are deliberately absent, so the entry remains
// addressable when either rotates — that staleness is the point. Responses
// served from it are marked degraded:"stale".
func (s *Server) staleKey(endpoint string, q *cqp.Query, profileID, extra string) string {
	return fmt.Sprintf("%s|%s|%s|%s", endpoint, q.Fingerprint(), profileID, extra)
}

// tightenedProblem applies the ladder's third rung to a problem: scale the
// cost ceiling down by the configured factor. A problem with no cost bound
// has nothing to tighten.
func tightenedProblem(prob cqp.Problem, factor float64) (cqp.Problem, bool) {
	if prob.CostMax <= 0 {
		return prob, false
	}
	prob.CostMax *= factor
	return prob, true
}
