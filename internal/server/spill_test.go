package server

import (
	"encoding/json"
	"net/http"
	"testing"

	"cqp/internal/iter"
)

// A daemon under a tight spill budget must serve the same personalized
// answers as an unconstrained one — the budget moves executor state to
// temp files, never changes results — and the budget must actually engage
// on the request path.
func TestSpillBudgetServesIdenticalAnswers(t *testing.T) {
	answers := func(cfg Config) string {
		_, ts := newTestServer(t, cfg)
		putProfile(t, ts.URL, "alice", testProfileText())
		body := map[string]any{
			"sql":        "SELECT title, name FROM MOVIE, DIRECTOR WHERE MOVIE.did = DIRECTOR.did",
			"profile_id": "alice",
			"cmax_ms":    10000,
			"k":          50,
		}
		resp, data := doJSON(t, http.MethodPost, ts.URL+"/topk", body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("topk: %d: %s", resp.StatusCode, data)
		}
		var out struct {
			Answers json.RawMessage `json:"answers"`
		}
		if err := json.Unmarshal(data, &out); err != nil {
			t.Fatal(err)
		}
		if len(out.Answers) == 0 {
			t.Fatalf("no answers in %s", data)
		}
		return string(out.Answers)
	}

	plain := answers(Config{})
	r0, _, _ := iter.SpillStats()
	tight := answers(Config{SpillBytes: 2048, SpillDir: t.TempDir()})
	if r1, _, _ := iter.SpillStats(); r1 == r0 {
		t.Fatal("a 2 KiB server budget never spilled — the budget is not reaching the executor")
	}
	if plain != tight {
		t.Fatalf("spill budget changed served results:\nplain: %s\ntight: %s", plain, tight)
	}
}
