package server

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cqp/internal/obs"
)

func TestPoolRunsWork(t *testing.T) {
	p := NewPool(2, 2, obs.NewRegistry())
	defer p.Close()
	var ran atomic.Bool
	if err := p.Do(context.Background(), func(context.Context) { ran.Store(true) }); err != nil {
		t.Fatal(err)
	}
	if !ran.Load() {
		t.Fatal("task did not run")
	}
}

// blockPool occupies every worker and returns a release function plus a
// channel that closes once all workers are busy.
func blockPool(t *testing.T, p *Pool, workers int) (release func()) {
	t.Helper()
	gate := make(chan struct{})
	started := make(chan struct{}, workers)
	for i := 0; i < workers; i++ {
		go func() {
			_ = p.Do(context.Background(), func(context.Context) {
				started <- struct{}{}
				<-gate
			})
		}()
	}
	for i := 0; i < workers; i++ {
		select {
		case <-started:
		case <-time.After(5 * time.Second):
			t.Fatal("workers never picked up blocking tasks")
		}
	}
	var once sync.Once
	return func() { once.Do(func() { close(gate) }) }
}

func TestPoolShedsWhenSaturated(t *testing.T) {
	reg := obs.NewRegistry()
	p := NewPool(1, 1, reg)
	release := blockPool(t, p, 1)
	defer func() { release(); p.Close() }()

	// One task fits in the queue behind the busy worker...
	queued := make(chan error, 1)
	go func() { queued <- p.Do(context.Background(), func(context.Context) {}) }()
	waitFor(t, func() bool { return reg.Gauge("server_queue_depth").Value() == 1 })

	// ...and the next is shed immediately.
	if err := p.Do(context.Background(), func(context.Context) {}); !errors.Is(err, ErrSaturated) {
		t.Fatalf("saturated Do = %v, want ErrSaturated", err)
	}
	if v := reg.Counter("server_shed_total").Value(); v != 1 {
		t.Errorf("server_shed_total = %d, want 1", v)
	}
	release()
	if err := <-queued; err != nil {
		t.Fatalf("queued task failed: %v", err)
	}
}

// TestPoolSkipsDeadTasks checks that a task whose context dies while it
// waits in the queue is never run: the caller gets the context error and
// the worker discards the task.
func TestPoolSkipsDeadTasks(t *testing.T) {
	p := NewPool(1, 1, obs.NewRegistry())
	release := blockPool(t, p, 1)
	defer func() { p.Close() }()

	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Bool
	errc := make(chan error, 1)
	go func() { errc <- p.Do(ctx, func(context.Context) { ran.Store(true) }) }()
	time.Sleep(20 * time.Millisecond) // let it enqueue behind the blocker
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("Do = %v, want context.Canceled", err)
	}
	release()
	p.Close() // drains the queue, so the dead task has been considered
	if ran.Load() {
		t.Fatal("task with dead context ran anyway")
	}
}

// TestPoolSkippedTaskNeverReportsSuccess hammers the race where a queued
// task's context dies just before the worker drains it: the worker skips fn
// and closes done while ctx.Done() is simultaneously ready, so Do's select
// may take either arm — and must not return nil for work that never ran
// (handlers would cache and dereference a nil response).
func TestPoolSkippedTaskNeverReportsSuccess(t *testing.T) {
	for i := 0; i < 100; i++ {
		reg := obs.NewRegistry()
		p := NewPool(1, 1, reg)
		release := blockPool(t, p, 1)

		ctx, cancel := context.WithCancel(context.Background())
		var ran atomic.Bool
		errc := make(chan error, 1)
		go func() { errc <- p.Do(ctx, func(context.Context) { ran.Store(true) }) }()
		waitFor(t, func() bool { return reg.Gauge("server_queue_depth").Value() == 1 })
		cancel()  // the queued task's context dies...
		release() // ...exactly as the worker gets to it
		if err := <-errc; err == nil {
			t.Fatalf("iteration %d: Do returned nil for a skipped task", i)
		}
		p.Close()
		if ran.Load() {
			t.Fatalf("iteration %d: task with dead context ran anyway", i)
		}
	}
}

func TestPoolCloseIdempotentAndRejects(t *testing.T) {
	p := NewPool(1, 1, obs.NewRegistry())
	p.Close()
	p.Close()
	if err := p.Do(context.Background(), func(context.Context) {}); !errors.Is(err, ErrShuttingDown) {
		t.Fatalf("Do after Close = %v, want ErrShuttingDown", err)
	}
}

func TestPoolCloseDrainsQueue(t *testing.T) {
	p := NewPool(1, 4, obs.NewRegistry())
	var done atomic.Int32
	for i := 0; i < 4; i++ {
		go p.Do(context.Background(), func(context.Context) {
			time.Sleep(5 * time.Millisecond)
			done.Add(1)
		})
	}
	waitFor(t, func() bool { return done.Load() > 0 })
	p.Close()
	// Close returned only after every admitted task ran or was skipped;
	// nothing may still be running.
	got := done.Load()
	time.Sleep(20 * time.Millisecond)
	if done.Load() != got {
		t.Fatal("tasks still running after Close returned")
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never became true")
		}
		time.Sleep(time.Millisecond)
	}
}
