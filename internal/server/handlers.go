package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"time"

	"cqp"
	"cqp/internal/iter"
	"cqp/internal/obs"
	"cqp/internal/resilience"
)

// problemSpec is the JSON form of a Table-1 problem: the number plus the
// full bound set; bounds the problem does not use are ignored. The zero
// value means the paper's default context, Problem 2 with cmax = 400 ms.
type problemSpec struct {
	Number int     `json:"number"`
	CmaxMS float64 `json:"cmax_ms"`
	Smin   float64 `json:"smin"`
	Smax   float64 `json:"smax"`
	Dmin   float64 `json:"dmin"`
}

func (ps problemSpec) build() (cqp.Problem, error) {
	if ps.Number == 0 {
		return cqp.Problem2(400), nil
	}
	return cqp.BuildProblem(ps.Number, ps.CmaxMS, ps.Smin, ps.Smax, ps.Dmin)
}

// personalizeRequest is the body of POST /personalize and POST /execute.
// Exactly one of ProfileID (a stored profile — cacheable) and Profile
// (inline text — never cached) must be set.
type personalizeRequest struct {
	SQL       string      `json:"sql"`
	ProfileID string      `json:"profile_id"`
	Profile   string      `json:"profile"`
	Problem   problemSpec `json:"problem"`
	Algorithm string      `json:"algorithm"`
	K         int         `json:"k"`
	AnyMatch  bool        `json:"any_match"`
	Merge     bool        `json:"merge"`
	Budget    int         `json:"budget"`
	Limit     int         `json:"limit"` // /execute row cap
	TimeoutMS int         `json:"timeout_ms"`
	NoCache   bool        `json:"no_cache"`
	Trace     bool        `json:"trace"`
}

// solutionJSON serializes the chosen solution and its search stats.
type solutionJSON struct {
	Doi           float64 `json:"doi"`
	CostMS        float64 `json:"cost_ms"`
	SizeRows      float64 `json:"size_rows"`
	Algorithm     string  `json:"algorithm"`
	StatesVisited int     `json:"states_visited"`
	Truncated     bool    `json:"truncated,omitempty"`
	DurationUS    int64   `json:"duration_us"`
}

// personalizeResponse is the body of a /personalize answer; /execute embeds
// it. Cached, Degraded and Trace are per-request and set after any cache
// copy.
type personalizeResponse struct {
	SQL            string       `json:"sql"`
	Preferences    []string     `json:"preferences"`
	PreferenceDois []float64    `json:"preference_dois"`
	Solution       solutionJSON `json:"solution"`
	SupremeCostMS  float64      `json:"supreme_cost_ms"`
	ProfileID      string       `json:"profile_id,omitempty"`
	ProfileVersion uint64       `json:"profile_version,omitempty"`
	Cached         bool         `json:"cached"`
	// Degraded names the ladder rung that answered ("stale", "heuristic",
	// "tight-cmax"); empty for a full-fidelity answer.
	Degraded string `json:"degraded,omitempty"`
	Trace    string `json:"trace,omitempty"`
	// RequestID and AttributionUS ride along when the request asked for the
	// trace (body trace:true or ?trace=1): the request's ID — the handle
	// into /debug/requests/{id} — and the per-phase latency attribution in
	// microseconds, with the wall time so far under the reserved "total"
	// key.
	RequestID     string           `json:"request_id,omitempty"`
	AttributionUS map[string]int64 `json:"attribution_us,omitempty"`
}

// rowJSON is one ranked answer row.
type rowJSON struct {
	Values  []string `json:"values"`
	Doi     float64  `json:"doi"`
	Matched int      `json:"matched"`
}

// executeResponse is the body of a /execute answer.
type executeResponse struct {
	personalizeResponse
	Rows       []rowJSON `json:"rows"`
	RowCount   int       `json:"row_count"`  // rows returned (≤ limit)
	TotalRows  int       `json:"total_rows"` // rows the query produced
	BlockReads int64     `json:"block_reads"`
	ExecMS     float64   `json:"exec_ms"`
}

// frontRequest is the body of POST /front.
type frontRequest struct {
	SQL       string  `json:"sql"`
	ProfileID string  `json:"profile_id"`
	Profile   string  `json:"profile"`
	CmaxMS    float64 `json:"cmax_ms"`
	Smin      float64 `json:"smin"`
	Smax      float64 `json:"smax"`
	MaxPoints int     `json:"max_points"`
	K         int     `json:"k"`
	Budget    int     `json:"budget"` // per-solve state budget; exhausting it sets truncated
	TimeoutMS int     `json:"timeout_ms"`
	NoCache   bool    `json:"no_cache"`
	Trace     bool    `json:"trace"`
}

type frontPointJSON struct {
	Preferences []string `json:"preferences"`
	Doi         float64  `json:"doi"`
	CostMS      float64  `json:"cost_ms"`
	SizeRows    float64  `json:"size_rows"`
	Knee        bool     `json:"knee,omitempty"`
}

type frontResponse struct {
	Points []frontPointJSON `json:"points"`
	// Truncated reports that the frontier search hit its state budget —
	// the menu is best-found, not proven complete.
	Truncated     bool             `json:"truncated,omitempty"`
	Cached        bool             `json:"cached"`
	Degraded      string           `json:"degraded,omitempty"`
	Trace         string           `json:"trace,omitempty"`
	RequestID     string           `json:"request_id,omitempty"`
	AttributionUS map[string]int64 `json:"attribution_us,omitempty"`
}

// topkRequest is the body of POST /topk.
type topkRequest struct {
	SQL       string  `json:"sql"`
	ProfileID string  `json:"profile_id"`
	Profile   string  `json:"profile"`
	CmaxMS    float64 `json:"cmax_ms"`
	K         int     `json:"k"`     // answers wanted (default 10)
	MaxK      int     `json:"max_k"` // preferences considered
	TimeoutMS int     `json:"timeout_ms"`
	NoCache   bool    `json:"no_cache"`
	Trace     bool    `json:"trace"`
}

type topkResponse struct {
	Answers       []rowJSON        `json:"answers"`
	Cached        bool             `json:"cached"`
	Degraded      string           `json:"degraded,omitempty"`
	Trace         string           `json:"trace,omitempty"`
	RequestID     string           `json:"request_id,omitempty"`
	AttributionUS map[string]int64 `json:"attribution_us,omitempty"`
}

// errorBody is the one error envelope every endpoint speaks:
// {"error":{"class":"...","message":"..."}}. Class is a stable,
// machine-distinguishable token per failure kind; Message is for humans.
type errorBody struct {
	Class   string `json:"class"`
	Message string `json:"message"`
}

type errorResponse struct {
	Error errorBody `json:"error"`
}

// errDeadlineSkipped is the belt-and-braces answer when the pool reports
// success yet the task produced neither a response nor an error: the worker
// skipped a queued task whose deadline had expired. Handlers must never
// cache or dereference the nil response that state leaves behind.
var errDeadlineSkipped = fmt.Errorf("server: deadline expired before the pipeline ran: %w", context.DeadlineExceeded)

// statusWriter captures the response code for per-endpoint metrics, whether
// the header went out (panic recovery must not write a second one), when the
// first byte went out (everything after it is the encode phase), and the
// error message the handler answered with (writeError records it for the
// flight recorder).
type statusWriter struct {
	http.ResponseWriter
	code  int
	wrote bool
	first time.Time
	err   string
}

func (w *statusWriter) WriteHeader(code int) {
	if !w.wrote {
		w.first = time.Now()
	}
	w.code = code
	w.wrote = true
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if !w.wrote {
		w.first = time.Now()
	}
	w.wrote = true
	return w.ResponseWriter.Write(b)
}

// instrument wraps a handler with the full request observability surface:
// request-ID minting (honoring a sanitized incoming X-Request-ID, echoed on
// the response), a flight record carried through the context, per-endpoint
// and per-phase latency histograms, the rolling SLO window, the structured
// request log, the slow-query log, and panic recovery — a panic that
// escapes the handler (the server.cache injection point's panic mode fires
// on this goroutine) becomes a counted 500 instead of a torn connection
// with no metrics.
func (s *Server) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		id := obs.SanitizeRequestID(r.Header.Get("X-Request-ID"))
		if id == "" {
			id = obs.NewRequestID()
		}
		w.Header().Set("X-Request-ID", id)
		rec := obs.NewRequest(endpoint, id)
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		r = r.WithContext(obs.ContextWithRequest(r.Context(), rec))
		defer func() {
			if rc := recover(); rc != nil {
				s.reg.Counter("server_panics_total", "endpoint", endpoint).Inc()
				if !sw.wrote {
					sw.code = http.StatusInternalServerError
					writeError(sw, http.StatusInternalServerError, "internal",
						fmt.Sprintf("server: recovered panic: %v", rc))
				}
				if sw.err == "" {
					sw.err = fmt.Sprintf("server: recovered panic: %v", rc)
				}
			}
			if !sw.first.IsZero() {
				rec.AddPhase(obs.PhaseEncode, time.Since(sw.first))
			}
			rec.Trace().End()
			rec.Finish(sw.code, sw.err)
			s.finishRequest(endpoint, rec)
		}()
		h(sw, r)
	}
}

// finishRequest fans a sealed flight record out to every observability
// sink: request and per-phase histograms, the SLO window, the flight
// recorder, the request log, and the slow-query log.
func (s *Server) finishRequest(endpoint string, rec *obs.Request) {
	snap := rec.Snapshot()
	total := time.Duration(snap.TotalUS) * time.Microsecond
	s.reg.Counter("server_requests_total",
		"endpoint", endpoint, "code", strconv.Itoa(snap.Status)).Inc()
	s.reg.Histogram("server_request_ms", obs.DurationBucketsMS, "endpoint", endpoint).
		Observe(float64(total) / float64(time.Millisecond))
	for phase, us := range snap.PhasesUS {
		s.reg.Histogram("server_phase_ms", obs.DurationBucketsMS,
			"endpoint", endpoint, "phase", phase).Observe(float64(us) / 1000)
	}
	s.slo.Record(endpoint, total, snap.Status, snap.Role, snap.Rung)
	s.flight.Add(rec)
	if s.log == nil {
		return
	}
	level := slog.LevelInfo
	if snap.Status >= 500 {
		level = slog.LevelError
	}
	attrs := []slog.Attr{
		slog.String("id", snap.ID),
		slog.String("endpoint", endpoint),
		slog.Int("status", snap.Status),
		slog.Float64("total_ms", float64(snap.TotalUS)/1000),
	}
	if snap.Profile != "" {
		attrs = append(attrs, slog.String("profile", snap.Profile))
	}
	if snap.Role != "" {
		attrs = append(attrs, slog.String("role", snap.Role))
	}
	if snap.Rung != "" {
		attrs = append(attrs, slog.String("rung", snap.Rung))
	}
	if snap.Error != "" {
		attrs = append(attrs, slog.String("error", snap.Error))
	}
	s.log.LogAttrs(context.Background(), level, "request", attrs...)
	if s.cfg.SlowLog > 0 && total >= s.cfg.SlowLog {
		s.log.LogAttrs(context.Background(), slog.LevelWarn, "slow request",
			slog.String("id", snap.ID),
			slog.String("endpoint", endpoint),
			slog.Float64("total_ms", float64(snap.TotalUS)/1000),
			slog.Any("phases_us", snap.PhasesUS))
	}
}

// laps charges wall time between handler checkpoints to named attribution
// phases. The first lap starts at the flight record's birth, so the parse
// phase covers body decode from the instrument preamble on.
type laps struct {
	rec  *obs.Request
	last time.Time
}

func startLaps(rec *obs.Request) *laps {
	l := &laps{rec: rec, last: time.Now()}
	if rec != nil {
		l.last = rec.Start()
	}
	return l
}

// lap closes the current interval under the given phase and starts the next.
func (l *laps) lap(phase string) {
	now := time.Now()
	l.rec.AddPhase(phase, now.Sub(l.last))
	l.last = now
}

// wantTrace reports whether the request asked for the trace and attribution
// payload — via the body's trace flag or the ?trace=1 query knob.
func wantTrace(r *http.Request, body bool) bool {
	return body || r.URL.Query().Get("trace") == "1"
}

// profileLabel renders the profile identity a flight record carries.
func profileLabel(id string, version uint64) string {
	if id == "" {
		return "inline"
	}
	return fmt.Sprintf("%s@%d", id, version)
}

// attribution renders a flight record's response-embedded view: the request
// ID and the per-phase microsecond map, with the wall time so far under the
// reserved "total" key. Built before the response is encoded, so the encode
// phase appears only in the final flight record.
func attribution(rec *obs.Request) (string, map[string]int64) {
	if rec == nil {
		return "", nil
	}
	id, total, phases := rec.Attribution()
	out := make(map[string]int64, len(phases)+1)
	for name, d := range phases {
		out[name] = d.Microseconds()
	}
	out["total"] = total.Microseconds()
	return id, out
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

// classFor names the failure class for a status code — the stable token
// clients branch on.
func classFor(code int) string {
	switch code {
	case http.StatusBadRequest:
		return "bad_request"
	case http.StatusNotFound:
		return "not_found"
	case http.StatusRequestEntityTooLarge:
		return "payload_too_large"
	case http.StatusUnprocessableEntity:
		return "infeasible"
	case http.StatusTooManyRequests:
		return "saturated"
	case http.StatusInternalServerError:
		return "internal"
	case http.StatusServiceUnavailable:
		return "unavailable"
	case http.StatusGatewayTimeout:
		return "timeout"
	default:
		return "error"
	}
}

// writeError emits the error envelope. When the writer is the instrumented
// statusWriter the message is kept for the request's flight record.
func writeError(w http.ResponseWriter, code int, class, msg string) {
	if sw, ok := w.(*statusWriter); ok {
		sw.err = msg
	}
	writeJSON(w, code, errorResponse{Error: errorBody{Class: class, Message: msg}})
}

// fail maps an error onto the envelope. Two refinements over classFor's
// code-based default: an oversized body (however deep http's wrapping
// buried it) forces 413, and an exhausted degradation ladder marks its 503
// as degraded_unavailable — "we tried every quality level", as opposed to
// plain unavailability.
func (s *Server) fail(w http.ResponseWriter, code int, err error) {
	var mbe *http.MaxBytesError
	class := classFor(code)
	switch {
	case errors.As(err, &mbe):
		code = http.StatusRequestEntityTooLarge
		class = "payload_too_large"
	case errors.Is(err, resilience.ErrExhausted):
		class = "degraded_unavailable"
	}
	writeError(w, code, class, err.Error())
}

// decodeJSON parses the bounded request body into v.
func (s *Server) decodeJSON(w http.ResponseWriter, r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

// pipelineStatus maps a pipeline error onto an HTTP status: expired
// deadlines are 504, infeasible problems 422, an exhausted degradation
// ladder or recovered panic or injected fault 503/500, everything else a
// caller error.
func pipelineStatus(err error) int {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return http.StatusServiceUnavailable
	case errors.Is(err, cqp.ErrInfeasible):
		return http.StatusUnprocessableEntity
	case errors.Is(err, resilience.ErrExhausted):
		return http.StatusServiceUnavailable
	case transientFault(err):
		return http.StatusInternalServerError
	default:
		return http.StatusBadRequest
	}
}

// admit maps an admission error onto its response: 429 when the queue shed
// the request, 503 during shutdown, 504 when the deadline expired while
// queued or running.
func (s *Server) admit(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrSaturated):
		w.Header().Set("Retry-After", "1")
		s.fail(w, http.StatusTooManyRequests, err)
	case errors.Is(err, ErrShuttingDown):
		s.fail(w, http.StatusServiceUnavailable, err)
	case errors.Is(err, context.DeadlineExceeded):
		s.fail(w, http.StatusGatewayTimeout, fmt.Errorf("server: deadline expired: %w", err))
	default:
		// Client went away; the response writer is dead anyway.
		s.fail(w, http.StatusServiceUnavailable, err)
	}
}

// resolveProfile returns the request's profile: a stored one by ID (with
// its version, cacheable) or an inline parsed one (never cached). On a
// replica-serving request (cluster failover — the owner is down and this
// node follows the profile) a local-store miss falls back to the
// replicated snapshot; stale reports that fallback so the handler can
// mark the response "stale_replica" and skip caching it.
func (s *Server) resolveProfile(r *http.Request, id, inline string) (prof *cqp.Profile, version uint64, cacheable, stale bool, code int, err error) {
	switch {
	case id != "" && inline != "":
		return nil, 0, false, false, http.StatusBadRequest, fmt.Errorf("server: profile_id and profile are mutually exclusive")
	case id != "":
		sp, ok := s.store.Get(id)
		if !ok && s.cluster != nil && replicaServing(r.Context()) {
			if rp, rok := s.replicaProfile(id); rok {
				return rp.Profile, rp.Version, false, true, 0, nil
			}
		}
		if !ok {
			return nil, 0, false, false, http.StatusNotFound, fmt.Errorf("server: no profile %q", id)
		}
		return sp.Profile, sp.Version, true, false, 0, nil
	case inline != "":
		p, err := cqp.ParseProfile(inline)
		if err != nil {
			return nil, 0, false, false, http.StatusBadRequest, err
		}
		if err := p.Validate(s.db.Schema()); err != nil {
			return nil, 0, false, false, http.StatusBadRequest, err
		}
		return p, 0, false, false, 0, nil
	default:
		return nil, 0, false, false, http.StatusBadRequest, fmt.Errorf("server: request needs profile_id or profile")
	}
}

// requestContext derives the per-request deadline (request value, capped by
// the server max; the server default when absent) and the request's trace.
// Tracing is always on — latency attribution needs the span tree whether or
// not the caller asked to see it — and the root span is attached to the
// flight record so /debug/requests/{id} serves the very tree the response
// rendered.
func (s *Server) requestContext(r *http.Request, timeoutMS int, name string) (context.Context, context.CancelFunc, *cqp.Trace) {
	d := s.cfg.DefaultTimeout
	if timeoutMS > 0 {
		d = time.Duration(timeoutMS) * time.Millisecond
	}
	if d > s.cfg.MaxTimeout {
		d = s.cfg.MaxTimeout
	}
	ctx, cancel := context.WithTimeout(r.Context(), d)
	if s.cfg.SpillBytes > 0 {
		ctx = iter.WithBudget(ctx, iter.Budget{Bytes: s.cfg.SpillBytes, Dir: s.cfg.SpillDir})
	}
	ctx, tr := cqp.StartTrace(ctx, name)
	obs.RequestFromContext(r.Context()).SetTrace(tr)
	return ctx, cancel, tr
}

// buildOpts translates request knobs into Personalize options. A state
// budget request ≤ 0 keeps the server default — a serving daemon never
// grants the unlimited paper-faithful search.
func buildOpts(alg string, k, budget int, anyMatch, merge bool) []cqp.Option {
	var opts []cqp.Option
	if alg != "" {
		opts = append(opts, cqp.WithAlgorithm(alg))
	}
	if k > 0 {
		opts = append(opts, cqp.WithMaxK(k))
	}
	if budget > 0 {
		opts = append(opts, cqp.WithStateBudget(budget))
	}
	if anyMatch {
		opts = append(opts, cqp.WithAnyMatch())
	}
	if merge {
		opts = append(opts, cqp.WithMergedSubQueries())
	}
	return opts
}

// cacheKey builds the result-cache key: endpoint, the query's canonical
// fingerprint, profile identity at its exact version, the statistics
// generation (so Refresh invalidates), and the solver parameters.
func (s *Server) cacheKey(endpoint string, q *cqp.Query, profileID string, version uint64, extra string) string {
	return fmt.Sprintf("%s|%s|%s@%d|g%d|%s",
		endpoint, q.Fingerprint(), profileID, version, s.p.Generation(), extra)
}

// cacheHitTrace builds the trace of a warm request — a lone cache_hit span,
// no pipeline phases — and attaches it to the flight record so the debug
// endpoint serves the same tree.
func cacheHitTrace(rec *obs.Request, name string) *obs.Span {
	tr := obs.NewTrace(name)
	tr.AddChild("cache_hit", 0)
	tr.End()
	rec.SetTrace(tr)
	return tr
}

func solutionFrom(res *cqp.Result) solutionJSON {
	return solutionJSON{
		Doi:           res.Solution.Doi,
		CostMS:        res.Solution.Cost,
		SizeRows:      res.Solution.Size,
		Algorithm:     res.Solution.Stats.Algorithm,
		StatesVisited: res.Solution.Stats.StatesVisited,
		Truncated:     res.Solution.Stats.Truncated,
		DurationUS:    res.Solution.Stats.Duration.Microseconds(),
	}
}

func personalizeResponseFrom(res *cqp.Result, profileID string, version uint64) *personalizeResponse {
	return &personalizeResponse{
		SQL:            res.SQL,
		Preferences:    res.Preferences,
		PreferenceDois: res.PreferenceDois,
		Solution:       solutionFrom(res),
		SupremeCostMS:  res.Supreme,
		ProfileID:      profileID,
		ProfileVersion: version,
	}
}

// handlePersonalize serves POST /personalize: the full pipeline minus
// execution, under admission control, with a warm path that answers from
// the result cache without entering the pipeline at all.
func (s *Server) handlePersonalize(w http.ResponseWriter, r *http.Request) {
	rec := obs.RequestFromContext(r.Context())
	lp := startLaps(rec)
	var req personalizeRequest
	if err := s.decodeJSON(w, r, &req); err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	q, err := cqp.ParseQuery(s.db.Schema(), req.SQL)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	prob, err := req.Problem.build()
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	prof, version, cacheable, stale, code, err := s.resolveProfile(r, req.ProfileID, req.Profile)
	if err != nil {
		s.fail(w, code, err)
		return
	}
	rec.SetProfile(profileLabel(req.ProfileID, version))
	trace := wantTrace(r, req.Trace)
	lp.lap(obs.PhaseParse)
	key, staleKey := "", ""
	if cacheable && !req.NoCache {
		extra := fmt.Sprintf("%s|a=%s k=%d b=%d any=%v merge=%v",
			prob, req.Algorithm, req.K, req.Budget, req.AnyMatch, req.Merge)
		key = s.cacheKey("personalize", q, req.ProfileID, version, extra)
		staleKey = s.staleKey("personalize", q, req.ProfileID, extra)
		v, ok := s.cacheGet(key)
		lp.lap(obs.PhaseCache)
		if ok {
			rec.SetRole("hit")
			resp := *v.(*personalizeResponse)
			resp.Cached = true
			if trace {
				resp.Trace = cacheHitTrace(rec, "personalize").Tree()
				resp.RequestID, resp.AttributionUS = attribution(rec)
			}
			writeJSON(w, http.StatusOK, resp)
			return
		}
	}
	ctx, cancel, tr := s.requestContext(r, req.TimeoutMS, "personalize")
	defer cancel()
	build := func(prob cqp.Problem, alg string) func(context.Context) (any, error) {
		return func(ctx context.Context) (any, error) {
			res, err := s.p.PersonalizeContext(ctx, q, prof, prob,
				buildOpts(alg, req.K, req.Budget, req.AnyMatch, req.Merge)...)
			if err != nil {
				return nil, err
			}
			return personalizeResponseFrom(res, req.ProfileID, version), nil
		}
	}
	rungs := []resilience.Step{s.step("heuristic", build(prob, "D_HeurDoi"))}
	if tp, ok := tightenedProblem(prob, s.cfg.TightenFactor); ok {
		rungs = append(rungs, s.step("tight-cmax", build(tp, "D_HeurDoi")))
	}
	o, leader := s.runPipeline(ctx, "personalize", key, staleKey, build(prob, req.Algorithm), rungs...)
	if o.admitErr != nil {
		s.shedOrStale(w, rec, "personalize", staleKey, o.admitErr)
		return
	}
	if o.perr != nil {
		s.fail(w, pipelineStatus(o.perr), o.perr)
		return
	}
	if o.out == nil {
		s.fail(w, http.StatusGatewayTimeout, errDeadlineSkipped)
		return
	}
	resp := *o.out.(*personalizeResponse)
	resp.Degraded = o.degraded
	if stale && resp.Degraded == "" {
		resp.Degraded = degradedStaleReplica
	}
	rec.SetRung(resp.Degraded)
	if leader && o.degraded == "" {
		s.cachePut(key, staleKey, req.ProfileID, o.out)
	} else if o.degraded == "stale" {
		resp.Cached = true
	}
	tr.End()
	if trace {
		resp.Trace = tr.Tree()
		resp.RequestID, resp.AttributionUS = attribution(rec)
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleExecute serves POST /execute: personalize and run the personalized
// query, returning ranked rows. Results are cached like /personalize, with
// the row limit part of the key.
func (s *Server) handleExecute(w http.ResponseWriter, r *http.Request) {
	rec := obs.RequestFromContext(r.Context())
	lp := startLaps(rec)
	var req personalizeRequest
	if err := s.decodeJSON(w, r, &req); err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	q, err := cqp.ParseQuery(s.db.Schema(), req.SQL)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	prob, err := req.Problem.build()
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	prof, version, cacheable, stale, code, err := s.resolveProfile(r, req.ProfileID, req.Profile)
	if err != nil {
		s.fail(w, code, err)
		return
	}
	rec.SetProfile(profileLabel(req.ProfileID, version))
	trace := wantTrace(r, req.Trace)
	lp.lap(obs.PhaseParse)
	limit := req.Limit
	if limit <= 0 {
		limit = s.cfg.MaxRows
	}
	key, staleKey := "", ""
	if cacheable && !req.NoCache {
		extra := fmt.Sprintf("%s|a=%s k=%d b=%d any=%v merge=%v lim=%d",
			prob, req.Algorithm, req.K, req.Budget, req.AnyMatch, req.Merge, limit)
		key = s.cacheKey("execute", q, req.ProfileID, version, extra)
		staleKey = s.staleKey("execute", q, req.ProfileID, extra)
		v, ok := s.cacheGet(key)
		lp.lap(obs.PhaseCache)
		if ok {
			rec.SetRole("hit")
			resp := *v.(*executeResponse)
			resp.Cached = true
			if trace {
				resp.Trace = cacheHitTrace(rec, "execute").Tree()
				resp.RequestID, resp.AttributionUS = attribution(rec)
			}
			writeJSON(w, http.StatusOK, resp)
			return
		}
	}
	ctx, cancel, tr := s.requestContext(r, req.TimeoutMS, "execute")
	defer cancel()
	build := func(prob cqp.Problem, alg string) func(context.Context) (any, error) {
		return func(ctx context.Context) (any, error) {
			res, err := s.p.PersonalizeContext(ctx, q, prof, prob,
				buildOpts(alg, req.K, req.Budget, req.AnyMatch, req.Merge)...)
			if err != nil {
				return nil, err
			}
			rows, err := res.ExecuteContext(ctx)
			if err != nil {
				return nil, err
			}
			return executeResponseFrom(res, rows, req.ProfileID, version, limit), nil
		}
	}
	rungs := []resilience.Step{s.step("heuristic", build(prob, "D_HeurDoi"))}
	if tp, ok := tightenedProblem(prob, s.cfg.TightenFactor); ok {
		rungs = append(rungs, s.step("tight-cmax", build(tp, "D_HeurDoi")))
	}
	o, leader := s.runPipeline(ctx, "execute", key, staleKey, build(prob, req.Algorithm), rungs...)
	if o.admitErr != nil {
		s.shedOrStale(w, rec, "execute", staleKey, o.admitErr)
		return
	}
	if o.perr != nil {
		s.fail(w, pipelineStatus(o.perr), o.perr)
		return
	}
	if o.out == nil {
		s.fail(w, http.StatusGatewayTimeout, errDeadlineSkipped)
		return
	}
	resp := *o.out.(*executeResponse)
	resp.Degraded = o.degraded
	if stale && resp.Degraded == "" {
		resp.Degraded = degradedStaleReplica
	}
	rec.SetRung(resp.Degraded)
	if leader && o.degraded == "" {
		s.cachePut(key, staleKey, req.ProfileID, o.out)
	} else if o.degraded == "stale" {
		resp.Cached = true
	}
	tr.End()
	if trace {
		resp.Trace = tr.Tree()
		resp.RequestID, resp.AttributionUS = attribution(rec)
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleFront serves POST /front: the doi/cost Pareto frontier menu. Its
// degradation ladder has no heuristic rung — the frontier IS the exhaustive
// sweep — so after stale it goes straight to a tightened cmax (a smaller
// frontier is still a truthful menu, just a shorter one).
func (s *Server) handleFront(w http.ResponseWriter, r *http.Request) {
	rec := obs.RequestFromContext(r.Context())
	lp := startLaps(rec)
	var req frontRequest
	if err := s.decodeJSON(w, r, &req); err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	q, err := cqp.ParseQuery(s.db.Schema(), req.SQL)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	prof, version, cacheable, stale, code, err := s.resolveProfile(r, req.ProfileID, req.Profile)
	if err != nil {
		s.fail(w, code, err)
		return
	}
	rec.SetProfile(profileLabel(req.ProfileID, version))
	trace := wantTrace(r, req.Trace)
	lp.lap(obs.PhaseParse)
	key, staleKey := "", ""
	if cacheable && !req.NoCache {
		extra := fmt.Sprintf("c=%g s=[%g,%g] n=%d k=%d b=%d", req.CmaxMS, req.Smin, req.Smax, req.MaxPoints, req.K, req.Budget)
		key = s.cacheKey("front", q, req.ProfileID, version, extra)
		staleKey = s.staleKey("front", q, req.ProfileID, extra)
		v, ok := s.cacheGet(key)
		lp.lap(obs.PhaseCache)
		if ok {
			rec.SetRole("hit")
			resp := *v.(*frontResponse)
			resp.Cached = true
			if trace {
				resp.Trace = cacheHitTrace(rec, "front").Tree()
				resp.RequestID, resp.AttributionUS = attribution(rec)
			}
			writeJSON(w, http.StatusOK, resp)
			return
		}
	}
	ctx, cancel, tr := s.requestContext(r, req.TimeoutMS, "front")
	defer cancel()
	build := func(cmax float64) func(context.Context) (any, error) {
		return func(ctx context.Context) (any, error) {
			front, err := s.p.PersonalizeFrontContext(ctx, q, prof, cmax, req.Smin, req.Smax, req.MaxPoints, buildOpts("", req.K, req.Budget, false, false)...)
			if err != nil {
				return nil, err
			}
			fr := &frontResponse{
				Points:    make([]frontPointJSON, 0, len(front.Points)),
				Truncated: front.Truncated,
			}
			for _, fp := range front.Points {
				fr.Points = append(fr.Points, frontPointJSON{
					Preferences: fp.Preferences,
					Doi:         fp.Doi,
					CostMS:      fp.CostMS,
					SizeRows:    fp.Size,
					Knee:        fp.Knee,
				})
			}
			return fr, nil
		}
	}
	var rungs []resilience.Step
	if req.CmaxMS > 0 {
		rungs = append(rungs, s.step("tight-cmax", build(req.CmaxMS*s.cfg.TightenFactor)))
	}
	o, leader := s.runPipeline(ctx, "front", key, staleKey, build(req.CmaxMS), rungs...)
	if o.admitErr != nil {
		s.shedOrStale(w, rec, "front", staleKey, o.admitErr)
		return
	}
	if o.perr != nil {
		s.fail(w, pipelineStatus(o.perr), o.perr)
		return
	}
	if o.out == nil {
		s.fail(w, http.StatusGatewayTimeout, errDeadlineSkipped)
		return
	}
	resp := *o.out.(*frontResponse)
	resp.Degraded = o.degraded
	if stale && resp.Degraded == "" {
		resp.Degraded = degradedStaleReplica
	}
	rec.SetRung(resp.Degraded)
	if leader && o.degraded == "" {
		s.cachePut(key, staleKey, req.ProfileID, o.out)
	} else if o.degraded == "stale" {
		resp.Cached = true
	}
	tr.End()
	if trace {
		resp.Trace = tr.Tree()
		resp.RequestID, resp.AttributionUS = attribution(rec)
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleTopK serves POST /topk: the k highest-interest answers. Like
// /front, its ladder degrades by tightening cmax — fewer union branches
// execute, the answers that do come back are still genuinely top-interest.
func (s *Server) handleTopK(w http.ResponseWriter, r *http.Request) {
	rec := obs.RequestFromContext(r.Context())
	lp := startLaps(rec)
	var req topkRequest
	if err := s.decodeJSON(w, r, &req); err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	q, err := cqp.ParseQuery(s.db.Schema(), req.SQL)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	prof, version, cacheable, stale, code, err := s.resolveProfile(r, req.ProfileID, req.Profile)
	if err != nil {
		s.fail(w, code, err)
		return
	}
	rec.SetProfile(profileLabel(req.ProfileID, version))
	trace := wantTrace(r, req.Trace)
	lp.lap(obs.PhaseParse)
	if req.K <= 0 {
		req.K = 10
	}
	if req.CmaxMS <= 0 {
		req.CmaxMS = 400
	}
	key, staleKey := "", ""
	if cacheable && !req.NoCache {
		extra := fmt.Sprintf("c=%g k=%d maxk=%d", req.CmaxMS, req.K, req.MaxK)
		key = s.cacheKey("topk", q, req.ProfileID, version, extra)
		staleKey = s.staleKey("topk", q, req.ProfileID, extra)
		v, ok := s.cacheGet(key)
		lp.lap(obs.PhaseCache)
		if ok {
			rec.SetRole("hit")
			resp := *v.(*topkResponse)
			resp.Cached = true
			if trace {
				resp.Trace = cacheHitTrace(rec, "topk").Tree()
				resp.RequestID, resp.AttributionUS = attribution(rec)
			}
			writeJSON(w, http.StatusOK, resp)
			return
		}
	}
	ctx, cancel, tr := s.requestContext(r, req.TimeoutMS, "topk")
	defer cancel()
	build := func(cmax float64) func(context.Context) (any, error) {
		return func(ctx context.Context) (any, error) {
			answers, err := s.p.PersonalizeTopKContext(ctx, q, prof, cmax, req.K, buildOpts("", req.MaxK, 0, false, false)...)
			if err != nil {
				return nil, err
			}
			out := &topkResponse{Answers: make([]rowJSON, 0, len(answers))}
			for _, a := range answers {
				vals := make([]string, len(a.Row))
				for j, v := range a.Row {
					vals[j] = v.String()
				}
				out.Answers = append(out.Answers, rowJSON{Values: vals, Doi: a.Doi, Matched: a.Matched})
			}
			return out, nil
		}
	}
	rungs := []resilience.Step{s.step("tight-cmax", build(req.CmaxMS*s.cfg.TightenFactor))}
	o, leader := s.runPipeline(ctx, "topk", key, staleKey, build(req.CmaxMS), rungs...)
	if o.admitErr != nil {
		s.shedOrStale(w, rec, "topk", staleKey, o.admitErr)
		return
	}
	if o.perr != nil {
		s.fail(w, pipelineStatus(o.perr), o.perr)
		return
	}
	if o.out == nil {
		s.fail(w, http.StatusGatewayTimeout, errDeadlineSkipped)
		return
	}
	resp := *o.out.(*topkResponse)
	resp.Degraded = o.degraded
	if stale && resp.Degraded == "" {
		resp.Degraded = degradedStaleReplica
	}
	rec.SetRung(resp.Degraded)
	if leader && o.degraded == "" {
		s.cachePut(key, staleKey, req.ProfileID, o.out)
	} else if o.degraded == "stale" {
		resp.Cached = true
	}
	tr.End()
	if trace {
		resp.Trace = tr.Tree()
		resp.RequestID, resp.AttributionUS = attribution(rec)
	}
	writeJSON(w, http.StatusOK, resp)
}

// profileJSON is the single-profile response shape. StaleReplica marks an
// answer served from a follower's replicated snapshot during failover —
// correct as of the last replicated mutation, possibly behind the
// unreachable owner.
type profileJSON struct {
	ID           string    `json:"id"`
	Version      uint64    `json:"version"`
	Preferences  int       `json:"preferences"`
	Text         string    `json:"text,omitempty"`
	UpdatedAt    time.Time `json:"updated_at"`
	StaleReplica bool      `json:"stale_replica,omitempty"`
}

// handleProfilePut serves PUT /profiles/{id}: the body is the profile in
// the text format (one "doi(<condition>) = <number>" per line). A
// replacement bumps the version and eagerly invalidates dependent cache
// entries. With a durable store the mutation is in the write-ahead log
// before the 200 goes out; a failed append is a 503 and the store is
// unchanged.
func (s *Server) handleProfilePut(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	sp, err := s.store.Put(id, string(body))
	if errors.Is(err, errDurability) {
		s.fail(w, http.StatusServiceUnavailable, err)
		return
	}
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	s.cache.InvalidateProfile(id)
	writeJSON(w, http.StatusOK, profileJSON{
		ID: sp.ID, Version: sp.Version, Preferences: sp.Profile.Len(), UpdatedAt: sp.UpdatedAt,
	})
}

func (s *Server) handleProfileGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	sp, ok := s.store.Get(id)
	stale := false
	if !ok && s.cluster != nil && replicaServing(r.Context()) {
		sp, ok = s.replicaProfile(id)
		stale = ok
	}
	if !ok {
		s.fail(w, http.StatusNotFound, fmt.Errorf("server: no profile %q", id))
		return
	}
	writeJSON(w, http.StatusOK, profileJSON{
		ID: sp.ID, Version: sp.Version, Preferences: sp.Profile.Len(),
		Text: sp.Text, UpdatedAt: sp.UpdatedAt, StaleReplica: stale,
	})
}

func (s *Server) handleProfileDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	ok, err := s.store.Delete(id)
	if errors.Is(err, errDurability) {
		s.fail(w, http.StatusServiceUnavailable, err)
		return
	}
	if !ok {
		s.fail(w, http.StatusNotFound, fmt.Errorf("server: no profile %q", id))
		return
	}
	s.cache.InvalidateProfile(id)
	w.WriteHeader(http.StatusNoContent)
}

// handleProfileList serves GET /profiles. The "profiles" array is always
// sorted by id ascending (bytewise), so the listing is deterministic
// across calls, restarts, and recovery — clients may diff successive
// listings without reordering them.
func (s *Server) handleProfileList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"profiles": s.store.List()})
}

// handleRefresh serves POST /refresh: rebuild catalog statistics after a
// bulk load and purge every cached result (the statistics generation in
// the cache key makes stale entries unreachable; the purge reclaims them).
func (s *Server) handleRefresh(w http.ResponseWriter, _ *http.Request) {
	if err := s.p.Refresh(); err != nil {
		// A failed statistics scan (persistent backend read error) leaves
		// the previous statistics serving; surface the failure instead of
		// pretending the generation advanced.
		writeError(w, http.StatusInternalServerError, "refresh_failed", err.Error())
		return
	}
	s.cache.Purge()
	writeJSON(w, http.StatusOK, map[string]any{"generation": s.p.Generation()})
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	// A daemon still replaying its write-ahead log is not serving the
	// profiles it acked before the crash; report 503 until recovery
	// completes so load balancers hold traffic.
	if !s.ready.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"status": "recovering",
		})
		return
	}
	body := map[string]any{
		"status":        "ok",
		"uptime_ms":     time.Since(s.start).Milliseconds(),
		"profiles":      s.store.Len(),
		"generation":    s.p.Generation(),
		"queue_depth":   s.reg.Gauge("server_queue_depth").Value(),
		"cache_entries": s.cache.Len(),
		"breaker":       s.breaker.State().String(),
		"backend":       s.cfg.Backend,
	}
	if s.cluster != nil {
		// role + per-peer replication lag: the cluster block carries each
		// follower's queued-plus-unacked record count and reachability.
		body["role"] = "member"
		body["cluster"] = s.cluster.Status()
	} else {
		body["role"] = "standalone"
	}
	if l := s.store.WAL(); l != nil {
		st := l.Stats()
		body["wal"] = map[string]any{
			"log_bytes":              st.LogBytes,
			"records_since_snapshot": st.RecordsSinceSnapshot,
			"last_snapshot_age_ms":   time.Since(st.LastSnapshot).Milliseconds(),
			"clock":                  st.Clock,
		}
	}
	writeJSON(w, http.StatusOK, body)
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	s.reg.CollectRuntime()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	if err := s.reg.WritePrometheus(w); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
