// Package server implements cqpd, the CQP serving daemon: an HTTP/JSON
// layer over one Personalizer that holds user profiles across queries (the
// paper's per-user Preference Space, Figure 2), admits requests through a
// bounded worker pool with per-request deadlines, and caches personalization
// results keyed by (query, profile version, problem, options).
package server

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"cqp"
)

// profileShards is the number of locks the store spreads profile IDs over.
// Mutations are rare next to reads, but the daemon serves many users; 16
// shards keep unrelated users' CRUD from contending.
const profileShards = 16

// StoredProfile is one versioned profile held by the daemon.
type StoredProfile struct {
	ID string
	// Version increases on every mutation of any profile (a store-global
	// counter), so a deleted-then-recreated ID never reuses a version and
	// cache keys built from ID@Version can never alias stale entries.
	Version uint64
	// Profile is the parsed, schema-validated profile.
	Profile *cqp.Profile
	// Text is the profile source in the doi(...) = x format, as stored.
	Text      string
	UpdatedAt time.Time
}

// ProfileInfo is the listing view of a stored profile.
type ProfileInfo struct {
	ID          string    `json:"id"`
	Version     uint64    `json:"version"`
	Preferences int       `json:"preferences"`
	UpdatedAt   time.Time `json:"updated_at"`
}

// ProfileStore is a sharded, versioned in-memory profile store. All methods
// are safe for concurrent use.
type ProfileStore struct {
	schema *cqp.Schema
	clock  atomic.Uint64 // store-global version source
	shards [profileShards]profileShard
}

type profileShard struct {
	mu sync.RWMutex
	m  map[string]*StoredProfile
}

// NewProfileStore builds an empty store validating profiles against the
// schema.
func NewProfileStore(s *cqp.Schema) *ProfileStore {
	ps := &ProfileStore{schema: s}
	for i := range ps.shards {
		ps.shards[i].m = make(map[string]*StoredProfile)
	}
	return ps
}

func (ps *ProfileStore) shard(id string) *profileShard {
	h := fnv.New32a()
	h.Write([]byte(id))
	return &ps.shards[h.Sum32()%profileShards]
}

// Put parses, validates and stores the profile text under id, creating or
// replacing, and returns the stored record with its new version.
func (ps *ProfileStore) Put(id, text string) (*StoredProfile, error) {
	if id == "" {
		return nil, fmt.Errorf("server: empty profile id")
	}
	prof, err := cqp.ParseProfile(text)
	if err != nil {
		return nil, err
	}
	if err := prof.Validate(ps.schema); err != nil {
		return nil, err
	}
	sp := &StoredProfile{
		ID:        id,
		Version:   ps.clock.Add(1),
		Profile:   prof,
		Text:      text,
		UpdatedAt: time.Now(),
	}
	sh := ps.shard(id)
	sh.mu.Lock()
	sh.m[id] = sp
	sh.mu.Unlock()
	return sp, nil
}

// Get returns the stored profile, or false. The returned record is
// immutable: a later Put replaces the pointer rather than mutating it.
func (ps *ProfileStore) Get(id string) (*StoredProfile, bool) {
	sh := ps.shard(id)
	sh.mu.RLock()
	sp, ok := sh.m[id]
	sh.mu.RUnlock()
	return sp, ok
}

// Delete removes the profile, reporting whether it existed. The version
// clock still advances so caches keyed on it can never resurrect the ID.
func (ps *ProfileStore) Delete(id string) bool {
	sh := ps.shard(id)
	sh.mu.Lock()
	_, ok := sh.m[id]
	delete(sh.m, id)
	sh.mu.Unlock()
	if ok {
		ps.clock.Add(1)
	}
	return ok
}

// Len returns the number of stored profiles.
func (ps *ProfileStore) Len() int {
	n := 0
	for i := range ps.shards {
		sh := &ps.shards[i]
		sh.mu.RLock()
		n += len(sh.m)
		sh.mu.RUnlock()
	}
	return n
}

// List returns every profile's listing view, sorted by ID.
func (ps *ProfileStore) List() []ProfileInfo {
	var out []ProfileInfo
	for i := range ps.shards {
		sh := &ps.shards[i]
		sh.mu.RLock()
		for _, sp := range sh.m {
			out = append(out, ProfileInfo{
				ID:          sp.ID,
				Version:     sp.Version,
				Preferences: sp.Profile.Len(),
				UpdatedAt:   sp.UpdatedAt,
			})
		}
		sh.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
