// Package server implements cqpd, the CQP serving daemon: an HTTP/JSON
// layer over one Personalizer that holds user profiles across queries (the
// paper's per-user Preference Space, Figure 2), admits requests through a
// bounded worker pool with per-request deadlines, and caches personalization
// results keyed by (query, profile version, problem, options).
package server

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"cqp"
	"cqp/internal/wal"
)

// profileShards is the number of locks the store spreads profile IDs over.
// Mutations are rare next to reads, but the daemon serves many users; 16
// shards keep unrelated users' CRUD from contending.
const profileShards = 16

// errDurability marks a mutation rejected because its write-ahead log
// append failed: the store is unchanged, the client must not treat the
// mutation as applied, and the handler answers 503 rather than 400.
var errDurability = errors.New("server: durable log append failed")

// StoredProfile is one versioned profile held by the daemon.
type StoredProfile struct {
	ID string
	// Version increases on every mutation of any profile (a store-global
	// counter), so a deleted-then-recreated ID never reuses a version and
	// cache keys built from ID@Version can never alias stale entries. With
	// a durable store the clock is restored on recovery, so the contract
	// holds across crashes too.
	Version uint64
	// Profile is the parsed, schema-validated profile.
	Profile *cqp.Profile
	// Text is the profile source in the doi(...) = x format, as stored.
	Text      string
	UpdatedAt time.Time
}

// ProfileInfo is the listing view of a stored profile.
type ProfileInfo struct {
	ID          string    `json:"id"`
	Version     uint64    `json:"version"`
	Preferences int       `json:"preferences"`
	UpdatedAt   time.Time `json:"updated_at"`
}

// ProfileStore is a sharded, versioned profile store. All methods are safe
// for concurrent use. With a write-ahead log attached every mutation is
// appended (and, per policy, fsynced) before it becomes visible, so an
// acked mutation survives a crash; reads never touch the log.
type ProfileStore struct {
	schema *cqp.Schema
	clock  atomic.Uint64 // store-global version source
	shards [profileShards]profileShard

	// mutMu serializes mutations so the log sees records in version order
	// (recovery's replay guard and the monotone-clock contract rely on
	// it). Reads are untouched; mutations are rare and, when durable,
	// serialized by the single log file anyway.
	mutMu sync.Mutex
	log   *wal.Log // nil for a memory-only store
	// onMutate observes acked mutations on a memory-only store (the
	// durable store delegates to the log's OnAppend hook instead). Set
	// before serving; called under mutMu.
	onMutate func(wal.Record)
}

type profileShard struct {
	mu sync.RWMutex
	m  map[string]*StoredProfile
}

// NewProfileStore builds an empty memory-only store validating profiles
// against the schema.
func NewProfileStore(s *cqp.Schema) *ProfileStore {
	ps := &ProfileStore{schema: s}
	for i := range ps.shards {
		ps.shards[i].m = make(map[string]*StoredProfile)
	}
	return ps
}

// NewDurableProfileStore opens (recovering if needed) the write-ahead log
// in dir and returns a store seeded with the recovered profiles, its
// version clock restored strictly monotone over every pre-crash version.
func NewDurableProfileStore(s *cqp.Schema, dir string, opts wal.Options) (*ProfileStore, *wal.Recovery, error) {
	log, rec, err := wal.Open(dir, opts)
	if err != nil {
		return nil, nil, err
	}
	ps := NewProfileStore(s)
	ps.log = log
	for _, r := range rec.Profiles {
		prof, err := cqp.ParseProfile(r.Text)
		if err == nil {
			err = prof.Validate(s)
		}
		if err != nil {
			// Recovered bytes passed their checksums, so this is acked
			// state that no longer parses (e.g. a schema change). Refusing
			// to start beats silently dropping a user's preferences.
			log.Close()
			return nil, nil, fmt.Errorf("server: recovered profile %q invalid: %w", r.ID, err)
		}
		sh := ps.shard(r.ID)
		sh.m[r.ID] = &StoredProfile{
			ID:        r.ID,
			Version:   r.Version,
			Profile:   prof,
			Text:      r.Text,
			UpdatedAt: time.Unix(0, r.UpdatedAt),
		}
	}
	ps.clock.Store(rec.Clock)
	return ps, rec, nil
}

// WAL returns the store's write-ahead log (nil for a memory-only store).
func (ps *ProfileStore) WAL() *wal.Log { return ps.log }

// SetOnMutate registers fn to observe every acked mutation as its WAL
// record — the replication tap. A durable store delegates to the log's
// OnAppend hook, so fn fires exactly when the record has entered acked
// history; a memory-only store calls fn after the mutation is applied.
// Either way fn runs with the mutation lock held and must not call back
// into the store. Register before serving; nil unregisters.
func (ps *ProfileStore) SetOnMutate(fn func(wal.Record)) {
	if ps.log != nil {
		ps.log.OnAppend(fn)
		return
	}
	ps.mutMu.Lock()
	ps.onMutate = fn
	ps.mutMu.Unlock()
}

// Records snapshots the store as WAL records: the version clock and every
// live profile, sorted by ID. The clock is read before the shard scan, so
// any profile the scan misses (a concurrent Put) carries a version above
// the returned clock — exactly the invariant a replication full sync
// needs to treat absence at-or-below the clock as deletion.
func (ps *ProfileStore) Records() (uint64, []wal.Record) {
	clock := ps.clock.Load()
	var out []wal.Record
	for i := range ps.shards {
		sh := &ps.shards[i]
		sh.mu.RLock()
		for _, sp := range sh.m {
			out = append(out, wal.Record{
				Op:        wal.OpPut,
				ID:        sp.ID,
				Text:      sp.Text,
				Version:   sp.Version,
				UpdatedAt: sp.UpdatedAt.UnixNano(),
			})
		}
		sh.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return clock, out
}

// shard routes an ID to its lock stripe with FNV-1a inlined: hash/fnv's
// New32a allocates its hash state on every call, and this sits on the hot
// path of every profile lookup, so the loop keeps it allocation-free.
func (ps *ProfileStore) shard(id string) *profileShard {
	h := uint32(2166136261) // FNV-1a offset basis
	for i := 0; i < len(id); i++ {
		h ^= uint32(id[i])
		h *= 16777619 // FNV prime
	}
	return &ps.shards[h%profileShards]
}

// Put parses, validates and stores the profile text under id, creating or
// replacing, and returns the stored record with its new version. With a
// durable store the mutation is appended to the log before it is applied
// or acked; a failed append leaves the store unchanged and returns an
// error wrapping errDurability.
func (ps *ProfileStore) Put(id, text string) (*StoredProfile, error) {
	if id == "" {
		return nil, fmt.Errorf("server: empty profile id")
	}
	prof, err := cqp.ParseProfile(text)
	if err != nil {
		return nil, err
	}
	if err := prof.Validate(ps.schema); err != nil {
		return nil, err
	}
	ps.mutMu.Lock()
	defer ps.mutMu.Unlock()
	sp := &StoredProfile{
		ID:        id,
		Version:   ps.clock.Load() + 1,
		Profile:   prof,
		Text:      text,
		UpdatedAt: time.Now(),
	}
	if ps.log != nil {
		err := ps.log.Append(wal.Record{
			Op:        wal.OpPut,
			ID:        id,
			Text:      text,
			Version:   sp.Version,
			UpdatedAt: sp.UpdatedAt.UnixNano(),
		})
		if err != nil {
			return nil, fmt.Errorf("%w: %v", errDurability, err)
		}
	}
	ps.clock.Store(sp.Version)
	sh := ps.shard(id)
	sh.mu.Lock()
	sh.m[id] = sp
	sh.mu.Unlock()
	if ps.log == nil && ps.onMutate != nil {
		ps.onMutate(wal.Record{
			Op: wal.OpPut, ID: id, Text: text,
			Version: sp.Version, UpdatedAt: sp.UpdatedAt.UnixNano(),
		})
	}
	return sp, nil
}

// Get returns the stored profile, or false. The returned record is
// immutable: a later Put replaces the pointer rather than mutating it.
func (ps *ProfileStore) Get(id string) (*StoredProfile, bool) {
	sh := ps.shard(id)
	sh.mu.RLock()
	sp, ok := sh.m[id]
	sh.mu.RUnlock()
	return sp, ok
}

// Delete removes the profile, reporting whether it existed. The version
// clock still advances so caches keyed on it can never resurrect the ID.
// Like Put, a durable delete is logged before it is applied or acked.
func (ps *ProfileStore) Delete(id string) (bool, error) {
	ps.mutMu.Lock()
	defer ps.mutMu.Unlock()
	sh := ps.shard(id)
	sh.mu.RLock()
	_, ok := sh.m[id]
	sh.mu.RUnlock()
	if !ok {
		return false, nil
	}
	v := ps.clock.Load() + 1
	now := time.Now().UnixNano()
	if ps.log != nil {
		err := ps.log.Append(wal.Record{
			Op:        wal.OpDelete,
			ID:        id,
			Version:   v,
			UpdatedAt: now,
		})
		if err != nil {
			return false, fmt.Errorf("%w: %v", errDurability, err)
		}
	}
	ps.clock.Store(v)
	sh.mu.Lock()
	delete(sh.m, id)
	sh.mu.Unlock()
	if ps.log == nil && ps.onMutate != nil {
		ps.onMutate(wal.Record{Op: wal.OpDelete, ID: id, Version: v, UpdatedAt: now})
	}
	return true, nil
}

// ApplyRecord installs one record from another node — a handoff stream or
// a replica promotion — preserving the version its original owner acked.
// Version-guarded (a current entry at an equal-or-higher version wins), so
// redelivery and stale copies are no-ops. The store clock is raised to at
// least the record's version, keeping local version allocation strictly
// monotone over everything the store holds. Durable stores log the record
// before applying it, exactly like a local mutation.
func (ps *ProfileStore) ApplyRecord(rec wal.Record) error {
	if rec.ID == "" {
		return fmt.Errorf("server: record without id")
	}
	var prof *cqp.Profile
	if rec.Op == wal.OpPut {
		var err error
		prof, err = cqp.ParseProfile(rec.Text)
		if err == nil {
			err = prof.Validate(ps.schema)
		}
		if err != nil {
			// The original owner validated this text before acking it, so a
			// parse failure means corruption in transit — refuse it.
			return fmt.Errorf("server: handed-off profile %q invalid: %w", rec.ID, err)
		}
	}
	ps.mutMu.Lock()
	defer ps.mutMu.Unlock()
	sh := ps.shard(rec.ID)
	sh.mu.RLock()
	cur, exists := sh.m[rec.ID]
	sh.mu.RUnlock()
	if exists && cur.Version >= rec.Version {
		return nil
	}
	if rec.Op == wal.OpDelete && !exists {
		return nil
	}
	if ps.log != nil {
		if err := ps.log.Append(rec); err != nil {
			return fmt.Errorf("%w: %v", errDurability, err)
		}
	}
	if rec.Version > ps.clock.Load() {
		ps.clock.Store(rec.Version)
	}
	sh.mu.Lock()
	if rec.Op == wal.OpPut {
		sh.m[rec.ID] = &StoredProfile{
			ID:        rec.ID,
			Version:   rec.Version,
			Profile:   prof,
			Text:      rec.Text,
			UpdatedAt: time.Unix(0, rec.UpdatedAt),
		}
	} else {
		delete(sh.m, rec.ID)
	}
	sh.mu.Unlock()
	if ps.log == nil && ps.onMutate != nil {
		ps.onMutate(rec)
	}
	return nil
}

// SweepAndEvict atomically hands moved shards to their new owner at a
// membership cutover: under the mutation lock — so no Put or Delete can
// slip in between — it re-reads every record matching moved, passes the
// batch to flush, and only if flush succeeds evicts the records (logged
// as tombstones on a durable store, so the eviction survives a crash).
// On flush failure nothing is evicted: the records stay served locally,
// redundant but never lost. Returns how many records were evicted.
func (ps *ProfileStore) SweepAndEvict(moved func(id string) bool, flush func(recs []wal.Record) error) (int, error) {
	ps.mutMu.Lock()
	defer ps.mutMu.Unlock()
	var recs []wal.Record
	for i := range ps.shards {
		sh := &ps.shards[i]
		sh.mu.RLock()
		for id, sp := range sh.m {
			if moved(id) {
				recs = append(recs, wal.Record{
					Op:        wal.OpPut,
					ID:        id,
					Text:      sp.Text,
					Version:   sp.Version,
					UpdatedAt: sp.UpdatedAt.UnixNano(),
				})
			}
		}
		sh.mu.RUnlock()
	}
	if len(recs) == 0 {
		return 0, nil
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].ID < recs[j].ID })
	if err := flush(recs); err != nil {
		return 0, err
	}
	evicted := 0
	for _, rec := range recs {
		v := ps.clock.Load() + 1
		now := time.Now().UnixNano()
		if ps.log != nil {
			if err := ps.log.Append(wal.Record{Op: wal.OpDelete, ID: rec.ID, Version: v, UpdatedAt: now}); err != nil {
				// The un-evicted remainder stays local — already flushed to
				// the new owner, so redundant, never lost.
				return evicted, fmt.Errorf("%w: %v", errDurability, err)
			}
		}
		ps.clock.Store(v)
		sh := ps.shard(rec.ID)
		sh.mu.Lock()
		delete(sh.m, rec.ID)
		sh.mu.Unlock()
		if ps.log == nil && ps.onMutate != nil {
			ps.onMutate(wal.Record{Op: wal.OpDelete, ID: rec.ID, Version: v, UpdatedAt: now})
		}
		evicted++
	}
	return evicted, nil
}

// Close syncs and closes the store's log, if any (graceful shutdown).
func (ps *ProfileStore) Close() error {
	if ps.log == nil {
		return nil
	}
	return ps.log.Close()
}

// Len returns the number of stored profiles.
func (ps *ProfileStore) Len() int {
	n := 0
	for i := range ps.shards {
		sh := &ps.shards[i]
		sh.mu.RLock()
		n += len(sh.m)
		sh.mu.RUnlock()
	}
	return n
}

// List returns every profile's listing view, sorted by ID ascending — the
// deterministic order the /profiles endpoint documents and relies on.
func (ps *ProfileStore) List() []ProfileInfo {
	var out []ProfileInfo
	for i := range ps.shards {
		sh := &ps.shards[i]
		sh.mu.RLock()
		for _, sp := range sh.m {
			out = append(out, ProfileInfo{
				ID:          sp.ID,
				Version:     sp.Version,
				Preferences: sp.Profile.Len(),
				UpdatedAt:   sp.UpdatedAt,
			})
		}
		sh.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
