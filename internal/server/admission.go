package server

import (
	"context"
	"errors"
	"sync"
	"time"

	"cqp/internal/obs"
)

// ErrSaturated reports that the admission queue is full: the daemon sheds
// the request instead of queueing unbounded work (HTTP 429).
var ErrSaturated = errors.New("server: admission queue full")

// ErrShuttingDown reports that the pool no longer accepts work (HTTP 503).
var ErrShuttingDown = errors.New("server: shutting down")

// Pool is the admission-control layer: a fixed set of workers draining a
// bounded queue. Work beyond the queue's capacity is shed immediately, and
// a caller whose context expires while its task is queued gets the context
// error without the task ever running.
type Pool struct {
	mu     sync.RWMutex // guards closed against concurrent enqueue/Close
	closed bool
	queue  chan *task
	wg     sync.WaitGroup

	depth  *obs.Gauge
	busy   *obs.Gauge
	shed   *obs.Counter
	waits  *obs.Histogram
	panics *obs.Counter
}

type task struct {
	ctx  context.Context
	fn   func(context.Context)
	enq  time.Time
	done chan struct{}
	ran  bool // written by the worker before close(done)
}

// NewPool starts workers goroutines over a queue of queueDepth waiting
// slots, recording queue depth, busy workers, shed requests and queue-wait
// time into reg (nil disables recording).
func NewPool(workers, queueDepth int, reg *obs.Registry) *Pool {
	if workers < 1 {
		workers = 1
	}
	if queueDepth < 0 {
		queueDepth = 0
	}
	p := &Pool{
		queue:  make(chan *task, queueDepth),
		depth:  reg.Gauge("server_queue_depth"),
		busy:   reg.Gauge("server_workers_busy"),
		shed:   reg.Counter("server_shed_total"),
		waits:  reg.Histogram("server_queue_wait_ms", obs.DurationBucketsMS),
		panics: reg.Counter("server_pool_panics_total"),
	}
	reg.Gauge("server_workers").Set(int64(workers))
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

// Do runs fn on a pool worker, passing ctx through, and returns nil only
// when fn actually ran to completion. ErrSaturated means the queue was full
// and fn never ran; ErrShuttingDown means the pool is closed; a context
// error means either the caller stopped waiting (the task may still be
// queued — the worker will observe the dead context and skip it) or the
// worker skipped the task because its deadline expired while it was queued.
func (p *Pool) Do(ctx context.Context, fn func(context.Context)) error {
	t := &task{ctx: ctx, fn: fn, enq: time.Now(), done: make(chan struct{})}
	p.mu.RLock()
	if p.closed {
		p.mu.RUnlock()
		return ErrShuttingDown
	}
	select {
	case p.queue <- t:
		p.mu.RUnlock()
		p.depth.Set(int64(len(p.queue)))
	default:
		p.mu.RUnlock()
		p.shed.Inc()
		return ErrSaturated
	}
	select {
	case <-t.done:
		// close(t.done) happens after the worker's write of t.ran, so the
		// read is safe. When the worker skipped fn (deadline expired while
		// queued) both t.done and ctx.Done() can be ready at once; returning
		// nil here would let callers mistake the skip for success.
		if !t.ran {
			if err := ctx.Err(); err != nil {
				return err
			}
			return context.Canceled
		}
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Pressured reports whether the queue has crossed its high-water mark
// (three quarters of capacity): the degradation ladder's signal to stop
// spending full-fidelity search time and serve cheaper answers until the
// backlog drains. Always false for an unbuffered queue.
func (p *Pool) Pressured() bool {
	c := cap(p.queue)
	return c > 0 && len(p.queue) >= (3*c+3)/4
}

func (p *Pool) worker() {
	defer p.wg.Done()
	for t := range p.queue {
		p.depth.Set(int64(len(p.queue)))
		wait := time.Since(t.enq)
		p.waits.Observe(float64(wait) / float64(time.Millisecond))
		obs.RequestFromContext(t.ctx).AddPhase(obs.PhaseQueue, wait)
		if t.ctx.Err() == nil {
			p.busy.Add(1)
			p.runTask(t)
			p.busy.Add(-1)
			t.ran = true
		}
		close(t.done)
	}
}

// runTask executes one task, containing any panic so a poisoned request can
// never kill a worker (and with it the whole daemon — worker exit would
// strand the queue). Handlers wrap their own closures with recovery too;
// this is the pool's last line of defense, and a panic that reaches it
// leaves the task "ran" with whatever partial state the closure wrote.
func (p *Pool) runTask(t *task) {
	defer func() {
		if r := recover(); r != nil {
			p.panics.Inc()
		}
	}()
	t.fn(t.ctx)
}

// Close stops accepting work and blocks until queued tasks drain and all
// workers exit. Idempotent.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	close(p.queue)
	p.mu.Unlock()
	p.wg.Wait()
}
