package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"cqp"
)

// newTestServer builds a daemon over a small synthetic database and wraps
// it in an httptest server.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	db := cqp.SyntheticMovieDB(300, 1)
	s, err := New(db, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.pool.Close()
	})
	return s, ts
}

func testProfileText() string { return cqp.SyntheticProfile(40, 2).String() }

func doJSON(t *testing.T, method, url string, body any) (*http.Response, []byte) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func putProfile(t *testing.T, base, id, text string) profileJSON {
	t.Helper()
	req, err := http.NewRequest(http.MethodPut, base+"/profiles/"+id, strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("PUT profile: %d: %s", resp.StatusCode, b)
	}
	var pj profileJSON
	if err := json.NewDecoder(resp.Body).Decode(&pj); err != nil {
		t.Fatal(err)
	}
	return pj
}

const testSQL = "SELECT title FROM MOVIE"

func personalizeBody(profileID string) map[string]any {
	return map[string]any{
		"sql":        testSQL,
		"profile_id": profileID,
		"problem":    map[string]any{"number": 2, "cmax_ms": 10000},
		"trace":      true,
	}
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := doJSON(t, http.MethodGet, ts.URL+"/healthz", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}
	var h map[string]any
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatal(err)
	}
	if h["status"] != "ok" {
		t.Fatalf("healthz body: %s", body)
	}
}

func TestProfileCRUDOverHTTP(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	// Invalid text is rejected.
	req, _ := http.NewRequest(http.MethodPut, ts.URL+"/profiles/bad", strings.NewReader("doi(NOPE.x = 1) = 2"))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad profile PUT: %d, want 400", resp.StatusCode)
	}

	pj := putProfile(t, ts.URL, "alice", testProfileText())
	if pj.Version == 0 || pj.Preferences == 0 {
		t.Fatalf("stored profile: %+v", pj)
	}
	resp2, body := doJSON(t, http.MethodGet, ts.URL+"/profiles/alice", nil)
	if resp2.StatusCode != http.StatusOK || !strings.Contains(string(body), "doi(") {
		t.Fatalf("GET profile: %d %s", resp2.StatusCode, body)
	}
	resp3, body := doJSON(t, http.MethodGet, ts.URL+"/profiles", nil)
	if resp3.StatusCode != http.StatusOK || !strings.Contains(string(body), `"alice"`) {
		t.Fatalf("list profiles: %d %s", resp3.StatusCode, body)
	}
	resp4, _ := doJSON(t, http.MethodDelete, ts.URL+"/profiles/alice", nil)
	if resp4.StatusCode != http.StatusNoContent {
		t.Fatalf("DELETE: %d, want 204", resp4.StatusCode)
	}
	resp5, _ := doJSON(t, http.MethodGet, ts.URL+"/profiles/alice", nil)
	if resp5.StatusCode != http.StatusNotFound {
		t.Fatalf("GET deleted: %d, want 404", resp5.StatusCode)
	}
	// Personalizing against the deleted profile is a 404 too.
	resp6, _ := doJSON(t, http.MethodPost, ts.URL+"/personalize", personalizeBody("alice"))
	if resp6.StatusCode != http.StatusNotFound {
		t.Fatalf("personalize with deleted profile: %d, want 404", resp6.StatusCode)
	}
}

// TestPersonalizeCacheMissThenHit is the acceptance check: the second
// identical request answers from the cache — server_cache_hits increments
// and the trace carries no search span, i.e. the pipeline never ran.
func TestPersonalizeCacheMissThenHit(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	putProfile(t, ts.URL, "alice", testProfileText())

	resp, body := doJSON(t, http.MethodPost, ts.URL+"/personalize", personalizeBody("alice"))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cold personalize: %d: %s", resp.StatusCode, body)
	}
	var cold personalizeResponse
	if err := json.Unmarshal(body, &cold); err != nil {
		t.Fatal(err)
	}
	if cold.Cached {
		t.Fatal("cold request reported cached")
	}
	if !strings.Contains(cold.Trace, "search") {
		t.Fatalf("cold trace missing search span:\n%s", cold.Trace)
	}
	if cold.SQL == "" {
		t.Fatal("cold response missing SQL")
	}

	resp, body = doJSON(t, http.MethodPost, ts.URL+"/personalize", personalizeBody("alice"))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm personalize: %d: %s", resp.StatusCode, body)
	}
	var warm personalizeResponse
	if err := json.Unmarshal(body, &warm); err != nil {
		t.Fatal(err)
	}
	if !warm.Cached {
		t.Fatal("warm request not served from cache")
	}
	if strings.Contains(warm.Trace, "search") {
		t.Fatalf("warm trace ran the search stage:\n%s", warm.Trace)
	}
	if !strings.Contains(warm.Trace, "cache_hit") {
		t.Fatalf("warm trace missing cache_hit span:\n%s", warm.Trace)
	}
	if warm.SQL != cold.SQL {
		t.Fatal("cached SQL differs from cold SQL")
	}
	if h := s.Registry().Counter("server_cache_hits").Value(); h != 1 {
		t.Errorf("server_cache_hits = %d, want 1", h)
	}
}

// TestProfileVersionInvalidatesCache: replacing the profile bumps its
// version, so the same request misses and repersonalizes.
func TestProfileVersionInvalidatesCache(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	v1 := putProfile(t, ts.URL, "alice", testProfileText())
	_, body := doJSON(t, http.MethodPost, ts.URL+"/personalize", personalizeBody("alice"))
	var first personalizeResponse
	if err := json.Unmarshal(body, &first); err != nil {
		t.Fatal(err)
	}
	if first.ProfileVersion != v1.Version {
		t.Fatalf("response version %d, stored %d", first.ProfileVersion, v1.Version)
	}

	v2 := putProfile(t, ts.URL, "alice", testProfileText())
	if v2.Version <= v1.Version {
		t.Fatalf("version did not advance: %d -> %d", v1.Version, v2.Version)
	}
	if s.ResultCache().Len() != 0 {
		t.Fatalf("profile PUT left %d stale cache entries", s.ResultCache().Len())
	}
	_, body = doJSON(t, http.MethodPost, ts.URL+"/personalize", personalizeBody("alice"))
	var second personalizeResponse
	if err := json.Unmarshal(body, &second); err != nil {
		t.Fatal(err)
	}
	if second.Cached {
		t.Fatal("request after profile replacement served stale cache entry")
	}
	if second.ProfileVersion != v2.Version {
		t.Fatalf("second response version %d, want %d", second.ProfileVersion, v2.Version)
	}
}

// TestRefreshInvalidatesCache: POST /refresh bumps the statistics
// generation and purges the cache.
func TestRefreshInvalidatesCache(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	putProfile(t, ts.URL, "alice", testProfileText())
	doJSON(t, http.MethodPost, ts.URL+"/personalize", personalizeBody("alice"))
	if s.ResultCache().Len() != 1 {
		t.Fatalf("cache has %d entries, want 1", s.ResultCache().Len())
	}
	gen := s.Personalizer().Generation()
	resp, _ := doJSON(t, http.MethodPost, ts.URL+"/refresh", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("refresh: %d", resp.StatusCode)
	}
	if s.Personalizer().Generation() != gen+1 {
		t.Fatal("refresh did not advance the generation")
	}
	if s.ResultCache().Len() != 0 {
		t.Fatal("refresh did not purge the cache")
	}
	_, body := doJSON(t, http.MethodPost, ts.URL+"/personalize", personalizeBody("alice"))
	var after personalizeResponse
	if err := json.Unmarshal(body, &after); err != nil {
		t.Fatal(err)
	}
	if after.Cached {
		t.Fatal("post-refresh request served a stale entry")
	}
}

// TestInlineProfileNeverCached: inline profiles have no stable identity, so
// their results must not populate the cache.
func TestInlineProfileNeverCached(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	body := map[string]any{
		"sql":     testSQL,
		"profile": testProfileText(),
		"problem": map[string]any{"number": 2, "cmax_ms": 10000},
	}
	for i := 0; i < 2; i++ {
		resp, data := doJSON(t, http.MethodPost, ts.URL+"/personalize", body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("inline personalize: %d: %s", resp.StatusCode, data)
		}
		var pr personalizeResponse
		if err := json.Unmarshal(data, &pr); err != nil {
			t.Fatal(err)
		}
		if pr.Cached {
			t.Fatal("inline-profile request served from cache")
		}
	}
	if s.ResultCache().Len() != 0 {
		t.Fatalf("inline requests left %d cache entries", s.ResultCache().Len())
	}
}

// TestDeadlineExpiry: a request whose deadline lapses while it waits behind
// a busy worker gets 504 without ever entering the pipeline.
func TestDeadlineExpiry(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4})
	putProfile(t, ts.URL, "alice", testProfileText())
	release := blockPool(t, s.pool, 1)
	defer release()

	body := personalizeBody("alice")
	body["timeout_ms"] = 30
	resp, data := doJSON(t, http.MethodPost, ts.URL+"/personalize", body)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("expired request: %d (%s), want 504", resp.StatusCode, data)
	}
}

// TestLoadShedding: with the one worker busy and the queue full, the next
// request is shed with 429 and a Retry-After header.
func TestLoadShedding(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1})
	putProfile(t, ts.URL, "alice", testProfileText())
	release := blockPool(t, s.pool, 1)
	defer release()

	// Fill the single queue slot.
	queued := make(chan error, 1)
	go func() {
		queued <- s.pool.Do(context.Background(), func(context.Context) {})
	}()
	waitFor(t, func() bool { return s.Registry().Gauge("server_queue_depth").Value() == 1 })

	resp, data := doJSON(t, http.MethodPost, ts.URL+"/personalize", personalizeBody("alice"))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("shed request: %d (%s), want 429", resp.StatusCode, data)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	if s.Registry().Counter("server_shed_total").Value() == 0 {
		t.Error("server_shed_total did not increment")
	}
	release()
	if err := <-queued; err != nil {
		t.Fatalf("queued filler failed: %v", err)
	}
}

func TestExecuteReturnsRankedRows(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	putProfile(t, ts.URL, "alice", testProfileText())
	body := map[string]any{
		"sql":        testSQL,
		"profile_id": "alice",
		"problem":    map[string]any{"number": 2, "cmax_ms": 10000},
		"any_match":  true,
		"limit":      5,
	}
	resp, data := doJSON(t, http.MethodPost, ts.URL+"/execute", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("execute: %d: %s", resp.StatusCode, data)
	}
	var er executeResponse
	if err := json.Unmarshal(data, &er); err != nil {
		t.Fatal(err)
	}
	if er.RowCount > 5 {
		t.Fatalf("row_count %d exceeds limit 5", er.RowCount)
	}
	if er.RowCount != len(er.Rows) {
		t.Fatalf("row_count %d != len(rows) %d", er.RowCount, len(er.Rows))
	}
	if er.TotalRows < er.RowCount {
		t.Fatalf("total_rows %d < row_count %d", er.TotalRows, er.RowCount)
	}
	for i := 1; i < len(er.Rows); i++ {
		if er.Rows[i].Doi > er.Rows[i-1].Doi {
			t.Fatal("rows not ranked by decreasing doi")
		}
	}
	// Warm run hits the cache.
	_, data = doJSON(t, http.MethodPost, ts.URL+"/execute", body)
	var warm executeResponse
	if err := json.Unmarshal(data, &warm); err != nil {
		t.Fatal(err)
	}
	if !warm.Cached {
		t.Fatal("second execute not cached")
	}
	if warm.TotalRows != er.TotalRows {
		t.Fatal("cached execute differs from cold run")
	}
}

func TestFrontAndTopK(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	putProfile(t, ts.URL, "alice", testProfileText())

	resp, data := doJSON(t, http.MethodPost, ts.URL+"/front", map[string]any{
		"sql": testSQL, "profile_id": "alice", "max_points": 8,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("front: %d: %s", resp.StatusCode, data)
	}
	var fr frontResponse
	if err := json.Unmarshal(data, &fr); err != nil {
		t.Fatal(err)
	}
	if len(fr.Points) == 0 {
		t.Fatal("empty frontier")
	}
	if fr.Truncated {
		t.Fatal("unbudgeted frontier sweep reported truncation")
	}

	resp, data = doJSON(t, http.MethodPost, ts.URL+"/topk", map[string]any{
		"sql": testSQL, "profile_id": "alice", "cmax_ms": 10000, "k": 3,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("topk: %d: %s", resp.StatusCode, data)
	}
	var tk topkResponse
	if err := json.Unmarshal(data, &tk); err != nil {
		t.Fatal(err)
	}
	if len(tk.Answers) == 0 || len(tk.Answers) > 3 {
		t.Fatalf("topk returned %d answers, want 1..3", len(tk.Answers))
	}
}

// TestFrontTruncatedUnderTinyBudget pins the Pareto-sweep stats plumbing:
// a state budget too small for the exhaustive sweep must surface as
// truncated:true, so a client knows the menu it got is partial.
func TestFrontTruncatedUnderTinyBudget(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	putProfile(t, ts.URL, "alice", testProfileText())
	resp, data := doJSON(t, http.MethodPost, ts.URL+"/front", map[string]any{
		"sql": testSQL, "profile_id": "alice", "max_points": 8, "budget": 1,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("front: %d: %s", resp.StatusCode, data)
	}
	var fr frontResponse
	if err := json.Unmarshal(data, &fr); err != nil {
		t.Fatal(err)
	}
	if !fr.Truncated {
		t.Fatalf("budget=1 frontier not marked truncated: %s", data)
	}
}

func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	putProfile(t, ts.URL, "alice", testProfileText())
	cases := []map[string]any{
		{"sql": "SELECT nope FROM NOWHERE", "profile_id": "alice"}, // bad SQL
		{"sql": testSQL}, // no profile
		{"sql": testSQL, "profile_id": "alice", "profile": "doi(x) = 1"},                // both profile forms
		{"sql": testSQL, "profile_id": "alice", "problem": map[string]any{"number": 9}}, // bad problem
	}
	for i, c := range cases {
		resp, _ := doJSON(t, http.MethodPost, ts.URL+"/personalize", c)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("case %d: %d, want 400", i, resp.StatusCode)
		}
	}
}

func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	putProfile(t, ts.URL, "alice", testProfileText())
	doJSON(t, http.MethodPost, ts.URL+"/personalize", personalizeBody("alice"))
	resp, body := doJSON(t, http.MethodGet, ts.URL+"/metrics", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: %d", resp.StatusCode)
	}
	for _, want := range []string{
		"server_requests_total", "server_request_ms", "server_cache_misses",
		"personalize_total", "go_goroutines",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("metrics output missing %s", want)
		}
	}
}

// TestGracefulShutdown: a live server drains and Shutdown returns cleanly.
func TestGracefulShutdown(t *testing.T) {
	db := cqp.SyntheticMovieDB(200, 1)
	s, err := New(db, Config{})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() { errc <- s.Serve(ln) }()
	base := "http://" + ln.Addr().String()
	waitFor(t, func() bool {
		resp, err := http.Get(base + "/healthz")
		if err != nil {
			return false
		}
		resp.Body.Close()
		return resp.StatusCode == http.StatusOK
	})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := <-errc; err != nil {
		t.Fatalf("serve returned %v after shutdown", err)
	}
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Fatal("server still accepting after shutdown")
	}
	// Pool rejects new work after drain.
	if err := s.pool.Do(context.Background(), func(context.Context) {}); err != ErrShuttingDown {
		t.Fatalf("pool after shutdown: %v", err)
	}
}
