package server

import (
	"container/list"
	"sync"

	"cqp/internal/obs"
)

// Cache is the daemon's LRU result-and-estimate cache. Keys are built by
// the handlers from (endpoint, normalized query fingerprint, profile
// ID@version, statistics generation, problem, options), so a profile
// mutation or a Personalizer.Refresh changes the key and logically
// invalidates every dependent entry; InvalidateProfile and Purge reclaim
// the dead entries eagerly. Values are immutable response objects.
type Cache struct {
	mu        sync.Mutex
	max       int
	ll        *list.List // front = most recent
	items     map[string]*list.Element
	byProfile map[string]map[string]struct{} // profile id -> live keys

	// The stale index is the degradation ladder's first rung: a second
	// bounded LRU keyed WITHOUT profile version or statistics generation, so
	// the last good answer for (endpoint, query, profile, options) stays
	// reachable after the exact key has rotated away. It deliberately
	// survives InvalidateProfile and Purge — serving from it is explicitly
	// marked stale in the response, and a deleted profile 404s before any
	// lookup.
	staleLL    *list.List
	staleItems map[string]*list.Element

	hits      *obs.Counter
	misses    *obs.Counter
	evictions *obs.Counter
	entries   *obs.Gauge
	staleHits *obs.Counter
}

type cacheEntry struct {
	key       string
	profileID string
	val       any
}

// NewCache builds an LRU cache of at most max entries (max < 1 selects 1),
// recording server_cache_hits/misses/evictions and server_cache_entries
// into reg (nil disables recording).
func NewCache(max int, reg *obs.Registry) *Cache {
	if max < 1 {
		max = 1
	}
	return &Cache{
		max:        max,
		ll:         list.New(),
		items:      make(map[string]*list.Element),
		byProfile:  make(map[string]map[string]struct{}),
		staleLL:    list.New(),
		staleItems: make(map[string]*list.Element),
		hits:       reg.Counter("server_cache_hits"),
		misses:     reg.Counter("server_cache_misses"),
		evictions:  reg.Counter("server_cache_evictions_total"),
		entries:    reg.Gauge("server_cache_entries"),
		staleHits:  reg.Counter("server_cache_stale_hits"),
	}
}

// Get returns the cached value and whether it was present, refreshing the
// entry's recency and counting a hit or miss.
func (c *Cache) Get(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses.Inc()
		return nil, false
	}
	c.ll.MoveToFront(el)
	c.hits.Inc()
	return el.Value.(*cacheEntry).val, true
}

// Put stores val under key, attributed to profileID for eager
// invalidation, evicting the least-recently-used entry beyond capacity.
func (c *Cache) Put(key, profileID string, val any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*cacheEntry).val = val
		return
	}
	el := c.ll.PushFront(&cacheEntry{key: key, profileID: profileID, val: val})
	c.items[key] = el
	if profileID != "" {
		keys := c.byProfile[profileID]
		if keys == nil {
			keys = make(map[string]struct{})
			c.byProfile[profileID] = keys
		}
		keys[key] = struct{}{}
	}
	for c.ll.Len() > c.max {
		c.removeLocked(c.ll.Back())
		c.evictions.Inc()
	}
	c.entries.Set(int64(c.ll.Len()))
}

// removeLocked unlinks one element; caller holds c.mu.
func (c *Cache) removeLocked(el *list.Element) {
	if el == nil {
		return
	}
	e := el.Value.(*cacheEntry)
	c.ll.Remove(el)
	delete(c.items, e.key)
	if e.profileID != "" {
		if keys := c.byProfile[e.profileID]; keys != nil {
			delete(keys, e.key)
			if len(keys) == 0 {
				delete(c.byProfile, e.profileID)
			}
		}
	}
}

// PutStale records val as the last good answer under a version-free key
// (see the stale index comment on Cache). Bounded by the same capacity as
// the exact cache, evicting least-recently-served entries.
func (c *Cache) PutStale(staleKey string, val any) {
	if staleKey == "" {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.staleItems[staleKey]; ok {
		c.staleLL.MoveToFront(el)
		el.Value.(*cacheEntry).val = val
		return
	}
	el := c.staleLL.PushFront(&cacheEntry{key: staleKey, val: val})
	c.staleItems[staleKey] = el
	for c.staleLL.Len() > c.max {
		back := c.staleLL.Back()
		delete(c.staleItems, back.Value.(*cacheEntry).key)
		c.staleLL.Remove(back)
	}
}

// GetStale returns the last good answer recorded under the version-free key.
// Callers must mark any response served from here as degraded.
func (c *Cache) GetStale(staleKey string) (any, bool) {
	if staleKey == "" {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.staleItems[staleKey]
	if !ok {
		return nil, false
	}
	c.staleLL.MoveToFront(el)
	c.staleHits.Inc()
	return el.Value.(*cacheEntry).val, true
}

// InvalidateProfile drops every entry attributed to the profile ID,
// returning how many were removed. Version-in-key already keeps stale
// entries unreachable; this reclaims their memory on profile PUT/DELETE.
func (c *Cache) InvalidateProfile(id string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	keys := c.byProfile[id]
	n := len(keys)
	for key := range keys {
		c.removeLocked(c.items[key])
	}
	c.entries.Set(int64(c.ll.Len()))
	return n
}

// Purge drops everything — the Refresh hook.
func (c *Cache) Purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	c.items = make(map[string]*list.Element)
	c.byProfile = make(map[string]map[string]struct{})
	c.entries.Set(0)
}

// Len returns the number of live entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
