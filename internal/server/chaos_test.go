package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"testing"
	"time"

	"cqp/internal/fault"
	"cqp/internal/resilience"
)

// armPlan parses and arms a fault plan for the duration of the test. The
// armed plan is process-wide, so chaos tests must not run in parallel with
// each other (none of this package's tests call t.Parallel).
func armPlan(t *testing.T, spec string, seed int64) *fault.Plan {
	t.Helper()
	plan, err := fault.Parse(spec, seed)
	if err != nil {
		t.Fatal(err)
	}
	fault.Arm(plan)
	t.Cleanup(fault.Disarm)
	return plan
}

// degradedMarkers is the closed set a 2xx response's degraded field may
// carry; anything else is a malformed degraded response.
var degradedMarkers = map[string]bool{"": true, "stale": true, "heuristic": true, "tight-cmax": true}

// checkChaosBody asserts one chaos-run response body is well-formed: a 2xx
// parses into a response whose degraded marker is known, anything else
// parses into the error envelope with a non-empty class.
func checkChaosBody(t *testing.T, code int, body []byte) (degraded string) {
	t.Helper()
	if code >= 200 && code < 300 {
		var resp struct {
			Degraded string `json:"degraded"`
			Cached   bool   `json:"cached"`
		}
		if err := json.Unmarshal(body, &resp); err != nil {
			t.Fatalf("2xx body does not parse: %v: %s", err, body)
		}
		if !degradedMarkers[resp.Degraded] {
			t.Fatalf("unknown degraded marker %q", resp.Degraded)
		}
		if resp.Degraded == "stale" && !resp.Cached {
			t.Errorf("stale response not marked cached: %s", body)
		}
		return resp.Degraded
	}
	var env errorResponse
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatalf("%d body is not the error envelope: %v: %s", code, err, body)
	}
	if env.Error.Class == "" || env.Error.Message == "" {
		t.Fatalf("%d envelope missing class or message: %s", code, body)
	}
	return ""
}

// TestChaosStorageErrorRatio is the acceptance-criterion run: with a plan
// injecting 10% storage-scan errors, at least 95% of requests must still be
// answered 2xx — fresh, retried, or explicitly marked degraded — with zero
// unrecovered panics (a panic would fail the test process under -race).
//
// A personalized-union execution performs dozens of heap scans, so a 10%
// per-scan error rate means nearly every full execution sees at least one
// fault — this workload is exactly what the stale rung exists for. The warm
// pass populates the version-free stale index; a profile update then
// rotates the exact keys away so every chaos request must run the pipeline
// (and, when it faults, fall back to the last good answer).
func TestChaosStorageErrorRatio(t *testing.T) {
	s, ts := newTestServer(t, Config{BreakerOpenTimeout: 100 * time.Millisecond})
	putProfile(t, ts.URL, "alice", testProfileText())

	for v := 0; v < 7; v++ {
		resp, body := doJSON(t, http.MethodPost, ts.URL+"/execute", chaosBody("/execute", v, false))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("warm /execute: %d: %s", resp.StatusCode, body)
		}
	}
	for v := 0; v < 3; v++ {
		resp, body := doJSON(t, http.MethodPost, ts.URL+"/topk", chaosBody("/topk", v, false))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("warm /topk: %d: %s", resp.StatusCode, body)
		}
	}
	putProfile(t, ts.URL, "alice", testProfileText()) // rotate exact keys

	armPlan(t, "storage.scan:err:0.1", 42)

	total, ok2xx := 0, 0
	for i := 0; i < 150; i++ {
		// Alternate the storage-heavy endpoints (personalize and front never
		// scan the heap, so they would dilute the fault pressure).
		path := "/execute"
		if i%3 == 2 {
			path = "/topk"
		}
		resp, body := doJSON(t, http.MethodPost, ts.URL+path, chaosBody(path, i%7, false))
		total++
		if resp.StatusCode >= 200 && resp.StatusCode < 300 {
			ok2xx++
		}
		checkChaosBody(t, resp.StatusCode, body)
	}
	if ratio := float64(ok2xx) / float64(total); ratio < 0.95 {
		t.Errorf("2xx ratio %.3f (%d/%d) under 10%% storage errors, want >= 0.95\n%s",
			ratio, ok2xx, total, fault.Armed().Report())
	}
	if n := s.reg.Counter("server_panics_total", "endpoint", "execute").Value(); n != 0 {
		t.Errorf("%d panics escaped to the middleware", n)
	}

	// Disarm and confirm the daemon converges back to full fidelity: the
	// breaker (if it opened) closes after its half-open probes succeed and a
	// fresh pipeline request serves undegraded.
	fault.Disarm()
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, body := doJSON(t, http.MethodPost, ts.URL+"/execute", chaosBody("/execute", 1000, true))
		if resp.StatusCode == http.StatusOK && checkChaosBody(t, resp.StatusCode, body) == "" &&
			s.Breaker().State() == resilience.Closed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon did not recover full fidelity after disarm: %d breaker=%v: %s",
				resp.StatusCode, s.Breaker().State(), body)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// chaosBody builds a request body for the chaos runs; variant diversifies
// the cache key, noCache forces the pipeline.
func chaosBody(path string, variant int, noCache bool) map[string]any {
	b := map[string]any{
		"sql":        testSQL,
		"profile_id": "alice",
		"no_cache":   noCache,
	}
	switch path {
	case "/topk":
		b["cmax_ms"] = 10000
		b["k"] = 3 + variant%3
	case "/front":
		b["max_points"] = 4 + variant%4
	default:
		b["problem"] = map[string]any{"number": 2, "cmax_ms": 10000}
		b["limit"] = 5 + variant
	}
	return b
}

// TestChaosRandomizedAllEndpoints drives every pipeline endpoint
// concurrently through a multi-point randomized plan — errors, latency and
// panics at every injection site at once — and asserts only the structural
// invariants: every response is well-formed (2xx with a known degraded
// marker or the error envelope), no panic escapes the middleware uncounted,
// and the daemon still answers cleanly after the plan disarms.
func TestChaosRandomizedAllEndpoints(t *testing.T) {
	s, ts := newTestServer(t, Config{
		BreakerOpenTimeout: 100 * time.Millisecond,
		RetryAttempts:      2,
	})
	putProfile(t, ts.URL, "alice", testProfileText())

	armPlan(t, "storage.scan:err:0.1,exec.union:err:0.05,estimate.histogram:err:0.03,"+
		"search.expand:panic:0.0005,server.cache:err:0.05,exec.union:lat:0.05:5ms", 7)

	paths := []string{"/personalize", "/execute", "/front", "/topk"}
	var wg sync.WaitGroup
	var mu sync.Mutex // serializes t.* calls and the tally from workers
	counts := map[int]int{}
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				path := paths[(w+i)%len(paths)]
				resp, body := doJSON(t, http.MethodPost, ts.URL+path, chaosBody(path, i, i%2 == 0))
				mu.Lock()
				counts[resp.StatusCode]++
				checkChaosBody(t, resp.StatusCode, body)
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	t.Logf("status counts: %v\nfaults:\n%s", counts, fault.Armed().Report())

	// Panics may have been injected (search.expand) — but every one must
	// have been contained by safeRun, the pool, or the middleware, so the
	// workers are all still alive and the daemon still serves.
	fault.Disarm()
	probe := personalizeBody("alice")
	probe["no_cache"] = true // a cache hit would never probe the breaker
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, body := doJSON(t, http.MethodPost, ts.URL+"/personalize", probe)
		if resp.StatusCode == http.StatusOK && s.Breaker().State() == resilience.Closed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon did not recover after disarm: %d breaker=%v: %s",
				resp.StatusCode, s.Breaker().State(), body)
		}
		time.Sleep(20 * time.Millisecond)
	}
	// Nothing nil may have been cached: replay every endpoint cacheable —
	// a nil entry would explode the type assertion on the hit path.
	for _, path := range paths {
		for range [2]int{} {
			resp, body := doJSON(t, http.MethodPost, ts.URL+path, chaosBody(path, 1, false))
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("post-chaos %s: %d: %s", path, resp.StatusCode, body)
			}
		}
	}
}

// TestChaosBreakerOpensAndRecovers forces the executor hard-down, watches
// the breaker open and the ladder answer 503 degraded_unavailable once the
// rungs are exhausted, then disarms and watches half-open probes close the
// breaker and full-fidelity service resume.
func TestChaosBreakerOpensAndRecovers(t *testing.T) {
	s, ts := newTestServer(t, Config{
		RetryAttempts:      1,
		BreakerThreshold:   3,
		BreakerOpenTimeout: 100 * time.Millisecond,
	})
	putProfile(t, ts.URL, "alice", testProfileText())

	armPlan(t, "exec.union:err", 1)

	sawExhausted := false
	for i := 0; i < 6; i++ {
		resp, body := doJSON(t, http.MethodPost, ts.URL+"/execute", chaosBody("/execute", i, true))
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("request %d: %d, want 503: %s", i, resp.StatusCode, body)
		}
		var env errorResponse
		if err := json.Unmarshal(body, &env); err != nil {
			t.Fatal(err)
		}
		if env.Error.Class == "degraded_unavailable" {
			sawExhausted = true
		}
	}
	if !sawExhausted {
		t.Error("no response carried class degraded_unavailable")
	}
	if st := s.Breaker().State(); st != resilience.Open {
		t.Fatalf("breaker %v after hard-down burst, want open", st)
	}
	if n := s.reg.Counter("server_degraded_bypass_total",
		"endpoint", "execute", "reason", "breaker-open").Value(); n == 0 {
		t.Error("no request was counted as bypassing on an open breaker")
	}

	fault.Disarm()
	time.Sleep(150 * time.Millisecond) // let the open timeout lapse
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, body := doJSON(t, http.MethodPost, ts.URL+"/execute", chaosBody("/execute", 99, true))
		if resp.StatusCode == http.StatusOK && s.Breaker().State() == resilience.Closed {
			if d := checkChaosBody(t, resp.StatusCode, body); d != "" {
				t.Fatalf("recovered response still degraded %q", d)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("breaker never recovered: state=%v code=%d body=%s",
				s.Breaker().State(), resp.StatusCode, body)
		}
		time.Sleep(30 * time.Millisecond)
	}
}

// TestChaosStaleLadderRung pins the first rung's exact behavior: after a
// profile update rotates the exact cache key, a hard-down executor is
// answered from the version-free stale index — 200, cached, marked
// degraded:"stale" — instead of 503.
func TestChaosStaleLadderRung(t *testing.T) {
	s, ts := newTestServer(t, Config{RetryAttempts: 1})
	putProfile(t, ts.URL, "alice", testProfileText())

	body := chaosBody("/execute", 0, false)
	resp, raw := doJSON(t, http.MethodPost, ts.URL+"/execute", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("clean run: %d: %s", resp.StatusCode, raw)
	}
	var fresh executeResponse
	if err := json.Unmarshal(raw, &fresh); err != nil {
		t.Fatal(err)
	}

	// Rotate the version: the exact key dies, the stale key survives.
	putProfile(t, ts.URL, "alice", testProfileText())

	armPlan(t, "exec.union:err", 1)
	resp, raw = doJSON(t, http.MethodPost, ts.URL+"/execute", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stale rung: %d, want 200: %s", resp.StatusCode, raw)
	}
	var out executeResponse
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	if out.Degraded != "stale" || !out.Cached {
		t.Errorf("degraded=%q cached=%v, want stale/true", out.Degraded, out.Cached)
	}
	// The stale answer is the fresh answer replayed, markers aside.
	if out.RowCount != fresh.RowCount || out.TotalRows != fresh.TotalRows || out.SQL != fresh.SQL {
		t.Errorf("stale answer diverged: rows %d/%d vs %d/%d",
			out.RowCount, out.TotalRows, fresh.RowCount, fresh.TotalRows)
	}
	if n := s.cache.staleHits.Value(); n == 0 {
		t.Error("stale hit not counted")
	}
}

// TestChaosHeuristicLadderRung pins the second rung: with no stale entry
// available and the exact search's expansions poisoned, the request is
// re-answered by D-HeurDoi and marked degraded:"heuristic".
func TestChaosHeuristicLadderRung(t *testing.T) {
	_, ts := newTestServer(t, Config{RetryAttempts: 1})
	putProfile(t, ts.URL, "alice", testProfileText())

	// The exact (default C_MaxBounds) search expands states through
	// overBudget; a 100%-probability fault kills every attempt at it. The
	// heuristic rung runs D-HeurDoi... which expands states too, so it would
	// die as well — cap the injections so the burst drains mid-ladder.
	// RetryAttempts=1 and one state expansion per request phase make the
	// first rung attempt land after the cap most of the time; rather than
	// guess scheduling, probe until the heuristic marker shows up.
	armPlan(t, "search.expand:err:x2", 3)
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, raw := doJSON(t, http.MethodPost, ts.URL+"/personalize", map[string]any{
			"sql": testSQL, "profile_id": "alice", "no_cache": true,
			"problem": map[string]any{"number": 2, "cmax_ms": 10000},
		})
		if resp.StatusCode == http.StatusOK {
			var out personalizeResponse
			if err := json.Unmarshal(raw, &out); err != nil {
				t.Fatal(err)
			}
			if out.Degraded == "heuristic" {
				if out.Solution.Algorithm != "D-HEURDOI" {
					t.Errorf("heuristic rung solved with %q", out.Solution.Algorithm)
				}
				return
			}
			if fault.Armed().Drained() {
				// The whole burst was absorbed by retries before the ladder —
				// legal, but not the path under test; re-arm and try again.
				armPlan(t, "search.expand:err:x2", 3)
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("never observed a heuristic-rung response")
		}
	}
}

// TestChaosPanicContainment injects panics at the two layers with different
// recovery paths: the result cache (handler goroutine — middleware recovery,
// a counted 500) and the search (pool goroutine — safeRun converts it to a
// retryable error, the request still succeeds).
func TestChaosPanicContainment(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	putProfile(t, ts.URL, "alice", testProfileText())

	// Handler-goroutine panic: first cacheable request trips it.
	armPlan(t, "server.cache:panic:x1", 5)
	resp, raw := doJSON(t, http.MethodPost, ts.URL+"/personalize", personalizeBody("alice"))
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("cache panic: %d, want 500: %s", resp.StatusCode, raw)
	}
	var env errorResponse
	if err := json.Unmarshal(raw, &env); err != nil || env.Error.Class != "internal" {
		t.Fatalf("cache panic envelope: %v %s", err, raw)
	}
	if n := s.reg.Counter("server_panics_total", "endpoint", "personalize").Value(); n != 1 {
		t.Errorf("server_panics_total = %d, want 1", n)
	}

	// Pipeline-goroutine panic: safeRun turns it into a retry, the retry
	// succeeds once the x1 cap drains, and the answer is full fidelity.
	armPlan(t, "search.expand:panic:x1", 6)
	resp, raw = doJSON(t, http.MethodPost, ts.URL+"/personalize", personalizeBody("alice"))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("search panic: %d, want 200 after retry: %s", resp.StatusCode, raw)
	}
	if d := checkChaosBody(t, resp.StatusCode, raw); d != "" && d != "heuristic" && d != "tight-cmax" {
		t.Errorf("unexpected degraded marker %q", d)
	}

	// Either way the daemon is intact: workers alive, clean request clean.
	fault.Disarm()
	resp, raw = doJSON(t, http.MethodPost, ts.URL+"/personalize", personalizeBody("alice"))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-panic request: %d: %s", resp.StatusCode, raw)
	}
	if got := fmt.Sprint(s.Breaker().State()); got != "closed" {
		t.Errorf("breaker %s after contained panics", got)
	}
}
