package server

import (
	"testing"

	"cqp/internal/obs"
)

func TestCacheHitMissCounters(t *testing.T) {
	reg := obs.NewRegistry()
	c := NewCache(4, reg)
	if _, ok := c.Get("a"); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put("a", "u1", 1)
	if v, ok := c.Get("a"); !ok || v.(int) != 1 {
		t.Fatalf("Get = %v, %v", v, ok)
	}
	if h := reg.Counter("server_cache_hits").Value(); h != 1 {
		t.Errorf("hits = %d, want 1", h)
	}
	if m := reg.Counter("server_cache_misses").Value(); m != 1 {
		t.Errorf("misses = %d, want 1", m)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	reg := obs.NewRegistry()
	c := NewCache(2, reg)
	c.Put("a", "u1", 1)
	c.Put("b", "u1", 2)
	c.Get("a") // refresh a; b is now the LRU victim
	c.Put("c", "u2", 3)
	if _, ok := c.Get("b"); ok {
		t.Error("LRU victim b survived")
	}
	if _, ok := c.Get("a"); !ok {
		t.Error("recently-used a evicted")
	}
	if _, ok := c.Get("c"); !ok {
		t.Error("new entry c missing")
	}
	if ev := reg.Counter("server_cache_evictions_total").Value(); ev != 1 {
		t.Errorf("evictions = %d, want 1", ev)
	}
	if g := reg.Gauge("server_cache_entries").Value(); g != 2 {
		t.Errorf("entries gauge = %d, want 2", g)
	}
}

func TestCacheInvalidateProfile(t *testing.T) {
	c := NewCache(10, nil)
	c.Put("k1", "u1", 1)
	c.Put("k2", "u1", 2)
	c.Put("k3", "u2", 3)
	if n := c.InvalidateProfile("u1"); n != 2 {
		t.Fatalf("invalidated %d entries, want 2", n)
	}
	if _, ok := c.Get("k1"); ok {
		t.Error("u1 entry survived invalidation")
	}
	if _, ok := c.Get("k3"); !ok {
		t.Error("u2 entry lost to u1's invalidation")
	}
	if n := c.InvalidateProfile("u1"); n != 0 {
		t.Errorf("second invalidation removed %d", n)
	}
}

func TestCachePurge(t *testing.T) {
	c := NewCache(10, nil)
	c.Put("k1", "u1", 1)
	c.Put("k2", "", 2) // unattributed (inline-profile style) entry
	c.Purge()
	if c.Len() != 0 {
		t.Fatalf("Len = %d after purge", c.Len())
	}
	if _, ok := c.Get("k1"); ok {
		t.Error("entry survived purge")
	}
	// The cache still works after a purge.
	c.Put("k1", "u1", 9)
	if v, ok := c.Get("k1"); !ok || v.(int) != 9 {
		t.Error("cache broken after purge")
	}
}

func TestCacheUpdateExisting(t *testing.T) {
	c := NewCache(2, nil)
	c.Put("a", "u1", 1)
	c.Put("a", "u1", 2)
	if c.Len() != 1 {
		t.Fatalf("duplicate key grew the cache to %d", c.Len())
	}
	if v, _ := c.Get("a"); v.(int) != 2 {
		t.Errorf("value not replaced: %v", v)
	}
}
