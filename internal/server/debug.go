package server

import (
	"fmt"
	"net/http"
	"strconv"
	"time"

	"cqp/internal/obs"
)

// handleDebugRequests serves GET /debug/requests: the flight recorder's
// retained records (the recent ring plus the tail-sampled slowest and
// errored/degraded sets), newest first. Filterable with ?endpoint=,
// ?status= (exact code), ?min_ms= (at least this slow) and ?limit=.
func (s *Server) handleDebugRequests(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	filter := obs.Filter{Endpoint: q.Get("endpoint")}
	if v := q.Get("status"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad_request", "server: status must be an integer")
			return
		}
		filter.Status = n
	}
	if v := q.Get("min_ms"); v != "" {
		ms, err := strconv.ParseFloat(v, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad_request", "server: min_ms must be a number")
			return
		}
		filter.MinTotal = time.Duration(ms * float64(time.Millisecond))
	}
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad_request", "server: limit must be an integer")
			return
		}
		filter.Limit = n
	}
	reqs := s.flight.Snapshot(filter)
	writeJSON(w, http.StatusOK, map[string]any{
		"total_recorded": s.flight.Count(),
		"returned":       len(reqs),
		"requests":       reqs,
	})
}

// handleDebugRequest serves GET /debug/requests/{id}: one retained record
// in full — outcome, per-phase attribution, and the span tree (both as a
// JSON tree and the same text rendering a ?trace=1 response carried, since
// both views come from the very same trace).
func (s *Server) handleDebugRequest(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	snap, span, ok := s.flight.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "not_found",
			fmt.Sprintf("server: no retained request %q (evicted or never seen)", id))
		return
	}
	body := map[string]any{"request": snap}
	if span != nil {
		body["spans"] = span.JSON()
		body["tree"] = span.Tree()
	}
	writeJSON(w, http.StatusOK, body)
}

// handleSLO serves GET /slo: per-endpoint rolling-window service-level
// indicators — latency quantiles, error and degraded rates, cache and
// coalesce hit ratios.
func (s *Server) handleSLO(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"window_ms": s.slo.Window().Milliseconds(),
		"endpoints": s.slo.Report(),
	})
}
