package server

import (
	"context"
	"expvar"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"cqp"
	"cqp/internal/cluster"
	"cqp/internal/obs"
	"cqp/internal/resilience"
	"cqp/internal/wal"
)

// Config sizes the daemon's admission control and cache. The zero value
// selects defaults suited to one laptop-scale database.
type Config struct {
	// Workers is the number of concurrent pipeline executions (default
	// GOMAXPROCS).
	Workers int
	// QueueDepth is how many admitted requests may wait for a worker before
	// the daemon sheds load with 429 (default 64).
	QueueDepth int
	// CacheEntries bounds the LRU result cache (default 1024).
	CacheEntries int
	// DefaultTimeout is the per-request deadline when the request names
	// none (default 30s); MaxTimeout caps what a request may ask for
	// (default 2m).
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// MaxRows caps rows returned by /execute when the request names no
	// limit (default 100).
	MaxRows int
	// MaxBodyBytes bounds request bodies; oversized bodies get 413
	// (default 1 MiB).
	MaxBodyBytes int64

	// RetryAttempts is the number of tries (including the first) the
	// serving path gives a transiently failing pipeline run (default 3;
	// 1 disables retrying).
	RetryAttempts int
	// BreakerThreshold is the consecutive-transient-failure count that
	// opens the pipeline circuit breaker (default 5); BreakerOpenTimeout is
	// how long it stays open before half-open probes (default 5s).
	BreakerThreshold   int
	BreakerOpenTimeout time.Duration
	// TightenFactor is the cmax multiplier the degradation ladder's third
	// rung applies — a cheaper, lower-quality search under the paper's own
	// knob (a smaller feasible region is faster to search). In (0,1),
	// default 0.5.
	TightenFactor float64

	// NoCoalesce disables singleflight coalescing of concurrent identical
	// pipeline requests. The zero value (coalescing on) is the right
	// default; the knob exists for A/B benchmarking and incident bisection.
	NoCoalesce bool
	// NoEstimateMemo disables the cross-request per-preference estimate
	// memo; NoScanShare disables shared-scan batch execution. Like
	// NoCoalesce, the zero values (both layers on) are the right defaults —
	// the knobs exist for A/B benchmarking (cqpbench -batchbench measures
	// exactly this off/on difference) and incident bisection.
	NoEstimateMemo bool
	NoScanShare    bool

	// Logger receives the per-request structured log lines (one per
	// finished request, plus slow-query lines). Nil disables request
	// logging entirely — metrics, the flight recorder and /slo still run —
	// which is the disarmed path benchmarks measure.
	Logger *slog.Logger
	// SlowLog, when positive, additionally logs the full per-phase latency
	// attribution of every request at least this slow. Zero disables the
	// slow-query log.
	SlowLog time.Duration
	// FlightRecords sizes the flight recorder's ring of recent requests
	// (default 256; negative disables retention).
	FlightRecords int
	// BatchMaxItems caps the items one POST /personalize/batch may carry
	// (default 64).
	BatchMaxItems int

	// DataDir, when set, makes the profile store durable: every mutation
	// is appended to a write-ahead log under this directory before it is
	// acked, and startup replays snapshot+log. Empty keeps the PR-2
	// memory-only store.
	DataDir string
	// FsyncPolicy is when log appends reach stable storage: "always"
	// (default — fsync before ack), "interval" (background ticker), or
	// "never" (OS page cache).
	FsyncPolicy string
	// FsyncInterval is the "interval" policy's ticker period (default
	// 100ms).
	FsyncInterval time.Duration
	// SnapshotEvery is how many logged mutations trigger a snapshot and
	// log truncation (default 1024; negative disables automatic
	// snapshots).
	SnapshotEvery int

	// SpillBytes bounds each request's in-memory executor working state
	// (join build sides, DISTINCT sets, union group tables); past it the
	// executor spills to partitioned temp files under SpillDir and merges.
	// Zero keeps everything in memory.
	SpillBytes int64
	// SpillDir is where spill partitions live (default: the OS temp dir).
	// Files are unlinked at creation, so a crash leaks nothing.
	SpillDir string

	// NodeID names this daemon in a multi-node cluster; empty runs
	// standalone. When set it must appear in ClusterPeers.
	NodeID string
	// ClusterPeers is the static peer list: node ID → base URL, including
	// this node's own entry. Every node must be given the identical list.
	ClusterPeers map[string]string
	// Replicate enables WAL-frame shipping to followers; without it the
	// cluster routes requests but reads cannot fail over.
	Replicate bool
	// Replicas is the replication factor R: owner plus R−1 followers per
	// profile (default 2). Must match across the cluster at boot; joiners
	// adopt the cluster's value.
	Replicas int
	// PeerStrikes is how many consecutive probe/proxy failures open a
	// peer's breaker (default 1 — instant failover).
	PeerStrikes int
	// ProbeInterval is the peer health-probe period (default 500ms) — the
	// failover detection bound.
	ProbeInterval time.Duration
	// HandoffRate bounds membership-change shard streaming in records per
	// second (default 20000).
	HandoffRate int
	// AntiEntropy is the period of the background replica digest-diff
	// repair loop (default 5s; negative disables).
	AntiEntropy time.Duration
	// VNodes is the consistent-hash virtual nodes per peer (default 64).
	VNodes int
	// CatchUpAttempts bounds per-peer catch-up pulls before a rejoining
	// node gives up waiting and advertises ready anyway (default 15, at
	// 200ms spacing).
	CatchUpAttempts int
	// Backend names the database backend for /healthz ("mem" when empty).
	Backend string
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 1024
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 2 * time.Minute
	}
	if c.MaxRows <= 0 {
		c.MaxRows = 100
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.RetryAttempts <= 0 {
		c.RetryAttempts = 3
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 5
	}
	if c.BreakerOpenTimeout <= 0 {
		c.BreakerOpenTimeout = 5 * time.Second
	}
	if c.TightenFactor <= 0 || c.TightenFactor >= 1 {
		c.TightenFactor = 0.5
	}
	if c.BatchMaxItems <= 0 {
		c.BatchMaxItems = 64
	}
	if c.FlightRecords == 0 {
		c.FlightRecords = 256
	}
	if c.CatchUpAttempts <= 0 {
		c.CatchUpAttempts = 15
	}
	if c.Backend == "" {
		c.Backend = "mem"
	}
	return c
}

// Server is the cqpd daemon: one Personalizer behind a profile store, an
// admission pool, a result cache, and the HTTP/JSON surface.
type Server struct {
	cfg      Config
	db       *cqp.DB
	p        *cqp.Personalizer
	reg      *obs.Registry
	store    *ProfileStore
	cache    *Cache
	pool     *Pool
	flights  *flightTable
	flight   *obs.Flight
	slo      *obs.SLO
	log      *slog.Logger
	breaker  *resilience.Breaker
	mux      *http.ServeMux
	start    time.Time
	recovery *wal.Recovery
	cluster  *cluster.Node // nil when standalone
	// ready flips once recovery (replaying the durable store's
	// snapshot+log) has completed; until then /healthz answers 503 so a
	// load balancer never routes to a daemon still rebuilding profiles.
	ready atomic.Bool

	mu   sync.Mutex
	http *http.Server
}

// New wires a daemon over the database: it builds the Personalizer,
// attaches a fresh metrics registry to the whole pipeline, recovers the
// durable profile store when cfg.DataDir is set, and mounts every
// endpoint. The caller owns serving (Serve/ListenAndServe) and teardown
// (Shutdown). New fails when recovery finds mid-log or snapshot
// corruption — a daemon that cannot prove its acked state refuses to
// serve.
func New(db *cqp.DB, cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	reg := cqp.NewMetrics()
	p, err := cqp.NewPersonalizerWith(db)
	if err != nil {
		return nil, err
	}
	p.Observe(reg)
	if cfg.NoEstimateMemo {
		p.SetEstimateMemo(false)
	}
	s := &Server{
		cfg:     cfg,
		db:      db,
		p:       p,
		reg:     reg,
		cache:   NewCache(cfg.CacheEntries, reg),
		pool:    NewPool(cfg.Workers, cfg.QueueDepth, reg),
		flights: newFlightTable(),
		flight:  obs.NewFlight(cfg.FlightRecords),
		slo:     obs.NewSLO(0, 0, nil),
		log:     cfg.Logger,
		mux:     http.NewServeMux(),
		start:   time.Now(),
	}
	if cfg.DataDir != "" {
		policy, err := wal.ParseSyncPolicy(cfg.FsyncPolicy)
		if err != nil {
			return nil, err
		}
		store, rec, err := NewDurableProfileStore(db.Schema(), cfg.DataDir, wal.Options{
			Sync:          policy,
			SyncEvery:     cfg.FsyncInterval,
			SnapshotEvery: cfg.SnapshotEvery,
			Metrics:       reg,
		})
		if err != nil {
			return nil, err
		}
		s.store, s.recovery = store, rec
	} else {
		s.store = NewProfileStore(db.Schema())
	}
	s.breaker = resilience.NewBreaker(resilience.BreakerConfig{
		FailureThreshold: cfg.BreakerThreshold,
		OpenTimeout:      cfg.BreakerOpenTimeout,
		OnTransition: func(from, to resilience.BreakerState) {
			reg.Gauge("server_breaker_state").Set(int64(to))
			reg.Counter("server_breaker_transitions_total",
				"from", from.String(), "to", to.String()).Inc()
		},
	})
	if cfg.NodeID != "" {
		node, err := cluster.New(cluster.Config{
			Self:          cfg.NodeID,
			Peers:         cfg.ClusterPeers,
			VNodes:        cfg.VNodes,
			Replicas:      cfg.Replicas,
			PeerStrikes:   cfg.PeerStrikes,
			ProbeInterval: cfg.ProbeInterval,
			Replicate:     cfg.Replicate,
			HandoffRate:   cfg.HandoffRate,
			AntiEntropy:   cfg.AntiEntropy,
			SyncSource:    s.syncRecords,
			OwnedRecords:  s.store.Records,
			ApplyRecord:   s.store.ApplyRecord,
			SweepAndEvict: s.store.SweepAndEvict,
			Metrics:       reg,
		})
		if err != nil {
			s.store.Close()
			return nil, err
		}
		s.cluster = node
		if cfg.Replicate {
			s.store.SetOnMutate(node.Replicate)
		}
		node.Start()
	}
	s.routes()
	if s.cluster != nil && s.cluster.Replicating() && len(cfg.ClusterPeers) > 1 {
		// A (re)joining node catch-up syncs the shards it follows before
		// advertising ready: peers' pings answer 503 until the replica is
		// rebuilt, so nobody fails over onto an empty replica. Attempts are
		// bounded — on a cold-start cluster every node is catching up from
		// every other, and waiting forever would deadlock the fleet.
		go func() {
			ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
			defer cancel()
			if err := s.cluster.CatchUp(ctx, s.cfg.CatchUpAttempts); err != nil && s.log != nil {
				s.log.Warn("cluster catch-up incomplete", "error", err)
			}
			s.ready.Store(true)
		}()
	} else {
		s.ready.Store(true)
	}
	return s, nil
}

// Cluster returns the daemon's cluster node (nil when standalone).
func (s *Server) Cluster() *cluster.Node { return s.cluster }

// Recovery reports what the durable store replayed at startup (nil for a
// memory-only daemon).
func (s *Server) Recovery() *wal.Recovery { return s.recovery }

// Breaker returns the daemon's pipeline circuit breaker (test hook).
func (s *Server) Breaker() *resilience.Breaker { return s.breaker }

// Personalizer returns the daemon's pipeline (test and embedding hook).
func (s *Server) Personalizer() *cqp.Personalizer { return s.p }

// Registry returns the daemon's metrics registry.
func (s *Server) Registry() *obs.Registry { return s.reg }

// Profiles returns the daemon's profile store.
func (s *Server) Profiles() *ProfileStore { return s.store }

// ResultCache returns the daemon's LRU result cache.
func (s *Server) ResultCache() *Cache { return s.cache }

// FlightRecorder returns the daemon's request flight recorder.
func (s *Server) FlightRecorder() *obs.Flight { return s.flight }

// SLO returns the daemon's rolling SLO tracker.
func (s *Server) SLO() *obs.SLO { return s.slo }

// routes mounts every endpoint on the daemon's mux.
func (s *Server) routes() {
	// Pipeline endpoints run through admission control; in cluster mode the
	// routing wrapper proxies them to the profile's owner first.
	s.mux.HandleFunc("POST /personalize", s.instrument("personalize", s.routeByBody(s.handlePersonalize)))
	s.mux.HandleFunc("POST /personalize/batch", s.instrument("batch", s.routeByBody(s.handleBatch)))
	s.mux.HandleFunc("POST /execute", s.instrument("execute", s.routeByBody(s.handleExecute)))
	s.mux.HandleFunc("POST /front", s.instrument("front", s.routeByBody(s.handleFront)))
	s.mux.HandleFunc("POST /topk", s.instrument("topk", s.routeByBody(s.handleTopK)))

	// Profile CRUD and admin bypass the pool: they are O(profile) work.
	s.mux.HandleFunc("PUT /profiles/{id}", s.instrument("profile_put", s.routeByPath(true, s.handleProfilePut)))
	s.mux.HandleFunc("GET /profiles/{id}", s.instrument("profile_get", s.routeByPath(false, s.handleProfileGet)))
	s.mux.HandleFunc("DELETE /profiles/{id}", s.instrument("profile_delete", s.routeByPath(true, s.handleProfileDelete)))
	s.mux.HandleFunc("GET /profiles", s.instrument("profile_list", s.handleProfileList))
	s.mux.HandleFunc("POST /refresh", s.instrument("refresh", s.handleRefresh))

	// Cluster-internal endpoints: no instrument wrapper — probes fire every
	// interval from every peer and would drown the flight recorder.
	if s.cluster != nil {
		s.mux.HandleFunc("GET "+cluster.PathPing, s.handleClusterPing)
		s.mux.HandleFunc("POST "+cluster.PathReplicate, s.handleClusterReplicate)
		s.mux.HandleFunc("GET "+cluster.PathSync, s.handleClusterSync)
		s.mux.HandleFunc("GET /cluster/route/{id}", s.handleClusterRoute)
		s.mux.HandleFunc("GET /cluster/state", s.handleClusterState)
		// Membership: ring transitions (peer-to-peer), handoff streaming,
		// and the join/leave admin surface.
		s.mux.HandleFunc("POST "+cluster.PathRing, s.handleClusterRing)
		s.mux.HandleFunc("POST "+cluster.PathHandoff, s.handleClusterHandoff)
		s.mux.HandleFunc("POST "+cluster.PathHandoffApply, s.handleClusterHandoffApply)
		s.mux.HandleFunc("POST "+cluster.PathJoin, s.handleClusterJoin)
		s.mux.HandleFunc("POST "+cluster.PathLeave, s.handleClusterLeave)
	}

	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /slo", s.handleSLO)
	s.mux.HandleFunc("GET /debug/requests", s.handleDebugRequests)
	s.mux.HandleFunc("GET /debug/requests/{id}", s.handleDebugRequest)
	s.reg.PublishExpvar("cqp")
	s.mux.Handle("GET /debug/vars", expvar.Handler())
	s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
}

// Handler returns the daemon's HTTP handler (httptest hook).
func (s *Server) Handler() http.Handler { return s.mux }

// newHTTPServer builds the hardened http.Server every serving path uses:
// header-read and idle timeouts so a slow or silent client cannot pin a
// connection open forever.
func (s *Server) newHTTPServer() *http.Server {
	return &http.Server{
		Handler:           s.mux,
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
}

// Serve serves on the listener until Shutdown.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.http != nil {
		s.mu.Unlock()
		return fmt.Errorf("server: already serving")
	}
	srv := s.newHTTPServer()
	s.http = srv
	s.mu.Unlock()
	err := srv.Serve(ln)
	if err == http.ErrServerClosed {
		return nil
	}
	return err
}

// ListenAndServe listens on addr and serves until Shutdown.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Shutdown drains gracefully: stop accepting connections, wait for in-
// flight handlers up to ctx's deadline, stop the admission pool once no
// handler can enqueue more work, then sync and close the durable store's
// log — strictly last, so no acked mutation can race a closing log.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	srv := s.http
	s.mu.Unlock()
	var err error
	if srv != nil {
		err = srv.Shutdown(ctx)
	}
	if s.cluster != nil {
		s.cluster.Close()
	}
	s.pool.Close()
	if cerr := s.store.Close(); err == nil {
		err = cerr
	}
	return err
}
