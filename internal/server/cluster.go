package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"cqp"
	"cqp/internal/cluster"
	"cqp/internal/wal"
)

// Multi-node request routing. Any node accepts any request: work for a
// profile another node owns is proxied to that owner over the cluster's
// keep-alive HTTP client, with one forwarding hop at most (the forwarded
// header is the loop guard — a forwarded request is always served
// locally). When the owner is unreachable, reads and pipeline requests
// fail over along the profile's follower list to a replicated snapshot,
// marked "stale_replica" in the response envelope on the degradation-
// ladder plumbing; mutations do not fail over — accepting a write the
// owner's WAL cannot ack would forfeit the zero-acked-loss guarantee —
// and answer 503 until the owner returns.
//
// Every proxied request carries the sender's ring epoch. A receiver
// rejects a sender routing on an OLDER ring with 409 wrong_epoch (and its
// own epoch in the X-Cqpd-Epoch header): a stale ring must never silently
// misroute. The sender then refetches /cluster/state, adopts the newer
// ring, and re-routes — so the client sees one slightly slower answer,
// not an error. A sender AHEAD of the receiver is served normally: during
// a membership commit wave nodes flip epochs one by one, and the
// not-yet-committed old owner still holds every moved record until its
// eviction sweep — serving there is the double-serve that keeps the
// transition invisible to clients.

const (
	// headerForwarded carries the proxying node's ID on a forwarded
	// request; its presence means "serve locally, do not re-route".
	headerForwarded = "X-Cqpd-Forwarded"
	// headerReplica marks a forwarded request that should be answered from
	// the replica store — the proxying node decided the owner is down and
	// picked a follower.
	headerReplica = "X-Cqpd-Replica"
	// degradedStaleReplica is the envelope marker for answers computed
	// from a follower's replica instead of the owner's live store.
	degradedStaleReplica = "stale_replica"
	// clusterSyncMaxBytes bounds a replication or sync body — far above
	// any real batch, it only stops a runaway peer from ballooning memory.
	clusterSyncMaxBytes = 64 << 20
	// routeRetries bounds wrong_epoch re-route attempts per request.
	routeRetries = 3
)

// replicaServeKey marks a request context as replica-serving: profile
// resolution may fall back to the follower's replicated snapshot.
type replicaServeKey struct{}

func withReplicaServe(ctx context.Context) context.Context {
	return context.WithValue(ctx, replicaServeKey{}, true)
}

func replicaServing(ctx context.Context) bool {
	v, _ := ctx.Value(replicaServeKey{}).(bool)
	return v
}

// routeByPath routes a /profiles/{id} request by its path ID. Mutations
// must run on the owner; reads may fail over.
func (s *Server) routeByPath(mutation bool, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.routeRequest(w, r, mutation, r.PathValue("id"), h)
	}
}

// routePeek is the routing view of a pipeline request body: the top-level
// profile_id, or (for /personalize/batch) the first item's. A batch is
// routed as one request by its first stored-profile item — the endpoint's
// shape is one user's list page, so items overwhelmingly share one owner;
// a mixed-owner batch resolves its foreign items against the serving
// node's local store and they fail item-wise, so callers wanting
// cross-owner batches should split them per user.
type routePeek struct {
	ProfileID string `json:"profile_id"`
	Items     []struct {
		ProfileID string `json:"profile_id"`
	} `json:"items"`
}

// routeByBody routes a pipeline request by the profile_id inside its JSON
// body. The body is buffered (bounded) and restored, so the local handler
// or the proxy reads it unchanged; malformed JSON routes locally and gets
// the handler's own 400.
func (s *Server) routeByBody(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.cluster == nil {
			h(w, r)
			return
		}
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
		if err != nil {
			s.fail(w, http.StatusBadRequest, err)
			return
		}
		r.Body = io.NopCloser(bytes.NewReader(body))
		var peek routePeek
		_ = json.Unmarshal(body, &peek)
		id := peek.ProfileID
		for _, it := range peek.Items {
			if id != "" {
				break
			}
			id = it.ProfileID
		}
		s.routeRequest(w, r, false, id, h)
	}
}

// writeWrongEpoch rejects traffic routed on a stale ring: 409 with this
// node's epoch in the header, so the sender can tell it must refetch.
func (s *Server) writeWrongEpoch(w http.ResponseWriter, path string) {
	epoch := s.cluster.Epoch()
	w.Header().Set(cluster.HeaderEpoch, strconv.FormatUint(epoch, 10))
	s.reg.Counter("cluster_wrong_epoch_total", "path", path).Inc()
	writeError(w, http.StatusConflict, "wrong_epoch",
		fmt.Sprintf("server: this node is at ring epoch %d; refetch /cluster/state", epoch))
}

// routeRequest is the routing decision for one request touching profile
// id: local when this node owns it (or no cluster, or no id, or the
// request was already forwarded), proxy to the owner otherwise — re-
// routing on a fresh ring after a wrong_epoch rejection — and failover
// along the follower list when the owner is unreachable.
func (s *Server) routeRequest(w http.ResponseWriter, r *http.Request, mutation bool, id string, h http.HandlerFunc) {
	c := s.cluster
	if c == nil || id == "" {
		h(w, r)
		return
	}
	if fwd := r.Header.Get(headerForwarded); fwd != "" {
		// Reject only senders routing on an OLDER ring — and even then
		// only when they actually misrouted: if this node is still the
		// right destination under its newer ring (owner for a normal
		// proxy, follower for a replica read), the stale sender picked
		// the right door anyway and rejecting would just force a
		// pointless retry loop against a sender that may not be able to
		// adopt the new ring until its own commit lands.
		if eh := r.Header.Get(cluster.HeaderEpoch); eh != "" {
			if se, err := strconv.ParseUint(eh, 10, 64); err == nil && se < c.Epoch() {
				valid := c.IsOwner(id)
				if r.Header.Get(headerReplica) == "1" {
					valid = c.IsFollower(id)
				}
				if !valid {
					s.writeWrongEpoch(w, "proxy")
					return
				}
			}
		}
		if r.Header.Get(headerReplica) == "1" {
			r = r.WithContext(withReplicaServe(r.Context()))
		}
		h(w, r)
		return
	}
	if c.IsOwner(id) {
		h(w, r)
		return
	}
	// The profile lives elsewhere: buffer the body once so a failed proxy
	// attempt can still fall back without losing it.
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	owner := c.Owner(id)
	for attempt := 0; attempt < routeRetries; attempt++ {
		owner = c.Owner(id)
		if owner == c.Self() {
			// A ring refetch moved ownership here mid-request.
			r.Body = io.NopCloser(bytes.NewReader(body))
			h(w, r)
			return
		}
		if !c.Up(owner) {
			break
		}
		res := s.proxyToPeer(w, r, owner, body, false)
		if res == proxyServed {
			return
		}
		if res == proxyWrongEpoch {
			// The owner is on a newer ring than us: adopt it and re-route.
			c.RefreshFromPeer(owner)
			continue
		}
		break // transport failure → failover
	}
	s.reg.Counter("cluster_failovers_total", "owner", owner).Inc()
	if mutation {
		writeError(w, http.StatusServiceUnavailable, "owner_down",
			fmt.Sprintf("server: node %s owning profile %q is unreachable; mutations do not fail over", owner, id))
		return
	}
	if c.Replicating() {
		// Walk the follower list in failover order; with R=3 the read
		// survives the owner AND the first follower dying together.
		for _, f := range c.Followers(id) {
			if f == owner {
				continue
			}
			if f == c.Self() {
				s.reg.Counter("cluster_failover_serves_total").Inc()
				r.Body = io.NopCloser(bytes.NewReader(body))
				h(w, r.WithContext(withReplicaServe(r.Context())))
				return
			}
			if c.Up(f) && s.proxyToPeer(w, r, f, body, true) == proxyServed {
				return
			}
		}
	}
	writeError(w, http.StatusServiceUnavailable, "owner_down",
		fmt.Sprintf("server: node %s owning profile %q is unreachable and no replica can serve it", owner, id))
}

// proxyResult is one proxy attempt's outcome.
type proxyResult int

const (
	// proxyServed: the peer's answer (any status) was streamed to the client.
	proxyServed proxyResult = iota
	// proxyTransportErr: transport failure before any response byte — the
	// caller may fail over.
	proxyTransportErr
	// proxyWrongEpoch: the peer rejected our ring epoch as stale — nothing
	// was written; refetch the ring and re-route.
	proxyWrongEpoch
)

// proxyToPeer forwards the request to peer, stamped with this node's ring
// epoch, and streams the answer back. The peer's breaker is settled
// either way, so one failed proxy is enough to mark the peer down.
func (s *Server) proxyToPeer(w http.ResponseWriter, r *http.Request, peer string, body []byte, replica bool) proxyResult {
	c := s.cluster
	req, err := http.NewRequestWithContext(r.Context(), r.Method,
		c.PeerURL(peer)+r.URL.RequestURI(), bytes.NewReader(body))
	if err != nil {
		s.fail(w, http.StatusInternalServerError, err)
		return proxyServed
	}
	req.Header = r.Header.Clone()
	req.Header.Set(headerForwarded, c.Self())
	req.Header.Set(cluster.HeaderEpoch, strconv.FormatUint(c.Epoch(), 10))
	if replica {
		req.Header.Set(headerReplica, "1")
	}
	resp, err := c.Client().Do(req)
	if err != nil {
		c.ReportPeerFailure(peer)
		return proxyTransportErr
	}
	c.ReportPeerSuccess(peer)
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode == http.StatusConflict && resp.Header.Get(cluster.HeaderEpoch) != "" {
		s.reg.Counter("cluster_wrong_epoch_total", "path", "route").Inc()
		return proxyWrongEpoch
	}
	s.reg.Counter("cluster_proxied_requests_total", "peer", peer).Inc()
	for _, hdr := range []string{"Content-Type", "Retry-After"} {
		if v := resp.Header.Get(hdr); v != "" {
			w.Header().Set(hdr, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
	return proxyServed
}

// replicaProfile materializes a replica record as a StoredProfile. The
// text was validated by the owner before it was acked, so a parse failure
// here means replica corruption and reads as absence.
func (s *Server) replicaProfile(id string) (*StoredProfile, bool) {
	rec, ok := s.cluster.Replica().Get(id)
	if !ok {
		return nil, false
	}
	prof, err := cqp.ParseProfile(rec.Text)
	if err != nil || prof.Validate(s.db.Schema()) != nil {
		return nil, false
	}
	return &StoredProfile{
		ID:        rec.ID,
		Version:   rec.Version,
		Profile:   prof,
		Text:      rec.Text,
		UpdatedAt: time.Unix(0, rec.UpdatedAt),
	}, true
}

// syncRecords is the node's replication SyncSource: its version clock and
// the live records it owns whose follower set includes peer — the exact
// set peer's replica should hold for this node's shards.
func (s *Server) syncRecords(peer string) (uint64, []wal.Record) {
	clock, recs := s.store.Records()
	c := s.cluster
	if c == nil {
		return clock, recs
	}
	out := recs[:0]
	for _, rec := range recs {
		if c.IsOwner(rec.ID) && c.Ring().HasFollower(rec.ID, peer) {
			out = append(out, rec)
		}
	}
	return clock, out
}

// handleClusterPing answers peers' health probes: 200 only once the node
// is recovered, caught up, and serving — so peers never route to a node
// still rebuilding its replica. The pong carries the ring epoch; probe
// gossip compares it and converges stale nodes.
func (s *Server) handleClusterPing(w http.ResponseWriter, _ *http.Request) {
	if !s.ready.Load() {
		writeError(w, http.StatusServiceUnavailable, "recovering", "server: catching up")
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"node_id": s.cluster.Self(),
		"epoch":   s.cluster.Epoch(),
	})
}

// handleClusterReplicate is the follower's ingest endpoint: frame batches
// (and sync=1 snapshots) from an owner, answered with the cumulative ack.
// Served even while catching up — replication must not wait for readiness
// or a cold-start cluster deadlocks. Unlike the proxy path, replication
// rejects ANY epoch mismatch: frames routed under a different ring may
// target the wrong follower entirely, and the sender's full-sync recovery
// is cheap.
func (s *Server) handleClusterReplicate(w http.ResponseWriter, r *http.Request) {
	from := r.URL.Query().Get("from")
	if s.cluster.PeerURL(from) == "" {
		writeError(w, http.StatusBadRequest, "bad_request",
			fmt.Sprintf("server: replication from unknown node %q", from))
		return
	}
	if eh := r.URL.Query().Get("epoch"); eh != "" {
		if se, err := strconv.ParseUint(eh, 10, 64); err == nil && se != s.cluster.Epoch() {
			s.writeWrongEpoch(w, "replicate")
			return
		}
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, clusterSyncMaxBytes))
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	applied, changed, err := s.cluster.ApplyReplicate(from, r.URL.Query().Get("sync") == "1", body)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"applied": applied, "records": changed})
}

// handleClusterSync serves a peer's catch-up pull: this node's clock and
// the live records it owns that the peer follows — optionally narrowed to
// one anti-entropy digest bucket for targeted repair. Like replicate, it
// answers before the node itself is ready.
func (s *Server) handleClusterSync(w http.ResponseWriter, r *http.Request) {
	peer := r.URL.Query().Get("node")
	if s.cluster.PeerURL(peer) == "" {
		writeError(w, http.StatusBadRequest, "bad_request",
			fmt.Sprintf("server: sync request from unknown node %q", peer))
		return
	}
	clock, recs := s.syncRecords(peer)
	if b := r.URL.Query().Get("bucket"); b != "" {
		bucket, err := strconv.Atoi(b)
		if err != nil || bucket < 0 || bucket >= cluster.DigestBuckets {
			writeError(w, http.StatusBadRequest, "bad_request",
				fmt.Sprintf("server: bucket must be 0..%d", cluster.DigestBuckets-1))
			return
		}
		out := recs[:0]
		for _, rec := range recs {
			if cluster.Bucket(rec.ID) == bucket {
				out = append(out, rec)
			}
		}
		recs = out
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(cluster.EncodeSyncPayload(clock, recs))
}

// handleClusterRoute answers where a profile ID lives under the active
// ring — the drill sweeps it across nodes to verify post-transition
// routing agreement.
func (s *Server) handleClusterRoute(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	writeJSON(w, http.StatusOK, map[string]any{
		"id":        id,
		"epoch":     s.cluster.Epoch(),
		"owner":     s.cluster.Owner(id),
		"follower":  s.cluster.Follower(id),
		"followers": s.cluster.Followers(id),
		"self":      s.cluster.Self(),
	})
}

// clusterStateEntry is one profile's identity in a /cluster/state digest.
type clusterStateEntry struct {
	ID      string `json:"id"`
	Version uint64 `json:"version"`
}

// handleClusterState serves this node's cluster view: the active ring
// (epoch, replicas, members — what wrong_epoch recovery refetches), a
// deterministic store/replica digest (both sorted by ID, what the drill
// diffs), and — with ?digest=1&node=X — the per-bucket anti-entropy
// digest of the records X should be following.
func (s *Server) handleClusterState(w http.ResponseWriter, r *http.Request) {
	out := map[string]any{
		"node_id": s.cluster.Self(),
		"ring":    s.cluster.State(),
	}
	if r.URL.Query().Get("digest") == "1" {
		peer := r.URL.Query().Get("node")
		if s.cluster.PeerURL(peer) == "" {
			writeError(w, http.StatusBadRequest, "bad_request",
				fmt.Sprintf("server: digest request from unknown node %q", peer))
			return
		}
		_, recs := s.syncRecords(peer)
		d := cluster.DigestRecords(recs)
		out["digest"] = &d
		writeJSON(w, http.StatusOK, out)
		return
	}
	_, recs := s.store.Records()
	store := make([]clusterStateEntry, 0, len(recs))
	for _, rec := range recs {
		store = append(store, clusterStateEntry{ID: rec.ID, Version: rec.Version})
	}
	replica := make([]clusterStateEntry, 0)
	for _, rec := range s.cluster.Replica().List() {
		replica = append(replica, clusterStateEntry{ID: rec.ID, Version: rec.Version})
	}
	out["store"] = store
	out["replica"] = replica
	writeJSON(w, http.StatusOK, out)
}

// handleClusterRing applies one membership-transition message (prepare /
// commit / abort from a coordinator, install from probe gossip) and
// answers with this node's active ring state.
func (s *Server) handleClusterRing(w http.ResponseWriter, r *http.Request) {
	var msg cluster.RingMessage
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&msg); err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	st, err := s.cluster.HandleRingMessage(msg)
	if err != nil {
		writeError(w, http.StatusConflict, "ring_conflict", err.Error())
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"ring": st})
}

// handleClusterHandoff runs this node's shard handoff for a prepared
// transition: stream every owned record the next ring moves elsewhere.
func (s *Server) handleClusterHandoff(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Epoch uint64 `json:"epoch"`
	}
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 4096)).Decode(&req); err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	moved, err := s.cluster.RunHandoff(r.Context(), req.Epoch)
	if err != nil {
		writeError(w, http.StatusConflict, "handoff_failed", err.Error())
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"moved": moved})
}

// handleClusterHandoffApply ingests one handoff frame batch into the
// local store, version-guarded and epoch-checked.
func (s *Server) handleClusterHandoffApply(w http.ResponseWriter, r *http.Request) {
	epoch, err := strconv.ParseUint(r.URL.Query().Get("epoch"), 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", "server: handoff apply needs an epoch")
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, clusterSyncMaxBytes))
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	applied, err := s.cluster.ApplyHandoffFrames(epoch, body)
	if err != nil {
		if cluster.IsWrongEpoch(err) {
			s.writeWrongEpoch(w, "handoff")
			return
		}
		writeError(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"records": applied})
}

// handleClusterJoin coordinates adding a member: POST {"id","url"} to any
// existing node; it drives prepare → handoff → commit across the cluster
// and answers with the new ring. The transition is detached from the
// request context — an admin client disconnecting must not strand the
// cluster mid-transition.
func (s *Server) handleClusterJoin(w http.ResponseWriter, r *http.Request) {
	var req struct {
		ID  string `json:"id"`
		URL string `json:"url"`
	}
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 4096)).Decode(&req); err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	st, err := s.cluster.AddNode(context.Background(), req.ID, req.URL)
	if err != nil {
		writeError(w, http.StatusConflict, "transition_failed", err.Error())
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"ring": st})
}

// handleClusterLeave coordinates removing a member: POST {"id"} (add
// "force":true for a dead node whose shards must be promoted from
// replicas instead of handed off).
func (s *Server) handleClusterLeave(w http.ResponseWriter, r *http.Request) {
	var req struct {
		ID    string `json:"id"`
		Force bool   `json:"force"`
	}
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 4096)).Decode(&req); err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	st, err := s.cluster.RemoveNode(context.Background(), req.ID, req.Force)
	if err != nil {
		writeError(w, http.StatusConflict, "transition_failed", err.Error())
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"ring": st})
}
