package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"cqp"
	"cqp/internal/cluster"
	"cqp/internal/wal"
)

// Multi-node request routing. Any node accepts any request: work for a
// profile another node owns is proxied to that owner over the cluster's
// keep-alive HTTP client, with one forwarding hop at most (the forwarded
// header is the loop guard — a forwarded request is always served
// locally). When the owner is unreachable, reads and pipeline requests
// fail over to the follower's replicated snapshot, marked "stale_replica"
// in the response envelope on the degradation-ladder plumbing; mutations
// do not fail over — accepting a write the owner's WAL cannot ack would
// forfeit the zero-acked-loss guarantee — and answer 503 until the owner
// returns.

const (
	// headerForwarded carries the proxying node's ID on a forwarded
	// request; its presence means "serve locally, do not re-route".
	headerForwarded = "X-Cqpd-Forwarded"
	// headerReplica marks a forwarded request that should be answered from
	// the replica store — the proxying node decided the owner is down and
	// picked the follower.
	headerReplica = "X-Cqpd-Replica"
	// degradedStaleReplica is the envelope marker for answers computed
	// from a follower's replica instead of the owner's live store.
	degradedStaleReplica = "stale_replica"
	// clusterSyncMaxBytes bounds a replication or sync body — far above
	// any real batch, it only stops a runaway peer from ballooning memory.
	clusterSyncMaxBytes = 64 << 20
)

// replicaServeKey marks a request context as replica-serving: profile
// resolution may fall back to the follower's replicated snapshot.
type replicaServeKey struct{}

func withReplicaServe(ctx context.Context) context.Context {
	return context.WithValue(ctx, replicaServeKey{}, true)
}

func replicaServing(ctx context.Context) bool {
	v, _ := ctx.Value(replicaServeKey{}).(bool)
	return v
}

// routeByPath routes a /profiles/{id} request by its path ID. Mutations
// must run on the owner; reads may fail over.
func (s *Server) routeByPath(mutation bool, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.routeRequest(w, r, mutation, r.PathValue("id"), h)
	}
}

// routePeek is the routing view of a pipeline request body: the top-level
// profile_id, or (for /personalize/batch) the first item's. A batch is
// routed as one request by its first stored-profile item — the endpoint's
// shape is one user's list page, so items overwhelmingly share one owner;
// a mixed-owner batch resolves its foreign items against the serving
// node's local store and they fail item-wise, so callers wanting
// cross-owner batches should split them per user.
type routePeek struct {
	ProfileID string `json:"profile_id"`
	Items     []struct {
		ProfileID string `json:"profile_id"`
	} `json:"items"`
}

// routeByBody routes a pipeline request by the profile_id inside its JSON
// body. The body is buffered (bounded) and restored, so the local handler
// or the proxy reads it unchanged; malformed JSON routes locally and gets
// the handler's own 400.
func (s *Server) routeByBody(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.cluster == nil {
			h(w, r)
			return
		}
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
		if err != nil {
			s.fail(w, http.StatusBadRequest, err)
			return
		}
		r.Body = io.NopCloser(bytes.NewReader(body))
		var peek routePeek
		_ = json.Unmarshal(body, &peek)
		id := peek.ProfileID
		for _, it := range peek.Items {
			if id != "" {
				break
			}
			id = it.ProfileID
		}
		s.routeRequest(w, r, false, id, h)
	}
}

// routeRequest is the routing decision for one request touching profile
// id: local when this node owns it (or no cluster, or no id, or the
// request was already forwarded), proxy to the owner otherwise, failover
// to the follower's replica when the owner is unreachable.
func (s *Server) routeRequest(w http.ResponseWriter, r *http.Request, mutation bool, id string, h http.HandlerFunc) {
	c := s.cluster
	if c == nil || id == "" {
		h(w, r)
		return
	}
	if r.Header.Get(headerForwarded) != "" {
		if r.Header.Get(headerReplica) == "1" {
			r = r.WithContext(withReplicaServe(r.Context()))
		}
		h(w, r)
		return
	}
	if c.IsOwner(id) {
		h(w, r)
		return
	}
	// The profile lives elsewhere: buffer the body once so a failed proxy
	// attempt can still fall back without losing it.
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	owner := c.Owner(id)
	if c.Up(owner) && s.proxyToPeer(w, r, owner, body, false) {
		return
	}
	s.reg.Counter("cluster_failovers_total", "owner", owner).Inc()
	if mutation {
		writeError(w, http.StatusServiceUnavailable, "owner_down",
			fmt.Sprintf("server: node %s owning profile %q is unreachable; mutations do not fail over", owner, id))
		return
	}
	if c.Replicating() {
		if c.IsFollower(id) {
			s.reg.Counter("cluster_failover_serves_total").Inc()
			r.Body = io.NopCloser(bytes.NewReader(body))
			h(w, r.WithContext(withReplicaServe(r.Context())))
			return
		}
		if f := c.Follower(id); f != "" && f != owner && c.Up(f) &&
			s.proxyToPeer(w, r, f, body, true) {
			return
		}
	}
	writeError(w, http.StatusServiceUnavailable, "owner_down",
		fmt.Sprintf("server: node %s owning profile %q is unreachable and no replica can serve it", owner, id))
}

// proxyToPeer forwards the request to peer and streams the answer back.
// Returns false only on a transport failure before any response byte —
// the caller may then fail over; the peer's breaker is settled either
// way, so one failed proxy is enough to mark the peer down.
func (s *Server) proxyToPeer(w http.ResponseWriter, r *http.Request, peer string, body []byte, replica bool) bool {
	c := s.cluster
	req, err := http.NewRequestWithContext(r.Context(), r.Method,
		c.PeerURL(peer)+r.URL.RequestURI(), bytes.NewReader(body))
	if err != nil {
		s.fail(w, http.StatusInternalServerError, err)
		return true
	}
	req.Header = r.Header.Clone()
	req.Header.Set(headerForwarded, c.Self())
	if replica {
		req.Header.Set(headerReplica, "1")
	}
	resp, err := c.Client().Do(req)
	if err != nil {
		c.ReportPeerFailure(peer)
		return false
	}
	c.ReportPeerSuccess(peer)
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	s.reg.Counter("cluster_proxied_requests_total", "peer", peer).Inc()
	for _, hdr := range []string{"Content-Type", "Retry-After"} {
		if v := resp.Header.Get(hdr); v != "" {
			w.Header().Set(hdr, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
	return true
}

// replicaProfile materializes a replica record as a StoredProfile. The
// text was validated by the owner before it was acked, so a parse failure
// here means replica corruption and reads as absence.
func (s *Server) replicaProfile(id string) (*StoredProfile, bool) {
	rec, ok := s.cluster.Replica().Get(id)
	if !ok {
		return nil, false
	}
	prof, err := cqp.ParseProfile(rec.Text)
	if err != nil || prof.Validate(s.db.Schema()) != nil {
		return nil, false
	}
	return &StoredProfile{
		ID:        rec.ID,
		Version:   rec.Version,
		Profile:   prof,
		Text:      rec.Text,
		UpdatedAt: time.Unix(0, rec.UpdatedAt),
	}, true
}

// syncRecords is the node's replication SyncSource: its version clock and
// the live records it owns whose follower is peer — the exact set peer's
// replica should hold for this node's shards.
func (s *Server) syncRecords(peer string) (uint64, []wal.Record) {
	clock, recs := s.store.Records()
	c := s.cluster
	if c == nil {
		return clock, recs
	}
	out := recs[:0]
	for _, rec := range recs {
		if c.IsOwner(rec.ID) && c.Follower(rec.ID) == peer {
			out = append(out, rec)
		}
	}
	return clock, out
}

// handleClusterPing answers peers' health probes: 200 only once the node
// is recovered, caught up, and serving — so peers never route to a node
// still rebuilding its replica.
func (s *Server) handleClusterPing(w http.ResponseWriter, _ *http.Request) {
	if !s.ready.Load() {
		writeError(w, http.StatusServiceUnavailable, "recovering", "server: catching up")
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"node_id": s.cluster.Self()})
}

// handleClusterReplicate is the follower's ingest endpoint: frame batches
// (and sync=1 snapshots) from an owner, answered with the cumulative ack.
// Served even while catching up — replication must not wait for readiness
// or a cold-start cluster deadlocks.
func (s *Server) handleClusterReplicate(w http.ResponseWriter, r *http.Request) {
	from := r.URL.Query().Get("from")
	if s.cluster.PeerURL(from) == "" {
		writeError(w, http.StatusBadRequest, "bad_request",
			fmt.Sprintf("server: replication from unknown node %q", from))
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, clusterSyncMaxBytes))
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	applied, changed, err := s.cluster.ApplyReplicate(from, r.URL.Query().Get("sync") == "1", body)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"applied": applied, "records": changed})
}

// handleClusterSync serves a rejoining peer's catch-up pull: this node's
// clock and the live records it owns that the peer follows. Like
// replicate, it answers before the node itself is ready.
func (s *Server) handleClusterSync(w http.ResponseWriter, r *http.Request) {
	peer := r.URL.Query().Get("node")
	if s.cluster.PeerURL(peer) == "" {
		writeError(w, http.StatusBadRequest, "bad_request",
			fmt.Sprintf("server: sync request from unknown node %q", peer))
		return
	}
	clock, recs := s.syncRecords(peer)
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(cluster.EncodeSyncPayload(clock, recs))
}

// handleClusterRoute answers where a profile ID lives — the drill and
// operators use it to find the node to kill or blame.
func (s *Server) handleClusterRoute(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	writeJSON(w, http.StatusOK, map[string]any{
		"id":       id,
		"owner":    s.cluster.Owner(id),
		"follower": s.cluster.Follower(id),
		"self":     s.cluster.Self(),
	})
}

// clusterStateEntry is one profile's identity in a /cluster/state digest.
type clusterStateEntry struct {
	ID      string `json:"id"`
	Version uint64 `json:"version"`
}

// handleClusterState serves a deterministic digest of this node's owned
// store and its replica — both sorted by ID — so a drill can diff a
// restarted owner against its pre-kill state and a follower against the
// owner, byte for byte.
func (s *Server) handleClusterState(w http.ResponseWriter, _ *http.Request) {
	_, recs := s.store.Records()
	store := make([]clusterStateEntry, 0, len(recs))
	for _, rec := range recs {
		store = append(store, clusterStateEntry{ID: rec.ID, Version: rec.Version})
	}
	replica := make([]clusterStateEntry, 0)
	for _, rec := range s.cluster.Replica().List() {
		replica = append(replica, clusterStateEntry{ID: rec.ID, Version: rec.Version})
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"node_id": s.cluster.Self(),
		"store":   store,
		"replica": replica,
	})
}
