package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"cqp"
)

// testCluster runs a real multi-node cqpd cluster in-process: one Server
// per node, each on its own loopback listener, wired through the same
// static peer list.
type testCluster struct {
	t       *testing.T
	ids     []string
	addrs   map[string]string // id → host:port (stable across restarts)
	peers   map[string]string // id → base URL
	servers map[string]*Server
	dirs    map[string]string // id → data dir ("" = memory store)
}

func newTestCluster(t *testing.T, ids []string, durable bool) *testCluster {
	t.Helper()
	tc := &testCluster{
		t:       t,
		ids:     ids,
		addrs:   make(map[string]string),
		peers:   make(map[string]string),
		servers: make(map[string]*Server),
		dirs:    make(map[string]string),
	}
	lns := make(map[string]net.Listener)
	for _, id := range ids {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[id] = ln
		tc.addrs[id] = ln.Addr().String()
		tc.peers[id] = "http://" + ln.Addr().String()
		if durable {
			tc.dirs[id] = t.TempDir()
		}
	}
	for _, id := range ids {
		tc.start(id, lns[id])
	}
	t.Cleanup(func() {
		for _, id := range ids {
			tc.stop(id)
		}
	})
	tc.waitReady(ids...)
	return tc
}

// start builds one node's Server and begins serving on ln.
func (tc *testCluster) start(id string, ln net.Listener) {
	tc.t.Helper()
	db := cqp.SyntheticMovieDB(300, 1)
	s, err := New(db, Config{
		NodeID:        id,
		ClusterPeers:  tc.peers,
		Replicate:     true,
		ProbeInterval: 25 * time.Millisecond,
		DataDir:       tc.dirs[id],
	})
	if err != nil {
		tc.t.Fatal(err)
	}
	tc.servers[id] = s
	go s.Serve(ln)
}

// stop shuts one node down (its listener closes with the http server).
func (tc *testCluster) stop(id string) {
	s := tc.servers[id]
	if s == nil {
		return
	}
	delete(tc.servers, id)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	s.Shutdown(ctx)
}

// restart rebinds the node's original address and starts a fresh Server
// over the same data dir — the rejoin path.
func (tc *testCluster) restart(id string) {
	tc.t.Helper()
	var ln net.Listener
	var err error
	deadline := time.Now().Add(5 * time.Second)
	for {
		ln, err = net.Listen("tcp", tc.addrs[id])
		if err == nil || time.Now().After(deadline) {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err != nil {
		tc.t.Fatalf("rebind %s: %v", tc.addrs[id], err)
	}
	tc.start(id, ln)
	tc.waitReady(id)
}

func (tc *testCluster) url(id string) string { return tc.peers[id] }

func (tc *testCluster) node(id string) *Server { return tc.servers[id] }

// waitReady blocks until each named node's /healthz answers 200 and its
// view of every *running* peer has settled to up. The second wait
// matters: probes that landed during a peer's pre-ready window opened
// its one-strike breaker, and traffic driven before the next probe
// closes it would take the failover path spuriously.
func (tc *testCluster) waitReady(ids ...string) {
	tc.t.Helper()
	for _, id := range ids {
		ok := false
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) {
			resp, err := http.Get(tc.url(id) + "/healthz")
			if err == nil {
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					ok = true
					break
				}
			}
			time.Sleep(20 * time.Millisecond)
		}
		if !ok {
			tc.t.Fatalf("node %s never became ready", id)
		}
		c := tc.node(id).Cluster()
		for {
			allUp := true
			for peer := range tc.servers {
				if peer != id && !c.Up(peer) {
					allUp = false
				}
			}
			if allUp {
				break
			}
			if time.Now().After(deadline) {
				tc.t.Fatalf("node %s never saw its peers up: %+v", id, c.Status())
			}
			time.Sleep(20 * time.Millisecond)
		}
	}
}

// anyNode returns a running node (ring state is identical on all).
func (tc *testCluster) anyNode() *Server {
	for _, s := range tc.servers {
		return s
	}
	tc.t.Fatal("no running nodes")
	return nil
}

// keyOwnedBy finds a profile ID owned by node owner.
func (tc *testCluster) keyOwnedBy(owner string) string {
	c := tc.anyNode().Cluster()
	for i := 0; i < 10000; i++ {
		k := fmt.Sprintf("user-%d", i)
		if c.Owner(k) == owner {
			return k
		}
	}
	tc.t.Fatalf("no key owned by %s", owner)
	return ""
}

// otherThan returns a node ID distinct from every argument.
func (tc *testCluster) otherThan(exclude ...string) string {
	for _, id := range tc.ids {
		skip := false
		for _, e := range exclude {
			if id == e {
				skip = true
			}
		}
		if !skip {
			return id
		}
	}
	tc.t.Fatal("no node left")
	return ""
}

// TestClusterRoutingProxiesToOwner: any node accepts a profile mutation;
// it lands on (only) the owner's store and every node reads it back.
func TestClusterRoutingProxiesToOwner(t *testing.T) {
	tc := newTestCluster(t, []string{"n1", "n2", "n3"}, false)
	c := tc.anyNode().Cluster()
	owner := c.Owner("alice")
	entry := tc.otherThan(owner)
	text := testProfileText()

	putProfile(t, tc.url(entry), "alice", text)
	if _, ok := tc.node(owner).store.Get("alice"); !ok {
		t.Fatalf("owner %s does not hold the routed profile", owner)
	}
	if _, ok := tc.node(entry).store.Get("alice"); ok {
		t.Fatalf("entry node %s kept a local copy instead of proxying", entry)
	}
	for _, id := range tc.ids {
		resp, body := doJSON(t, http.MethodGet, tc.url(id)+"/profiles/alice", nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET via %s: %d: %s", id, resp.StatusCode, body)
		}
		var pj profileJSON
		if err := json.Unmarshal(body, &pj); err != nil {
			t.Fatal(err)
		}
		if pj.Text != text || pj.StaleReplica {
			t.Fatalf("GET via %s: text mismatch or stale marker: %+v", id, pj)
		}
	}

	// A pipeline request entering at a non-owner is proxied too.
	resp, body := doJSON(t, http.MethodPost, tc.url(entry)+"/personalize", map[string]any{
		"sql": testSQL, "profile_id": "alice",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("proxied personalize: %d: %s", resp.StatusCode, body)
	}
	var pr personalizeResponse
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatal(err)
	}
	if pr.Degraded != "" || pr.ProfileVersion == 0 {
		t.Fatalf("proxied personalize degraded=%q version=%d", pr.Degraded, pr.ProfileVersion)
	}

	// The route endpoint agrees with the ring.
	resp, body = doJSON(t, http.MethodGet, tc.url(entry)+"/cluster/route/alice", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("route: %d: %s", resp.StatusCode, body)
	}
	var route struct{ Owner, Follower string }
	if err := json.Unmarshal(body, &route); err != nil {
		t.Fatal(err)
	}
	if route.Owner != owner || route.Follower != c.Follower("alice") {
		t.Fatalf("route: %+v, ring says %s/%s", route, owner, c.Follower("alice"))
	}

	// Deletes route the same way.
	resp, _ = doJSON(t, http.MethodDelete, tc.url(entry)+"/profiles/alice", nil)
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("proxied delete: %d", resp.StatusCode)
	}
	if _, ok := tc.node(owner).store.Get("alice"); ok {
		t.Fatal("delete did not reach the owner")
	}
}

// TestClusterFailoverServesReplica: killing a profile's owner leaves
// reads serving from the follower's replica (marked stale_replica) while
// mutations answer 503 — and the very first post-kill request succeeds,
// because a failed proxy settles the peer's breaker immediately.
func TestClusterFailoverServesReplica(t *testing.T) {
	tc := newTestCluster(t, []string{"n1", "n2", "n3"}, false)
	c := tc.anyNode().Cluster()
	key := tc.keyOwnedBy("n1")
	follower := c.Follower(key)
	third := tc.otherThan("n1", follower)
	text := testProfileText()

	putProfile(t, tc.url("n1"), key, text)
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, ok := tc.node(follower).Cluster().Replica().Get(key); ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("profile %s never replicated to follower %s", key, follower)
		}
		time.Sleep(10 * time.Millisecond)
	}

	tc.stop("n1")

	// Read via the third node: proxy to dead owner fails → fail over to
	// the follower's replica.
	resp, body := doJSON(t, http.MethodGet, tc.url(third)+"/profiles/"+key, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("failover GET via %s: %d: %s", third, resp.StatusCode, body)
	}
	var pj profileJSON
	if err := json.Unmarshal(body, &pj); err != nil {
		t.Fatal(err)
	}
	if !pj.StaleReplica || pj.Text != text {
		t.Fatalf("failover GET: want stale replica with original text, got %+v", pj)
	}

	// Read via the follower itself: served from its own replica.
	resp, body = doJSON(t, http.MethodGet, tc.url(follower)+"/profiles/"+key, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("failover GET via follower: %d: %s", resp.StatusCode, body)
	}

	// Pipeline requests degrade to the replica and say so in the envelope.
	resp, body = doJSON(t, http.MethodPost, tc.url(follower)+"/personalize", map[string]any{
		"sql": testSQL, "profile_id": key,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("failover personalize: %d: %s", resp.StatusCode, body)
	}
	var pr personalizeResponse
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatal(err)
	}
	if pr.Degraded != degradedStaleReplica {
		t.Fatalf("failover personalize degraded=%q, want %q", pr.Degraded, degradedStaleReplica)
	}

	// Mutations do not fail over.
	req, err := http.NewRequest(http.MethodPut, tc.url(third)+"/profiles/"+key, strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	wresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	wresp.Body.Close()
	if wresp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("mutation with dead owner: %d, want 503", wresp.StatusCode)
	}
}

// TestClusterRejoinCatchUp: a durably-stored owner that dies and rejoins
// replays its WAL, catch-up syncs the shards it follows, and only then
// advertises ready — with a /profiles listing identical to pre-kill (zero
// acked mutations lost).
func TestClusterRejoinCatchUp(t *testing.T) {
	tc := newTestCluster(t, []string{"n1", "n2", "n3"}, true)

	// Spread acked profiles across all three owners, entering via n2.
	for i := 0; i < 12; i++ {
		putProfile(t, tc.url("n2"), fmt.Sprintf("user-%d", i), testProfileText())
	}
	_, beforeList := doJSON(t, http.MethodGet, tc.url("n1")+"/profiles", nil)

	// Wait until every follower replica caught up, so the rejoin pull has
	// a complete source.
	c := tc.anyNode().Cluster()
	deadline := time.Now().Add(10 * time.Second)
	for i := 0; i < 12; i++ {
		id := fmt.Sprintf("user-%d", i)
		f := c.Follower(id)
		for {
			if _, ok := tc.node(f).Cluster().Replica().Get(id); ok {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("profile %s never reached follower %s", id, f)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}

	tc.stop("n1")
	tc.restart("n1")

	_, afterList := doJSON(t, http.MethodGet, tc.url("n1")+"/profiles", nil)
	var beforeP, afterP struct {
		Profiles []ProfileInfo `json:"profiles"`
	}
	if err := json.Unmarshal(beforeList, &beforeP); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(afterList, &afterP); err != nil {
		t.Fatal(err)
	}
	if len(afterP.Profiles) != len(beforeP.Profiles) {
		t.Fatalf("rejoined listing has %d profiles, had %d", len(afterP.Profiles), len(beforeP.Profiles))
	}
	for i := range beforeP.Profiles {
		b, a := beforeP.Profiles[i], afterP.Profiles[i]
		if a.ID != b.ID || a.Version != b.Version {
			t.Fatalf("rejoined listing diverged at %d: %+v vs %+v", i, a, b)
		}
	}

	// The rejoined node's replica was rebuilt by catch-up: every profile
	// it follows is present again.
	rejoined := tc.node("n1").Cluster()
	for i := 0; i < 12; i++ {
		id := fmt.Sprintf("user-%d", i)
		if rejoined.Follower(id) != "n1" {
			continue
		}
		if _, ok := rejoined.Replica().Get(id); !ok {
			t.Fatalf("rejoined node missing replica of %s after catch-up", id)
		}
	}

	// Healthz reports the cluster block.
	_, hb := doJSON(t, http.MethodGet, tc.url("n1")+"/healthz", nil)
	var hz struct {
		Role    string `json:"role"`
		Backend string `json:"backend"`
		Cluster *struct {
			NodeID string `json:"node_id"`
			Peers  []struct {
				ID string `json:"id"`
				Up bool   `json:"up"`
			} `json:"peers"`
		} `json:"cluster"`
	}
	if err := json.Unmarshal(hb, &hz); err != nil {
		t.Fatal(err)
	}
	if hz.Role != "member" || hz.Cluster == nil || hz.Cluster.NodeID != "n1" || len(hz.Cluster.Peers) != 2 {
		t.Fatalf("healthz cluster block: %s", hb)
	}
}
