package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cqp"
	"cqp/internal/wal"
)

// testCluster runs a real multi-node cqpd cluster in-process: one Server
// per node, each on its own loopback listener, wired through the same
// static peer list.
type testCluster struct {
	t       *testing.T
	ids     []string
	addrs   map[string]string // id → host:port (stable across restarts)
	peers   map[string]string // id → base URL
	servers map[string]*Server
	dirs    map[string]string // id → data dir ("" = memory store)
	durable bool
	tweak   func(*Config) // per-test Config overrides, applied at start
}

func newTestCluster(t *testing.T, ids []string, durable bool) *testCluster {
	return newTestClusterCfg(t, ids, durable, nil)
}

func newTestClusterCfg(t *testing.T, ids []string, durable bool, tweak func(*Config)) *testCluster {
	t.Helper()
	tc := &testCluster{
		t:       t,
		ids:     ids,
		addrs:   make(map[string]string),
		peers:   make(map[string]string),
		servers: make(map[string]*Server),
		dirs:    make(map[string]string),
		durable: durable,
		tweak:   tweak,
	}
	lns := make(map[string]net.Listener)
	for _, id := range ids {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[id] = ln
		tc.addrs[id] = ln.Addr().String()
		tc.peers[id] = "http://" + ln.Addr().String()
		if durable {
			tc.dirs[id] = t.TempDir()
		}
	}
	for _, id := range ids {
		tc.start(id, lns[id], nil)
	}
	t.Cleanup(func() {
		running := make([]string, 0, len(tc.servers))
		for id := range tc.servers {
			running = append(running, id)
		}
		for _, id := range running {
			tc.stop(id)
		}
	})
	tc.waitReady(ids...)
	return tc
}

// start builds one node's Server and begins serving on ln. A nil peers
// map means the full static peer list; a joiner passes its solo view.
func (tc *testCluster) start(id string, ln net.Listener, peers map[string]string) {
	tc.t.Helper()
	if peers == nil {
		peers = tc.peers
	}
	view := make(map[string]string, len(peers))
	for pid, url := range peers {
		view[pid] = url
	}
	db := cqp.SyntheticMovieDB(300, 1)
	cfg := Config{
		NodeID:        id,
		ClusterPeers:  view,
		Replicate:     true,
		ProbeInterval: 25 * time.Millisecond,
		DataDir:       tc.dirs[id],
	}
	if tc.tweak != nil {
		tc.tweak(&cfg)
	}
	s, err := New(db, cfg)
	if err != nil {
		tc.t.Fatal(err)
	}
	tc.servers[id] = s
	go s.Serve(ln)
}

// spawn boots a brand-new node as a 1-member cluster of itself — the
// documented joiner bootstrap — and waits for its /healthz. It becomes
// part of the ring only after a /cluster/join on an existing member.
func (tc *testCluster) spawn(id string) {
	tc.t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		tc.t.Fatal(err)
	}
	tc.addrs[id] = ln.Addr().String()
	tc.peers[id] = "http://" + ln.Addr().String()
	tc.ids = append(tc.ids, id)
	if tc.durable {
		tc.dirs[id] = tc.t.TempDir()
	}
	tc.start(id, ln, map[string]string{id: tc.peers[id]})
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(tc.peers[id] + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		if time.Now().After(deadline) {
			tc.t.Fatalf("spawned node %s never became ready", id)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// stop shuts one node down (its listener closes with the http server).
func (tc *testCluster) stop(id string) {
	s := tc.servers[id]
	if s == nil {
		return
	}
	delete(tc.servers, id)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	s.Shutdown(ctx)
}

// restart rebinds the node's original address and starts a fresh Server
// over the same data dir — the rejoin path.
func (tc *testCluster) restart(id string) {
	tc.t.Helper()
	var ln net.Listener
	var err error
	deadline := time.Now().Add(5 * time.Second)
	for {
		ln, err = net.Listen("tcp", tc.addrs[id])
		if err == nil || time.Now().After(deadline) {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err != nil {
		tc.t.Fatalf("rebind %s: %v", tc.addrs[id], err)
	}
	tc.start(id, ln, nil)
	tc.waitReady(id)
}

func (tc *testCluster) url(id string) string { return tc.peers[id] }

func (tc *testCluster) node(id string) *Server { return tc.servers[id] }

// waitReady blocks until each named node's /healthz answers 200 and its
// view of every *running* peer has settled to up. The second wait
// matters: probes that landed during a peer's pre-ready window opened
// its one-strike breaker, and traffic driven before the next probe
// closes it would take the failover path spuriously.
func (tc *testCluster) waitReady(ids ...string) {
	tc.t.Helper()
	for _, id := range ids {
		ok := false
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) {
			resp, err := http.Get(tc.url(id) + "/healthz")
			if err == nil {
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					ok = true
					break
				}
			}
			time.Sleep(20 * time.Millisecond)
		}
		if !ok {
			tc.t.Fatalf("node %s never became ready", id)
		}
		c := tc.node(id).Cluster()
		for {
			allUp := true
			for peer := range tc.servers {
				if peer != id && !c.Up(peer) {
					allUp = false
				}
			}
			if allUp {
				break
			}
			if time.Now().After(deadline) {
				tc.t.Fatalf("node %s never saw its peers up: %+v", id, c.Status())
			}
			time.Sleep(20 * time.Millisecond)
		}
	}
}

// anyNode returns a running node (ring state is identical on all).
func (tc *testCluster) anyNode() *Server {
	for _, s := range tc.servers {
		return s
	}
	tc.t.Fatal("no running nodes")
	return nil
}

// keyOwnedBy finds a profile ID owned by node owner.
func (tc *testCluster) keyOwnedBy(owner string) string {
	c := tc.anyNode().Cluster()
	for i := 0; i < 10000; i++ {
		k := fmt.Sprintf("user-%d", i)
		if c.Owner(k) == owner {
			return k
		}
	}
	tc.t.Fatalf("no key owned by %s", owner)
	return ""
}

// otherThan returns a node ID distinct from every argument.
func (tc *testCluster) otherThan(exclude ...string) string {
	for _, id := range tc.ids {
		skip := false
		for _, e := range exclude {
			if id == e {
				skip = true
			}
		}
		if !skip {
			return id
		}
	}
	tc.t.Fatal("no node left")
	return ""
}

// TestClusterRoutingProxiesToOwner: any node accepts a profile mutation;
// it lands on (only) the owner's store and every node reads it back.
func TestClusterRoutingProxiesToOwner(t *testing.T) {
	tc := newTestCluster(t, []string{"n1", "n2", "n3"}, false)
	c := tc.anyNode().Cluster()
	owner := c.Owner("alice")
	entry := tc.otherThan(owner)
	text := testProfileText()

	putProfile(t, tc.url(entry), "alice", text)
	if _, ok := tc.node(owner).store.Get("alice"); !ok {
		t.Fatalf("owner %s does not hold the routed profile", owner)
	}
	if _, ok := tc.node(entry).store.Get("alice"); ok {
		t.Fatalf("entry node %s kept a local copy instead of proxying", entry)
	}
	for _, id := range tc.ids {
		resp, body := doJSON(t, http.MethodGet, tc.url(id)+"/profiles/alice", nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET via %s: %d: %s", id, resp.StatusCode, body)
		}
		var pj profileJSON
		if err := json.Unmarshal(body, &pj); err != nil {
			t.Fatal(err)
		}
		if pj.Text != text || pj.StaleReplica {
			t.Fatalf("GET via %s: text mismatch or stale marker: %+v", id, pj)
		}
	}

	// A pipeline request entering at a non-owner is proxied too.
	resp, body := doJSON(t, http.MethodPost, tc.url(entry)+"/personalize", map[string]any{
		"sql": testSQL, "profile_id": "alice",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("proxied personalize: %d: %s", resp.StatusCode, body)
	}
	var pr personalizeResponse
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatal(err)
	}
	if pr.Degraded != "" || pr.ProfileVersion == 0 {
		t.Fatalf("proxied personalize degraded=%q version=%d", pr.Degraded, pr.ProfileVersion)
	}

	// The route endpoint agrees with the ring.
	resp, body = doJSON(t, http.MethodGet, tc.url(entry)+"/cluster/route/alice", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("route: %d: %s", resp.StatusCode, body)
	}
	var route struct{ Owner, Follower string }
	if err := json.Unmarshal(body, &route); err != nil {
		t.Fatal(err)
	}
	if route.Owner != owner || route.Follower != c.Follower("alice") {
		t.Fatalf("route: %+v, ring says %s/%s", route, owner, c.Follower("alice"))
	}

	// Deletes route the same way.
	resp, _ = doJSON(t, http.MethodDelete, tc.url(entry)+"/profiles/alice", nil)
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("proxied delete: %d", resp.StatusCode)
	}
	if _, ok := tc.node(owner).store.Get("alice"); ok {
		t.Fatal("delete did not reach the owner")
	}
}

// TestClusterFailoverServesReplica: killing a profile's owner leaves
// reads serving from the follower's replica (marked stale_replica) while
// mutations answer 503 — and the very first post-kill request succeeds,
// because a failed proxy settles the peer's breaker immediately.
func TestClusterFailoverServesReplica(t *testing.T) {
	tc := newTestCluster(t, []string{"n1", "n2", "n3"}, false)
	c := tc.anyNode().Cluster()
	key := tc.keyOwnedBy("n1")
	follower := c.Follower(key)
	third := tc.otherThan("n1", follower)
	text := testProfileText()

	putProfile(t, tc.url("n1"), key, text)
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, ok := tc.node(follower).Cluster().Replica().Get(key); ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("profile %s never replicated to follower %s", key, follower)
		}
		time.Sleep(10 * time.Millisecond)
	}

	tc.stop("n1")

	// Read via the third node: proxy to dead owner fails → fail over to
	// the follower's replica.
	resp, body := doJSON(t, http.MethodGet, tc.url(third)+"/profiles/"+key, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("failover GET via %s: %d: %s", third, resp.StatusCode, body)
	}
	var pj profileJSON
	if err := json.Unmarshal(body, &pj); err != nil {
		t.Fatal(err)
	}
	if !pj.StaleReplica || pj.Text != text {
		t.Fatalf("failover GET: want stale replica with original text, got %+v", pj)
	}

	// Read via the follower itself: served from its own replica.
	resp, body = doJSON(t, http.MethodGet, tc.url(follower)+"/profiles/"+key, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("failover GET via follower: %d: %s", resp.StatusCode, body)
	}

	// Pipeline requests degrade to the replica and say so in the envelope.
	resp, body = doJSON(t, http.MethodPost, tc.url(follower)+"/personalize", map[string]any{
		"sql": testSQL, "profile_id": key,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("failover personalize: %d: %s", resp.StatusCode, body)
	}
	var pr personalizeResponse
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatal(err)
	}
	if pr.Degraded != degradedStaleReplica {
		t.Fatalf("failover personalize degraded=%q, want %q", pr.Degraded, degradedStaleReplica)
	}

	// Mutations do not fail over.
	req, err := http.NewRequest(http.MethodPut, tc.url(third)+"/profiles/"+key, strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	wresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	wresp.Body.Close()
	if wresp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("mutation with dead owner: %d, want 503", wresp.StatusCode)
	}
}

// TestClusterRejoinCatchUp: a durably-stored owner that dies and rejoins
// replays its WAL, catch-up syncs the shards it follows, and only then
// advertises ready — with a /profiles listing identical to pre-kill (zero
// acked mutations lost).
func TestClusterRejoinCatchUp(t *testing.T) {
	tc := newTestCluster(t, []string{"n1", "n2", "n3"}, true)

	// Spread acked profiles across all three owners, entering via n2.
	for i := 0; i < 12; i++ {
		putProfile(t, tc.url("n2"), fmt.Sprintf("user-%d", i), testProfileText())
	}
	_, beforeList := doJSON(t, http.MethodGet, tc.url("n1")+"/profiles", nil)

	// Wait until every follower replica caught up, so the rejoin pull has
	// a complete source.
	c := tc.anyNode().Cluster()
	deadline := time.Now().Add(10 * time.Second)
	for i := 0; i < 12; i++ {
		id := fmt.Sprintf("user-%d", i)
		f := c.Follower(id)
		for {
			if _, ok := tc.node(f).Cluster().Replica().Get(id); ok {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("profile %s never reached follower %s", id, f)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}

	tc.stop("n1")
	tc.restart("n1")

	_, afterList := doJSON(t, http.MethodGet, tc.url("n1")+"/profiles", nil)
	var beforeP, afterP struct {
		Profiles []ProfileInfo `json:"profiles"`
	}
	if err := json.Unmarshal(beforeList, &beforeP); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(afterList, &afterP); err != nil {
		t.Fatal(err)
	}
	if len(afterP.Profiles) != len(beforeP.Profiles) {
		t.Fatalf("rejoined listing has %d profiles, had %d", len(afterP.Profiles), len(beforeP.Profiles))
	}
	for i := range beforeP.Profiles {
		b, a := beforeP.Profiles[i], afterP.Profiles[i]
		if a.ID != b.ID || a.Version != b.Version {
			t.Fatalf("rejoined listing diverged at %d: %+v vs %+v", i, a, b)
		}
	}

	// The rejoined node's replica was rebuilt by catch-up: every profile
	// it follows is present again.
	rejoined := tc.node("n1").Cluster()
	for i := 0; i < 12; i++ {
		id := fmt.Sprintf("user-%d", i)
		if rejoined.Follower(id) != "n1" {
			continue
		}
		if _, ok := rejoined.Replica().Get(id); !ok {
			t.Fatalf("rejoined node missing replica of %s after catch-up", id)
		}
	}

	// Healthz reports the cluster block.
	_, hb := doJSON(t, http.MethodGet, tc.url("n1")+"/healthz", nil)
	var hz struct {
		Role    string `json:"role"`
		Backend string `json:"backend"`
		Cluster *struct {
			NodeID string `json:"node_id"`
			Peers  []struct {
				ID string `json:"id"`
				Up bool   `json:"up"`
			} `json:"peers"`
		} `json:"cluster"`
	}
	if err := json.Unmarshal(hb, &hz); err != nil {
		t.Fatal(err)
	}
	if hz.Role != "member" || hz.Cluster == nil || hz.Cluster.NodeID != "n1" || len(hz.Cluster.Peers) != 2 {
		t.Fatalf("healthz cluster block: %s", hb)
	}
}

// loadStats is the scoreboard for a background mixed PUT/GET loop.
type loadStats struct {
	ops     atomic.Int64
	fails   atomic.Int64
	lastErr atomic.Value // string
}

// runLoad drives a mixed PUT/GET loop against the given entry nodes
// until stop is closed. Every PUT of load-* keys and every GET of a
// previously acked key must succeed — membership changes are supposed
// to be invisible to clients.
func (tc *testCluster) runLoad(stop chan struct{}, entries []string) (*loadStats, *sync.WaitGroup) {
	st := &loadStats{}
	var wg sync.WaitGroup
	text := testProfileText()
	cli := &http.Client{Timeout: 3 * time.Second}
	urls := make([]string, len(entries))
	for i, id := range entries {
		urls[i] = tc.peers[id]
	}
	fail := func(what string, detail string) {
		st.fails.Add(1)
		st.lastErr.Store(what + ": " + detail)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			entry := urls[i%len(urls)]
			id := fmt.Sprintf("load-%d", i%25)
			req, err := http.NewRequest(http.MethodPut, entry+"/profiles/"+id, strings.NewReader(text))
			if err != nil {
				fail("build PUT", err.Error())
				continue
			}
			if resp, err := cli.Do(req); err != nil {
				fail("PUT "+id, err.Error())
			} else {
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode/100 != 2 {
					fail("PUT "+id, fmt.Sprintf("%d: %s", resp.StatusCode, body))
				}
			}
			if i > 0 {
				gid := fmt.Sprintf("load-%d", (i-1)%25)
				if resp, err := cli.Get(entry + "/profiles/" + gid); err != nil {
					fail("GET "+gid, err.Error())
				} else {
					body, _ := io.ReadAll(resp.Body)
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK {
						fail("GET "+gid, fmt.Sprintf("%d: %s", resp.StatusCode, body))
					}
				}
			}
			st.ops.Add(2)
			time.Sleep(2 * time.Millisecond)
		}
	}()
	return st, &wg
}

// checkLoad stops the loop and fails the test on any failed request.
func checkLoad(t *testing.T, st *loadStats, stop chan struct{}, wg *sync.WaitGroup) {
	t.Helper()
	close(stop)
	wg.Wait()
	if n := st.fails.Load(); n != 0 {
		t.Fatalf("%d of %d load requests failed during membership changes; last: %v",
			n, st.ops.Load(), st.lastErr.Load())
	}
	if st.ops.Load() == 0 {
		t.Fatal("load loop made no requests")
	}
}

// waitEpoch blocks until every named node reports the epoch and is out
// of any ring transition.
func (tc *testCluster) waitEpoch(epoch uint64, ids ...string) {
	tc.t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for _, id := range ids {
		for {
			stat := tc.node(id).Cluster().Status()
			if stat.Epoch == epoch && !stat.Transitioning {
				break
			}
			if time.Now().After(deadline) {
				tc.t.Fatalf("node %s stuck at epoch %d (want %d): %+v", id, stat.Epoch, epoch, stat)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
}

// TestClusterJoinLeaveUnderLoad is the membership tentpole end to end:
// a fourth node boots as a cluster of itself, joins via POST
// /cluster/join while a mixed PUT/GET load runs against the original
// members, takes over ≈1/4 of the shards with records streamed across
// and evicted from the old owners, every node agrees on the new routing
// — then leaves again, restoring the exact pre-join assignment. The
// load loop must see zero failed requests through both transitions.
func TestClusterJoinLeaveUnderLoad(t *testing.T) {
	tc := newTestCluster(t, []string{"n1", "n2", "n3"}, false)
	text := testProfileText()

	// Seed acked profiles across the 3-node ring.
	const seeded = 40
	for i := 0; i < seeded; i++ {
		putProfile(t, tc.url("n2"), fmt.Sprintf("user-%d", i), text)
	}
	before := make(map[string]string, seeded)
	c := tc.anyNode().Cluster()
	for i := 0; i < seeded; i++ {
		id := fmt.Sprintf("user-%d", i)
		before[id] = c.Owner(id)
	}

	stop := make(chan struct{})
	st, wg := tc.runLoad(stop, []string{"n1", "n2", "n3"})
	time.Sleep(50 * time.Millisecond) // load in flight before the join

	// Join: boot n4 solo, then ask n1 to admit it.
	tc.spawn("n4")
	resp, body := doJSON(t, http.MethodPost, tc.url("n1")+"/cluster/join",
		map[string]any{"id": "n4", "url": tc.peers["n4"]})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("join: %d: %s", resp.StatusCode, body)
	}
	tc.waitEpoch(1, "n1", "n2", "n3", "n4")

	// Every node routes every key identically at the new epoch.
	moved := []string{}
	for i := 0; i < seeded; i++ {
		id := fmt.Sprintf("user-%d", i)
		var owners []string
		for _, nid := range []string{"n1", "n2", "n3", "n4"} {
			resp, body := doJSON(t, http.MethodGet, tc.url(nid)+"/cluster/route/"+id, nil)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("route %s via %s: %d: %s", id, nid, resp.StatusCode, body)
			}
			var r struct {
				Owner string `json:"owner"`
				Epoch uint64 `json:"epoch"`
			}
			if err := json.Unmarshal(body, &r); err != nil {
				t.Fatal(err)
			}
			if r.Epoch != 1 {
				t.Fatalf("route %s via %s: epoch %d, want 1", id, nid, r.Epoch)
			}
			owners = append(owners, r.Owner)
		}
		for _, o := range owners[1:] {
			if o != owners[0] {
				t.Fatalf("route %s: nodes disagree: %v", id, owners)
			}
		}
		if owners[0] == "n4" {
			moved = append(moved, id)
		}
	}
	if len(moved) == 0 {
		t.Fatal("join moved no seeded shards to n4")
	}

	// Moved records were handed off to n4 and evicted from old owners.
	for _, id := range moved {
		if _, ok := tc.node("n4").store.Get(id); !ok {
			t.Fatalf("moved profile %s missing on joiner", id)
		}
		if _, ok := tc.node(before[id]).store.Get(id); ok {
			t.Fatalf("moved profile %s still on old owner %s", id, before[id])
		}
		resp, body := doJSON(t, http.MethodGet, tc.url("n2")+"/profiles/"+id, nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET moved %s: %d: %s", id, resp.StatusCode, body)
		}
		var pj profileJSON
		if err := json.Unmarshal(body, &pj); err != nil {
			t.Fatal(err)
		}
		if pj.Text != text || pj.StaleReplica {
			t.Fatalf("GET moved %s: wrong text or stale marker: %+v", id, pj)
		}
	}

	// Leave: drain n4 back out, again under load.
	resp, body = doJSON(t, http.MethodPost, tc.url("n1")+"/cluster/leave",
		map[string]any{"id": "n4"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("leave: %d: %s", resp.StatusCode, body)
	}
	tc.waitEpoch(2, "n1", "n2", "n3")
	checkLoad(t, st, stop, wg)

	if !tc.node("n4").Cluster().Detached() {
		t.Fatal("left node still considers itself a member")
	}
	// Exact prior assignment restored, records back on the old owners.
	c = tc.node("n1").Cluster()
	for i := 0; i < seeded; i++ {
		id := fmt.Sprintf("user-%d", i)
		if got := c.Owner(id); got != before[id] {
			t.Fatalf("after leave, %s owned by %s, was %s", id, got, before[id])
		}
	}
	for _, id := range moved {
		if _, ok := tc.node(before[id]).store.Get(id); !ok {
			t.Fatalf("profile %s did not return to %s after leave", id, before[id])
		}
	}
}

// TestClusterAntiEntropyRepair: a follower replica that silently
// diverges — one record corrupted in place at the same version, one
// dropped outright — converges back to the owner's truth through the
// background digest-diff loop, with no restart and no new mutations.
func TestClusterAntiEntropyRepair(t *testing.T) {
	tc := newTestClusterCfg(t, []string{"n1", "n2", "n3"}, false, func(c *Config) {
		c.AntiEntropy = 50 * time.Millisecond
	})
	text := testProfileText()
	c := tc.anyNode().Cluster()

	// Two keys with a known owner, replicated to their follower.
	k1 := tc.keyOwnedBy("n1")
	var k2 string
	for i := 0; i < 10000; i++ {
		k := fmt.Sprintf("other-%d", i)
		if c.Owner(k) == "n1" && k != k1 {
			k2 = k
			break
		}
	}
	if k2 == "" {
		t.Fatal("no second key owned by n1")
	}
	putProfile(t, tc.url("n2"), k1, text)
	putProfile(t, tc.url("n2"), k2, text)
	deadline := time.Now().Add(5 * time.Second)
	for _, k := range []string{k1, k2} {
		f := c.Follower(k)
		for {
			if _, ok := tc.node(f).Cluster().Replica().Get(k); ok {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("profile %s never replicated to follower %s", k, f)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}

	// Corrupt k1 in place (same version, different bytes) and drop k2.
	f1, f2 := c.Follower(k1), c.Follower(k2)
	if !tc.node(f1).Cluster().Replica().TamperForTest(k1, func(r *wal.Record) {
		r.Text = "CORRUPTED " + r.Text
	}) {
		t.Fatalf("tamper: %s not in %s replica", k1, f1)
	}
	if !tc.node(f2).Cluster().Replica().DropForTest(k2) {
		t.Fatalf("drop: %s not in %s replica", k2, f2)
	}

	// Anti-entropy repairs both without any new writes.
	deadline = time.Now().Add(10 * time.Second)
	for {
		r1, ok1 := tc.node(f1).Cluster().Replica().Get(k1)
		_, ok2 := tc.node(f2).Cluster().Replica().Get(k2)
		if ok1 && r1.Text == text && ok2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replicas never converged: k1 ok=%v text-restored=%v, k2 ok=%v",
				ok1, ok1 && r1.Text == text, ok2)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestClusterReplicasThreeSurvivesTwoDeaths: with -replicas 3 a
// profile has an owner and two followers; killing the owner AND the
// first follower still leaves reads served (stale_replica) from the
// second follower via any surviving node.
func TestClusterReplicasThreeSurvivesTwoDeaths(t *testing.T) {
	tc := newTestClusterCfg(t, []string{"n1", "n2", "n3", "n4"}, false, func(c *Config) {
		c.Replicas = 3
	})
	c := tc.anyNode().Cluster()
	key := tc.keyOwnedBy("n1")
	fs := c.Followers(key)
	if len(fs) != 2 {
		t.Fatalf("R=3 followers of %s: %v", key, fs)
	}
	text := testProfileText()
	putProfile(t, tc.url("n1"), key, text)

	deadline := time.Now().Add(5 * time.Second)
	for _, f := range fs {
		for {
			if _, ok := tc.node(f).Cluster().Replica().Get(key); ok {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("profile %s never replicated to follower %s", key, f)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}

	tc.stop("n1")
	tc.stop(fs[0])
	survivor := tc.otherThan("n1", fs[0], fs[1])

	// Entering at a node that holds nothing: proxy to dead owner fails,
	// failover walks the successor list past the dead first follower.
	resp, body := doJSON(t, http.MethodGet, tc.url(survivor)+"/profiles/"+key, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("R=3 failover GET via %s: %d: %s", survivor, resp.StatusCode, body)
	}
	var pj profileJSON
	if err := json.Unmarshal(body, &pj); err != nil {
		t.Fatal(err)
	}
	if !pj.StaleReplica || pj.Text != text {
		t.Fatalf("R=3 failover GET: %+v", pj)
	}
}
