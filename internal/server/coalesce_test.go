package server

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cqp"
)

// newTestDaemon builds a daemon without the httptest wrapper, for tests
// that drive runPipeline directly.
func newTestDaemon(t *testing.T, cfg Config) *Server {
	t.Helper()
	s, err := New(cqp.SyntheticMovieDB(300, 1), cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.pool.Close)
	return s
}

// TestCoalesceHerd is the thundering-herd contract: 64 concurrent requests
// sharing one cache key execute the pipeline exactly once, every waiter
// gets the answer, and — with a one-worker, one-slot pool — no follower
// consumes an admission slot (otherwise 62 of them would shed with 429).
func TestCoalesceHerd(t *testing.T) {
	s := newTestDaemon(t, Config{Workers: 1, QueueDepth: 1})
	const herd = 64
	followersIn := func() int64 {
		return s.reg.Counter("coalesce_followers_total", "endpoint", "personalize").Value()
	}
	var runs atomic.Int64
	primary := func(ctx context.Context) (any, error) {
		runs.Add(1)
		// Hold the run open until every other member of the herd has joined
		// as a follower, so no late arrival can start a second flight.
		deadline := time.Now().Add(10 * time.Second)
		for followersIn() < herd-1 {
			if time.Now().After(deadline) {
				return nil, fmt.Errorf("only %d followers joined", followersIn())
			}
			time.Sleep(time.Millisecond)
		}
		return &personalizeResponse{SQL: "coalesced"}, nil
	}

	var wg sync.WaitGroup
	var leaders atomic.Int64
	outcomes := make([]flightOutcome, herd)
	for i := 0; i < herd; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			o, led := s.runPipeline(context.Background(), "personalize", "key", "stale-key", primary)
			if led {
				leaders.Add(1)
			}
			outcomes[i] = o
		}(i)
	}
	wg.Wait()

	if got := runs.Load(); got != 1 {
		t.Fatalf("pipeline ran %d times for %d identical requests, want exactly 1", got, herd)
	}
	if got := leaders.Load(); got != 1 {
		t.Fatalf("%d requests led the flight, want exactly 1", got)
	}
	for i, o := range outcomes {
		if o.admitErr != nil || o.perr != nil {
			t.Fatalf("request %d: admitErr=%v perr=%v, want clean coalesced answer", i, o.admitErr, o.perr)
		}
		resp, ok := o.out.(*personalizeResponse)
		if !ok || resp.SQL != "coalesced" {
			t.Fatalf("request %d: out = %#v, want the leader's response", i, o.out)
		}
	}
	if got := s.reg.Counter("coalesce_leaders_total", "endpoint", "personalize").Value(); got != 1 {
		t.Errorf("coalesce_leaders_total = %d, want 1", got)
	}
	if got := followersIn(); got != herd-1 {
		t.Errorf("coalesce_followers_total = %d, want %d", got, herd-1)
	}
	if got := s.reg.Gauge("coalesce_inflight").Value(); got != 0 {
		t.Errorf("coalesce_inflight = %d after drain, want 0", got)
	}
}

// TestCoalesceFollowerHonorsOwnContext: a follower whose context dies while
// waiting detaches with its own error and leaves the leader running to
// completion.
func TestCoalesceFollowerHonorsOwnContext(t *testing.T) {
	s := newTestDaemon(t, Config{})
	gate := make(chan struct{})
	started := make(chan struct{})
	primary := func(ctx context.Context) (any, error) {
		close(started)
		<-gate
		return &personalizeResponse{SQL: "late"}, nil
	}

	leaderCh := make(chan flightOutcome, 1)
	go func() {
		o, _ := s.runPipeline(context.Background(), "personalize", "key", "stale-key", primary)
		leaderCh <- o
	}()
	select {
	case <-started:
	case <-time.After(5 * time.Second):
		t.Fatal("leader never started")
	}

	fctx, fcancel := context.WithCancel(context.Background())
	followerCh := make(chan flightOutcome, 1)
	var followerLed atomic.Bool
	go func() {
		o, led := s.runPipeline(fctx, "personalize", "key", "stale-key", primary)
		followerLed.Store(led)
		followerCh <- o
	}()
	waitFor(t, func() bool {
		return s.reg.Counter("coalesce_followers_total", "endpoint", "personalize").Value() == 1
	})

	fcancel()
	fo := <-followerCh
	if !errors.Is(fo.perr, context.Canceled) {
		t.Fatalf("canceled follower got perr=%v, want its own context.Canceled", fo.perr)
	}
	if followerLed.Load() {
		t.Fatal("a detaching follower must not report leadership")
	}

	close(gate)
	lo := <-leaderCh
	if lo.perr != nil || lo.admitErr != nil {
		t.Fatalf("leader failed after follower detached: perr=%v admitErr=%v", lo.perr, lo.admitErr)
	}
	if resp := lo.out.(*personalizeResponse); resp.SQL != "late" {
		t.Fatalf("leader out = %+v, want its own run's answer", resp)
	}
}

// TestCoalesceFollowerRetriesAfterLeaderDeath: when the leader dies of its
// own context, a follower with a live context must not inherit that error —
// it retries, becomes the new leader, and runs the pipeline itself.
func TestCoalesceFollowerRetriesAfterLeaderDeath(t *testing.T) {
	s := newTestDaemon(t, Config{})
	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	leaderStarted := make(chan struct{})
	var runs atomic.Int64
	primary := func(ctx context.Context) (any, error) {
		if runs.Add(1) == 1 {
			close(leaderStarted)
			<-ctx.Done()
			return nil, ctx.Err()
		}
		return &personalizeResponse{SQL: "second run"}, nil
	}

	leaderCh := make(chan flightOutcome, 1)
	go func() {
		o, _ := s.runPipeline(leaderCtx, "personalize", "key", "stale-key", primary)
		leaderCh <- o
	}()
	select {
	case <-leaderStarted:
	case <-time.After(5 * time.Second):
		t.Fatal("leader never started")
	}

	type res struct {
		o   flightOutcome
		led bool
	}
	followerCh := make(chan res, 1)
	go func() {
		o, led := s.runPipeline(context.Background(), "personalize", "key", "stale-key", primary)
		followerCh <- res{o, led}
	}()
	waitFor(t, func() bool {
		return s.reg.Counter("coalesce_followers_total", "endpoint", "personalize").Value() == 1
	})

	cancelLeader()
	lo := <-leaderCh
	// The cancellation surfaces as perr (pipeline observed it) or admitErr
	// (Do's caller-side wait observed it first); both are leader-specific.
	if !errors.Is(lo.perr, context.Canceled) && !errors.Is(lo.admitErr, context.Canceled) {
		t.Fatalf("leader outcome = %+v, want context.Canceled", lo)
	}
	fr := <-followerCh
	if fr.o.perr != nil || fr.o.admitErr != nil {
		t.Fatalf("retrying follower failed: perr=%v admitErr=%v", fr.o.perr, fr.o.admitErr)
	}
	if resp := fr.o.out.(*personalizeResponse); resp.SQL != "second run" {
		t.Fatalf("follower out = %+v, want its own re-run's answer", resp)
	}
	if !fr.led {
		t.Fatal("the retrying follower should have become the new leader")
	}
	if got := runs.Load(); got != 2 {
		t.Fatalf("pipeline ran %d times, want 2 (dead leader + retry)", got)
	}
}

// TestCoalesceDisabled: with NoCoalesce set, identical concurrent requests
// each pay their own run and the flight table stays untouched.
func TestCoalesceDisabled(t *testing.T) {
	s := newTestDaemon(t, Config{NoCoalesce: true, Workers: 4})
	var runs atomic.Int64
	release := make(chan struct{})
	primary := func(ctx context.Context) (any, error) {
		runs.Add(1)
		<-release
		return &personalizeResponse{}, nil
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, led := s.runPipeline(context.Background(), "personalize", "key", "stale-key", primary); !led {
				t.Error("without coalescing every request leads its own run")
			}
		}()
	}
	waitFor(t, func() bool { return runs.Load() == 4 })
	close(release)
	wg.Wait()
	if got := s.reg.Counter("coalesce_leaders_total", "endpoint", "personalize").Value(); got != 0 {
		t.Errorf("coalesce_leaders_total = %d with coalescing disabled, want 0", got)
	}
}
