package server

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"net/http"
	"sync"
	"time"

	"cqp"
	"cqp/internal/exec"
	"cqp/internal/obs"
	"cqp/internal/resilience"
)

// batchRequest is the body of POST /personalize/batch: a list of
// /personalize-shaped items sharing one deadline. Per-item trace, timeout
// and limit fields are ignored — the batch is one request with one
// deadline, and traces don't compose across coalesced runs. Execute makes
// every item run its personalized query too (the /execute shape), under
// one scan share: each base relation is physically read once for the whole
// batch. Limit caps rows per executed item (default Config.MaxRows).
type batchRequest struct {
	Items     []personalizeRequest `json:"items"`
	TimeoutMS int                  `json:"timeout_ms"`
	Execute   bool                 `json:"execute"`
	Limit     int                  `json:"limit"`
}

// batchItemJSON is one item's outcome: a personalize response (plus the
// executed rows in execute mode) or a per-item error envelope, never both.
// Duplicate marks items answered by an identical earlier item's run.
type batchItemJSON struct {
	*personalizeResponse
	Rows       []rowJSON  `json:"rows,omitempty"`
	RowCount   int        `json:"row_count,omitempty"`
	TotalRows  int        `json:"total_rows,omitempty"`
	BlockReads int64      `json:"block_reads,omitempty"`
	ExecMS     float64    `json:"exec_ms,omitempty"`
	Duplicate  bool       `json:"duplicate,omitempty"`
	Error      *errorBody `json:"error,omitempty"`
}

// batchResponse is the body of a /personalize/batch answer. Results is
// aligned index-for-index with the request's items.
type batchResponse struct {
	Results []batchItemJSON `json:"results"`
	// Distinct counts the pipeline-distinct items; Duplicates counts the
	// items answered by another item's run.
	Distinct   int `json:"distinct"`
	Duplicates int `json:"duplicates"`
	// DegradedCounts breaks the batch down by ladder rung: how many items
	// (duplicates included) were answered at each non-full-fidelity rung.
	// The batch's flight record carries the worst rung; the full spectrum
	// lives here.
	DegradedCounts map[string]int `json:"degraded_counts,omitempty"`
	// SharedScans / PhysicalScans report the batch's scan share in execute
	// mode: opens answered from an already-materialized pass, and relations
	// physically read (once each).
	SharedScans   int64 `json:"shared_scans,omitempty"`
	PhysicalScans int64 `json:"physical_scans,omitempty"`
}

// batchUnit is one parsed, pipeline-distinct batch item.
type batchUnit struct {
	idx       int
	q         *cqp.Query
	prob      cqp.Problem
	prof      *cqp.Profile
	version   uint64
	cacheable bool
	// stale marks a profile resolved from a failover replica; the item's
	// answer is marked stale_replica and never cached.
	stale bool
}

// itemError builds the per-item error envelope for a status code.
func itemError(code int, err error) *errorBody {
	class := classFor(code)
	if errors.Is(err, resilience.ErrExhausted) {
		class = "degraded_unavailable"
	}
	return &errorBody{Class: class, Message: err.Error()}
}

// admitStatus maps an admission error onto a status code — the non-HTTP
// sibling of Server.admit, for per-item batch errors.
func admitStatus(err error) int {
	switch {
	case errors.Is(err, ErrSaturated):
		return http.StatusTooManyRequests
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	default:
		return http.StatusServiceUnavailable
	}
}

// batchIdentity is the dedup key of one item: query fingerprint, profile
// identity (stored id@version, or a hash of the inline text), problem, and
// every solver knob. Two items with equal identities would run the exact
// same pipeline, so one run answers both. NoCache is part of the identity:
// an item that demanded a fresh run must not be answered by one that may
// come from cache. Execute mode (and its row limit) is part of the
// identity too — a personalize-only run cannot answer an executed item.
func batchIdentity(q *cqp.Query, item personalizeRequest, version uint64, prob cqp.Problem, execute bool, limit int) string {
	prof := item.ProfileID
	if prof == "" {
		h := fnv.New64a()
		h.Write([]byte(item.Profile))
		prof = fmt.Sprintf("inline:%016x", h.Sum64())
	}
	return fmt.Sprintf("%s|%s@%d|%s|a=%s k=%d b=%d any=%v merge=%v nc=%v exec=%v lim=%d",
		q.Fingerprint(), prof, version, prob,
		item.Algorithm, item.K, item.Budget, item.AnyMatch, item.Merge, item.NoCache,
		execute, limit)
}

// rungSeverity orders degradation rungs for the batch's worst-rung
// aggregate; higher is worse. Unknown rungs rank just below unavailable so
// a new rung is never silently treated as full fidelity.
func rungSeverity(rung string) int {
	switch rung {
	case "":
		return 0
	case degradedStaleReplica:
		return 1
	case "stale":
		return 2
	case "heuristic":
		return 3
	case "tight-cmax":
		return 4
	case "unavailable":
		return 6
	default:
		return 5
	}
}

// handleBatch serves POST /personalize/batch — the list-page shape: many
// personalizations in one request. Items are deduplicated by identity
// (query + profile + problem + options), distinct items run concurrently
// through the same admission pool, cache, coalescing and degradation
// machinery as /personalize, and results come back in item order with
// per-item errors: one malformed or infeasible item fails alone. With
// "execute": true every item also runs its personalized query, all items
// sharing one physical scan per base relation.
//
// Degradation attribution is aggregated per batch: each unit reports its
// rung, the batch's flight record gets the worst one (concurrent units
// used to each SetRung on the one shared request record, leaving an
// arbitrary last writer), and the response carries per-rung counts.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req batchRequest
	if err := s.decodeJSON(w, r, &req); err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	if len(req.Items) == 0 {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("server: batch needs at least one item"))
		return
	}
	if len(req.Items) > s.cfg.BatchMaxItems {
		s.fail(w, http.StatusBadRequest,
			fmt.Errorf("server: batch of %d items exceeds the %d-item cap", len(req.Items), s.cfg.BatchMaxItems))
		return
	}
	rec := obs.RequestFromContext(r.Context())
	lp := startLaps(rec)
	ctx, cancel, tr := s.requestContext(r, req.TimeoutMS, "batch")
	defer cancel()
	limit := req.Limit
	if limit <= 0 {
		limit = s.cfg.MaxRows
	}
	var share *exec.ScanShare
	if req.Execute && !s.cfg.NoScanShare {
		share = exec.NewScanShare(0)
		ctx = exec.WithScanShare(ctx, share)
	}

	results := make([]batchItemJSON, len(req.Items))
	rungs := make([]string, len(req.Items))
	leaderOf := make(map[string]int, len(req.Items))
	followers := make(map[int][]int)
	var units []batchUnit
	for i, item := range req.Items {
		q, err := cqp.ParseQuery(s.db.Schema(), item.SQL)
		if err != nil {
			results[i].Error = itemError(http.StatusBadRequest, err)
			continue
		}
		prob, err := item.Problem.build()
		if err != nil {
			results[i].Error = itemError(http.StatusBadRequest, err)
			continue
		}
		prof, version, cacheable, stale, code, err := s.resolveProfile(r, item.ProfileID, item.Profile)
		if err != nil {
			results[i].Error = itemError(code, err)
			continue
		}
		id := batchIdentity(q, item, version, prob, req.Execute, limit)
		if li, ok := leaderOf[id]; ok {
			followers[li] = append(followers[li], i)
			continue
		}
		leaderOf[id] = i
		units = append(units, batchUnit{
			idx: i, q: q, prob: prob, prof: prof, version: version,
			cacheable: cacheable, stale: stale,
		})
	}
	lp.lap(obs.PhaseParse)

	var wg sync.WaitGroup
	for _, u := range units {
		wg.Add(1)
		go func(u batchUnit) {
			defer wg.Done()
			results[u.idx], rungs[u.idx] = s.personalizeUnit(ctx, u, req.Items[u.idx], req.Execute, limit)
		}(u)
	}
	wg.Wait()

	duplicates := 0
	for li, dups := range followers {
		for _, i := range dups {
			results[i] = results[li]
			results[i].Duplicate = true
			rungs[i] = rungs[li]
			duplicates++
		}
	}
	worst := ""
	var counts map[string]int
	for _, rung := range rungs {
		if rung == "" {
			continue
		}
		if counts == nil {
			counts = make(map[string]int)
		}
		counts[rung]++
		if rungSeverity(rung) > rungSeverity(worst) {
			worst = rung
		}
	}
	// One deterministic write after every unit finished: the record shows
	// the batch's worst rung, whatever order the units' ladders ran in.
	rec.SetRung(worst)
	resp := batchResponse{
		Results: results, Distinct: len(units), Duplicates: duplicates,
		DegradedCounts: counts,
	}
	if share != nil {
		resp.PhysicalScans, resp.SharedScans = share.Stats()
		s.reg.Counter("server_batch_physical_scans_total").Add(resp.PhysicalScans)
		s.reg.Counter("server_batch_shared_scans_total").Add(resp.SharedScans)
	}
	tr.End()
	writeJSON(w, http.StatusOK, resp)
}

// personalizeUnit runs one batch item through the /personalize machinery
// (or /execute machinery in execute mode): warm cache path, then the
// coalesced, admission-controlled, ladder-backed pipeline. Identical
// concurrent work — inside this batch or from any other request — shares
// one run via the flight table; executed units share the endpoint's result
// cache with singleton /execute requests. The second return is the item's
// degradation rung for the batch-level aggregate; the unit itself never
// writes the shared request record.
func (s *Server) personalizeUnit(ctx context.Context, u batchUnit, item personalizeRequest, execute bool, limit int) (batchItemJSON, string) {
	endpoint := "personalize"
	if execute {
		endpoint = "execute"
	}
	key, staleKey := "", ""
	if u.cacheable && !item.NoCache {
		extra := fmt.Sprintf("%s|a=%s k=%d b=%d any=%v merge=%v",
			u.prob, item.Algorithm, item.K, item.Budget, item.AnyMatch, item.Merge)
		if execute {
			extra += fmt.Sprintf(" lim=%d", limit)
		}
		key = s.cacheKey(endpoint, u.q, item.ProfileID, u.version, extra)
		staleKey = s.staleKey(endpoint, u.q, item.ProfileID, extra)
		if v, ok := s.cacheGet(key); ok {
			out := itemFromOutcome(v, execute)
			out.Cached = true
			return out, ""
		}
	}
	build := func(prob cqp.Problem, alg string) func(context.Context) (any, error) {
		return func(ctx context.Context) (any, error) {
			res, err := s.p.PersonalizeContext(ctx, u.q, u.prof, prob,
				buildOpts(alg, item.K, item.Budget, item.AnyMatch, item.Merge)...)
			if err != nil {
				return nil, err
			}
			if !execute {
				return personalizeResponseFrom(res, item.ProfileID, u.version), nil
			}
			rows, err := res.ExecuteContext(ctx)
			if err != nil {
				return nil, err
			}
			return executeResponseFrom(res, rows, item.ProfileID, u.version, limit), nil
		}
	}
	rungs := []resilience.Step{s.step("heuristic", build(u.prob, "D_HeurDoi"))}
	if tp, ok := tightenedProblem(u.prob, s.cfg.TightenFactor); ok {
		rungs = append(rungs, s.step("tight-cmax", build(tp, "D_HeurDoi")))
	}
	o, leader := s.runPipeline(ctx, endpoint, key, staleKey, build(u.prob, item.Algorithm), rungs...)
	if o.admitErr != nil {
		if v, ok := s.cache.GetStale(staleKey); ok {
			s.reg.Counter("server_degraded_total", "endpoint", endpoint, "rung", "stale").Inc()
			out := itemFromOutcome(markStale(v), execute)
			return out, "stale"
		}
		return batchItemJSON{Error: itemError(admitStatus(o.admitErr), o.admitErr)}, ""
	}
	if o.perr != nil {
		rung := ""
		if errors.Is(o.perr, resilience.ErrExhausted) {
			rung = "unavailable"
		}
		return batchItemJSON{Error: itemError(pipelineStatus(o.perr), o.perr)}, rung
	}
	if o.out == nil {
		return batchItemJSON{Error: itemError(http.StatusGatewayTimeout, errDeadlineSkipped)}, ""
	}
	out := itemFromOutcome(o.out, execute)
	out.Degraded = o.degraded
	if u.stale && out.Degraded == "" {
		out.Degraded = degradedStaleReplica
	}
	if leader && o.degraded == "" {
		s.cachePut(key, staleKey, item.ProfileID, o.out)
	} else if o.degraded == "stale" {
		out.Cached = true
	}
	return out, out.Degraded
}

// executeResponseFrom assembles the /execute response shape from a
// personalization and its executed rows, truncated to limit — shared by
// handleExecute's build closure and execute-mode batch units so the two
// paths can never drift (they share cache entries).
func executeResponseFrom(res *cqp.Result, rows *exec.UnionResult, profileID string, version uint64, limit int) *executeResponse {
	er := &executeResponse{
		personalizeResponse: *personalizeResponseFrom(res, profileID, version),
		TotalRows:           len(rows.Rows),
		BlockReads:          rows.BlockReads,
		ExecMS:              float64(rows.Elapsed) / float64(time.Millisecond),
	}
	for i, rr := range rows.Rows {
		if i >= limit {
			break
		}
		vals := make([]string, len(rr.Key))
		for j, v := range rr.Key {
			vals[j] = v.String()
		}
		er.Rows = append(er.Rows, rowJSON{Values: vals, Doi: rr.Doi, Matched: len(rr.Matched)})
	}
	er.RowCount = len(er.Rows)
	return er
}

// itemFromOutcome shapes one unit's pipeline outcome (a cached or fresh
// *personalizeResponse / *executeResponse, or a markStale copy of either)
// into the batch item envelope, copying the embedded response so the
// shared cached value is never aliased by a per-item mutation.
func itemFromOutcome(v any, execute bool) batchItemJSON {
	if execute {
		var er executeResponse
		switch t := v.(type) {
		case *executeResponse:
			er = *t
		case executeResponse:
			er = t
		}
		pr := er.personalizeResponse
		return batchItemJSON{
			personalizeResponse: &pr,
			Rows:                er.Rows,
			RowCount:            er.RowCount,
			TotalRows:           er.TotalRows,
			BlockReads:          er.BlockReads,
			ExecMS:              er.ExecMS,
		}
	}
	var pr personalizeResponse
	switch t := v.(type) {
	case *personalizeResponse:
		pr = *t
	case personalizeResponse:
		pr = t
	}
	return batchItemJSON{personalizeResponse: &pr}
}
