package server

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"net/http"
	"sync"

	"cqp"
	"cqp/internal/obs"
	"cqp/internal/resilience"
)

// batchRequest is the body of POST /personalize/batch: a list of
// /personalize-shaped items sharing one deadline. Per-item trace, timeout
// and limit fields are ignored — the batch is one request with one
// deadline, and traces don't compose across coalesced runs.
type batchRequest struct {
	Items     []personalizeRequest `json:"items"`
	TimeoutMS int                  `json:"timeout_ms"`
}

// batchItemJSON is one item's outcome: a personalize response or a
// per-item error envelope, never both. Duplicate marks items answered by
// an identical earlier item's run.
type batchItemJSON struct {
	*personalizeResponse
	Duplicate bool       `json:"duplicate,omitempty"`
	Error     *errorBody `json:"error,omitempty"`
}

// batchResponse is the body of a /personalize/batch answer. Results is
// aligned index-for-index with the request's items.
type batchResponse struct {
	Results []batchItemJSON `json:"results"`
	// Distinct counts the pipeline-distinct items; Duplicates counts the
	// items answered by another item's run.
	Distinct   int `json:"distinct"`
	Duplicates int `json:"duplicates"`
}

// batchUnit is one parsed, pipeline-distinct batch item.
type batchUnit struct {
	idx       int
	q         *cqp.Query
	prob      cqp.Problem
	prof      *cqp.Profile
	version   uint64
	cacheable bool
	// stale marks a profile resolved from a failover replica; the item's
	// answer is marked stale_replica and never cached.
	stale bool
}

// itemError builds the per-item error envelope for a status code.
func itemError(code int, err error) *errorBody {
	class := classFor(code)
	if errors.Is(err, resilience.ErrExhausted) {
		class = "degraded_unavailable"
	}
	return &errorBody{Class: class, Message: err.Error()}
}

// admitStatus maps an admission error onto a status code — the non-HTTP
// sibling of Server.admit, for per-item batch errors.
func admitStatus(err error) int {
	switch {
	case errors.Is(err, ErrSaturated):
		return http.StatusTooManyRequests
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	default:
		return http.StatusServiceUnavailable
	}
}

// batchIdentity is the dedup key of one item: query fingerprint, profile
// identity (stored id@version, or a hash of the inline text), problem, and
// every solver knob. Two items with equal identities would run the exact
// same pipeline, so one run answers both. NoCache is part of the identity:
// an item that demanded a fresh run must not be answered by one that may
// come from cache.
func batchIdentity(q *cqp.Query, item personalizeRequest, version uint64, prob cqp.Problem) string {
	prof := item.ProfileID
	if prof == "" {
		h := fnv.New64a()
		h.Write([]byte(item.Profile))
		prof = fmt.Sprintf("inline:%016x", h.Sum64())
	}
	return fmt.Sprintf("%s|%s@%d|%s|a=%s k=%d b=%d any=%v merge=%v nc=%v",
		q.Fingerprint(), prof, version, prob,
		item.Algorithm, item.K, item.Budget, item.AnyMatch, item.Merge, item.NoCache)
}

// handleBatch serves POST /personalize/batch — the list-page shape: many
// personalizations in one request. Items are deduplicated by identity
// (query + profile + problem + options), distinct items run concurrently
// through the same admission pool, cache, coalescing and degradation
// machinery as /personalize, and results come back in item order with
// per-item errors: one malformed or infeasible item fails alone.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req batchRequest
	if err := s.decodeJSON(w, r, &req); err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	if len(req.Items) == 0 {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("server: batch needs at least one item"))
		return
	}
	if len(req.Items) > s.cfg.BatchMaxItems {
		s.fail(w, http.StatusBadRequest,
			fmt.Errorf("server: batch of %d items exceeds the %d-item cap", len(req.Items), s.cfg.BatchMaxItems))
		return
	}
	rec := obs.RequestFromContext(r.Context())
	lp := startLaps(rec)
	ctx, cancel, tr := s.requestContext(r, req.TimeoutMS, "batch")
	defer cancel()

	results := make([]batchItemJSON, len(req.Items))
	leaderOf := make(map[string]int, len(req.Items))
	followers := make(map[int][]int)
	var units []batchUnit
	for i, item := range req.Items {
		q, err := cqp.ParseQuery(s.db.Schema(), item.SQL)
		if err != nil {
			results[i].Error = itemError(http.StatusBadRequest, err)
			continue
		}
		prob, err := item.Problem.build()
		if err != nil {
			results[i].Error = itemError(http.StatusBadRequest, err)
			continue
		}
		prof, version, cacheable, stale, code, err := s.resolveProfile(r, item.ProfileID, item.Profile)
		if err != nil {
			results[i].Error = itemError(code, err)
			continue
		}
		id := batchIdentity(q, item, version, prob)
		if li, ok := leaderOf[id]; ok {
			followers[li] = append(followers[li], i)
			continue
		}
		leaderOf[id] = i
		units = append(units, batchUnit{
			idx: i, q: q, prob: prob, prof: prof, version: version,
			cacheable: cacheable, stale: stale,
		})
	}
	lp.lap(obs.PhaseParse)

	var wg sync.WaitGroup
	for _, u := range units {
		wg.Add(1)
		go func(u batchUnit) {
			defer wg.Done()
			results[u.idx] = s.personalizeUnit(ctx, u, req.Items[u.idx])
		}(u)
	}
	wg.Wait()

	duplicates := 0
	for li, dups := range followers {
		for _, i := range dups {
			results[i] = results[li]
			results[i].Duplicate = true
			duplicates++
		}
	}
	tr.End()
	writeJSON(w, http.StatusOK, batchResponse{
		Results: results, Distinct: len(units), Duplicates: duplicates,
	})
}

// personalizeUnit runs one batch item through the /personalize machinery:
// warm cache path, then the coalesced, admission-controlled, ladder-backed
// pipeline. Identical concurrent work — inside this batch or from any
// other request — shares one run via the flight table.
func (s *Server) personalizeUnit(ctx context.Context, u batchUnit, item personalizeRequest) batchItemJSON {
	key, staleKey := "", ""
	if u.cacheable && !item.NoCache {
		extra := fmt.Sprintf("%s|a=%s k=%d b=%d any=%v merge=%v",
			u.prob, item.Algorithm, item.K, item.Budget, item.AnyMatch, item.Merge)
		key = s.cacheKey("personalize", u.q, item.ProfileID, u.version, extra)
		staleKey = s.staleKey("personalize", u.q, item.ProfileID, extra)
		if v, ok := s.cacheGet(key); ok {
			resp := *v.(*personalizeResponse)
			resp.Cached = true
			return batchItemJSON{personalizeResponse: &resp}
		}
	}
	build := func(prob cqp.Problem, alg string) func(context.Context) (any, error) {
		return func(ctx context.Context) (any, error) {
			res, err := s.p.PersonalizeContext(ctx, u.q, u.prof, prob,
				buildOpts(alg, item.K, item.Budget, item.AnyMatch, item.Merge)...)
			if err != nil {
				return nil, err
			}
			return personalizeResponseFrom(res, item.ProfileID, u.version), nil
		}
	}
	rungs := []resilience.Step{s.step("heuristic", build(u.prob, "D_HeurDoi"))}
	if tp, ok := tightenedProblem(u.prob, s.cfg.TightenFactor); ok {
		rungs = append(rungs, s.step("tight-cmax", build(tp, "D_HeurDoi")))
	}
	o, leader := s.runPipeline(ctx, "personalize", key, staleKey, build(u.prob, item.Algorithm), rungs...)
	if o.degraded != "" {
		obs.RequestFromContext(ctx).SetRung(o.degraded)
	}
	if o.admitErr != nil {
		if v, ok := s.cache.GetStale(staleKey); ok {
			s.reg.Counter("server_degraded_total", "endpoint", "personalize", "rung", "stale").Inc()
			obs.RequestFromContext(ctx).SetRung("stale")
			resp := markStale(v).(personalizeResponse)
			return batchItemJSON{personalizeResponse: &resp}
		}
		return batchItemJSON{Error: itemError(admitStatus(o.admitErr), o.admitErr)}
	}
	if o.perr != nil {
		return batchItemJSON{Error: itemError(pipelineStatus(o.perr), o.perr)}
	}
	if o.out == nil {
		return batchItemJSON{Error: itemError(http.StatusGatewayTimeout, errDeadlineSkipped)}
	}
	resp := *o.out.(*personalizeResponse)
	resp.Degraded = o.degraded
	if u.stale && resp.Degraded == "" {
		resp.Degraded = degradedStaleReplica
	}
	if leader && o.degraded == "" {
		s.cachePut(key, staleKey, item.ProfileID, o.out)
	} else if o.degraded == "stale" {
		resp.Cached = true
	}
	return batchItemJSON{personalizeResponse: &resp}
}
