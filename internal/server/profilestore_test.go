package server

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"testing"

	"cqp"
)

const profText = `doi(GENRE.genre = 'musical') = 0.5
doi(MOVIE.mid = GENRE.mid) = 0.9
`

func newStore() *ProfileStore { return NewProfileStore(cqp.MovieSchema()) }

func TestProfileStoreCRUD(t *testing.T) {
	ps := newStore()
	if _, ok := ps.Get("u1"); ok {
		t.Fatal("empty store returned a profile")
	}
	sp, err := ps.Put("u1", profText)
	if err != nil {
		t.Fatal(err)
	}
	if sp.Version != 1 || sp.Profile.Len() != 2 {
		t.Fatalf("stored version %d, %d prefs; want 1, 2", sp.Version, sp.Profile.Len())
	}
	got, ok := ps.Get("u1")
	if !ok || got.Text != profText {
		t.Fatalf("Get returned %+v, %v", got, ok)
	}
	if n := ps.Len(); n != 1 {
		t.Fatalf("Len = %d, want 1", n)
	}
	list := ps.List()
	if len(list) != 1 || list[0].ID != "u1" || list[0].Preferences != 2 {
		t.Fatalf("List = %+v", list)
	}
	if ok, err := ps.Delete("u1"); err != nil || !ok {
		t.Fatalf("Delete = %v, %v; want true, nil", ok, err)
	}
	if ok, _ := ps.Delete("u1"); ok {
		t.Fatal("second Delete reported present")
	}
	if _, ok := ps.Get("u1"); ok {
		t.Fatal("deleted profile still present")
	}
}

func TestProfileStoreRejectsBadInput(t *testing.T) {
	ps := newStore()
	if _, err := ps.Put("", profText); err == nil {
		t.Error("empty id accepted")
	}
	if _, err := ps.Put("u1", "doi(GENRE.genre = 'musical') = 7"); err == nil {
		t.Error("out-of-range doi accepted")
	}
	if _, err := ps.Put("u1", "doi(NOPE.x = 1) = 0.5"); err == nil {
		t.Error("unknown relation accepted")
	}
}

// TestProfileStoreVersionsNeverRepeat checks the store-global clock: a
// replaced or deleted-then-recreated ID always gets a fresh version, so
// cache keys built from ID@version can never alias an old entry.
func TestProfileStoreVersionsNeverRepeat(t *testing.T) {
	ps := newStore()
	seen := map[uint64]bool{}
	for i := 0; i < 3; i++ {
		sp, err := ps.Put("u1", profText)
		if err != nil {
			t.Fatal(err)
		}
		if seen[sp.Version] {
			t.Fatalf("version %d issued twice", sp.Version)
		}
		seen[sp.Version] = true
		if _, err := ps.Delete("u1"); err != nil {
			t.Fatal(err)
		}
	}
	sp, _ := ps.Put("u2", profText)
	if seen[sp.Version] {
		t.Fatalf("version %d reused across IDs", sp.Version)
	}
}

// TestShardMatchesFNV pins the inlined FNV-1a loop to the hash/fnv
// reference implementation, so the inline-for-speed rewrite can never
// silently remap IDs to different stripes than the documented hash.
func TestShardMatchesFNV(t *testing.T) {
	ps := newStore()
	for _, id := range []string{"", "a", "user-1", "user-12345", "ünicode-⌘", "long-" + fmt.Sprint(1<<20)} {
		h := fnv.New32a()
		h.Write([]byte(id))
		want := &ps.shards[h.Sum32()%profileShards]
		if got := ps.shard(id); got != want {
			t.Errorf("shard(%q) = stripe %p, fnv reference %p", id, got, want)
		}
	}
}

// TestShardAllocFree: shard sits on the hot path of every profile lookup;
// the inlined hash must not allocate (hash/fnv's New32a allocates its
// state every call, which is exactly what the rewrite removed).
func TestShardAllocFree(t *testing.T) {
	ps := newStore()
	if n := testing.AllocsPerRun(200, func() { ps.shard("user-12345") }); n != 0 {
		t.Fatalf("shard allocates %v objects/op, want 0", n)
	}
}

// TestProfileStoreListSorted: List (and therefore GET /profiles) returns
// entries sorted by ID ascending regardless of insertion or shard order.
func TestProfileStoreListSorted(t *testing.T) {
	ps := newStore()
	ids := []string{"zeta", "alpha", "mu", "beta", "omega", "kappa"}
	for _, id := range ids {
		if _, err := ps.Put(id, profText); err != nil {
			t.Fatal(err)
		}
	}
	list := ps.List()
	if len(list) != len(ids) {
		t.Fatalf("List returned %d entries, want %d", len(list), len(ids))
	}
	if !sort.SliceIsSorted(list, func(i, j int) bool { return list[i].ID < list[j].ID }) {
		t.Fatalf("List not sorted by ID: %+v", list)
	}
}

func TestProfileStoreConcurrent(t *testing.T) {
	ps := newStore()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			id := fmt.Sprintf("user-%d", g%4)
			for i := 0; i < 50; i++ {
				if _, err := ps.Put(id, profText); err != nil {
					t.Error(err)
					return
				}
				ps.Get(id)
				ps.List()
				if i%10 == 9 {
					if _, err := ps.Delete(id); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}
