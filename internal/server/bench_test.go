package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"cqp"
	"cqp/internal/fault"
)

// newBenchServer builds a daemon over the synthetic database with a stored
// profile, bypassing the HTTP listener: benchmarks drive the mux directly so
// they measure the serve path (decode, admission, resilience wrapping,
// pipeline, encode), not the TCP stack.
func newBenchServer(b *testing.B) (*Server, http.Handler) {
	b.Helper()
	db := cqp.SyntheticMovieDB(300, 1)
	s, err := New(db, Config{})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(s.pool.Close)
	if _, err := s.store.Put("alice", cqp.SyntheticProfile(40, 2).String()); err != nil {
		b.Fatal(err)
	}
	return s, s.Handler()
}

func serveBench(b *testing.B, h http.Handler, path string, body []byte) {
	b.Helper()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(body))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("%s: %d: %s", path, rec.Code, rec.Body.Bytes())
		}
	}
}

// BenchmarkServePersonalize is the disarmed-overhead yardstick: the full
// pipeline serve path with no fault plan armed, so every Inject site costs
// one atomic load and the retry/breaker/ladder wrapping runs its success
// fast path. Compare against a build without the resilience layer to bound
// the regression (acceptance: ≤ 2%).
func BenchmarkServePersonalize(b *testing.B) {
	if fault.Enabled() {
		b.Fatal("a fault plan is armed; the benchmark measures the disarmed path")
	}
	_, h := newBenchServer(b)
	body, err := json.Marshal(map[string]any{
		"sql": testSQL, "profile_id": "alice", "no_cache": true,
		"problem": map[string]any{"number": 2, "cmax_ms": 10000},
	})
	if err != nil {
		b.Fatal(err)
	}
	serveBench(b, h, "/personalize", body)
}

// BenchmarkServeExecute exercises the storage-heavy serve path (pipeline +
// union execution), the one with the most Inject sites per request.
func BenchmarkServeExecute(b *testing.B) {
	_, h := newBenchServer(b)
	body, err := json.Marshal(map[string]any{
		"sql": testSQL, "profile_id": "alice", "no_cache": true, "limit": 5,
		"problem": map[string]any{"number": 2, "cmax_ms": 10000},
	})
	if err != nil {
		b.Fatal(err)
	}
	serveBench(b, h, "/execute", body)
}

// BenchmarkProfileStoreShard measures the stripe-routing hash on the
// profile-lookup hot path. The FNV-1a loop is inlined precisely so this
// reports 0 allocs/op; hash/fnv.New32a costs one allocation per call.
func BenchmarkProfileStoreShard(b *testing.B) {
	ps := NewProfileStore(cqp.MovieSchema())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ps.shard("user-12345")
	}
}

// BenchmarkServePersonalizeCacheHit is the warm path: decode, cache lookup
// (one Inject site), encode.
func BenchmarkServePersonalizeCacheHit(b *testing.B) {
	_, h := newBenchServer(b)
	body, err := json.Marshal(map[string]any{
		"sql": testSQL, "profile_id": "alice",
		"problem": map[string]any{"number": 2, "cmax_ms": 10000},
	})
	if err != nil {
		b.Fatal(err)
	}
	// Warm the exact key.
	req := httptest.NewRequest(http.MethodPost, "/personalize", bytes.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		b.Fatalf("warm: %d: %s", rec.Code, rec.Body.Bytes())
	}
	serveBench(b, h, "/personalize", body)
}
