package server

import (
	"context"
	"errors"
	"sync"
	"time"

	"cqp/internal/obs"
	"cqp/internal/resilience"
)

// flightOutcome is everything one pipeline run produces, in the shape the
// handler tails consume: the response value, the degradation rung that
// answered, the pipeline error, and the admission error. Exactly the fields
// the pre-coalescing handlers tracked in locals.
type flightOutcome struct {
	out      any
	degraded string
	perr     error
	admitErr error
}

// leaderSpecific reports whether an outcome is an artifact of the leader's
// own request rather than a property of the shared work: its context died
// (while queued, mid-pipeline, or via the queued-deadline skip that leaves
// a nil response behind). Followers whose own contexts are still alive must
// not inherit such an outcome — they retry, and one of them becomes the new
// leader.
func (o flightOutcome) leaderSpecific() bool {
	for _, err := range []error{o.perr, o.admitErr} {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return true
		}
	}
	return o.out == nil && o.perr == nil && o.admitErr == nil // deadline skip
}

// flight is one in-progress pipeline run that concurrent identical
// requests attach to. outcome is written exactly once, before done is
// closed; the close is the happens-before edge that publishes it.
type flight struct {
	done    chan struct{}
	outcome flightOutcome
}

// flightTable coalesces concurrent requests that share a cache key into
// one pipeline run (singleflight). The table only ever holds in-progress
// flights: a flight is removed from the map before its done channel is
// closed, so a request arriving after completion starts a fresh run (or,
// in the common case, hits the result cache the leader just filled).
type flightTable struct {
	mu sync.Mutex
	m  map[string]*flight
}

func newFlightTable() *flightTable {
	return &flightTable{m: make(map[string]*flight)}
}

// join returns the in-progress flight for key, or registers a new one and
// returns it with leader=true.
func (t *flightTable) join(key string) (*flight, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if f, ok := t.m[key]; ok {
		return f, false
	}
	f := &flight{done: make(chan struct{})}
	t.m[key] = f
	return f, true
}

// finish publishes the leader's outcome: the flight leaves the map first,
// then done is closed, so no new waiter can join a completed flight.
func (t *flightTable) finish(key string, f *flight, o flightOutcome) {
	f.outcome = o
	t.mu.Lock()
	delete(t.m, key)
	t.mu.Unlock()
	close(f.done)
}

// runPipeline executes one pipeline request end to end: admission (the
// worker pool), the resilience stack (retry, breaker, degradation ladder),
// and — when the request carries a cache key — singleflight coalescing, so
// N concurrent identical cache misses cost one pipeline run instead of N.
// Returns the outcome and whether this request led the run: only the
// leader should write the result cache (followers share the same value,
// and a canceled leader must not have followers cache on its behalf).
//
// Followers hold no admission-pool slot while they wait — under a
// thundering herd the pool's workers all go to distinct work. A follower
// whose own context dies detaches with that error, leaving the leader
// running; a follower that inherits a leader-specific failure (the
// leader's context died) retries, becoming the new leader if the key is
// still uncontested.
func (s *Server) runPipeline(ctx context.Context, endpoint, key, staleKey string, primary func(context.Context) (any, error), rungs ...resilience.Step) (flightOutcome, bool) {
	run := func() flightOutcome {
		var o flightOutcome
		admitErr := s.pool.Do(ctx, func(ctx context.Context) {
			o.out, o.degraded, o.perr = s.runResilient(ctx, endpoint, staleKey, primary, rungs...)
		})
		if admitErr != nil {
			// A context-error return from Do can race the worker still
			// executing the closure; o must not be read (its result, if any,
			// is abandoned). Publish only the admission error.
			return flightOutcome{admitErr: admitErr}
		}
		// Do returned nil, so the closure ran to completion before the done
		// channel closed: reading o is ordered.
		return o
	}
	rec := obs.RequestFromContext(ctx)
	if key == "" || s.cfg.NoCoalesce {
		// Uncacheable (inline-profile or no_cache) requests have no
		// identity to coalesce on; they always pay their own run.
		rec.SetRole("solo")
		return run(), true
	}
	for {
		f, leader := s.flights.join(key)
		if leader {
			rec.SetRole("leader")
			s.reg.Counter("coalesce_leaders_total", "endpoint", endpoint).Inc()
			s.reg.Gauge("coalesce_inflight").Add(1)
			o := run()
			s.flights.finish(key, f, o)
			s.reg.Gauge("coalesce_inflight").Add(-1)
			return o, true
		}
		rec.SetRole("follower")
		s.reg.Counter("coalesce_followers_total", "endpoint", endpoint).Inc()
		wait := time.Now()
		select {
		case <-f.done:
			rec.AddPhase(obs.PhaseCoalesce, time.Since(wait))
			if f.outcome.leaderSpecific() && ctx.Err() == nil {
				continue // the leader died of its own deadline; try again
			}
			return f.outcome, false
		case <-ctx.Done():
			// This waiter's own deadline fired; detach without touching
			// the leader, answering with the waiter's error.
			rec.AddPhase(obs.PhaseCoalesce, time.Since(wait))
			return flightOutcome{perr: ctx.Err()}, false
		}
	}
}
