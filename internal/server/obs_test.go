package server

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuffer is a mutex-guarded log sink: the request log line is written in
// the handler's deferred finalizer, which can still be running when the
// client already has the response, so the test must synchronize and poll.
type syncBuffer struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// waitObs polls until the predicate holds or the deadline passes.
func waitObs(t *testing.T, what string, pred func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if pred() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestRequestIDEchoAndSanitize(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	putProfile(t, ts.URL, "u1", testProfileText())

	// A well-formed incoming ID is honored and echoed.
	body, _ := json.Marshal(personalizeBody("u1"))
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/personalize", strings.NewReader(string(body)))
	req.Header.Set("X-Request-ID", "client-id-42")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-ID"); got != "client-id-42" {
		t.Fatalf("echoed ID = %q, want client-id-42", got)
	}

	// An oversized ID is rejected and a fresh one minted instead.
	req, _ = http.NewRequest(http.MethodPost, ts.URL+"/personalize", strings.NewReader(string(body)))
	req.Header.Set("X-Request-ID", strings.Repeat("a", 100))
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	got := resp.Header.Get("X-Request-ID")
	if got == "" || strings.Contains(got, "aaaa") {
		t.Fatalf("oversized ID not replaced: %q", got)
	}

	// No incoming ID: one is minted.
	req, _ = http.NewRequest(http.MethodPost, ts.URL+"/personalize", strings.NewReader(string(body)))
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.Header.Get("X-Request-ID") == "" {
		t.Fatal("no request ID minted")
	}
}

// TestTraceAttributionAndDebug is the tentpole acceptance check: a ?trace=1
// request returns per-phase attribution whose phases cover ≥90% of the wall
// time, and the request is retrievable from /debug/requests/{id} with the
// identical span tree the response carried.
func TestTraceAttributionAndDebug(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	putProfile(t, ts.URL, "u1", testProfileText())

	body := personalizeBody("u1")
	delete(body, "trace") // exercise the query knob, not the body flag
	resp, data := doJSON(t, http.MethodPost, ts.URL+"/personalize?trace=1", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("personalize: %d: %s", resp.StatusCode, data)
	}
	var pr personalizeResponse
	if err := json.Unmarshal(data, &pr); err != nil {
		t.Fatal(err)
	}
	if pr.RequestID == "" || pr.Trace == "" || len(pr.AttributionUS) == 0 {
		t.Fatalf("trace payload missing: id=%q trace=%d bytes attr=%v", pr.RequestID, len(pr.Trace), pr.AttributionUS)
	}
	if pr.RequestID != resp.Header.Get("X-Request-ID") {
		t.Fatalf("body request_id %q != header %q", pr.RequestID, resp.Header.Get("X-Request-ID"))
	}
	total := pr.AttributionUS["total"]
	var sum int64
	for name, us := range pr.AttributionUS {
		if name != "total" {
			sum += us
		}
	}
	if total <= 0 || float64(sum) < 0.9*float64(total) {
		t.Fatalf("attribution covers %d of %d µs (<90%%): %v", sum, total, pr.AttributionUS)
	}

	// The same request, by ID, from the flight recorder — with the same tree.
	waitObs(t, "flight record", func() bool {
		r, err := http.Get(ts.URL + "/debug/requests/" + pr.RequestID)
		if err != nil {
			return false
		}
		defer r.Body.Close()
		return r.StatusCode == http.StatusOK
	})
	dresp, ddata := doJSON(t, http.MethodGet, ts.URL+"/debug/requests/"+pr.RequestID, nil)
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("debug request: %d: %s", dresp.StatusCode, ddata)
	}
	var dbg struct {
		Request struct {
			ID       string           `json:"id"`
			Endpoint string           `json:"endpoint"`
			Status   int              `json:"status"`
			Profile  string           `json:"profile"`
			TotalUS  int64            `json:"total_us"`
			PhasesUS map[string]int64 `json:"phases_us"`
		} `json:"request"`
		Spans *struct {
			Name     string `json:"name"`
			Children []json.RawMessage
		} `json:"spans"`
		Tree string `json:"tree"`
	}
	if err := json.Unmarshal(ddata, &dbg); err != nil {
		t.Fatal(err)
	}
	if dbg.Request.ID != pr.RequestID || dbg.Request.Endpoint != "personalize" {
		t.Fatalf("debug record mismatch: %+v", dbg.Request)
	}
	if dbg.Request.Profile == "" || !strings.Contains(dbg.Request.Profile, "u1@") {
		t.Fatalf("profile identity missing: %q", dbg.Request.Profile)
	}
	if dbg.Tree != pr.Trace {
		t.Fatalf("span tree diverged:\nresponse:\n%s\ndebug:\n%s", pr.Trace, dbg.Tree)
	}
	if dbg.Spans == nil || dbg.Spans.Name != "personalize" {
		t.Fatalf("span JSON missing or misnamed: %+v", dbg.Spans)
	}
	var dsum int64
	for _, us := range dbg.Request.PhasesUS {
		dsum += us
	}
	if dbg.Request.TotalUS <= 0 || float64(dsum) < 0.9*float64(dbg.Request.TotalUS) {
		t.Fatalf("sealed attribution covers %d of %d µs (<90%%): %v",
			dsum, dbg.Request.TotalUS, dbg.Request.PhasesUS)
	}
}

func TestCacheHitRoleAndTrace(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	putProfile(t, ts.URL, "u1", testProfileText())

	if resp, data := doJSON(t, http.MethodPost, ts.URL+"/personalize", personalizeBody("u1")); resp.StatusCode != http.StatusOK {
		t.Fatalf("cold personalize: %d: %s", resp.StatusCode, data)
	}
	resp, data := doJSON(t, http.MethodPost, ts.URL+"/personalize", personalizeBody("u1"))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm personalize: %d: %s", resp.StatusCode, data)
	}
	var pr personalizeResponse
	if err := json.Unmarshal(data, &pr); err != nil {
		t.Fatal(err)
	}
	if !pr.Cached || !strings.Contains(pr.Trace, "cache_hit") {
		t.Fatalf("warm answer not a traced cache hit: cached=%v trace=%q", pr.Cached, pr.Trace)
	}
	id := resp.Header.Get("X-Request-ID")
	waitObs(t, "cache-hit flight record", func() bool {
		r, err := http.Get(ts.URL + "/debug/requests/" + id)
		if err != nil {
			return false
		}
		defer r.Body.Close()
		return r.StatusCode == http.StatusOK
	})
	_, ddata := doJSON(t, http.MethodGet, ts.URL+"/debug/requests/"+id, nil)
	var dbg struct {
		Request struct {
			Role string `json:"role"`
		} `json:"request"`
		Tree string `json:"tree"`
	}
	if err := json.Unmarshal(ddata, &dbg); err != nil {
		t.Fatal(err)
	}
	if dbg.Request.Role != "hit" {
		t.Fatalf("role = %q, want hit", dbg.Request.Role)
	}
	if dbg.Tree != pr.Trace {
		t.Fatalf("cache-hit tree diverged:\n%s\nvs\n%s", pr.Trace, dbg.Tree)
	}
}

func TestDebugRequestsFilters(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	putProfile(t, ts.URL, "u1", testProfileText())
	doJSON(t, http.MethodPost, ts.URL+"/personalize", personalizeBody("u1"))
	// A missing profile is a 404 — retained by the errored tail.
	doJSON(t, http.MethodPost, ts.URL+"/personalize", personalizeBody("ghost"))

	type listing struct {
		TotalRecorded uint64 `json:"total_recorded"`
		Returned      int    `json:"returned"`
		Requests      []struct {
			Endpoint string `json:"endpoint"`
			Status   int    `json:"status"`
			Error    string `json:"error"`
		} `json:"requests"`
	}
	get := func(query string) listing {
		t.Helper()
		resp, data := doJSON(t, http.MethodGet, ts.URL+"/debug/requests"+query, nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("debug requests%s: %d: %s", query, resp.StatusCode, data)
		}
		var l listing
		if err := json.Unmarshal(data, &l); err != nil {
			t.Fatal(err)
		}
		return l
	}
	waitObs(t, "records in the recorder", func() bool { return get("").Returned >= 3 })

	l := get("?endpoint=personalize&status=404")
	if l.Returned < 1 {
		t.Fatalf("no 404 personalize records: %+v", l)
	}
	for _, r := range l.Requests {
		if r.Endpoint != "personalize" || r.Status != http.StatusNotFound {
			t.Fatalf("filter leaked %+v", r)
		}
		if !strings.Contains(r.Error, "ghost") {
			t.Fatalf("error message not retained: %q", r.Error)
		}
	}
	if l := get("?limit=1"); l.Returned != 1 {
		t.Fatalf("limit=1 returned %d", l.Returned)
	}
	if resp, _ := doJSON(t, http.MethodGet, ts.URL+"/debug/requests?status=abc", nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad status filter: %d", resp.StatusCode)
	}
	if resp, _ := doJSON(t, http.MethodGet, ts.URL+"/debug/requests/nope", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown ID: %d", resp.StatusCode)
	}
}

func TestSLOEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	putProfile(t, ts.URL, "u1", testProfileText())
	for i := 0; i < 3; i++ {
		doJSON(t, http.MethodPost, ts.URL+"/personalize", personalizeBody("u1"))
	}

	var report struct {
		WindowMS  int64 `json:"window_ms"`
		Endpoints map[string]struct {
			Count         int64   `json:"count"`
			P50MS         float64 `json:"p50_ms"`
			P99MS         float64 `json:"p99_ms"`
			ErrorRate     float64 `json:"error_rate"`
			CacheHitRatio float64 `json:"cache_hit_ratio"`
		} `json:"endpoints"`
	}
	waitObs(t, "SLO window population", func() bool {
		_, data := doJSON(t, http.MethodGet, ts.URL+"/slo", nil)
		if err := json.Unmarshal(data, &report); err != nil {
			return false
		}
		e, ok := report.Endpoints["personalize"]
		return ok && e.Count >= 3
	})
	e := report.Endpoints["personalize"]
	if report.WindowMS <= 0 {
		t.Fatalf("window_ms = %d", report.WindowMS)
	}
	if e.P50MS < 0 || e.P99MS < e.P50MS {
		t.Fatalf("insane quantiles: %+v", e)
	}
	if e.ErrorRate != 0 {
		t.Fatalf("error rate %g on healthy traffic", e.ErrorRate)
	}
	if e.CacheHitRatio <= 0 { // requests 2 and 3 were warm
		t.Fatalf("cache hit ratio %g after repeated identical requests", e.CacheHitRatio)
	}
}

func TestRequestAndSlowLogs(t *testing.T) {
	buf := &syncBuffer{}
	_, ts := newTestServer(t, Config{
		Logger:  slog.New(slog.NewJSONHandler(buf, nil)),
		SlowLog: time.Nanosecond, // every request is "slow": attribution for all
	})
	putProfile(t, ts.URL, "u1", testProfileText())

	body, _ := json.Marshal(personalizeBody("u1"))
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/personalize", strings.NewReader(string(body)))
	req.Header.Set("X-Request-ID", "log-test-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	waitObs(t, "request log line", func() bool {
		s := buf.String()
		return strings.Contains(s, "log-test-1") && strings.Contains(s, "slow request")
	})
	logs := buf.String()
	for _, want := range []string{
		`"msg":"request"`, `"endpoint":"personalize"`, `"status":200`,
		`"msg":"slow request"`, `"phases_us"`, fmt.Sprintf("%q", "log-test-1"),
	} {
		if !strings.Contains(logs, want) {
			t.Fatalf("log output missing %s:\n%s", want, logs)
		}
	}
}

// TestPhaseHistograms checks the per-endpoint/per-phase latency metric the
// middleware feeds: after one cold request the pipeline phases must have
// observations under their own labels.
func TestPhaseHistograms(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	putProfile(t, ts.URL, "u1", testProfileText())
	doJSON(t, http.MethodPost, ts.URL+"/personalize", personalizeBody("u1"))

	waitObs(t, "phase histogram observations", func() bool {
		h := s.Registry().Histogram("server_phase_ms", nil, "endpoint", "personalize", "phase", "search")
		return h.Count() > 0
	})
	for _, phase := range []string{"parse", "prefspace", "search", "construct"} {
		h := s.Registry().Histogram("server_phase_ms", nil, "endpoint", "personalize", "phase", phase)
		if h.Count() == 0 {
			t.Fatalf("no observations for phase %q", phase)
		}
	}
}
