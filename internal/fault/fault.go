// Package fault is a deterministic, seedable fault-injection harness for
// the CQP serving stack. Production code declares named injection points
// (storage scans, executor unions, estimator lookups, search expansions,
// the daemon's result cache); a test or an operator arms a Plan that maps
// points to failure rules — return an error, add latency, or panic — with
// a configured probability and an optional injection cap.
//
// When no plan is armed the hot path pays exactly one atomic pointer load
// per Inject call, so the harness can stay compiled into release binaries.
// Decisions are derived from the plan's seed and a per-rule call counter
// (splitmix64), so a given (plan, request interleaving) replays the same
// faults — chaos runs are diagnosable, not merely noisy.
package fault

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// Point names one injection site in the serving stack.
type Point string

// The injection-point catalog. Adding a point means adding one Inject call
// at the site and one constant here; Parse validates names against this
// list so a typo in an operator's plan fails fast instead of arming a rule
// that never fires.
const (
	// StorageScan fires at the start of every heap-file table scan.
	StorageScan Point = "storage.scan"
	// ExecUnion fires at the start of every personalized-union evaluation.
	ExecUnion Point = "exec.union"
	// EstimateHistogram fires on estimator consultations during preference
	// extraction (the Parameter Estimation phase of Figure 2).
	EstimateHistogram Point = "estimate.histogram"
	// SearchExpand fires on every state expansion inside the Section-5
	// search algorithms.
	SearchExpand Point = "search.expand"
	// ServerCache fires on daemon result-cache reads and writes.
	ServerCache Point = "server.cache"
	// WALAppend fires before a profile mutation record is written to the
	// durable write-ahead log — a failed append must leave the mutation
	// unacked and the in-memory store untouched.
	WALAppend Point = "wal.append"
	// WALFsync fires before every log fsync, modeling a device that
	// accepts writes but fails to make them durable.
	WALFsync Point = "wal.fsync"
	// BlockstoreRead fires on every physical page read of the persistent
	// block-store backend, standing in for media errors and torn pages.
	BlockstoreRead Point = "blockstore.read"
	// IterSpill fires when a streaming operator spills state to temp-file
	// partitions (hash-join builds, oversized dedup sets), standing in for
	// a full or failing scratch disk.
	IterSpill Point = "iter.spill"
)

// Points returns the injection-point catalog in stable order.
func Points() []Point {
	return []Point{StorageScan, ExecUnion, EstimateHistogram, SearchExpand, ServerCache, WALAppend, WALFsync, BlockstoreRead, IterSpill}
}

func validPoint(p Point) bool {
	for _, q := range Points() {
		if p == q {
			return true
		}
	}
	return false
}

// Mode is what an armed rule does when it fires.
type Mode uint8

const (
	// ModeErr makes the injection point return ErrInjected (wrapped).
	ModeErr Mode = iota
	// ModeLatency makes the injection point sleep before proceeding.
	ModeLatency
	// ModePanic makes the injection point panic.
	ModePanic
)

func (m Mode) String() string {
	switch m {
	case ModeErr:
		return "err"
	case ModeLatency:
		return "lat"
	case ModePanic:
		return "panic"
	}
	return fmt.Sprintf("mode(%d)", m)
}

// ErrInjected is the sentinel every injected error wraps; resilience
// policies classify it as transient with errors.Is.
var ErrInjected = errors.New("fault: injected failure")

// Rule arms one failure behavior at one point.
type Rule struct {
	Point Point
	Mode  Mode
	// Prob is the per-call injection probability in [0, 1]; 0 means 1
	// (always) so the terse spec "point:err" is a deterministic fault.
	Prob float64
	// Latency is the added delay for ModeLatency rules.
	Latency time.Duration
	// Count caps the number of injections; 0 means unlimited. A drained
	// rule stops firing, which lets smoke tests assert recovery after a
	// bounded burst of faults.
	Count int64
}

// armedRule is a Rule plus its runtime counters.
type armedRule struct {
	Rule
	seed     uint64 // per-rule stream seed
	calls    atomic.Int64
	injected atomic.Int64
}

// Plan is an armed set of rules. A Plan is immutable after construction;
// its counters are concurrency-safe.
type Plan struct {
	seed  int64
	rules map[Point][]*armedRule
	order []*armedRule // spec order, for String and Counts
}

// NewPlan builds a plan from rules. Rules for unknown points or with
// out-of-range probabilities are rejected.
func NewPlan(seed int64, rules ...Rule) (*Plan, error) {
	p := &Plan{seed: seed, rules: make(map[Point][]*armedRule)}
	for i, r := range rules {
		if !validPoint(r.Point) {
			return nil, fmt.Errorf("fault: unknown injection point %q", r.Point)
		}
		if r.Prob < 0 || r.Prob > 1 {
			return nil, fmt.Errorf("fault: rule %d: probability %g out of [0,1]", i, r.Prob)
		}
		if r.Prob == 0 {
			r.Prob = 1
		}
		if r.Mode == ModeLatency && r.Latency <= 0 {
			return nil, fmt.Errorf("fault: rule %d: latency mode needs a duration", i)
		}
		ar := &armedRule{Rule: r, seed: splitmix64(uint64(seed) + uint64(i)*0x9e3779b97f4a7c15 + 1)}
		p.rules[r.Point] = append(p.rules[r.Point], ar)
		p.order = append(p.order, ar)
	}
	return p, nil
}

// Parse compiles a textual fault plan: comma-separated rules, each
// "point:mode[:opt...]" where mode is err, lat or panic and the options
// are, in any order, a probability (a float in [0,1]), a latency duration
// (lat mode, e.g. 20ms), and an injection cap ("x" + integer). Examples:
//
//	storage.scan:err:0.05
//	exec.union:lat:0.2:50ms
//	search.expand:panic:0.001
//	server.cache:err:x10           (first 10 cache touches fail)
//
// The seed makes the plan's fault sequence reproducible.
func Parse(spec string, seed int64) (*Plan, error) {
	var rules []Rule
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		fields := strings.Split(part, ":")
		if len(fields) < 2 {
			return nil, fmt.Errorf("fault: rule %q needs at least point:mode", part)
		}
		r := Rule{Point: Point(fields[0])}
		switch fields[1] {
		case "err", "error":
			r.Mode = ModeErr
		case "lat", "latency", "slow":
			r.Mode = ModeLatency
		case "panic":
			r.Mode = ModePanic
		default:
			return nil, fmt.Errorf("fault: rule %q: unknown mode %q (err|lat|panic)", part, fields[1])
		}
		for _, opt := range fields[2:] {
			switch {
			case strings.HasPrefix(opt, "x"):
				n, err := strconv.ParseInt(opt[1:], 10, 64)
				if err != nil || n < 1 {
					return nil, fmt.Errorf("fault: rule %q: bad injection cap %q", part, opt)
				}
				r.Count = n
			default:
				if f, err := strconv.ParseFloat(opt, 64); err == nil {
					r.Prob = f
					continue
				}
				if d, err := time.ParseDuration(opt); err == nil {
					r.Latency = d
					continue
				}
				return nil, fmt.Errorf("fault: rule %q: unrecognized option %q", part, opt)
			}
		}
		rules = append(rules, r)
	}
	if len(rules) == 0 {
		return nil, fmt.Errorf("fault: empty plan %q", spec)
	}
	return NewPlan(seed, rules...)
}

// String renders the plan in the Parse syntax.
func (p *Plan) String() string {
	var b strings.Builder
	for i, r := range p.order {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s:%s:%g", r.Point, r.Mode, r.Prob)
		if r.Mode == ModeLatency {
			fmt.Fprintf(&b, ":%s", r.Latency)
		}
		if r.Count > 0 {
			fmt.Fprintf(&b, ":x%d", r.Count)
		}
	}
	return b.String()
}

// Counts reports per-point call and injection totals.
type Counts struct {
	Calls    int64
	Injected int64
}

// Counts sums the plan's counters per point.
func (p *Plan) Counts() map[Point]Counts {
	out := make(map[Point]Counts, len(p.rules))
	for pt, rules := range p.rules {
		var c Counts
		for _, r := range rules {
			c.Calls += r.calls.Load()
			c.Injected += r.injected.Load()
		}
		out[pt] = c
	}
	return out
}

// Drained reports whether every count-capped rule has used up its budget
// (a plan with any uncapped rule is never drained).
func (p *Plan) Drained() bool {
	for _, r := range p.order {
		if r.Count == 0 || r.injected.Load() < r.Count {
			return false
		}
	}
	return true
}

// Report renders the plan's counters, one line per rule, for logs.
func (p *Plan) Report() string {
	var b strings.Builder
	keys := make([]string, 0, len(p.order))
	for _, r := range p.order {
		keys = append(keys, fmt.Sprintf("%s:%s %d/%d injected",
			r.Point, r.Mode, r.injected.Load(), r.calls.Load()))
	}
	sort.Strings(keys)
	for _, k := range keys {
		b.WriteString(k)
		b.WriteByte('\n')
	}
	return b.String()
}

// armed is the process-wide active plan. One atomic load on the hot path.
var armed atomic.Pointer[Plan]

// Arm activates the plan process-wide (nil disarms).
func Arm(p *Plan) {
	armed.Store(p)
}

// Disarm deactivates any armed plan.
func Disarm() { armed.Store(nil) }

// Armed returns the active plan (nil when none).
func Armed() *Plan { return armed.Load() }

// Enabled reports whether any plan is armed.
func Enabled() bool { return armed.Load() != nil }

// Inject consults the armed plan at the point. With no plan armed it is a
// single atomic load returning nil. Otherwise it may sleep (latency rules),
// panic (panic rules), or return an error wrapping ErrInjected.
func Inject(pt Point) error {
	p := armed.Load()
	if p == nil {
		return nil
	}
	return p.inject(pt)
}

// PanicValue is the value injected panics carry, so recovery middleware can
// distinguish harness panics in counters and tests.
type PanicValue struct {
	Point Point
}

func (v PanicValue) String() string { return fmt.Sprintf("fault: injected panic at %s", v.Point) }

func (p *Plan) inject(pt Point) error {
	rules := p.rules[pt]
	if len(rules) == 0 {
		return nil
	}
	for _, r := range rules {
		n := r.calls.Add(1)
		if r.Prob < 1 && unitFloat(splitmix64(r.seed+uint64(n))) >= r.Prob {
			continue
		}
		if r.Count > 0 {
			if r.injected.Add(1) > r.Count {
				r.injected.Add(-1) // budget spent; rule is drained
				continue
			}
		} else {
			r.injected.Add(1)
		}
		switch r.Mode {
		case ModeLatency:
			time.Sleep(r.Latency)
		case ModePanic:
			panic(PanicValue{Point: pt})
		default:
			return fmt.Errorf("fault: injected %s error: %w", pt, ErrInjected)
		}
	}
	return nil
}

// splitmix64 is the SplitMix64 mixer — a tiny, allocation-free PRNG step
// good enough for injection decisions.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// unitFloat maps a uint64 onto [0, 1).
func unitFloat(x uint64) float64 {
	return float64(x>>11) / (1 << 53)
}
