package fault

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func arm(t *testing.T, spec string, seed int64) *Plan {
	t.Helper()
	p, err := Parse(spec, seed)
	if err != nil {
		t.Fatalf("Parse(%q): %v", spec, err)
	}
	Arm(p)
	t.Cleanup(Disarm)
	return p
}

func TestDisarmedIsNil(t *testing.T) {
	Disarm()
	if Enabled() {
		t.Fatal("Enabled with no plan armed")
	}
	for _, pt := range Points() {
		if err := Inject(pt); err != nil {
			t.Fatalf("disarmed Inject(%s) = %v", pt, err)
		}
	}
}

func TestAlwaysError(t *testing.T) {
	arm(t, "storage.scan:err", 1)
	err := Inject(StorageScan)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("Inject = %v, want ErrInjected", err)
	}
	// Other points are untouched.
	if err := Inject(ExecUnion); err != nil {
		t.Fatalf("unrelated point injected: %v", err)
	}
}

func TestProbabilityIsDeterministicAndRoughlyCalibrated(t *testing.T) {
	const n = 10000
	run := func() int {
		p, err := Parse("search.expand:err:0.3", 42)
		if err != nil {
			t.Fatal(err)
		}
		Arm(p)
		defer Disarm()
		hits := 0
		for i := 0; i < n; i++ {
			if Inject(SearchExpand) != nil {
				hits++
			}
		}
		return hits
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed, different injection counts: %d vs %d", a, b)
	}
	if a < n/5 || a > n/2 {
		t.Fatalf("0.3-probability rule fired %d/%d times", a, n)
	}
	// A different seed gives a different sequence (overwhelmingly likely).
	p2, _ := Parse("search.expand:err:0.3", 43)
	Arm(p2)
	defer Disarm()
	c := 0
	for i := 0; i < n; i++ {
		if Inject(SearchExpand) != nil {
			c++
		}
	}
	if c == a {
		t.Logf("seeds 42 and 43 coincidentally matched counts (%d); sequence check skipped", c)
	}
}

func TestCountCapDrains(t *testing.T) {
	plan := arm(t, "server.cache:err:x3", 7)
	errs := 0
	for i := 0; i < 50; i++ {
		if Inject(ServerCache) != nil {
			errs++
		}
	}
	if errs != 3 {
		t.Fatalf("capped rule injected %d times, want 3", errs)
	}
	if !plan.Drained() {
		t.Fatal("plan with spent cap not drained")
	}
	c := plan.Counts()[ServerCache]
	if c.Calls != 50 || c.Injected != 3 {
		t.Fatalf("counts = %+v, want 50 calls / 3 injected", c)
	}
}

func TestLatencyMode(t *testing.T) {
	arm(t, "estimate.histogram:lat:1:5ms", 1)
	start := time.Now()
	if err := Inject(EstimateHistogram); err != nil {
		t.Fatalf("latency rule returned error: %v", err)
	}
	if d := time.Since(start); d < 4*time.Millisecond {
		t.Fatalf("latency rule slept only %s", d)
	}
}

func TestPanicMode(t *testing.T) {
	arm(t, "exec.union:panic", 1)
	defer func() {
		r := recover()
		pv, ok := r.(PanicValue)
		if !ok || pv.Point != ExecUnion {
			t.Fatalf("recovered %v, want PanicValue{exec.union}", r)
		}
	}()
	_ = Inject(ExecUnion)
	t.Fatal("panic rule did not panic")
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"storage.scan",             // no mode
		"nope.nope:err",            // unknown point
		"storage.scan:zap",         // unknown mode
		"storage.scan:err:1.5",     // prob out of range
		"storage.scan:lat:0.5",     // latency mode without duration
		"storage.scan:err:x0",      // bad cap
		"storage.scan:err:bananas", // unknown option
	}
	for _, spec := range bad {
		if _, err := Parse(spec, 1); err == nil {
			t.Errorf("Parse(%q) accepted", spec)
		}
	}
	p, err := Parse(" storage.scan:err:0.25 , exec.union:lat:50ms:x2 ", 1)
	if err != nil {
		t.Fatalf("Parse round-trip: %v", err)
	}
	if s := p.String(); s != "storage.scan:err:0.25,exec.union:lat:1:50ms:x2" {
		t.Fatalf("String() = %q", s)
	}
}

func TestConcurrentInjectIsSafe(t *testing.T) {
	plan := arm(t, "storage.scan:err:0.5,server.cache:err:x100", 9)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				_ = Inject(StorageScan)
				_ = Inject(ServerCache)
			}
		}()
	}
	wg.Wait()
	c := plan.Counts()[ServerCache]
	if c.Injected != 100 {
		t.Fatalf("capped rule injected %d, want exactly 100", c.Injected)
	}
	if got := plan.Counts()[StorageScan].Calls; got != 8000 {
		t.Fatalf("calls = %d, want 8000", got)
	}
}

func BenchmarkInjectDisarmed(b *testing.B) {
	Disarm()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := Inject(StorageScan); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInjectArmedMiss(b *testing.B) {
	p, err := NewPlan(1, Rule{Point: ExecUnion, Mode: ModeErr, Prob: 1})
	if err != nil {
		b.Fatal(err)
	}
	Arm(p)
	defer Disarm()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := Inject(StorageScan); err != nil { // armed plan, different point
			b.Fatal(err)
		}
	}
}

func ExampleParse() {
	p, _ := Parse("storage.scan:err:0.05,exec.union:lat:0.2:20ms", 1)
	fmt.Println(p)
	// Output: storage.scan:err:0.05,exec.union:lat:0.2:20ms
}
