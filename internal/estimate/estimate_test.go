package estimate

import (
	"math"
	"math/rand"
	"testing"

	"cqp/internal/catalog"
	"cqp/internal/exec"
	"cqp/internal/prefs"
	"cqp/internal/sqlparse"
	"cqp/internal/testutil"
)

func TestDefaults(t *testing.T) {
	db := testutil.MovieDB(256)
	e := New(catalog.MustBuild(db), 0)
	if e.BlockMillis != DefaultBlockMillis {
		t.Errorf("BlockMillis = %g", e.BlockMillis)
	}
	if e.Catalog() == nil {
		t.Error("Catalog accessor")
	}
}

func TestQueryCostMatchesExecutorIO(t *testing.T) {
	db := testutil.MovieDB(256)
	e := New(catalog.MustBuild(db), 1)
	for _, sql := range []string{
		"SELECT title FROM MOVIE",
		"SELECT title FROM MOVIE, DIRECTOR WHERE MOVIE.did = DIRECTOR.did",
		"SELECT title FROM MOVIE, DIRECTOR, GENRE WHERE MOVIE.did = DIRECTOR.did AND MOVIE.mid = GENRE.mid",
	} {
		q := sqlparse.MustParse(db.Schema(), sql)
		res, err := exec.Eval(db, q)
		if err != nil {
			t.Fatal(err)
		}
		// With b=1ms, estimated cost in ms equals executor block reads:
		// the estimator's model and the executor's I/O discipline agree.
		if got, want := e.QueryCost(q), float64(res.BlockReads); got != want {
			t.Errorf("%s: cost %g, io %g", sql, got, want)
		}
	}
}

func TestQuerySizeExactOnEquality(t *testing.T) {
	db := testutil.MovieDB(256)
	e := New(catalog.MustBuild(db), 1)
	// Single-table equality: exact thanks to exact frequencies.
	q := sqlparse.MustParse(db.Schema(), "SELECT title FROM MOVIE WHERE year = 1979")
	if got := e.QuerySize(q); math.Abs(got-1) > 1e-9 {
		t.Errorf("size = %g, want 1", got)
	}
	// FK join MOVIE ⋈ DIRECTOR: |M| × |D| × 1/3 = 6.
	q2 := sqlparse.MustParse(db.Schema(), "SELECT title FROM MOVIE, DIRECTOR WHERE MOVIE.did = DIRECTOR.did")
	if got := e.QuerySize(q2); math.Abs(got-6) > 1e-9 {
		t.Errorf("join size = %g, want 6", got)
	}
}

func prefOf(t *testing.T, profileLine string, pathLines ...string) prefs.Implicit {
	t.Helper()
	var path []prefs.Atomic
	for _, l := range pathLines {
		a, err := prefs.ParseAtomic(l)
		if err != nil {
			t.Fatal(err)
		}
		path = append(path, a)
	}
	sel, err := prefs.ParseAtomic(profileLine)
	if err != nil {
		t.Fatal(err)
	}
	imp, err := prefs.NewImplicit(path, sel)
	if err != nil {
		t.Fatal(err)
	}
	return imp
}

func TestSubQueryCost(t *testing.T) {
	db := testutil.MovieDB(256)
	cat := catalog.MustBuild(db)
	e := New(cat, 1)
	q := sqlparse.MustParse(db.Schema(), "SELECT title FROM MOVIE")
	atomic := prefOf(t, "doi(MOVIE.year >= 1990) = 0.5")
	// Atomic preference on MOVIE adds no relations: cost = blocks(MOVIE).
	if got, want := e.SubQueryCost(q, atomic), float64(cat.Blocks("MOVIE")); got != want {
		t.Errorf("atomic cost = %g, want %g", got, want)
	}
	pathPref := prefOf(t, "doi(DIRECTOR.name = 'W. Allen') = 0.8", "doi(MOVIE.did = DIRECTOR.did) = 1.0")
	want := float64(cat.Blocks("MOVIE") + cat.Blocks("DIRECTOR"))
	if got := e.SubQueryCost(q, pathPref); got != want {
		t.Errorf("path cost = %g, want %g", got, want)
	}
	// A preference over a relation already in Q must not double-charge it.
	q2 := sqlparse.MustParse(db.Schema(), "SELECT title FROM MOVIE, DIRECTOR WHERE MOVIE.did = DIRECTOR.did")
	if got := e.SubQueryCost(q2, pathPref); got != want {
		t.Errorf("no-new-relation cost = %g, want %g", got, want)
	}
}

func TestShrinkMatchesTruth(t *testing.T) {
	db := testutil.MovieDB(256)
	e := New(catalog.MustBuild(db), 1)
	q := sqlparse.MustParse(db.Schema(), "SELECT title FROM MOVIE")
	// W. Allen directs 3 of 6 movies; the model predicts
	// |D|(=3) × joinsel(1/3) × sel(name)(1/3) = 1/3. Truth is 3/6 = 1/2 —
	// same order, off by the uniformity assumption. Verify the model value.
	p := prefOf(t, "doi(DIRECTOR.name = 'W. Allen') = 0.8", "doi(MOVIE.did = DIRECTOR.did) = 1.0")
	if got := e.Shrink(q, p); math.Abs(got-1.0/3.0) > 1e-9 {
		t.Errorf("shrink = %g, want 1/3", got)
	}
	// Shrink is clamped to [0,1].
	if s := e.Shrink(q, prefOf(t, "doi(MOVIE.year >= 0) = 0.5")); s < 0 || s > 1 {
		t.Errorf("shrink out of range: %g", s)
	}
}

func TestStateAggregation(t *testing.T) {
	db := testutil.MovieDB(256)
	e := New(catalog.MustBuild(db), 1)
	empty := e.State(10, 100, nil, nil, nil)
	if empty.Doi != 0 || empty.Cost != 10 || empty.Size != 100 {
		t.Errorf("empty state = %+v", empty)
	}
	got := e.State(10, 100,
		[]float64{0.5, 0.8},
		[]float64{3, 4},
		[]float64{0.5, 0.1})
	if math.Abs(got.Doi-0.9) > 1e-12 {
		t.Errorf("doi = %g", got.Doi)
	}
	if got.Cost != 7 {
		t.Errorf("cost = %g (cost of Q∧Px is the sum of sub-query costs)", got.Cost)
	}
	if math.Abs(got.Size-5) > 1e-12 {
		t.Errorf("size = %g", got.Size)
	}
}

// TestPartialOrders verifies Formulas 4, 7 and 8 on random subsets: the
// monotone partial orders the search algorithms depend on.
func TestPartialOrders(t *testing.T) {
	db := testutil.MovieDB(256)
	e := New(catalog.MustBuild(db), 1)
	rng := rand.New(rand.NewSource(42))
	n := 8
	dois := make([]float64, n)
	costs := make([]float64, n)
	shrinks := make([]float64, n)
	for i := 0; i < n; i++ {
		dois[i] = rng.Float64()
		costs[i] = 1 + rng.Float64()*20
		shrinks[i] = rng.Float64()
	}
	pick := func(mask int) ([]float64, []float64, []float64) {
		var d, c, s []float64
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				d = append(d, dois[i])
				c = append(c, costs[i])
				s = append(s, shrinks[i])
			}
		}
		return d, c, s
	}
	for trial := 0; trial < 500; trial++ {
		x := rng.Intn(1 << n)
		y := x | rng.Intn(1<<n) // y ⊇ x
		dx, cx, sx := pick(x)
		dy, cy, sy := pick(y)
		px := e.State(5, 1000, dx, cx, sx)
		py := e.State(5, 1000, dy, cy, sy)
		if px.Doi > py.Doi+1e-12 {
			t.Fatalf("Formula 4 violated: %v ⊆ %v but doi %g > %g", x, y, px.Doi, py.Doi)
		}
		if x != 0 && px.Cost > py.Cost+1e-9 {
			t.Fatalf("Formula 7 violated: cost %g > %g", px.Cost, py.Cost)
		}
		if px.Size < py.Size-1e-9 {
			t.Fatalf("Formula 8 violated: size %g < %g", px.Size, py.Size)
		}
	}
}
