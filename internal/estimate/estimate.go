// Package estimate implements CQP's Parameter Estimation module
// (Sections 4.3 and 7.1 of the paper): approximate cost, result-size and
// degree-of-interest estimates for personalized queries.
//
// Cost model (Formulas 6 and 11): the cost of the personalized query
// Qx = Q ∧ Px rewritten as a union of sub-queries qi is Σ cost(qi), and
// cost(qi) = b × Σ blocks(Rij) over the relations of the sub-query —
// I/O only, no indexes, memory-resident intermediates, negligible
// group-by/having. b defaults to 1 ms per block as in the paper.
//
// Size model: standard System-R style independence estimates. Each
// preference contributes a multiplicative shrink factor ≤ 1 to the base
// query's cardinality, which keeps Formula 8's partial order
// (Px ⊆ Py ⇒ size(Q∧Px) ≥ size(Q∧Py)) valid by construction.
package estimate

import (
	"fmt"
	"sync/atomic"
	"time"

	"cqp/internal/catalog"
	"cqp/internal/fault"
	"cqp/internal/prefs"
	"cqp/internal/query"
)

// DefaultBlockMillis is b, the per-block read time in milliseconds
// (Section 7.1 of the paper).
const DefaultBlockMillis = 1.0

// Estimator estimates personalized-query parameters from catalog
// statistics.
//
// An Estimator is safe for concurrent use: the estimation entry points
// (QueryCost, QuerySize, SubQueryCost, Shrink) only read the catalog —
// whose maps and histograms are immutable after catalog.Build — and the
// call-accounting state is atomic. prefspace.Build leans on this to fan
// its per-candidate estimations across a worker group; a statistics
// refresh swaps in a whole new Estimator rather than mutating this one.
type Estimator struct {
	cat *catalog.Catalog
	// BlockMillis is b, the milliseconds charged per block read.
	BlockMillis float64

	// Opt-in call accounting. Estimation is interleaved with preference
	// extraction inside prefspace.Build, so the pipeline's "estimate" phase
	// has no contiguous wall-clock interval of its own; instead the
	// estimator totals its calls and time here, and the tracer reports the
	// deltas. Off (one atomic load per call) unless EnableTiming ran.
	timing   atomic.Bool
	estCalls atomic.Int64
	estNanos atomic.Int64

	// memo caches per-preference (SubQueryCost, Shrink) pairs across calls
	// and across requests (see memo.go). It lives and dies with this
	// Estimator: a statistics refresh swaps in a new Estimator and the old
	// memo goes with it, so entries never outlive the catalog they were
	// computed from. Atomic so DisableMemo cannot race in-flight builds.
	memo atomic.Pointer[prefMemo]
}

// New returns an estimator over the catalog. bMillis ≤ 0 selects the
// paper's default of 1 ms.
func New(cat *catalog.Catalog, bMillis float64) *Estimator {
	if bMillis <= 0 {
		bMillis = DefaultBlockMillis
	}
	e := &Estimator{cat: cat, BlockMillis: bMillis}
	e.memo.Store(newPrefMemo())
	return e
}

// Catalog exposes the underlying statistics.
func (e *Estimator) Catalog() *catalog.Catalog { return e.cat }

// CheckFault surfaces an injected estimate.histogram fault. The estimation
// entry points return bare float64s by design (they sit inside tight search
// loops), so they cannot fail in-band; callers that can propagate an error —
// prefspace.Build polls it at its estimation sites — call this instead,
// standing in for the stale-statistics and catalog-read failures a real
// optimizer would hit. One atomic load when the harness is disarmed, and
// safe to poll from concurrent estimation workers (the fault harness's
// decisions are atomic, though which worker draws a count-capped fault is
// scheduling-dependent).
func (e *Estimator) CheckFault() error {
	if err := fault.Inject(fault.EstimateHistogram); err != nil {
		return fmt.Errorf("estimate: histogram read: %w", err)
	}
	return nil
}

// EnableTiming switches on per-call accounting for the estimation entry
// points (QueryCost, QuerySize, SubQueryCost, Shrink). Safe to call
// concurrently with estimation.
func (e *Estimator) EnableTiming() { e.timing.Store(true) }

// TimingTotals returns the number of estimation calls and their cumulative
// time since EnableTiming. Zeros until timing is enabled.
func (e *Estimator) TimingTotals() (calls int64, spent time.Duration) {
	return e.estCalls.Load(), time.Duration(e.estNanos.Load())
}

// track records one completed estimation call; used as
// `defer e.track(time.Now())` so disabled timing costs one atomic load.
func (e *Estimator) track(t0 time.Time) {
	e.estCalls.Add(1)
	e.estNanos.Add(int64(time.Since(t0)))
}

// QueryCost estimates the execution cost of a conjunctive query in
// milliseconds: b × Σ blocks over its FROM relations (Formula 11).
func (e *Estimator) QueryCost(q *query.Query) float64 {
	if e.timing.Load() {
		defer e.track(time.Now())
	}
	var blocks int64
	for _, r := range q.From {
		blocks += e.cat.Blocks(r)
	}
	return float64(blocks) * e.BlockMillis
}

// QuerySize estimates the result cardinality of a conjunctive query under
// the independence assumption: Π |R| × Π joinSel × Π selectionSel.
func (e *Estimator) QuerySize(q *query.Query) float64 {
	if e.timing.Load() {
		defer e.track(time.Now())
	}
	size := 1.0
	for _, r := range q.From {
		size *= float64(e.cat.RowCount(r))
	}
	for _, j := range q.Joins {
		size *= e.cat.JoinSelectivity(j.Left, j.Right)
	}
	for _, s := range q.Selections {
		size *= e.cat.Selectivity(s.Attr, s.Op.CatalogOp(), s.Value)
	}
	return size
}

// SubQueryCost estimates cost(Q ∧ p) in milliseconds for one preference:
// b × Σ blocks over Q's relations plus the relations the preference's join
// path introduces. Relations already in Q are not double-charged within
// the one sub-query.
func (e *Estimator) SubQueryCost(q *query.Query, p prefs.Implicit) float64 {
	if e.timing.Load() {
		defer e.track(time.Now())
	}
	var blocks int64
	seen := make(map[string]bool, len(q.From)+len(p.Path))
	for _, r := range q.From {
		seen[r] = true
		blocks += e.cat.Blocks(r)
	}
	for _, r := range p.Relations() {
		if !seen[r] {
			seen[r] = true
			blocks += e.cat.Blocks(r)
		}
	}
	return float64(blocks) * e.BlockMillis
}

// Shrink estimates the multiplicative factor by which conjoining the
// preference reduces the base query's result cardinality. The raw
// independence estimate is clamped to [0, 1] so that Formula 8 holds in the
// model (a conjunct can never enlarge a result under set semantics).
func (e *Estimator) Shrink(q *query.Query, p prefs.Implicit) float64 {
	if e.timing.Load() {
		defer e.track(time.Now())
	}
	f := 1.0
	seen := make(map[string]bool, len(q.From))
	for _, r := range q.From {
		seen[r] = true
	}
	for _, j := range p.Path {
		// Joining in a new relation multiplies cardinality by
		// |R_new| × joinSel; for key/foreign-key joins this is ≈ 1.
		if !seen[j.Right.Relation] {
			f *= float64(e.cat.RowCount(j.Right.Relation))
			seen[j.Right.Relation] = true
		}
		f *= e.cat.JoinSelectivity(j.Left, j.Right)
	}
	f *= e.cat.Selectivity(p.Sel.Attr, p.Sel.Op.CatalogOp(), p.Sel.Value)
	if f > 1 {
		f = 1
	}
	if f < 0 {
		f = 0
	}
	return f
}

// Params bundles the three CQP query parameters of one candidate state.
type Params struct {
	Doi  float64
	Cost float64 // milliseconds
	Size float64 // estimated rows
}

// State estimates all three parameters of Q ∧ Px for a set of preferences,
// given their individual sub-query costs and shrink factors (as produced by
// SubQueryCost and Shrink). An empty set degenerates to the original query.
func (e *Estimator) State(baseCost, baseSize float64, dois, costs, shrinks []float64) Params {
	if len(dois) == 0 {
		return Params{Doi: 0, Cost: baseCost, Size: baseSize}
	}
	p := Params{Size: baseSize}
	acc := prefs.NewConjAccum()
	for i := range dois {
		acc.Add(dois[i])
		p.Cost += costs[i]
		p.Size *= shrinks[i]
	}
	p.Doi = acc.Doi()
	return p
}
