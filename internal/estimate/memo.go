package estimate

import (
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"cqp/internal/obs"
	"cqp/internal/prefs"
	"cqp/internal/query"
)

// memoMaxEntries bounds the memo's map. The key space is (FROM-set,
// preference) pairs — small for any real profile/schema — but inline
// profiles from untrusted clients could mint unbounded preference
// identities, so overflow flushes the whole map (an epoch reset, not LRU:
// the memo refills in one batch and precise eviction order buys nothing
// at this size).
const memoMaxEntries = 1 << 16

// prefKey identifies one memoized estimation: the query's relation scope
// and the preference's full condition.
//
// SubQueryCost and Shrink read nothing of the query beyond its FROM set
// (cost charges blocks over From ∪ the preference's path relations; shrink
// multiplies selectivities of the path and terminal selection against
// From), so the scope key is the sorted FROM list rather than the full
// query fingerprint — two distinct selection queries over the same tables
// share every per-preference estimate exactly. The preference side is
// Condition(): the rendered join path plus terminal selection, which is
// precisely the input set of both estimators (doi deliberately excluded —
// it never enters the cost model).
type prefKey struct {
	scope string
	pref  string
}

// prefParams is one memoized (cost, shrink) pair.
type prefParams struct {
	cost   float64
	shrink float64
}

// prefMemo is a concurrency-safe memo of per-preference estimation
// results, owned by one Estimator. Ownership is the invalidation story:
// Refresh swaps in a whole new Estimator per statistics generation, so a
// stale entry cannot survive a catalog rebuild by construction — there is
// no generation tag to get wrong.
type prefMemo struct {
	mu sync.RWMutex
	m  map[prefKey]prefParams

	hits   atomic.Int64
	misses atomic.Int64
	// Lazily attached obs counters (nil — and therefore no-ops — until
	// ObserveMemo wires a registry).
	cHits   atomic.Pointer[obs.Counter]
	cMisses atomic.Pointer[obs.Counter]
}

func newPrefMemo() *prefMemo {
	return &prefMemo{m: make(map[prefKey]prefParams)}
}

func (pm *prefMemo) lookup(k prefKey) (prefParams, bool) {
	pm.mu.RLock()
	p, ok := pm.m[k]
	pm.mu.RUnlock()
	if ok {
		pm.hits.Add(1)
		pm.cHits.Load().Inc()
	} else {
		pm.misses.Add(1)
		pm.cMisses.Load().Inc()
	}
	return p, ok
}

func (pm *prefMemo) store(k prefKey, p prefParams) {
	pm.mu.Lock()
	if len(pm.m) >= memoMaxEntries {
		pm.m = make(map[prefKey]prefParams)
	}
	pm.m[k] = p
	pm.mu.Unlock()
}

// ScopeKey derives the memo scope of a query: its FROM relations, sorted.
// Every per-preference estimate under this Estimator is identical for two
// queries with equal scope keys (see prefKey).
func (e *Estimator) ScopeKey(q *query.Query) string {
	if len(q.From) == 1 {
		return q.From[0]
	}
	rels := append([]string(nil), q.From...)
	sort.Strings(rels)
	return strings.Join(rels, "\x1f")
}

// PrefParams returns the memoized (SubQueryCost, Shrink) of the preference
// under the scope, if this Estimator computed it before. Counts a hit or a
// miss either way; disabled memos always miss without counting.
func (e *Estimator) PrefParams(scope string, p prefs.Implicit) (cost, shrink float64, ok bool) {
	pm := e.memo.Load()
	if pm == nil {
		return 0, 0, false
	}
	params, ok := pm.lookup(prefKey{scope: scope, pref: p.Condition()})
	return params.cost, params.shrink, ok
}

// StorePrefParams memoizes one computed (SubQueryCost, Shrink) pair.
func (e *Estimator) StorePrefParams(scope string, p prefs.Implicit, cost, shrink float64) {
	pm := e.memo.Load()
	if pm == nil {
		return
	}
	pm.store(prefKey{scope: scope, pref: p.Condition()}, prefParams{cost: cost, shrink: shrink})
}

// MemoCounts reports the memo's lifetime hit/miss totals (zeros when the
// memo is disabled).
func (e *Estimator) MemoCounts() (hits, misses int64) {
	pm := e.memo.Load()
	if pm == nil {
		return 0, 0
	}
	return pm.hits.Load(), pm.misses.Load()
}

// DisableMemo turns the memo off: every PrefParams call misses (uncounted)
// and stores are dropped. For A/B benchmarking of the shared-work layers;
// call before serving traffic through this Estimator.
func (e *Estimator) DisableMemo() { e.memo.Store(nil) }

// ObserveMemo exports the memo's hit/miss totals as
// estimate_memo_hits_total / estimate_memo_misses_total counters in reg.
// Counts accumulated before attachment are folded in so a registry wired
// after warm-up still sees lifetime totals; nil detaches.
func (e *Estimator) ObserveMemo(reg *obs.Registry) {
	pm := e.memo.Load()
	if pm == nil {
		return
	}
	if reg == nil {
		pm.cHits.Store(nil)
		pm.cMisses.Store(nil)
		return
	}
	h := reg.Counter("estimate_memo_hits_total")
	m := reg.Counter("estimate_memo_misses_total")
	if d := pm.hits.Load() - h.Value(); d > 0 {
		h.Add(d)
	}
	if d := pm.misses.Load() - m.Value(); d > 0 {
		m.Add(d)
	}
	pm.cHits.Store(h)
	pm.cMisses.Store(m)
}
