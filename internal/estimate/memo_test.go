package estimate

import (
	"fmt"
	"sync"
	"testing"

	"cqp/internal/catalog"
	"cqp/internal/obs"
	"cqp/internal/prefs"
	"cqp/internal/sqlparse"
	"cqp/internal/testutil"
)

func TestScopeKeyOrderInsensitive(t *testing.T) {
	db := testutil.MovieDB(256)
	e := New(catalog.MustBuild(db), 1)
	q1 := sqlparse.MustParse(db.Schema(), "SELECT title FROM MOVIE, DIRECTOR WHERE MOVIE.did = DIRECTOR.did")
	q2 := sqlparse.MustParse(db.Schema(), "SELECT name FROM DIRECTOR, MOVIE WHERE MOVIE.did = DIRECTOR.did")
	if e.ScopeKey(q1) != e.ScopeKey(q2) {
		t.Errorf("scope keys differ for same FROM set: %q vs %q", e.ScopeKey(q1), e.ScopeKey(q2))
	}
	q3 := sqlparse.MustParse(db.Schema(), "SELECT title FROM MOVIE")
	if e.ScopeKey(q1) == e.ScopeKey(q3) {
		t.Error("scope keys equal for different FROM sets")
	}
}

func TestMemoRoundTripAndCounts(t *testing.T) {
	db := testutil.MovieDB(256)
	e := New(catalog.MustBuild(db), 1)
	q := sqlparse.MustParse(db.Schema(), "SELECT title FROM MOVIE")
	scope := e.ScopeKey(q)
	p := prefOf(t, "doi(MOVIE.year >= 1990) = 0.5")

	if _, _, ok := e.PrefParams(scope, p); ok {
		t.Fatal("lookup hit on empty memo")
	}
	e.StorePrefParams(scope, p, 12.5, 0.25)
	cost, shrink, ok := e.PrefParams(scope, p)
	if !ok || cost != 12.5 || shrink != 0.25 {
		t.Fatalf("roundtrip = (%g, %g, %v), want (12.5, 0.25, true)", cost, shrink, ok)
	}
	if h, m := e.MemoCounts(); h != 1 || m != 1 {
		t.Errorf("counts = (%d hits, %d misses), want (1, 1)", h, m)
	}

	// A different preference under the same scope is a distinct entry.
	other := prefOf(t, "doi(MOVIE.year >= 2000) = 0.5")
	if _, _, ok := e.PrefParams(scope, other); ok {
		t.Error("distinct preference hit the first entry")
	}
}

func TestMemoDisable(t *testing.T) {
	db := testutil.MovieDB(256)
	e := New(catalog.MustBuild(db), 1)
	q := sqlparse.MustParse(db.Schema(), "SELECT title FROM MOVIE")
	scope := e.ScopeKey(q)
	p := prefOf(t, "doi(MOVIE.year >= 1990) = 0.5")
	e.StorePrefParams(scope, p, 1, 1)

	e.DisableMemo()
	if _, _, ok := e.PrefParams(scope, p); ok {
		t.Error("disabled memo returned a hit")
	}
	e.StorePrefParams(scope, p, 2, 2) // must not panic, silently dropped
	if h, m := e.MemoCounts(); h != 0 || m != 0 {
		t.Errorf("disabled memo counts = (%d, %d), want zeros", h, m)
	}
}

func TestMemoEpochFlushOnOverflow(t *testing.T) {
	pm := newPrefMemo()
	first := prefKey{scope: "S", pref: "p-0"}
	for i := 0; i < memoMaxEntries; i++ {
		pm.store(prefKey{scope: "S", pref: fmt.Sprintf("p-%d", i)}, prefParams{cost: float64(i)})
	}
	if _, ok := pm.lookup(first); !ok {
		t.Fatal("entry missing before overflow")
	}
	// One more store crosses memoMaxEntries and flushes the epoch.
	pm.store(prefKey{scope: "S", pref: "overflow"}, prefParams{})
	if _, ok := pm.lookup(first); ok {
		t.Error("entry survived epoch flush")
	}
	if _, ok := pm.lookup(prefKey{scope: "S", pref: "overflow"}); !ok {
		t.Error("post-flush store missing")
	}
}

func TestObserveMemoFoldsPreAttachmentCounts(t *testing.T) {
	db := testutil.MovieDB(256)
	e := New(catalog.MustBuild(db), 1)
	q := sqlparse.MustParse(db.Schema(), "SELECT title FROM MOVIE")
	scope := e.ScopeKey(q)
	p := prefOf(t, "doi(MOVIE.year >= 1990) = 0.5")

	e.PrefParams(scope, p) // miss
	e.StorePrefParams(scope, p, 1, 1)
	e.PrefParams(scope, p) // hit

	reg := obs.NewRegistry()
	e.ObserveMemo(reg)
	if got := reg.Counter("estimate_memo_hits_total").Value(); got != 1 {
		t.Errorf("hits counter = %d after attach, want 1", got)
	}
	if got := reg.Counter("estimate_memo_misses_total").Value(); got != 1 {
		t.Errorf("misses counter = %d after attach, want 1", got)
	}
	e.PrefParams(scope, p) // hit, live-counted
	if got := reg.Counter("estimate_memo_hits_total").Value(); got != 2 {
		t.Errorf("hits counter = %d after live hit, want 2", got)
	}
	e.ObserveMemo(nil) // detach must not panic and stops counting
	e.PrefParams(scope, p)
	if got := reg.Counter("estimate_memo_hits_total").Value(); got != 2 {
		t.Errorf("hits counter = %d after detach, want 2", got)
	}
}

// TestMemoConcurrent hammers one memo from parallel readers, writers and a
// concurrent DisableMemo — the estimator is shared by every in-flight
// personalization, so this test is the -race witness for that sharing.
func TestMemoConcurrent(t *testing.T) {
	db := testutil.MovieDB(256)
	e := New(catalog.MustBuild(db), 1)
	q := sqlparse.MustParse(db.Schema(), "SELECT title FROM MOVIE")
	scope := e.ScopeKey(q)
	ps := make([]prefs.Implicit, 8)
	for i := range ps {
		ps[i] = prefOf(t, fmt.Sprintf("doi(MOVIE.year >= %d) = 0.5", 1900+i))
	}

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			p := ps[g]
			for i := 0; i < 500; i++ {
				if _, _, ok := e.PrefParams(scope, p); !ok {
					e.StorePrefParams(scope, p, float64(g), 0.5)
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		e.MemoCounts()
		e.DisableMemo()
	}()
	wg.Wait()
}
