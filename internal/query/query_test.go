package query

import (
	"strings"
	"testing"
	"testing/quick"

	"cqp/internal/schema"
	"cqp/internal/testutil"
	"cqp/internal/value"
)

func movieQuery(t *testing.T) *Query {
	t.Helper()
	q, err := New([]string{"MOVIE"}, "MOVIE.title")
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func TestOpString(t *testing.T) {
	ops := map[Op]string{OpEq: "=", OpNe: "<>", OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">="}
	for op, want := range ops {
		if op.String() != want {
			t.Errorf("Op %v", op)
		}
		back, err := ParseOp(want)
		if err != nil || back != op {
			t.Errorf("ParseOp(%q) = %v, %v", want, back, err)
		}
	}
	if _, err := ParseOp("=="); err == nil {
		t.Error("ParseOp(==) should fail")
	}
	if o, err := ParseOp("!="); err != nil || o != OpNe {
		t.Error("!= is an alias of <>")
	}
	if !strings.HasPrefix(Op(99).String(), "Op(") {
		t.Error("unknown op string")
	}
}

func TestOpEval(t *testing.T) {
	cases := []struct {
		op   Op
		a, b value.Value
		want bool
	}{
		{OpEq, value.Int(1), value.Int(1), true},
		{OpEq, value.Int(1), value.Int(2), false},
		{OpNe, value.Int(1), value.Int(2), true},
		{OpLt, value.Int(1), value.Float(1.5), true},
		{OpLe, value.Int(2), value.Int(2), true},
		{OpGt, value.Str("b"), value.Str("a"), true},
		{OpGe, value.Str("a"), value.Str("b"), false},
		{OpEq, value.Null(), value.Null(), false},   // SQL NULL semantics
		{OpEq, value.Int(1), value.Str("1"), false}, // incomparable kinds
		{OpNe, value.Int(1), value.Str("1"), false}, // incomparable -> false, not true
	}
	for _, c := range cases {
		if got := c.op.Eval(c.a, c.b); got != c.want {
			t.Errorf("%v.Eval(%v, %v) = %v, want %v", c.op, c.a, c.b, got, c.want)
		}
	}
}

func TestOpEvalTrichotomyProperty(t *testing.T) {
	f := func(a, b int32) bool {
		x, y := value.Int(int64(a)), value.Int(int64(b))
		lt, eq, gt := OpLt.Eval(x, y), OpEq.Eval(x, y), OpGt.Eval(x, y)
		count := 0
		for _, v := range []bool{lt, eq, gt} {
			if v {
				count++
			}
		}
		return count == 1 &&
			OpLe.Eval(x, y) == (lt || eq) &&
			OpGe.Eval(x, y) == (gt || eq) &&
			OpNe.Eval(x, y) == !eq
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBuilderMethods(t *testing.T) {
	q := movieQuery(t)
	q.AddJoin(Join{
		Left:  schema.AttrRef{Relation: "MOVIE", Attr: "did"},
		Right: schema.AttrRef{Relation: "DIRECTOR", Attr: "did"},
	})
	q.AddSelection(Selection{
		Attr: schema.AttrRef{Relation: "DIRECTOR", Attr: "name"}, Op: OpEq,
		Value: value.Str("W. Allen"),
	})
	if !q.HasRelation("DIRECTOR") {
		t.Error("AddJoin must add relations to FROM")
	}
	q.AddRelation("DIRECTOR") // idempotent
	if len(q.From) != 2 {
		t.Errorf("From = %v", q.From)
	}
	if err := q.Validate(testutil.MovieSchema()); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestValidateErrors(t *testing.T) {
	s := testutil.MovieSchema()
	bad := []*Query{
		{From: nil, Project: []schema.AttrRef{{Relation: "MOVIE", Attr: "title"}}},
		{From: []string{"NOPE"}, Project: []schema.AttrRef{{Relation: "NOPE", Attr: "x"}}},
		{From: []string{"MOVIE", "MOVIE"}, Project: []schema.AttrRef{{Relation: "MOVIE", Attr: "title"}}},
		{From: []string{"MOVIE"}}, // empty projection
		{From: []string{"MOVIE"}, Project: []schema.AttrRef{{Relation: "DIRECTOR", Attr: "name"}}},
		{ // join referencing relation not in FROM
			From:    []string{"MOVIE"},
			Joins:   []Join{{Left: schema.AttrRef{Relation: "MOVIE", Attr: "did"}, Right: schema.AttrRef{Relation: "DIRECTOR", Attr: "did"}}},
			Project: []schema.AttrRef{{Relation: "MOVIE", Attr: "title"}},
		},
		{ // join type mismatch
			From:    []string{"MOVIE", "DIRECTOR"},
			Joins:   []Join{{Left: schema.AttrRef{Relation: "MOVIE", Attr: "title"}, Right: schema.AttrRef{Relation: "DIRECTOR", Attr: "did"}}},
			Project: []schema.AttrRef{{Relation: "MOVIE", Attr: "title"}},
		},
		{ // literal not coercible
			From:       []string{"MOVIE"},
			Selections: []Selection{{Attr: schema.AttrRef{Relation: "MOVIE", Attr: "year"}, Op: OpEq, Value: value.Str("x")}},
			Project:    []schema.AttrRef{{Relation: "MOVIE", Attr: "title"}},
		},
	}
	for i, q := range bad {
		if err := q.Validate(s); err == nil {
			t.Errorf("case %d should fail: %s", i, q.SQL())
		}
	}
}

func TestConnected(t *testing.T) {
	q := movieQuery(t)
	if !q.Connected() {
		t.Error("single relation is connected")
	}
	q.AddRelation("DIRECTOR")
	if q.Connected() {
		t.Error("two relations without a join are disconnected")
	}
	q.AddJoin(Join{
		Left:  schema.AttrRef{Relation: "MOVIE", Attr: "did"},
		Right: schema.AttrRef{Relation: "DIRECTOR", Attr: "did"},
	})
	if !q.Connected() {
		t.Error("join connects them")
	}
}

func TestSQLRendering(t *testing.T) {
	q := movieQuery(t)
	q.AddJoin(Join{
		Left:  schema.AttrRef{Relation: "MOVIE", Attr: "mid"},
		Right: schema.AttrRef{Relation: "GENRE", Attr: "mid"},
	})
	q.AddSelection(Selection{
		Attr: schema.AttrRef{Relation: "GENRE", Attr: "genre"}, Op: OpEq,
		Value: value.Str("musical"),
	})
	got := q.SQL()
	want := "SELECT MOVIE.title FROM MOVIE, GENRE WHERE MOVIE.mid = GENRE.mid AND GENRE.genre = 'musical'"
	if got != want {
		t.Errorf("SQL =\n%s\nwant\n%s", got, want)
	}
	q.Distinct = true
	if !strings.Contains(q.SQL(), "SELECT DISTINCT") {
		t.Error("DISTINCT not rendered")
	}
	if q.String() != q.SQL() {
		t.Error("String should equal SQL")
	}
}

func TestCloneIndependence(t *testing.T) {
	q := movieQuery(t)
	q.AddSelection(Selection{
		Attr: schema.AttrRef{Relation: "MOVIE", Attr: "year"}, Op: OpGe,
		Value: value.Int(1990),
	})
	c := q.Clone()
	c.AddRelation("GENRE")
	c.Selections[0].Value = value.Int(2000)
	if q.HasRelation("GENRE") {
		t.Error("clone aliases From")
	}
	if q.Selections[0].Value.AsInt() != 1990 {
		t.Error("clone aliases Selections")
	}
}

func TestFingerprintOrderIndependence(t *testing.T) {
	a := movieQuery(t)
	a.AddJoin(Join{Left: schema.AttrRef{Relation: "MOVIE", Attr: "mid"}, Right: schema.AttrRef{Relation: "GENRE", Attr: "mid"}})
	a.AddJoin(Join{Left: schema.AttrRef{Relation: "MOVIE", Attr: "did"}, Right: schema.AttrRef{Relation: "DIRECTOR", Attr: "did"}})

	b := movieQuery(t)
	// Reversed join order and flipped endpoints.
	b.AddJoin(Join{Left: schema.AttrRef{Relation: "DIRECTOR", Attr: "did"}, Right: schema.AttrRef{Relation: "MOVIE", Attr: "did"}})
	b.AddJoin(Join{Left: schema.AttrRef{Relation: "GENRE", Attr: "mid"}, Right: schema.AttrRef{Relation: "MOVIE", Attr: "mid"}})

	// FROM order differs but the set matches after sorting.
	if a.Fingerprint() != b.Fingerprint() {
		t.Errorf("fingerprints differ:\n%s\n%s", a.Fingerprint(), b.Fingerprint())
	}
	b.AddSelection(Selection{Attr: schema.AttrRef{Relation: "GENRE", Attr: "genre"}, Op: OpEq, Value: value.Str("drama")})
	if a.Fingerprint() == b.Fingerprint() {
		t.Error("different queries must not collide")
	}
}

func TestValidateOrderByAndLimit(t *testing.T) {
	s := testutil.MovieSchema()
	q := movieQuery(t)
	q.OrderBy = append(q.OrderBy, OrderKey{Attr: schema.AttrRef{Relation: "MOVIE", Attr: "title"}})
	if err := q.Validate(s); err != nil {
		t.Errorf("projected order key must validate: %v", err)
	}
	q2 := movieQuery(t)
	q2.OrderBy = append(q2.OrderBy, OrderKey{Attr: schema.AttrRef{Relation: "MOVIE", Attr: "year"}})
	if err := q2.Validate(s); err == nil {
		t.Error("unprojected order key must fail")
	}
	q3 := movieQuery(t)
	q3.OrderBy = append(q3.OrderBy, OrderKey{Attr: schema.AttrRef{Relation: "NOPE", Attr: "x"}})
	if err := q3.Validate(s); err == nil {
		t.Error("unresolvable order key must fail")
	}
	q4 := movieQuery(t)
	q4.Limit = -1
	if err := q4.Validate(s); err == nil {
		t.Error("negative limit must fail")
	}
}

func TestOrderKeyStringAndSQL(t *testing.T) {
	k := OrderKey{Attr: schema.AttrRef{Relation: "MOVIE", Attr: "year"}, Desc: true}
	if k.String() != "MOVIE.year DESC" {
		t.Errorf("String = %q", k.String())
	}
	q := movieQuery(t)
	q.OrderBy = []OrderKey{k, {Attr: schema.AttrRef{Relation: "MOVIE", Attr: "title"}}}
	q.Limit = 7
	sql := q.SQL()
	if !strings.Contains(sql, "ORDER BY MOVIE.year DESC, MOVIE.title") || !strings.Contains(sql, "LIMIT 7") {
		t.Errorf("SQL = %s", sql)
	}
	c := q.Clone()
	c.OrderBy[0].Desc = false
	c.Limit = 9
	if !q.OrderBy[0].Desc || q.Limit != 7 {
		t.Error("clone aliases OrderBy/Limit")
	}
}
