// Package query models the conjunctive select-project-join queries that CQP
// personalizes: a set of relations, equality joins between them, comparison
// selections, and a projection list.
//
// This is the level at which query personalization operates in the paper —
// a personalized query Qx := Q ∧ Px conjoins the original query with
// preference conditions, each of which is a join path plus a selection.
package query

import (
	"fmt"
	"sort"
	"strings"

	"cqp/internal/catalog"
	"cqp/internal/schema"
	"cqp/internal/value"
)

// Op is a comparison operator in a selection condition.
type Op uint8

// The comparison operators supported in selections.
const (
	OpEq Op = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
)

// String renders the operator in SQL syntax.
func (o Op) String() string {
	switch o {
	case OpEq:
		return "="
	case OpNe:
		return "<>"
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	default:
		return fmt.Sprintf("Op(%d)", uint8(o))
	}
}

// CatalogOp maps the operator onto the catalog's operator enum.
func (o Op) CatalogOp() catalog.Op { return catalog.Op(o) }

// Eval applies the operator to two values. Incomparable operands yield
// false (SQL's unknown collapses to false in our two-valued semantics).
func (o Op) Eval(a, b value.Value) bool {
	if a.IsNull() || b.IsNull() || !value.Comparable(a, b) {
		return false
	}
	c := a.Compare(b)
	switch o {
	case OpEq:
		return c == 0
	case OpNe:
		return c != 0
	case OpLt:
		return c < 0
	case OpLe:
		return c <= 0
	case OpGt:
		return c > 0
	case OpGe:
		return c >= 0
	default:
		return false
	}
}

// ParseOp parses a SQL comparison operator.
func ParseOp(s string) (Op, error) {
	switch s {
	case "=":
		return OpEq, nil
	case "<>", "!=":
		return OpNe, nil
	case "<":
		return OpLt, nil
	case "<=":
		return OpLe, nil
	case ">":
		return OpGt, nil
	case ">=":
		return OpGe, nil
	default:
		return 0, fmt.Errorf("query: unknown operator %q", s)
	}
}

// Selection is an atomic selection condition "attr op literal".
type Selection struct {
	Attr  schema.AttrRef
	Op    Op
	Value value.Value
}

// String renders the selection in SQL syntax.
func (s Selection) String() string {
	return fmt.Sprintf("%s %s %s", s.Attr, s.Op, s.Value.SQL())
}

// Join is an equality join condition between two attributes.
type Join struct {
	Left, Right schema.AttrRef
}

// String renders the join in SQL syntax.
func (j Join) String() string { return j.Left.String() + " = " + j.Right.String() }

// OrderKey is one ORDER BY term.
type OrderKey struct {
	Attr schema.AttrRef
	Desc bool
}

// String renders the key in SQL syntax.
func (o OrderKey) String() string {
	if o.Desc {
		return o.Attr.String() + " DESC"
	}
	return o.Attr.String()
}

// Query is a conjunctive SPJ query. Each relation appears at most once
// (preference paths are acyclic in the personalization graph, so no
// self-joins arise; see DESIGN.md).
type Query struct {
	From       []string
	Joins      []Join
	Selections []Selection
	Project    []schema.AttrRef
	Distinct   bool
	// OrderBy sorts the result; Limit (when > 0) truncates it. Both apply
	// after projection.
	OrderBy []OrderKey
	Limit   int
}

// New builds a query over the given relations projecting the given
// attributes ("REL.attr" strings), for concise construction in examples.
func New(from []string, project ...string) (*Query, error) {
	q := &Query{From: append([]string(nil), from...)}
	for _, p := range project {
		a, err := schema.ParseAttrRef(p)
		if err != nil {
			return nil, err
		}
		q.Project = append(q.Project, a)
	}
	return q, nil
}

// Clone returns a deep copy of the query.
func (q *Query) Clone() *Query {
	return &Query{
		From:       append([]string(nil), q.From...),
		Joins:      append([]Join(nil), q.Joins...),
		Selections: append([]Selection(nil), q.Selections...),
		Project:    append([]schema.AttrRef(nil), q.Project...),
		Distinct:   q.Distinct,
		OrderBy:    append([]OrderKey(nil), q.OrderBy...),
		Limit:      q.Limit,
	}
}

// HasRelation reports whether the query's FROM clause includes the relation.
func (q *Query) HasRelation(name string) bool {
	for _, r := range q.From {
		if r == name {
			return true
		}
	}
	return false
}

// AddRelation appends the relation to FROM if not already present.
func (q *Query) AddRelation(name string) {
	if !q.HasRelation(name) {
		q.From = append(q.From, name)
	}
}

// AddJoin appends a join condition, adding both endpoint relations to FROM.
func (q *Query) AddJoin(j Join) {
	q.AddRelation(j.Left.Relation)
	q.AddRelation(j.Right.Relation)
	q.Joins = append(q.Joins, j)
}

// AddSelection appends a selection condition, adding its relation to FROM.
func (q *Query) AddSelection(s Selection) {
	q.AddRelation(s.Attr.Relation)
	q.Selections = append(q.Selections, s)
}

// Validate checks the query against a schema: relations exist, all
// referenced attributes resolve to relations in FROM, joins are
// type-compatible, selection literals are coercible to the column type, and
// the projection is non-empty.
func (q *Query) Validate(s *schema.Schema) error {
	if len(q.From) == 0 {
		return fmt.Errorf("query: empty FROM clause")
	}
	seen := make(map[string]bool, len(q.From))
	for _, name := range q.From {
		if s.Relation(name) == nil {
			return fmt.Errorf("query: unknown relation %s", name)
		}
		if seen[name] {
			return fmt.Errorf("query: relation %s appears twice in FROM", name)
		}
		seen[name] = true
	}
	check := func(a schema.AttrRef) (schema.Column, error) {
		if !seen[a.Relation] {
			return schema.Column{}, fmt.Errorf("query: %s references relation not in FROM", a)
		}
		return s.ResolveAttr(a)
	}
	for _, j := range q.Joins {
		lc, err := check(j.Left)
		if err != nil {
			return err
		}
		rc, err := check(j.Right)
		if err != nil {
			return err
		}
		if lc.Type != rc.Type {
			return fmt.Errorf("query: join %s has mismatched types %s and %s", j, lc.Type, rc.Type)
		}
	}
	for _, sel := range q.Selections {
		c, err := check(sel.Attr)
		if err != nil {
			return err
		}
		if !comparableWith(sel.Value, c.Type) {
			return fmt.Errorf("query: selection %s: %s literal is not comparable with %s column",
				sel, sel.Value.Kind(), c.Type)
		}
	}
	if len(q.Project) == 0 {
		return fmt.Errorf("query: empty projection")
	}
	for _, p := range q.Project {
		if _, err := check(p); err != nil {
			return err
		}
	}
	for _, o := range q.OrderBy {
		if _, err := check(o.Attr); err != nil {
			return err
		}
		// Ordering applies to the projected rows, so the key must be
		// projected (our executor sorts after projection).
		found := false
		for _, p := range q.Project {
			if p == o.Attr {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("query: ORDER BY %s must appear in the projection", o.Attr)
		}
	}
	if q.Limit < 0 {
		return fmt.Errorf("query: negative LIMIT %d", q.Limit)
	}
	return nil
}

// comparableWith reports whether a literal of the value's kind can be
// compared against a column of the given type: same kind, both numeric, or
// a NULL literal (which simply never matches).
func comparableWith(v value.Value, t value.Kind) bool {
	if v.IsNull() || v.Kind() == t {
		return true
	}
	numeric := func(k value.Kind) bool { return k == value.KindInt || k == value.KindFloat }
	return numeric(v.Kind()) && numeric(t)
}

// Connected reports whether the query's join graph connects all FROM
// relations (a disconnected query is a cartesian product, which the paper's
// cost model never produces).
func (q *Query) Connected() bool {
	if len(q.From) <= 1 {
		return true
	}
	adj := make(map[string][]string)
	for _, j := range q.Joins {
		adj[j.Left.Relation] = append(adj[j.Left.Relation], j.Right.Relation)
		adj[j.Right.Relation] = append(adj[j.Right.Relation], j.Left.Relation)
	}
	seen := map[string]bool{q.From[0]: true}
	stack := []string{q.From[0]}
	for len(stack) > 0 {
		r := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, n := range adj[r] {
			if !seen[n] {
				seen[n] = true
				stack = append(stack, n)
			}
		}
	}
	return len(seen) == len(q.From)
}

// SQL renders the query as a SQL string.
func (q *Query) SQL() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	if q.Distinct {
		b.WriteString("DISTINCT ")
	}
	for i, p := range q.Project {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(p.String())
	}
	b.WriteString(" FROM ")
	b.WriteString(strings.Join(q.From, ", "))
	var conds []string
	for _, j := range q.Joins {
		conds = append(conds, j.String())
	}
	for _, s := range q.Selections {
		conds = append(conds, s.String())
	}
	if len(conds) > 0 {
		b.WriteString(" WHERE ")
		b.WriteString(strings.Join(conds, " AND "))
	}
	if len(q.OrderBy) > 0 {
		keys := make([]string, len(q.OrderBy))
		for i, o := range q.OrderBy {
			keys[i] = o.String()
		}
		b.WriteString(" ORDER BY ")
		b.WriteString(strings.Join(keys, ", "))
	}
	if q.Limit > 0 {
		fmt.Fprintf(&b, " LIMIT %d", q.Limit)
	}
	return b.String()
}

// String is SQL().
func (q *Query) String() string { return q.SQL() }

// Fingerprint returns a canonical textual identity for the query,
// independent of clause ordering, for caching and deduplication.
func (q *Query) Fingerprint() string {
	from := append([]string(nil), q.From...)
	sort.Strings(from)
	joins := make([]string, len(q.Joins))
	for i, j := range q.Joins {
		l, r := j.Left.String(), j.Right.String()
		if r < l {
			l, r = r, l
		}
		joins[i] = l + "=" + r
	}
	sort.Strings(joins)
	sels := make([]string, len(q.Selections))
	for i, s := range q.Selections {
		sels[i] = s.String()
	}
	sort.Strings(sels)
	proj := make([]string, len(q.Project))
	for i, p := range q.Project {
		proj[i] = p.String()
	}
	order := make([]string, len(q.OrderBy))
	for i, o := range q.OrderBy {
		order[i] = o.String()
	}
	return strings.Join(from, ",") + "|" + strings.Join(joins, ",") + "|" +
		strings.Join(sels, ",") + "|" + strings.Join(proj, ",") + "|" +
		strings.Join(order, ",") + fmt.Sprintf("|%d", q.Limit)
}
