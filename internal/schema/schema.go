// Package schema models relational schemas and the schema graph that the
// personalization graph of Koutrika & Ioannidis (SIGMOD 2005) extends.
//
// A Schema holds relations (with typed attributes) and join edges between
// attributes of different relations — the "potential join conditions" that
// both queries and join preferences draw from.
package schema

import (
	"fmt"
	"sort"
	"strings"

	"cqp/internal/value"
)

// Column is a typed attribute of a relation.
type Column struct {
	Name string
	Type value.Kind
}

// Relation describes one relation: its name, ordered attributes, and an
// optional primary-key attribute used by statistics and generators.
type Relation struct {
	Name    string
	Columns []Column
	// Key is the name of the primary-key column, or "" if none.
	Key string

	colIndex map[string]int
}

// NewRelation builds a relation and validates column-name uniqueness.
func NewRelation(name string, cols []Column, key string) (*Relation, error) {
	if name == "" {
		return nil, fmt.Errorf("schema: relation name must be non-empty")
	}
	if len(cols) == 0 {
		return nil, fmt.Errorf("schema: relation %s has no columns", name)
	}
	r := &Relation{Name: name, Columns: cols, Key: key, colIndex: make(map[string]int, len(cols))}
	for i, c := range cols {
		if c.Name == "" {
			return nil, fmt.Errorf("schema: relation %s has an unnamed column", name)
		}
		if _, dup := r.colIndex[c.Name]; dup {
			return nil, fmt.Errorf("schema: relation %s has duplicate column %s", name, c.Name)
		}
		r.colIndex[c.Name] = i
	}
	if key != "" {
		if _, ok := r.colIndex[key]; !ok {
			return nil, fmt.Errorf("schema: relation %s key %s is not a column", name, key)
		}
	}
	return r, nil
}

// ColumnIndex returns the position of the named column, or -1.
func (r *Relation) ColumnIndex(name string) int {
	if i, ok := r.colIndex[name]; ok {
		return i
	}
	return -1
}

// Column returns the named column, or an error if it does not exist.
func (r *Relation) Column(name string) (Column, error) {
	i := r.ColumnIndex(name)
	if i < 0 {
		return Column{}, fmt.Errorf("schema: relation %s has no column %s", r.Name, name)
	}
	return r.Columns[i], nil
}

// AttrRef names one attribute of one relation, e.g. MOVIE.did.
type AttrRef struct {
	Relation string
	Attr     string
}

// String renders the reference as Relation.Attr.
func (a AttrRef) String() string { return a.Relation + "." + a.Attr }

// ParseAttrRef parses "REL.attr".
func ParseAttrRef(s string) (AttrRef, error) {
	parts := strings.Split(strings.TrimSpace(s), ".")
	if len(parts) != 2 || parts[0] == "" || parts[1] == "" {
		return AttrRef{}, fmt.Errorf("schema: invalid attribute reference %q", s)
	}
	return AttrRef{Relation: parts[0], Attr: parts[1]}, nil
}

// JoinEdge is an undirected potential join condition between two attributes
// of different relations — an edge of the schema graph.
type JoinEdge struct {
	Left, Right AttrRef
}

// String renders the edge as "L.a = R.b".
func (e JoinEdge) String() string { return e.Left.String() + " = " + e.Right.String() }

// Schema is a set of relations plus the schema-graph join edges.
type Schema struct {
	relations map[string]*Relation
	order     []string // insertion order, for deterministic iteration
	joins     []JoinEdge
}

// New returns an empty schema.
func New() *Schema {
	return &Schema{relations: make(map[string]*Relation)}
}

// AddRelation registers a relation.
func (s *Schema) AddRelation(r *Relation) error {
	if _, dup := s.relations[r.Name]; dup {
		return fmt.Errorf("schema: duplicate relation %s", r.Name)
	}
	s.relations[r.Name] = r
	s.order = append(s.order, r.Name)
	return nil
}

// MustAddRelation builds and registers a relation from (name, type) pairs,
// panicking on definition errors. Intended for tests and static schemas.
func (s *Schema) MustAddRelation(name, key string, cols ...Column) *Relation {
	r, err := NewRelation(name, cols, key)
	if err != nil {
		panic(err)
	}
	if err := s.AddRelation(r); err != nil {
		panic(err)
	}
	return r
}

// Relation returns the named relation, or nil.
func (s *Schema) Relation(name string) *Relation { return s.relations[name] }

// Relations returns all relations in insertion order.
func (s *Schema) Relations() []*Relation {
	out := make([]*Relation, 0, len(s.order))
	for _, n := range s.order {
		out = append(out, s.relations[n])
	}
	return out
}

// RelationNames returns all relation names in insertion order.
func (s *Schema) RelationNames() []string {
	return append([]string(nil), s.order...)
}

// ResolveAttr validates an attribute reference against the schema and
// returns its column definition.
func (s *Schema) ResolveAttr(a AttrRef) (Column, error) {
	r := s.Relation(a.Relation)
	if r == nil {
		return Column{}, fmt.Errorf("schema: unknown relation %s", a.Relation)
	}
	return r.Column(a.Attr)
}

// AddJoin registers a potential join edge after validating both endpoints
// refer to existing, type-compatible attributes of distinct relations.
func (s *Schema) AddJoin(left, right AttrRef) error {
	if left.Relation == right.Relation {
		return fmt.Errorf("schema: join edge within one relation: %s, %s", left, right)
	}
	lc, err := s.ResolveAttr(left)
	if err != nil {
		return err
	}
	rc, err := s.ResolveAttr(right)
	if err != nil {
		return err
	}
	if lc.Type != rc.Type {
		return fmt.Errorf("schema: join edge type mismatch: %s is %s, %s is %s",
			left, lc.Type, right, rc.Type)
	}
	s.joins = append(s.joins, JoinEdge{Left: left, Right: right})
	return nil
}

// MustAddJoin is AddJoin panicking on error, for static schema construction.
func (s *Schema) MustAddJoin(left, right string) {
	l, err := ParseAttrRef(left)
	if err != nil {
		panic(err)
	}
	r, err := ParseAttrRef(right)
	if err != nil {
		panic(err)
	}
	if err := s.AddJoin(l, r); err != nil {
		panic(err)
	}
}

// Joins returns all join edges.
func (s *Schema) Joins() []JoinEdge { return append([]JoinEdge(nil), s.joins...) }

// JoinsFrom returns every join edge incident to the named relation, oriented
// so that the named relation is on the left. This is how traversals expand
// outward from a relation.
func (s *Schema) JoinsFrom(relation string) []JoinEdge {
	var out []JoinEdge
	for _, e := range s.joins {
		switch relation {
		case e.Left.Relation:
			out = append(out, e)
		case e.Right.Relation:
			out = append(out, JoinEdge{Left: e.Right, Right: e.Left})
		}
	}
	return out
}

// JoinBetween returns the join edge connecting the two relations (oriented
// left→right), if any.
func (s *Schema) JoinBetween(left, right string) (JoinEdge, bool) {
	for _, e := range s.JoinsFrom(left) {
		if e.Right.Relation == right {
			return e, true
		}
	}
	return JoinEdge{}, false
}

// Validate performs whole-schema checks: every join endpoint resolves and
// no relation is empty. It is cheap and safe to call repeatedly.
func (s *Schema) Validate() error {
	for _, e := range s.joins {
		if _, err := s.ResolveAttr(e.Left); err != nil {
			return err
		}
		if _, err := s.ResolveAttr(e.Right); err != nil {
			return err
		}
	}
	return nil
}

// String renders the schema in a compact DDL-like form, deterministically.
func (s *Schema) String() string {
	var b strings.Builder
	names := append([]string(nil), s.order...)
	sort.Strings(names)
	for _, n := range names {
		r := s.relations[n]
		b.WriteString(r.Name)
		b.WriteString("(")
		for i, c := range r.Columns {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(c.Name)
			if c.Name == r.Key {
				b.WriteString("*")
			}
		}
		b.WriteString(")\n")
	}
	for _, e := range s.joins {
		b.WriteString("  join ")
		b.WriteString(e.String())
		b.WriteString("\n")
	}
	return b.String()
}
