package schema

import (
	"strings"
	"testing"

	"cqp/internal/value"
)

// movieSchema builds the paper's example schema:
// MOVIE(mid, title, year, duration, did), DIRECTOR(did, name), GENRE(mid, genre).
func movieSchema(t *testing.T) *Schema {
	t.Helper()
	s := New()
	s.MustAddRelation("MOVIE", "mid",
		Column{"mid", value.KindInt}, Column{"title", value.KindString},
		Column{"year", value.KindInt}, Column{"duration", value.KindInt},
		Column{"did", value.KindInt})
	s.MustAddRelation("DIRECTOR", "did",
		Column{"did", value.KindInt}, Column{"name", value.KindString})
	s.MustAddRelation("GENRE", "",
		Column{"mid", value.KindInt}, Column{"genre", value.KindString})
	s.MustAddJoin("MOVIE.did", "DIRECTOR.did")
	s.MustAddJoin("MOVIE.mid", "GENRE.mid")
	return s
}

func TestNewRelationValidation(t *testing.T) {
	if _, err := NewRelation("", []Column{{"a", value.KindInt}}, ""); err == nil {
		t.Error("empty name should fail")
	}
	if _, err := NewRelation("R", nil, ""); err == nil {
		t.Error("no columns should fail")
	}
	if _, err := NewRelation("R", []Column{{"a", value.KindInt}, {"a", value.KindInt}}, ""); err == nil {
		t.Error("duplicate column should fail")
	}
	if _, err := NewRelation("R", []Column{{"", value.KindInt}}, ""); err == nil {
		t.Error("unnamed column should fail")
	}
	if _, err := NewRelation("R", []Column{{"a", value.KindInt}}, "b"); err == nil {
		t.Error("key not a column should fail")
	}
	r, err := NewRelation("R", []Column{{"a", value.KindInt}, {"b", value.KindString}}, "a")
	if err != nil {
		t.Fatal(err)
	}
	if r.ColumnIndex("b") != 1 || r.ColumnIndex("z") != -1 {
		t.Error("ColumnIndex wrong")
	}
	if c, err := r.Column("b"); err != nil || c.Type != value.KindString {
		t.Error("Column lookup wrong")
	}
	if _, err := r.Column("z"); err == nil {
		t.Error("missing column should error")
	}
}

func TestSchemaRelations(t *testing.T) {
	s := movieSchema(t)
	if s.Relation("MOVIE") == nil || s.Relation("NOPE") != nil {
		t.Error("Relation lookup wrong")
	}
	names := s.RelationNames()
	want := []string{"MOVIE", "DIRECTOR", "GENRE"}
	if len(names) != len(want) {
		t.Fatalf("names = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Errorf("names[%d] = %s, want %s", i, names[i], want[i])
		}
	}
	if len(s.Relations()) != 3 {
		t.Error("Relations() length")
	}
	if err := s.AddRelation(s.Relation("MOVIE")); err == nil {
		t.Error("duplicate relation should fail")
	}
}

func TestResolveAttr(t *testing.T) {
	s := movieSchema(t)
	c, err := s.ResolveAttr(AttrRef{"GENRE", "genre"})
	if err != nil || c.Type != value.KindString {
		t.Errorf("ResolveAttr: %v %v", c, err)
	}
	if _, err := s.ResolveAttr(AttrRef{"NOPE", "x"}); err == nil {
		t.Error("unknown relation should fail")
	}
	if _, err := s.ResolveAttr(AttrRef{"MOVIE", "nope"}); err == nil {
		t.Error("unknown attr should fail")
	}
}

func TestParseAttrRef(t *testing.T) {
	a, err := ParseAttrRef(" MOVIE.did ")
	if err != nil || a.Relation != "MOVIE" || a.Attr != "did" {
		t.Errorf("ParseAttrRef: %v %v", a, err)
	}
	if a.String() != "MOVIE.did" {
		t.Errorf("String: %s", a.String())
	}
	for _, bad := range []string{"MOVIE", "MOVIE.", ".did", "a.b.c", ""} {
		if _, err := ParseAttrRef(bad); err == nil {
			t.Errorf("ParseAttrRef(%q) should fail", bad)
		}
	}
}

func TestJoinValidation(t *testing.T) {
	s := movieSchema(t)
	err := s.AddJoin(AttrRef{"MOVIE", "mid"}, AttrRef{"MOVIE", "did"})
	if err == nil {
		t.Error("self-relation join should fail")
	}
	err = s.AddJoin(AttrRef{"MOVIE", "title"}, AttrRef{"DIRECTOR", "did"})
	if err == nil {
		t.Error("type-mismatched join should fail")
	}
	err = s.AddJoin(AttrRef{"NOPE", "x"}, AttrRef{"DIRECTOR", "did"})
	if err == nil {
		t.Error("unknown endpoint should fail")
	}
}

func TestJoinsFromOrientation(t *testing.T) {
	s := movieSchema(t)
	from := s.JoinsFrom("DIRECTOR")
	if len(from) != 1 {
		t.Fatalf("JoinsFrom(DIRECTOR) = %v", from)
	}
	if from[0].Left.Relation != "DIRECTOR" || from[0].Right.Relation != "MOVIE" {
		t.Errorf("orientation wrong: %v", from[0])
	}
	if got := s.JoinsFrom("MOVIE"); len(got) != 2 {
		t.Errorf("JoinsFrom(MOVIE) = %v", got)
	}
	if got := s.JoinsFrom("ZZZ"); len(got) != 0 {
		t.Errorf("JoinsFrom(ZZZ) = %v", got)
	}
}

func TestJoinBetween(t *testing.T) {
	s := movieSchema(t)
	e, ok := s.JoinBetween("GENRE", "MOVIE")
	if !ok || e.Left.Relation != "GENRE" || e.Right.Relation != "MOVIE" {
		t.Errorf("JoinBetween: %v %v", e, ok)
	}
	if _, ok := s.JoinBetween("GENRE", "DIRECTOR"); ok {
		t.Error("no direct edge GENRE-DIRECTOR")
	}
}

func TestValidateAndString(t *testing.T) {
	s := movieSchema(t)
	if err := s.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
	str := s.String()
	for _, want := range []string{"MOVIE(mid*, title", "DIRECTOR(did*", "join MOVIE.did = DIRECTOR.did"} {
		if !strings.Contains(str, want) {
			t.Errorf("String() missing %q:\n%s", want, str)
		}
	}
	if len(s.Joins()) != 2 {
		t.Error("Joins() length")
	}
}
