// Package wal is the durable persistence layer under cqpd's ProfileStore:
// an append-only write-ahead log of profile mutations plus periodic
// snapshots, so the per-user Preference Spaces the daemon serves (and the
// store-global version clock its cache keys depend on) survive a process
// crash.
//
// Durability contract. Append returns only after the record is written to
// the active log (and, under SyncAlways, fsynced); the caller acks the
// mutation to its client only after Append succeeds. Recovery (Open)
// rebuilds the exact acked state: newest valid snapshot, then every log
// with an equal-or-higher sequence replayed in order. A torn tail — a
// partially written final record, the signature of a crash mid-append —
// is truncated and recovery proceeds; a bad checksum anywhere before the
// final record is disk corruption and fails recovery loudly rather than
// silently serving a hole in acked history.
//
// File layout inside the data directory:
//
//	wal-<seq>.log    append-only record frames (record.go)
//	snap-<seq>.snap  atomic snapshot (snapshot.go)
//	*.tmp            in-progress snapshot writes; ignored and removed
//
// A checkpoint rotates first and snapshots second: create wal-<n+1>.log,
// switch appends to it, capture the shadow state, write snap-<n+1>.snap
// atomically, then delete files with older sequences. Every crash window
// in that protocol leaves a recoverable directory: until the snapshot
// rename lands, recovery still sees snap-<n> plus wal-<n> and wal-<n+1>.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"cqp/internal/fault"
	"cqp/internal/obs"
)

// ErrCorrupt marks recovery failures that truncation cannot repair:
// checksum or structural damage before the log's final record, or any
// damage inside a snapshot.
var ErrCorrupt = errors.New("wal: corrupt")

// ErrClosed is returned by operations on a closed log.
var ErrClosed = errors.New("wal: closed")

// SyncPolicy says when appends reach the platter.
type SyncPolicy int

const (
	// SyncAlways fsyncs before every Append returns: an acked mutation
	// survives power loss, at one fsync of latency per mutation.
	SyncAlways SyncPolicy = iota
	// SyncInterval fsyncs on a background ticker (Options.SyncEvery): an
	// acked mutation survives a process crash immediately and power loss
	// after at most one interval.
	SyncInterval
	// SyncNever leaves flushing to the OS page cache (Close still syncs).
	SyncNever
)

func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNever:
		return "never"
	}
	return fmt.Sprintf("policy(%d)", int(p))
}

// ParseSyncPolicy maps the -fsync flag values onto a policy.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always", "":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "never":
		return SyncNever, nil
	}
	return 0, fmt.Errorf("wal: unknown fsync policy %q (always|interval|never)", s)
}

// Options tunes a Log. The zero value is SyncAlways, snapshot every 1024
// records, no metrics.
type Options struct {
	Sync SyncPolicy
	// SyncEvery is the SyncInterval ticker period (default 100ms).
	SyncEvery time.Duration
	// SnapshotEvery is how many appended records trigger a checkpoint
	// (default 1024; negative disables automatic checkpoints).
	SnapshotEvery int
	// Metrics, when set, receives the wal gauges and counters.
	Metrics *obs.Registry
}

func (o Options) withDefaults() Options {
	if o.SyncEvery <= 0 {
		o.SyncEvery = 100 * time.Millisecond
	}
	if o.SnapshotEvery == 0 {
		o.SnapshotEvery = 1024
	}
	return o
}

// Recovery reports what Open reconstructed.
type Recovery struct {
	// Clock is the restored store-global version clock: the maximum
	// version in the snapshot and every replayed record. The store must
	// resume allocating versions strictly above it.
	Clock uint64
	// Profiles is the recovered live state, sorted by ID (OpPut records).
	Profiles []Record
	// SnapshotSeq is the sequence of the snapshot loaded (0 when none).
	SnapshotSeq uint64
	// LogRecords counts records replayed from logs on top of the snapshot.
	LogRecords int
	// TornBytes is how many bytes of torn tail were truncated from the
	// newest log (0 for a clean shutdown).
	TornBytes int64
	// Duration is the wall-clock time recovery took.
	Duration time.Duration
}

// Log is the durable store: one active append-only log file, a shadow copy
// of the live profile state for snapshotting, and the checkpoint machinery.
// All methods are safe for concurrent use; the caller must serialize
// version assignment with Append so that log order equals version order
// (cqpd's ProfileStore holds one mutation mutex across both).
type Log struct {
	dir  string
	opts Options

	mu           sync.Mutex
	f            *os.File
	seq          uint64
	logBytes     int64
	sinceSnap    int
	clock        uint64
	state        map[string]Record // live profiles only; deletes remove
	snapshotting bool
	closed       bool
	buf          []byte
	onAppend     func(Record) // tailing subscriber (OnAppend)

	dirf     *os.File
	lastSnap time.Time
	stop     chan struct{}
	done     chan struct{}
}

func logName(seq uint64) string  { return fmt.Sprintf("wal-%016x.log", seq) }
func snapName(seq uint64) string { return fmt.Sprintf("snap-%016x.snap", seq) }

// parseSeq extracts the sequence from a wal/snap file name, or 0.
func parseSeq(name, prefix, suffix string) uint64 {
	if len(name) != len(prefix)+16+len(suffix) ||
		name[:len(prefix)] != prefix || name[len(name)-len(suffix):] != suffix {
		return 0
	}
	var seq uint64
	if _, err := fmt.Sscanf(name[len(prefix):len(prefix)+16], "%016x", &seq); err != nil {
		return 0
	}
	return seq
}

// Open recovers the directory's durable state and returns the log ready
// for appends. A missing or empty directory starts a fresh store.
func Open(dir string, opts Options) (*Log, *Recovery, error) {
	start := time.Now()
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, err
	}
	dirf, err := os.Open(dir)
	if err != nil {
		return nil, nil, err
	}
	l := &Log{dir: dir, opts: opts, dirf: dirf, state: make(map[string]Record)}
	rec, err := l.recover()
	if err != nil {
		dirf.Close()
		return nil, nil, err
	}
	rec.Duration = time.Since(start)
	if opts.Sync == SyncInterval {
		l.stop = make(chan struct{})
		l.done = make(chan struct{})
		go l.syncLoop()
	}
	l.gauge("wal_recovery_ms").Set(rec.Duration.Milliseconds())
	l.publishLocked()
	return l, rec, nil
}

// recover loads the newest snapshot, replays the logs at or above its
// sequence, truncates a torn tail on the newest log, and opens the newest
// log for appending.
func (l *Log) recover() (*Recovery, error) {
	entries, err := os.ReadDir(l.dir)
	if err != nil {
		return nil, err
	}
	var logSeqs, snapSeqs []uint64
	for _, e := range entries {
		name := e.Name()
		switch {
		case filepath.Ext(name) == ".tmp":
			os.Remove(filepath.Join(l.dir, name)) // abandoned snapshot write
		case parseSeq(name, "wal-", ".log") != 0:
			logSeqs = append(logSeqs, parseSeq(name, "wal-", ".log"))
		case parseSeq(name, "snap-", ".snap") != 0:
			snapSeqs = append(snapSeqs, parseSeq(name, "snap-", ".snap"))
		}
	}
	sort.Slice(logSeqs, func(i, j int) bool { return logSeqs[i] < logSeqs[j] })
	sort.Slice(snapSeqs, func(i, j int) bool { return snapSeqs[i] < snapSeqs[j] })

	rec := &Recovery{}
	if n := len(snapSeqs); n > 0 {
		rec.SnapshotSeq = snapSeqs[n-1]
		clock, state, err := loadSnapshot(filepath.Join(l.dir, snapName(rec.SnapshotSeq)))
		if err != nil {
			return nil, err
		}
		l.clock, l.state = clock, state
	}

	// Tombstoned replay state: deletes must keep their version so an
	// out-of-order older record can never resurrect a deleted profile.
	replayed := make(map[string]Record, len(l.state))
	for id, r := range l.state {
		replayed[id] = r
	}
	var live []uint64
	for _, seq := range logSeqs {
		if seq < rec.SnapshotSeq {
			// Superseded by the snapshot; a crash between snapshot rename
			// and cleanup left it behind.
			os.Remove(filepath.Join(l.dir, logName(seq)))
			continue
		}
		live = append(live, seq)
	}
	for i, seq := range live {
		path := filepath.Join(l.dir, logName(seq))
		n, torn, err := l.replayLog(path, i == len(live)-1, replayed)
		if err != nil {
			return nil, err
		}
		rec.LogRecords += n
		rec.TornBytes += torn
	}

	l.state = make(map[string]Record, len(replayed))
	for id, r := range replayed {
		if r.Op == OpPut {
			l.state[id] = r
		}
		if r.Version > l.clock {
			l.clock = r.Version
		}
	}

	if len(live) > 0 {
		l.seq = live[len(live)-1]
		f, err := os.OpenFile(filepath.Join(l.dir, logName(l.seq)), os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, err
		}
		st, err := f.Stat()
		if err != nil {
			f.Close()
			return nil, err
		}
		l.f, l.logBytes = f, st.Size()
	} else {
		l.seq = rec.SnapshotSeq + 1
		if err := l.createLog(l.seq); err != nil {
			return nil, err
		}
	}

	rec.Clock = l.clock
	rec.Profiles = make([]Record, 0, len(l.state))
	for _, r := range l.state {
		rec.Profiles = append(rec.Profiles, r)
	}
	sort.Slice(rec.Profiles, func(i, j int) bool { return rec.Profiles[i].ID < rec.Profiles[j].ID })
	l.lastSnap = time.Now()
	return rec, nil
}

// replayLog applies one log file's records into state. Only the final log
// (last=true) may carry a torn tail — an incomplete or checksum-failing
// final record, which is truncated away; the same damage anywhere else is
// ErrCorrupt.
func (l *Log) replayLog(path string, last bool, state map[string]Record) (n int, torn int64, err error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return 0, 0, err
	}
	off := 0
	for off < len(buf) {
		rec, next, ferr := readFrame(buf, off)
		if ferr != nil {
			tail := l.tornTail(buf, off)
			if !last || !tail {
				return n, 0, fmt.Errorf("%w: %s: record at offset %d: %v", ErrCorrupt, path, off, ferr)
			}
			torn = int64(len(buf) - off)
			if err := os.Truncate(path, int64(off)); err != nil {
				return n, 0, err
			}
			l.counter("wal_torn_tail_truncations_total").Inc()
			break
		}
		apply(state, rec)
		n++
		off = next
	}
	return n, torn, nil
}

// tornTail decides whether the undecodable frame at off is a torn tail —
// the frame extends to or past end-of-file, so nothing acked can follow —
// rather than mid-log corruption. A frame whose declared length lands
// strictly inside the file, or whose in-bounds payload fails its checksum
// or decode while complete records' worth of bytes follow, is corruption:
// truncating there would drop acked history.
func (l *Log) tornTail(buf []byte, off int) bool {
	if off+frameHeaderBytes >= len(buf) {
		return true // partial header reaches EOF
	}
	n := int(binary.LittleEndian.Uint32(buf[off:]))
	return off+frameHeaderBytes+n >= len(buf)
}

// apply merges rec into the replay state under the version guard: a record
// only takes effect over a strictly older entry, so replaying a log whose
// records the snapshot already contains is a no-op.
func apply(state map[string]Record, rec Record) {
	if cur, ok := state[rec.ID]; ok && cur.Version >= rec.Version {
		return
	}
	state[rec.ID] = rec
}

// createLog creates and fsyncs a fresh empty log file and makes it the
// append target.
func (l *Log) createLog(seq uint64) error {
	f, err := os.OpenFile(filepath.Join(l.dir, logName(seq)), os.O_CREATE|os.O_EXCL|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := l.dirf.Sync(); err != nil {
		f.Close()
		return err
	}
	l.f, l.seq, l.logBytes = f, seq, 0
	return nil
}

// Append writes one mutation record durably. It returns only after the
// record is in the log (and fsynced, under SyncAlways); on any error the
// record is not part of acked history and the caller must not apply the
// mutation. The caller serializes version assignment with Append calls.
func (l *Log) Append(rec Record) error {
	if err := fault.Inject(fault.WALAppend); err != nil {
		return fmt.Errorf("wal: append: %w", err)
	}
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	l.buf = appendFrame(l.buf[:0], rec)
	if _, err := l.f.Write(l.buf); err != nil {
		// Remove whatever partial frame landed: a failed Append must leave
		// the log holding acked history only, or a caller that reuses the
		// version for its next (successful) attempt would lose the replay
		// race against this dead record.
		l.undoLocked()
		l.mu.Unlock()
		return fmt.Errorf("wal: append: %w", err)
	}
	l.logBytes += int64(len(l.buf))
	if l.opts.Sync == SyncAlways {
		if err := l.syncLocked(); err != nil {
			l.logBytes -= int64(len(l.buf))
			l.undoLocked()
			l.mu.Unlock()
			return err
		}
	}
	switch rec.Op {
	case OpDelete:
		delete(l.state, rec.ID)
	default:
		l.state[rec.ID] = rec
	}
	if rec.Version > l.clock {
		l.clock = rec.Version
	}
	l.sinceSnap++
	l.counter("wal_appends_total").Inc()
	if l.onAppend != nil {
		l.onAppend(rec)
	}
	var job *snapshotJob
	if l.opts.SnapshotEvery > 0 && l.sinceSnap >= l.opts.SnapshotEvery && !l.snapshotting {
		job = l.rotateLocked()
	}
	l.publishLocked()
	l.mu.Unlock()
	if job != nil {
		if err := l.writeSnapshot(job); err != nil {
			// The rotation already happened, so recovery still works from
			// the previous snapshot plus both logs; the next threshold
			// crossing retries.
			l.counter("wal_snapshot_errors_total").Inc()
		}
	}
	return nil
}

// undoLocked truncates the active log back to l.logBytes (mu held),
// discarding an un-acked frame after a failed write or fsync. If even the
// truncate fails the log can no longer prove it holds exactly acked
// history, so it fail-stops: every later Append returns ErrClosed.
func (l *Log) undoLocked() {
	if err := l.f.Truncate(l.logBytes); err != nil {
		l.closed = true
		l.f.Close()
	}
}

// snapshotJob carries one checkpoint's captured state out of the lock.
type snapshotJob struct {
	seq   uint64
	clock uint64
	recs  []Record
}

// rotateLocked (mu held) switches appends to a fresh log with the next
// sequence and captures the state the snapshot will persist. The old log
// file stays on disk until the snapshot lands.
func (l *Log) rotateLocked() *snapshotJob {
	old, oldSeq := l.f, l.seq
	if err := l.createLog(oldSeq + 1); err != nil {
		l.counter("wal_snapshot_errors_total").Inc()
		return nil // keep appending to the old log; retry later
	}
	old.Close()
	l.sinceSnap = 0
	l.snapshotting = true
	job := &snapshotJob{seq: oldSeq, clock: l.clock, recs: make([]Record, 0, len(l.state))}
	for _, r := range l.state {
		job.recs = append(job.recs, r)
	}
	return job
}

// writeSnapshot persists a rotation's captured state and retires every
// older log and snapshot. Appends proceed concurrently into the new log;
// replaying them over this snapshot is version-guarded.
func (l *Log) writeSnapshot(job *snapshotJob) error {
	defer func() {
		l.mu.Lock()
		l.snapshotting = false
		l.mu.Unlock()
	}()
	if err := writeSnapshotFile(filepath.Join(l.dir, snapName(job.seq+1)), job.clock, job.recs); err != nil {
		return err
	}
	if err := l.dirf.Sync(); err != nil {
		return err
	}
	// Older files are now superseded; recovery needs snap-(seq+1) and
	// wal-(seq+1) only. A directory-read error here is reported, not
	// swallowed: the snapshot itself landed, so recovery stays correct, but
	// the caller counts the failed prune and the next checkpoint retries it.
	entries, err := os.ReadDir(l.dir)
	if err != nil {
		return fmt.Errorf("wal: snapshot prune: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		if s := parseSeq(name, "wal-", ".log"); s != 0 && s <= job.seq {
			os.Remove(filepath.Join(l.dir, name))
		}
		if s := parseSeq(name, "snap-", ".snap"); s != 0 && s <= job.seq {
			os.Remove(filepath.Join(l.dir, name))
		}
	}
	l.mu.Lock()
	l.lastSnap = time.Now()
	l.publishLocked()
	l.mu.Unlock()
	l.counter("wal_snapshots_total").Inc()
	return nil
}

// Checkpoint forces a rotate-and-snapshot cycle (test and admin hook).
func (l *Log) Checkpoint() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	if l.snapshotting {
		l.mu.Unlock()
		return nil
	}
	job := l.rotateLocked()
	l.mu.Unlock()
	if job == nil {
		return fmt.Errorf("wal: checkpoint: rotation failed")
	}
	return l.writeSnapshot(job)
}

// syncLocked fsyncs the active log (mu held), counting failures and
// consulting the wal.fsync fault point.
func (l *Log) syncLocked() error {
	if err := fault.Inject(fault.WALFsync); err != nil {
		l.counter("wal_fsync_errors_total").Inc()
		return fmt.Errorf("wal: fsync: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		l.counter("wal_fsync_errors_total").Inc()
		return fmt.Errorf("wal: fsync: %w", err)
	}
	return nil
}

// syncLoop is the SyncInterval background syncer.
func (l *Log) syncLoop() {
	defer close(l.done)
	t := time.NewTicker(l.opts.SyncEvery)
	defer t.Stop()
	for {
		select {
		case <-l.stop:
			return
		case <-t.C:
			l.mu.Lock()
			if !l.closed {
				_ = l.syncLocked() // counted; next tick retries
			}
			l.mu.Unlock()
		}
	}
}

// Sync flushes the active log to stable storage.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	return l.syncLocked()
}

// Close syncs and closes the log; the graceful-shutdown path. Appends
// after Close return ErrClosed.
func (l *Log) Close() error {
	if l.stop != nil {
		close(l.stop)
		<-l.done
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	err := l.f.Sync()
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	if cerr := l.dirf.Close(); err == nil {
		err = cerr
	}
	return err
}

// Stats is a point-in-time view for /healthz and tests.
type Stats struct {
	Seq                  uint64
	LogBytes             int64
	RecordsSinceSnapshot int
	Profiles             int
	LastSnapshot         time.Time
	Clock                uint64
}

// Stats snapshots the log's counters and refreshes the age gauge.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.publishLocked()
	return Stats{
		Seq:                  l.seq,
		LogBytes:             l.logBytes,
		RecordsSinceSnapshot: l.sinceSnap,
		Profiles:             len(l.state),
		LastSnapshot:         l.lastSnap,
		Clock:                l.clock,
	}
}

// publishLocked pushes the gauges (mu held; no-ops without a registry).
func (l *Log) publishLocked() {
	l.gauge("wal_log_bytes").Set(l.logBytes)
	l.gauge("wal_records_since_snapshot").Set(int64(l.sinceSnap))
	if !l.lastSnap.IsZero() {
		l.gauge("wal_last_snapshot_age_ms").Set(time.Since(l.lastSnap).Milliseconds())
	}
}

func (l *Log) gauge(name string) *obs.Gauge {
	if l.opts.Metrics == nil {
		return nil
	}
	return l.opts.Metrics.Gauge(name)
}

func (l *Log) counter(name string) *obs.Counter {
	if l.opts.Metrics == nil {
		return nil
	}
	return l.opts.Metrics.Counter(name)
}
