package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
)

// Snapshot layout, little-endian:
//
//	[8]byte magic "CQPWAL01"
//	uint64  clock   store-global version clock at capture time
//	uint32  count   live profiles
//	count framed OpPut records (the log frame encoding)
//	uint32  crc32c  over every preceding byte
//
// The trailing whole-file CRC makes any torn or bit-flipped snapshot
// detectable as a unit; snapshots are written to a temp file, fsynced and
// renamed into place, so a crash mid-write leaves only an ignored *.tmp
// and the previous snapshot intact.
var snapshotMagic = [8]byte{'C', 'Q', 'P', 'W', 'A', 'L', '0', '1'}

// writeSnapshotFile atomically writes a snapshot of (clock, recs) to path:
// temp file in the same directory, fsync, rename. The caller fsyncs the
// directory afterwards to make the rename itself durable.
func writeSnapshotFile(path string, clock uint64, recs []Record) error {
	sort.Slice(recs, func(i, j int) bool { return recs[i].ID < recs[j].ID })
	buf := make([]byte, 0, 20+64*len(recs))
	buf = append(buf, snapshotMagic[:]...)
	buf = binary.LittleEndian.AppendUint64(buf, clock)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(recs)))
	for _, rec := range recs {
		rec.Op = OpPut
		buf = appendFrame(buf, rec)
	}
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf, castagnoli))

	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".*.tmp")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op once renamed
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// loadSnapshot reads and fully verifies a snapshot. Any structural or
// checksum failure wraps ErrCorrupt: a renamed-into-place snapshot was
// durable, so damage to it is disk corruption, never a tolerable torn
// write.
func loadSnapshot(path string) (clock uint64, state map[string]Record, err error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return 0, nil, err
	}
	if len(buf) < 24 {
		return 0, nil, fmt.Errorf("%w: snapshot %s: %d bytes, shorter than any valid snapshot", ErrCorrupt, path, len(buf))
	}
	body, sum := buf[:len(buf)-4], binary.LittleEndian.Uint32(buf[len(buf)-4:])
	if crc32.Checksum(body, castagnoli) != sum {
		return 0, nil, fmt.Errorf("%w: snapshot %s: whole-file checksum mismatch", ErrCorrupt, path)
	}
	if [8]byte(body[:8]) != snapshotMagic {
		return 0, nil, fmt.Errorf("%w: snapshot %s: bad magic", ErrCorrupt, path)
	}
	clock = binary.LittleEndian.Uint64(body[8:])
	count := int(binary.LittleEndian.Uint32(body[16:]))
	state = make(map[string]Record, count)
	off := 20
	for i := 0; i < count; i++ {
		rec, next, ferr := readFrame(body, off)
		if ferr != nil {
			return 0, nil, fmt.Errorf("%w: snapshot %s: record %d: %v", ErrCorrupt, path, i, ferr)
		}
		state[rec.ID] = rec
		off = next
	}
	if off != len(body) {
		return 0, nil, fmt.Errorf("%w: snapshot %s: %d trailing bytes after %d records", ErrCorrupt, path, len(body)-off, count)
	}
	return clock, state, nil
}

// readFrame decodes the frame starting at off in buf, returning the record
// and the offset just past it.
func readFrame(buf []byte, off int) (Record, int, error) {
	if off+frameHeaderBytes > len(buf) {
		return Record{}, 0, fmt.Errorf("short frame header (%d bytes left)", len(buf)-off)
	}
	n := int(binary.LittleEndian.Uint32(buf[off:]))
	sum := binary.LittleEndian.Uint32(buf[off+4:])
	if n <= 0 || n > MaxRecordBytes {
		return Record{}, 0, fmt.Errorf("implausible frame length %d", n)
	}
	if off+frameHeaderBytes+n > len(buf) {
		return Record{}, 0, fmt.Errorf("frame length %d overruns buffer", n)
	}
	payload := buf[off+frameHeaderBytes : off+frameHeaderBytes+n]
	if crc32.Checksum(payload, castagnoli) != sum {
		return Record{}, 0, fmt.Errorf("payload checksum mismatch")
	}
	rec, err := decodePayload(payload)
	if err != nil {
		return Record{}, 0, err
	}
	return rec, off + frameHeaderBytes + n, nil
}
