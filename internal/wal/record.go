package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// Op is the kind of profile mutation a log record carries.
type Op uint8

const (
	// OpPut stores (or replaces) a profile.
	OpPut Op = 1
	// OpDelete removes a profile. Text is empty.
	OpDelete Op = 2
)

func (o Op) String() string {
	switch o {
	case OpPut:
		return "put"
	case OpDelete:
		return "delete"
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Record is one durable profile mutation. Version is the store-global
// version clock value the mutation was acked with; recovery restores the
// clock to the maximum version seen, so post-restart versions stay
// strictly monotone and `id@version` cache keys never alias across a
// crash.
type Record struct {
	Op        Op
	ID        string
	Text      string
	Version   uint64
	UpdatedAt int64 // unix nanoseconds
}

// Frame layout, little-endian:
//
//	uint32 length   payload bytes (not counting this 8-byte header)
//	uint32 crc32c   Castagnoli CRC of the payload
//	payload:
//	    uint8  op
//	    uint64 version
//	    int64  updatedAt (unix ns)
//	    uint32 idLen,   idLen bytes of id
//	    uint32 textLen, textLen bytes of text
const (
	frameHeaderBytes = 8
	recordFixedBytes = 1 + 8 + 8 + 4 + 4

	// MaxRecordBytes bounds a single record's payload; a frame whose
	// declared length exceeds it cannot be a record this code wrote, so
	// recovery treats it as corruption (or a torn tail, if it points past
	// end-of-file).
	MaxRecordBytes = 16 << 20
)

// castagnoli is the CRC32C table (hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// appendFrame encodes rec as one framed record appended to buf.
func appendFrame(buf []byte, rec Record) []byte {
	n := recordFixedBytes + len(rec.ID) + len(rec.Text)
	start := len(buf)
	buf = append(buf, make([]byte, frameHeaderBytes+n)...)
	payload := buf[start+frameHeaderBytes:]
	payload[0] = byte(rec.Op)
	binary.LittleEndian.PutUint64(payload[1:], rec.Version)
	binary.LittleEndian.PutUint64(payload[9:], uint64(rec.UpdatedAt))
	binary.LittleEndian.PutUint32(payload[17:], uint32(len(rec.ID)))
	copy(payload[21:], rec.ID)
	off := 21 + len(rec.ID)
	binary.LittleEndian.PutUint32(payload[off:], uint32(len(rec.Text)))
	copy(payload[off+4:], rec.Text)
	binary.LittleEndian.PutUint32(buf[start:], uint32(n))
	binary.LittleEndian.PutUint32(buf[start+4:], crc32.Checksum(payload, castagnoli))
	return buf
}

// decodePayload parses a CRC-verified payload into a Record.
func decodePayload(p []byte) (Record, error) {
	if len(p) < recordFixedBytes {
		return Record{}, fmt.Errorf("wal: payload %d bytes, need at least %d", len(p), recordFixedBytes)
	}
	rec := Record{
		Op:        Op(p[0]),
		Version:   binary.LittleEndian.Uint64(p[1:]),
		UpdatedAt: int64(binary.LittleEndian.Uint64(p[9:])),
	}
	if rec.Op != OpPut && rec.Op != OpDelete {
		return Record{}, fmt.Errorf("wal: unknown op %d", p[0])
	}
	idLen := int(binary.LittleEndian.Uint32(p[17:]))
	if idLen < 0 || 21+idLen+4 > len(p) {
		return Record{}, fmt.Errorf("wal: id length %d overruns %d-byte payload", idLen, len(p))
	}
	rec.ID = string(p[21 : 21+idLen])
	off := 21 + idLen
	textLen := int(binary.LittleEndian.Uint32(p[off:]))
	if textLen < 0 || off+4+textLen != len(p) {
		return Record{}, fmt.Errorf("wal: text length %d inconsistent with %d-byte payload", textLen, len(p))
	}
	rec.Text = string(p[off+4 : off+4+textLen])
	return rec, nil
}
