package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// genLog builds a deterministic mixed put/delete record sequence and
// returns, for every record count k in 0..n, the live state acked after
// the first k records — the oracle the prefix-recovery property checks
// against.
func genLog(n int) (recs []Record, acked []map[string]Record) {
	state := make(map[string]Record)
	snap := func() map[string]Record {
		m := make(map[string]Record, len(state))
		for id, r := range state {
			m[id] = r
		}
		return m
	}
	acked = append(acked, snap())
	for v := uint64(1); v <= uint64(n); v++ {
		id := fmt.Sprintf("user-%d", v%5)
		var rec Record
		if v%4 == 3 {
			rec = del(v, id)
		} else {
			// Variable-length text so frame boundaries land at uneven
			// offsets.
			text := fmt.Sprintf("doi(MOVIE.year > %d) = 0.%d — %s", 1900+int(v), v%10,
				string(make([]byte, int(v*7)%40)))
			rec = put(v, id, text)
		}
		recs = append(recs, rec)
		if rec.Op == OpDelete {
			delete(state, id)
		} else {
			state[id] = rec
		}
		acked = append(acked, snap())
	}
	return recs, acked
}

// writeLogFile writes recs as one wal-<seq>.log file in dir.
func writeLogFile(t *testing.T, dir string, seq uint64, recs []Record) string {
	t.Helper()
	path := filepath.Join(dir, logName(seq))
	if err := os.WriteFile(path, EncodeRecords(recs), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// assertState compares a recovery's live profiles against an oracle map.
func assertState(t *testing.T, rec *Recovery, want map[string]Record, label string) {
	t.Helper()
	got := liveState(rec)
	if len(got) != len(want) {
		t.Fatalf("%s: recovered %d profiles, want %d\n got %+v\nwant %+v",
			label, len(got), len(want), got, want)
	}
	for id, w := range want {
		g, ok := got[id]
		if !ok || g.Version != w.Version || g.Text != w.Text {
			t.Fatalf("%s: profile %q: got %+v, want %+v", label, id, g, w)
		}
	}
}

// TestTornPrefixProperty replays every byte-length prefix of a generated
// log and asserts recovery always yields a version-consistent prefix of
// the acked state: the cut is treated as a torn tail, every complete
// frame before it survives, and the restored clock equals the version of
// the last surviving record. This generalizes the final-frame torn-tail
// test to arbitrary mid-stream truncation of the newest log.
func TestTornPrefixProperty(t *testing.T) {
	recs, acked := genLog(14)
	full := EncodeRecords(recs)

	// frameEnds[k] is the byte offset just past the k-th record.
	frameEnds := []int{0}
	off := 0
	for range recs {
		_, next, err := DecodeFrame(full, off)
		if err != nil {
			t.Fatal(err)
		}
		frameEnds = append(frameEnds, next)
		off = next
	}

	// complete(cut) is how many whole frames fit in a cut-byte prefix.
	complete := func(cut int) int {
		k := 0
		for k+1 < len(frameEnds) && frameEnds[k+1] <= cut {
			k++
		}
		return k
	}

	for cut := 0; cut <= len(full); cut++ {
		dir := t.TempDir()
		path := writeLogFile(t, dir, 1, nil)
		if err := os.WriteFile(path, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		l, rec, err := Open(dir, Options{Sync: SyncNever})
		if err != nil {
			t.Fatalf("cut=%d: Open: %v", cut, err)
		}
		k := complete(cut)
		assertState(t, rec, acked[k], fmt.Sprintf("cut=%d (k=%d)", cut, k))
		if rec.LogRecords != k {
			t.Fatalf("cut=%d: replayed %d records, want %d", cut, rec.LogRecords, k)
		}
		wantTorn := int64(cut - frameEnds[k])
		if rec.TornBytes != wantTorn {
			t.Fatalf("cut=%d: %d torn bytes, want %d", cut, rec.TornBytes, wantTorn)
		}
		var wantClock uint64
		if k > 0 {
			wantClock = recs[k-1].Version
		}
		if rec.Clock != wantClock {
			t.Fatalf("cut=%d: clock %d, want %d", cut, rec.Clock, wantClock)
		}
		// The truncated-and-recovered log must accept appends and survive a
		// clean reopen with the same state.
		if err := l.Append(put(wantClock+1, "post", "p")); err != nil {
			t.Fatalf("cut=%d: append after recovery: %v", cut, err)
		}
		if err := l.Close(); err != nil {
			t.Fatalf("cut=%d: close: %v", cut, err)
		}
	}
}

// TestTornPrefixMidStreamIsCorrupt: the same truncations applied to a log
// that is NOT the newest — a newer log follows it — are mid-stream damage:
// acked history provably continued past the cut, so recovery must refuse
// loudly with ErrCorrupt rather than silently serve a hole. Only a cut on
// an exact frame boundary is indistinguishable from a clean rotation.
func TestTornPrefixMidStreamIsCorrupt(t *testing.T) {
	recs, acked := genLog(10)
	older, newer := recs[:7], recs[7:]
	full := EncodeRecords(older)

	frameEnds := map[int]bool{0: true}
	off := 0
	for range older {
		_, next, err := DecodeFrame(full, off)
		if err != nil {
			t.Fatal(err)
		}
		frameEnds[next] = true
		off = next
	}

	for cut := 0; cut <= len(full); cut++ {
		dir := t.TempDir()
		path := writeLogFile(t, dir, 1, nil)
		if err := os.WriteFile(path, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		writeLogFile(t, dir, 2, newer)
		l, rec, err := Open(dir, Options{Sync: SyncNever})
		if frameEnds[cut] {
			if err != nil {
				t.Fatalf("cut=%d on frame boundary: %v", cut, err)
			}
			if cut == len(full) {
				assertState(t, rec, acked[len(recs)], "boundary cut, full replay")
			}
			l.Close()
			continue
		}
		if err == nil {
			l.Close()
			t.Fatalf("cut=%d: mid-stream truncation recovered silently", cut)
		}
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("cut=%d: error %v, want ErrCorrupt", cut, err)
		}
	}
}
