package wal

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"
)

// TestFrameCodecRoundTrip: the exported frame codec is the file format —
// encode N records, decode them back, byte-identical content.
func TestFrameCodecRoundTrip(t *testing.T) {
	recs := []Record{
		put(1, "alice", "doi(x)=1"),
		del(2, "alice"),
		put(3, "bob", ""),
		put(4, "углы", "doi(ünïcode)=0.5"),
	}
	buf := EncodeRecords(recs)
	got, err := DecodeFrames(buf)
	if err != nil {
		t.Fatalf("DecodeFrames: %v", err)
	}
	if !reflect.DeepEqual(got, recs) {
		t.Fatalf("roundtrip mismatch:\n got %+v\nwant %+v", got, recs)
	}

	// One-at-a-time decoding walks the same buffer.
	off := 0
	for i := range recs {
		rec, next, err := DecodeFrame(buf, off)
		if err != nil {
			t.Fatalf("DecodeFrame %d: %v", i, err)
		}
		if rec != recs[i] {
			t.Fatalf("frame %d: got %+v want %+v", i, rec, recs[i])
		}
		off = next
	}
	if off != len(buf) {
		t.Fatalf("decoded to offset %d, buffer is %d", off, len(buf))
	}
}

// TestDecodeFramesRejectsPartial: the wire decode has no torn-tail mercy —
// any truncation fails the whole buffer.
func TestDecodeFramesRejectsPartial(t *testing.T) {
	buf := EncodeRecords([]Record{put(1, "a", "x"), put(2, "b", "y")})
	for cut := 1; cut < len(buf); cut++ {
		if _, err := DecodeFrames(buf[:cut]); err == nil {
			// A cut landing exactly on the first frame boundary is the one
			// valid prefix.
			if _, n, ferr := DecodeFrame(buf, 0); ferr == nil && cut == n {
				continue
			}
			t.Fatalf("DecodeFrames accepted a %d/%d-byte truncation", cut, len(buf))
		}
	}
}

// TestOnAppendTailsAckedRecords: the subscriber sees exactly the records
// that became acked history, in commit order.
func TestOnAppendTailsAckedRecords(t *testing.T) {
	l, _ := mustOpen(t, t.TempDir(), Options{Sync: SyncNever})
	defer l.Close()
	var tailed []Record
	l.OnAppend(func(r Record) { tailed = append(tailed, r) })
	want := []Record{put(1, "a", "x"), put(2, "b", "y"), del(3, "a")}
	mustAppend(t, l, want...)
	if !reflect.DeepEqual(tailed, want) {
		t.Fatalf("tailed %+v, want %+v", tailed, want)
	}

	l.OnAppend(nil)
	mustAppend(t, l, put(4, "c", "z"))
	if len(tailed) != 3 {
		t.Fatalf("unsubscribed hook still fired: %d records", len(tailed))
	}
}

// TestStateRecords: the snapshot half of catch-up — clock plus live puts,
// deletes absent.
func TestStateRecords(t *testing.T) {
	l, _ := mustOpen(t, t.TempDir(), Options{Sync: SyncNever})
	defer l.Close()
	mustAppend(t, l, put(1, "a", "x"), put(2, "b", "y"), del(3, "a"), put(4, "c", "z"))
	clock, recs := l.StateRecords()
	if clock != 4 {
		t.Fatalf("clock %d, want 4", clock)
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].ID < recs[j].ID })
	if len(recs) != 2 || recs[0].ID != "b" || recs[1].ID != "c" {
		t.Fatalf("state records %+v", recs)
	}
}

// TestOpenFailsCleanly: a directory that cannot be created or read is a
// clean startup error from Open — never a panic, never a half-open log.
func TestOpenFailsCleanly(t *testing.T) {
	dir := t.TempDir()
	// A regular file where the data directory should be: MkdirAll and
	// ReadDir both fail with a real error (ENOTDIR), the shape of any
	// transient EACCES/EIO at startup.
	file := filepath.Join(dir, "occupied")
	if err := os.WriteFile(file, []byte("not a dir"), 0o644); err != nil {
		t.Fatal(err)
	}
	l, rec, err := Open(filepath.Join(file, "wal"), Options{})
	if err == nil {
		l.Close()
		t.Fatalf("Open under a file succeeded: %+v", rec)
	}
	if errors.Is(err, ErrCorrupt) {
		t.Fatalf("environment error misclassified as corruption: %v", err)
	}
}
