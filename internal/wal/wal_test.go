package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"cqp/internal/fault"
)

func put(v uint64, id, text string) Record {
	return Record{Op: OpPut, ID: id, Text: text, Version: v, UpdatedAt: int64(v) * 1000}
}

func del(v uint64, id string) Record {
	return Record{Op: OpDelete, ID: id, Version: v, UpdatedAt: int64(v) * 1000}
}

func mustOpen(t *testing.T, dir string, opts Options) (*Log, *Recovery) {
	t.Helper()
	l, rec, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return l, rec
}

func mustAppend(t *testing.T, l *Log, recs ...Record) {
	t.Helper()
	for _, r := range recs {
		if err := l.Append(r); err != nil {
			t.Fatalf("Append(%+v): %v", r, err)
		}
	}
}

// liveState maps a recovery's profiles by ID for assertions.
func liveState(rec *Recovery) map[string]Record {
	m := make(map[string]Record, len(rec.Profiles))
	for _, r := range rec.Profiles {
		m[r.ID] = r
	}
	return m
}

func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, rec := mustOpen(t, dir, Options{})
	if rec.Clock != 0 || len(rec.Profiles) != 0 {
		t.Fatalf("fresh dir recovered %+v", rec)
	}
	mustAppend(t, l,
		put(1, "alice", "pa"),
		put(2, "bob", "pb"),
		del(3, "alice"),
		put(4, "bob", "pb2"),
	)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(put(5, "x", "y")); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after close: %v", err)
	}

	l2, rec2 := mustOpen(t, dir, Options{})
	defer l2.Close()
	if rec2.Clock != 4 {
		t.Fatalf("clock restored to %d, want 4", rec2.Clock)
	}
	if rec2.LogRecords != 4 || rec2.TornBytes != 0 {
		t.Fatalf("replayed %d records, %d torn bytes; want 4, 0", rec2.LogRecords, rec2.TornBytes)
	}
	st := liveState(rec2)
	if len(st) != 1 || st["bob"].Text != "pb2" || st["bob"].Version != 4 {
		t.Fatalf("recovered state %+v", st)
	}
	// Profiles come back sorted by ID.
	mustAppend(t, l2, put(5, "carol", "pc"))
	l2.Close()
	_, rec3 := mustOpen(t, dir, Options{})
	ids := make([]string, len(rec3.Profiles))
	for i, p := range rec3.Profiles {
		ids[i] = p.ID
	}
	if len(ids) != 2 || ids[0] != "bob" || ids[1] != "carol" {
		t.Fatalf("recovered IDs %v, want [bob carol]", ids)
	}
}

// writeLog builds a raw log file from framed records, bypassing the Log —
// the corruption and crash-window tables start from controlled bytes.
func writeLog(t *testing.T, dir string, seq uint64, recs ...Record) string {
	t.Helper()
	var buf []byte
	for _, r := range recs {
		buf = appendFrame(buf, r)
	}
	path := filepath.Join(dir, logName(seq))
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// frameOffsets returns each record frame's start offset plus the file end.
func frameOffsets(t *testing.T, path string) []int {
	t.Helper()
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	offs := []int{0}
	off := 0
	for off < len(buf) {
		_, next, err := readFrame(buf, off)
		if err != nil {
			t.Fatalf("frameOffsets: offset %d: %v", off, err)
		}
		off = next
		offs = append(offs, off)
	}
	return offs
}

// TestTornTail is the crash-mid-append table: a final record damaged in
// every shape a torn write can take must recover by truncation, keeping
// every record before it, and the log must accept appends afterwards.
func TestTornTail(t *testing.T) {
	base := []Record{put(1, "a", "ta"), put(2, "b", "tb"), put(3, "c", "tc")}
	cases := []struct {
		name string
		// mangle damages the final frame, given its start and the file size.
		mangle func(t *testing.T, path string, start, end int)
	}{
		{"partial header", func(t *testing.T, path string, start, end int) {
			truncateTo(t, path, start+3)
		}},
		{"partial payload", func(t *testing.T, path string, start, end int) {
			truncateTo(t, path, start+frameHeaderBytes+2)
		}},
		{"one byte short", func(t *testing.T, path string, start, end int) {
			truncateTo(t, path, end-1)
		}},
		{"crc of final frame flipped", func(t *testing.T, path string, start, end int) {
			flipByte(t, path, start+5) // inside the CRC field
		}},
		{"payload of final frame flipped", func(t *testing.T, path string, start, end int) {
			flipByte(t, path, start+frameHeaderBytes+1)
		}},
		{"garbage length pointing past EOF", func(t *testing.T, path string, start, end int) {
			patchByte(t, path, start+3, 0x7f) // length |= 0x7f000000
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			path := writeLog(t, dir, 1, base...)
			offs := frameOffsets(t, path)
			tc.mangle(t, path, offs[len(offs)-2], offs[len(offs)-1])

			l, rec := mustOpen(t, dir, Options{})
			if rec.LogRecords != 2 || rec.TornBytes == 0 {
				t.Fatalf("recovered %d records, %d torn bytes; want 2 records and a truncation", rec.LogRecords, rec.TornBytes)
			}
			st := liveState(rec)
			if len(st) != 2 || st["a"].Text != "ta" || st["b"].Text != "tb" {
				t.Fatalf("state after torn tail: %+v", st)
			}
			if rec.Clock != 2 {
				t.Fatalf("clock %d, want 2", rec.Clock)
			}
			// The truncated log accepts appends and round-trips again.
			mustAppend(t, l, put(3, "d", "td"))
			l.Close()
			_, rec2 := mustOpen(t, dir, Options{})
			if st := liveState(rec2); len(st) != 3 || st["d"].Text != "td" {
				t.Fatalf("state after post-truncation append: %+v", st)
			}
		})
	}
}

// TestMidLogCorruption: damage before the final record means acked history
// has a hole; recovery must refuse loudly, not truncate silently.
func TestMidLogCorruption(t *testing.T) {
	base := []Record{put(1, "a", "ta"), put(2, "b", "tb"), put(3, "c", "tc")}
	cases := []struct {
		name   string
		mangle func(t *testing.T, path string, offs []int)
	}{
		{"payload bit-flip in first record", func(t *testing.T, path string, offs []int) {
			flipByte(t, path, offs[0]+frameHeaderBytes+1)
		}},
		{"crc bit-flip in middle record", func(t *testing.T, path string, offs []int) {
			flipByte(t, path, offs[1]+4)
		}},
		{"length field shrunk mid-log", func(t *testing.T, path string, offs []int) {
			patchByte(t, path, offs[0], 1) // frame now ends strictly inside the file
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			path := writeLog(t, dir, 1, base...)
			tc.mangle(t, path, frameOffsets(t, path))
			_, _, err := Open(dir, Options{})
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("Open with mid-log corruption: %v, want ErrCorrupt", err)
			}
		})
	}
}

func truncateTo(t *testing.T, path string, n int) {
	t.Helper()
	if err := os.Truncate(path, int64(n)); err != nil {
		t.Fatal(err)
	}
}

func flipByte(t *testing.T, path string, off int) {
	t.Helper()
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	buf[off] ^= 0x40
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
}

func patchByte(t *testing.T, path string, off int, v byte) {
	t.Helper()
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	buf[off] = v
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestSnapshotRotation: crossing SnapshotEvery must write a snapshot,
// rotate the log, and retire the old generation; recovery then starts from
// the snapshot and replays only the new log.
func TestSnapshotRotation(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{SnapshotEvery: 4})
	mustAppend(t, l,
		put(1, "a", "ta"), put(2, "b", "tb"), put(3, "c", "tc"), del(4, "a"))
	names := dirNames(t, dir)
	if !names[snapName(2)] || !names[logName(2)] || names[logName(1)] || names[snapName(1)] {
		t.Fatalf("after rotation dir = %v; want exactly snap-2 + wal-2", keys(names))
	}
	mustAppend(t, l, put(5, "d", "td"))
	l.Close()

	l2, rec := mustOpen(t, dir, Options{})
	defer l2.Close()
	if rec.SnapshotSeq != 2 || rec.LogRecords != 1 {
		t.Fatalf("recovered from snapshot %d with %d log records; want 2, 1", rec.SnapshotSeq, rec.LogRecords)
	}
	st := liveState(rec)
	if _, ok := st["a"]; ok {
		t.Fatalf("deleted profile resurrected: %+v", st)
	}
	if len(st) != 3 || st["b"].Version != 2 || st["d"].Version != 5 || rec.Clock != 5 {
		t.Fatalf("state %+v clock %d", st, rec.Clock)
	}
}

// TestCheckpointCrashWindows reconstructs the directory states a crash can
// leave at each step of the rotate-then-snapshot protocol and checks every
// one recovers the full acked history.
func TestCheckpointCrashWindows(t *testing.T) {
	t.Run("rotated, snapshot never written", func(t *testing.T) {
		dir := t.TempDir()
		writeLog(t, dir, 1, put(1, "a", "ta"), put(2, "b", "tb"))
		writeLog(t, dir, 2, put(3, "c", "tc"))
		l, rec := mustOpen(t, dir, Options{})
		defer l.Close()
		if rec.LogRecords != 3 || rec.Clock != 3 || len(rec.Profiles) != 3 {
			t.Fatalf("recovered %+v", rec)
		}
	})
	t.Run("snapshot landed, old generation not yet deleted", func(t *testing.T) {
		dir := t.TempDir()
		writeLog(t, dir, 1, put(1, "a", "ta"), put(2, "b", "tb"))
		writeLog(t, dir, 2, put(3, "c", "tc"))
		if err := writeSnapshotFile(filepath.Join(dir, snapName(2)),
			2, []Record{put(1, "a", "ta"), put(2, "b", "tb")}); err != nil {
			t.Fatal(err)
		}
		l, rec := mustOpen(t, dir, Options{})
		defer l.Close()
		if rec.SnapshotSeq != 2 || rec.LogRecords != 1 || rec.Clock != 3 {
			t.Fatalf("recovered %+v", rec)
		}
		if names := dirNames(t, dir); names[logName(1)] {
			t.Fatal("superseded wal-1 not cleaned up")
		}
	})
	t.Run("abandoned tmp snapshot ignored and removed", func(t *testing.T) {
		dir := t.TempDir()
		writeLog(t, dir, 1, put(1, "a", "ta"))
		tmp := filepath.Join(dir, snapName(2)+".123.tmp")
		if err := os.WriteFile(tmp, []byte("partial snapshot garbage"), 0o644); err != nil {
			t.Fatal(err)
		}
		l, rec := mustOpen(t, dir, Options{})
		defer l.Close()
		if len(rec.Profiles) != 1 || rec.SnapshotSeq != 0 {
			t.Fatalf("recovered %+v", rec)
		}
		if _, err := os.Stat(tmp); !os.IsNotExist(err) {
			t.Fatalf("tmp snapshot still present: %v", err)
		}
	})
	t.Run("version guard: older log record cannot regress snapshot state", func(t *testing.T) {
		dir := t.TempDir()
		// The snapshot knows a@10; a lower-versioned put in a replayed log
		// must lose.
		if err := writeSnapshotFile(filepath.Join(dir, snapName(2)),
			10, []Record{put(10, "a", "newest")}); err != nil {
			t.Fatal(err)
		}
		writeLog(t, dir, 2, put(3, "a", "stale"))
		l, rec := mustOpen(t, dir, Options{})
		defer l.Close()
		st := liveState(rec)
		if st["a"].Text != "newest" || rec.Clock != 10 {
			t.Fatalf("stale record won replay: %+v clock %d", st, rec.Clock)
		}
	})
}

// TestSnapshotCorruption: a snapshot is fsynced and renamed, so damage to
// it is never a tolerable torn write — recovery must fail loudly.
func TestSnapshotCorruption(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{SnapshotEvery: 2})
	mustAppend(t, l, put(1, "a", "ta"), put(2, "b", "tb"))
	l.Close()
	path := filepath.Join(dir, snapName(2))
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("snapshot not written: %v", err)
	}
	flipByte(t, path, 12)
	_, _, err := Open(dir, Options{})
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open with corrupt snapshot: %v, want ErrCorrupt", err)
	}
}

// TestVersionClockMonotoneAcrossRestarts pins the cache-key contract: a
// version allocated after recovery is strictly greater than any pre-crash
// version, even when the latest mutation was a delete (whose version lives
// only in the log or the snapshot clock).
func TestVersionClockMonotoneAcrossRestarts(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{})
	mustAppend(t, l, put(1, "a", "ta"), put(2, "b", "tb"), del(3, "b"))
	l.Close()

	l2, rec := mustOpen(t, dir, Options{})
	if rec.Clock != 3 {
		t.Fatalf("clock %d after delete-last, want 3", rec.Clock)
	}
	// The store resumes at clock+1; simulate and restart once more through
	// a snapshot so the clock survives via the snapshot header too.
	mustAppend(t, l2, put(rec.Clock+1, "c", "tc"))
	if err := l2.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	l2.Close()
	l3, rec3 := mustOpen(t, dir, Options{})
	defer l3.Close()
	if rec3.Clock != 4 || rec3.LogRecords != 0 {
		t.Fatalf("clock %d (%d log records) after snapshot restart, want 4 (0)", rec3.Clock, rec3.LogRecords)
	}
}

// TestConcurrentMutateWhileSnapshot hammers appends from several
// goroutines while tiny SnapshotEvery forces rotations and snapshot writes
// mid-traffic; run under -race this checks the lock protocol, and the
// final reopen checks no acked record was lost across any rotation.
func TestConcurrentMutateWhileSnapshot(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{SnapshotEvery: 8, Sync: SyncNever})
	var (
		mu    sync.Mutex
		clock uint64
		want  = map[string]Record{}
	)
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				id := fmt.Sprintf("user-%d-%d", g, i%7)
				mu.Lock()
				clock++
				var rec Record
				if i%11 == 10 {
					rec = del(clock, id)
					delete(want, id)
				} else {
					rec = put(clock, id, fmt.Sprintf("text-%d-%d", g, i))
					want[id] = rec
				}
				if err := l.Append(rec); err != nil {
					mu.Unlock()
					t.Error(err)
					return
				}
				mu.Unlock()
			}
		}(g)
	}
	wg.Wait()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, rec := mustOpen(t, dir, Options{})
	defer l2.Close()
	if rec.Clock != clock {
		t.Fatalf("clock %d, want %d", rec.Clock, clock)
	}
	got := liveState(rec)
	if len(got) != len(want) {
		t.Fatalf("recovered %d profiles, want %d", len(got), len(want))
	}
	for id, w := range want {
		g, ok := got[id]
		if !ok || g.Version != w.Version || g.Text != w.Text {
			t.Fatalf("profile %s: got %+v, want %+v", id, g, w)
		}
	}
}

// TestFaultPoints drives the wal.append and wal.fsync injection points: a
// faulted append must leave both the in-memory shadow state and the
// on-disk log unchanged, so the version can be safely reallocated.
func TestFaultPoints(t *testing.T) {
	t.Run("wal.append", func(t *testing.T) {
		dir := t.TempDir()
		l, _ := mustOpen(t, dir, Options{})
		defer l.Close()
		mustAppend(t, l, put(1, "a", "ta"))
		plan, err := fault.NewPlan(1, fault.Rule{Point: fault.WALAppend, Mode: fault.ModeErr})
		if err != nil {
			t.Fatal(err)
		}
		fault.Arm(plan)
		err = l.Append(put(2, "b", "tb"))
		fault.Disarm()
		if !errors.Is(err, fault.ErrInjected) {
			t.Fatalf("append under wal.append fault: %v", err)
		}
		if st := l.Stats(); st.Clock != 1 || st.Profiles != 1 {
			t.Fatalf("faulted append changed state: %+v", st)
		}
		mustAppend(t, l, put(2, "b", "tb-retry")) // version safely reused
		if st := l.Stats(); st.Clock != 2 || st.Profiles != 2 {
			t.Fatalf("post-fault append: %+v", st)
		}
	})
	t.Run("wal.fsync truncates the unacked frame", func(t *testing.T) {
		dir := t.TempDir()
		l, _ := mustOpen(t, dir, Options{Sync: SyncAlways})
		mustAppend(t, l, put(1, "a", "ta"))
		plan, err := fault.NewPlan(1, fault.Rule{Point: fault.WALFsync, Mode: fault.ModeErr, Count: 1})
		if err != nil {
			t.Fatal(err)
		}
		fault.Arm(plan)
		err = l.Append(put(2, "b", "failed-write"))
		fault.Disarm()
		if !errors.Is(err, fault.ErrInjected) {
			t.Fatalf("append under wal.fsync fault: %v", err)
		}
		// The caller reuses version 2 for the retry; recovery must see the
		// retry's content, not the unacked first attempt's.
		mustAppend(t, l, put(2, "b", "acked-write"))
		l.Close()
		_, rec := mustOpen(t, dir, Options{})
		st := liveState(rec)
		if st["b"].Text != "acked-write" || rec.LogRecords != 2 {
			t.Fatalf("recovered %+v (%d records); unacked frame survived", st, rec.LogRecords)
		}
	})
}

func dirNames(t *testing.T, dir string) map[string]bool {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	m := make(map[string]bool, len(entries))
	for _, e := range entries {
		m[e.Name()] = true
	}
	return m
}

func keys(m map[string]bool) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

// TestRecordRoundTrip sanity-checks the frame codec on awkward payloads.
func TestRecordRoundTrip(t *testing.T) {
	recs := []Record{
		put(1, "", ""),
		put(2, "id-with-ünicode-⌘", "text\nwith\nnewlines"),
		put(3, strings.Repeat("i", 300), strings.Repeat("x", 100_000)),
		del(4, "gone"),
	}
	var buf []byte
	for _, r := range recs {
		buf = appendFrame(buf, r)
	}
	off := 0
	for i, want := range recs {
		got, next, err := readFrame(buf, off)
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("record %d: got %+v want %+v", i, got, want)
		}
		off = next
	}
	if off != len(buf) {
		t.Fatalf("trailing bytes: %d != %d", off, len(buf))
	}
}
