package wal

// This file is the log's exported frame surface: the same CRC-framed
// record encoding the files use, usable as a wire format (the cluster
// replicator ships acked frames to followers verbatim), plus the tailing
// hook replication rides — a callback invoked for every record the moment
// it becomes acked history.

// EncodeFrame appends rec to buf as one CRC32C-framed record — the exact
// byte layout Append writes to the log file, so a shipped frame is
// bit-identical to the durable one.
func EncodeFrame(buf []byte, rec Record) []byte {
	return appendFrame(buf, rec)
}

// DecodeFrame decodes the frame starting at off, returning the record and
// the offset just past it. Errors mean a short, corrupt or torn frame;
// the caller decides which (see Log.recover for the file-replay policy).
func DecodeFrame(buf []byte, off int) (Record, int, error) {
	return readFrame(buf, off)
}

// DecodeFrames decodes a buffer holding zero or more complete frames —
// the replication wire format. Unlike file replay there is no torn-tail
// tolerance: a partial or damaged frame fails the whole buffer, because a
// transport that delivered half a frame delivered nothing trustworthy.
func DecodeFrames(buf []byte) ([]Record, error) {
	var recs []Record
	off := 0
	for off < len(buf) {
		rec, next, err := readFrame(buf, off)
		if err != nil {
			return nil, err
		}
		recs = append(recs, rec)
		off = next
	}
	return recs, nil
}

// EncodeRecords frames every record into one buffer (the inverse of
// DecodeFrames).
func EncodeRecords(recs []Record) []byte {
	var n int
	for _, r := range recs {
		n += frameHeaderBytes + recordFixedBytes + len(r.ID) + len(r.Text)
	}
	buf := make([]byte, 0, n)
	for _, r := range recs {
		buf = appendFrame(buf, r)
	}
	return buf
}

// FrameOverhead is the per-record framing cost in bytes beyond ID and
// Text, exported so transports can size batches.
const FrameOverhead = frameHeaderBytes + recordFixedBytes

// OnAppend registers fn to be called for every record that Append commits
// to acked history, in commit order, after the record is durable under
// the configured sync policy. The callback runs with the log's internal
// lock held: it must be fast, must not block, and must not call back into
// the Log. One subscriber is supported (the cluster replicator); a second
// registration replaces the first. Pass nil to unsubscribe.
func (l *Log) OnAppend(fn func(Record)) {
	l.mu.Lock()
	l.onAppend = fn
	l.mu.Unlock()
}

// StateRecords returns the store-global version clock and a copy of the
// live profile state (OpPut records only, unsorted) — the snapshot half
// of a snapshot + frame-tail catch-up sync. Records appended after the
// call reach the subscriber via OnAppend; version guards make the overlap
// idempotent.
func (l *Log) StateRecords() (clock uint64, recs []Record) {
	l.mu.Lock()
	defer l.mu.Unlock()
	recs = make([]Record, 0, len(l.state))
	for _, r := range l.state {
		recs = append(recs, r)
	}
	return l.clock, recs
}
