package catalog

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestBuildHistogramBasics(t *testing.T) {
	if h := buildHistogram(nil, 8); h != nil {
		t.Error("empty input must yield nil")
	}
	h := buildHistogram([]float64{3, 1, 2}, 8)
	if h.Total() != 3 || h.Min != 1 {
		t.Errorf("total %d min %g", h.Total(), h.Min)
	}
	if h.Buckets() != 3 {
		t.Errorf("buckets = %d (depth 1 expected for tiny input)", h.Buckets())
	}
	// Zero bucket budget selects the default.
	h2 := buildHistogram(make([]float64, 1000), 0)
	if h2.Buckets() == 0 {
		t.Error("default buckets")
	}
}

func TestHistogramExactOnDepthOne(t *testing.T) {
	vals := []float64{1958, 1971, 1996}
	h := buildHistogram(vals, 32)
	cases := []struct {
		x         float64
		less, leq float64
	}{
		{1950, 0, 0},
		{1958, 0, 1.0 / 3},
		{1970, 1.0 / 3, 1.0 / 3},
		{1971, 1.0 / 3, 2.0 / 3},
		{1996, 2.0 / 3, 1},
		{2000, 1, 1},
	}
	for _, c := range cases {
		if got := h.LessFrac(c.x); math.Abs(got-c.less) > 1e-12 {
			t.Errorf("LessFrac(%g) = %g, want %g", c.x, got, c.less)
		}
		if got := h.LeqFrac(c.x); math.Abs(got-c.leq) > 1e-12 {
			t.Errorf("LeqFrac(%g) = %g, want %g", c.x, got, c.leq)
		}
	}
}

// TestHistogramSkewBeatsUniform: on a Zipf-like pile-up the histogram's
// range estimate lands near truth where the uniform model is far off.
func TestHistogramSkewBeatsUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	var vals []float64
	// 90% of mass at small values, a long thin tail to 1e6.
	for i := 0; i < 900; i++ {
		vals = append(vals, float64(rng.Intn(10)))
	}
	for i := 0; i < 100; i++ {
		vals = append(vals, float64(10+rng.Intn(1_000_000)))
	}
	h := buildHistogram(vals, 32)
	truth := 0.0
	for _, v := range vals {
		if v < 10 {
			truth++
		}
	}
	truth /= float64(len(vals))
	got := h.LessFrac(10)
	if math.Abs(got-truth) > 0.05 {
		t.Errorf("histogram estimate %g, truth %g", got, truth)
	}
	// The uniform model would claim ≈ 10/1e6 ≈ 0.
	uniform := 10.0 / 1_000_000
	if math.Abs(uniform-truth) < math.Abs(got-truth) {
		t.Error("histogram did not improve on the uniform model")
	}
}

// TestHistogramProperties: estimates stay in [0,1], are monotone in x,
// Less ≤ Leq, and track the empirical CDF within one bucket's depth.
func TestHistogramProperties(t *testing.T) {
	f := func(seed int64, nRaw uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%500) + 1
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = math.Round(rng.NormFloat64() * 100)
		}
		h := buildHistogram(vals, 16)
		sorted := append([]float64(nil), vals...)
		sort.Float64s(sorted)
		maxDepth := 0
		for _, c := range h.counts {
			if c > maxDepth {
				maxDepth = c
			}
		}
		tolerance := float64(maxDepth)/float64(n) + 1e-12
		prevLess := -1.0
		for probe := 0; probe < 50; probe++ {
			x := math.Round(rng.NormFloat64() * 120)
			less, leq := h.LessFrac(x), h.LeqFrac(x)
			if less < 0 || leq > 1 || less > leq+1e-12 {
				return false
			}
			// Empirical CDF comparison.
			var truthLess float64
			for _, v := range sorted {
				if v < x {
					truthLess++
				}
			}
			truthLess /= float64(n)
			if math.Abs(less-truthLess) > tolerance {
				return false
			}
			_ = prevLess
		}
		// Monotonicity over an ordered sweep.
		prev := -1.0
		for x := -400.0; x <= 400; x += 10 {
			cur := h.LessFrac(x)
			if cur < prev-1e-12 {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestHistogramTieHeavyData(t *testing.T) {
	// All values identical: one bucket, every query degenerate but sane.
	vals := make([]float64, 100)
	for i := range vals {
		vals[i] = 42
	}
	h := buildHistogram(vals, 8)
	if h.Buckets() != 1 {
		t.Errorf("buckets = %d", h.Buckets())
	}
	if h.LessFrac(42) != 0 || h.LeqFrac(42) != 1 {
		t.Errorf("tie-heavy: less %g leq %g", h.LessFrac(42), h.LeqFrac(42))
	}
	if h.LessFrac(43) != 1 || h.LeqFrac(41) != 0 {
		t.Error("edges wrong")
	}
}
