package catalog

import "sort"

// Histogram is an equi-depth (equi-height) histogram over a numeric
// column: buckets hold approximately equal row counts, so skewed
// distributions — precisely the Zipf-shaped catalogs the workload
// generator produces — estimate far better than the uniform-spread model.
// The paper's estimator tolerates approximation by design (Section 4.3);
// the histogram narrows it where it costs nothing to maintain.
type Histogram struct {
	// bounds[i] is the upper edge of bucket i (inclusive); bucket i covers
	// (bounds[i-1], bounds[i]], with bucket 0 starting at Min.
	bounds []float64
	// counts[i] is the number of rows in bucket i.
	counts []int
	// Min is the smallest value; total the number of rows histogrammed.
	Min   float64
	total int
}

// DefaultHistogramBuckets is the bucket budget per column.
const DefaultHistogramBuckets = 32

// buildHistogram constructs an equi-depth histogram from raw values.
// Returns nil for empty input.
func buildHistogram(vals []float64, buckets int) *Histogram {
	if len(vals) == 0 {
		return nil
	}
	if buckets <= 0 {
		buckets = DefaultHistogramBuckets
	}
	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)
	h := &Histogram{Min: sorted[0], total: len(sorted)}
	per := (len(sorted) + buckets - 1) / buckets
	if per < 1 {
		per = 1
	}
	start := 0
	for start < len(sorted) {
		end := start + per
		if end > len(sorted) {
			end = len(sorted)
		}
		edge := sorted[end-1]
		// Extend the bucket over ties: a value must not straddle buckets.
		for end < len(sorted) && sorted[end] == edge {
			end++
		}
		h.bounds = append(h.bounds, edge)
		h.counts = append(h.counts, end-start)
		start = end
	}
	return h
}

// Total returns the number of rows histogrammed.
func (h *Histogram) Total() int { return h.total }

// Buckets returns the number of buckets.
func (h *Histogram) Buckets() int { return len(h.bounds) }

// LessFrac estimates the fraction of rows with value < x. Bucket mass is
// attributed to the bucket's upper edge — exact when buckets hold one
// distinct value (small tables) and at most one bucket's depth off
// otherwise. Linear interpolation inside buckets was deliberately avoided:
// on discrete data it smears edge-concentrated mass and can misestimate a
// depth-1 bucket by its whole weight.
func (h *Histogram) LessFrac(x float64) float64 {
	if h.total == 0 || x <= h.Min {
		return 0
	}
	cum := 0
	for i, hi := range h.bounds {
		if x <= hi {
			break
		}
		cum += h.counts[i]
	}
	return float64(cum) / float64(h.total)
}

// LeqFrac estimates the fraction of rows with value ≤ x, under the same
// mass-at-upper-edge model as LessFrac.
func (h *Histogram) LeqFrac(x float64) float64 {
	if h.total == 0 || x < h.Min {
		return 0
	}
	cum := 0
	for i, hi := range h.bounds {
		if x < hi {
			break
		}
		cum += h.counts[i]
	}
	return float64(cum) / float64(h.total)
}
