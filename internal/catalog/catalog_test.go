package catalog

import (
	"math"
	"testing"
	"testing/quick"

	"cqp/internal/schema"
	"cqp/internal/storage"
	"cqp/internal/testutil"
	"cqp/internal/value"
)

func buildTestCatalog(t *testing.T) *Catalog {
	t.Helper()
	return MustBuild(testutil.MovieDB(0))
}

func TestTableStats(t *testing.T) {
	c := buildTestCatalog(t)
	ts, err := c.Table("MOVIE")
	if err != nil {
		t.Fatal(err)
	}
	if ts.RowCount != 6 {
		t.Errorf("MOVIE rows = %d, want 6", ts.RowCount)
	}
	if ts.Blocks < 1 {
		t.Errorf("MOVIE blocks = %d", ts.Blocks)
	}
	if c.RowCount("GENRE") != 9 || c.RowCount("NOPE") != 0 {
		t.Error("RowCount wrong")
	}
	if c.Blocks("DIRECTOR") < 1 || c.Blocks("NOPE") != 0 {
		t.Error("Blocks wrong")
	}
	if _, err := c.Table("NOPE"); err == nil {
		t.Error("missing table must error")
	}
}

func TestColumnStats(t *testing.T) {
	c := buildTestCatalog(t)
	ts, _ := c.Table("GENRE")
	cs := ts.Columns["genre"]
	if cs.Distinct != 5 {
		t.Errorf("genre distinct = %d, want 5 (comedy,drama,horror,thriller,musical)", cs.Distinct)
	}
	if got := cs.Frequency(value.Str("comedy")); got != 3 {
		t.Errorf("freq(comedy) = %d, want 3", got)
	}
	if got := cs.Frequency(value.Str("musical")); got != 1 {
		t.Errorf("freq(musical) = %d, want 1", got)
	}
	mts, _ := c.Table("MOVIE")
	ys := mts.Columns["year"]
	if ys.Min.AsInt() != 1958 || ys.Max.AsInt() != 1996 {
		t.Errorf("year min/max = %v/%v", ys.Min, ys.Max)
	}
	if ys.NonNull != 6 {
		t.Errorf("year NonNull = %d", ys.NonNull)
	}
}

func TestEqualitySelectivity(t *testing.T) {
	c := buildTestCatalog(t)
	genre := schema.AttrRef{Relation: "GENRE", Attr: "genre"}
	if got := c.Selectivity(genre, OpEq, value.Str("comedy")); math.Abs(got-3.0/9.0) > 1e-12 {
		t.Errorf("sel(genre=comedy) = %g, want 1/3", got)
	}
	if got := c.Selectivity(genre, OpEq, value.Str("western")); got != 0 {
		t.Errorf("sel(absent value) = %g, want 0", got)
	}
	if got := c.Selectivity(genre, OpNe, value.Str("comedy")); math.Abs(got-6.0/9.0) > 1e-12 {
		t.Errorf("sel(genre<>comedy) = %g, want 2/3", got)
	}
}

func TestRangeSelectivity(t *testing.T) {
	c := buildTestCatalog(t)
	year := schema.AttrRef{Relation: "MOVIE", Attr: "year"}
	lo := c.Selectivity(year, OpLt, value.Int(1958))
	hi := c.Selectivity(year, OpGe, value.Int(1958))
	if lo != 0 {
		t.Errorf("sel(year<min) = %g, want 0", lo)
	}
	if math.Abs(hi-1) > 1e-12 {
		t.Errorf("sel(year>=min) = %g, want 1", hi)
	}
	mid := c.Selectivity(year, OpLe, value.Int(1977))
	if mid <= 0 || mid >= 1 {
		t.Errorf("sel(year<=1977) = %g, want interior value", mid)
	}
	// Non-numeric range falls back.
	name := schema.AttrRef{Relation: "DIRECTOR", Attr: "name"}
	if got := c.Selectivity(name, OpLt, value.Str("M")); math.Abs(got-1.0/3.0) > 1e-12 {
		t.Errorf("non-numeric range fallback = %g", got)
	}
}

func TestSelectivityFallbacks(t *testing.T) {
	c := buildTestCatalog(t)
	missing := schema.AttrRef{Relation: "NOPE", Attr: "x"}
	if got := c.Selectivity(missing, OpEq, value.Int(1)); got != 0.1 {
		t.Errorf("unknown eq fallback = %g", got)
	}
	if got := c.Selectivity(missing, OpLt, value.Int(1)); math.Abs(got-1.0/3.0) > 1e-12 {
		t.Errorf("unknown range fallback = %g", got)
	}
}

func TestRangeSelectivityBoundsProperty(t *testing.T) {
	c := buildTestCatalog(t)
	year := schema.AttrRef{Relation: "MOVIE", Attr: "year"}
	f := func(y int16) bool {
		v := value.Int(int64(y))
		for _, op := range []Op{OpLt, OpLe, OpGt, OpGe, OpEq, OpNe} {
			s := c.Selectivity(year, op, v)
			if s < 0 || s > 1 || math.IsNaN(s) {
				return false
			}
		}
		// Complementarity of the uniform model: Lt + Ge covers all non-nulls.
		lt := c.Selectivity(year, OpLt, v)
		ge := c.Selectivity(year, OpGe, v)
		return math.Abs(lt+ge-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestJoinSelectivity(t *testing.T) {
	c := buildTestCatalog(t)
	got := c.JoinSelectivity(
		schema.AttrRef{Relation: "MOVIE", Attr: "did"},
		schema.AttrRef{Relation: "DIRECTOR", Attr: "did"})
	if math.Abs(got-1.0/3.0) > 1e-12 {
		t.Errorf("join sel = %g, want 1/3 (3 distinct dids)", got)
	}
	fallback := c.JoinSelectivity(
		schema.AttrRef{Relation: "NOPE", Attr: "x"},
		schema.AttrRef{Relation: "DIRECTOR", Attr: "did"})
	if fallback != 0.01 {
		t.Errorf("fallback join sel = %g", fallback)
	}
}

func TestSingleValuedColumnRange(t *testing.T) {
	// A column where min == max exercises the degenerate range branches.
	s := schema.New()
	s.MustAddRelation("R", "", schema.Column{Name: "x", Type: value.KindInt})
	db := storageNew(s)
	tb := dbTable(db, "R")
	for i := 0; i < 4; i++ {
		tb.MustInsert(value.Int(7))
	}
	c := MustBuild(db)
	x := schema.AttrRef{Relation: "R", Attr: "x"}
	cases := []struct {
		op   Op
		v    int64
		want float64
	}{
		{OpLt, 8, 1}, {OpLt, 7, 0}, {OpLe, 7, 1}, {OpLe, 6, 0},
		{OpGt, 6, 1}, {OpGt, 7, 0}, {OpGe, 7, 1}, {OpGe, 8, 0},
	}
	for _, tc := range cases {
		if got := c.Selectivity(x, tc.op, value.Int(tc.v)); got != tc.want {
			t.Errorf("single-valued sel(x %v %d) = %g, want %g", tc.op, tc.v, got, tc.want)
		}
	}
}

func TestAllNullColumn(t *testing.T) {
	s := schema.New()
	s.MustAddRelation("R", "", schema.Column{Name: "x", Type: value.KindInt})
	db := storageNew(s)
	tb := dbTable(db, "R")
	for i := 0; i < 3; i++ {
		tb.MustInsert(value.Null())
	}
	c := MustBuild(db)
	x := schema.AttrRef{Relation: "R", Attr: "x"}
	if got := c.Selectivity(x, OpLt, value.Int(5)); got != 0 {
		t.Errorf("all-null range sel = %g, want 0", got)
	}
	if got := c.Selectivity(x, OpEq, value.Int(5)); got != 0 {
		t.Errorf("all-null eq sel = %g, want 0", got)
	}
}

func TestEmptyTableSelectivity(t *testing.T) {
	s := schema.New()
	s.MustAddRelation("R", "", schema.Column{Name: "x", Type: value.KindInt})
	db := storageNew(s)
	c := MustBuild(db)
	x := schema.AttrRef{Relation: "R", Attr: "x"}
	// Empty tables fall back to defaults (rowcount 0).
	if got := c.Selectivity(x, OpEq, value.Int(1)); got != 0.1 {
		t.Errorf("empty-table eq fallback = %g", got)
	}
	if got := c.JoinSelectivity(x, x); got != 0.01 {
		t.Errorf("empty-table join fallback = %g", got)
	}
}

func TestJoinSelectivityAsymmetricDistincts(t *testing.T) {
	c := buildTestCatalog(t)
	// MOVIE.mid has 6 distinct; GENRE.mid has 6 distinct. MOVIE.did has 3,
	// DIRECTOR.did has 3. Cross pair: did (3 distinct) vs mid (6 distinct)
	// uses the max.
	got := c.JoinSelectivity(
		schema.AttrRef{Relation: "MOVIE", Attr: "did"},
		schema.AttrRef{Relation: "MOVIE", Attr: "mid"})
	if math.Abs(got-1.0/6.0) > 1e-12 {
		t.Errorf("join sel = %g, want 1/6 (max of distinct counts)", got)
	}
}

// helpers bridging to storage without importing it at top level twice.
func storageNew(s *schema.Schema) *storage.DB { return storage.NewDB(s, 256) }

func dbTable(db *storage.DB, name string) *storage.Table { return db.MustTable(name).(*storage.Table) }
