// Package catalog builds and serves the statistics that CQP's Parameter
// Estimation module consumes: relation cardinalities and block counts,
// per-column distinct counts, value frequencies, and min/max bounds.
//
// The paper deliberately uses "a much less detailed cost model" than a query
// optimizer (Section 2); accordingly the catalog provides exact equality
// frequencies (the store is memory-resident, so maintaining them is free)
// and uniform-spread range estimates, which is all the size estimator needs.
package catalog

import (
	"fmt"

	"cqp/internal/schema"
	"cqp/internal/storage"
	"cqp/internal/value"
)

// ColumnStats carries statistics for one column.
type ColumnStats struct {
	Distinct int
	// Freq maps value hash -> occurrence count. Collisions are acceptable:
	// the estimator tolerates approximation by design.
	freq map[uint64]int
	Min  value.Value
	Max  value.Value
	// NonNull is the number of non-NULL entries.
	NonNull int
	// Hist is an equi-depth histogram over numeric columns (nil otherwise),
	// sharpening range selectivity on skewed data.
	Hist *Histogram
}

// Frequency returns the number of rows with the given value.
func (c *ColumnStats) Frequency(v value.Value) int { return c.freq[v.Hash()] }

// TableStats carries statistics for one relation.
type TableStats struct {
	RowCount int
	Blocks   int64
	Columns  map[string]*ColumnStats
}

// Catalog holds statistics for every relation of a database.
type Catalog struct {
	tables map[string]*TableStats
}

// Build scans the database (without I/O accounting: statistics are catalog
// metadata, not query work) and computes statistics for every table. The
// scan runs through each backend's cursor in one streaming pass per table,
// so statistics build without materializing any table — including tables
// served by the persistent block store that never fit in memory.
func Build(db *storage.DB) (*Catalog, error) {
	c := &Catalog{tables: make(map[string]*TableStats)}
	for _, rel := range db.Schema().Relations() {
		tbl := db.MustTable(rel.Name)
		ts := &TableStats{
			RowCount: tbl.RowCount(),
			Blocks:   tbl.Blocks(),
			Columns:  make(map[string]*ColumnStats, len(rel.Columns)),
		}
		cols := make([]*ColumnStats, len(rel.Columns))
		numeric := make([]bool, len(rel.Columns))
		numVals := make([][]float64, len(rel.Columns))
		for i, col := range rel.Columns {
			cols[i] = &ColumnStats{freq: make(map[uint64]int)}
			numeric[i] = col.Type == value.KindInt || col.Type == value.KindFloat
			ts.Columns[col.Name] = cols[i]
		}
		err := storage.ScanRaw(tbl, func(row storage.Row) bool {
			for i, v := range row {
				if v.IsNull() {
					continue
				}
				cs := cols[i]
				cs.NonNull++
				h := v.Hash()
				if cs.freq[h] == 0 {
					cs.Distinct++
				}
				cs.freq[h]++
				if cs.Min.IsNull() || v.Less(cs.Min) {
					cs.Min = v
				}
				if cs.Max.IsNull() || cs.Max.Less(v) {
					cs.Max = v
				}
				if numeric[i] {
					numVals[i] = append(numVals[i], v.AsFloat())
				}
			}
			return true
		})
		if err != nil {
			return nil, fmt.Errorf("catalog: scan %s: %w", rel.Name, err)
		}
		for i := range rel.Columns {
			if numeric[i] {
				cols[i].Hist = buildHistogram(numVals[i], DefaultHistogramBuckets)
			}
		}
		c.tables[rel.Name] = ts
	}
	return c, nil
}

// Table returns statistics for the relation, or an error.
func (c *Catalog) Table(name string) (*TableStats, error) {
	ts, ok := c.tables[name]
	if !ok {
		return nil, fmt.Errorf("catalog: no statistics for relation %s", name)
	}
	return ts, nil
}

// Blocks returns the block count for the relation (0 if unknown).
func (c *Catalog) Blocks(name string) int64 {
	if ts, ok := c.tables[name]; ok {
		return ts.Blocks
	}
	return 0
}

// RowCount returns the cardinality of the relation (0 if unknown).
func (c *Catalog) RowCount(name string) int {
	if ts, ok := c.tables[name]; ok {
		return ts.RowCount
	}
	return 0
}

// column fetches column stats, or nil if unknown.
func (c *Catalog) column(a schema.AttrRef) *ColumnStats {
	ts, ok := c.tables[a.Relation]
	if !ok {
		return nil
	}
	return ts.Columns[a.Attr]
}

// Op mirrors query comparison operators for selectivity estimation without
// importing the query package (catalog sits below it).
type Op uint8

// Comparison operators.
const (
	OpEq Op = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
)

// Selectivity estimates the fraction of the relation's rows satisfying
// "attr op v", in [0, 1]. Equality uses exact frequencies; ranges use a
// uniform spread between Min and Max. Unknown columns fall back to the
// textbook default of 0.1 for equality and 1/3 for ranges.
func (c *Catalog) Selectivity(a schema.AttrRef, op Op, v value.Value) float64 {
	cs := c.column(a)
	ts, _ := c.tables[a.Relation]
	if cs == nil || ts == nil || ts.RowCount == 0 {
		if op == OpEq {
			return 0.1
		}
		return 1.0 / 3.0
	}
	n := float64(ts.RowCount)
	switch op {
	case OpEq:
		return float64(cs.Frequency(v)) / n
	case OpNe:
		return 1 - float64(cs.Frequency(v))/n
	case OpLt, OpLe, OpGt, OpGe:
		return rangeFraction(cs, op, v, n)
	default:
		return 1
	}
}

// rangeFraction estimates range selectivity. Numeric columns use the
// equi-depth histogram; non-numeric ranges fall back to the textbook 1/3.
func rangeFraction(cs *ColumnStats, op Op, v value.Value, n float64) float64 {
	if cs.NonNull == 0 {
		return 0
	}
	if cs.Hist == nil || !isNumeric(v) {
		if !isNumeric(cs.Min) || !isNumeric(cs.Max) || !isNumeric(v) {
			return 1.0 / 3.0
		}
		// Uniform-spread fallback (no histogram built).
		lo, hi, x := cs.Min.AsFloat(), cs.Max.AsFloat(), v.AsFloat()
		if hi <= lo { // single-valued column
			switch op {
			case OpLt:
				return boolFrac(lo < x)
			case OpLe:
				return boolFrac(lo <= x)
			case OpGt:
				return boolFrac(lo > x)
			default:
				return boolFrac(lo >= x)
			}
		}
		frac := (x - lo) / (hi - lo)
		if frac < 0 {
			frac = 0
		}
		if frac > 1 {
			frac = 1
		}
		nonNull := float64(cs.NonNull) / n
		switch op {
		case OpLt, OpLe:
			return frac * nonNull
		default:
			return (1 - frac) * nonNull
		}
	}
	nonNull := float64(cs.NonNull) / n
	x := v.AsFloat()
	switch op {
	case OpLt:
		return cs.Hist.LessFrac(x) * nonNull
	case OpLe:
		return cs.Hist.LeqFrac(x) * nonNull
	case OpGt:
		return (1 - cs.Hist.LeqFrac(x)) * nonNull
	default: // OpGe
		return (1 - cs.Hist.LessFrac(x)) * nonNull
	}
}

func isNumeric(v value.Value) bool {
	return v.Kind() == value.KindInt || v.Kind() == value.KindFloat
}

func boolFrac(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// JoinSelectivity estimates the selectivity of the equi-join left = right
// under the standard containment assumption: 1 / max(distinct(left),
// distinct(right)). Unknown columns fall back to 0.01.
func (c *Catalog) JoinSelectivity(left, right schema.AttrRef) float64 {
	lc, rc := c.column(left), c.column(right)
	if lc == nil || rc == nil || (lc.Distinct == 0 && rc.Distinct == 0) {
		return 0.01
	}
	d := lc.Distinct
	if rc.Distinct > d {
		d = rc.Distinct
	}
	if d == 0 {
		return 0.01
	}
	return 1 / float64(d)
}

// MustBuild is Build panicking on a failed statistics scan — for
// in-memory databases (whose maintenance scans cannot fail) and tests.
func MustBuild(db *storage.DB) *Catalog {
	c, err := Build(db)
	if err != nil {
		panic(err)
	}
	return c
}
