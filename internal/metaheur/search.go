package metaheur

import (
	"math"
	"math/rand"
	"time"

	"cqp/internal/core"
)

// GAConfig tunes the genetic algorithm. Zero values select defaults.
type GAConfig struct {
	Population  int     // default 60
	Generations int     // default 120
	MutateProb  float64 // per-gene flip probability, default 2/K
	Elite       int     // individuals copied unchanged, default 2
	Seed        int64
}

// Genetic solves Problem 2 with a steady generational GA: tournament
// selection, uniform crossover, per-gene mutation, and density repair of
// infeasible offspring.
func Genetic(in *core.Instance, cmax float64, cfg GAConfig) core.Solution {
	start := time.Now()
	if cfg.Population <= 0 {
		cfg.Population = 60
	}
	if cfg.Generations <= 0 {
		cfg.Generations = 120
	}
	if cfg.Elite <= 0 {
		cfg.Elite = 2
	}
	if cfg.MutateProb <= 0 {
		cfg.MutateProb = 2.0 / math.Max(float64(in.K), 1)
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	states := 0

	if in.K == 0 {
		return finish(in, nil, false, cmax, "GENETIC", start, states)
	}

	type indiv struct {
		mask []bool
		doi  float64
	}
	eval := func(mask []bool) float64 {
		states++
		repair(in, mask, cmax, rng)
		doi, cost := evalMask(in, mask)
		if cost > cmax {
			return -1
		}
		return doi
	}
	pop := make([]indiv, cfg.Population)
	for i := range pop {
		mask := make([]bool, in.K)
		for j := range mask {
			mask[j] = rng.Intn(3) == 0
		}
		pop[i] = indiv{mask: mask, doi: eval(mask)}
	}
	bestOf := func(a, b indiv) indiv {
		if a.doi >= b.doi {
			return a
		}
		return b
	}
	tournament := func() indiv {
		return bestOf(pop[rng.Intn(len(pop))], pop[rng.Intn(len(pop))])
	}
	for gen := 0; gen < cfg.Generations; gen++ {
		// Sort descending by doi (selection + elitism).
		for i := 1; i < len(pop); i++ {
			for j := i; j > 0 && pop[j].doi > pop[j-1].doi; j-- {
				pop[j], pop[j-1] = pop[j-1], pop[j]
			}
		}
		next := make([]indiv, 0, cfg.Population)
		for i := 0; i < cfg.Elite && i < len(pop); i++ {
			next = append(next, pop[i])
		}
		for len(next) < cfg.Population {
			a, b := tournament(), tournament()
			child := make([]bool, in.K)
			for j := range child {
				if rng.Intn(2) == 0 {
					child[j] = a.mask[j]
				} else {
					child[j] = b.mask[j]
				}
				if rng.Float64() < cfg.MutateProb {
					child[j] = !child[j]
				}
			}
			next = append(next, indiv{mask: child, doi: eval(child)})
		}
		pop = next
	}
	best := pop[0]
	for _, ind := range pop[1:] {
		best = bestOf(best, ind)
	}
	return finish(in, best.mask, best.doi >= 0 && !noneSet(best.mask), cmax, "GENETIC", start, states)
}

// SAConfig tunes simulated annealing. Zero values select defaults.
type SAConfig struct {
	Steps  int     // default 20000
	InitT  float64 // default 0.05 (doi-scale temperature)
	CoolTo float64 // default 1e-4
	Seed   int64
}

// Anneal solves Problem 2 with simulated annealing over single-bit flips
// with a geometric cooling schedule; infeasible flips are rejected outright
// (cost feasibility is cheap to maintain incrementally).
func Anneal(in *core.Instance, cmax float64, cfg SAConfig) core.Solution {
	start := time.Now()
	if cfg.Steps <= 0 {
		cfg.Steps = 20000
	}
	if cfg.InitT <= 0 {
		cfg.InitT = 0.05
	}
	if cfg.CoolTo <= 0 {
		cfg.CoolTo = 1e-4
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 2))
	states := 0
	if in.K == 0 {
		return finish(in, nil, false, cmax, "ANNEAL", start, states)
	}
	mask := make([]bool, in.K)
	doi, cost := evalMask(in, mask)
	cost = 0 // empty selection carries no sub-query cost
	bestMask := append([]bool(nil), mask...)
	bestDoi := doi
	alpha := math.Pow(cfg.CoolTo/cfg.InitT, 1/float64(cfg.Steps))
	temp := cfg.InitT
	for step := 0; step < cfg.Steps; step++ {
		i := rng.Intn(in.K)
		var nc float64
		if mask[i] {
			nc = cost - in.Cost[i]
		} else {
			nc = cost + in.Cost[i]
		}
		if nc > cmax {
			temp *= alpha
			continue
		}
		mask[i] = !mask[i]
		nd, _ := evalMask(in, mask)
		states++
		if nd >= doi || rng.Float64() < math.Exp((nd-doi)/temp) {
			doi, cost = nd, nc
			if doi > bestDoi {
				bestDoi = doi
				copy(bestMask, mask)
			}
		} else {
			mask[i] = !mask[i] // revert
		}
		temp *= alpha
	}
	return finish(in, bestMask, !noneSet(bestMask), cmax, "ANNEAL", start, states)
}

// TabuConfig tunes tabu search. Zero values select defaults.
type TabuConfig struct {
	Iterations int // default 2000
	Tenure     int // default K/3+1
	Seed       int64
}

// Tabu solves Problem 2 with tabu search over single-bit flips: each
// iteration takes the best non-tabu feasible flip (aspiration overrides
// tabu when it improves the incumbent).
func Tabu(in *core.Instance, cmax float64, cfg TabuConfig) core.Solution {
	start := time.Now()
	if cfg.Iterations <= 0 {
		cfg.Iterations = 2000
	}
	if cfg.Tenure <= 0 {
		cfg.Tenure = in.K/3 + 1
	}
	states := 0
	if in.K == 0 {
		return finish(in, nil, false, cmax, "TABU", start, states)
	}
	mask := make([]bool, in.K)
	doi := 0.0
	cost := 0.0
	bestMask := append([]bool(nil), mask...)
	bestDoi := doi
	tabuUntil := make([]int, in.K)
	for it := 1; it <= cfg.Iterations; it++ {
		bestFlip, bestFlipDoi, bestFlipCost := -1, -2.0, 0.0
		for i := 0; i < in.K; i++ {
			var nc float64
			if mask[i] {
				nc = cost - in.Cost[i]
			} else {
				nc = cost + in.Cost[i]
			}
			if nc > cmax {
				continue
			}
			mask[i] = !mask[i]
			nd, _ := evalMask(in, mask)
			mask[i] = !mask[i]
			states++
			if tabuUntil[i] > it && nd <= bestDoi {
				continue // tabu without aspiration
			}
			if nd > bestFlipDoi {
				bestFlip, bestFlipDoi, bestFlipCost = i, nd, nc
			}
		}
		if bestFlip < 0 {
			break
		}
		mask[bestFlip] = !mask[bestFlip]
		doi, cost = bestFlipDoi, bestFlipCost
		tabuUntil[bestFlip] = it + cfg.Tenure
		if doi > bestDoi {
			bestDoi = doi
			copy(bestMask, mask)
		}
	}
	return finish(in, bestMask, !noneSet(bestMask), cmax, "TABU", start, states)
}
