// Package metaheur implements the generic optimization baselines the paper
// contrasts CQP's special-purpose algorithms against (Section 2): genetic
// search, simulated annealing and tabu search, plus two ablations — a
// doi-per-cost greedy and a scaled knapsack dynamic program. All solve
// Problem 2 (maximize doi subject to cost ≤ cmax) on a core.Instance, so
// benchmarks can quantify the paper's claim that generic approaches ignore
// the problem's syntax-based partial orders.
//
// The knapsack DP exists because, under the paper's chosen estimation
// formulas, Problem 2 *is* a knapsack in disguise: maximizing
// 1 − Π(1 − doi_i) equals maximizing Σ −log(1 − doi_i) under an additive
// cost bound. The paper argues (correctly) that the general CQP family is
// not — other formulas for f⊗ and r need not be separable — so the DP is
// an ablation of that discussion, not a CQP algorithm.
package metaheur

import (
	"math"
	"math/rand"
	"sort"
	"time"

	"cqp/internal/core"
)

// logGain converts a doi to its additive log-domain gain −log(1−doi),
// capped for must-have preferences.
func logGain(doi float64) float64 {
	if doi >= 1 {
		return 700
	}
	return -math.Log(1 - doi)
}

// evalMask computes (doi, cost) of a selection mask.
func evalMask(in *core.Instance, mask []bool) (doi, cost float64) {
	prod := 1.0
	for i, on := range mask {
		if on {
			prod *= 1 - in.Doi[i]
			cost += in.Cost[i]
		}
	}
	if cost == 0 {
		cost = in.BaseCost
	}
	return 1 - prod, cost
}

// maskSet converts a mask to sorted indices.
func maskSet(mask []bool) []int {
	var out []int
	for i, on := range mask {
		if on {
			out = append(out, i)
		}
	}
	return out
}

// repair drops the worst value-density members until the mask is feasible.
func repair(in *core.Instance, mask []bool, cmax float64, rng *rand.Rand) {
	for {
		_, cost := evalMask(in, mask)
		if cost <= cmax || noneSet(mask) {
			return
		}
		// Drop the member with the worst gain per cost, breaking ties
		// randomly to preserve diversity.
		worst, worstRate := -1, math.Inf(1)
		for i, on := range mask {
			if !on {
				continue
			}
			rate := logGain(in.Doi[i]) / math.Max(in.Cost[i], 1e-9)
			if rate < worstRate || (rate == worstRate && rng.Intn(2) == 0) {
				worst, worstRate = i, rate
			}
		}
		mask[worst] = false
	}
}

func noneSet(mask []bool) bool {
	for _, on := range mask {
		if on {
			return false
		}
	}
	return true
}

// finish assembles a Solution from the best feasible mask found.
func finish(in *core.Instance, best []bool, found bool, cmax float64, name string, start time.Time, states int) core.Solution {
	var sol core.Solution
	if found {
		set := maskSet(best)
		sol = core.Solution{
			Set:      set,
			Doi:      in.SetDoi(set),
			Cost:     in.SetCost(set),
			Size:     in.SetSize(set),
			Feasible: true,
		}
	} else if in.BaseCost <= cmax {
		sol = core.Solution{Set: []int{}, Cost: in.BaseCost, Size: in.BaseSize, Feasible: true}
	} else {
		sol = core.Solution{Feasible: false}
	}
	sol.Stats = core.Stats{
		Algorithm:     name,
		Duration:      time.Since(start),
		StatesVisited: states,
	}
	return sol
}

// Greedy solves Problem 2 by value density: add preferences in decreasing
// doi-gain-per-cost order while they fit, then try each remaining
// preference once (classic knapsack greedy with a fill pass).
func Greedy(in *core.Instance, cmax float64) core.Solution {
	start := time.Now()
	order := make([]int, in.K)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		ra := logGain(in.Doi[order[a]]) / math.Max(in.Cost[order[a]], 1e-9)
		rb := logGain(in.Doi[order[b]]) / math.Max(in.Cost[order[b]], 1e-9)
		return ra > rb
	})
	mask := make([]bool, in.K)
	cost := 0.0
	states := 0
	for _, i := range order {
		states++
		if cost+in.Cost[i] <= cmax {
			mask[i] = true
			cost += in.Cost[i]
		}
	}
	return finish(in, mask, !noneSet(mask), cmax, "GREEDY", start, states)
}

// KnapsackDP solves the log-domain knapsack exactly up to cost
// discretization: costs are scaled onto `resolution` integer buckets of
// cmax (default 10000), giving a pseudo-polynomial O(K × resolution)
// algorithm. With fine enough resolution it matches EXHAUSTIVE.
func KnapsackDP(in *core.Instance, cmax float64, resolution int) core.Solution {
	start := time.Now()
	if resolution <= 0 {
		resolution = 10000
	}
	if in.K == 0 || cmax <= 0 {
		return finish(in, make([]bool, in.K), false, cmax, "KNAPSACK-DP", start, 0)
	}
	scale := float64(resolution) / cmax
	w := make([]int, in.K)
	g := make([]float64, in.K)
	for i := 0; i < in.K; i++ {
		// Round weights UP so the DP never overfills the true budget.
		w[i] = int(math.Ceil(in.Cost[i] * scale))
		g[i] = logGain(in.Doi[i])
	}
	// dp[i][b] = best gain using items 0..i−1 within integer budget b.
	dp := make([][]float64, in.K+1)
	dp[0] = make([]float64, resolution+1)
	states := 0
	for i := 1; i <= in.K; i++ {
		dp[i] = make([]float64, resolution+1)
		copy(dp[i], dp[i-1])
		for b := w[i-1]; b <= resolution; b++ {
			states++
			if cand := dp[i-1][b-w[i-1]] + g[i-1]; cand > dp[i][b] {
				dp[i][b] = cand
			}
		}
	}
	// Reconstruct from the full budget.
	mask := make([]bool, in.K)
	b := resolution
	for i := in.K; i >= 1; i-- {
		if dp[i][b] != dp[i-1][b] {
			mask[i-1] = true
			b -= w[i-1]
		}
	}
	return finish(in, mask, !noneSet(mask), cmax, "KNAPSACK-DP", start, states)
}
