package metaheur

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"cqp/internal/core"
)

func randInstance(t testing.TB, rng *rand.Rand, k int) *core.Instance {
	t.Helper()
	dois := make([]float64, k)
	costs := make([]float64, k)
	shr := make([]float64, k)
	for i := range dois {
		dois[i] = rng.Float64()*0.98 + 0.01
		costs[i] = 1 + rng.Float64()*99
		shr[i] = 0.1 + 0.9*rng.Float64()
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(dois)))
	in, err := core.NewInstance(dois, costs, shr, 1, 1000)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

type solver func(in *core.Instance, cmax float64) core.Solution

func allSolvers() map[string]solver {
	return map[string]solver{
		"GREEDY": Greedy,
		"KNAPSACK-DP": func(in *core.Instance, cmax float64) core.Solution {
			return KnapsackDP(in, cmax, 0)
		},
		"GENETIC": func(in *core.Instance, cmax float64) core.Solution {
			return Genetic(in, cmax, GAConfig{Seed: 1})
		},
		"ANNEAL": func(in *core.Instance, cmax float64) core.Solution {
			return Anneal(in, cmax, SAConfig{Seed: 1})
		},
		"TABU": func(in *core.Instance, cmax float64) core.Solution {
			return Tabu(in, cmax, TabuConfig{Seed: 1})
		},
	}
}

// TestFeasibilityAndBound: every baseline returns cost-feasible solutions
// that never exceed the exhaustive optimum.
func TestFeasibilityAndBound(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 30; trial++ {
		k := 3 + rng.Intn(8)
		in := randInstance(t, rng, k)
		cmax := in.SupremeCost() * (0.2 + 0.6*rng.Float64())
		opt := core.Exhaustive(in, cmax)
		for name, s := range allSolvers() {
			got := s(in, cmax)
			if got.Feasible && got.Cost > cmax+1e-9 && len(got.Set) > 0 {
				t.Fatalf("%s trial %d: cost %g > cmax %g", name, trial, got.Cost, cmax)
			}
			if got.Doi > opt.Doi+1e-9 {
				t.Fatalf("%s trial %d: doi %v beats optimum %v", name, trial, got.Doi, opt.Doi)
			}
			if got.Stats.Algorithm == "" {
				t.Fatalf("%s: stats missing", name)
			}
		}
	}
}

// TestKnapsackDPNearExact: with fine resolution the DP matches EXHAUSTIVE
// on most instances (ceil-rounding can exclude knife-edge optima).
func TestKnapsackDPNearExact(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	var worst float64
	for trial := 0; trial < 40; trial++ {
		in := randInstance(t, rng, 3+rng.Intn(8))
		cmax := in.SupremeCost() * (0.2 + 0.6*rng.Float64())
		opt := core.Exhaustive(in, cmax)
		got := KnapsackDP(in, cmax, 100000)
		if gap := opt.Doi - got.Doi; gap > worst {
			worst = gap
		}
	}
	if worst > 1e-3 {
		t.Errorf("knapsack DP gap %g too large at fine resolution", worst)
	}
}

// TestMetaheuristicsReasonableQuality: on small instances the generic
// methods should land close to the optimum (they are the paper's "generic
// approaches" — applicable but unguided).
func TestMetaheuristicsReasonableQuality(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	gaps := map[string]float64{}
	trials := 20
	for trial := 0; trial < trials; trial++ {
		in := randInstance(t, rng, 10)
		cmax := in.SupremeCost() * 0.5
		opt := core.Exhaustive(in, cmax)
		for name, s := range allSolvers() {
			got := s(in, cmax)
			gaps[name] += opt.Doi - got.Doi
		}
	}
	for name, total := range gaps {
		avg := total / float64(trials)
		t.Logf("%s: average optimality gap %.6f", name, avg)
		if avg > 0.05 {
			t.Errorf("%s: average gap %.4f exceeds 5%%", name, avg)
		}
	}
}

// TestDegenerateInstances: zero preferences and zero budget.
func TestDegenerateInstances(t *testing.T) {
	empty := &core.Instance{BaseCost: 5, BaseSize: 10}
	for name, s := range allSolvers() {
		got := s(empty, 10)
		if !got.Feasible || len(got.Set) != 0 {
			t.Errorf("%s on empty instance: %+v", name, got)
		}
	}
	in := randInstanceFixed(t)
	for name, s := range allSolvers() {
		got := s(in, 0.5) // below base cost 1: nothing feasible
		if got.Feasible {
			t.Errorf("%s with impossible budget: %+v", name, got)
		}
	}
}

func randInstanceFixed(t *testing.T) *core.Instance {
	in, err := core.NewInstance(
		[]float64{0.9, 0.5}, []float64{10, 20}, []float64{0.5, 0.5}, 1, 100)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

// TestDeterminism: fixed seeds give reproducible answers.
func TestDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	in := randInstance(t, rng, 12)
	cmax := in.SupremeCost() * 0.4
	a := Genetic(in, cmax, GAConfig{Seed: 7})
	b := Genetic(in, cmax, GAConfig{Seed: 7})
	if math.Abs(a.Doi-b.Doi) > 0 {
		t.Error("GA must be deterministic under a fixed seed")
	}
	c := Anneal(in, cmax, SAConfig{Seed: 7})
	d := Anneal(in, cmax, SAConfig{Seed: 7})
	if c.Doi != d.Doi {
		t.Error("SA must be deterministic under a fixed seed")
	}
}
