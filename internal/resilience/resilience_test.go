package resilience

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

var errBoom = errors.New("boom")

func fastPolicy() RetryPolicy {
	return RetryPolicy{
		MaxAttempts: 3,
		BaseDelay:   time.Millisecond,
		MaxDelay:    2 * time.Millisecond,
		rand:        func() float64 { return 0.5 }, // no jitter spread
	}
}

func TestRetrySucceedsAfterTransientFailures(t *testing.T) {
	calls, retries := 0, 0
	pol := fastPolicy()
	pol.OnRetry = func(int, error) { retries++ }
	err := Retry(context.Background(), pol, func(context.Context) error {
		calls++
		if calls < 3 {
			return errBoom
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Retry = %v", err)
	}
	if calls != 3 || retries != 2 {
		t.Fatalf("calls = %d, retries = %d, want 3 and 2", calls, retries)
	}
}

func TestRetryExhaustsAttempts(t *testing.T) {
	calls := 0
	err := Retry(context.Background(), fastPolicy(), func(context.Context) error {
		calls++
		return errBoom
	})
	if !errors.Is(err, errBoom) || calls != 3 {
		t.Fatalf("err = %v after %d calls", err, calls)
	}
}

func TestRetryStopsOnPermanentError(t *testing.T) {
	perm := errors.New("permanent")
	pol := fastPolicy()
	pol.Retryable = func(err error) bool { return !errors.Is(err, perm) }
	calls := 0
	err := Retry(context.Background(), pol, func(context.Context) error {
		calls++
		return perm
	})
	if !errors.Is(err, perm) || calls != 1 {
		t.Fatalf("err = %v after %d calls, want permanent after 1", err, calls)
	}
}

func TestRetryHonorsContextDuringBackoff(t *testing.T) {
	pol := fastPolicy()
	pol.BaseDelay = time.Hour // only a ctx cancel can end the sleep
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- Retry(ctx, pol, func(context.Context) error { return errBoom })
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, errBoom) || !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want boom joined with Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Retry did not return after cancel")
	}
}

func TestRetryDefaultClassifierRejectsContextErrors(t *testing.T) {
	for _, err := range []error{context.Canceled, context.DeadlineExceeded} {
		if RetryableDefault(err) {
			t.Errorf("RetryableDefault(%v) = true", err)
		}
		if RetryableDefault(fmt.Errorf("wrap: %w", err)) {
			t.Errorf("RetryableDefault(wrapped %v) = true", err)
		}
	}
	if !RetryableDefault(errBoom) {
		t.Error("RetryableDefault(boom) = false")
	}
	if RetryableDefault(nil) {
		t.Error("RetryableDefault(nil) = true")
	}
}

// testClock is a manual clock for breaker tests.
type testClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *testClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *testClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func newTestBreaker(threshold, probes int, timeout time.Duration) (*Breaker, *testClock, *[]string) {
	clk := &testClock{now: time.Unix(0, 0)}
	var log []string
	b := NewBreaker(BreakerConfig{
		FailureThreshold: threshold,
		OpenTimeout:      timeout,
		HalfOpenProbes:   probes,
		Clock:            clk.Now,
		OnTransition: func(from, to BreakerState) {
			log = append(log, fmt.Sprintf("%s->%s", from, to))
		},
	})
	return b, clk, &log
}

func TestBreakerOpensAfterConsecutiveFailures(t *testing.T) {
	b, _, log := newTestBreaker(3, 1, time.Second)
	for i := 0; i < 2; i++ {
		if !b.Allow() {
			t.Fatal("closed breaker refused")
		}
		b.Failure()
	}
	b.Allow()
	b.Success() // success resets the streak
	for i := 0; i < 3; i++ {
		b.Allow()
		b.Failure()
	}
	if b.State() != Open {
		t.Fatalf("state = %s, want open", b.State())
	}
	if b.Allow() {
		t.Fatal("open breaker granted an attempt")
	}
	if len(*log) != 1 || (*log)[0] != "closed->open" {
		t.Fatalf("transitions = %v", *log)
	}
}

func TestBreakerHalfOpenProbesAndRecovery(t *testing.T) {
	b, clk, log := newTestBreaker(1, 2, time.Second)
	b.Allow()
	b.Failure() // opens
	if b.Allow() {
		t.Fatal("open breaker granted before timeout")
	}
	clk.Advance(time.Second)
	// Two probes flow, a third is refused while they are in flight.
	if !b.Allow() || !b.Allow() {
		t.Fatal("half-open breaker refused probes")
	}
	if b.Allow() {
		t.Fatal("half-open breaker granted more than HalfOpenProbes")
	}
	b.Success()
	b.Success()
	if b.State() != Closed {
		t.Fatalf("state = %s after probe successes, want closed", b.State())
	}
	want := []string{"closed->open", "open->half-open", "half-open->closed"}
	if fmt.Sprint(*log) != fmt.Sprint(want) {
		t.Fatalf("transitions = %v, want %v", *log, want)
	}
}

func TestBreakerHalfOpenFailureReopens(t *testing.T) {
	b, clk, _ := newTestBreaker(1, 1, time.Second)
	b.Allow()
	b.Failure()
	clk.Advance(time.Second)
	if !b.Allow() {
		t.Fatal("no probe granted")
	}
	b.Failure()
	if b.State() != Open {
		t.Fatalf("state = %s after failed probe, want open", b.State())
	}
	if b.Allow() {
		t.Fatal("reopened breaker granted before a fresh timeout")
	}
	clk.Advance(time.Second)
	if !b.Allow() {
		t.Fatal("no probe after the fresh open window")
	}
}

func TestBreakerConcurrentUse(t *testing.T) {
	b, _, _ := newTestBreaker(1000000, 2, time.Second)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				if b.Allow() {
					if i%2 == 0 {
						b.Success()
					} else {
						b.Failure()
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if b.State() != Closed {
		t.Fatalf("state = %s", b.State())
	}
}

func TestWalkFirstRungWins(t *testing.T) {
	v, name, err := Walk(context.Background(), nil,
		Step{Name: "stale", Run: func(context.Context) (any, error) { return "cached", nil }},
		Step{Name: "heuristic", Run: func(context.Context) (any, error) { t.Fatal("walked too far"); return nil, nil }},
	)
	if err != nil || v != "cached" || name != "stale" {
		t.Fatalf("Walk = (%v, %q, %v)", v, name, err)
	}
}

func TestWalkSkipsUnavailableAndFallsThrough(t *testing.T) {
	v, name, err := Walk(context.Background(), nil,
		Step{Name: "stale", Run: func(context.Context) (any, error) { return nil, ErrStepUnavailable }},
		Step{Name: "heuristic", Run: func(context.Context) (any, error) { return nil, errBoom }},
		Step{Name: "tight-cmax", Run: func(context.Context) (any, error) { return 42, nil }},
	)
	if err != nil || v != 42 || name != "tight-cmax" {
		t.Fatalf("Walk = (%v, %q, %v)", v, name, err)
	}
}

func TestWalkExhaustion(t *testing.T) {
	_, _, err := Walk(context.Background(), nil,
		Step{Name: "a", Run: func(context.Context) (any, error) { return nil, errBoom }},
		Step{Name: "b", Run: func(context.Context) (any, error) { return nil, errBoom }},
	)
	if !errors.Is(err, ErrExhausted) || !errors.Is(err, errBoom) {
		t.Fatalf("Walk err = %v, want ErrExhausted wrapping boom", err)
	}
}

func TestWalkStopsOnPermanentError(t *testing.T) {
	perm := errors.New("infeasible")
	calls := 0
	_, name, err := Walk(context.Background(),
		func(err error) bool { return errors.Is(err, perm) },
		Step{Name: "a", Run: func(context.Context) (any, error) { calls++; return nil, perm }},
		Step{Name: "b", Run: func(context.Context) (any, error) { calls++; return nil, nil }},
	)
	if !errors.Is(err, perm) || calls != 1 || name != "a" {
		t.Fatalf("Walk = (%q, %v) after %d calls", name, err, calls)
	}
}

func TestWalkHonorsDeadContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := Walk(ctx, nil,
		Step{Name: "a", Run: func(context.Context) (any, error) { t.Fatal("ran with dead ctx"); return nil, nil }},
	)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Walk err = %v", err)
	}
}
