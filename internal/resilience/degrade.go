package resilience

import (
	"context"
	"errors"
	"fmt"
)

// ErrStepUnavailable is the sentinel a ladder step returns when it cannot
// even attempt its answer (no stale entry cached, rung not applicable);
// Walk moves on without treating it as the request's error.
var ErrStepUnavailable = errors.New("resilience: degradation step unavailable")

// ErrExhausted reports that every rung of a ladder failed; handlers map it
// to 503.
var ErrExhausted = errors.New("resilience: degradation ladder exhausted")

// Step is one rung of a degradation ladder: a named, lower-quality way to
// answer the request.
type Step struct {
	// Name labels the rung ("stale", "heuristic", "tight-cmax"); the value
	// that answered carries it so responses can be marked degraded.
	Name string
	// Run produces the rung's answer.
	Run func(ctx context.Context) (any, error)
}

// Walk tries the rungs in order and returns the first success together
// with the winning rung's name. A permanent error (per the predicate —
// infeasibility, a dead context, a caller mistake) aborts the walk and is
// returned as-is: degrading cannot fix a request that is wrong rather than
// unlucky. If every rung fails transiently the result wraps ErrExhausted
// with the last transient error.
func Walk(ctx context.Context, permanent func(error) bool, steps ...Step) (any, string, error) {
	var last error
	for _, s := range steps {
		if err := ctx.Err(); err != nil {
			if last != nil {
				return nil, "", errors.Join(last, err)
			}
			return nil, "", err
		}
		v, err := s.Run(ctx)
		if err == nil {
			return v, s.Name, nil
		}
		if errors.Is(err, ErrStepUnavailable) {
			continue
		}
		if permanent != nil && permanent(err) {
			return nil, s.Name, err
		}
		last = err
	}
	if last == nil {
		last = ErrStepUnavailable
	}
	return nil, "", fmt.Errorf("%w: %w", ErrExhausted, last)
}
