package resilience

import (
	"sync"
	"time"
)

// BreakerState is one of the circuit breaker's three states.
type BreakerState int32

const (
	// Closed: traffic flows; consecutive failures are counted.
	Closed BreakerState = iota
	// Open: traffic is refused until OpenTimeout elapses.
	Open
	// HalfOpen: a bounded number of probes flow; enough successes close
	// the breaker, any failure reopens it.
	HalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	}
	return "unknown"
}

// BreakerConfig tunes a Breaker. The zero value selects serving defaults.
type BreakerConfig struct {
	// FailureThreshold is the consecutive-failure count that opens the
	// breaker (default 5).
	FailureThreshold int
	// OpenTimeout is how long the breaker stays open before allowing
	// half-open probes (default 5s).
	OpenTimeout time.Duration
	// HalfOpenProbes is both the number of concurrent probes admitted in
	// half-open and the successes required to close (default 2).
	HalfOpenProbes int
	// Clock overrides time.Now for tests.
	Clock func() time.Time
	// OnTransition observes every state change (the daemon's breaker
	// gauge and transition counter hang off this). Called without the
	// breaker's lock held.
	OnTransition func(from, to BreakerState)
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = 5
	}
	if c.OpenTimeout <= 0 {
		c.OpenTimeout = 5 * time.Second
	}
	if c.HalfOpenProbes <= 0 {
		c.HalfOpenProbes = 2
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
	return c
}

// Breaker is a three-state circuit breaker guarding the daemon's pipeline
// backend. Callers pair every Allow() == true with exactly one Success or
// Failure for the guarded attempt.
type Breaker struct {
	cfg BreakerConfig

	mu        sync.Mutex
	state     BreakerState
	failures  int       // consecutive, in Closed
	openedAt  time.Time // entry into Open
	probes    int       // in-flight probes granted in HalfOpen
	successes int       // probe successes in HalfOpen
}

// NewBreaker builds a closed breaker.
func NewBreaker(cfg BreakerConfig) *Breaker {
	return &Breaker{cfg: cfg.withDefaults()}
}

// State returns the current state (after any due open→half-open lapse).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	tr := b.lapseLocked()
	s := b.state
	b.mu.Unlock()
	b.notify(tr)
	return s
}

// Allow reports whether a guarded attempt may proceed. In Closed it always
// grants; in Open it refuses until OpenTimeout has elapsed (which moves the
// breaker to HalfOpen); in HalfOpen it grants up to HalfOpenProbes
// concurrent probes. A granted attempt must be settled with Success or
// Failure.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	tr := b.lapseLocked()
	ok := false
	switch b.state {
	case Closed:
		ok = true
	case HalfOpen:
		if b.probes < b.cfg.HalfOpenProbes {
			b.probes++
			ok = true
		}
	}
	b.mu.Unlock()
	b.notify(tr)
	return ok
}

// Success settles a granted attempt as successful.
func (b *Breaker) Success() {
	b.mu.Lock()
	var tr []transition
	switch b.state {
	case Closed:
		b.failures = 0
	case HalfOpen:
		b.probes--
		b.successes++
		if b.successes >= b.cfg.HalfOpenProbes {
			tr = b.toLocked(Closed)
		}
	}
	b.mu.Unlock()
	b.notify(tr)
}

// Failure settles a granted attempt as failed: it counts toward opening in
// Closed and reopens immediately in HalfOpen.
func (b *Breaker) Failure() {
	b.mu.Lock()
	var tr []transition
	switch b.state {
	case Closed:
		b.failures++
		if b.failures >= b.cfg.FailureThreshold {
			tr = b.toLocked(Open)
		}
	case HalfOpen:
		b.probes--
		tr = b.toLocked(Open)
	}
	b.mu.Unlock()
	b.notify(tr)
}

// Trip forces the breaker open (test and admin hook).
func (b *Breaker) Trip() {
	b.mu.Lock()
	var tr []transition
	if b.state != Open {
		tr = b.toLocked(Open)
	} else {
		b.openedAt = b.cfg.Clock()
	}
	b.mu.Unlock()
	b.notify(tr)
}

// Reset forces the breaker closed (admin hook).
func (b *Breaker) Reset() {
	b.mu.Lock()
	var tr []transition
	if b.state != Closed {
		tr = b.toLocked(Closed)
	}
	b.failures = 0
	b.mu.Unlock()
	b.notify(tr)
}

type transition struct{ from, to BreakerState }

// lapseLocked moves Open → HalfOpen once the open window has elapsed.
func (b *Breaker) lapseLocked() []transition {
	if b.state == Open && b.cfg.Clock().Sub(b.openedAt) >= b.cfg.OpenTimeout {
		return b.toLocked(HalfOpen)
	}
	return nil
}

// toLocked performs a state change; caller holds b.mu. Returns the
// transition for post-unlock notification.
func (b *Breaker) toLocked(to BreakerState) []transition {
	from := b.state
	b.state = to
	switch to {
	case Open:
		b.openedAt = b.cfg.Clock()
		b.probes, b.successes = 0, 0
	case HalfOpen:
		b.probes, b.successes = 0, 0
	case Closed:
		b.failures = 0
		b.probes, b.successes = 0, 0
	}
	return []transition{{from, to}}
}

func (b *Breaker) notify(trs []transition) {
	if b.cfg.OnTransition == nil {
		return
	}
	for _, tr := range trs {
		b.cfg.OnTransition(tr.from, tr.to)
	}
}
