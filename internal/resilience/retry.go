// Package resilience provides the fault-tolerance policies the cqpd daemon
// threads around the CQP pipeline: Retry (capped exponential backoff with
// jitter), Breaker (a three-state circuit breaker), and Walk (a graceful
// degradation ladder).
//
// The degradation ladder is the operational reading of the paper's central
// idea: personalization is optimization under constraints, and the
// algorithm family spans exact search down to the cheap D-HEURDOI
// heuristic. Under faults or load the daemon sheds *quality* — a stale
// answer, a heuristic search, a tighter cost ceiling — before it sheds
// requests.
package resilience

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"time"
)

// RetryPolicy configures Retry. The zero value selects sane serving-path
// defaults: 3 attempts, 5 ms base delay doubling to a 250 ms cap, 50%
// jitter, and every error retryable except context cancellation.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries, including the first
	// (default 3; 1 disables retrying).
	MaxAttempts int
	// BaseDelay is the sleep before the first retry (default 5ms).
	BaseDelay time.Duration
	// MaxDelay caps the exponential growth (default 250ms).
	MaxDelay time.Duration
	// Multiplier grows the delay between attempts (default 2).
	Multiplier float64
	// Jitter randomizes each delay by ±Jitter×delay/2 to decorrelate
	// retry storms; in [0, 1], default 0.5.
	Jitter float64
	// Retryable classifies errors; a false verdict stops the loop
	// immediately. nil means RetryableDefault.
	Retryable func(error) bool
	// OnRetry, when set, observes every scheduled retry (attempt counts
	// from 1) — the daemon's retry counter hangs off this.
	OnRetry func(attempt int, err error)

	// rand returns a uniform [0,1) sample; tests may pin it. nil uses a
	// process-wide seeded source.
	rand func() float64
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 3
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 5 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 250 * time.Millisecond
	}
	if p.Multiplier < 1 {
		p.Multiplier = 2
	}
	if p.Jitter < 0 || p.Jitter > 1 {
		p.Jitter = 0.5
	}
	if p.Retryable == nil {
		p.Retryable = RetryableDefault
	}
	if p.rand == nil {
		p.rand = defaultRand
	}
	return p
}

// RetryableDefault treats everything as transient except context
// cancellation and expiry — retrying a dead deadline only burns a worker.
func RetryableDefault(err error) bool {
	return err != nil &&
		!errors.Is(err, context.Canceled) &&
		!errors.Is(err, context.DeadlineExceeded)
}

var (
	randMu  sync.Mutex
	randSrc = rand.New(rand.NewSource(time.Now().UnixNano()))
)

func defaultRand() float64 {
	randMu.Lock()
	defer randMu.Unlock()
	return randSrc.Float64()
}

// Retry runs fn until it succeeds, fails permanently (per the policy's
// Retryable predicate), exhausts MaxAttempts, or ctx dies. Backoff sleeps
// are context-aware: a cancelled ctx returns immediately with the last
// error joined to the context's.
func Retry(ctx context.Context, pol RetryPolicy, fn func(ctx context.Context) error) error {
	pol = pol.withDefaults()
	delay := pol.BaseDelay
	var err error
	for attempt := 1; ; attempt++ {
		if cerr := ctx.Err(); cerr != nil {
			if err != nil {
				return errors.Join(err, cerr)
			}
			return cerr
		}
		err = fn(ctx)
		if err == nil {
			return nil
		}
		if attempt >= pol.MaxAttempts || !pol.Retryable(err) {
			return err
		}
		if pol.OnRetry != nil {
			pol.OnRetry(attempt, err)
		}
		d := delay
		if pol.Jitter > 0 {
			// Spread across [d(1-j/2), d(1+j/2)].
			d = time.Duration(float64(d) * (1 + pol.Jitter*(pol.rand()-0.5)))
		}
		t := time.NewTimer(d)
		select {
		case <-ctx.Done():
			t.Stop()
			return errors.Join(err, ctx.Err())
		case <-t.C:
		}
		delay = time.Duration(float64(delay) * pol.Multiplier)
		if delay > pol.MaxDelay {
			delay = pol.MaxDelay
		}
	}
}
