// Package workload generates the synthetic evaluation setting that
// substitutes for the paper's IMDB data and the profile/query workloads of
// [12] (Section 7): a movie database with Zipf-skewed value distributions,
// user profiles with configurable doi ranges and deviations, and random
// conjunctive queries. Everything is seeded and deterministic.
package workload

import (
	"fmt"
	"math/rand"

	"cqp/internal/catalog"
	"cqp/internal/estimate"
	"cqp/internal/query"
	"cqp/internal/schema"
	"cqp/internal/storage"
	"cqp/internal/value"
)

// DBConfig sizes the synthetic movie database.
type DBConfig struct {
	Movies    int // default 4000
	Directors int // default 400
	Actors    int // default 2000
	// GenresPerMovie is the mean number of genre rows per movie (default 2).
	GenresPerMovie int
	// CastPerMovie is the mean number of cast rows per movie (default 4).
	CastPerMovie int
	BlockSize    int // default storage.DefaultBlockSize
	Seed         int64
}

func (c *DBConfig) defaults() {
	if c.Movies <= 0 {
		c.Movies = 4000
	}
	if c.Directors <= 0 {
		c.Directors = 400
	}
	if c.Actors <= 0 {
		c.Actors = 2000
	}
	if c.GenresPerMovie <= 0 {
		c.GenresPerMovie = 2
	}
	if c.CastPerMovie <= 0 {
		c.CastPerMovie = 4
	}
	if c.BlockSize <= 0 {
		c.BlockSize = storage.DefaultBlockSize
	}
}

// NumGenres is the size of the synthetic genre domain; profiles draw genre
// preferences from it, so it bounds per-relation selection variety.
const NumGenres = 60

// Schema builds the extended movie schema: the paper's three relations plus
// ACTOR and CAST for longer preference paths.
func Schema() *schema.Schema {
	s := schema.New()
	s.MustAddRelation("MOVIE", "mid",
		schema.Column{Name: "mid", Type: value.KindInt},
		schema.Column{Name: "title", Type: value.KindString},
		schema.Column{Name: "year", Type: value.KindInt},
		schema.Column{Name: "duration", Type: value.KindInt},
		schema.Column{Name: "did", Type: value.KindInt})
	s.MustAddRelation("DIRECTOR", "did",
		schema.Column{Name: "did", Type: value.KindInt},
		schema.Column{Name: "name", Type: value.KindString})
	s.MustAddRelation("GENRE", "",
		schema.Column{Name: "mid", Type: value.KindInt},
		schema.Column{Name: "genre", Type: value.KindString})
	s.MustAddRelation("ACTOR", "aid",
		schema.Column{Name: "aid", Type: value.KindInt},
		schema.Column{Name: "name", Type: value.KindString})
	s.MustAddRelation("CAST", "",
		schema.Column{Name: "mid", Type: value.KindInt},
		schema.Column{Name: "aid", Type: value.KindInt},
		schema.Column{Name: "role", Type: value.KindString})
	s.MustAddJoin("MOVIE.did", "DIRECTOR.did")
	s.MustAddJoin("MOVIE.mid", "GENRE.mid")
	s.MustAddJoin("MOVIE.mid", "CAST.mid")
	s.MustAddJoin("CAST.aid", "ACTOR.aid")
	return s
}

// GenerateDB populates an in-memory database under the config. Genre and
// director popularity are Zipf-skewed, mirroring real catalog data.
func GenerateDB(cfg DBConfig) *storage.DB {
	cfg.defaults()
	db := storage.NewDB(Schema(), cfg.BlockSize)
	GenerateInto(db, cfg)
	return db
}

// GenerateInto fills an existing (empty) database with the synthetic
// workload. The database may sit on any storage backend — the persistent
// block store uses this to materialize datasets directly on disk — but its
// schema must be Schema(). Generation is deterministic in cfg.Seed
// regardless of backend.
func GenerateInto(db *storage.DB, cfg DBConfig) {
	cfg.defaults()
	rng := rand.New(rand.NewSource(cfg.Seed))

	directors := db.MustTable("DIRECTOR")
	for d := 1; d <= cfg.Directors; d++ {
		directors.MustInsert(value.Int(int64(d)), value.Str(fmt.Sprintf("Director %04d", d)))
	}
	actors := db.MustTable("ACTOR")
	for a := 1; a <= cfg.Actors; a++ {
		actors.MustInsert(value.Int(int64(a)), value.Str(fmt.Sprintf("Actor %05d", a)))
	}

	dirZipf := rand.NewZipf(rng, 1.3, 4, uint64(cfg.Directors-1))
	genreZipf := rand.NewZipf(rng, 1.2, 3, uint64(NumGenres-1))
	actorZipf := rand.NewZipf(rng, 1.2, 8, uint64(cfg.Actors-1))

	movies := db.MustTable("MOVIE")
	genres := db.MustTable("GENRE")
	casts := db.MustTable("CAST")
	roles := []string{"lead", "support", "cameo"}
	for m := 1; m <= cfg.Movies; m++ {
		did := int64(dirZipf.Uint64()) + 1
		year := int64(1920 + rng.Intn(90))
		duration := int64(60 + rng.Intn(120))
		movies.MustInsert(
			value.Int(int64(m)),
			value.Str(fmt.Sprintf("Movie %06d", m)),
			value.Int(year),
			value.Int(duration),
			value.Int(did))
		ng := 1 + rng.Intn(2*cfg.GenresPerMovie-1)
		seen := map[uint64]bool{}
		for g := 0; g < ng; g++ {
			gid := genreZipf.Uint64()
			if seen[gid] {
				continue
			}
			seen[gid] = true
			genres.MustInsert(value.Int(int64(m)), value.Str(GenreName(int(gid))))
		}
		nc := 1 + rng.Intn(2*cfg.CastPerMovie-1)
		seenA := map[uint64]bool{}
		for cI := 0; cI < nc; cI++ {
			aid := actorZipf.Uint64() + 1
			if seenA[aid] {
				continue
			}
			seenA[aid] = true
			casts.MustInsert(value.Int(int64(m)), value.Int(int64(aid)),
				value.Str(roles[rng.Intn(len(roles))]))
		}
	}
}

// GenreName names the synthetic genre with the given index.
func GenreName(i int) string { return fmt.Sprintf("genre%02d", i) }

// Env bundles a generated database with its statistics and estimator — the
// substrate every experiment runs against.
type Env struct {
	DB  *storage.DB
	Cat *catalog.Catalog
	Est *estimate.Estimator
}

// NewEnv generates a database and builds its catalog and estimator.
// bMillis ≤ 0 selects the paper's 1 ms per block.
func NewEnv(cfg DBConfig, bMillis float64) *Env {
	db := GenerateDB(cfg)
	// Generated databases are in-memory; their maintenance scans cannot
	// fail.
	cat, err := catalog.Build(db)
	if err != nil {
		panic(err)
	}
	return &Env{DB: db, Cat: cat, Est: estimate.New(cat, bMillis)}
}

// movieAttr is shorthand for attribute references used by generators.
func movieAttr(attr string) schema.AttrRef {
	return schema.AttrRef{Relation: "MOVIE", Attr: attr}
}

// Queries generates n random conjunctive queries anchored at MOVIE (every
// profile preference is reachable from MOVIE, matching the paper's setting
// where preferences are "syntactically related" to the query).
func Queries(n int, seed int64) []*query.Query {
	rng := rand.New(rand.NewSource(seed))
	out := make([]*query.Query, 0, n)
	for i := 0; i < n; i++ {
		q := &query.Query{From: []string{"MOVIE"}, Project: []schema.AttrRef{movieAttr("title")}}
		// Occasionally join in DIRECTOR or GENRE directly.
		switch rng.Intn(4) {
		case 0:
			q.AddJoin(query.Join{Left: movieAttr("did"), Right: schema.AttrRef{Relation: "DIRECTOR", Attr: "did"}})
		case 1:
			q.AddJoin(query.Join{Left: movieAttr("mid"), Right: schema.AttrRef{Relation: "GENRE", Attr: "mid"}})
		}
		// 0–2 base selections on year/duration.
		if rng.Intn(2) == 0 {
			q.AddSelection(query.Selection{Attr: movieAttr("year"), Op: query.OpGe,
				Value: value.Int(int64(1920 + rng.Intn(80)))})
		}
		if rng.Intn(3) == 0 {
			q.AddSelection(query.Selection{Attr: movieAttr("duration"), Op: query.OpLe,
				Value: value.Int(int64(90 + rng.Intn(90)))})
		}
		out = append(out, q)
	}
	return out
}
