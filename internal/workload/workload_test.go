package workload

import (
	"testing"

	"cqp/internal/core"
	"cqp/internal/prefspace"
	"cqp/internal/storage"
)

func smallCfg() DBConfig {
	return DBConfig{Movies: 300, Directors: 40, Actors: 150, Seed: 1, BlockSize: 2048}
}

func TestGenerateDBShape(t *testing.T) {
	db := GenerateDB(smallCfg())
	if got := db.MustTable("MOVIE").RowCount(); got != 300 {
		t.Errorf("movies = %d", got)
	}
	if got := db.MustTable("DIRECTOR").RowCount(); got != 40 {
		t.Errorf("directors = %d", got)
	}
	g := db.MustTable("GENRE").RowCount()
	if g < 300 || g > 300*4 {
		t.Errorf("genre rows = %d, expected within [1,4] per movie", g)
	}
	c := db.MustTable("CAST").RowCount()
	if c < 300 {
		t.Errorf("cast rows = %d", c)
	}
	if db.TotalBlocks() == 0 {
		t.Error("no blocks")
	}
	if err := db.Schema().Validate(); err != nil {
		t.Error(err)
	}
}

func TestGenerateDBDeterministic(t *testing.T) {
	a := GenerateDB(smallCfg())
	b := GenerateDB(smallCfg())
	if a.MustTable("GENRE").RowCount() != b.MustTable("GENRE").RowCount() {
		t.Error("same seed must generate identical databases")
	}
	cfg := smallCfg()
	cfg.Seed = 2
	c := GenerateDB(cfg)
	if a.MustTable("GENRE").RowCount() == c.MustTable("GENRE").RowCount() &&
		a.MustTable("CAST").RowCount() == c.MustTable("CAST").RowCount() {
		t.Error("different seeds should differ (probabilistically)")
	}
}

func TestZipfSkew(t *testing.T) {
	db := GenerateDB(smallCfg())
	// The most popular director should direct far more than the average.
	counts := map[int64]int{}
	mrows, err := storage.AllRows(db.MustTable("MOVIE"))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range mrows {
		counts[r[4].AsInt()]++
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if max < 3*300/40 {
		t.Errorf("top director has %d movies; expected strong skew over mean %d", max, 300/40)
	}
}

func TestGenerateProfile(t *testing.T) {
	p := GenerateProfile(ProfileConfig{Seed: 3})
	if err := p.Validate(Schema()); err != nil {
		t.Fatalf("profile invalid: %v", err)
	}
	// 4 join prefs + default 60 selections.
	if p.Len() != 64 {
		t.Errorf("profile has %d prefs", p.Len())
	}
	if len(p.JoinsFrom("MOVIE")) != 3 {
		t.Errorf("MOVIE join prefs = %d", len(p.JoinsFrom("MOVIE")))
	}
	ps := Profiles(3, ProfileConfig{Seed: 3})
	if len(ps) != 3 || ps[0].String() == ps[1].String() {
		t.Error("Profiles must differ across seeds")
	}
}

func TestQueriesValid(t *testing.T) {
	s := Schema()
	for i, q := range Queries(25, 5) {
		if err := q.Validate(s); err != nil {
			t.Errorf("query %d invalid: %v (%s)", i, err, q.SQL())
		}
		if !q.Connected() {
			t.Errorf("query %d disconnected: %s", i, q.SQL())
		}
		if !q.HasRelation("MOVIE") {
			t.Errorf("query %d must anchor at MOVIE", i)
		}
	}
}

// TestEndToEndInstances: profiles must be rich enough to extract K = 40
// preferences for typical queries, and the resulting instances must be
// valid and solvable.
func TestEndToEndInstances(t *testing.T) {
	env := NewEnv(smallCfg(), 1)
	profile := GenerateProfile(ProfileConfig{Seed: 11})
	for i, q := range Queries(5, 7) {
		sp, err := prefspace.Build(q, profile, env.Est, prefspace.Options{MaxK: 40})
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		if sp.K < 40 {
			t.Errorf("query %d: only %d preferences extracted, want 40", i, sp.K)
		}
		if err := sp.Validate(); err != nil {
			t.Errorf("query %d: %v", i, err)
		}
		in := core.FromSpace(sp)
		if err := in.Validate(); err != nil {
			t.Errorf("query %d instance: %v", i, err)
		}
		in.StateBudget = 200000 // keep the K=40 search bounded in tests
		cmax := in.SupremeCost() * 0.4
		sol := core.CMaxBounds(in, cmax)
		if !sol.Feasible || sol.Cost > cmax+1e-9 {
			t.Errorf("query %d: solve failed: %+v", i, sol)
		}
	}
}
