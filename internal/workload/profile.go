package workload

import (
	"fmt"
	"math/rand"

	"cqp/internal/prefs"
	"cqp/internal/query"
	"cqp/internal/schema"
	"cqp/internal/value"
)

// ProfileConfig shapes generated user profiles, mirroring the evaluation
// setting of [12] that the paper adopts: a broad range of doi values with
// configurable deviation.
type ProfileConfig struct {
	// SelectionPrefs is the number of atomic selection preferences per
	// reachable relation family (default 60, enough to extract K = 40
	// implicit preferences for any query).
	SelectionPrefs int
	// DoiMean and DoiDev shape the doi distribution: dois are drawn
	// uniformly from [DoiMean−DoiDev, DoiMean+DoiDev] clipped to (0, 1).
	// Defaults: mean 0.5, deviation 0.45 (the "broad range").
	DoiMean float64
	DoiDev  float64
	// JoinDoiMean shapes join-preference dois (default 0.9 — join
	// preferences express structural relevance and run high).
	JoinDoiMean float64
	Seed        int64
}

func (c *ProfileConfig) defaults() {
	if c.SelectionPrefs <= 0 {
		c.SelectionPrefs = 60
	}
	if c.DoiMean <= 0 {
		c.DoiMean = 0.5
	}
	if c.DoiDev <= 0 {
		c.DoiDev = 0.45
	}
	if c.JoinDoiMean <= 0 {
		c.JoinDoiMean = 0.9
	}
}

// GenerateProfile builds one synthetic profile over the workload schema:
// join preferences covering the personalization-graph edges out of MOVIE
// and CAST, plus selection preferences on genres, years, durations,
// director names and actor names.
func GenerateProfile(cfg ProfileConfig) *prefs.Profile {
	cfg.defaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	p := prefs.NewProfile()

	doi := func(mean float64) float64 {
		d := mean + (rng.Float64()*2-1)*cfg.DoiDev
		if d < 0.01 {
			d = 0.01
		}
		if d > 0.99 {
			d = 0.99
		}
		// Three decimals: keeps profile files readable and round-trippable.
		return float64(int(d*1000)) / 1000
	}

	// A user's range preferences are drawn from one coherent era and one
	// duration band so that conjunctions of their own preferences are
	// satisfiable (a profile praising year ≥ 1980 and year ≤ 1950 at once
	// would make every all-match personalization empty).
	eraLo := 1920 + rng.Intn(50)
	eraHi := eraLo + 25 + rng.Intn(90-25-(eraLo-1920))
	durLo := 60 + rng.Intn(60)
	durHi := durLo + 30 + rng.Intn(120-30-(durLo-60))
	must := func(err error) {
		if err != nil {
			panic(err) // generator bug: conditions are drawn from the schema
		}
	}

	// Join preferences: the directed edges preferences travel along.
	must(p.AddJoin(schema.AttrRef{Relation: "MOVIE", Attr: "did"},
		schema.AttrRef{Relation: "DIRECTOR", Attr: "did"}, doi(cfg.JoinDoiMean)))
	must(p.AddJoin(schema.AttrRef{Relation: "MOVIE", Attr: "mid"},
		schema.AttrRef{Relation: "GENRE", Attr: "mid"}, doi(cfg.JoinDoiMean)))
	must(p.AddJoin(schema.AttrRef{Relation: "MOVIE", Attr: "mid"},
		schema.AttrRef{Relation: "CAST", Attr: "mid"}, doi(cfg.JoinDoiMean)))
	must(p.AddJoin(schema.AttrRef{Relation: "CAST", Attr: "aid"},
		schema.AttrRef{Relation: "ACTOR", Attr: "aid"}, doi(cfg.JoinDoiMean)))

	// Selection preferences, spread across the reachable relations.
	type sel struct {
		attr schema.AttrRef
		op   query.Op
		val  value.Value
	}
	used := map[string]bool{}
	fresh := func(s sel) bool {
		key := s.attr.String() + s.op.String() + s.val.SQL()
		if used[key] {
			return false
		}
		used[key] = true
		return true
	}
	for made := 0; made < cfg.SelectionPrefs; {
		var s sel
		switch rng.Intn(5) {
		case 0:
			s = sel{schema.AttrRef{Relation: "GENRE", Attr: "genre"}, query.OpEq,
				value.Str(GenreName(rng.Intn(NumGenres)))}
		case 1:
			// Year bounds stay inside the profile's era.
			if rng.Intn(2) == 0 {
				s = sel{schema.AttrRef{Relation: "MOVIE", Attr: "year"}, query.OpGe,
					value.Int(int64(eraLo - rng.Intn(8)))}
			} else {
				s = sel{schema.AttrRef{Relation: "MOVIE", Attr: "year"}, query.OpLe,
					value.Int(int64(eraHi + rng.Intn(8)))}
			}
		case 2:
			// Duration bounds stay inside the profile's band.
			if rng.Intn(2) == 0 {
				s = sel{schema.AttrRef{Relation: "MOVIE", Attr: "duration"}, query.OpGe,
					value.Int(int64(durLo - rng.Intn(10)))}
			} else {
				s = sel{schema.AttrRef{Relation: "MOVIE", Attr: "duration"}, query.OpLe,
					value.Int(int64(durHi + rng.Intn(10)))}
			}
		case 3:
			s = sel{schema.AttrRef{Relation: "DIRECTOR", Attr: "name"}, query.OpEq,
				value.Str(fmt.Sprintf("Director %04d", 1+rng.Intn(400)))}
		default:
			s = sel{schema.AttrRef{Relation: "ACTOR", Attr: "name"}, query.OpEq,
				value.Str(fmt.Sprintf("Actor %05d", 1+rng.Intn(2000)))}
		}
		if !fresh(s) {
			continue
		}
		must(p.AddSelection(s.attr, s.op, s.val, doi(cfg.DoiMean)))
		made++
	}
	return p
}

// Profiles generates n profiles with consecutive seeds.
func Profiles(n int, cfg ProfileConfig) []*prefs.Profile {
	out := make([]*prefs.Profile, n)
	for i := range out {
		c := cfg
		c.Seed = cfg.Seed + int64(i)*7919
		out[i] = GenerateProfile(c)
	}
	return out
}
