package prefspace

import (
	"math"
	"testing"

	"cqp/internal/catalog"
	"cqp/internal/estimate"
	"cqp/internal/prefs"
	"cqp/internal/query"
	"cqp/internal/schema"
	"cqp/internal/sqlparse"
	"cqp/internal/storage"
	"cqp/internal/testutil"
	"cqp/internal/value"
)

// figure1Setup builds the paper's running example: the movie DB, the
// Figure 1 profile, and the query "select title from MOVIE".
func figure1Setup(t *testing.T) (*estimate.Estimator, *prefs.Profile, *Space) {
	t.Helper()
	db := testutil.MovieDB(256) // small blocks so every table has >0 blocks
	est := estimate.New(catalog.MustBuild(db), 1)
	profile, err := prefs.ParseProfile(`
doi(GENRE.genre = 'musical') = 0.5
doi(MOVIE.mid = GENRE.mid) = 0.9
doi(MOVIE.did = DIRECTOR.did) = 1.0
doi(DIRECTOR.name = 'W. Allen') = 0.8
`)
	if err != nil {
		t.Fatal(err)
	}
	q := sqlparse.MustParse(db.Schema(), "SELECT title FROM MOVIE")
	sp, err := Build(q, profile, est, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return est, profile, sp
}

func TestFigure1Extraction(t *testing.T) {
	_, _, sp := figure1Setup(t)
	// Expected implicit preferences anchored at MOVIE:
	//   p3∧p4: MOVIE⋈DIRECTOR, name='W. Allen'  doi = 1.0×0.8 = 0.8
	//   p2∧p1: MOVIE⋈GENRE, genre='musical'     doi = 0.9×0.5 = 0.45
	if sp.K != 2 {
		t.Fatalf("K = %d, want 2; P = %v", sp.K, sp.P)
	}
	if math.Abs(sp.P[0].Doi-0.8) > 1e-12 {
		t.Errorf("P[0].Doi = %g, want 0.8 (best first)", sp.P[0].Doi)
	}
	if math.Abs(sp.P[1].Doi-0.45) > 1e-12 {
		t.Errorf("P[1].Doi = %g, want 0.45", sp.P[1].Doi)
	}
	if sp.P[0].Imp.Sel.Attr.Relation != "DIRECTOR" {
		t.Errorf("P[0] = %v", sp.P[0].Imp)
	}
	if err := sp.Validate(); err != nil {
		t.Error(err)
	}
}

func TestVectorsTable2(t *testing.T) {
	// Table 2 of the paper: P = {p1,p2,p3} with
	//   doi  = 0.5, 0.8, 0.7
	//   cost = 10, 5, 12
	//   size = 3, 2, 10
	// gives D = {2,3,1}, C = {3,1,2}, S = {2,1,3} (1-based).
	// Our vectors are 0-based: D = {1,2,0}, C = {2,0,1}, S = {1,0,2}.
	// D is defined over P sorted by doi, so P here is given doi-sorted:
	// p2(0.8), p3(0.7), p1(0.5) with matching cost/size.
	sp := &Space{K: 3, P: []Pref{
		{Doi: 0.8, Cost: 5, Size: 2},
		{Doi: 0.7, Cost: 12, Size: 10},
		{Doi: 0.5, Cost: 10, Size: 3},
	}}
	sp.buildVectors(Options{})
	wantD := []int{0, 1, 2}
	wantC := []int{1, 2, 0} // costs 12, 10, 5 decreasing
	wantS := []int{0, 2, 1} // sizes 2, 3, 10 increasing
	eq := func(a, b []int) bool {
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if !eq(sp.D, wantD) || !eq(sp.C, wantC) || !eq(sp.S, wantS) {
		t.Errorf("D=%v C=%v S=%v", sp.D, sp.C, sp.S)
	}
	if err := sp.Validate(); err != nil {
		t.Error(err)
	}
}

func TestCostMaxPruning(t *testing.T) {
	db := testutil.MovieDB(256)
	est := estimate.New(catalog.MustBuild(db), 1)
	profile, _ := prefs.ParseProfile(`
doi(MOVIE.year >= 1990) = 0.9
doi(MOVIE.mid = GENRE.mid) = 0.8
doi(GENRE.genre = 'comedy') = 0.7
`)
	q := sqlparse.MustParse(db.Schema(), "SELECT title FROM MOVIE")
	// Base query cost: blocks(MOVIE). The GENRE path costs more. Pick a
	// cmax between the two so only the atomic year preference survives.
	base := est.QueryCost(q)
	sp, err := Build(q, profile, est, Options{CostMax: base + 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if sp.K != 1 || sp.P[0].Imp.Sel.Attr.Attr != "year" {
		t.Errorf("pruning failed: %v", sp.P)
	}
}

func TestMaxKCap(t *testing.T) {
	_, profile, _ := figure1Setup(t)
	db := testutil.MovieDB(256)
	est := estimate.New(catalog.MustBuild(db), 1)
	q := sqlparse.MustParse(db.Schema(), "SELECT title FROM MOVIE")
	sp, err := Build(q, profile, est, Options{MaxK: 1})
	if err != nil {
		t.Fatal(err)
	}
	if sp.K != 1 {
		t.Fatalf("K = %d, want 1", sp.K)
	}
	// The cap keeps the best preference.
	if math.Abs(sp.P[0].Doi-0.8) > 1e-12 {
		t.Errorf("kept doi %g, want the best (0.8)", sp.P[0].Doi)
	}
}

func TestSkipVectors(t *testing.T) {
	db := testutil.MovieDB(256)
	est := estimate.New(catalog.MustBuild(db), 1)
	profile, _ := prefs.ParseProfile(`doi(MOVIE.year >= 1990) = 0.9`)
	q := sqlparse.MustParse(db.Schema(), "SELECT title FROM MOVIE")
	sp, err := Build(q, profile, est, Options{SkipCostVector: true, SkipSizeVector: true})
	if err != nil {
		t.Fatal(err)
	}
	if sp.C != nil || sp.S != nil {
		t.Error("vectors should be skipped")
	}
	if len(sp.D) != 1 {
		t.Error("D always built")
	}
	if err := sp.Validate(); err != nil {
		t.Error(err)
	}
}

func TestAccessors(t *testing.T) {
	_, _, sp := figure1Setup(t)
	if len(sp.Dois()) != sp.K || len(sp.Costs()) != sp.K || len(sp.Shrinks()) != sp.K {
		t.Error("accessor lengths")
	}
	if sp.Dois()[0] != sp.P[0].Doi {
		t.Error("Dois content")
	}
	sup := sp.SupremeCost()
	sum := sp.P[0].Cost + sp.P[1].Cost
	if math.Abs(sup-sum) > 1e-9 {
		t.Errorf("SupremeCost = %g, want %g", sup, sum)
	}
	empty := &Space{BaseCost: 7}
	if empty.SupremeCost() != 7 {
		t.Error("empty space supreme cost is base cost")
	}
}

func TestIrrelevantPreferencesIgnored(t *testing.T) {
	db := testutil.MovieDB(256)
	est := estimate.New(catalog.MustBuild(db), 1)
	// Preferences anchored at DIRECTOR are unrelated to a GENRE-only query.
	profile, _ := prefs.ParseProfile(`
doi(DIRECTOR.name = 'W. Allen') = 0.8
doi(GENRE.genre = 'comedy') = 0.3
`)
	q := sqlparse.MustParse(db.Schema(), "SELECT genre FROM GENRE")
	sp, err := Build(q, profile, est, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sp.K != 1 || sp.P[0].Imp.Sel.Attr.Relation != "GENRE" {
		t.Errorf("P = %v", sp.P)
	}
}

func TestAcyclicTraversalTerminates(t *testing.T) {
	db := testutil.MovieDB(256)
	est := estimate.New(catalog.MustBuild(db), 1)
	// Bidirectional join preferences form a cycle in the personalization
	// graph; acyclicity of paths must keep the traversal finite.
	profile, _ := prefs.ParseProfile(`
doi(MOVIE.mid = GENRE.mid) = 0.9
doi(GENRE.mid = MOVIE.mid) = 0.9
doi(MOVIE.year >= 1980) = 0.6
doi(GENRE.genre = 'comedy') = 0.5
`)
	q := sqlparse.MustParse(db.Schema(), "SELECT title FROM MOVIE")
	sp, err := Build(q, profile, est, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Expect: year (atomic), MOVIE->GENRE genre, and GENRE->MOVIE->... no:
	// from MOVIE, paths: [M->G] + genre; [M->G, G->M] revisits MOVIE, pruned.
	// Also the direct selection year, and via... exactly 2 + the year pref.
	if sp.K < 2 || sp.K > 3 {
		t.Errorf("K = %d, P = %v", sp.K, sp.P)
	}
	if err := sp.Validate(); err != nil {
		t.Error(err)
	}
}

func TestDoiMonotoneAlongPaths(t *testing.T) {
	_, profile, sp := figure1Setup(t)
	// Formula 2: the composed doi of an implicit preference never exceeds
	// the doi of its terminal atomic selection preference.
	termDoi := make(map[string]float64)
	for _, a := range profile.Atoms() {
		if a.IsSelection() {
			termDoi[a.Sel.String()] = a.Doi
		}
	}
	for _, p := range sp.P {
		want, ok := termDoi[p.Imp.Sel.String()]
		if !ok {
			t.Fatalf("unknown terminal selection %s", p.Imp.Sel)
		}
		if p.Doi > want+1e-12 {
			t.Errorf("implicit doi %g exceeds terminal atomic doi %g for %s",
				p.Doi, want, p.Imp)
		}
	}
}

func TestEmptyQueryFails(t *testing.T) {
	db := testutil.MovieDB(256)
	est := estimate.New(catalog.MustBuild(db), 1)
	profile := prefs.NewProfile()
	if _, err := Build(&query.Query{}, profile, est, Options{}); err == nil {
		t.Error("empty query must fail")
	}
}

func TestValidateCatchesCorruptSpaces(t *testing.T) {
	_, _, sp := figure1Setup(t)
	// Corrupt K.
	bad := *sp
	bad.K = 5
	if bad.Validate() == nil {
		t.Error("K mismatch must fail")
	}
	// Corrupt doi range.
	bad2 := *sp
	bad2.P = append([]Pref(nil), sp.P...)
	bad2.P[0].Doi = 2
	if bad2.Validate() == nil {
		t.Error("doi out of range must fail")
	}
	// Break doi sort order.
	bad3 := *sp
	bad3.P = []Pref{sp.P[1], sp.P[0]}
	if bad3.Validate() == nil {
		t.Error("unsorted P must fail")
	}
	// Break the C permutation.
	bad4 := *sp
	bad4.C = []int{0, 0}
	if bad4.Validate() == nil {
		t.Error("non-permutation C must fail")
	}
	// Break cost ordering within C.
	if sp.P[sp.C[0]].Cost != sp.P[sp.C[1]].Cost {
		bad5 := *sp
		bad5.C = []int{sp.C[1], sp.C[0]}
		if bad5.Validate() == nil {
			t.Error("mis-ordered C must fail")
		}
	}
	// Negative cost.
	bad6 := *sp
	bad6.P = append([]Pref(nil), sp.P...)
	bad6.P[0].Cost = -1
	if bad6.Validate() == nil {
		t.Error("negative cost must fail")
	}
	// Shrink out of range.
	bad7 := *sp
	bad7.P = append([]Pref(nil), sp.P...)
	bad7.P[0].Shrink = 1.5
	if bad7.Validate() == nil {
		t.Error("shrink out of range must fail")
	}
	// Wrong vector length.
	bad8 := *sp
	bad8.S = []int{0}
	if bad8.Validate() == nil {
		t.Error("short S must fail")
	}
}

func TestLongerPathsViaCast(t *testing.T) {
	// A two-hop path MOVIE -> CAST -> ACTOR exercises path extension and
	// the MaxPathLen bound.
	db := testutil.MovieDB(256)
	s := db.Schema()
	s.MustAddRelation("ACTOR", "aid",
		schema.Column{Name: "aid", Type: value.KindInt},
		schema.Column{Name: "name", Type: value.KindString})
	s.MustAddRelation("CAST", "",
		schema.Column{Name: "mid", Type: value.KindInt},
		schema.Column{Name: "aid", Type: value.KindInt})
	db2 := storage.NewDB(s, 256) // fresh db over the extended schema
	db2.MustTable("ACTOR").MustInsert(value.Int(1), value.Str("A. Actor"))
	db2.MustTable("CAST").MustInsert(value.Int(1), value.Int(1))
	db2.MustTable("MOVIE").MustInsert(value.Int(1), value.Str("M"), value.Int(2000), value.Int(90), value.Int(1))
	est := estimate.New(catalog.MustBuild(db2), 1)
	profile, err := prefs.ParseProfile(`
doi(MOVIE.mid = CAST.mid) = 0.9
doi(CAST.aid = ACTOR.aid) = 0.9
doi(ACTOR.name = 'A. Actor') = 0.8
`)
	if err != nil {
		t.Fatal(err)
	}
	q := sqlparse.MustParse(s, "SELECT title FROM MOVIE")
	sp, err := Build(q, profile, est, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sp.K != 1 || len(sp.P[0].Imp.Path) != 2 {
		t.Fatalf("two-hop preference not extracted: %+v", sp.P)
	}
	if math.Abs(sp.P[0].Doi-0.9*0.9*0.8) > 1e-12 {
		t.Errorf("composed doi = %g", sp.P[0].Doi)
	}
	// MaxPathLen = 1 cuts the two-hop path.
	sp2, err := Build(q, profile, est, Options{MaxPathLen: 1})
	if err != nil {
		t.Fatal(err)
	}
	if sp2.K != 0 {
		t.Errorf("MaxPathLen=1 should prune the two-hop preference, got %v", sp2.P)
	}
}
