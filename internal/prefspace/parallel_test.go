package prefspace

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"testing"

	"cqp/internal/workload"
)

// parallelSetup builds a workload-scale environment: a profile rich enough
// that extraction at K=20 pops through join paths and dozens of candidate
// selections, so the parallel build has real work to distribute.
func parallelSetup() (*workload.Env, *workload.Env) {
	env := workload.NewEnv(workload.DBConfig{Movies: 2000, Seed: 9}, 1)
	return env, env
}

// TestParallelBuildMatchesSequential is the tentpole invariant: at every
// parallelism setting the extracted space is byte-identical to the
// sequential build — same preferences in the same order, same vectors.
func TestParallelBuildMatchesSequential(t *testing.T) {
	env, _ := parallelSetup()
	profile := workload.GenerateProfile(workload.ProfileConfig{Seed: 11})
	queries := workload.Queries(4, 7)

	cases := []Options{
		{MaxK: 20},
		{MaxK: 20, CostMax: 800},
		{MaxK: 40, MaxPathLen: 3},
		{}, // uncapped: one big batch
	}
	for ci, base := range cases {
		for qi, q := range queries {
			seq := base
			seq.Parallelism = 1
			want, err := Build(q, profile, env.Est, seq)
			if err != nil {
				t.Fatalf("case %d query %d sequential: %v", ci, qi, err)
			}
			for _, par := range []int{0, 2, 8} {
				opt := base
				opt.Parallelism = par
				got, err := Build(q, profile, env.Est, opt)
				if err != nil {
					t.Fatalf("case %d query %d parallelism %d: %v", ci, qi, par, err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Errorf("case %d query %d: parallelism %d diverges from sequential\n got K=%d P=%v\nwant K=%d P=%v",
						ci, qi, par, got.K, got.P, want.K, want.P)
				}
			}
		}
	}
}

// TestBuildContextCancelled: a dead context aborts extraction with the
// context's error at every parallelism setting.
func TestBuildContextCancelled(t *testing.T) {
	env, _ := parallelSetup()
	profile := workload.GenerateProfile(workload.ProfileConfig{Seed: 11})
	q := workload.Queries(1, 7)[0]
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, par := range []int{1, 0} {
		_, err := BuildContext(ctx, q, profile, env.Est, Options{MaxK: 20, Parallelism: par})
		if !errors.Is(err, context.Canceled) {
			t.Errorf("parallelism %d: err = %v, want context.Canceled", par, err)
		}
	}
}

// BenchmarkBuildParallel pins the acceptance criterion: at K=20 the
// parallel build must beat the sequential one by ≥1.5× on a 4-core runner
// (compare the parallelism=1 and parallelism=0 timings).
func BenchmarkBuildParallel(b *testing.B) {
	env, _ := parallelSetup()
	profile := workload.GenerateProfile(workload.ProfileConfig{Seed: 11})
	q := workload.Queries(1, 7)[0]
	for _, par := range []int{1, 2, 4, 0} {
		b.Run(fmt.Sprintf("K=20/parallelism=%d", par), func(b *testing.B) {
			opt := Options{MaxK: 20, Parallelism: par}
			for i := 0; i < b.N; i++ {
				if _, err := Build(q, profile, env.Est, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
