// Package prefspace implements the paper's Preference Space module
// (Section 4.4, Figure 3): given a query Q and a user profile U, it
// extracts the set P of atomic and implicit selection preferences related
// to Q in decreasing order of doi, and builds the pointer vectors
//
//	D — preference order by decreasing doi (identity, by construction),
//	C — order by decreasing cost(Q ∧ p),
//	S — order by increasing size(Q ∧ p),
//
// which the CQP state-space search algorithms operate on.
//
// The traversal is best-first over the personalization graph: a priority
// queue of candidate paths ordered by doi. Because f⊗ is non-increasing in
// path length (Formula 2), candidates pop in globally non-increasing doi
// order, so P is produced already sorted. One divergence from the published
// pseudocode: Figure 3's step 3.3 exits the whole loop when the head
// violates the CQP constraints; since cost is not aligned with the doi
// ordering, we skip the candidate and continue instead (pruning remains
// sound — cost is monotone under path extension, so a too-expensive path
// can never become feasible again).
package prefspace

import (
	"container/heap"
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"cqp/internal/estimate"
	"cqp/internal/prefs"
	"cqp/internal/query"
)

// Pref is one element of the preference set P: an implicit (or atomic)
// selection preference with its estimated parameters relative to Q.
type Pref struct {
	Imp prefs.Implicit
	// Doi is the composed degree of interest (copied from Imp for locality).
	Doi float64
	// Cost is cost(Q ∧ p) in milliseconds (Formula 11): the cost of the
	// sub-query that integrates just this preference into Q.
	Cost float64
	// Shrink is the multiplicative size factor of conjoining p (≤ 1).
	Shrink float64
	// Size is size(Q ∧ p) = size(Q) × Shrink, in estimated rows.
	Size float64
}

// Space is the output of the Preference Space module.
type Space struct {
	// Query is the original query Q.
	Query *query.Query
	// BaseCost and BaseSize are cost(Q) and size(Q) estimates.
	BaseCost float64
	BaseSize float64
	// P holds the preferences in decreasing doi order.
	P []Pref
	// D, C, S are 0-based pointer vectors into P: D by decreasing doi
	// (identity by construction), C by decreasing Cost, S by increasing
	// Size. (The paper writes them 1-based.)
	D, C, S []int
	// K is len(P).
	K int
}

// Options tunes preference extraction.
type Options struct {
	// MaxK caps the number of preferences extracted (the paper's K
	// experiment parameter). 0 means no cap.
	MaxK int
	// CostMax prunes candidates whose single-preference sub-query already
	// exceeds this bound in milliseconds (sound for upper-bounded cost
	// problems since cost is monotone). 0 disables the pruning.
	CostMax float64
	// MaxPathLen bounds the join-path length to keep traversal finite on
	// profiles with long join chains. 0 means the default of 4.
	MaxPathLen int
	// SkipCostVector and SkipSizeVector omit building C and S, matching the
	// paper's D_PrefSelTime configuration (doi-only ordering) in Fig. 12(b).
	SkipCostVector bool
	SkipSizeVector bool
	// Parallelism bounds the worker group that runs the per-candidate
	// cost/shrink estimations (Formula 6 per preference — the dominant cost
	// of extraction, and embarrassingly parallel). 0 selects GOMAXPROCS;
	// 1 forces the sequential build. Output is identical at every setting:
	// estimation results are committed in pop order regardless of which
	// worker finished first.
	Parallelism int
}

// candidate is a queue entry: a join path under construction or a completed
// implicit preference.
type candidate struct {
	doi  float64
	path []prefs.Atomic // join atoms so far
	sel  *prefs.Atomic  // terminal selection; nil while still a path
	seq  int            // FIFO tie-break for determinism
}

// candQueue is a max-heap on doi (ties broken by insertion order).
type candQueue []*candidate

func (q candQueue) Len() int { return len(q) }
func (q candQueue) Less(i, j int) bool {
	if q[i].doi != q[j].doi {
		return q[i].doi > q[j].doi
	}
	return q[i].seq < q[j].seq
}
func (q candQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *candQueue) Push(x any)   { *q = append(*q, x.(*candidate)) }
func (q *candQueue) Pop() any {
	old := *q
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return it
}

// Build runs the Preference Space algorithm without a context (it cannot
// be canceled mid-extraction). See BuildContext.
func Build(q *query.Query, profile *prefs.Profile, est *estimate.Estimator, opt Options) (*Space, error) {
	return BuildContext(context.Background(), q, profile, est, opt)
}

// BuildContext runs the Preference Space algorithm.
//
// The best-first traversal itself is sequential (it is heap operations and
// doi arithmetic), but the per-candidate cost(Q ∧ pi)/shrink estimations of
// Formula 6 — the dominant cost of extraction — are independent of one
// another, so they run across a bounded worker group (see
// Options.Parallelism). Rounds pop exactly the selections the sequential
// build would pop, estimate them concurrently, and commit the results in
// pop order, so the output is byte-identical to the sequential build.
// A canceled ctx aborts between estimations with ctx's error.
func BuildContext(ctx context.Context, q *query.Query, profile *prefs.Profile, est *estimate.Estimator, opt Options) (*Space, error) {
	if len(q.From) == 0 {
		return nil, fmt.Errorf("prefspace: query has no relations")
	}
	maxPath := opt.MaxPathLen
	if maxPath <= 0 {
		maxPath = 4
	}
	if err := est.CheckFault(); err != nil {
		return nil, fmt.Errorf("prefspace: base query estimate: %w", err)
	}
	sp := &Space{
		Query:    q,
		BaseCost: est.QueryCost(q),
		BaseSize: est.QuerySize(q),
	}
	if opt.MaxK > 0 {
		sp.P = make([]Pref, 0, opt.MaxK)
	}

	var qp candQueue
	seq := 0
	push := func(c *candidate) {
		c.seq = seq
		seq++
		heap.Push(&qp, c)
	}
	// Step 2: seed with atomic preferences syntactically related to Q.
	for _, rel := range q.From {
		for _, a := range profile.SelectionsOn(rel) {
			a := a
			push(&candidate{doi: a.Doi, sel: &a})
		}
		for _, a := range profile.JoinsFrom(rel) {
			push(&candidate{doi: a.Doi, path: []prefs.Atomic{a}})
		}
	}

	// Step 3: best-first expansion, in rounds. Each round pops candidates
	// until it has gathered the selections still needed (MaxK minus what is
	// committed — exactly the set the sequential build would estimate next),
	// estimates the batch across the worker group, and commits in pop
	// order. A candidate rejected by the CostMax filter leaves a gap the
	// next round refills, keeping the estimated set identical to the
	// sequential build's.
	for qp.Len() > 0 {
		if opt.MaxK > 0 && sp.K >= opt.MaxK {
			break
		}
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("prefspace: %w", err)
		}
		want := opt.MaxK - sp.K // ≤ 0 means "no cap": gather everything
		room := want
		if opt.MaxK <= 0 {
			room = qp.Len()
		}
		batch := make([]*candidate, 0, room)
		for qp.Len() > 0 && (opt.MaxK <= 0 || len(batch) < want) {
			c := heap.Pop(&qp).(*candidate)
			if c.sel != nil {
				// A complete (implicit) selection preference; materialized
				// and estimated by the worker group below.
				batch = append(batch, c)
				continue
			}
			// A join path: expand through preferences adjacent to its end.
			end := c.path[len(c.path)-1].Join.Right.Relation
			if opt.CostMax > 0 && pathCost(est, q, c.path) > opt.CostMax {
				continue // extensions only get more expensive
			}
			for _, a := range profile.SelectionsOn(end) {
				a := a
				push(&candidate{
					doi:  prefs.Compose(c.doi, a.Doi),
					path: c.path,
					sel:  &a,
				})
			}
			if len(c.path) >= maxPath {
				continue
			}
			for _, a := range profile.JoinsFrom(end) {
				if revisits(c.path, a.Join.Right.Relation) {
					continue // acyclicity (Figure 3's "p ∧ pi is acyclic")
				}
				next := make([]prefs.Atomic, len(c.path)+1)
				copy(next, c.path)
				next[len(c.path)] = a
				push(&candidate{doi: prefs.Compose(c.doi, a.Doi), path: next})
			}
		}
		if len(batch) == 0 {
			break // heap drained without completing another selection
		}
		results := estimateBatch(ctx, est, q, batch, opt.Parallelism)
		for _, r := range results {
			if r.impErr != nil {
				return nil, fmt.Errorf("prefspace: %v", r.impErr)
			}
			if r.err != nil {
				return nil, fmt.Errorf("prefspace: estimating preference %d: %w", sp.K, r.err)
			}
			p := Pref{
				Imp:    r.imp,
				Doi:    r.imp.Doi,
				Cost:   r.cost,
				Shrink: r.shrink,
			}
			p.Size = sp.BaseSize * p.Shrink
			if opt.CostMax > 0 && p.Cost > opt.CostMax {
				continue // can never participate in a feasible query
			}
			sp.P = append(sp.P, p)
			sp.K++
			if opt.MaxK > 0 && sp.K >= opt.MaxK {
				break
			}
		}
	}

	sp.buildVectors(opt)
	return sp, nil
}

// estResult is one candidate's materialization + estimation outcome.
type estResult struct {
	imp    prefs.Implicit
	cost   float64
	shrink float64
	impErr error // NewImplicit rejected the candidate (malformed path)
	err    error // fault point or context fired before estimation
}

// estimateBatch materializes every candidate selection (NewImplicit),
// answers what it can from the estimator's cross-request memo, and runs the
// remaining SubQueryCost/Shrink estimations across a bounded worker group,
// preserving input order in the result slice. A memoized candidate skips
// the worker group entirely — including its estimate.histogram fault poll
// and catalog reads, which is exactly the work the memo exists to elide
// (the pair was computed against this same immutable catalog). Workers
// poll the fault point and ctx before every computed candidate, exactly as
// the sequential build does between estimations, and store their results
// back into the memo. The estimator's entry points are safe for concurrent
// use: they read the catalog, which is immutable after catalog.Build, and
// touch only atomic timing counters; the memo itself is lock-guarded;
// candidate paths are shared between candidates but read-only here.
func estimateBatch(ctx context.Context, est *estimate.Estimator, q *query.Query, cands []*candidate, parallelism int) []estResult {
	out := make([]estResult, len(cands))
	scope := est.ScopeKey(q)
	misses := make([]int, 0, len(cands))
	for i, c := range cands {
		r := &out[i]
		r.imp, r.impErr = prefs.NewImplicit(c.path, *c.sel)
		if r.impErr != nil {
			continue
		}
		if cost, shrink, ok := est.PrefParams(scope, r.imp); ok {
			r.cost, r.shrink = cost, shrink
			continue
		}
		misses = append(misses, i)
	}
	if len(misses) == 0 {
		return out
	}
	estimate := func(i int) {
		r := &out[i]
		if r.err = ctx.Err(); r.err != nil {
			return
		}
		if r.err = est.CheckFault(); r.err != nil {
			return
		}
		r.cost = est.SubQueryCost(q, r.imp)
		r.shrink = est.Shrink(q, r.imp)
		est.StorePrefParams(scope, r.imp, r.cost, r.shrink)
	}
	workers := parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(misses) {
		workers = len(misses)
	}
	if workers <= 1 || len(misses) < 2 {
		for _, i := range misses {
			estimate(i)
		}
		return out
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				n := int(next.Add(1)) - 1
				if n >= len(misses) {
					return
				}
				estimate(misses[n])
			}
		}()
	}
	wg.Wait()
	return out
}

// pathCost estimates the sub-query cost of a partial path (without its
// terminal selection — the selection adds no relations beyond the path).
func pathCost(est *estimate.Estimator, q *query.Query, path []prefs.Atomic) float64 {
	imp := prefs.Implicit{}
	for _, a := range path {
		imp.Path = append(imp.Path, *a.Join)
	}
	// Anchor the probe selection at the path end so Relations() is complete.
	imp.Sel.Attr = path[len(path)-1].Join.Right
	return est.SubQueryCost(q, imp)
}

// revisits reports whether the path already touches the relation.
func revisits(path []prefs.Atomic, rel string) bool {
	if path[0].Join.Left.Relation == rel {
		return true
	}
	for _, a := range path {
		if a.Join.Right.Relation == rel {
			return true
		}
	}
	return false
}

// buildVectors constructs D, C and S. D is the identity because P is
// produced in decreasing doi order; C and S are built with addrank-style
// stable insertion (Figure 3).
func (sp *Space) buildVectors(opt Options) {
	sp.D = make([]int, sp.K)
	for i := range sp.D {
		sp.D[i] = i
	}
	if !opt.SkipCostVector {
		sp.C = rankBy(sp.K, func(a, b int) bool { return sp.P[a].Cost > sp.P[b].Cost })
	}
	if !opt.SkipSizeVector {
		sp.S = rankBy(sp.K, func(a, b int) bool { return sp.P[a].Size < sp.P[b].Size })
	}
}

// rankBy returns the permutation of 0..k-1 ordered by the strict less
// function, stable in the original (doi) order.
func rankBy(k int, less func(a, b int) bool) []int {
	out := make([]int, k)
	for i := range out {
		out[i] = i
	}
	// Insertion sort: stable and matches the paper's addrank incremental
	// construction; K is small (≤ a few dozen) by design.
	for i := 1; i < k; i++ {
		for j := i; j > 0 && less(out[j], out[j-1]); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// Dois returns the doi of each preference in P order.
func (sp *Space) Dois() []float64 {
	out := make([]float64, sp.K)
	for i, p := range sp.P {
		out[i] = p.Doi
	}
	return out
}

// Costs returns cost(Q ∧ p) of each preference in P order (milliseconds).
func (sp *Space) Costs() []float64 {
	out := make([]float64, sp.K)
	for i, p := range sp.P {
		out[i] = p.Cost
	}
	return out
}

// Shrinks returns each preference's size shrink factor in P order.
func (sp *Space) Shrinks() []float64 {
	out := make([]float64, sp.K)
	for i, p := range sp.P {
		out[i] = p.Shrink
	}
	return out
}

// SupremeCost is the cost of incorporating all K preferences — the paper's
// "Supreme Cost" against which cmax percentages are defined (Section 7.2).
// With no preferences it degenerates to the base query cost.
func (sp *Space) SupremeCost() float64 {
	if sp.K == 0 {
		return sp.BaseCost
	}
	c := 0.0
	for _, p := range sp.P {
		c += p.Cost
	}
	return c
}

// Validate checks the structural invariants the search algorithms rely on:
// P sorted by non-increasing doi; D, C, S are permutations with their
// documented orderings; parameters are finite and within range.
func (sp *Space) Validate() error {
	if sp.K != len(sp.P) {
		return fmt.Errorf("prefspace: K=%d but len(P)=%d", sp.K, len(sp.P))
	}
	for i, p := range sp.P {
		if p.Doi < 0 || p.Doi > 1 || math.IsNaN(p.Doi) {
			return fmt.Errorf("prefspace: P[%d] doi %g out of range", i, p.Doi)
		}
		if p.Cost < 0 || math.IsInf(p.Cost, 0) || math.IsNaN(p.Cost) {
			return fmt.Errorf("prefspace: P[%d] cost %g invalid", i, p.Cost)
		}
		if p.Shrink < 0 || p.Shrink > 1 {
			return fmt.Errorf("prefspace: P[%d] shrink %g out of [0,1]", i, p.Shrink)
		}
		if i > 0 && sp.P[i-1].Doi < p.Doi-1e-12 {
			return fmt.Errorf("prefspace: P not sorted by doi at %d", i)
		}
	}
	checkPerm := func(name string, v []int, ok func(a, b int) bool) error {
		if v == nil {
			return nil
		}
		if len(v) != sp.K {
			return fmt.Errorf("prefspace: %s has length %d, want %d", name, len(v), sp.K)
		}
		seen := make([]bool, sp.K)
		for _, x := range v {
			if x < 0 || x >= sp.K || seen[x] {
				return fmt.Errorf("prefspace: %s is not a permutation", name)
			}
			seen[x] = true
		}
		for i := 1; i < sp.K; i++ {
			if !ok(v[i-1], v[i]) {
				return fmt.Errorf("prefspace: %s ordering violated at %d", name, i)
			}
		}
		return nil
	}
	if err := checkPerm("D", sp.D, func(a, b int) bool { return sp.P[a].Doi >= sp.P[b].Doi-1e-12 }); err != nil {
		return err
	}
	if err := checkPerm("C", sp.C, func(a, b int) bool { return sp.P[a].Cost >= sp.P[b].Cost-1e-9 }); err != nil {
		return err
	}
	return checkPerm("S", sp.S, func(a, b int) bool { return sp.P[a].Size <= sp.P[b].Size+1e-9 })
}
