package obs

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanTree(t *testing.T) {
	root := NewTrace("personalize")
	ctx := ContextWith(context.Background(), root)

	ctx2, pre := StartSpan(ctx, "prefspace")
	pre.SetAttr("k", 20)
	_, est := StartSpan(ctx2, "estimate")
	est.End()
	pre.End()

	_, search := StartSpan(ctx, "search")
	search.AddChild("D_MaxDoi", 3*time.Millisecond, Attr{Key: "states", Value: "12"})
	search.End()
	root.End()

	tree := root.Tree()
	for _, want := range []string{"personalize", "prefspace", "estimate", "search", "D_MaxDoi", "k=20", "states=12"} {
		if !strings.Contains(tree, want) {
			t.Fatalf("tree missing %q:\n%s", want, tree)
		}
	}
	// estimate must be nested under prefspace, not under root directly.
	if root.Find("prefspace").Find("estimate") == nil {
		t.Fatalf("estimate is not a child of prefspace:\n%s", tree)
	}
	if root.Find("missing") != nil {
		t.Fatal("Find should miss absent spans")
	}
}

func TestStartSpanWithoutTrace(t *testing.T) {
	ctx := context.Background()
	ctx2, s := StartSpan(ctx, "anything")
	if s != nil {
		t.Fatal("no trace in context must yield a nil span")
	}
	if ctx2 != ctx {
		t.Fatal("context must pass through unchanged")
	}
	if FromContext(context.Background()) != nil {
		t.Fatal("FromContext on a bare context must be nil")
	}
}

// TestSpanConcurrentChildren mirrors the Portfolio racer: several
// goroutines attach children to one parent span.
func TestSpanConcurrentChildren(t *testing.T) {
	parent := NewTrace("search")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				c := parent.StartChild("algo")
				c.SetAttr("j", j)
				c.End()
			}
		}()
	}
	wg.Wait()
	if got := len(parent.Children()); got != 800 {
		t.Fatalf("children = %d, want 800", got)
	}
}

func TestDurationHelpers(t *testing.T) {
	d := 1234567 * time.Nanosecond
	if got := RoundDuration(d); got != 1235*time.Microsecond {
		t.Fatalf("RoundDuration = %v", got)
	}
	if got := FormatDuration(d); got != "1.235ms" {
		t.Fatalf("FormatDuration = %q", got)
	}
}
