package obs

import (
	"sync"
	"time"
)

// SLO tracks per-endpoint service-level indicators over a rolling time
// window: latency quantiles (via the shared bucket interpolation of
// HistSnapshot.Quantile), error rate, degraded rate, and cache/coalesce
// hit ratios. The window is sliced into slots; a slot is reset lazily the
// first time it is touched in a new epoch, so there is no background
// goroutine and an idle endpoint costs nothing.
type SLO struct {
	slotDur time.Duration
	slots   int
	bounds  []float64
	now     func() time.Time // test hook

	mu     sync.Mutex
	series map[string]*sloSeries
}

type sloSeries struct {
	slots []sloSlot
}

type sloSlot struct {
	epoch     int64 // slot timestamp in slotDur units; 0 = never used
	counts    []int64
	count     int64
	sum       float64 // milliseconds
	errors    int64   // status >= 500
	degraded  int64   // answered by a degradation rung
	cacheHits int64   // role "hit"
	followers int64   // role "follower"
}

// NewSLO returns a tracker whose window is slots × slotDur (e.g. 30 × 10s
// = a 5-minute rolling view). Latencies bucket into bounds
// (DurationBucketsMS when nil).
func NewSLO(slots int, slotDur time.Duration, bounds []float64) *SLO {
	if slots <= 0 {
		slots = 30
	}
	if slotDur <= 0 {
		slotDur = 10 * time.Second
	}
	if bounds == nil {
		bounds = DurationBucketsMS
	}
	return &SLO{
		slotDur: slotDur,
		slots:   slots,
		bounds:  bounds,
		now:     time.Now,
		series:  make(map[string]*sloSeries),
	}
}

// Record folds one finished request into the window. role is the
// cache/coalesce role ("hit", "leader", "follower", "solo"); rung is the
// degradation rung ("" = full fidelity). Nil-safe.
func (s *SLO) Record(endpoint string, total time.Duration, status int, role, rung string) {
	if s == nil {
		return
	}
	ms := float64(total) / float64(time.Millisecond)
	now := s.now()
	epoch := now.UnixNano() / int64(s.slotDur)
	idx := int(epoch % int64(s.slots))
	s.mu.Lock()
	defer s.mu.Unlock()
	ser := s.series[endpoint]
	if ser == nil {
		ser = &sloSeries{slots: make([]sloSlot, s.slots)}
		s.series[endpoint] = ser
	}
	slot := &ser.slots[idx]
	if slot.epoch != epoch {
		*slot = sloSlot{epoch: epoch, counts: make([]int64, len(s.bounds)+1)}
	}
	i := 0
	for i < len(s.bounds) && ms > s.bounds[i] {
		i++
	}
	slot.counts[i]++
	slot.count++
	slot.sum += ms
	if status >= 500 {
		slot.errors++
	}
	if rung != "" {
		slot.degraded++
	}
	switch role {
	case "hit":
		slot.cacheHits++
	case "follower":
		slot.followers++
	}
}

// EndpointSLO is one endpoint's rolling-window report.
type EndpointSLO struct {
	Count            int64   `json:"count"`
	P50MS            float64 `json:"p50_ms"`
	P95MS            float64 `json:"p95_ms"`
	P99MS            float64 `json:"p99_ms"`
	P999MS           float64 `json:"p999_ms"`
	MeanMS           float64 `json:"mean_ms"`
	ErrorRate        float64 `json:"error_rate"`
	DegradedRate     float64 `json:"degraded_rate"`
	CacheHitRatio    float64 `json:"cache_hit_ratio"`
	CoalesceHitRatio float64 `json:"coalesce_hit_ratio"`
}

// Report summarizes every endpoint over the live window. Slots older than
// the window are skipped (they belong to a previous lap of the ring).
func (s *SLO) Report() map[string]EndpointSLO {
	if s == nil {
		return nil
	}
	epoch := s.now().UnixNano() / int64(s.slotDur)
	out := make(map[string]EndpointSLO)
	s.mu.Lock()
	defer s.mu.Unlock()
	for endpoint, ser := range s.series {
		hist := HistSnapshot{Bounds: s.bounds, Counts: make([]int64, len(s.bounds)+1)}
		var errors, degraded, hits, followers int64
		for i := range ser.slots {
			slot := &ser.slots[i]
			if slot.epoch == 0 || slot.epoch <= epoch-int64(s.slots) {
				continue
			}
			for j, c := range slot.counts {
				hist.Counts[j] += c
			}
			hist.Count += slot.count
			hist.Sum += slot.sum
			errors += slot.errors
			degraded += slot.degraded
			hits += slot.cacheHits
			followers += slot.followers
		}
		if hist.Count == 0 {
			continue
		}
		n := float64(hist.Count)
		out[endpoint] = EndpointSLO{
			Count:            hist.Count,
			P50MS:            hist.Quantile(0.50),
			P95MS:            hist.Quantile(0.95),
			P99MS:            hist.Quantile(0.99),
			P999MS:           hist.Quantile(0.999),
			MeanMS:           hist.Sum / n,
			ErrorRate:        float64(errors) / n,
			DegradedRate:     float64(degraded) / n,
			CacheHitRatio:    float64(hits) / n,
			CoalesceHitRatio: float64(followers) / n,
		}
	}
	return out
}

// Window returns the rolling window's span.
func (s *SLO) Window() time.Duration {
	if s == nil {
		return 0
	}
	return time.Duration(s.slots) * s.slotDur
}
