package obs

import "testing"

func TestCollectRuntime(t *testing.T) {
	r := NewRegistry()
	r.CollectRuntime()
	if g := r.Gauge("go_goroutines").Value(); g <= 0 {
		t.Errorf("go_goroutines = %d, want > 0", g)
	}
	if g := r.Gauge("go_heap_alloc_bytes").Value(); g <= 0 {
		t.Errorf("go_heap_alloc_bytes = %d, want > 0", g)
	}
	// Repeated collection refreshes in place rather than duplicating.
	r.CollectRuntime()
	if g := r.Gauge("go_goroutines").Value(); g <= 0 {
		t.Errorf("go_goroutines after refresh = %d", g)
	}
}

func TestCollectRuntimeNilRegistry(t *testing.T) {
	var r *Registry
	r.CollectRuntime() // must not panic
}
