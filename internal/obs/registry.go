package obs

import (
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry holds named metrics. Lookup (Counter, Gauge, Histogram) takes a
// read lock and is meant to run once per instrumented object — hot paths
// cache the returned instrument and then record with plain atomics, so the
// Portfolio racer's goroutines never contend on a lock while searching.
//
// A nil *Registry is a valid "observability off" registry: it returns nil
// instruments whose methods no-op.
type Registry struct {
	mu      sync.RWMutex
	metrics map[metricKey]any // *Counter | *Gauge | *Histogram
}

type metricKey struct {
	name   string
	labels string
}

// NewRegistry returns an empty metrics registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[metricKey]any)}
}

// labelString canonicalizes "k,v,k,v" pairs into `k="v",k="v"`.
func labelString(pairs []string) string {
	if len(pairs) == 0 {
		return ""
	}
	var b strings.Builder
	for i := 0; i+1 < len(pairs); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(pairs[i])
		b.WriteString(`="`)
		b.WriteString(pairs[i+1])
		b.WriteString(`"`)
	}
	return b.String()
}

// lookup returns the metric under (name, labels), creating it with mk on
// first use. A metric name must keep one kind; a kind clash panics, which
// surfaces the programming error at the recording site.
func (r *Registry) lookup(name string, labels []string, mk func(key metricKey) any) any {
	key := metricKey{name: name, labels: labelString(labels)}
	r.mu.RLock()
	m, ok := r.metrics[key]
	r.mu.RUnlock()
	if ok {
		return m
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok = r.metrics[key]; !ok {
		m = mk(key)
		r.metrics[key] = m
	}
	return m
}

// Counter returns the counter under name and optional "k,v" label pairs,
// creating it on first use. Returns nil on a nil registry.
func (r *Registry) Counter(name string, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	return r.lookup(name, labels, func(key metricKey) any {
		return &Counter{key: key}
	}).(*Counter)
}

// Gauge returns the gauge under name and optional "k,v" label pairs.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	if r == nil {
		return nil
	}
	return r.lookup(name, labels, func(key metricKey) any {
		return &Gauge{key: key}
	}).(*Gauge)
}

// Histogram returns the histogram under name and optional "k,v" label
// pairs, creating it with the given ascending bucket upper bounds on first
// use (an implicit +Inf bucket is always appended). Later calls may pass
// nil bounds to address the existing histogram.
func (r *Registry) Histogram(name string, bounds []float64, labels ...string) *Histogram {
	if r == nil {
		return nil
	}
	return r.lookup(name, labels, func(key metricKey) any {
		b := append([]float64(nil), bounds...)
		return &Histogram{key: key, bounds: b, counts: make([]atomic.Int64, len(b)+1)}
	}).(*Histogram)
}

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	key metricKey
	v   atomic.Int64
}

// Add increases the counter by n. No-op on a nil counter.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increases the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic last-value (or high-water) instrument.
type Gauge struct {
	key metricKey
	v   atomic.Int64
}

// Set stores v. No-op on a nil gauge.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// SetMax raises the gauge to v if v is larger (lock-free high-water mark).
func (g *Gauge) SetMax(v int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// Value returns the current gauge value (0 on a nil gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket histogram with atomic bucket counts and a
// lock-free float sum. Bounds are upper bounds (≤) in ascending order; an
// implicit +Inf bucket catches the rest.
type Histogram struct {
	key     metricKey
	bounds  []float64
	counts  []atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64
}

// Observe records one value. No-op on a nil histogram.
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		new := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, new) {
			return
		}
	}
}

// Count returns the number of observations (0 on a nil histogram).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values (0 on a nil histogram).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Quantile estimates the p-quantile (p in [0,1]) of the observed values by
// linear interpolation within the bucket holding the target rank — the
// same estimate Prometheus's histogram_quantile computes server-side. NaN
// on a nil or empty histogram.
func (h *Histogram) Quantile(p float64) float64 {
	if h == nil {
		return math.NaN()
	}
	snap := HistSnapshot{Bounds: h.bounds, Counts: make([]int64, len(h.counts))}
	for i := range h.counts {
		c := h.counts[i].Load()
		snap.Counts[i] = c
		snap.Count += c
	}
	return snap.Quantile(p)
}

// Default bucket sets for the pipeline's two recurring shapes.
var (
	// DurationBucketsMS spans sub-millisecond shell interactions up to the
	// paper's hundreds-of-seconds exact searches.
	DurationBucketsMS = []float64{0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000, 60000}
	// QErrorBuckets grades estimator accuracy: a q-error of 1 is a perfect
	// estimate, ≤ 2 is good company for a System-R style model, ≥ 100 means
	// the estimate is useless for that query.
	QErrorBuckets = []float64{1, 1.1, 1.25, 1.5, 2, 3, 5, 10, 25, 100, 1000}
	// SizeBuckets covers result cardinalities.
	SizeBuckets = []float64{0, 1, 5, 10, 50, 100, 500, 1000, 5000, 10000, 100000}
)

// MetricSnapshot is the frozen state of one metric.
type MetricSnapshot struct {
	Name   string
	Labels string // canonical `k="v",...` form, "" when unlabeled
	Kind   string // "counter" | "gauge" | "histogram"
	Value  int64  // counters and gauges
	Hist   *HistSnapshot
}

// HistSnapshot freezes a histogram: cumulative semantics are left to the
// exporters; Counts[i] is the count in bucket i (≤ Bounds[i], last +Inf).
type HistSnapshot struct {
	Bounds []float64
	Counts []int64
	Count  int64
	Sum    float64
}

// Quantile estimates the p-quantile of a frozen histogram by linear
// interpolation within the bucket holding the target rank. The bucket's
// lower edge is the previous bound (0 for the first bucket — every
// recorded quantity here is non-negative); values landing in the +Inf
// bucket report the highest finite bound, the tightest claim the bucket
// data supports. p is clamped to [0,1]; NaN on an empty snapshot.
func (h *HistSnapshot) Quantile(p float64) float64 {
	if h == nil || h.Count == 0 {
		return math.NaN()
	}
	p = math.Min(math.Max(p, 0), 1)
	rank := p * float64(h.Count)
	var cum int64
	for i, c := range h.Counts {
		cum += c
		if float64(cum) < rank || c == 0 {
			continue
		}
		if i >= len(h.Bounds) {
			// +Inf bucket: no finite upper edge to interpolate toward.
			if len(h.Bounds) == 0 {
				return math.NaN()
			}
			return h.Bounds[len(h.Bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = h.Bounds[i-1]
		}
		frac := (rank - float64(cum-c)) / float64(c)
		return lo + (h.Bounds[i]-lo)*frac
	}
	return math.NaN()
}

// Snapshot freezes all metrics, sorted by name then labels. Nil registries
// yield nil.
func (r *Registry) Snapshot() []MetricSnapshot {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	out := make([]MetricSnapshot, 0, len(r.metrics))
	for _, m := range r.metrics {
		switch m := m.(type) {
		case *Counter:
			out = append(out, MetricSnapshot{Name: m.key.name, Labels: m.key.labels, Kind: "counter", Value: m.Value()})
		case *Gauge:
			out = append(out, MetricSnapshot{Name: m.key.name, Labels: m.key.labels, Kind: "gauge", Value: m.Value()})
		case *Histogram:
			hs := &HistSnapshot{
				Bounds: m.bounds,
				Counts: make([]int64, len(m.counts)),
				Count:  m.Count(),
				Sum:    m.Sum(),
			}
			for i := range m.counts {
				hs.Counts[i] = m.counts[i].Load()
			}
			out = append(out, MetricSnapshot{Name: m.key.name, Labels: m.key.labels, Kind: "histogram", Hist: hs})
		}
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Labels < out[j].Labels
	})
	return out
}
