package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reads_total", "table", "MOVIE")
	c.Add(3)
	c.Inc()
	if got := c.Value(); got != 4 {
		t.Fatalf("counter = %d, want 4", got)
	}
	if c2 := r.Counter("reads_total", "table", "MOVIE"); c2 != c {
		t.Fatal("same name+labels must return the same counter")
	}
	if c3 := r.Counter("reads_total", "table", "GENRE"); c3 == c {
		t.Fatal("different labels must return a different counter")
	}

	g := r.Gauge("queue_high_water")
	g.Set(10)
	g.SetMax(7)
	if got := g.Value(); got != 10 {
		t.Fatalf("SetMax lowered the gauge: %d", got)
	}
	g.SetMax(42)
	if got := g.Value(); got != 42 {
		t.Fatalf("SetMax = %d, want 42", got)
	}

	h := r.Histogram("lat_ms", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 99, 1000} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("hist count = %d, want 5", h.Count())
	}
	if math.Abs(h.Sum()-1105.5) > 1e-9 {
		t.Fatalf("hist sum = %g, want 1105.5", h.Sum())
	}
	snap := r.Snapshot()
	var hs *HistSnapshot
	for _, m := range snap {
		if m.Name == "lat_ms" {
			hs = m.Hist
		}
	}
	if hs == nil {
		t.Fatal("histogram missing from snapshot")
	}
	// Buckets: ≤1 → {0.5, 1}, ≤10 → {5}, ≤100 → {99}, +Inf → {1000}.
	want := []int64{2, 1, 1, 1}
	for i, w := range want {
		if hs.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (all %v)", i, hs.Counts[i], w, hs.Counts)
		}
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	if r.Counter("x") != nil || r.Gauge("x") != nil || r.Histogram("x", nil) != nil {
		t.Fatal("nil registry must return nil instruments")
	}
	// All of these must be harmless no-ops.
	r.Counter("x").Add(1)
	r.Counter("x").Inc()
	r.Gauge("x").Set(1)
	r.Gauge("x").SetMax(1)
	r.Gauge("x").Add(1)
	r.Histogram("x", nil).Observe(1)
	if r.Counter("x").Value() != 0 || r.Gauge("x").Value() != 0 {
		t.Fatal("nil instruments must read zero")
	}
	if r.Snapshot() != nil {
		t.Fatal("nil registry snapshot must be nil")
	}
	if s := r.Render(); !strings.Contains(s, "no metrics") {
		t.Fatalf("nil render = %q", s)
	}
	var acc *Accuracy
	acc.Record(1, 2, 3, 4)
	if acc.Summary().Queries != 0 {
		t.Fatal("nil accuracy must report zero queries")
	}
	var sp *Span
	sp.End()
	sp.SetAttr("k", 1)
	if sp.StartChild("c") != nil || sp.AddChild("c", 0) != nil || sp.Tree() != "" {
		t.Fatal("nil span must stay nil and render empty")
	}
}

// TestRegistryConcurrent hammers one registry from many goroutines — the
// exact shape of the Portfolio racer recording search metrics — and is the
// test the CI race detector watches.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	const goroutines = 16
	const iters = 2000
	var wg sync.WaitGroup
	names := []string{"a_total", "b_total", "c_total"}
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				r.Counter(names[i%len(names)]).Inc()
				r.Counter("labeled_total", "worker", names[g%len(names)]).Inc()
				r.Gauge("hw").SetMax(int64(i))
				r.Histogram("h", []float64{10, 100}).Observe(float64(i % 150))
				if i%100 == 0 {
					r.Snapshot() // concurrent readers must be safe too
				}
			}
		}(g)
	}
	wg.Wait()

	var total int64
	for _, n := range names {
		total += r.Counter(n).Value()
	}
	if want := int64(goroutines * iters); total != want {
		t.Fatalf("counter total = %d, want %d", total, want)
	}
	if got := r.Counter("labeled_total", "worker", "a_total").Value() +
		r.Counter("labeled_total", "worker", "b_total").Value() +
		r.Counter("labeled_total", "worker", "c_total").Value(); got != int64(goroutines*iters) {
		t.Fatalf("labeled total = %d, want %d", got, goroutines*iters)
	}
	if got := r.Gauge("hw").Value(); got != iters-1 {
		t.Fatalf("high-water = %d, want %d", got, iters-1)
	}
	if got := r.Histogram("h", nil).Count(); got != int64(goroutines*iters) {
		t.Fatalf("hist count = %d, want %d", got, goroutines*iters)
	}
}

func TestPrometheusAndExpvar(t *testing.T) {
	r := NewRegistry()
	r.Counter("reads_total", "table", "MOVIE").Add(7)
	r.Counter("reads_total", "table", "GENRE").Add(2)
	r.Gauge("depth").Set(3)
	r.Histogram("ms", []float64{1, 10}).Observe(5)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE reads_total counter",
		`reads_total{table="MOVIE"} 7`,
		"# TYPE depth gauge",
		"depth 3",
		`ms_bucket{le="1"} 0`,
		`ms_bucket{le="10"} 1`,
		`ms_bucket{le="+Inf"} 1`,
		"ms_sum 5",
		"ms_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
	// TYPE must appear once per family even with several labeled series.
	if n := strings.Count(out, "# TYPE reads_total counter"); n != 1 {
		t.Fatalf("reads_total announced %d times:\n%s", n, out)
	}
	if !strings.Contains(out, `reads_total{table="GENRE"} 2`) {
		t.Fatalf("second series missing:\n%s", out)
	}

	ev := r.Expvar().(map[string]any)
	if ev[`reads_total{table="MOVIE"}`] != int64(7) {
		t.Fatalf("expvar counter = %v", ev[`reads_total{table="MOVIE"}`])
	}
	r.PublishExpvar("obs_test_registry")
	r.PublishExpvar("obs_test_registry") // second publish must not panic
}

// BenchmarkDisabledInstruments measures the observability-off hot path: a
// nil counter/gauge/histogram touch per operation must be a nil check.
func BenchmarkDisabledInstruments(b *testing.B) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("x")
	h := r.Histogram("x", nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
		g.SetMax(int64(i))
		h.Observe(1)
	}
}

// BenchmarkEnabledCounter measures the enabled fast path (cached
// instrument, one atomic add).
func BenchmarkEnabledCounter(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("x")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}
