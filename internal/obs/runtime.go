package obs

import "runtime"

// CollectRuntime samples Go runtime health into the registry's gauges —
// goroutine count, heap occupancy, GC cycles — so a daemon's /metrics
// scrape carries process vitals next to the pipeline series. Cheap enough
// to call on every scrape; no-op on a nil registry.
func (r *Registry) CollectRuntime() {
	if r == nil {
		return
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	r.Gauge("go_goroutines").Set(int64(runtime.NumGoroutine()))
	r.Gauge("go_heap_alloc_bytes").Set(int64(ms.HeapAlloc))
	r.Gauge("go_heap_objects").Set(int64(ms.HeapObjects))
	r.Gauge("go_total_alloc_bytes").Set(int64(ms.TotalAlloc))
	r.Gauge("go_next_gc_bytes").Set(int64(ms.NextGC))
	r.Gauge("go_gc_cycles_total").Set(int64(ms.NumGC))
}
