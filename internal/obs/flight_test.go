package obs

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHistogramQuantile(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("q", []float64{10, 20, 40})
	// 100 observations uniformly filling the 0–10 bucket.
	for i := 0; i < 100; i++ {
		h.Observe(5)
	}
	if got := h.Quantile(0.5); got != 5 {
		t.Fatalf("p50 of a single full bucket = %g, want 5 (midpoint interpolation)", got)
	}
	if got := h.Quantile(1); got != 10 {
		t.Fatalf("p100 = %g, want the bucket's upper bound 10", got)
	}

	// Second histogram: 50 in (10,20], 50 in (20,40].
	h2 := reg.Histogram("q2", []float64{10, 20, 40})
	for i := 0; i < 50; i++ {
		h2.Observe(15)
		h2.Observe(30)
	}
	if got := h2.Quantile(0.5); got != 20 {
		t.Fatalf("p50 = %g, want 20 (end of the first occupied bucket)", got)
	}
	if got := h2.Quantile(0.75); got != 30 {
		t.Fatalf("p75 = %g, want 30 (midpoint of the second occupied bucket)", got)
	}
	// Rank interpolates linearly inside a bucket.
	if got := h2.Quantile(0.25); got != 15 {
		t.Fatalf("p25 = %g, want 15", got)
	}

	// +Inf bucket clamps to the last finite bound.
	h3 := reg.Histogram("q3", []float64{10})
	h3.Observe(1e9)
	if got := h3.Quantile(0.99); got != 10 {
		t.Fatalf("+Inf-bucket quantile = %g, want last finite bound 10", got)
	}

	// Empty and nil histograms report NaN.
	h4 := reg.Histogram("q4", []float64{10})
	if got := h4.Quantile(0.5); got == got {
		t.Fatalf("empty histogram quantile = %g, want NaN", got)
	}
	var hn *Histogram
	if got := hn.Quantile(0.5); got == got {
		t.Fatalf("nil histogram quantile = %g, want NaN", got)
	}

	// Clamping: out-of-range p behaves as 0 and 1.
	if got := h2.Quantile(-3); got != h2.Quantile(0) {
		t.Fatalf("p=-3 (%g) should clamp to p=0 (%g)", got, h2.Quantile(0))
	}
	if got := h2.Quantile(7); got != h2.Quantile(1) {
		t.Fatalf("p=7 (%g) should clamp to p=1 (%g)", got, h2.Quantile(1))
	}
}

func TestRenderShowsQuantiles(t *testing.T) {
	reg := NewRegistry()
	for i := 0; i < 10; i++ {
		reg.Histogram("render_ms", DurationBucketsMS).Observe(3)
	}
	out := reg.Render()
	if !strings.Contains(out, "p50") || !strings.Contains(out, "p99") {
		t.Fatalf("Render() lacks p50/p99:\n%s", out)
	}
}

func TestSanitizeRequestID(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want string
	}{
		{"abc-123_XYZ", "abc-123_XYZ"},
		{"", ""},
		{strings.Repeat("a", MaxRequestIDLen), strings.Repeat("a", MaxRequestIDLen)},
		{strings.Repeat("a", MaxRequestIDLen+1), ""}, // oversized
		{"has space", ""},        // space
		{"tab\there", ""},        // control char
		{"new\nline", ""},        // log injection
		{"carriage\rreturn", ""}, // header smuggling
		{"unicode-é", ""},        // non-ASCII
		{"del\x7f", ""},
	} {
		if got := SanitizeRequestID(tc.in); got != tc.want {
			t.Errorf("SanitizeRequestID(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
	if id := NewRequestID(); SanitizeRequestID(id) != id {
		t.Fatalf("NewRequestID() = %q does not pass its own sanitizer", id)
	}
	if NewRequestID() == NewRequestID() {
		t.Fatal("NewRequestID() returned the same ID twice")
	}
}

func TestRequestAttribution(t *testing.T) {
	r := NewRequest("personalize", "req-1")
	r.AddPhase(PhaseParse, 2*time.Millisecond)
	r.AddPhase(PhaseQueue, 1*time.Millisecond)
	tr := NewTrace("personalize")
	tr.AddChild(PhaseSearch, 5*time.Millisecond)
	tr.End()
	r.SetTrace(tr)
	id, total, phases := r.Attribution()
	if id != "req-1" {
		t.Fatalf("id = %q", id)
	}
	if phases[PhaseParse] != 2*time.Millisecond || phases[PhaseSearch] != 5*time.Millisecond {
		t.Fatalf("phases = %v", phases)
	}
	var sum time.Duration
	for _, d := range phases {
		sum += d
	}
	if sum < total*9/10 {
		t.Fatalf("attribution covers %v of %v wall (< 90%%)", sum, total)
	}

	r.Finish(200, "")
	snap := r.Snapshot()
	if snap.Status != 200 || snap.PhasesUS[PhaseSearch] != 5000 {
		t.Fatalf("snapshot = %+v", snap)
	}
	var snapSum int64
	for _, us := range snap.PhasesUS {
		snapSum += us
	}
	if snapSum < snap.TotalUS*9/10 {
		t.Fatalf("sealed attribution covers %dus of %dus wall", snapSum, snap.TotalUS)
	}
}

func TestRequestTruncation(t *testing.T) {
	r := NewRequest("personalize", strings.Repeat("x", 500))
	r.SetProfile(strings.Repeat("p", 5000))
	r.Finish(500, strings.Repeat("e", 1<<20))
	snap := r.Snapshot()
	if len(snap.ID) > MaxRequestIDLen {
		t.Fatalf("ID not truncated: %d bytes", len(snap.ID))
	}
	if len(snap.Profile) > maxProfileLen {
		t.Fatalf("profile not truncated: %d bytes", len(snap.Profile))
	}
	if len(snap.Error) > maxErrLen {
		t.Fatalf("error not truncated: %d bytes", len(snap.Error))
	}
}

func TestFlightWraparound(t *testing.T) {
	f := NewFlight(8)
	for i := 0; i < 20; i++ {
		r := NewRequest("personalize", fmt.Sprintf("id-%02d", i))
		r.Finish(200, "")
		f.Add(r)
	}
	got := f.Snapshot(Filter{})
	// The ring holds the last 8; the slow tail may retain earlier ones but
	// never more than its cap, and the union is bounded.
	if len(got) > 8+slowestCap+erroredCap {
		t.Fatalf("retained %d records, beyond every bound", len(got))
	}
	if _, _, ok := f.Get("id-19"); !ok {
		t.Fatal("newest record evicted")
	}
	if f.Count() != 20 {
		t.Fatalf("Count() = %d, want 20", f.Count())
	}
	// Disabled recorder retains nothing.
	off := NewFlight(0)
	r := NewRequest("personalize", "id")
	r.Finish(200, "")
	off.Add(r)
	if got := off.Snapshot(Filter{}); len(got) != 0 {
		t.Fatalf("disabled recorder retained %d records", len(got))
	}
}

func TestFlightTailRetainsErrored(t *testing.T) {
	f := NewFlight(4)
	bad := NewRequest("personalize", "errored-one")
	bad.Finish(500, "injected")
	f.Add(bad)
	deg := NewRequest("personalize", "degraded-one")
	deg.SetRung("stale")
	deg.Finish(200, "")
	f.Add(deg)
	// Flood the ring with healthy fast requests.
	for i := 0; i < 100; i++ {
		r := NewRequest("personalize", fmt.Sprintf("ok-%d", i))
		r.Finish(200, "")
		f.Add(r)
	}
	if _, _, ok := f.Get("errored-one"); !ok {
		t.Fatal("errored request evicted despite tail sampling")
	}
	snap, _, ok := f.Get("degraded-one")
	if !ok {
		t.Fatal("degraded request evicted despite tail sampling")
	}
	if snap.Rung != "stale" {
		t.Fatalf("rung = %q, want stale", snap.Rung)
	}
}

func TestFlightFilters(t *testing.T) {
	f := NewFlight(32)
	for i := 0; i < 10; i++ {
		r := NewRequest("personalize", fmt.Sprintf("p-%d", i))
		r.Finish(200, "")
		f.Add(r)
	}
	r := NewRequest("front", "f-1")
	r.Finish(503, "exhausted")
	f.Add(r)
	if got := f.Snapshot(Filter{Endpoint: "front"}); len(got) != 1 || got[0].ID != "f-1" {
		t.Fatalf("endpoint filter: %+v", got)
	}
	if got := f.Snapshot(Filter{Status: 503}); len(got) != 1 {
		t.Fatalf("status filter: %+v", got)
	}
	if got := f.Snapshot(Filter{Limit: 3}); len(got) != 3 {
		t.Fatalf("limit: %d", len(got))
	}
	if got := f.Snapshot(Filter{MinTotal: time.Hour}); len(got) != 0 {
		t.Fatalf("min-latency filter: %+v", got)
	}
	all := f.Snapshot(Filter{})
	for i := 1; i < len(all); i++ {
		if all[i].Start.After(all[i-1].Start) {
			t.Fatal("snapshot not sorted newest-first")
		}
	}
}

// TestFlightConcurrency exercises concurrent writers against concurrent
// /debug/requests-shaped readers under -race: Add, Snapshot, and Get must
// be safe together, and the retained set must stay bounded.
func TestFlightConcurrency(t *testing.T) {
	f := NewFlight(64)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r := NewRequest("personalize", fmt.Sprintf("w%d-%d", w, i))
				r.AddPhase(PhaseSearch, time.Duration(i)*time.Microsecond)
				status := 200
				if i%17 == 0 {
					status = 500
				}
				r.Finish(status, "")
				f.Add(r)
			}
		}(w)
	}
	for rdr := 0; rdr < 3; rdr++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snaps := f.Snapshot(Filter{Limit: 16})
				if len(snaps) > 0 {
					f.Get(snaps[0].ID)
				}
			}
		}()
	}
	// Writers finish first, then release the readers.
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	time.Sleep(50 * time.Millisecond)
	close(stop)
	<-done
	if got := len(f.Snapshot(Filter{})); got > 64+slowestCap+erroredCap {
		t.Fatalf("retained %d records, beyond every bound", got)
	}
}

func TestSpanJSONAndPhaseDurations(t *testing.T) {
	tr := NewTrace("personalize")
	p := tr.StartChild("personalize")
	p.AddChild(PhasePrefspace, 3*time.Millisecond, Attr{Key: "k", Value: "20"})
	p.AddChild(PhaseSearch, 7*time.Millisecond)
	p.End()
	tr.AddChild(PhaseExecute, 2*time.Millisecond)
	tr.End()

	js := tr.JSON()
	if js == nil || js.Name != "personalize" || len(js.Children) != 2 {
		t.Fatalf("JSON() = %+v", js)
	}
	if js.Children[0].Children[0].Name != PhasePrefspace || js.Children[0].Children[0].Attrs[0].Key != "k" {
		t.Fatalf("JSON() children = %+v", js.Children[0])
	}

	phases := tr.PhaseDurations(PipelinePhases)
	if phases[PhasePrefspace] != 3*time.Millisecond || phases[PhaseSearch] != 7*time.Millisecond || phases[PhaseExecute] != 2*time.Millisecond {
		t.Fatalf("PhaseDurations = %v", phases)
	}
	var np *Span
	if np.JSON() != nil || np.PhaseDurations(PipelinePhases) != nil {
		t.Fatal("nil span JSON/PhaseDurations not nil")
	}
}

func TestSLOReport(t *testing.T) {
	s := NewSLO(6, 10*time.Second, nil)
	now := time.Unix(1000, 0)
	s.now = func() time.Time { return now }
	for i := 0; i < 98; i++ {
		s.Record("personalize", 2*time.Millisecond, 200, "leader", "")
	}
	s.Record("personalize", 80*time.Millisecond, 500, "solo", "")
	s.Record("personalize", 30*time.Millisecond, 200, "follower", "stale")
	s.Record("topk", time.Millisecond, 200, "hit", "")

	rep := s.Report()
	p := rep["personalize"]
	if p.Count != 100 {
		t.Fatalf("count = %d", p.Count)
	}
	if p.ErrorRate != 0.01 || p.DegradedRate != 0.01 || p.CoalesceHitRatio != 0.01 {
		t.Fatalf("rates = %+v", p)
	}
	if !(p.P50MS > 0 && p.P50MS <= 2.5) {
		t.Fatalf("p50 = %g, want within the 2ms bucket", p.P50MS)
	}
	if p.P999MS < p.P50MS || p.P99MS < p.P50MS {
		t.Fatalf("quantiles not monotone: %+v", p)
	}
	if rep["topk"].CacheHitRatio != 1 {
		t.Fatalf("topk hit ratio = %g", rep["topk"].CacheHitRatio)
	}

	// Advance beyond the window: old slots fall out of the report.
	now = now.Add(2 * time.Minute)
	if rep := s.Report(); len(rep) != 0 {
		t.Fatalf("expired window still reports: %+v", rep)
	}
	// New traffic starts a fresh window.
	s.Record("personalize", time.Millisecond, 200, "solo", "")
	if rep := s.Report(); rep["personalize"].Count != 1 {
		t.Fatalf("fresh window: %+v", rep)
	}
}
