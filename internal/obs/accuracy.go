package obs

import (
	"fmt"
	"math"
	"sync"
)

// Accuracy tracks estimator accuracy: for every executed personalized
// query it records the estimated versus actual cost (milliseconds) and
// result size (rows) and maintains q-error histograms in the registry.
//
// The q-error of an estimate e against an actual a is max(e/a, a/e) ≥ 1 —
// the standard symmetric multiplicative error of the cardinality-
// estimation literature. It is the feedback signal the paper's Figure 15
// reads off its est/real bar pairs, and the series every later estimator
// improvement will be judged against.
type Accuracy struct {
	costQ *Histogram
	sizeQ *Histogram

	mu sync.Mutex
	n  int64
	// Running sums and maxima of the two q-error series.
	costSum, costMax float64
	sizeSum, sizeMax float64
	last             AccuracyRecord
}

// AccuracyRecord is one estimated-versus-actual observation.
type AccuracyRecord struct {
	EstCostMS float64
	ActCostMS float64
	EstRows   float64
	ActRows   float64
	CostQErr  float64
	SizeQErr  float64
}

// NewAccuracy builds a tracker recording into the registry's
// estimator_qerror_cost and estimator_qerror_size histograms. A nil
// registry yields a nil tracker (all methods no-op).
func NewAccuracy(reg *Registry) *Accuracy {
	if reg == nil {
		return nil
	}
	return &Accuracy{
		costQ: reg.Histogram("estimator_qerror_cost", QErrorBuckets),
		sizeQ: reg.Histogram("estimator_qerror_size", QErrorBuckets),
	}
}

// QError returns max(est/act, act/est), clamped to ≥ 1. Zero-vs-zero is a
// perfect estimate (1); zero-vs-nonzero saturates to +Inf.
func QError(est, act float64) float64 {
	est, act = math.Abs(est), math.Abs(act)
	if est == act {
		return 1
	}
	if est == 0 || act == 0 {
		return math.Inf(1)
	}
	if est > act {
		return est / act
	}
	return act / est
}

// Record logs one executed personalized query. Nil-safe.
func (a *Accuracy) Record(estCostMS, actCostMS, estRows, actRows float64) AccuracyRecord {
	rec := AccuracyRecord{
		EstCostMS: estCostMS, ActCostMS: actCostMS,
		EstRows: estRows, ActRows: actRows,
		CostQErr: QError(estCostMS, actCostMS),
		SizeQErr: QError(estRows, actRows),
	}
	if a == nil {
		return rec
	}
	a.costQ.Observe(rec.CostQErr)
	a.sizeQ.Observe(rec.SizeQErr)
	a.mu.Lock()
	a.n++
	a.costSum += rec.CostQErr
	a.sizeSum += rec.SizeQErr
	if rec.CostQErr > a.costMax {
		a.costMax = rec.CostQErr
	}
	if rec.SizeQErr > a.sizeMax {
		a.sizeMax = rec.SizeQErr
	}
	a.last = rec
	a.mu.Unlock()
	return rec
}

// AccuracySummary aggregates the tracker's observations.
type AccuracySummary struct {
	Queries      int64
	MeanCostQErr float64
	MaxCostQErr  float64
	MeanSizeQErr float64
	MaxSizeQErr  float64
	Last         AccuracyRecord
}

// Summary returns the aggregate view (zero value on nil or empty).
func (a *Accuracy) Summary() AccuracySummary {
	if a == nil {
		return AccuracySummary{}
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	s := AccuracySummary{Queries: a.n, MaxCostQErr: a.costMax, MaxSizeQErr: a.sizeMax, Last: a.last}
	if a.n > 0 {
		s.MeanCostQErr = a.costSum / float64(a.n)
		s.MeanSizeQErr = a.sizeSum / float64(a.n)
	}
	return s
}

// String renders the summary for the shell's \stats command.
func (s AccuracySummary) String() string {
	if s.Queries == 0 {
		return "estimator accuracy: no personalized queries executed yet"
	}
	return fmt.Sprintf(
		"estimator accuracy over %d executed queries:\n"+
			"  cost q-error: mean %.2f  max %.2f (last est %.0f ms vs actual %.0f ms)\n"+
			"  size q-error: mean %.2f  max %.2f (last est %.3g rows vs actual %.0f rows)",
		s.Queries,
		s.MeanCostQErr, s.MaxCostQErr, s.Last.EstCostMS, s.Last.ActCostMS,
		s.MeanSizeQErr, s.MaxSizeQErr, s.Last.EstRows, s.Last.ActRows)
}
