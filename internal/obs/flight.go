package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Phase names of the fixed per-request attribution record. Every request
// accounts its wall time to these buckets; PhaseOther absorbs whatever the
// instrumented checkpoints did not explicitly claim, so the phases always
// sum to the request's total.
const (
	PhaseParse     = "parse"     // body decode, SQL parse, profile resolution
	PhaseCache     = "cache"     // result-cache lookup
	PhaseQueue     = "queue"     // admission-queue wait before a worker picked the task up
	PhaseCoalesce  = "coalesce"  // follower wait on another request's in-flight run
	PhasePrefspace = "prefspace" // preference-space build (incl. estimation)
	PhaseSearch    = "search"    // constrained state-space search
	PhaseConstruct = "construct" // personalized-query construction
	PhaseExecute   = "execute"   // personalized-query execution
	PhaseEncode    = "encode"    // response serialization
	PhaseOther     = "other"     // unattributed remainder
)

// PipelinePhases are the phase names derived from the request's span tree
// rather than explicit checkpoints (see Span.PhaseDurations).
var PipelinePhases = map[string]bool{
	PhasePrefspace: true,
	PhaseSearch:    true,
	PhaseConstruct: true,
	PhaseExecute:   true,
}

// Bounds on the string fields a flight record retains. The recorder's
// memory is records × a small constant; unbounded attacker- or
// error-supplied strings would break that, so everything textual is
// truncated on the way in.
const (
	MaxRequestIDLen = 64
	maxErrLen       = 256
	maxProfileLen   = 128
)

func truncate(s string, max int) string {
	if len(s) <= max {
		return s
	}
	return s[:max]
}

// NewRequestID returns a fresh 16-hex-char request ID.
func NewRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is effectively fatal elsewhere; degrade to a
		// process-local counter rather than panicking on a debug facility.
		return "local-" + hex.EncodeToString(fallbackID())
	}
	return hex.EncodeToString(b[:])
}

var fallbackCounter atomic.Uint64

func fallbackID() []byte {
	var b [8]byte
	n := fallbackCounter.Add(1)
	for i := 0; i < 8; i++ {
		b[i] = byte(n >> (8 * i))
	}
	return b[:]
}

// SanitizeRequestID validates a caller-supplied request ID: 1 to
// MaxRequestIDLen bytes of printable, non-space ASCII. Anything else
// returns "" and the caller should mint a fresh ID — an oversized or
// control-character ID would otherwise be echoed verbatim into response
// headers and log lines (log injection via \n, header smuggling via \r).
func SanitizeRequestID(s string) string {
	if len(s) == 0 || len(s) > MaxRequestIDLen {
		return ""
	}
	for i := 0; i < len(s); i++ {
		if s[i] <= 0x20 || s[i] >= 0x7f {
			return ""
		}
	}
	return s
}

// Request is one request's flight record: identity, outcome, and the
// per-phase latency attribution. It is written by the handler goroutine
// and — through the context — by pool workers and pipeline phases, then
// read by /debug/requests; all mutation is mutex-guarded.
type Request struct {
	id       string
	endpoint string
	start    time.Time

	mu      sync.Mutex
	profile string
	role    string // "hit" | "leader" | "follower" | "solo" | ""
	rung    string // degradation rung ("" = full fidelity)
	status  int
	errMsg  string
	total   time.Duration
	phases  map[string]time.Duration
	trace   *Span
	done    bool
}

// NewRequest opens a flight record. id must already be sanitized or
// freshly minted.
func NewRequest(endpoint, id string) *Request {
	return &Request{
		id:       truncate(id, MaxRequestIDLen),
		endpoint: endpoint,
		start:    time.Now(),
		phases:   make(map[string]time.Duration, 8),
	}
}

// ID returns the request ID ("" on nil).
func (r *Request) ID() string {
	if r == nil {
		return ""
	}
	return r.id
}

// Endpoint returns the serving endpoint ("" on nil).
func (r *Request) Endpoint() string {
	if r == nil {
		return ""
	}
	return r.endpoint
}

// Start returns when the record was opened.
func (r *Request) Start() time.Time {
	if r == nil {
		return time.Time{}
	}
	return r.start
}

// AddPhase accumulates d into the named phase. Nil-safe; negative d is
// ignored.
func (r *Request) AddPhase(name string, d time.Duration) {
	if r == nil || d < 0 {
		return
	}
	r.mu.Lock()
	r.phases[name] += d
	r.mu.Unlock()
}

// SetProfile records the profile identity (id@version, or "inline").
func (r *Request) SetProfile(p string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.profile = truncate(p, maxProfileLen)
	r.mu.Unlock()
}

// SetRole records the cache/coalesce role that answered the request.
func (r *Request) SetRole(role string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.role = role
	r.mu.Unlock()
}

// SetRung records the degradation-ladder rung that answered.
func (r *Request) SetRung(rung string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.rung = rung
	r.mu.Unlock()
}

// SetTrace attaches the request's span tree root.
func (r *Request) SetTrace(s *Span) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.trace = s
	r.mu.Unlock()
}

// Trace returns the attached span tree root (nil when none).
func (r *Request) Trace() *Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.trace
}

// Finish seals the record with the response status and an optional error
// message, folds the span tree's pipeline phases into the attribution, and
// charges the unattributed remainder to PhaseOther. Idempotent.
func (r *Request) Finish(status int, errMsg string) {
	if r == nil {
		return
	}
	total := time.Since(r.start)
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.done {
		return
	}
	r.done = true
	r.status = status
	r.errMsg = truncate(errMsg, maxErrLen)
	r.total = total
	for name, d := range r.trace.PhaseDurations(PipelinePhases) {
		r.phases[name] += d
	}
	var sum time.Duration
	for _, d := range r.phases {
		sum += d
	}
	if rest := total - sum; rest > 0 {
		r.phases[PhaseOther] = rest
	}
}

// Attribution returns the request ID, the wall time elapsed so far, and a
// copy of the phase attribution with the span tree's pipeline phases and
// the PhaseOther remainder folded in — the response-embedded view, built
// before the response is encoded (so PhaseEncode is absent; it exists only
// in the final flight record). On a finished record it returns the sealed
// totals.
func (r *Request) Attribution() (id string, total time.Duration, phases map[string]time.Duration) {
	if r == nil {
		return "", 0, nil
	}
	elapsed := time.Since(r.start)
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.done {
		elapsed = r.total
	}
	out := make(map[string]time.Duration, len(r.phases)+4)
	for name, d := range r.phases {
		out[name] = d
	}
	if !r.done {
		for name, d := range r.trace.PhaseDurations(PipelinePhases) {
			out[name] += d
		}
		var sum time.Duration
		for _, d := range out {
			sum += d
		}
		if rest := elapsed - sum; rest > 0 {
			out[PhaseOther] = rest
		}
	}
	return r.id, elapsed, out
}

// RequestSnapshot is the frozen, JSON-ready view of a flight record.
type RequestSnapshot struct {
	ID       string           `json:"id"`
	Endpoint string           `json:"endpoint"`
	Start    time.Time        `json:"start"`
	Profile  string           `json:"profile,omitempty"`
	Role     string           `json:"role,omitempty"`
	Rung     string           `json:"rung,omitempty"`
	Status   int              `json:"status"`
	Error    string           `json:"error,omitempty"`
	TotalUS  int64            `json:"total_us"`
	PhasesUS map[string]int64 `json:"phases_us"`
}

// Snapshot freezes the record.
func (r *Request) Snapshot() RequestSnapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := RequestSnapshot{
		ID:       r.id,
		Endpoint: r.endpoint,
		Start:    r.start,
		Profile:  r.profile,
		Role:     r.role,
		Rung:     r.rung,
		Status:   r.status,
		Error:    r.errMsg,
		TotalUS:  r.total.Microseconds(),
		PhasesUS: make(map[string]int64, len(r.phases)),
	}
	for name, d := range r.phases {
		s.PhasesUS[name] = d.Microseconds()
	}
	return s
}

type reqCtxKey struct{}

// ContextWithRequest installs the flight record in the context.
func ContextWithRequest(ctx context.Context, r *Request) context.Context {
	if r == nil {
		return ctx
	}
	return context.WithValue(ctx, reqCtxKey{}, r)
}

// RequestFromContext returns the context's flight record, or nil.
func RequestFromContext(ctx context.Context) *Request {
	if ctx == nil {
		return nil
	}
	r, _ := ctx.Value(reqCtxKey{}).(*Request)
	return r
}

// Tail-sample sizes: beyond the main ring, the recorder retains the
// slowestCap slowest requests seen and a ring of the last erroredCap
// errored or degraded requests, so the interesting outliers survive a
// flood of fast, healthy traffic that would otherwise evict them.
const (
	slowestCap = 32
	erroredCap = 64
)

// Flight is the bounded flight recorder: a ring of the last N finished
// request records plus tail-sampled slow and errored/degraded sets. One
// mutex guards a few pointer writes per request — nanoseconds against the
// pipeline's microseconds-to-milliseconds runs.
type Flight struct {
	mu      sync.Mutex
	ring    []*Request
	next    int
	count   uint64     // total records ever added
	slowest []*Request // unordered, ≤ slowestCap, min evicted on overflow
	errored []*Request // ring of ≤ erroredCap
	errNext int
}

// NewFlight returns a recorder retaining the last n requests (n ≤ 0
// disables retention; records still flow through for logging/metrics but
// nothing is kept).
func NewFlight(n int) *Flight {
	f := &Flight{}
	if n > 0 {
		f.ring = make([]*Request, 0, n)
	}
	return f
}

// Add retains a finished record. Records still being written must not be
// added — the recorder hands out snapshots assuming Finish has sealed
// them.
func (f *Flight) Add(r *Request) {
	if f == nil || r == nil {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.count++
	if cap(f.ring) == 0 {
		return
	}
	if len(f.ring) < cap(f.ring) {
		f.ring = append(f.ring, r)
	} else {
		f.ring[f.next] = r
		f.next = (f.next + 1) % len(f.ring)
	}
	r.mu.Lock()
	total, status, rung := r.total, r.status, r.rung
	r.mu.Unlock()
	if status >= 400 || rung != "" {
		if len(f.errored) < erroredCap {
			f.errored = append(f.errored, r)
		} else {
			f.errored[f.errNext] = r
			f.errNext = (f.errNext + 1) % len(f.errored)
		}
	}
	if len(f.slowest) < slowestCap {
		f.slowest = append(f.slowest, r)
		return
	}
	minAt := 0
	min := time.Duration(1<<63 - 1)
	for i, s := range f.slowest {
		s.mu.Lock()
		st := s.total
		s.mu.Unlock()
		if st < min {
			min, minAt = st, i
		}
	}
	if total > min {
		f.slowest[minAt] = r
	}
}

// Count returns how many records have been added over the recorder's
// lifetime (including ones since evicted).
func (f *Flight) Count() uint64 {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.count
}

// Filter selects flight records. Zero values match everything.
type Filter struct {
	Endpoint string
	Status   int           // exact status code
	MinTotal time.Duration // only requests at least this slow
	Limit    int           // max records returned (0 = all retained)
}

// records returns every retained record exactly once (a record can sit in
// the ring and a tail set simultaneously).
func (f *Flight) records() []*Request {
	seen := make(map[*Request]bool, len(f.ring)+len(f.slowest)+len(f.errored))
	out := make([]*Request, 0, len(f.ring)+len(f.slowest)+len(f.errored))
	for _, set := range [][]*Request{f.ring, f.slowest, f.errored} {
		for _, r := range set {
			if !seen[r] {
				seen[r] = true
				out = append(out, r)
			}
		}
	}
	return out
}

// Snapshot returns matching records, newest first.
func (f *Flight) Snapshot(filter Filter) []RequestSnapshot {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	records := f.records()
	f.mu.Unlock()
	out := make([]RequestSnapshot, 0, len(records))
	for _, r := range records {
		s := r.Snapshot()
		if filter.Endpoint != "" && s.Endpoint != filter.Endpoint {
			continue
		}
		if filter.Status != 0 && s.Status != filter.Status {
			continue
		}
		if filter.MinTotal > 0 && s.TotalUS < filter.MinTotal.Microseconds() {
			continue
		}
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start.After(out[j].Start) })
	if filter.Limit > 0 && len(out) > filter.Limit {
		out = out[:filter.Limit]
	}
	return out
}

// Get returns the retained record with the given ID (the newest, when a
// client reused an ID) plus its span tree, or ok=false.
func (f *Flight) Get(id string) (RequestSnapshot, *Span, bool) {
	if f == nil {
		return RequestSnapshot{}, nil, false
	}
	f.mu.Lock()
	records := f.records()
	f.mu.Unlock()
	var best *Request
	for _, r := range records {
		if r.ID() != id {
			continue
		}
		if best == nil || r.Start().After(best.Start()) {
			best = r
		}
	}
	if best == nil {
		return RequestSnapshot{}, nil, false
	}
	return best.Snapshot(), best.Trace(), true
}
