package obs

import (
	"math"
	"strings"
	"testing"
)

func TestQError(t *testing.T) {
	cases := []struct {
		est, act, want float64
	}{
		{100, 100, 1},
		{50, 100, 2},
		{100, 50, 2},
		{0, 0, 1},
		{0, 10, math.Inf(1)},
		{10, 0, math.Inf(1)},
	}
	for _, c := range cases {
		if got := QError(c.est, c.act); got != c.want {
			t.Fatalf("QError(%g, %g) = %g, want %g", c.est, c.act, got, c.want)
		}
	}
}

func TestAccuracyTracker(t *testing.T) {
	reg := NewRegistry()
	acc := NewAccuracy(reg)

	rec := acc.Record(100, 200, 10, 10)
	if rec.CostQErr != 2 || rec.SizeQErr != 1 {
		t.Fatalf("record q-errors = %g/%g, want 2/1", rec.CostQErr, rec.SizeQErr)
	}
	acc.Record(300, 100, 40, 10)

	s := acc.Summary()
	if s.Queries != 2 {
		t.Fatalf("queries = %d, want 2", s.Queries)
	}
	if math.Abs(s.MeanCostQErr-2.5) > 1e-12 || s.MaxCostQErr != 3 {
		t.Fatalf("cost q-error mean/max = %g/%g, want 2.5/3", s.MeanCostQErr, s.MaxCostQErr)
	}
	if math.Abs(s.MeanSizeQErr-2.5) > 1e-12 || s.MaxSizeQErr != 4 {
		t.Fatalf("size q-error mean/max = %g/%g, want 2.5/4", s.MeanSizeQErr, s.MaxSizeQErr)
	}
	if s.Last.ActCostMS != 100 {
		t.Fatalf("last record actual cost = %g, want 100", s.Last.ActCostMS)
	}
	if !strings.Contains(s.String(), "2 executed queries") {
		t.Fatalf("summary string = %q", s.String())
	}

	// The q-error series must land in the registry histograms.
	if got := reg.Histogram("estimator_qerror_cost", nil).Count(); got != 2 {
		t.Fatalf("cost q-error histogram count = %d, want 2", got)
	}
	if got := reg.Histogram("estimator_qerror_size", nil).Count(); got != 2 {
		t.Fatalf("size q-error histogram count = %d, want 2", got)
	}
	if NewAccuracy(nil) != nil {
		t.Fatal("NewAccuracy(nil) must be nil")
	}
	if empty := (AccuracySummary{}); !strings.Contains(empty.String(), "no personalized queries") {
		t.Fatalf("empty summary = %q", empty.String())
	}
}
