package obs

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"
)

// Span is one timed node of a trace tree: a pipeline phase (the paper's
// Figure 2 modules), a portfolio algorithm run, or one executed sub-query.
// Spans are created through a parent (or NewTrace for the root) and
// propagate via context.Context; a nil *Span is an inert span whose
// methods no-op, which is how tracing stays free when disabled.
//
// Children may be attached from concurrent goroutines (the Portfolio racer
// records one child per algorithm), so mutation is mutex-guarded — spans
// live on the once-per-query control path, not in the search loop.
type Span struct {
	name  string
	start time.Time

	mu       sync.Mutex
	dur      time.Duration
	ended    bool
	attrs    []Attr
	children []*Span
}

// Attr is one key/value annotation on a span.
type Attr struct {
	Key   string
	Value string
}

// NewTrace starts a root span. Install it with ContextWith and render the
// finished tree with Tree.
func NewTrace(name string) *Span {
	return &Span{name: name, start: time.Now()}
}

type ctxKey struct{}

// ContextWith returns a context carrying the span as the current trace
// position. A nil span returns ctx unchanged.
func ContextWith(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, s)
}

// FromContext returns the current span, or nil when the context carries no
// trace (observability off).
func FromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(ctxKey{}).(*Span)
	return s
}

// StartSpan opens a child of the context's current span and returns a
// context positioned on it. When the context carries no trace it returns
// the context unchanged and a nil span — callers never need to branch.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	parent := FromContext(ctx)
	if parent == nil {
		return ctx, nil
	}
	child := parent.StartChild(name)
	return ContextWith(ctx, child), child
}

// StartChild opens and attaches a running child span. Nil-safe.
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	child := &Span{name: name, start: time.Now()}
	s.mu.Lock()
	s.children = append(s.children, child)
	s.mu.Unlock()
	return child
}

// AddChild attaches an already-measured child span — used for work whose
// duration is known but whose interval was not wrapped (per-algorithm
// portfolio stats, per-sub-query executor timings, accumulated estimator
// time). Nil-safe.
func (s *Span) AddChild(name string, d time.Duration, attrs ...Attr) *Span {
	if s == nil {
		return nil
	}
	child := &Span{name: name, start: s.start, dur: d, ended: true, attrs: attrs}
	s.mu.Lock()
	s.children = append(s.children, child)
	s.mu.Unlock()
	return child
}

// End closes the span, freezing its duration. Idempotent and nil-safe.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.ended {
		s.ended = true
		s.dur = time.Since(s.start)
	}
	s.mu.Unlock()
}

// SetAttr annotates the span. Values render with %v. Nil-safe.
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Value: fmt.Sprint(value)})
	s.mu.Unlock()
}

// Name returns the span's name ("" on nil).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Duration returns the span's duration — final if ended, running so far
// otherwise. Zero on nil.
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ended {
		return s.dur
	}
	return time.Since(s.start)
}

// Children returns a snapshot of the attached child spans.
func (s *Span) Children() []*Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Span(nil), s.children...)
}

// Attrs returns a snapshot of the span's annotations.
func (s *Span) Attrs() []Attr {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Attr(nil), s.attrs...)
}

// Tree renders the span and its descendants as an indented tree with
// per-span durations and attributes:
//
//	personalize                 18.004ms
//	  prefspace                  2.113ms  k=20
//	    estimate                 1.871ms  calls=214
//	  search                    14.92ms   algorithm=C-MAXBOUNDS states=1234
//
// Returns "" on a nil span.
func (s *Span) Tree() string {
	if s == nil {
		return ""
	}
	var b strings.Builder
	var width int
	var measure func(sp *Span, depth int)
	measure = func(sp *Span, depth int) {
		if w := 2*depth + len(sp.name); w > width {
			width = w
		}
		for _, c := range sp.Children() {
			measure(c, depth+1)
		}
	}
	measure(s, 0)
	var render func(sp *Span, depth int)
	render = func(sp *Span, depth int) {
		label := strings.Repeat("  ", depth) + sp.name
		fmt.Fprintf(&b, "%-*s  %10s", width, label, FormatDuration(sp.Duration()))
		for _, a := range sp.Attrs() {
			fmt.Fprintf(&b, "  %s=%s", a.Key, a.Value)
		}
		b.WriteByte('\n')
		for _, c := range sp.Children() {
			render(c, depth+1)
		}
	}
	render(s, 0)
	return b.String()
}

// SpanJSON is the wire form of a span tree, served by the flight
// recorder's per-request endpoint.
type SpanJSON struct {
	Name       string      `json:"name"`
	DurationUS int64       `json:"duration_us"`
	Attrs      []Attr      `json:"attrs,omitempty"`
	Children   []*SpanJSON `json:"children,omitempty"`
}

// JSON freezes the span and its descendants into the wire shape. Nil on a
// nil span.
func (s *Span) JSON() *SpanJSON {
	if s == nil {
		return nil
	}
	out := &SpanJSON{
		Name:       s.Name(),
		DurationUS: s.Duration().Microseconds(),
		Attrs:      s.Attrs(),
	}
	for _, c := range s.Children() {
		out.Children = append(out.Children, c.JSON())
	}
	return out
}

// PhaseDurations sums descendant span durations by name over the tree
// (self excluded — the root is the whole request). When the same phase
// appears more than once (retries, degradation reruns, batch items) the
// occurrences accumulate, which is what latency attribution wants: total
// time spent in that kind of work. Nested spans only contribute their own
// name — a child's time is already inside its parent's — so only the
// outermost span of each distinct name chain should be attributed; callers
// pass the set of names they consider phases and only those are counted,
// and a counted span's subtree is not descended (its children are part of
// its phase).
func (s *Span) PhaseDurations(names map[string]bool) map[string]time.Duration {
	if s == nil {
		return nil
	}
	out := make(map[string]time.Duration)
	var walk func(sp *Span)
	walk = func(sp *Span) {
		for _, c := range sp.Children() {
			if names[c.Name()] {
				out[c.Name()] += c.Duration()
				continue // subtree time is inside this phase
			}
			walk(c)
		}
	}
	walk(s)
	return out
}

// Find returns the first descendant span (depth-first, self included) with
// the given name, or nil. Test and tooling helper.
func (s *Span) Find(name string) *Span {
	if s == nil {
		return nil
	}
	if s.name == name {
		return s
	}
	for _, c := range s.Children() {
		if got := c.Find(name); got != nil {
			return got
		}
	}
	return nil
}
