// Package obs is the zero-dependency observability layer of the CQP
// engine: a concurrency-safe metrics registry (counters, gauges,
// fixed-bucket histograms), lightweight span tracing propagated through
// context.Context, and an estimator-accuracy tracker.
//
// The paper's entire evaluation (Section 7) measures the personalization
// pipeline — search time (Figure 12), peak memory (Figure 13), estimated
// versus actual cost (Figure 15) — and this package makes those same
// quantities observable on every live run rather than only inside the
// bench harness.
//
// Everything is nil-safe by design: a nil *Registry hands out nil
// instruments whose methods are no-ops, and tracing only activates when
// the caller installed a span in the context. Disabled observability
// therefore compiles down to a nil check on the hot path, which keeps the
// instrumented search loop and executor at seed performance.
package obs

import "time"

// RoundDuration rounds a duration to the microsecond — the precision the
// pipeline reports everywhere (sub-microsecond noise is meaningless for
// millisecond-scale cost models).
func RoundDuration(d time.Duration) time.Duration { return d.Round(time.Microsecond) }

// FormatDuration renders a duration at microsecond precision, the shared
// formatting previously duplicated (as a magic Round(1000)) across the
// personalizer and examples.
func FormatDuration(d time.Duration) string { return RoundDuration(d).String() }
