package obs

import (
	"expvar"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4). Histograms emit cumulative le-buckets plus _sum
// and _count series. A nil registry writes nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	// TYPE must appear once per metric family, not once per labeled
	// series — Prometheus rejects a second TYPE line for the same name.
	typed := make(map[string]bool)
	announce := func(name, kind string) error {
		if typed[name] {
			return nil
		}
		typed[name] = true
		_, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, kind)
		return err
	}
	for _, m := range r.Snapshot() {
		var err error
		switch m.Kind {
		case "counter", "gauge":
			if err = announce(m.Name, m.Kind); err != nil {
				return err
			}
			_, err = fmt.Fprintf(w, "%s %d\n", promSeries(m.Name, m.Labels, ""), m.Value)
		case "histogram":
			if err = announce(m.Name, "histogram"); err != nil {
				return err
			}
			cum := int64(0)
			for i, c := range m.Hist.Counts {
				cum += c
				le := "+Inf"
				if i < len(m.Hist.Bounds) {
					le = formatFloat(m.Hist.Bounds[i])
				}
				if _, err = fmt.Fprintf(w, "%s %d\n", promSeries(m.Name+"_bucket", m.Labels, `le="`+le+`"`), cum); err != nil {
					return err
				}
			}
			if _, err = fmt.Fprintf(w, "%s %s\n", promSeries(m.Name+"_sum", m.Labels, ""), formatFloat(m.Hist.Sum)); err != nil {
				return err
			}
			_, err = fmt.Fprintf(w, "%s %d\n", promSeries(m.Name+"_count", m.Labels, ""), m.Hist.Count)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// promSeries assembles name{labels,extra}.
func promSeries(name, labels, extra string) string {
	switch {
	case labels == "" && extra == "":
		return name
	case labels == "":
		return name + "{" + extra + "}"
	case extra == "":
		return name + "{" + labels + "}"
	default:
		return name + "{" + labels + "," + extra + "}"
	}
}

func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Render formats a snapshot as aligned human-readable text, for the
// shell's \stats command. Histograms print count, mean and the bucket
// spread on one line.
func (r *Registry) Render() string {
	snap := r.Snapshot()
	if len(snap) == 0 {
		return "(no metrics recorded)\n"
	}
	var b strings.Builder
	width := 0
	rows := make([][2]string, 0, len(snap))
	for _, m := range snap {
		name := m.Name
		if m.Labels != "" {
			name += "{" + m.Labels + "}"
		}
		var val string
		switch m.Kind {
		case "histogram":
			mean := 0.0
			if m.Hist.Count > 0 {
				mean = m.Hist.Sum / float64(m.Hist.Count)
			}
			val = fmt.Sprintf("count %d  mean %.3g  p50 %.3g  p99 %.3g  %s",
				m.Hist.Count, mean, m.Hist.Quantile(0.50), m.Hist.Quantile(0.99), sparkline(m.Hist))
		default:
			val = strconv.FormatInt(m.Value, 10)
		}
		if len(name) > width {
			width = len(name)
		}
		rows = append(rows, [2]string{name, val})
	}
	for _, row := range rows {
		fmt.Fprintf(&b, "%-*s  %s\n", width, row[0], row[1])
	}
	return b.String()
}

// sparkline compresses a histogram's occupied buckets into "≤bound:count"
// cells, skipping empties so wide bucket sets stay readable.
func sparkline(h *HistSnapshot) string {
	var cells []string
	for i, c := range h.Counts {
		if c == 0 {
			continue
		}
		le := "inf"
		if i < len(h.Bounds) {
			le = formatFloat(h.Bounds[i])
		}
		cells = append(cells, "≤"+le+":"+strconv.FormatInt(c, 10))
	}
	if len(cells) == 0 {
		return "(empty)"
	}
	return strings.Join(cells, " ")
}

// Expvar returns the registry state in an expvar-friendly shape: metric
// name (plus labels) → value, with histograms expanded to count/sum/mean.
// Publish it with PublishExpvar or expvar.Publish(name, expvar.Func(...)).
func (r *Registry) Expvar() any {
	out := make(map[string]any)
	for _, m := range r.Snapshot() {
		name := m.Name
		if m.Labels != "" {
			name += "{" + m.Labels + "}"
		}
		switch m.Kind {
		case "histogram":
			mean := 0.0
			if m.Hist.Count > 0 {
				mean = m.Hist.Sum / float64(m.Hist.Count)
			}
			out[name] = map[string]any{"count": m.Hist.Count, "sum": m.Hist.Sum, "mean": mean}
		default:
			out[name] = m.Value
		}
	}
	return out
}

// PublishExpvar exposes the registry under the given expvar name (shown at
// /debug/vars). Safe to call more than once per process: republishing an
// existing name is a no-op (expvar itself would panic).
func (r *Registry) PublishExpvar(name string) {
	if r == nil || expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(r.Expvar))
}

// SortedNames lists distinct metric names in the registry (test helper and
// shell completion fodder).
func (r *Registry) SortedNames() []string {
	seen := map[string]bool{}
	var out []string
	for _, m := range r.Snapshot() {
		if !seen[m.Name] {
			seen[m.Name] = true
			out = append(out, m.Name)
		}
	}
	sort.Strings(out)
	return out
}
