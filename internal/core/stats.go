package core

import "time"

// Stats instruments one algorithm run with the measurements the paper's
// evaluation reports: execution time (Figure 12), peak memory (Figure 13)
// and the number of states examined.
type Stats struct {
	// Algorithm is the name of the algorithm that produced the solution.
	Algorithm string
	// Duration is the wall-clock optimization time.
	Duration time.Duration
	// StatesVisited counts states whose parameters were evaluated.
	StatesVisited int
	// PeakMemBytes is the maximum simultaneous footprint of the search's
	// live data structures (queues, boundary lists, visited set), in bytes,
	// under the accounting model of node.memBytes.
	PeakMemBytes int64
	// Truncated reports that the run hit the instance's StateBudget and
	// returned the best solution found up to that point.
	Truncated bool
	// MemoHits counts states the visited-set memo recognized and pruned —
	// the work the paper-faithful (memo-less) search would redo.
	MemoHits int
	// QueueHighWater is the deepest the search queue (the paper's RQ) grew
	// at any point of the run — the live-frontier companion to
	// PeakMemBytes.
	QueueHighWater int
	// Fault records an injected search.expand fault that aborted the run:
	// the search stopped as if truncated, carrying the best solution found
	// so far. Solve surfaces it as an error; direct Problem2Solver callers
	// (benchmarks, experiments) inspect it here.
	Fault error
}

// memTracker accumulates live bytes and records the peak.
type memTracker struct {
	cur, peak int64
}

func (m *memTracker) add(b int64) {
	m.cur += b
	if m.cur > m.peak {
		m.peak = m.cur
	}
}

func (m *memTracker) sub(b int64) { m.cur -= b }

// visitedSet is a hash set of node fingerprints with memory accounting.
// Collisions are possible but vanishingly rare and only risk re-pruning an
// unvisited state; correctness tests cover the algorithms end to end.
// A disabled set (paper-faithful mode) reports nothing as seen.
type visitedSet struct {
	m        map[uint64]struct{}
	st       *Stats
	mem      *memTracker
	disabled bool
}

func newVisitedSet(st *Stats, mem *memTracker) *visitedSet {
	return &visitedSet{m: make(map[uint64]struct{}), st: st, mem: mem}
}

// newVisitedSetFor builds a visited set honoring the instance's memo mode.
func newVisitedSetFor(in *Instance, st *Stats, mem *memTracker) *visitedSet {
	v := newVisitedSet(st, mem)
	v.disabled = in.DisableMemo
	return v
}

// seen reports whether the node was recorded before, recording it if not.
// Re-encounters count as memo hits in the run's Stats.
func (v *visitedSet) seen(n node) bool {
	if v.disabled {
		return false
	}
	h := n.hash()
	if _, ok := v.m[h]; ok {
		v.st.MemoHits++
		return true
	}
	v.m[h] = struct{}{}
	v.mem.add(16) // 8-byte key + bucket overhead
	return false
}

// nodeDeque is a double-ended queue of nodes with memory accounting: the
// paper's RQ, where Horizontal results enqueue at the tail and Vertical
// results at the head (C-BOUNDARIES' group-by-group discipline). It is a
// two-stack deque: front holds head-side nodes in reverse, back holds
// tail-side nodes in order.
type nodeDeque struct {
	front  []node // next head element is front[len(front)-1]
	back   []node // back[backAt:] are tail-side elements in FIFO order
	backAt int
	st     *Stats
	mem    *memTracker
}

func newNodeDeque(st *Stats, mem *memTracker) *nodeDeque { return &nodeDeque{st: st, mem: mem} }

func (d *nodeDeque) len() int { return len(d.front) + len(d.back) - d.backAt }

// noteDepth records the queue's high-water mark after a push.
func (d *nodeDeque) noteDepth() {
	if n := d.len(); n > d.st.QueueHighWater {
		d.st.QueueHighWater = n
	}
}

func (d *nodeDeque) pushTail(n node) {
	d.back = append(d.back, n)
	d.mem.add(n.memBytes())
	d.noteDepth()
}

func (d *nodeDeque) pushHead(n node) {
	d.front = append(d.front, n)
	d.mem.add(n.memBytes())
	d.noteDepth()
}

func (d *nodeDeque) popHead() node {
	var n node
	if len(d.front) > 0 {
		n = d.front[len(d.front)-1]
		d.front[len(d.front)-1] = nil
		d.front = d.front[:len(d.front)-1]
	} else {
		n = d.back[d.backAt]
		d.back[d.backAt] = nil
		d.backAt++
		if d.backAt == len(d.back) {
			d.back = d.back[:0]
			d.backAt = 0
		}
	}
	d.mem.sub(n.memBytes())
	return n
}
