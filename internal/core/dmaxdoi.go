package core

import (
	"sort"
	"time"
)

// DMaxDoi is the paper's Algorithm D-MAXDOI (Figure 9), the provably exact
// search on the doi state space (Theorem 3). FINDOPTIMAL grows each
// candidate with Horizontal transitions while the cost constraint holds,
// records the last feasible node of the chain as a possible solution, and
// then branches through the Vertical neighbors of the first infeasible
// successor. Vertical transitions are "blind" with respect to cost
// (Table 5), which is exactly why the paper measures this algorithm as the
// slowest and most memory-hungry — it must keep exploring states whose cost
// it cannot bound. Pruning is therefore visited-set only, preserving
// exactness.
func DMaxDoi(in *Instance, cmax float64) Solution {
	start := time.Now()
	st := Stats{Algorithm: "D-MAXDOI"}
	var mem memTracker
	sp := in.doiSpace()

	solutions := findOptimal(in, sp, costPrimary(in, sp, cmax), &st, &mem)
	set, _ := dFindMaxDoi(sp, in, solutions, &st)

	sol := in.solutionFor(set, true)
	if len(set) == 0 && in.BaseCost > cmax {
		sol.Feasible = false
	}
	st.Duration = time.Since(start)
	st.PeakMemBytes = mem.peak
	sol.Stats = st
	return sol
}

// findOptimal is the paper's FINDOPTIMAL (Figure 9, first phase).
func findOptimal(in *Instance, sp *space, pr primary, st *Stats, mem *memTracker) []node {
	var solutions []node
	if sp.K == 0 {
		return solutions
	}
	visited := newVisitedSetFor(in, st, mem)
	rq := newNodeDeque(st, mem)
	seed := node{0}
	visited.seen(seed)
	rq.pushTail(seed)

	for rq.len() > 0 {
		if in.overBudget(st) {
			break
		}
		r := rq.popHead()
		st.StatesVisited++
		branch := r // the node whose Vertical neighbors we branch through
		if pr.ok(pr.value(r)) {
			// Horizontal walk: extend while feasible.
			for {
				h := sp.horizontal(r)
				if h == nil {
					break
				}
				st.StatesVisited++
				if !pr.ok(pr.value(h)) {
					branch = h
					break
				}
				r = h
				branch = r
			}
			solutions = append(solutions, r)
			mem.add(r.memBytes())
			if equalNode(branch, r) {
				// The chain ran off the edge of the space; no infeasible
				// successor to branch from.
				continue
			}
		}
		for _, v := range sp.vertical(branch) {
			if !visited.seen(v) {
				rq.pushHead(v)
			}
		}
	}
	return solutions
}

// dFindMaxDoi is the paper's D_FINDMAXDOI (Figure 9, second phase): pick
// the best-doi node among the recorded solutions, scanning in decreasing
// group size with the BestExpectedDoi early exit.
func dFindMaxDoi(sp *space, in *Instance, solutions []node, st *Stats) ([]int, float64) {
	bs := make([]node, len(solutions))
	copy(bs, solutions)
	sort.SliceStable(bs, func(i, j int) bool { return len(bs[i]) > len(bs[j]) })

	bound := in.topConj()
	maxDoi := -1.0
	var best []int
	kr := in.K
	for _, r := range bs {
		if len(r) < kr {
			kr = len(r)
			if maxDoi > bound[kr] {
				break
			}
		}
		st.StatesVisited++
		if d := sp.doiOf(in, r); d > maxDoi {
			maxDoi = d
			best = sp.toSet(r)
		}
	}
	if best == nil {
		return nil, 0
	}
	return best, maxDoi
}
