package core

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"cqp/internal/catalog"
	"cqp/internal/estimate"
	"cqp/internal/prefs"
	"cqp/internal/prefspace"
	"cqp/internal/sqlparse"
	"cqp/internal/testutil"
)

// randInstance builds a random valid instance: dois descending in (0,1),
// costs in [1, 100], shrinks in (0, 1].
func randInstance(t testing.TB, rng *rand.Rand, k int) *Instance {
	t.Helper()
	dois := make([]float64, k)
	costs := make([]float64, k)
	shrinks := make([]float64, k)
	for i := range dois {
		dois[i] = rng.Float64()*0.98 + 0.01
		costs[i] = 1 + rng.Float64()*99
		shrinks[i] = 0.05 + rng.Float64()*0.95
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(dois)))
	in, err := NewInstance(dois, costs, shrinks, 1, 1000)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestNewInstanceValidation(t *testing.T) {
	ok := []float64{0.9, 0.5}
	if _, err := NewInstance(ok, []float64{1}, []float64{1, 1}, 1, 10); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, err := NewInstance([]float64{0.5, 0.9}, []float64{1, 1}, []float64{1, 1}, 1, 10); err == nil {
		t.Error("non-descending dois should fail")
	}
	if _, err := NewInstance([]float64{1.5, 0.5}, []float64{1, 1}, []float64{1, 1}, 1, 10); err == nil {
		t.Error("doi > 1 should fail")
	}
	if _, err := NewInstance(ok, []float64{-1, 1}, []float64{1, 1}, 1, 10); err == nil {
		t.Error("negative cost should fail")
	}
	if _, err := NewInstance(ok, []float64{1, 1}, []float64{2, 1}, 1, 10); err == nil {
		t.Error("shrink > 1 should fail")
	}
	in, err := NewInstance(ok, []float64{3, 7}, []float64{0.5, 0.25}, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if in.BaseSize != 1000 {
		t.Error("default base size")
	}
	if err := in.Validate(); err != nil {
		t.Error(err)
	}
	// C sorts by cost descending: cost[1]=7 > cost[0]=3.
	if in.C[0] != 1 || in.C[1] != 0 {
		t.Errorf("C = %v", in.C)
	}
	// S sorts by shrink ascending: shrink[1]=0.25 < shrink[0]=0.5.
	if in.S[0] != 1 || in.S[1] != 0 {
		t.Errorf("S = %v", in.S)
	}
}

func TestSetParameterFunctions(t *testing.T) {
	in, _ := NewInstance([]float64{0.8, 0.5}, []float64{10, 5}, []float64{0.5, 0.2}, 3, 100)
	if got := in.SetCost(nil); got != 3 {
		t.Errorf("empty cost = %g, want base 3", got)
	}
	if got := in.SetCost([]int{0, 1}); got != 15 {
		t.Errorf("cost = %g", got)
	}
	if got := in.SetDoi([]int{0, 1}); math.Abs(got-0.9) > 1e-12 {
		t.Errorf("doi = %g", got)
	}
	if got := in.SetSize([]int{0, 1}); math.Abs(got-10) > 1e-9 {
		t.Errorf("size = %g", got)
	}
	if got := in.SupremeCost(); got != 15 {
		t.Errorf("supreme = %g", got)
	}
	empty := &Instance{BaseCost: 4}
	if empty.SupremeCost() != 4 {
		t.Error("empty supreme is base cost")
	}
}

func TestInstanceValidateCatchesCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	in := randInstance(t, rng, 6)
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := *in
	bad.C = append([]int(nil), in.C...)
	bad.C[0], bad.C[len(bad.C)-1] = bad.C[len(bad.C)-1], bad.C[0]
	if err := bad.Validate(); err == nil {
		t.Error("corrupted C should fail validation")
	}
	bad2 := *in
	bad2.Doi = append([]float64(nil), in.Doi...)
	bad2.Doi[0], bad2.Doi[len(bad2.Doi)-1] = bad2.Doi[len(bad2.Doi)-1], bad2.Doi[0]
	if err := bad2.Validate(); err == nil {
		t.Error("unsorted Doi should fail validation")
	}
}

func TestSolutionString(t *testing.T) {
	in, _ := NewInstance([]float64{0.8}, []float64{10}, []float64{0.5}, 3, 100)
	s := in.solutionFor([]int{0}, true)
	s.Stats.Algorithm = "X"
	if str := s.String(); str == "" {
		t.Error("empty String")
	}
}

func TestFromSpace(t *testing.T) {
	// Build through the real pipeline to cover FromSpace.
	db := testutil.MovieDB(256)
	est := estimate.New(catalog.MustBuild(db), 1)
	profile, err := prefs.ParseProfile(`
doi(MOVIE.mid = GENRE.mid) = 0.9
doi(GENRE.genre = 'comedy') = 0.7
doi(MOVIE.year >= 1980) = 0.6
`)
	if err != nil {
		t.Fatal(err)
	}
	q := sqlparse.MustParse(db.Schema(), "SELECT title FROM MOVIE")
	sp, err := prefspace.Build(q, profile, est, prefspace.Options{})
	if err != nil {
		t.Fatal(err)
	}
	in := FromSpace(sp)
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	if in.K != sp.K || in.BaseCost != sp.BaseCost || in.BaseSize != sp.BaseSize {
		t.Errorf("FromSpace mismatch: %+v vs space", in)
	}
	for i := range sp.P {
		if in.Doi[i] != sp.P[i].Doi || in.Cost[i] != sp.P[i].Cost || in.Shrink[i] != sp.P[i].Shrink {
			t.Errorf("parameter %d mismatch", i)
		}
	}
	// A skip-vector space synthesizes C and S locally.
	sp2, err := prefspace.Build(q, profile, est, prefspace.Options{
		SkipCostVector: true, SkipSizeVector: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	in2 := FromSpace(sp2)
	if err := in2.Validate(); err != nil {
		t.Errorf("synthesized vectors invalid: %v", err)
	}
}

func TestValidateLengthMismatches(t *testing.T) {
	in, _ := NewInstance([]float64{0.8, 0.5}, []float64{1, 2}, []float64{0.5, 0.5}, 1, 10)
	bad := *in
	bad.Doi = bad.Doi[:1]
	if bad.Validate() == nil {
		t.Error("short Doi must fail")
	}
	bad2 := *in
	bad2.S = nil
	if bad2.Validate() == nil {
		t.Error("missing S must fail")
	}
	bad3 := *in
	bad3.S = []int{1, 0}
	if in.Shrink[0] != in.Shrink[1] {
		if bad3.Validate() == nil && in.Shrink[1] > in.Shrink[0] {
			t.Error("mis-sorted S must fail")
		}
	}
}

func TestProblemBetterTieBreaks(t *testing.T) {
	p2 := Problem2(10)
	if !p2.better(0.5, 3, 0.5, 4) {
		t.Error("equal doi: cheaper wins under MaxDoi")
	}
	if p2.better(0.5, 4, 0.5, 3) {
		t.Error("equal doi: pricier must not win")
	}
	p4 := Problem4(0.5)
	if !p4.better(0.9, 3, 0.5, 3) {
		t.Error("equal cost: higher doi wins under MinCost")
	}
	if p4.better(0.4, 3, 0.5, 3) {
		t.Error("equal cost: lower doi must not win")
	}
}

func TestLogWeightEdges(t *testing.T) {
	if logWeight(0) != wCap {
		t.Error("zero factor caps")
	}
	if logWeight(1) != 0 {
		t.Error("unit factor weighs nothing")
	}
	if w := logWeight(1e-400); w != wCap {
		t.Error("underflow caps")
	}
	prev := wCap + 1
	for _, f := range []float64{1e-10, 0.01, 0.5, 0.9, 1} {
		w := logWeight(f)
		if w >= prev {
			t.Errorf("logWeight not strictly decreasing at %g", f)
		}
		prev = w
	}
}

func TestSizePrimaryAndSpace(t *testing.T) {
	in, _ := NewInstance(
		[]float64{0.9, 0.8, 0.7},
		[]float64{5, 10, 3},
		[]float64{0.5, 0.1, 0.9},
		2, 100)
	sp := in.sizeSpace()
	// S ascending size = ascending shrink: P indices by shrink: 1(0.1), 0(0.5), 2(0.9).
	if sp.vec[0] != 1 || sp.vec[1] != 0 || sp.vec[2] != 2 {
		t.Fatalf("size space vec = %v", sp.vec)
	}
	// Weights non-increasing.
	for i := 1; i < len(sp.w); i++ {
		if sp.w[i] > sp.w[i-1]+1e-12 {
			t.Fatal("size weights must be non-increasing")
		}
	}
	pr := sizePrimary(in, sp, 20)
	v := pr.value(node{0}) // most shrinking pref: size 100×0.1 = 10
	if math.Abs(v-10) > 1e-9 {
		t.Errorf("size value = %g", v)
	}
	if pr.ok(v) {
		t.Error("10 < smin 20 must be infeasible")
	}
	if got := pr.add(v, 1); math.Abs(got-5) > 1e-9 {
		t.Errorf("incremental size = %g (10 × shrink 0.5)", got)
	}
	// costOf/sizeOf/doiOf on the empty node return base parameters.
	if sp.costOf(in, nil) != in.BaseCost || sp.sizeOf(in, nil) != in.BaseSize || sp.doiOf(in, nil) != 0 {
		t.Error("empty-node parameters")
	}
}
