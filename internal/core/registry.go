package core

import "fmt"

// Problem2Solver is the signature shared by the five state-space algorithms
// of Section 5.2 (and EXHAUSTIVE): solve Problem 2 for the given cmax.
type Problem2Solver func(in *Instance, cmax float64) Solution

// Algorithms lists the paper's five algorithms in the order Figures 12–14
// plot them, keyed by the names the figures use.
var Algorithms = []struct {
	Name  string
	Solve Problem2Solver
	// Exact marks the provably correct algorithms (Theorems 2 and 3);
	// the rest are the heuristics Figure 14 grades.
	Exact bool
}{
	{"D_MaxDoi", DMaxDoi, true},
	{"D_SingleMaxDoi", DSingleMaxDoi, false},
	{"C_Boundaries", CBoundaries, true},
	{"C_MaxBounds", CMaxBounds, false},
	{"D_HeurDoi", DHeurDoi, false},
}

// SolverByName returns the named Problem-2 solver ("EXHAUSTIVE" and
// "BRANCH-BOUND" included).
func SolverByName(name string) (Problem2Solver, error) {
	switch name {
	case "EXHAUSTIVE":
		return Exhaustive, nil
	case "PORTFOLIO":
		return func(in *Instance, cmax float64) Solution {
			sol, _ := Portfolio(in, cmax)
			return sol
		}, nil
	case "BRANCH-BOUND":
		return func(in *Instance, cmax float64) Solution {
			return BranchBound(in, Problem2(cmax))
		}, nil
	}
	for _, a := range Algorithms {
		if a.Name == name {
			return a.Solve, nil
		}
	}
	return nil, fmt.Errorf("core: unknown algorithm %q", name)
}

// Solve dispatches a full CQP Problem (Table 1) to the appropriate engine:
//
//   - Problem 2 → the requested state-space algorithm (algo name, default
//     C-MAXBOUNDS);
//   - Problem 1 → S-space boundary search (Section 6 adaptation);
//   - Problem 3 → cost-space boundary search with the size window in the
//     second phase;
//   - Problems 4–6 → exact branch-and-bound (MinCostGreedy is available
//     separately as the fast heuristic).
func Solve(in *Instance, prob Problem, algo string) (Solution, error) {
	if err := prob.Validate(); err != nil {
		return Solution{}, err
	}
	switch {
	case prob.Objective == ObjMaxDoi && prob.CostMax > 0 && prob.SizeMin == 0 && prob.SizeMax == 0:
		// Problem 2.
		if algo == "" {
			algo = "C_MaxBounds"
		}
		solver, err := SolverByName(algo)
		if err != nil {
			return Solution{}, err
		}
		return surfaceFault(solver(in, prob.CostMax))
	case prob.Objective == ObjMaxDoi && prob.CostMax > 0:
		// Problem 3.
		return surfaceFault(windowedWithFallback(in, prob,
			CBoundariesP3(in, prob.CostMax, prob.SizeMin, prob.SizeMax)))
	case prob.Objective == ObjMaxDoi:
		// Problem 1.
		return surfaceFault(windowedWithFallback(in, prob,
			SBoundariesP1(in, prob.SizeMin, prob.SizeMax)))
	default:
		// Problems 4–6.
		return surfaceFault(BranchBound(in, prob))
	}
}

// surfaceFault turns a solution's recorded injected-fault abort into
// Solve's error return. The (partial) solution still rides along for
// callers that want the best-so-far answer despite the fault.
func surfaceFault(sol Solution) (Solution, error) {
	return sol, sol.Stats.Fault
}

// windowedWithFallback escalates a truncated, answerless windowed search to
// the branch-and-bound solver (same state budget, much stronger pruning):
// the paper's state-space adaptation stays primary, but a budget-starved
// run must not report infeasibility it has not proven.
func windowedWithFallback(in *Instance, prob Problem, sol Solution) Solution {
	if sol.Feasible || !sol.Stats.Truncated {
		return sol
	}
	fb := BranchBound(in, prob)
	fb.Stats.Algorithm = sol.Stats.Algorithm + "+BB-FALLBACK"
	fb.Stats.StatesVisited += sol.Stats.StatesVisited
	fb.Stats.Duration += sol.Stats.Duration
	fb.Stats.MemoHits += sol.Stats.MemoHits
	if sol.Stats.QueueHighWater > fb.Stats.QueueHighWater {
		fb.Stats.QueueHighWater = sol.Stats.QueueHighWater
	}
	if sol.Stats.PeakMemBytes > fb.Stats.PeakMemBytes {
		fb.Stats.PeakMemBytes = sol.Stats.PeakMemBytes
	}
	return fb
}
