package core

import (
	"fmt"
	"sort"
	"time"
)

// Solution is the outcome of one CQP optimization: the selected subset of P
// (as sorted P indices) with its parameters and run statistics.
type Solution struct {
	// Set holds the selected preference indices into P, sorted ascending.
	// Empty means "no preferences" — the original query.
	Set []int
	// Doi, Cost, Size are the parameters of Q ∧ Set under the instance's
	// estimation model.
	Doi  float64
	Cost float64
	Size float64
	// Feasible reports whether the solution satisfies the problem's
	// constraints. When no state (not even the empty one) is feasible,
	// Feasible is false and Set is empty.
	Feasible bool
	// Stats carries the run's instrumentation.
	Stats Stats
	// Portfolio carries the per-algorithm stats of a PORTFOLIO run (nil
	// for single-algorithm solves) so tracing can attach one child span
	// per raced algorithm.
	Portfolio []Stats
}

// solutionFor materializes a Solution for a P-index set.
func (in *Instance) solutionFor(set []int, feasible bool) Solution {
	s := append([]int(nil), set...)
	sort.Ints(s)
	return Solution{
		Set:      s,
		Doi:      in.SetDoi(s),
		Cost:     in.SetCost(s),
		Size:     in.SetSize(s),
		Feasible: feasible,
	}
}

// String renders the solution compactly.
func (s Solution) String() string {
	return fmt.Sprintf("set=%v doi=%.6f cost=%.1fms size=%.1f feasible=%v (%s %v, %d states, %d bytes)",
		s.Set, s.Doi, s.Cost, s.Size, s.Feasible,
		s.Stats.Algorithm, s.Stats.Duration.Round(time.Microsecond),
		s.Stats.StatesVisited, s.Stats.PeakMemBytes)
}
