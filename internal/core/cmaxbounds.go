package core

import "time"

// CMaxBounds is the paper's Algorithm C-MAXBOUNDS (Figure 7): a greedy
// first phase builds *maximal* boundaries — none a subset of or reachable
// from another — by seeding each round with the most expensive preference
// not yet examined and extending with the costliest additions that keep the
// state feasible (Horizontal2 transitions). The second phase is the same
// C_FINDMAXDOI as C-BOUNDARIES. The paper classifies C-MAXBOUNDS as
// heuristic (only C-BOUNDARIES and D-MAXDOI are provably exact); Figure 14
// measures its quality gap.
//
// Two documented divergences from the published pseudocode: (a) when a
// Vertical neighbor drops the seed preference we skip it and keep scanning
// rather than aborting the scan (the pseudocode's "exit for" would discard
// unrelated neighbors on the ordering's whim); (b) a feasible seed with no
// feasible extension is still recorded as a boundary (the pseudocode's
// R ≠ R0 test would lose single-preference solutions under tight bounds).
func CMaxBounds(in *Instance, cmax float64) Solution {
	return cMaxBoundsOn(in, in.costSpace(), cmax, "C-MAXBOUNDS")
}

func cMaxBoundsOn(in *Instance, sp *space, cmax float64, name string) Solution {
	start := time.Now()
	st := Stats{Algorithm: name}
	var mem memTracker

	var maxBounds []node
	byLen := make(map[int][]node)
	visited := newVisitedSetFor(in, &st, &mem)
	lastSize := 0
	pr := costPrimary(in, sp, cmax)
	for k := 0; k+lastSize < sp.K && !st.Truncated; k++ {
		got := findMaxBound(in, sp, k, pr, &maxBounds, byLen, visited, &st, &mem)
		if got > lastSize {
			lastSize = got
		}
	}
	set, _ := findMaxDoi(sp, in, maxBounds, &st, &mem)

	sol := in.solutionFor(set, true)
	if len(set) == 0 && in.BaseCost > cmax {
		sol.Feasible = false
	}
	st.Duration = time.Since(start)
	st.PeakMemBytes = mem.peak
	sol.Stats = st
	return sol
}

// findMaxBound is the paper's FINDMAXBOUND: grow maximal boundaries that
// contain the seed preference k. It returns the largest boundary size found
// this round (0 if none).
func findMaxBound(in *Instance, sp *space, k int, pr primary,
	maxBounds *[]node, byLen map[int][]node, visited *visitedSet, st *Stats, mem *memTracker) int {

	largest := 0
	seed := node{k}
	if visited.seen(seed) {
		return 0
	}
	rq := newNodeDeque(st, mem)
	rq.pushTail(seed)

	// prune is visited-only: every Vertical neighbor of a maximal boundary
	// lies below it by construction, so dominance pruning here would cut
	// the entire branch phase and collapse the algorithm to a greedy.
	prune := func(n node) bool { return visited.seen(n) }

	for rq.len() > 0 {
		if in.overBudget(st) {
			break
		}
		r := rq.popHead()
		st.StatesVisited++
		r0 := r
		if pr.ok(pr.value(r)) {
			// Greedy maximal extension: repeatedly add the most expensive
			// absent position that keeps the state feasible.
			for {
				extended := false
				cur := pr.value(r)
				sp.horizontal2From(r, 0, func(pos int) bool {
					st.StatesVisited++
					if pr.ok(pr.add(cur, pos)) {
						r = r.insert(pos)
						extended = true
						return false
					}
					return true
				})
				if !extended {
					break
				}
			}
			if !equalNode(r, r0) || len(r0) == 1 {
				*maxBounds = append(*maxBounds, r)
				byLen[len(r)] = append(byLen[len(r)], r)
				mem.add(r.memBytes())
				if len(r) > largest {
					largest = len(r)
				}
			}
		}
		for _, v := range sp.vertical(r) {
			if !v.contains(k) {
				continue // only build boundaries containing the seed
			}
			if !prune(v) {
				rq.pushHead(v)
			}
		}
	}
	return largest
}
