package core

import "cqp/internal/prefs"

// suffixBest precomputes, for every floor position f, the dois of the
// preferences at positions ≥ f sorted in decreasing order. bestBelow uses
// it for optimistic doi bounds. O(K²) space — K is a few dozen.
func (s *space) suffixBest(in *Instance) [][]float64 {
	out := make([][]float64, s.K+1)
	out[s.K] = nil
	for f := s.K - 1; f >= 0; f-- {
		d := in.Doi[s.vec[f]]
		prev := out[f+1]
		merged := make([]float64, 0, len(prev)+1)
		placed := false
		for _, x := range prev {
			if !placed && d >= x {
				merged = append(merged, d)
				placed = true
			}
			merged = append(merged, x)
		}
		if !placed {
			merged = append(merged, d)
		}
		out[f] = merged
	}
	return out
}

// bestBelow finds the maximum-doi state lying on or below the boundary r
// (same group size, componentwise position ≥ r) that satisfies accept.
// It enumerates canonical assignments y_0 < y_1 < … < y_{g−1} with
// y_i ≥ r[i], pruning with an optimistic doi bound, and returns the best
// accepted node (nil if none). Used by the windowed problem adapters
// (Problems 1, 3, 5, 6), where the second search phase must respect
// constraints beyond the space's own upper bound.
func bestBelow(in *Instance, sp *space, r node, suffixBest [][]float64,
	accept func(n node) bool, incumbent float64, st *Stats) (node, float64) {

	g := len(r)
	var best node
	bestDoi := incumbent

	cur := make(node, 0, g)
	acc := prefs.NewConjAccum()

	var rec func(slot, floor int)
	rec = func(slot, floor int) {
		if in.overBudget(st) {
			return
		}
		if slot == g {
			st.StatesVisited++
			if acc.Doi() > bestDoi && accept(cur) {
				bestDoi = acc.Doi()
				best = cloneNode(cur)
			}
			return
		}
		lo := r[slot]
		if floor > lo {
			lo = floor
		}
		// Optimistic bound: the best g−slot dois available at ≥ lo.
		need := g - slot
		cands := suffixBest[lo]
		if len(cands) < need {
			return
		}
		prod := 1 - acc.Doi()
		for i := 0; i < need; i++ {
			prod *= 1 - cands[i]
		}
		if 1-prod <= bestDoi+1e-15 {
			return
		}
		for y := lo; y <= sp.K-need; y++ {
			cur = append(cur, y)
			acc.Add(in.Doi[sp.vec[y]])
			rec(slot+1, y+1)
			acc.Remove(in.Doi[sp.vec[y]])
			cur = cur[:len(cur)-1]
		}
	}
	rec(0, 0)
	return best, bestDoi
}
