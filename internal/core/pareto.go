package core

import (
	"sort"
	"time"
)

// This file implements the paper's stated future work (Section 8):
// "studying query personalization as a multi-objective constrained
// optimization problem, where more than one query parameter may be
// optimized simultaneously."
//
// A personalized query dominates another when it is at least as good on
// all three parameters (doi ↑, cost ↓, size within the caller's preferred
// direction) and strictly better on one. ParetoFront enumerates the
// non-dominated personalized queries under optional range constraints —
// the menu a context policy can pick from instead of committing to one of
// Table 1's single-objective problems.

// ParetoPoint is one non-dominated personalized query.
type ParetoPoint struct {
	Set  []int
	Doi  float64
	Cost float64
	Size float64
}

// dominates reports whether a dominates b: no worse on doi and cost, and
// strictly better on at least one. Size is not part of the dominance
// relation by default — smaller is not universally better (the paper's
// size parameter is windowed, not optimized) — but callers can fold it in
// by constraining the front.
func dominates(a, b ParetoPoint) bool {
	if a.Doi < b.Doi-1e-12 || a.Cost > b.Cost+1e-9 {
		return false
	}
	return a.Doi > b.Doi+1e-12 || a.Cost < b.Cost-1e-9
}

// ParetoOptions constrains and sizes the front enumeration.
type ParetoOptions struct {
	// CostMax, SizeMin, SizeMax filter candidates before dominance
	// comparison (0 = unbounded).
	CostMax float64
	SizeMin float64
	SizeMax float64
	// MaxPoints caps the returned front (0 = no cap); points are kept in
	// increasing cost order, thinned evenly when over the cap.
	MaxPoints int
}

// ParetoFront enumerates the doi/cost Pareto frontier of personalized
// queries by branch and bound. The search walks preferences in doi order;
// a subtree is cut when even its doi-maximal completion cannot dominate
// into the current front at the subtree's minimal cost. Exact for the
// frontier under the estimation model; exponential in the worst case like
// every exact CQP solver, bounded by Instance.StateBudget.
func ParetoFront(in *Instance, opt ParetoOptions) ([]ParetoPoint, Stats) {
	start := time.Now()
	st := Stats{Algorithm: "PARETO"}

	suffix := suffixConj(in)
	var front []ParetoPoint

	feasible := func(cost, size float64) bool {
		if opt.CostMax > 0 && cost > opt.CostMax+1e-9 {
			return false
		}
		if opt.SizeMin > 0 && size < opt.SizeMin-1e-9 {
			return false
		}
		if opt.SizeMax > 0 && size > opt.SizeMax+1e-9 {
			return false
		}
		return true
	}

	// insert keeps front sorted by cost ascending and non-dominated.
	insert := func(p ParetoPoint) {
		for _, q := range front {
			if dominates(q, p) || (q.Doi == p.Doi && q.Cost == p.Cost) {
				return
			}
		}
		kept := front[:0]
		for _, q := range front {
			if !dominates(p, q) {
				kept = append(kept, q)
			}
		}
		front = append(kept, p)
		sort.Slice(front, func(i, j int) bool { return front[i].Cost < front[j].Cost })
	}

	// bestDoiAtOrBelow returns the highest doi the front achieves at cost
	// ≤ c (front is cost-sorted; doi increases along it by construction of
	// non-dominance).
	bestDoiAtOrBelow := func(c float64) float64 {
		best := -1.0
		for _, q := range front {
			if q.Cost <= c+1e-9 && q.Doi > best {
				best = q.Doi
			}
		}
		return best
	}

	cur := make([]int, 0, in.K)
	var rec func(k int, doiProd, cost, size float64)
	rec = func(k int, doiProd, cost, size float64) {
		if in.overBudget(&st) {
			return
		}
		st.StatesVisited++
		stateCost := cost
		if len(cur) == 0 {
			stateCost = in.BaseCost
		}
		if feasible(stateCost, size) {
			insert(ParetoPoint{
				Set:  append([]int(nil), cur...),
				Doi:  1 - doiProd,
				Cost: stateCost,
				Size: size,
			})
		}
		if k == in.K {
			return
		}
		// Prune: the doi-maximal completion of this subtree costs at least
		// `cost` (additions only add cost); if the front already achieves
		// that doi at or below this cost, nothing here can join the front.
		maxDoi := 1 - doiProd*(1-suffix[k])
		if bestDoiAtOrBelow(cost) >= maxDoi-1e-12 {
			return
		}
		if opt.CostMax > 0 && cost+in.Cost[k] > opt.CostMax+1e-9 {
			// Including k is infeasible, but cheaper later preferences may
			// fit: only the exclude branch survives.
			rec(k+1, doiProd, cost, size)
			return
		}
		// Include k.
		cur = append(cur, k)
		rec(k+1, doiProd*(1-in.Doi[k]), cost+in.Cost[k], size*in.Shrink[k])
		cur = cur[:len(cur)-1]
		// Exclude k.
		rec(k+1, doiProd, cost, size)
	}
	rec(0, 1, 0, in.BaseSize)

	if opt.MaxPoints > 0 && len(front) > opt.MaxPoints {
		thinned := make([]ParetoPoint, 0, opt.MaxPoints)
		step := float64(len(front)-1) / float64(opt.MaxPoints-1)
		for i := 0; i < opt.MaxPoints; i++ {
			thinned = append(thinned, front[int(float64(i)*step+0.5)])
		}
		front = thinned
	}
	st.Duration = time.Since(start)
	return front, st
}

// KneePoint picks the front's knee: the point maximizing doi-per-log-cost
// improvement over the cheapest point — a reasonable single answer when
// the context gives no explicit bounds.
func KneePoint(front []ParetoPoint) (ParetoPoint, bool) {
	i, ok := KneeIndex(front)
	if !ok {
		return ParetoPoint{}, false
	}
	return front[i], true
}

// KneeIndex returns the index of the front's knee, so callers can mark the
// knee by position instead of comparing float parameters for equality.
func KneeIndex(front []ParetoPoint) (int, bool) {
	if len(front) == 0 {
		return 0, false
	}
	if len(front) == 1 {
		return 0, true
	}
	base := front[0]
	last := front[len(front)-1]
	costSpan := last.Cost - base.Cost
	doiSpan := last.Doi - base.Doi
	if costSpan <= 0 || doiSpan <= 0 {
		return len(front) - 1, true
	}
	bestIdx, bestScore := 0, -1.0
	for i, p := range front {
		// Normalized distance above the chord from cheapest to best.
		x := (p.Cost - base.Cost) / costSpan
		y := (p.Doi - base.Doi) / doiSpan
		if score := y - x; score > bestScore {
			bestIdx, bestScore = i, score
		}
	}
	return bestIdx, true
}
