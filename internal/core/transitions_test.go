package core

import (
	"math/rand"
	"testing"
)

// figure4Space builds a 4-preference cost space with distinct costs, as in
// Figure 4 / Table 3 of the paper. Costs are assigned so that C is the
// identity: c1 is the most expensive preference.
func figure4Space(t *testing.T) (*Instance, *space) {
	t.Helper()
	in, err := NewInstance(
		[]float64{0.9, 0.8, 0.7, 0.6},
		[]float64{40, 30, 20, 10},
		[]float64{0.9, 0.8, 0.7, 0.6},
		1, 1000)
	if err != nil {
		t.Fatal(err)
	}
	return in, in.costSpace()
}

func nodesEqual(a []node, b [][]int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !equalNode(a[i], node(b[i])) {
			return false
		}
	}
	return true
}

// TestFigure4Transitions reproduces the paper's worked example:
// Horizontal(c1c3) = c1c3c4 and Vertical(c1c3) = {c1c4, c2c3}.
func TestFigure4Transitions(t *testing.T) {
	_, sp := figure4Space(t)
	c1c3 := node{0, 2}
	h := sp.horizontal(c1c3)
	if !equalNode(h, node{0, 2, 3}) {
		t.Errorf("Horizontal(c1c3) = %v, want c1c3c4", h)
	}
	v := sp.vertical(c1c3)
	// Vertical neighbors: {c1,c4} (cost 50) and {c2,c3} (cost 50) — equal
	// cost here, so both orders are valid; check the set.
	if len(v) != 2 {
		t.Fatalf("Vertical(c1c3) = %v", v)
	}
	found := map[string]bool{}
	for _, n := range v {
		if equalNode(n, node{0, 3}) {
			found["c1c4"] = true
		}
		if equalNode(n, node{1, 2}) {
			found["c2c3"] = true
		}
	}
	if !found["c1c4"] || !found["c2c3"] {
		t.Errorf("Vertical(c1c3) = %v, want {c1c4, c2c3}", v)
	}
	// Horizontal at the edge of the space.
	if sp.horizontal(node{0, 3}) != nil {
		t.Error("Horizontal(c1c4) must not exist (c4 is last)")
	}
	// Horizontal of the empty node starts the space.
	if h := sp.horizontal(node{}); !equalNode(h, node{0}) {
		t.Errorf("Horizontal({}) = %v", h)
	}
	// Horizontal2(c2) = {c1c2, c2c3, c2c4} in decreasing cost order.
	h2 := sp.horizontal2(node{1})
	if !nodesEqual(h2, [][]int{{0, 1}, {1, 2}, {1, 3}}) {
		t.Errorf("Horizontal2(c2) = %v", h2)
	}
}

// TestTable4Directions verifies the documented monotone effects of
// cost-space transitions: Horizontal increases cost and doi; Vertical
// decreases cost (Table 4).
func TestTable4Directions(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 100; trial++ {
		in := randInstance(t, rng, 8)
		sp := in.costSpace()
		n := randomNode(rng, sp.K)
		if len(n) == 0 {
			continue
		}
		c0 := sp.costOf(in, n)
		d0 := sp.doiOf(in, n)
		if h := sp.horizontal(n); h != nil {
			if sp.costOf(in, h) < c0-1e-9 {
				t.Fatalf("Horizontal decreased cost: %v -> %v", n, h)
			}
			if sp.doiOf(in, h) < d0-1e-12 {
				t.Fatalf("Horizontal decreased doi: %v -> %v", n, h)
			}
		}
		for _, v := range sp.vertical(n) {
			if sp.costOf(in, v) > c0+1e-9 {
				t.Fatalf("Vertical increased cost: %v -> %v", n, v)
			}
		}
	}
}

// TestTable5Directions verifies doi-space directions: Horizontal increases
// doi and cost; Vertical decreases doi (cost is unknown — not checked).
func TestTable5Directions(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		in := randInstance(t, rng, 8)
		sp := in.doiSpace()
		n := randomNode(rng, sp.K)
		if len(n) == 0 {
			continue
		}
		c0 := sp.costOf(in, n)
		d0 := sp.doiOf(in, n)
		if h := sp.horizontal(n); h != nil {
			if sp.doiOf(in, h) < d0-1e-12 {
				t.Fatalf("Horizontal decreased doi")
			}
			if sp.costOf(in, h) < c0-1e-9 {
				t.Fatalf("Horizontal decreased cost")
			}
		}
		for _, v := range sp.vertical(n) {
			if sp.doiOf(in, v) > d0+1e-12 {
				t.Fatalf("doi-space Vertical increased doi: %v -> %v", n, v)
			}
		}
	}
}

// TestProposition1 checks that every transition destination is a valid
// state: sorted, duplicate-free, within the space.
func TestProposition1(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 200; trial++ {
		in := randInstance(t, rng, 10)
		for _, sp := range []*space{in.costSpace(), in.doiSpace(), in.sizeSpace()} {
			n := randomNode(rng, sp.K)
			var dests []node
			if h := sp.horizontal(n); h != nil {
				dests = append(dests, h)
			}
			dests = append(dests, sp.vertical(n)...)
			dests = append(dests, sp.horizontal2(n)...)
			for _, d := range dests {
				checkValidNode(t, d, sp.K)
			}
		}
	}
}

func checkValidNode(t *testing.T, n node, k int) {
	t.Helper()
	for i, p := range n {
		if p < 0 || p >= k {
			t.Fatalf("position %d out of range in %v", p, n)
		}
		if i > 0 && n[i-1] >= p {
			t.Fatalf("node not strictly sorted: %v", n)
		}
	}
}

func randomNode(rng *rand.Rand, k int) node {
	var n node
	for i := 0; i < k; i++ {
		if rng.Intn(3) == 0 {
			n = append(n, i)
		}
	}
	return n
}

func TestNodeOps(t *testing.T) {
	n := node{1, 4, 7}
	if !n.contains(4) || n.contains(5) {
		t.Error("contains")
	}
	if got := n.insert(5); !equalNode(got, node{1, 4, 5, 7}) {
		t.Errorf("insert = %v", got)
	}
	if got := n.insert(0); !equalNode(got, node{0, 1, 4, 7}) {
		t.Errorf("insert head = %v", got)
	}
	if got := n.insert(9); !equalNode(got, node{1, 4, 7, 9}) {
		t.Errorf("insert tail = %v", got)
	}
	if got := n.replaceAt(1, 5); !equalNode(got, node{1, 5, 7}) {
		t.Errorf("replaceAt = %v", got)
	}
	if got := n.replaceAt(0, 6); !equalNode(got, node{4, 6, 7}) {
		t.Errorf("replaceAt resort = %v", got)
	}
	if !equalNode(cloneNode(n), n) {
		t.Error("clone")
	}
	if n.hash() == (node{1, 4}).hash() && n.hash() == (node{1, 4, 8}).hash() {
		t.Error("suspicious hash collisions")
	}
	if !dominatedBy(node{2, 5}, node{1, 4}) || dominatedBy(node{0, 5}, node{1, 4}) {
		t.Error("dominatedBy")
	}
	if dominatedBy(node{1}, node{1, 2}) {
		t.Error("dominatedBy must require equal cardinality")
	}
}

func TestDequeOrdering(t *testing.T) {
	var mem memTracker
	var st Stats
	d := newNodeDeque(&st, &mem)
	d.pushTail(node{1})
	d.pushTail(node{2})
	d.pushHead(node{0})
	if d.len() != 3 {
		t.Fatalf("len = %d", d.len())
	}
	want := []int{0, 1, 2}
	for _, w := range want {
		if got := d.popHead(); got[0] != w {
			t.Fatalf("pop = %v, want %d", got, w)
		}
	}
	if d.len() != 0 {
		t.Error("not empty")
	}
	if mem.cur != 0 || mem.peak <= 0 {
		t.Errorf("mem accounting cur=%d peak=%d", mem.cur, mem.peak)
	}
}
