package core

import (
	"math/rand"
	"strings"
	"testing"
)

// TestStatsAccountingAllAlgorithms checks every Problem-2 algorithm
// populates the full Stats record: states, peak memory, and — for the
// queue-driven searches — the RQ high-water mark.
func TestStatsAccountingAllAlgorithms(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	in := randInstance(t, rng, 12)
	cmax := in.SupremeCost() * 0.5
	for _, a := range Algorithms {
		sol := a.Solve(in, cmax)
		st := sol.Stats
		if st.StatesVisited <= 0 {
			t.Errorf("%s: StatesVisited = %d", a.Name, st.StatesVisited)
		}
		if st.PeakMemBytes <= 0 {
			t.Errorf("%s: PeakMemBytes = %d", a.Name, st.PeakMemBytes)
		}
		if st.Truncated {
			t.Errorf("%s: truncated under an ample budget", a.Name)
		}
		if st.MemoHits < 0 || st.QueueHighWater < 0 {
			t.Errorf("%s: negative accounting: %+v", a.Name, st)
		}
		// All but the greedy heuristic drive the paper's RQ deque.
		if a.Name != "D_HeurDoi" && st.QueueHighWater == 0 {
			t.Errorf("%s: queue high-water never recorded", a.Name)
		}
	}
}

// TestMemoHitsCounted verifies the visited-set memo registers re-encounters:
// with equal per-preference parameters, many search orders reach the same
// set, so a run over such an instance must log hits — and the memo-disabled
// run must log none.
func TestMemoHitsCounted(t *testing.T) {
	k := 8
	dois := make([]float64, k)
	costs := make([]float64, k)
	shr := make([]float64, k)
	for i := range dois {
		dois[i] = 0.5
		costs[i] = 10
		shr[i] = 0.5
	}
	in, err := NewInstance(dois, costs, shr, 1, 1000)
	if err != nil {
		t.Fatal(err)
	}
	cmax := in.SupremeCost() * 0.5
	sol := CBoundaries(in, cmax)
	if sol.Stats.MemoHits == 0 {
		t.Errorf("no memo hits on a maximally symmetric instance: %+v", sol.Stats)
	}
	noMemo := *in
	noMemo.DisableMemo = true
	if got := CBoundaries(&noMemo, cmax); got.Stats.MemoHits != 0 {
		t.Errorf("memo disabled but %d hits recorded", got.Stats.MemoHits)
	}
}

// TestTruncatedExactlyWhenBudgetHit: Truncated must be set when a tiny
// StateBudget cuts the search short, and clear when the budget is ample —
// for every algorithm that enumerates states.
func TestTruncatedExactlyWhenBudgetHit(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for _, a := range Algorithms {
		in := randInstance(t, rng, 12)
		cmax := in.SupremeCost() * 0.6

		in.StateBudget = 0 // unlimited
		free := a.Solve(in, cmax)
		if free.Stats.Truncated {
			t.Errorf("%s: truncated without a budget", a.Name)
		}

		in.StateBudget = 2
		tight := a.Solve(in, cmax)
		// The budget is a soft cap checked at round boundaries, so a run
		// may overshoot it — but a search that needed far more states than
		// the budget must come back flagged.
		if free.Stats.StatesVisited > in.StateBudget && !tight.Stats.Truncated {
			t.Errorf("%s: budget hit (%d > %d) but Truncated not set",
				a.Name, free.Stats.StatesVisited, in.StateBudget)
		}
	}
}

// TestPortfolioStatsAggregation checks the racer's aggregate Stats: states
// and memo hits sum across the five algorithms, peak memory and queue
// high-water take the max, and the per-algorithm breakdown rides along on
// Solution.Portfolio.
func TestPortfolioStatsAggregation(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	in := randInstance(t, rng, 10)
	cmax := in.SupremeCost() * 0.5
	sol, stats := Portfolio(in, cmax)

	if len(sol.Portfolio) != len(Algorithms) {
		t.Fatalf("Solution.Portfolio has %d entries, want %d", len(sol.Portfolio), len(Algorithms))
	}
	var states, memo, highWater int
	var peak int64
	for i, st := range stats {
		if sol.Portfolio[i] != st {
			t.Errorf("Portfolio[%d] diverges from returned stats", i)
		}
		states += st.StatesVisited
		memo += st.MemoHits
		if st.QueueHighWater > highWater {
			highWater = st.QueueHighWater
		}
		if st.PeakMemBytes > peak {
			peak = st.PeakMemBytes
		}
	}
	agg := sol.Stats
	if agg.StatesVisited != states {
		t.Errorf("aggregate states %d, want sum %d", agg.StatesVisited, states)
	}
	if agg.MemoHits != memo {
		t.Errorf("aggregate memo hits %d, want sum %d", agg.MemoHits, memo)
	}
	if agg.PeakMemBytes != peak {
		t.Errorf("aggregate peak %d, want max %d", agg.PeakMemBytes, peak)
	}
	if agg.QueueHighWater != highWater {
		t.Errorf("aggregate high-water %d, want max %d", agg.QueueHighWater, highWater)
	}
	if !strings.HasPrefix(agg.Algorithm, "PORTFOLIO(") {
		t.Errorf("aggregate algorithm = %q", agg.Algorithm)
	}
}
