package core

import (
	"fmt"
	"math"
)

// Objective selects which query parameter a CQP problem optimizes.
type Objective uint8

// The two objectives of Table 1.
const (
	// ObjMaxDoi maximizes the degree of interest (Problems 1–3).
	ObjMaxDoi Objective = iota
	// ObjMinCost minimizes execution cost (Problems 4–6).
	ObjMinCost
)

// String names the objective.
func (o Objective) String() string {
	if o == ObjMinCost {
		return "MIN cost"
	}
	return "MAX doi"
}

// Problem is one instantiation of the CQP family (Table 1): an objective
// plus range constraints on the remaining parameters. Zero-valued bounds
// are absent. The paper's default lower size bound ("empty answers are
// always undesirable") is expressed by SizeMin = 1.
type Problem struct {
	Objective Objective
	// CostMax bounds execution cost in milliseconds (0 = unbounded).
	CostMax float64
	// DoiMin bounds the degree of interest from below (0 = unbounded).
	DoiMin float64
	// SizeMin and SizeMax window the result size (0 = unbounded).
	SizeMin float64
	SizeMax float64
}

// The six problems of Table 1.

// Problem1 maximizes doi subject to smin ≤ size ≤ smax.
func Problem1(smin, smax float64) Problem {
	return Problem{Objective: ObjMaxDoi, SizeMin: smin, SizeMax: smax}
}

// Problem2 maximizes doi subject to cost ≤ cmax.
func Problem2(cmax float64) Problem {
	return Problem{Objective: ObjMaxDoi, CostMax: cmax}
}

// Problem3 maximizes doi subject to cost ≤ cmax and smin ≤ size ≤ smax.
func Problem3(cmax, smin, smax float64) Problem {
	return Problem{Objective: ObjMaxDoi, CostMax: cmax, SizeMin: smin, SizeMax: smax}
}

// Problem4 minimizes cost subject to doi ≥ dmin.
func Problem4(dmin float64) Problem {
	return Problem{Objective: ObjMinCost, DoiMin: dmin}
}

// Problem5 minimizes cost subject to doi ≥ dmin and smin ≤ size ≤ smax.
func Problem5(dmin, smin, smax float64) Problem {
	return Problem{Objective: ObjMinCost, DoiMin: dmin, SizeMin: smin, SizeMax: smax}
}

// Problem6 minimizes cost subject to smin ≤ size ≤ smax.
func Problem6(smin, smax float64) Problem {
	return Problem{Objective: ObjMinCost, SizeMin: smin, SizeMax: smax}
}

// Validate rejects meaningless instantiations (Section 4.1's discussion of
// which problems are meaningful).
func (p Problem) Validate() error {
	if p.CostMax < 0 || p.DoiMin < 0 || p.SizeMin < 0 || p.SizeMax < 0 {
		return fmt.Errorf("core: negative bound in %+v", p)
	}
	if p.DoiMin > 1 {
		return fmt.Errorf("core: doi lower bound %g exceeds 1", p.DoiMin)
	}
	if p.SizeMin > 0 && p.SizeMax > 0 && p.SizeMin > p.SizeMax {
		return fmt.Errorf("core: empty size window [%g, %g]", p.SizeMin, p.SizeMax)
	}
	if p.Objective == ObjMaxDoi && p.CostMax == 0 && p.SizeMin == 0 && p.SizeMax == 0 {
		return fmt.Errorf("core: unconstrained doi maximization is the degenerate all-preferences query")
	}
	if p.Objective == ObjMinCost && p.DoiMin == 0 && p.SizeMin == 0 && p.SizeMax == 0 {
		return fmt.Errorf("core: unconstrained cost minimization is the degenerate empty personalization")
	}
	return nil
}

// Feasible checks the constraints against concrete parameter values.
func (p Problem) Feasible(doi, cost, size float64) bool {
	if p.CostMax > 0 && cost > p.CostMax+1e-9 {
		return false
	}
	if p.DoiMin > 0 && doi < p.DoiMin-1e-12 {
		return false
	}
	if p.SizeMin > 0 && size < p.SizeMin-1e-9 {
		return false
	}
	if p.SizeMax > 0 && size > p.SizeMax+1e-9 {
		return false
	}
	return true
}

// better reports whether (doi1, cost1) improves on (doi0, cost0) under the
// problem's objective, with the other parameter as tie-break.
func (p Problem) better(doi1, cost1, doi0, cost0 float64) bool {
	if p.Objective == ObjMaxDoi {
		if doi1 != doi0 {
			return doi1 > doi0
		}
		return cost1 < cost0
	}
	if cost1 != cost0 {
		return cost1 < cost0
	}
	return doi1 > doi0
}

// String renders the problem as in Table 1.
func (p Problem) String() string {
	s := p.Objective.String()
	if p.CostMax > 0 {
		s += fmt.Sprintf(", cost ≤ %g", p.CostMax)
	}
	if p.DoiMin > 0 {
		s += fmt.Sprintf(", doi ≥ %g", p.DoiMin)
	}
	if p.SizeMin > 0 || p.SizeMax > 0 {
		lo, hi := p.SizeMin, p.SizeMax
		if hi == 0 {
			hi = math.Inf(1)
		}
		s += fmt.Sprintf(", %g ≤ size ≤ %g", lo, hi)
	}
	return s
}
