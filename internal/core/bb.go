package core

import (
	"time"

	"cqp/internal/prefs"
)

// BranchBound is the exact reference solver for the full CQP family: a
// depth-first branch-and-bound over subsets of P (in doi order) that
// handles every Problem of Table 1. It exploits the same monotone partial
// orders as the state-space algorithms (Formulas 4, 7, 8) for pruning:
//
//   - cost only grows with additions → subtrees beyond CostMax are cut;
//   - size only shrinks with additions → subtrees already below SizeMin
//     are cut;
//   - doi only grows, bounded by conjoining all remaining preferences →
//     subtrees that cannot reach DoiMin, or cannot beat the incumbent
//     under ObjMaxDoi, are cut;
//   - under ObjMinCost a partial sum at or above the incumbent is cut.
//
// The paper introduces its algorithms because exhaustive search is O(2^K);
// BranchBound is the tightened exhaustive baseline used to validate them
// and to solve Problems 1 and 3–6 exactly (Section 6 sketches, but does
// not fully specify, the adapted state-space variants).
func BranchBound(in *Instance, prob Problem) Solution {
	start := time.Now()
	st := Stats{Algorithm: "BRANCH-BOUND"}

	suffix := suffixConj(in) // suffix[k] = doi of preferences k..K−1
	// minFutureShrink[k] = Π Shrink[k..K−1]: the smallest factor the
	// remaining preferences can apply (they all shrink).
	minFutureShrink := make([]float64, in.K+1)
	minFutureShrink[in.K] = 1
	for k := in.K - 1; k >= 0; k-- {
		minFutureShrink[k] = minFutureShrink[k+1] * in.Shrink[k]
	}

	bestFound := false
	var bestSet []int
	var bestDoi, bestCost float64

	consider := func(set []int, doi, cost, size float64) {
		st.StatesVisited++
		if !prob.Feasible(doi, cost, size) {
			return
		}
		if !bestFound || prob.better(doi, cost, bestDoi, bestCost) {
			bestFound = true
			bestDoi, bestCost = doi, cost
			bestSet = append(bestSet[:0], set...)
		}
	}

	// The empty personalization (the original query) is always a candidate.
	consider(nil, 0, in.BaseCost, in.BaseSize)

	acc := prefs.NewConjAccum()
	cur := make([]int, 0, in.K)
	var rec func(k int, cost, size float64)
	rec = func(k int, cost, size float64) {
		if k == in.K || in.overBudget(&st) {
			return
		}
		// Bound: best doi any completion can reach.
		maxDoi := 1 - (1-acc.Doi())*(1-suffix[k])
		if prob.DoiMin > 0 && maxDoi < prob.DoiMin-1e-12 {
			return
		}
		if prob.Objective == ObjMaxDoi && bestFound && maxDoi <= bestDoi+1e-15 {
			return
		}
		// Bound: size can only shrink; if even taking everything stays
		// above SizeMax, no completion is feasible.
		if prob.SizeMax > 0 && size*minFutureShrink[k] > prob.SizeMax+1e-9 {
			return
		}
		// Branch 1: include preference k.
		nc := cost + in.Cost[k]
		ns := size * in.Shrink[k]
		costOK := prob.CostMax == 0 || nc <= prob.CostMax+1e-9
		sizeOK := prob.SizeMin == 0 || ns >= prob.SizeMin-1e-9
		minCostOK := prob.Objective != ObjMinCost || !bestFound || nc < bestCost
		if costOK && sizeOK && minCostOK {
			cur = append(cur, k)
			acc.Add(in.Doi[k])
			consider(cur, acc.Doi(), nc, ns)
			rec(k+1, nc, ns)
			acc.Remove(in.Doi[k])
			cur = cur[:len(cur)-1]
		}
		// Branch 2: exclude preference k.
		rec(k+1, cost, size)
	}
	rec(0, 0, in.BaseSize)

	var sol Solution
	if bestFound {
		sol = in.solutionFor(bestSet, true)
	} else {
		sol = Solution{Feasible: false}
	}
	st.Duration = time.Since(start)
	sol.Stats = st
	return sol
}
