package core

// node is a state of a search space: a strictly increasing set of positions
// into the active pointer vector (C, D or S). The paper writes these as the
// index sets R.
type node []int

// cloneNode copies a node.
func cloneNode(n node) node {
	out := make(node, len(n))
	copy(out, n)
	return out
}

// contains reports whether the node includes the position (binary search —
// nodes are sorted and small).
func (n node) contains(pos int) bool {
	lo, hi := 0, len(n)
	for lo < hi {
		mid := (lo + hi) / 2
		switch {
		case n[mid] == pos:
			return true
		case n[mid] < pos:
			lo = mid + 1
		default:
			hi = mid
		}
	}
	return false
}

// replaceAt returns a new node with element at index idx replaced by pos,
// re-sorted. The caller guarantees pos is not already a member.
func (n node) replaceAt(idx, pos int) node {
	out := make(node, len(n))
	copy(out, n)
	out[idx] = pos
	// Re-sort locally: only one element moved, a single insertion pass fixes it.
	for i := idx; i+1 < len(out) && out[i] > out[i+1]; i++ {
		out[i], out[i+1] = out[i+1], out[i]
	}
	for i := idx; i-1 >= 0 && out[i] < out[i-1]; i-- {
		out[i], out[i-1] = out[i-1], out[i]
	}
	return out
}

// insert returns a new node with pos added (pos must not be a member).
func (n node) insert(pos int) node {
	out := make(node, len(n)+1)
	i := 0
	for ; i < len(n) && n[i] < pos; i++ {
		out[i] = n[i]
	}
	out[i] = pos
	copy(out[i+1:], n[i:])
	return out
}

// hash returns an FNV-1a hash of the node for visited sets. Nodes are
// canonical (sorted), so equal sets hash equally.
func (n node) hash() uint64 {
	var h uint64 = 1469598103934665603
	for _, p := range n {
		h ^= uint64(p) + 1 // +1 so position 0 contributes
		h *= 1099511628211
	}
	// Mix in the length to separate prefixes.
	h ^= uint64(len(n))
	h *= 1099511628211
	return h
}

// memBytes estimates the node's in-memory footprint for the paper's
// memory-requirements measurements (Figure 13): slice header + elements.
func (n node) memBytes() int64 { return 24 + 8*int64(len(n)) }

// equalNode reports set equality.
func equalNode(a, b node) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// dominatedBy reports whether a lies on or below b in the vertical order of
// a space: same cardinality and componentwise a[i] ≥ b[i] (a is reachable
// from b through Vertical transitions, hence cheaper in the space's
// parameter).
func dominatedBy(a, b node) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] < b[i] {
			return false
		}
	}
	return true
}
