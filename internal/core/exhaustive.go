package core

import (
	"time"

	"cqp/internal/prefs"
)

// MaxExhaustiveK bounds the instance size EXHAUSTIVE accepts: the paper
// notes the O(2^K) complexity that motivates the search algorithms.
const MaxExhaustiveK = 26

// Exhaustive solves Problem 2 (maximize doi subject to cost ≤ cmax) by
// complete subset enumeration with monotone cost pruning. It is the ground
// truth the search algorithms are validated against. Instances with
// K > MaxExhaustiveK are rejected by returning an infeasible Solution with
// a zero Stats — callers must size test instances accordingly.
func Exhaustive(in *Instance, cmax float64) Solution {
	start := time.Now()
	if in.K > MaxExhaustiveK {
		return Solution{Stats: Stats{Algorithm: "EXHAUSTIVE"}}
	}
	st := Stats{Algorithm: "EXHAUSTIVE"}

	// Enumerate in cost-ascending order so that exceeding cmax prunes the
	// whole subtree (Formula 7's monotonicity).
	order := make([]int, in.K)
	copy(order, in.C)
	// C is cost-descending; reverse for ascending.
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}

	best := []int(nil)
	bestDoi := -1.0
	cur := make([]int, 0, in.K)
	acc := prefs.NewConjAccum()

	var rec func(idx int, cost float64)
	rec = func(idx int, cost float64) {
		if in.overBudget(&st) {
			return
		}
		st.StatesVisited++
		if acc.Doi() > bestDoi {
			bestDoi = acc.Doi()
			best = append(best[:0], cur...)
		}
		for i := idx; i < in.K; i++ {
			p := order[i]
			nc := cost + in.Cost[p]
			if nc > cmax {
				// order is cost-ascending: all later choices cost at least
				// as much, and supersets only grow (Formula 7) — prune.
				break
			}
			cur = append(cur, p)
			acc.Add(in.Doi[p])
			rec(i+1, nc)
			acc.Remove(in.Doi[p])
			cur = cur[:len(cur)-1]
		}
	}
	rec(0, 0)

	sol := in.solutionFor(best, true)
	if len(best) == 0 && in.BaseCost > cmax {
		// Even the unpersonalized query violates the bound.
		sol.Feasible = false
	}
	st.Duration = time.Since(start)
	sol.Stats = st
	return sol
}
