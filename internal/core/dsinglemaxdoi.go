package core

import (
	"time"

	"cqp/internal/prefs"
)

// DSingleMaxDoi is the paper's Algorithm D-SINGLEMAXDOI (Figure 10): the
// C-MAXBOUNDS idea transplanted to the doi space, collapsed to a single
// phase. Each round seeds with the most interesting preference not yet
// examined, greedily grows maximal feasible states (Horizontal2 walks that
// always add the highest-doi preference that still fits the cost bound),
// branches through Vertical neighbors that retain the seed, and keeps the
// best doi seen. BestExpectedDoi — the doi of all preferences from the
// current seed onward — bounds what later rounds can achieve and stops the
// outer loop early.
func DSingleMaxDoi(in *Instance, cmax float64) Solution {
	start := time.Now()
	st := Stats{Algorithm: "D-SINGLEMAXDOI"}
	var mem memTracker
	sp := in.doiSpace()

	maxDoi := -1.0
	var best []int
	suffix := suffixConj(in)
	visited := newVisitedSetFor(in, &st, &mem)
	pr := costPrimary(in, sp, cmax)

	for k := 0; k < sp.K && maxDoi <= suffix[k] && !st.Truncated; k++ {
		seed := node{k}
		if visited.seen(seed) {
			continue
		}
		rq := newNodeDeque(&st, &mem)
		rq.pushTail(seed)
		for rq.len() > 0 {
			if in.overBudget(&st) {
				break
			}
			r := rq.popHead()
			st.StatesVisited++
			if pr.ok(pr.value(r)) {
				r = greedyGrow(sp, r, pr, &st)
				if d := sp.doiOf(in, r); d > maxDoi {
					maxDoi = d
					best = sp.toSet(r)
				}
				mem.add(r.memBytes())
			}
			for _, v := range sp.vertical(r) {
				if !v.contains(k) {
					continue
				}
				if visited.seen(v) {
					continue
				}
				rq.pushHead(v)
			}
		}
	}

	sol := in.solutionFor(best, true)
	if len(best) == 0 && in.BaseCost > cmax {
		sol.Feasible = false
	}
	st.Duration = time.Since(start)
	st.PeakMemBytes = mem.peak
	sol.Stats = st
	return sol
}

// greedyGrow extends a feasible node maximally: repeatedly add the absent
// position of highest space weight (highest doi in the D space, highest
// cost in the C space) whose addition keeps the primary constraint
// satisfied.
func greedyGrow(sp *space, r node, pr primary, st *Stats) node {
	for {
		extended := false
		cur := pr.value(r)
		sp.horizontal2From(r, 0, func(pos int) bool {
			st.StatesVisited++
			if pr.ok(pr.add(cur, pos)) {
				r = r.insert(pos)
				extended = true
				return false
			}
			return true
		})
		if !extended {
			return r
		}
	}
}

// suffixConj returns suffix[k] = doi of preferences k..K−1 together — the
// paper's BestExpectedDoi after examining seeds 0..k−1.
func suffixConj(in *Instance) []float64 {
	out := make([]float64, in.K+1)
	acc := prefs.NewConjAccum()
	for k := in.K - 1; k >= 0; k-- {
		acc.Add(in.Doi[k])
		out[k] = acc.Doi()
	}
	if in.K > 0 {
		out[in.K] = 0
	}
	return out
}
