package core

import (
	"math"
	"math/rand"
	"testing"
)

// bruteFront computes the exact doi/cost Pareto front by enumeration.
func bruteFront(in *Instance, opt ParetoOptions) []ParetoPoint {
	var all []ParetoPoint
	add := func(set []int) {
		p := ParetoPoint{
			Set:  append([]int(nil), set...),
			Doi:  in.SetDoi(set),
			Cost: in.SetCost(set),
			Size: in.SetSize(set),
		}
		if opt.CostMax > 0 && p.Cost > opt.CostMax+1e-9 {
			return
		}
		if opt.SizeMin > 0 && p.Size < opt.SizeMin-1e-9 {
			return
		}
		if opt.SizeMax > 0 && p.Size > opt.SizeMax+1e-9 {
			return
		}
		all = append(all, p)
	}
	add(nil)
	for mask := 1; mask < 1<<in.K; mask++ {
		var set []int
		for i := 0; i < in.K; i++ {
			if mask&(1<<i) != 0 {
				set = append(set, i)
			}
		}
		add(set)
	}
	var front []ParetoPoint
	for _, p := range all {
		dominated := false
		for _, q := range all {
			if dominates(q, p) {
				dominated = true
				break
			}
		}
		if !dominated {
			front = append(front, p)
		}
	}
	return front
}

// frontSignature reduces a front to its distinct (doi, cost) pairs.
func frontSignature(front []ParetoPoint) map[[2]float64]bool {
	sig := make(map[[2]float64]bool)
	for _, p := range front {
		sig[[2]float64{math.Round(p.Doi * 1e9), math.Round(p.Cost * 1e6)}] = true
	}
	return sig
}

// TestParetoMatchesBruteForce: the branch-and-bound front equals the
// enumerated front (as a set of distinct objective vectors) on random
// instances, with and without constraints.
func TestParetoMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 100; trial++ {
		k := 2 + rng.Intn(8)
		in := randInstance(t, rng, k)
		opt := ParetoOptions{}
		if rng.Intn(2) == 0 {
			opt.CostMax = in.SupremeCost() * (0.3 + 0.5*rng.Float64())
		}
		if rng.Intn(3) == 0 {
			opt.SizeMin = in.SetSize(allIndices(in.K)) * 2
		}
		got, _ := ParetoFront(in, opt)
		want := bruteFront(in, opt)
		gs, ws := frontSignature(got), frontSignature(want)
		if len(gs) != len(ws) {
			t.Fatalf("trial %d: front size %d, want %d\n got %v\nwant %v",
				trial, len(gs), len(ws), got, want)
		}
		for sig := range ws {
			if !gs[sig] {
				t.Fatalf("trial %d: missing front point %v", trial, sig)
			}
		}
	}
}

// TestParetoFrontProperties: the front is cost-sorted, mutually
// non-dominated, doi-increasing with cost, and contains the Problem-2
// optimum for every cmax.
func TestParetoFrontProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		in := randInstance(t, rng, 8)
		front, st := ParetoFront(in, ParetoOptions{})
		if st.Algorithm != "PARETO" || st.Duration <= 0 {
			t.Fatal("stats not populated")
		}
		for i := range front {
			for j := range front {
				if i != j && dominates(front[i], front[j]) {
					t.Fatalf("front contains dominated point: %v dominates %v", front[i], front[j])
				}
			}
			if i > 0 {
				if front[i].Cost < front[i-1].Cost {
					t.Fatal("front not cost-sorted")
				}
				if front[i].Doi <= front[i-1].Doi {
					t.Fatal("doi must increase along the cost-sorted front")
				}
			}
		}
		// Consistency with Problem 2: for random cmax values, the best
		// front point within budget matches the exhaustive optimum.
		for probe := 0; probe < 5; probe++ {
			cmax := in.SupremeCost() * (0.2 + 0.8*rng.Float64())
			want := Exhaustive(in, cmax)
			best := -1.0
			for _, p := range front {
				if p.Cost <= cmax+1e-9 && p.Doi > best {
					best = p.Doi
				}
			}
			if math.Abs(best-want.Doi) > 1e-9 {
				t.Fatalf("front misses P2 optimum at cmax %.1f: %v vs %v", cmax, best, want.Doi)
			}
		}
	}
}

func TestParetoMaxPoints(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	in := randInstance(t, rng, 10)
	full, _ := ParetoFront(in, ParetoOptions{})
	if len(full) < 4 {
		t.Skip("front too small to thin")
	}
	thin, _ := ParetoFront(in, ParetoOptions{MaxPoints: 3})
	if len(thin) != 3 {
		t.Fatalf("thinned to %d, want 3", len(thin))
	}
	// Extremes survive thinning.
	if thin[0].Cost != full[0].Cost || thin[len(thin)-1].Doi != full[len(full)-1].Doi {
		t.Errorf("thinning dropped the extremes: %v vs %v", thin, full)
	}
}

func TestParetoEmptyAndDegenerate(t *testing.T) {
	empty := &Instance{BaseCost: 5, BaseSize: 100}
	front, _ := ParetoFront(empty, ParetoOptions{})
	if len(front) != 1 || front[0].Doi != 0 {
		t.Fatalf("empty instance front: %v", front)
	}
	// Impossible constraints: empty front.
	in, _ := NewInstance([]float64{0.5}, []float64{10}, []float64{0.5}, 1, 100)
	none, _ := ParetoFront(in, ParetoOptions{CostMax: 0.5})
	if len(none) != 0 {
		t.Fatalf("infeasible constraints must empty the front: %v", none)
	}
}

func TestKneePoint(t *testing.T) {
	if _, ok := KneePoint(nil); ok {
		t.Error("empty front has no knee")
	}
	single := []ParetoPoint{{Doi: 0.5, Cost: 10}}
	if p, ok := KneePoint(single); !ok || p.Doi != 0.5 {
		t.Error("single-point knee")
	}
	// A front with an obvious knee: big doi jump early, diminishing after.
	front := []ParetoPoint{
		{Doi: 0.10, Cost: 10},
		{Doi: 0.80, Cost: 20},
		{Doi: 0.85, Cost: 60},
		{Doi: 0.88, Cost: 100},
	}
	p, ok := KneePoint(front)
	if !ok || p.Cost != 20 {
		t.Errorf("knee = %v, want the 20-cost point", p)
	}
	rng := rand.New(rand.NewSource(44))
	in := randInstance(t, rng, 8)
	f, _ := ParetoFront(in, ParetoOptions{})
	if p, ok := KneePoint(f); ok {
		found := false
		for _, q := range f {
			if q.Cost == p.Cost && q.Doi == p.Doi {
				found = true
			}
		}
		if !found {
			t.Error("knee must be a member of the front")
		}
	}
}

// TestParetoBudget: truncation returns a valid partial front.
func TestParetoBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	in := randInstance(t, rng, 14)
	in.StateBudget = 50
	front, st := ParetoFront(in, ParetoOptions{})
	if !st.Truncated {
		t.Skip("budget not reached")
	}
	for i := range front {
		for j := range front {
			if i != j && dominates(front[i], front[j]) {
				t.Fatal("truncated front contains dominated points")
			}
		}
	}
}
