package core

import "time"

// DHeurDoi is the paper's Algorithm D-HEURDOI (Figure 11): the most
// aggressive heuristic. Each round seeds with the next preference in doi
// order and (a) greedily grows it to a maximal feasible state; (b) instead
// of branching through a queue of Vertical alternatives, it repeatedly
// drops the last-added (cheapest-kept) suffix element of the current state
// and regrows, probing a handful of nearby maximal states. The number of
// states examined is linear-ish in K, which is why Figure 12 shows it
// almost flat in cmax.
func DHeurDoi(in *Instance, cmax float64) Solution {
	start := time.Now()
	st := Stats{Algorithm: "D-HEURDOI"}
	var mem memTracker
	sp := in.doiSpace()

	maxDoi := -1.0
	var best []int
	suffix := suffixConj(in)
	pr := costPrimary(in, sp, cmax)

	for k := 0; k < sp.K && maxDoi <= suffix[k] && !in.overBudget(&st); k++ {
		seed := node{k}
		if !pr.ok(pr.value(seed)) {
			continue
		}
		r := greedyGrow(sp, seed, pr, &st)
		mem.add(r.memBytes())
		if d := sp.doiOf(in, r); d > maxDoi {
			maxDoi = d
			best = sp.toSet(r)
		}
		// Heuristic descent (Figure 11, step 2.5): drop the state's suffix
		// element by element and regrow each truncation, hoping a cheaper
		// tail frees budget for more interesting preferences. The growth
		// probes burn states too, so the budget is re-checked per cut —
		// otherwise a tiny budget would finish the round unflagged.
		for cut := len(r) - 1; cut >= 1 && !in.overBudget(&st); cut-- {
			trunc := cloneNode(r[:cut])
			grown := greedyGrowExcluding(sp, trunc, r[cut], pr, &st)
			if d := sp.doiOf(in, grown); d > maxDoi {
				maxDoi = d
				best = sp.toSet(grown)
			}
		}
		mem.sub(r.memBytes())
	}

	sol := in.solutionFor(best, true)
	if len(best) == 0 && in.BaseCost > cmax {
		sol.Feasible = false
	}
	st.Duration = time.Since(start)
	st.PeakMemBytes = mem.peak
	sol.Stats = st
	return sol
}

// greedyGrowExcluding grows like greedyGrow but refuses to re-add the
// excluded position, so each truncation explores a genuinely different
// maximal state (Figure 11's "For each R” in HR, R” ≠ R'").
func greedyGrowExcluding(sp *space, r node, excluded int, pr primary, st *Stats) node {
	for {
		extended := false
		cur := pr.value(r)
		sp.horizontal2From(r, 0, func(pos int) bool {
			if pos == excluded {
				return true
			}
			st.StatesVisited++
			if pr.ok(pr.add(cur, pos)) {
				r = r.insert(pos)
				extended = true
				return false
			}
			return true
		})
		if !extended {
			return r
		}
	}
}
