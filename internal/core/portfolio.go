package core

import (
	"sync"
	"time"
)

// Portfolio runs all five Problem-2 algorithms concurrently on the same
// instance and returns the best feasible answer found, with per-algorithm
// stats attached. With a StateBudget in force none of the exact algorithms
// is guaranteed optimal individually; the portfolio hedges across their
// different truncation behaviors — the classic algorithm-portfolio remedy
// for complementary search strategies.
func Portfolio(in *Instance, cmax float64) (Solution, []Stats) {
	start := time.Now()
	sols := make([]Solution, len(Algorithms))
	var wg sync.WaitGroup
	for i, a := range Algorithms {
		wg.Add(1)
		go func(i int, solve Problem2Solver) {
			defer wg.Done()
			sols[i] = solve(in, cmax)
		}(i, a.Solve)
	}
	wg.Wait()

	best := sols[0]
	stats := make([]Stats, len(sols))
	var states, memoHits, highWater int
	var peak int64
	for i, s := range sols {
		stats[i] = s.Stats
		states += s.Stats.StatesVisited
		memoHits += s.Stats.MemoHits
		if s.Stats.QueueHighWater > highWater {
			highWater = s.Stats.QueueHighWater
		}
		if s.Stats.PeakMemBytes > peak {
			peak = s.Stats.PeakMemBytes
		}
		if i > 0 {
			better := s.Feasible && (!best.Feasible || s.Doi > best.Doi ||
				(s.Doi == best.Doi && s.Cost < best.Cost))
			if better {
				best = s
			}
		}
	}
	best.Stats = Stats{
		Algorithm:      "PORTFOLIO(" + best.Stats.Algorithm + ")",
		Duration:       time.Since(start),
		StatesVisited:  states,
		PeakMemBytes:   peak,
		Truncated:      best.Stats.Truncated,
		MemoHits:       memoHits,
		QueueHighWater: highWater,
	}
	best.Portfolio = stats
	return best, stats
}
