package core

import (
	"sort"

	"cqp/internal/prefs"
)

// topConj returns bound[g] = doi of the g most interesting preferences —
// the paper's BestExpectedDoi for group size g (P is doi-sorted, so the
// best any state of size ≤ g can score is Conjunction(Doi[0..g-1])).
func (in *Instance) topConj() []float64 {
	bound := make([]float64, in.K+1)
	acc := prefs.NewConjAccum()
	for g := 1; g <= in.K; g++ {
		acc.Add(in.Doi[g-1])
		bound[g] = acc.Doi()
	}
	return bound
}

// findMaxDoi implements the paper's C_FINDMAXDOI (Figure 5, second phase):
// among all states lying on or below the given boundaries, find the one
// with the maximum doi.
//
// For each boundary R it runs the paper's greedy: slots are processed from
// the most constrained (largest position) to the least, and each slot takes
// the unused preference with the best doi among vector positions ≥ the
// slot's position. The greedy is optimal because slot availability sets are
// nested suffixes. Boundaries are visited in decreasing group size so the
// BestExpectedDoi bound can stop the scan early.
func findMaxDoi(sp *space, in *Instance, boundaries []node, st *Stats, mem *memTracker) ([]int, float64) {
	// Order boundaries by decreasing group size (push order usually already
	// gives this; sorting makes it independent of phase-1 discipline).
	bs := make([]node, len(boundaries))
	copy(bs, boundaries)
	sort.SliceStable(bs, func(i, j int) bool { return len(bs[i]) > len(bs[j]) })

	bound := in.topConj()
	maxDoi := -1.0
	var best []int
	usedPos := make([]bool, sp.K)
	mem.add(int64(sp.K)) // scratch accounting

	kr := in.K
	for _, r := range bs {
		if len(r) < kr {
			kr = len(r)
			if maxDoi > bound[kr] {
				break // no smaller group can beat the incumbent
			}
		}
		// Greedy best-doi substitution below r.
		for i := range usedPos {
			usedPos[i] = false
		}
		set := make([]int, 0, len(r))
		acc := prefs.NewConjAccum()
		for i := len(r) - 1; i >= 0; i-- {
			k := r[i]
			bestP, bestPos := sp.K, -1
			for j := k; j < sp.K; j++ {
				if usedPos[j] {
					continue
				}
				if sp.vec[j] < bestP {
					bestP, bestPos = sp.vec[j], j
				}
			}
			usedPos[bestPos] = true
			set = append(set, bestP)
			acc.Add(in.Doi[bestP])
		}
		st.StatesVisited++
		if acc.Doi() > maxDoi {
			maxDoi = acc.Doi()
			sort.Ints(set)
			best = set
		}
	}
	mem.sub(int64(sp.K))
	if best == nil {
		return nil, 0
	}
	return best, maxDoi
}
