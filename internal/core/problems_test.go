package core

import (
	"math"
	"math/rand"
	"testing"
)

// bruteForce solves any Problem by complete enumeration — the oracle for
// the family-wide solvers.
func bruteForce(in *Instance, prob Problem) Solution {
	bestFound := false
	var bestSet []int
	var bestDoi, bestCost float64
	try := func(set []int) {
		doi, cost, size := in.SetDoi(set), in.SetCost(set), in.SetSize(set)
		if !prob.Feasible(doi, cost, size) {
			return
		}
		if !bestFound || prob.better(doi, cost, bestDoi, bestCost) {
			bestFound = true
			bestDoi, bestCost = doi, cost
			bestSet = append([]int(nil), set...)
		}
	}
	try(nil)
	for mask := 1; mask < 1<<in.K; mask++ {
		var set []int
		for i := 0; i < in.K; i++ {
			if mask&(1<<i) != 0 {
				set = append(set, i)
			}
		}
		try(set)
	}
	if !bestFound {
		return Solution{Feasible: false}
	}
	return in.solutionFor(bestSet, true)
}

// randProblem generates a random problem of each family member with bounds
// scaled to the instance so that feasible and infeasible cases both occur.
func randProblem(rng *rand.Rand, in *Instance, kind int) Problem {
	supreme := in.SupremeCost()
	cmax := supreme * (0.1 + 0.8*rng.Float64())
	minSize := in.SetSize(allIndices(in.K))
	smin := minSize + (in.BaseSize-minSize)*rng.Float64()*0.5
	smax := smin + (in.BaseSize-smin)*rng.Float64()
	dmin := 0.2 + 0.75*rng.Float64()
	switch kind {
	case 1:
		return Problem1(smin, smax)
	case 2:
		return Problem2(cmax)
	case 3:
		return Problem3(cmax, smin, smax)
	case 4:
		return Problem4(dmin)
	case 5:
		return Problem5(dmin, smin, smax)
	default:
		return Problem6(smin, smax)
	}
}

func allIndices(k int) []int {
	out := make([]int, k)
	for i := range out {
		out[i] = i
	}
	return out
}

func TestProblemConstructorsAndValidate(t *testing.T) {
	cases := []struct {
		p  Problem
		ok bool
	}{
		{Problem1(1, 50), true},
		{Problem2(100), true},
		{Problem3(100, 1, 50), true},
		{Problem4(0.8), true},
		{Problem5(0.8, 1, 50), true},
		{Problem6(1, 50), true},
		{Problem{Objective: ObjMaxDoi}, false},              // unconstrained max
		{Problem{Objective: ObjMinCost}, false},             // unconstrained min
		{Problem1(50, 1), false},                            // empty window
		{Problem{Objective: ObjMaxDoi, CostMax: -1}, false}, // negative bound
		{Problem4(1.5), false},                              // doi > 1
	}
	for i, c := range cases {
		if err := c.p.Validate(); (err == nil) != c.ok {
			t.Errorf("case %d (%s): err = %v, want ok=%v", i, c.p, err, c.ok)
		}
	}
	if Problem2(5).String() == "" || Problem5(0.5, 1, 2).String() == "" {
		t.Error("String should render")
	}
	if ObjMaxDoi.String() == ObjMinCost.String() {
		t.Error("objective names")
	}
}

// TestBranchBoundMatchesBruteForce validates the family-wide exact solver
// on all six problems over random instances.
func TestBranchBoundMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 200; trial++ {
		k := 2 + rng.Intn(9)
		in := randInstance(t, rng, k)
		kind := 1 + rng.Intn(6)
		prob := randProblem(rng, in, kind)
		if prob.Validate() != nil {
			continue
		}
		want := bruteForce(in, prob)
		got := BranchBound(in, prob)
		if got.Feasible != want.Feasible {
			t.Fatalf("trial %d P%d (%s): feasible %v, want %v",
				trial, kind, prob, got.Feasible, want.Feasible)
		}
		if !want.Feasible {
			continue
		}
		switch prob.Objective {
		case ObjMaxDoi:
			if math.Abs(got.Doi-want.Doi) > 1e-9 {
				t.Fatalf("trial %d P%d: doi %v, want %v (sets %v vs %v)",
					trial, kind, got.Doi, want.Doi, got.Set, want.Set)
			}
		case ObjMinCost:
			if math.Abs(got.Cost-want.Cost) > 1e-6 {
				t.Fatalf("trial %d P%d: cost %v, want %v (sets %v vs %v)",
					trial, kind, got.Cost, want.Cost, got.Set, want.Set)
			}
		}
		if !prob.Feasible(got.Doi, got.Cost, got.Size) {
			t.Fatalf("trial %d P%d: returned infeasible solution", trial, kind)
		}
	}
}

// TestWindowedAdaptersMatchBruteForce validates the Section 6 state-space
// adaptations for Problems 1 and 3.
func TestWindowedAdaptersMatchBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for trial := 0; trial < 150; trial++ {
		k := 2 + rng.Intn(9)
		in := randInstance(t, rng, k)

		p1 := randProblem(rng, in, 1)
		if p1.Validate() == nil {
			want := bruteForce(in, p1)
			got := SBoundariesP1(in, p1.SizeMin, p1.SizeMax)
			if got.Feasible != want.Feasible {
				t.Fatalf("trial %d P1 (%s): feasible %v want %v", trial, p1, got.Feasible, want.Feasible)
			}
			if want.Feasible && math.Abs(got.Doi-want.Doi) > 1e-9 {
				t.Fatalf("trial %d P1: doi %v want %v (sets %v vs %v)",
					trial, got.Doi, want.Doi, got.Set, want.Set)
			}
		}

		p3 := randProblem(rng, in, 3)
		if p3.Validate() == nil {
			want := bruteForce(in, p3)
			got := CBoundariesP3(in, p3.CostMax, p3.SizeMin, p3.SizeMax)
			if got.Feasible != want.Feasible {
				t.Fatalf("trial %d P3 (%s): feasible %v want %v", trial, p3, got.Feasible, want.Feasible)
			}
			if want.Feasible && math.Abs(got.Doi-want.Doi) > 1e-9 {
				t.Fatalf("trial %d P3: doi %v want %v (sets %v vs %v)",
					trial, got.Doi, want.Doi, got.Set, want.Set)
			}
		}
	}
}

// TestMinCostGreedy: feasible when the exact solver is, never cheaper than
// the optimum.
func TestMinCostGreedy(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	degraded := 0
	for trial := 0; trial < 150; trial++ {
		k := 2 + rng.Intn(9)
		in := randInstance(t, rng, k)
		kind := 4 + rng.Intn(3)
		prob := randProblem(rng, in, kind)
		if prob.Validate() != nil {
			continue
		}
		want := bruteForce(in, prob)
		got := MinCostGreedy(in, prob)
		if got.Feasible && !prob.Feasible(got.Doi, got.Cost, got.Size) {
			t.Fatalf("trial %d: greedy returned invalid solution", trial)
		}
		if got.Feasible && want.Feasible && got.Cost < want.Cost-1e-6 {
			t.Fatalf("trial %d: greedy cost %v beats optimum %v", trial, got.Cost, want.Cost)
		}
		if want.Feasible && !got.Feasible {
			degraded++ // greedy may miss windowed feasibility; count it
		}
	}
	t.Logf("greedy missed feasibility in %d trials (heuristic, expected small)", degraded)
}

// TestSolveDispatch exercises the Table 1 router.
func TestSolveDispatch(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	in := randInstance(t, rng, 8)
	cmax := in.SupremeCost() * 0.5

	if _, err := Solve(in, Problem{Objective: ObjMaxDoi}, ""); err == nil {
		t.Error("invalid problem must be rejected")
	}
	if _, err := Solve(in, Problem2(cmax), "NOPE"); err == nil {
		t.Error("unknown algorithm must be rejected")
	}
	s2, err := Solve(in, Problem2(cmax), "")
	if err != nil || s2.Stats.Algorithm != "C-MAXBOUNDS" {
		t.Errorf("default P2 solver: %v %v", s2.Stats.Algorithm, err)
	}
	s2b, err := Solve(in, Problem2(cmax), "D_MaxDoi")
	if err != nil || s2b.Stats.Algorithm != "D-MAXDOI" {
		t.Errorf("named P2 solver: %v %v", s2b.Stats.Algorithm, err)
	}

	minSize := in.SetSize(allIndices(in.K))
	smin := (minSize + in.BaseSize) / 4
	smax := in.BaseSize
	if s, err := Solve(in, Problem1(smin, smax), ""); err != nil || s.Stats.Algorithm != "S-BOUNDARIES-P1" {
		t.Errorf("P1 route: %v %v", s.Stats.Algorithm, err)
	}
	if s, err := Solve(in, Problem3(cmax, smin, smax), ""); err != nil || s.Stats.Algorithm != "C-BOUNDARIES-P3" {
		t.Errorf("P3 route: %v %v", s.Stats.Algorithm, err)
	}
	if s, err := Solve(in, Problem4(0.5), ""); err != nil || s.Stats.Algorithm != "BRANCH-BOUND" {
		t.Errorf("P4 route: %v %v", s.Stats.Algorithm, err)
	}
	if s, err := Solve(in, Problem6(smin, smax), ""); err != nil || s.Stats.Algorithm != "BRANCH-BOUND" {
		t.Errorf("P6 route: %v %v", s.Stats.Algorithm, err)
	}
}

// TestBestBelowMatchesBruteForce validates the windowed second phase in
// isolation: the best-doi state below a boundary under an acceptance
// predicate.
func TestBestBelowMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	for trial := 0; trial < 150; trial++ {
		k := 3 + rng.Intn(8)
		in := randInstance(t, rng, k)
		sp := in.costSpace()
		// Random boundary of random size.
		g := 1 + rng.Intn(k)
		r := make(node, 0, g)
		pos := rng.Intn(k - g + 1)
		for len(r) < g {
			r = append(r, pos)
			pos += 1 + rng.Intn(2)
			if pos >= k {
				pos = k - 1
			}
		}
		// Deduplicate (the growth above can repeat the last position).
		r = dedupNode(r, k)
		if r == nil {
			continue
		}
		sizeCut := in.BaseSize * (0.05 + 0.5*rng.Float64())
		accept := func(n node) bool { return sp.sizeOf(in, n) >= sizeCut }

		suffixBest := sp.suffixBest(in)
		var st Stats
		got, gotDoi := bestBelow(in, sp, r, suffixBest, accept, -1, &st)

		// Oracle: enumerate all same-size states componentwise ≥ r.
		var bestDoi float64 = -1
		var iter func(slot, floor int, cur node)
		iter = func(slot, floor int, cur node) {
			if slot == len(r) {
				if accept(cur) {
					if d := sp.doiOf(in, cur); d > bestDoi {
						bestDoi = d
					}
				}
				return
			}
			lo := r[slot]
			if floor > lo {
				lo = floor
			}
			for y := lo; y < k; y++ {
				iter(slot+1, y+1, append(cur, y))
				cur = cur[:slot]
			}
		}
		iter(0, 0, make(node, 0, len(r)))

		if bestDoi < 0 {
			if got != nil {
				t.Fatalf("trial %d: oracle found nothing but bestBelow returned %v", trial, got)
			}
			continue
		}
		if got == nil || math.Abs(gotDoi-bestDoi) > 1e-9 {
			t.Fatalf("trial %d: bestBelow doi %v, oracle %v (boundary %v)", trial, gotDoi, bestDoi, r)
		}
	}
}

// dedupNode returns a strictly increasing node or nil if impossible.
func dedupNode(r node, k int) node {
	out := make(node, 0, len(r))
	prev := -1
	for _, p := range r {
		if p <= prev {
			p = prev + 1
		}
		if p >= k {
			return nil
		}
		out = append(out, p)
		prev = p
	}
	return out
}

// TestWindowedFallback: a budget-starved windowed search must escalate to
// branch-and-bound instead of reporting unproven infeasibility.
func TestWindowedFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	for trial := 0; trial < 20; trial++ {
		in := randInstance(t, rng, 16)
		in.StateBudget = 200 // starve the boundary search
		prob := Problem3(in.SupremeCost()*0.4, in.SetSize(allIndices(in.K))*2, in.BaseSize*0.9)
		if prob.Validate() != nil {
			continue
		}
		noBudget := *in
		noBudget.StateBudget = 0
		want := BranchBound(&noBudget, prob)
		got, err := Solve(in, prob, "")
		if err != nil {
			t.Fatal(err)
		}
		if want.Feasible && !got.Feasible {
			t.Fatalf("trial %d: fallback failed to find the feasible answer", trial)
		}
		if want.Feasible && math.Abs(got.Doi-want.Doi) > 1e-9 {
			// The fallback runs under the budget too; allow truncation to
			// cost optimality but never feasibility.
			if !got.Stats.Truncated {
				t.Fatalf("trial %d: untruncated fallback doi %v, want %v", trial, got.Doi, want.Doi)
			}
		}
	}
}
