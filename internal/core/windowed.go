package core

import (
	"sort"
	"time"
)

// SBoundariesP1 solves Problem 1 (maximize doi, smin ≤ size ≤ smax) with
// the Section 6 adaptation of C-BOUNDARIES: the search runs on the size
// state space (vector S), whose transition directions make "size ≥ smin"
// the upper-bound constraint the boundary machinery handles. The paper's
// dual boundary lists (UpBoundaries/LowBoundaries) become, in our
// implementation, a boundary search against the lower size bound followed
// by a below-boundary search that also enforces the upper bound — the
// "nodes between the upper and lower boundaries".
func SBoundariesP1(in *Instance, smin, smax float64) Solution {
	return windowedBoundaries(in, in.sizeSpace(), sizePrimaryName, Problem1(smin, smax))
}

// CBoundariesP3 solves Problem 3 (maximize doi, cost ≤ cmax and
// smin ≤ size ≤ smax) per Section 6: phase 1 finds cost boundaries exactly
// as in Problem 2; phase 2 keeps the best-doi state below them that also
// satisfies the size window.
func CBoundariesP3(in *Instance, cmax, smin, smax float64) Solution {
	return windowedBoundaries(in, in.costSpace(), costPrimaryName, Problem3(cmax, smin, smax))
}

const (
	costPrimaryName = "C-BOUNDARIES-P3"
	sizePrimaryName = "S-BOUNDARIES-P1"
)

// windowedBoundaries runs the two-phase boundary search with a secondary
// acceptance predicate in phase 2.
func windowedBoundaries(in *Instance, sp *space, name string, prob Problem) Solution {
	start := time.Now()
	st := Stats{Algorithm: name}
	var mem memTracker

	var pr primary
	if prob.CostMax > 0 {
		pr = costPrimary(in, sp, prob.CostMax)
	} else {
		pr = sizePrimary(in, sp, prob.SizeMin)
	}
	boundaries := findBoundary(in, sp, pr, &st, &mem)
	// Phase 2 gets its own budget window: a truncated phase 1 must not
	// starve the below-boundary search that actually produces the answer.
	ph2 := Stats{}

	// Problems 1 and 3 have no doi constraint, so the acceptance check only
	// concerns cost and size; doi 1 neutralizes Feasible's DoiMin term.
	accept := func(n node) bool {
		return prob.Feasible(1, sp.costOf(in, n), sp.sizeOf(in, n))
	}
	suffixBest := sp.suffixBest(in)
	bound := in.topConj()
	maxSize, minSize := sizeEnvelopes(in)

	bestDoi := -1.0
	var best node
	kr := in.K
	// Boundaries in decreasing group size with the BestExpectedDoi cutoff,
	// exactly as in findMaxDoi, but each boundary is searched below with
	// the full constraint set.
	ordered := make([]node, len(boundaries))
	copy(ordered, boundaries)
	sortBySizeDesc(ordered)
	for _, r := range ordered {
		if in.overBudget(&ph2) {
			break
		}
		if len(r) < kr {
			kr = len(r)
			if bestDoi > bound[kr] {
				break
			}
		}
		// Group-level size envelope: if no state of this cardinality can
		// land in the window, skip the whole boundary — otherwise large
		// groups (size ≈ 0) burn the budget on doomed enumeration.
		g := len(r)
		if prob.SizeMin > 0 && maxSize[g] < prob.SizeMin-1e-9 {
			continue
		}
		if prob.SizeMax > 0 && minSize[g] > prob.SizeMax+1e-9 {
			continue
		}
		if b, d := bestBelow(in, sp, r, suffixBest, accept, bestDoi, &ph2); b != nil {
			best, bestDoi = b, d
		}
	}
	st.StatesVisited += ph2.StatesVisited
	st.Truncated = st.Truncated || ph2.Truncated

	var sol Solution
	switch {
	case best != nil:
		sol = in.solutionFor(sp.toSet(best), true)
	case prob.Feasible(0, in.BaseCost, in.BaseSize):
		sol = in.solutionFor(nil, true)
	default:
		sol = Solution{Feasible: false}
	}
	st.Duration = time.Since(start)
	st.PeakMemBytes = mem.peak
	sol.Stats = st
	return sol
}

// sizeEnvelopes returns, per group size g, the largest and smallest result
// size any g-preference state can have: BaseSize times the product of the
// g largest (resp. smallest) shrink factors.
func sizeEnvelopes(in *Instance) (maxSize, minSize []float64) {
	asc := append([]float64(nil), in.Shrink...)
	sort.Float64s(asc) // ascending: smallest shrink first
	maxSize = make([]float64, in.K+1)
	minSize = make([]float64, in.K+1)
	maxSize[0], minSize[0] = in.BaseSize, in.BaseSize
	for g := 1; g <= in.K; g++ {
		maxSize[g] = maxSize[g-1] * asc[in.K-g] // take largest remaining
		minSize[g] = minSize[g-1] * asc[g-1]    // take smallest remaining
	}
	return maxSize, minSize
}

// sortBySizeDesc orders nodes by decreasing cardinality, stably.
func sortBySizeDesc(ns []node) {
	// Insertion sort: boundary lists are short and mostly ordered already.
	for i := 1; i < len(ns); i++ {
		for j := i; j > 0 && len(ns[j]) > len(ns[j-1]); j-- {
			ns[j], ns[j-1] = ns[j-1], ns[j]
		}
	}
}

// MinCostGreedy is a fast heuristic for the cost-minimization problems
// (4–6): it walks the doi vector greedily, adding the cheapest preference
// (per unit of log-domain doi gained) until the doi and size constraints
// hold, then tries to shed redundant members. It is the Section 6
// philosophy — Horizontal transitions until feasibility, then local
// descent — packaged as a one-pass heuristic; BranchBound gives the exact
// answer for comparison.
func MinCostGreedy(in *Instance, prob Problem) Solution {
	start := time.Now()
	st := Stats{Algorithm: "MINCOST-GREEDY"}

	type cand struct {
		idx  int
		rate float64 // cost per unit of −log(1−doi): lower is better value
	}
	cands := make([]cand, 0, in.K)
	for i := 0; i < in.K; i++ {
		w := logWeight(1 - in.Doi[i])
		if w <= 0 {
			w = 1e-12
		}
		cands = append(cands, cand{idx: i, rate: in.Cost[i] / w})
	}
	// Stable selection by ascending rate.
	for i := 1; i < len(cands); i++ {
		for j := i; j > 0 && cands[j].rate < cands[j-1].rate; j-- {
			cands[j], cands[j-1] = cands[j-1], cands[j]
		}
	}

	chosen := make([]int, 0, in.K)
	feasibleAt := func(set []int) bool {
		st.StatesVisited++
		return prob.Feasible(in.SetDoi(set), in.SetCost(set), in.SetSize(set))
	}
	if feasibleAt(nil) {
		sol := in.solutionFor(nil, true)
		st.Duration = time.Since(start)
		sol.Stats = st
		return sol
	}
	for _, c := range cands {
		chosen = append(chosen, c.idx)
		if feasibleAt(chosen) {
			break
		}
	}
	if !feasibleAt(chosen) {
		sol := Solution{Feasible: false}
		st.Duration = time.Since(start)
		sol.Stats = st
		return sol
	}
	// Shed pass: drop members whose removal keeps feasibility (cheapest
	// solution should not carry dead weight).
	for i := len(chosen) - 1; i >= 0; i-- {
		trial := make([]int, 0, len(chosen)-1)
		trial = append(trial, chosen[:i]...)
		trial = append(trial, chosen[i+1:]...)
		if feasibleAt(trial) {
			chosen = trial
		}
	}
	sol := in.solutionFor(chosen, true)
	st.Duration = time.Since(start)
	sol.Stats = st
	return sol
}
