package core

import (
	"math"
	"sort"
)

// wCap caps the additive log-domain weights used to order doi- and
// size-space neighbors, so must-have preferences (doi = 1) and empty-result
// shrinks (factor 0) stay finite.
const wCap = 700.0

// logWeight maps a multiplicative survival factor f ∈ [0,1] to the additive
// weight −log(f), capped. Larger weight = stronger effect.
func logWeight(f float64) float64 {
	if f <= 0 {
		return wCap
	}
	w := -math.Log(f)
	if w > wCap {
		return wCap
	}
	return w
}

// space is one of the paper's search spaces: positions 0..K−1 over a
// pointer vector, with a per-position weight that is non-increasing in the
// position index (the space's own ordering parameter: cost for the C space,
// doi for the D space, size shrink for the S space). Transitions use the
// weights only to order neighbors; feasibility is checked by the algorithms
// against the CQP constraints, which may concern a different parameter.
type space struct {
	K   int
	vec []int     // position -> P index
	w   []float64 // per-position weight, non-increasing
}

// costSpace builds the C-based space (Section 5.2.1).
func (in *Instance) costSpace() *space {
	s := &space{K: in.K, vec: in.C}
	s.w = make([]float64, in.K)
	for pos, p := range in.C {
		s.w[pos] = in.Cost[p]
	}
	return s
}

// doiSpace builds the D-based space (Section 5.2.2). D is the identity, and
// the weights are the log-domain doi contributions −log(1 − doi), which
// order exactly like doi.
func (in *Instance) doiSpace() *space {
	s := &space{K: in.K, vec: make([]int, in.K)}
	s.w = make([]float64, in.K)
	for i := 0; i < in.K; i++ {
		s.vec[i] = i
		s.w[i] = logWeight(1 - in.Doi[i])
	}
	return s
}

// sizeSpace builds the S-based space (Section 6, Problem 1): positions
// ordered by increasing size(Q ∧ p), i.e. decreasing shrink weight.
func (in *Instance) sizeSpace() *space {
	s := &space{K: in.K, vec: in.S}
	s.w = make([]float64, in.K)
	for pos, p := range in.S {
		s.w[pos] = logWeight(in.Shrink[p])
	}
	return s
}

// primary is the constraint a boundary search is aligned with: the
// parameter that is monotone along the space's Vertical direction. For
// Problem 2 it is "cost ≤ cmax" on the cost space; for Problem 1 it is
// "size ≥ smin" on the size space (Section 6 reverses transition directions
// by construction of the S vector). value/add compute the running parameter
// incrementally during greedy walks; ok tests the bound.
type primary struct {
	value func(n node) float64
	add   func(v float64, pos int) float64
	ok    func(v float64) bool
}

// costPrimary builds the "cost ≤ cmax" constraint over the space.
func costPrimary(in *Instance, sp *space, cmax float64) primary {
	return primary{
		value: func(n node) float64 { return sp.costOf(in, n) },
		add: func(v float64, pos int) float64 {
			return v + in.Cost[sp.vec[pos]]
		},
		ok: func(v float64) bool { return v <= cmax },
	}
}

// sizePrimary builds the "size ≥ smin" constraint over the space. A state's
// size only decreases as preferences are added, mirroring cost's growth, so
// the boundary machinery applies unchanged.
func sizePrimary(in *Instance, sp *space, smin float64) primary {
	return primary{
		value: func(n node) float64 { return sp.sizeOf(in, n) },
		add: func(v float64, pos int) float64 {
			return v * in.Shrink[sp.vec[pos]]
		},
		ok: func(v float64) bool { return v >= smin },
	}
}

// toSet maps a node (positions) to sorted P indices.
func (s *space) toSet(n node) []int {
	out := make([]int, len(n))
	for i, pos := range n {
		out[i] = s.vec[pos]
	}
	sort.Ints(out)
	return out
}

// costOf computes cost(Q ∧ state) without materializing the P-index set.
func (s *space) costOf(in *Instance, n node) float64 {
	if len(n) == 0 {
		return in.BaseCost
	}
	c := 0.0
	for _, pos := range n {
		c += in.Cost[s.vec[pos]]
	}
	return c
}

// sizeOf computes the estimated size of Q ∧ state.
func (s *space) sizeOf(in *Instance, n node) float64 {
	sz := in.BaseSize
	for _, pos := range n {
		sz *= in.Shrink[s.vec[pos]]
	}
	return sz
}

// doiOf computes doi(Q ∧ state).
func (s *space) doiOf(in *Instance, n node) float64 {
	prod := 1.0
	for _, pos := range n {
		prod *= 1 - in.Doi[s.vec[pos]]
	}
	return 1 - prod
}

// weight sums the space weights of a node's positions.
func (s *space) weight(n node) float64 {
	t := 0.0
	for _, pos := range n {
		t += s.w[pos]
	}
	return t
}

// horizontal is the paper's Horizontal transition: extend the node with the
// successor of its largest position. Returns nil at the edge of the space.
func (s *space) horizontal(n node) node {
	if len(n) == 0 {
		if s.K == 0 {
			return nil
		}
		return node{0}
	}
	next := n[len(n)-1] + 1
	if next >= s.K {
		return nil
	}
	return n.insert(next)
}

// vertical is the paper's Vertical transition set: every node obtained by
// replacing one position with its successor (when absent), ordered by
// decreasing resulting weight — i.e. preferring the neighbor that gives up
// the least of the space's parameter.
func (s *space) vertical(n node) []node {
	var out []node
	for idx := len(n) - 1; idx >= 0; idx-- {
		next := n[idx] + 1
		if next >= s.K || n.contains(next) {
			continue
		}
		out = append(out, n.replaceAt(idx, next))
	}
	if len(out) > 1 {
		sort.SliceStable(out, func(a, b int) bool {
			return s.weight(out[a]) > s.weight(out[b])
		})
	}
	return out
}

// horizontal2 is the paper's Horizontal2 transition set (C-MAXBOUNDS):
// every node obtained by adding one absent position, ordered by decreasing
// resulting weight. Since weights are non-increasing in position, that is
// simply ascending position order.
func (s *space) horizontal2(n node) []node {
	out := make([]node, 0, s.K-len(n))
	for pos := 0; pos < s.K; pos++ {
		if !n.contains(pos) {
			out = append(out, n.insert(pos))
		}
	}
	return out
}

// horizontal2From yields absent positions in ascending order starting from
// a given position, letting walk loops avoid materializing all neighbors.
func (s *space) horizontal2From(n node, from int, yield func(pos int) bool) {
	for pos := from; pos < s.K; pos++ {
		if !n.contains(pos) {
			if !yield(pos) {
				return
			}
		}
	}
}
