package core

import (
	"math"
	"math/rand"
	"testing"
)

// TestWorkedExample is the hand-checked 5-preference example mirroring the
// structure of Figures 6/8: costs 180,120,60,40,30 (C = identity), cmax 185.
// Feasible sets include {p2,p3} (cost 180) and {p3,p4,p5} (cost 130), both
// with doi 0.94 — the optimum.
func TestWorkedExample(t *testing.T) {
	in, err := NewInstance(
		[]float64{0.9, 0.8, 0.7, 0.6, 0.5},
		[]float64{180, 120, 60, 40, 30},
		[]float64{0.9, 0.8, 0.7, 0.6, 0.5},
		10, 1000)
	if err != nil {
		t.Fatal(err)
	}
	const cmax = 185.0
	want := 0.94
	exh := Exhaustive(in, cmax)
	if math.Abs(exh.Doi-want) > 1e-12 {
		t.Fatalf("exhaustive doi = %v, want %v", exh.Doi, want)
	}
	for _, a := range Algorithms {
		got := a.Solve(in, cmax)
		if !got.Feasible {
			t.Errorf("%s: infeasible", a.Name)
			continue
		}
		if got.Cost > cmax+1e-9 {
			t.Errorf("%s: cost %g exceeds cmax", a.Name, got.Cost)
		}
		if a.Exact && math.Abs(got.Doi-want) > 1e-12 {
			t.Errorf("%s: doi = %v, want %v (exact algorithm)", a.Name, got.Doi, want)
		}
		if got.Doi > want+1e-12 {
			t.Errorf("%s: doi %v exceeds optimum", a.Name, got.Doi)
		}
	}
}

// TestExactAlgorithmsMatchExhaustive is the central correctness property:
// C-BOUNDARIES and D-MAXDOI (Theorems 2 and 3) and BranchBound must find
// the exhaustive optimum on random instances across the cmax range.
func TestExactAlgorithmsMatchExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 150; trial++ {
		k := 3 + rng.Intn(10)
		in := randInstance(t, rng, k)
		frac := 0.1 + 0.9*rng.Float64()
		cmax := in.SupremeCost() * frac
		want := Exhaustive(in, cmax)

		for _, name := range []string{"C_Boundaries", "D_MaxDoi", "BRANCH-BOUND"} {
			solver, err := SolverByName(name)
			if err != nil {
				t.Fatal(err)
			}
			got := solver(in, cmax)
			if math.Abs(got.Doi-want.Doi) > 1e-9 {
				t.Fatalf("trial %d (K=%d, cmax=%.1f): %s doi %v != exhaustive %v\nsets: %v vs %v",
					trial, k, cmax, name, got.Doi, want.Doi, got.Set, want.Set)
			}
			if got.Cost > cmax+1e-9 {
				t.Fatalf("%s returned infeasible solution: cost %g > %g", name, got.Cost, cmax)
			}
		}
	}
}

// TestHeuristicsFeasibleAndBounded: the heuristic algorithms must return
// feasible solutions that never beat the optimum, and their quality gap on
// these small instances should be tiny (Figure 14's observation).
func TestHeuristicsFeasibleAndBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	var worst float64
	for trial := 0; trial < 150; trial++ {
		k := 3 + rng.Intn(10)
		in := randInstance(t, rng, k)
		cmax := in.SupremeCost() * (0.1 + 0.9*rng.Float64())
		opt := Exhaustive(in, cmax)
		for _, a := range Algorithms {
			if a.Exact {
				continue
			}
			got := a.Solve(in, cmax)
			if got.Cost > cmax+1e-9 {
				t.Fatalf("%s infeasible: cost %g > cmax %g", a.Name, got.Cost, cmax)
			}
			if got.Doi > opt.Doi+1e-9 {
				t.Fatalf("%s doi %v beats exhaustive %v — impossible", a.Name, got.Doi, opt.Doi)
			}
			if gap := opt.Doi - got.Doi; gap > worst {
				worst = gap
			}
		}
	}
	// The paper reports gaps on the order of 1e-7; small random instances
	// are harsher, but heuristics should stay within a few percent.
	if worst > 0.05 {
		t.Errorf("worst heuristic gap %g is suspiciously large", worst)
	}
}

// TestBoundariesDominateAllFeasibleStates checks FINDBOUNDARY's Theorem 1
// obligation: every feasible state lies on or below some boundary.
func TestBoundariesDominateAllFeasibleStates(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 60; trial++ {
		k := 3 + rng.Intn(8)
		in := randInstance(t, rng, k)
		cmax := in.SupremeCost() * (0.15 + 0.7*rng.Float64())
		sp := in.costSpace()
		var st Stats
		var mem memTracker
		bounds := findBoundary(in, sp, costPrimary(in, sp, cmax), &st, &mem)
		// Enumerate all feasible states and check domination.
		for mask := 1; mask < 1<<k; mask++ {
			var n node
			for i := 0; i < k; i++ {
				if mask&(1<<i) != 0 {
					n = append(n, i)
				}
			}
			if sp.costOf(in, n) > cmax {
				continue
			}
			ok := false
			for _, b := range bounds {
				if dominatedBy(n, b) {
					ok = true
					break
				}
			}
			if !ok {
				t.Fatalf("trial %d: feasible state %v not dominated by any boundary %v",
					trial, n, bounds)
			}
		}
	}
}

// TestBoundariesAreFeasible: every emitted boundary satisfies the cost
// constraint. Note the paper itself observes (Section 5.2.1, the c2c4c5
// discussion) that FINDBOUNDARY may emit states that are not boundaries in
// the strict Proposition-2 sense — states below a boundary discovered
// later — and that this superset is exactly C-MAXBOUNDS' motivation.
// Correctness (Theorem 2) only needs feasibility plus the domination
// coverage checked by TestBoundariesDominateAllFeasibleStates.
func TestBoundariesAreFeasible(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	misclassified := 0
	for trial := 0; trial < 60; trial++ {
		k := 3 + rng.Intn(8)
		in := randInstance(t, rng, k)
		cmax := in.SupremeCost() * (0.15 + 0.7*rng.Float64())
		sp := in.costSpace()
		var st Stats
		var mem memTracker
		bounds := findBoundary(in, sp, costPrimary(in, sp, cmax), &st, &mem)
		for _, b := range bounds {
			if sp.costOf(in, b) > cmax {
				t.Fatalf("boundary %v infeasible", b)
			}
			for i, pos := range b {
				prev := pos - 1
				if prev < 0 || b.contains(prev) {
					continue
				}
				if sp.costOf(in, b.replaceAt(i, prev)) <= cmax {
					misclassified++ // the paper's known over-generation
				}
			}
		}
	}
	t.Logf("misclassified boundary instances across trials: %d (expected > 0, per the paper)", misclassified)
}

// TestEdgeCases covers degenerate instances.
func TestEdgeCases(t *testing.T) {
	// K = 0: no preferences.
	empty := &Instance{BaseCost: 5, BaseSize: 100}
	for _, a := range Algorithms {
		got := a.Solve(empty, 10)
		if !got.Feasible || len(got.Set) != 0 || got.Doi != 0 {
			t.Errorf("%s on empty instance: %+v", a.Name, got)
		}
	}
	got := Exhaustive(empty, 10)
	if !got.Feasible || got.Doi != 0 {
		t.Errorf("exhaustive on empty: %+v", got)
	}

	// cmax below every single preference: only the empty personalization.
	in, _ := NewInstance([]float64{0.9, 0.5}, []float64{50, 40}, []float64{0.5, 0.5}, 5, 100)
	for _, name := range []string{"C_Boundaries", "D_MaxDoi", "C_MaxBounds", "D_SingleMaxDoi", "D_HeurDoi"} {
		solver, _ := SolverByName(name)
		got := solver(in, 20)
		if len(got.Set) != 0 || got.Doi != 0 {
			t.Errorf("%s with tiny cmax: %+v", name, got)
		}
		if !got.Feasible {
			t.Errorf("%s: empty personalization (cost 5 ≤ 20) is feasible", name)
		}
	}
	// cmax below even the base query: infeasible.
	got2 := CBoundaries(in, 2)
	if got2.Feasible {
		t.Error("cmax below base cost must be infeasible")
	}

	// cmax at supreme cost: everything fits; optimum is the full set.
	full := Exhaustive(in, in.SupremeCost())
	if len(full.Set) != 2 {
		t.Errorf("full-budget optimum: %+v", full)
	}
	for _, a := range Algorithms {
		if g := a.Solve(in, in.SupremeCost()); math.Abs(g.Doi-full.Doi) > 1e-12 {
			t.Errorf("%s at supreme cost: doi %v, want %v", a.Name, g.Doi, full.Doi)
		}
	}

	// Must-have preference (doi = 1).
	in2, _ := NewInstance([]float64{1.0, 0.5}, []float64{10, 10}, []float64{0.5, 0.5}, 1, 100)
	for _, a := range Algorithms {
		if g := a.Solve(in2, 15); math.Abs(g.Doi-1.0) > 1e-12 {
			t.Errorf("%s with must-have: doi %v", a.Name, g.Doi)
		}
	}

	// K = 1.
	in3, _ := NewInstance([]float64{0.7}, []float64{10}, []float64{0.5}, 1, 100)
	for _, a := range Algorithms {
		if g := a.Solve(in3, 10); math.Abs(g.Doi-0.7) > 1e-12 {
			t.Errorf("%s on K=1: %+v", a.Name, g)
		}
	}
}

// TestEqualCosts stresses tie handling: many preferences with identical
// costs produce massive plateaus in the cost space.
func TestEqualCosts(t *testing.T) {
	dois := []float64{0.9, 0.8, 0.7, 0.6, 0.5, 0.4}
	costs := []float64{10, 10, 10, 10, 10, 10}
	shr := []float64{0.5, 0.5, 0.5, 0.5, 0.5, 0.5}
	in, _ := NewInstance(dois, costs, shr, 1, 100)
	want := Exhaustive(in, 35) // exactly 3 preferences fit
	if len(want.Set) != 3 {
		t.Fatalf("exhaustive picked %v", want.Set)
	}
	for _, name := range []string{"C_Boundaries", "D_MaxDoi"} {
		solver, _ := SolverByName(name)
		got := solver(in, 35)
		if math.Abs(got.Doi-want.Doi) > 1e-12 {
			t.Errorf("%s: doi %v, want %v", name, got.Doi, want.Doi)
		}
	}
}

// TestStatsPopulated: every algorithm reports instrumentation.
func TestStatsPopulated(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	in := randInstance(t, rng, 10)
	cmax := in.SupremeCost() * 0.5
	for _, a := range Algorithms {
		got := a.Solve(in, cmax)
		if got.Stats.Algorithm == "" || got.Stats.StatesVisited == 0 {
			t.Errorf("%s: stats not populated: %+v", a.Name, got.Stats)
		}
		if got.Stats.Duration <= 0 {
			t.Errorf("%s: no duration", a.Name)
		}
	}
}

func TestSolverByNameErrors(t *testing.T) {
	if _, err := SolverByName("NOPE"); err == nil {
		t.Error("unknown name should fail")
	}
	for _, name := range []string{"EXHAUSTIVE", "BRANCH-BOUND", "C_Boundaries"} {
		if _, err := SolverByName(name); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestExhaustiveRejectsHugeK(t *testing.T) {
	dois := make([]float64, MaxExhaustiveK+1)
	costs := make([]float64, len(dois))
	shr := make([]float64, len(dois))
	for i := range dois {
		dois[i] = 0.5
		costs[i] = 1
		shr[i] = 0.5
	}
	in, _ := NewInstance(dois, costs, shr, 1, 100)
	if got := Exhaustive(in, 10); got.Feasible {
		t.Error("oversized exhaustive must refuse")
	}
}

// TestNoMemoModeStillExact: with memoization disabled (the paper's stated
// memory discipline) and no budget, C-BOUNDARIES must still find the
// optimum — it just revisits states.
func TestNoMemoModeStillExact(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 40; trial++ {
		k := 3 + rng.Intn(6) // keep small: revisits grow fast
		in := randInstance(t, rng, k)
		cmax := in.SupremeCost() * (0.2 + 0.6*rng.Float64())
		want := Exhaustive(in, cmax)

		noMemo := *in
		noMemo.DisableMemo = true
		got := CBoundaries(&noMemo, cmax)
		if math.Abs(got.Doi-want.Doi) > 1e-9 {
			t.Fatalf("trial %d: no-memo doi %v, want %v", trial, got.Doi, want.Doi)
		}
		// The memoized run never visits more states than the faithful one.
		memoed := CBoundaries(in, cmax)
		if memoed.Stats.StatesVisited > got.Stats.StatesVisited {
			t.Fatalf("trial %d: memoization increased states (%d > %d)",
				trial, memoed.Stats.StatesVisited, got.Stats.StatesVisited)
		}
	}
}

// TestPortfolio: the concurrent portfolio matches the exhaustive optimum
// (it contains exact members) and aggregates stats.
func TestPortfolio(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	for trial := 0; trial < 30; trial++ {
		in := randInstance(t, rng, 3+rng.Intn(8))
		cmax := in.SupremeCost() * (0.2 + 0.6*rng.Float64())
		want := Exhaustive(in, cmax)
		got, stats := Portfolio(in, cmax)
		if math.Abs(got.Doi-want.Doi) > 1e-9 {
			t.Fatalf("trial %d: portfolio doi %v, want %v", trial, got.Doi, want.Doi)
		}
		if len(stats) != len(Algorithms) {
			t.Fatalf("stats for %d algorithms", len(stats))
		}
		if got.Stats.StatesVisited == 0 || got.Stats.Duration <= 0 {
			t.Fatal("portfolio stats empty")
		}
	}
	// Infeasible instance: portfolio reports infeasible.
	in, _ := NewInstance([]float64{0.5}, []float64{10}, []float64{0.5}, 5, 100)
	if got, _ := Portfolio(in, 1); got.Feasible {
		t.Error("portfolio must report infeasibility")
	}
}
