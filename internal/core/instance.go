// Package core implements the paper's primary contribution: Constrained
// Query Personalization as state-space search (Sections 4–6).
//
// An Instance carries the preference set P in decreasing-doi order together
// with the per-preference parameters and the C and S pointer vectors. States
// are subsets of P encoded as sorted position sets over one of the vectors;
// transitions (Horizontal, Vertical, Horizontal2) are the paper's syntactic
// edits whose monotone effects on doi, cost and size (Formulas 4, 7, 8)
// the search algorithms exploit.
//
// Algorithms provided: EXHAUSTIVE (ground truth), C-BOUNDARIES and
// C-MAXBOUNDS on the cost space, D-MAXDOI, D-SINGLEMAXDOI and D-HEURDOI on
// the doi space (Section 5.2), a branch-and-bound exact solver covering all
// six CQP problems of Table 1, and adapters that re-orient the transitions
// for Problems 1 and 3–6 (Section 6).
package core

import (
	"fmt"
	"math"

	"cqp/internal/fault"
	"cqp/internal/prefs"
	"cqp/internal/prefspace"
)

// Instance is the numeric core of one CQP problem: preference parameters in
// P (decreasing doi) order plus the pointer vectors.
type Instance struct {
	// K is the number of preferences.
	K int
	// Doi[i] is the degree of interest of P[i]; non-increasing in i.
	Doi []float64
	// Cost[i] is cost(Q ∧ P[i]) in milliseconds — the cost of the sub-query
	// integrating P[i] alone (Formula 11). State cost is the sum over
	// members (Formula 6).
	Cost []float64
	// Shrink[i] is the multiplicative size factor of P[i] (≤ 1). State size
	// is BaseSize × Π Shrink over members (Formula 8's model).
	Shrink []float64
	// BaseCost is cost(Q) — the cost of the unpersonalized query, used when
	// no preference is selected.
	BaseCost float64
	// BaseSize is the estimated result size of Q.
	BaseSize float64
	// C orders P positions by non-increasing Cost; S by non-decreasing
	// size (equivalently non-decreasing Shrink). D is the identity and is
	// not stored.
	C []int
	S []int
	// StateBudget, when positive, caps the number of states a search may
	// visit; exceeding it stops the search early with the best solution
	// found so far and Stats.Truncated set. The experiment harness uses it
	// to keep the paper's deliberately slow algorithms (D-MAXDOI at K=40
	// runs for ~900 s in the paper) within a wall-clock envelope. Zero
	// means unlimited, which is what correctness tests use.
	StateBudget int
	// DisableMemo turns off the visited-set memoization our implementation
	// adds over the paper ("the algorithm does not actually store the part
	// of graph visited", Section 5.2.1). Paper-faithful mode: far less
	// memory, exponentially more revisits — pair it with a StateBudget.
	// The memo ablation experiment quantifies the trade.
	DisableMemo bool
}

// overBudget reports whether the search should stop, flagging truncation.
// Every algorithm consults it per state, which also makes it the harness's
// search.expand fault point: an injected fault aborts the search like an
// exhausted budget, with the cause recorded in st.Fault. Disarmed cost is
// one atomic load.
func (in *Instance) overBudget(st *Stats) bool {
	if st.Fault != nil {
		return true
	}
	if err := fault.Inject(fault.SearchExpand); err != nil {
		st.Fault = fmt.Errorf("core: state expansion: %w", err)
		st.Truncated = true
		return true
	}
	if in.StateBudget > 0 && st.StatesVisited >= in.StateBudget {
		st.Truncated = true
		return true
	}
	return false
}

// FromSpace builds an Instance from a preference space.
func FromSpace(sp *prefspace.Space) *Instance {
	inst := &Instance{
		K:        sp.K,
		Doi:      sp.Dois(),
		Cost:     sp.Costs(),
		Shrink:   sp.Shrinks(),
		BaseCost: sp.BaseCost,
		BaseSize: sp.BaseSize,
		C:        append([]int(nil), sp.C...),
		S:        append([]int(nil), sp.S...),
	}
	if inst.C == nil {
		inst.C = costVector(inst.Cost)
	}
	if inst.S == nil {
		inst.S = sizeVector(inst.Shrink)
	}
	return inst
}

// NewInstance builds an Instance directly from parameter slices (tests,
// synthetic workloads). Dois must be non-increasing. baseSize ≤ 0 defaults
// to 1000 rows.
func NewInstance(dois, costs, shrinks []float64, baseCost, baseSize float64) (*Instance, error) {
	k := len(dois)
	if len(costs) != k || len(shrinks) != k {
		return nil, fmt.Errorf("core: parameter slices must share length: %d, %d, %d",
			k, len(costs), len(shrinks))
	}
	for i := 0; i < k; i++ {
		if dois[i] < 0 || dois[i] > 1 || math.IsNaN(dois[i]) {
			return nil, fmt.Errorf("core: doi[%d] = %g out of [0,1]", i, dois[i])
		}
		if i > 0 && dois[i] > dois[i-1]+1e-12 {
			return nil, fmt.Errorf("core: dois must be non-increasing (P order)")
		}
		if costs[i] < 0 || math.IsNaN(costs[i]) || math.IsInf(costs[i], 0) {
			return nil, fmt.Errorf("core: cost[%d] = %g invalid", i, costs[i])
		}
		if shrinks[i] < 0 || shrinks[i] > 1 || math.IsNaN(shrinks[i]) {
			return nil, fmt.Errorf("core: shrink[%d] = %g out of [0,1]", i, shrinks[i])
		}
	}
	if baseSize <= 0 {
		baseSize = 1000
	}
	return &Instance{
		K:        k,
		Doi:      append([]float64(nil), dois...),
		Cost:     append([]float64(nil), costs...),
		Shrink:   append([]float64(nil), shrinks...),
		BaseCost: baseCost,
		BaseSize: baseSize,
		C:        costVector(costs),
		S:        sizeVector(shrinks),
	}, nil
}

// costVector returns P positions ordered by non-increasing cost (stable).
func costVector(costs []float64) []int {
	return rankBy(len(costs), func(a, b int) bool { return costs[a] > costs[b] })
}

// sizeVector returns P positions ordered by non-decreasing shrink (= size).
func sizeVector(shrinks []float64) []int {
	return rankBy(len(shrinks), func(a, b int) bool { return shrinks[a] < shrinks[b] })
}

// rankBy returns the stable permutation of 0..k-1 under the strict order.
func rankBy(k int, less func(a, b int) bool) []int {
	out := make([]int, k)
	for i := range out {
		out[i] = i
	}
	for i := 1; i < k; i++ {
		for j := i; j > 0 && less(out[j], out[j-1]); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// SetDoi computes doi(Q ∧ Px) for a set of P indices (Formula 10).
func (in *Instance) SetDoi(set []int) float64 {
	acc := prefs.NewConjAccum()
	for _, i := range set {
		acc.Add(in.Doi[i])
	}
	return acc.Doi()
}

// SetCost computes cost(Q ∧ Px) for a set of P indices (Formula 6): the sum
// of sub-query costs, or the base query cost for the empty set.
func (in *Instance) SetCost(set []int) float64 {
	if len(set) == 0 {
		return in.BaseCost
	}
	c := 0.0
	for _, i := range set {
		c += in.Cost[i]
	}
	return c
}

// SetSize computes the estimated size of Q ∧ Px for a set of P indices.
func (in *Instance) SetSize(set []int) float64 {
	s := in.BaseSize
	for _, i := range set {
		s *= in.Shrink[i]
	}
	return s
}

// SupremeCost is the cost of integrating all K preferences — the reference
// point for the paper's cmax percentages (Section 7.2).
func (in *Instance) SupremeCost() float64 {
	if in.K == 0 {
		return in.BaseCost
	}
	c := 0.0
	for _, x := range in.Cost {
		c += x
	}
	return c
}

// Validate checks the invariants the algorithms rely on.
func (in *Instance) Validate() error {
	if len(in.Doi) != in.K || len(in.Cost) != in.K || len(in.Shrink) != in.K {
		return fmt.Errorf("core: slice lengths disagree with K=%d", in.K)
	}
	if len(in.C) != in.K || len(in.S) != in.K {
		return fmt.Errorf("core: vectors C/S must have length K")
	}
	for i := 1; i < in.K; i++ {
		if in.Doi[i] > in.Doi[i-1]+1e-12 {
			return fmt.Errorf("core: Doi not sorted at %d", i)
		}
		if in.Cost[in.C[i]] > in.Cost[in.C[i-1]]+1e-9 {
			return fmt.Errorf("core: C not cost-sorted at %d", i)
		}
		if in.Shrink[in.S[i]] < in.Shrink[in.S[i-1]]-1e-12 {
			return fmt.Errorf("core: S not size-sorted at %d", i)
		}
	}
	return nil
}
