package core

import "time"

// maxDominanceScan caps how many recent boundaries the prune(.) dominance
// check inspects per candidate, keeping pruning O(1) amortized. Skipping a
// dominance hit only costs a re-visit that the visited set then stops.
const maxDominanceScan = 32

// CBoundaries is the paper's Algorithm C-BOUNDARIES (Figure 5), solving
// Problem 2 (maximize doi subject to cost ≤ cmax) on the cost state space.
//
// Phase 1 (FINDBOUNDARY) locates the boundaries: feasible states whose
// Vertical predecessors are all infeasible. It proceeds group by group —
// Horizontal neighbors of found boundaries enqueue at the tail, Vertical
// neighbors of infeasible states at the head — pruning states already
// visited or lying below an earlier boundary of the same group.
// Phase 2 (C_FINDMAXDOI) searches below the boundaries for the best doi.
func CBoundaries(in *Instance, cmax float64) Solution {
	return cBoundariesOn(in, in.costSpace(), cmax, "C-BOUNDARIES")
}

// cBoundariesOn runs the boundary search over an arbitrary space whose
// feasibility predicate is "state cost ≤ cmax" (the constraint parameter is
// always cost for Problem 2; Section 6 re-targets the space for the other
// problems via the problem adapters).
func cBoundariesOn(in *Instance, sp *space, cmax float64, name string) Solution {
	start := time.Now()
	st := Stats{Algorithm: name}
	var mem memTracker

	boundaries := findBoundary(in, sp, costPrimary(in, sp, cmax), &st, &mem)
	set, _ := findMaxDoi(sp, in, boundaries, &st, &mem)

	sol := in.solutionFor(set, true)
	if len(set) == 0 && in.BaseCost > cmax {
		sol.Feasible = false
	}
	st.Duration = time.Since(start)
	st.PeakMemBytes = mem.peak
	sol.Stats = st
	return sol
}

// findBoundary is the paper's FINDBOUNDARY (Figure 5), generalized over
// the primary constraint so the Section 6 adaptations (e.g. Problem 1 on
// the size space) reuse it unchanged.
func findBoundary(in *Instance, sp *space, pr primary, st *Stats, mem *memTracker) []node {
	var boundaries []node
	if sp.K == 0 {
		return boundaries
	}
	visited := newVisitedSetFor(in, st, mem)
	rq := newNodeDeque(st, mem)
	seed := node{0}
	visited.seen(seed)
	rq.pushTail(seed)
	byLen := make(map[int][]node) // boundaries grouped by size for pruning

	// prune implements the paper's prune(.): a candidate is dropped when
	// already visited or when it lies below a boundary already found in its
	// group (it is then reachable from that boundary and cannot be one).
	prune := func(n node) bool {
		if visited.seen(n) {
			return true
		}
		group := byLen[len(n)]
		// Scan only the most recent dominators: full scans over large
		// boundary lists would make prune itself quadratic in the number
		// of boundaries (visited-set pruning keeps correctness).
		lo := 0
		if len(group) > maxDominanceScan {
			lo = len(group) - maxDominanceScan
		}
		for _, b := range group[lo:] {
			if dominatedBy(n, b) {
				return true
			}
		}
		return false
	}

	for rq.len() > 0 {
		if in.overBudget(st) {
			break
		}
		r := rq.popHead()
		st.StatesVisited++
		if pr.ok(pr.value(r)) {
			boundaries = append(boundaries, r)
			byLen[len(r)] = append(byLen[len(r)], r)
			mem.add(r.memBytes())
			if h := sp.horizontal(r); h != nil && !visited.seen(h) {
				rq.pushTail(h)
			}
			continue
		}
		vr := sp.vertical(r)
		// Head insertion preserves within-group processing; push in reverse
		// so the highest-cost neighbor pops first (the paper's ordering).
		for i := len(vr) - 1; i >= 0; i-- {
			if !prune(vr[i]) {
				rq.pushHead(vr[i])
			}
		}
	}
	return boundaries
}
