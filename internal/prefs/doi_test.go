package prefs

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// clamp01 maps arbitrary float64s into [0,1] for property tests.
func clamp01(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 0.5
	}
	x = math.Abs(x)
	return x - math.Floor(x)
}

func TestComposeBasics(t *testing.T) {
	if got := Compose(); got != 1 {
		t.Errorf("Compose() = %g, want 1 (empty product)", got)
	}
	if got := Compose(0.8, 1.0); math.Abs(got-0.8) > 1e-12 {
		t.Errorf("Compose(0.8, 1.0) = %g", got)
	}
	// The paper's p3 ∧ p4 example: 1.0 × 0.8 = 0.8.
	if got := Compose(1.0, 0.8); got != 0.8 {
		t.Errorf("p3∧p4 doi = %g, want 0.8", got)
	}
}

// TestComposeFormula2 checks f⊗(d1..dm) ≤ min(di) — the paper's Formula 2.
func TestComposeFormula2(t *testing.T) {
	f := func(a, b, c float64) bool {
		d1, d2, d3 := clamp01(a), clamp01(b), clamp01(c)
		got := Compose(d1, d2, d3)
		minD := math.Min(d1, math.Min(d2, d3))
		return got <= minD+1e-12 && got >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestConjunctionBasics(t *testing.T) {
	if got := Conjunction(); got != 0 {
		t.Errorf("Conjunction() = %g, want 0", got)
	}
	if got := Conjunction(0.5); got != 0.5 {
		t.Errorf("Conjunction(0.5) = %g", got)
	}
	// 1 - (1-0.5)(1-0.8) = 0.9
	if got := Conjunction(0.5, 0.8); math.Abs(got-0.9) > 1e-12 {
		t.Errorf("Conjunction(0.5, 0.8) = %g, want 0.9", got)
	}
	if got := Conjunction(1.0, 0.2); got != 1 {
		t.Errorf("must-have preference forces doi 1, got %g", got)
	}
}

// TestConjunctionFormula4 checks monotonicity under set inclusion
// (Formula 4): Px ⊆ Py ⇒ doi(Px) ≤ doi(Py).
func TestConjunctionFormula4(t *testing.T) {
	f := func(raw []float64, extraRaw float64) bool {
		dois := make([]float64, len(raw))
		for i, x := range raw {
			dois[i] = clamp01(x)
		}
		base := Conjunction(dois...)
		withExtra := Conjunction(append(append([]float64{}, dois...), clamp01(extraRaw))...)
		return withExtra >= base-1e-12 && base >= 0 && withExtra <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestConjAccumMatchesConjunction(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(12)
		dois := make([]float64, n)
		a := NewConjAccum()
		for i := range dois {
			dois[i] = rng.Float64()
			if rng.Intn(10) == 0 {
				dois[i] = 1 // exercise the must-have path
			}
			a.Add(dois[i])
		}
		want := Conjunction(dois...)
		if math.Abs(a.Doi()-want) > 1e-9 {
			t.Fatalf("trial %d: accum %g, direct %g", trial, a.Doi(), want)
		}
		if a.Len() != n {
			t.Fatalf("Len = %d, want %d", a.Len(), n)
		}
	}
}

func TestConjAccumRemove(t *testing.T) {
	a := NewConjAccum()
	a.Add(0.5)
	a.Add(0.8)
	a.Add(1.0)
	if a.Doi() != 1 {
		t.Fatal("with a must-have, doi is 1")
	}
	a.Remove(1.0)
	if math.Abs(a.Doi()-0.9) > 1e-9 {
		t.Errorf("after removing the 1.0: %g, want 0.9", a.Doi())
	}
	a.Remove(0.8)
	if math.Abs(a.Doi()-0.5) > 1e-9 {
		t.Errorf("after removing 0.8: %g, want 0.5", a.Doi())
	}
	a.Remove(0.5)
	if a.Doi() != 0 || a.Len() != 0 {
		t.Errorf("empty accum: doi %g len %d", a.Doi(), a.Len())
	}
}

func TestConjAccumReset(t *testing.T) {
	var a ConjAccum
	a.Reset()
	if a.Doi() != 0 {
		t.Error("reset accum should have doi 0")
	}
	a.Add(0.3)
	a.Reset()
	if a.Doi() != 0 || a.Len() != 0 {
		t.Error("reset must clear state")
	}
}

// TestConjAccumAddRemoveProperty verifies add/remove round trips keep the
// accumulator consistent with direct computation.
func TestConjAccumAddRemoveProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := NewConjAccum()
		var live []float64
		for step := 0; step < 50; step++ {
			if len(live) > 0 && rng.Intn(3) == 0 {
				i := rng.Intn(len(live))
				a.Remove(live[i])
				live = append(live[:i], live[i+1:]...)
			} else {
				d := rng.Float64()
				a.Add(d)
				live = append(live, d)
			}
			if math.Abs(a.Doi()-Conjunction(live...)) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
