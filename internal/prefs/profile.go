package prefs

import (
	"fmt"
	"strings"

	"cqp/internal/query"
	"cqp/internal/schema"
	"cqp/internal/value"
)

// SelectionCond is a potential selection condition — a selection edge of the
// personalization graph from an attribute node to a value node.
type SelectionCond struct {
	Attr  schema.AttrRef
	Op    query.Op
	Value value.Value
}

// String renders the condition in SQL syntax.
func (c SelectionCond) String() string {
	return fmt.Sprintf("%s %s %s", c.Attr, c.Op, c.Value.SQL())
}

// AsSelection converts the condition to a query selection.
func (c SelectionCond) AsSelection() query.Selection {
	return query.Selection{Attr: c.Attr, Op: c.Op, Value: c.Value}
}

// JoinCond is a directed potential join condition — a join edge of the
// personalization graph. Direction matters: doi(L.a = R.b) expresses how
// strongly preferences on R influence L (Section 3), so traversal expands
// from L to R.
type JoinCond struct {
	Left, Right schema.AttrRef
}

// String renders the condition in SQL syntax.
func (c JoinCond) String() string { return c.Left.String() + " = " + c.Right.String() }

// AsJoin converts the condition to an (undirected) query join.
func (c JoinCond) AsJoin() query.Join {
	return query.Join{Left: c.Left, Right: c.Right}
}

// Atomic is one atomic preference: a degree of interest attached to either a
// selection or a join condition. Exactly one of Sel, Join is set.
type Atomic struct {
	Sel  *SelectionCond
	Join *JoinCond
	Doi  float64
}

// IsSelection reports whether the preference is a selection preference.
func (a Atomic) IsSelection() bool { return a.Sel != nil }

// Condition renders the underlying condition in SQL syntax.
func (a Atomic) Condition() string {
	if a.Sel != nil {
		return a.Sel.String()
	}
	return a.Join.String()
}

// String renders the preference in the profile text format.
func (a Atomic) String() string {
	return fmt.Sprintf("doi(%s) = %g", a.Condition(), a.Doi)
}

// Profile is a user profile: a set of atomic preferences over the
// personalization graph. It indexes join preferences by their left-hand
// relation and selection preferences by relation for traversal.
type Profile struct {
	atoms      []Atomic
	joinsFrom  map[string][]int // relation -> indices of join prefs with Left in relation
	selsOn     map[string][]int // relation -> indices of selection prefs on relation
	fingerSeen map[string]bool  // duplicate-condition guard
}

// NewProfile returns an empty profile.
func NewProfile() *Profile {
	return &Profile{
		joinsFrom:  make(map[string][]int),
		selsOn:     make(map[string][]int),
		fingerSeen: make(map[string]bool),
	}
}

// Add inserts an atomic preference, validating its doi range, that exactly
// one condition is present, and that the condition is not a duplicate.
func (p *Profile) Add(a Atomic) error {
	if a.Doi < 0 || a.Doi > 1 {
		return fmt.Errorf("prefs: doi %g outside [0,1]", a.Doi)
	}
	if (a.Sel == nil) == (a.Join == nil) {
		return fmt.Errorf("prefs: atomic preference must have exactly one of selection/join")
	}
	key := a.Condition()
	if p.fingerSeen[key] {
		return fmt.Errorf("prefs: duplicate preference on condition %s", key)
	}
	p.fingerSeen[key] = true
	idx := len(p.atoms)
	p.atoms = append(p.atoms, a)
	if a.Sel != nil {
		rel := a.Sel.Attr.Relation
		p.selsOn[rel] = append(p.selsOn[rel], idx)
	} else {
		rel := a.Join.Left.Relation
		p.joinsFrom[rel] = append(p.joinsFrom[rel], idx)
	}
	return nil
}

// AddSelection inserts a selection preference.
func (p *Profile) AddSelection(attr schema.AttrRef, op query.Op, v value.Value, doi float64) error {
	return p.Add(Atomic{Sel: &SelectionCond{Attr: attr, Op: op, Value: v}, Doi: doi})
}

// AddJoin inserts a directed join preference.
func (p *Profile) AddJoin(left, right schema.AttrRef, doi float64) error {
	return p.Add(Atomic{Join: &JoinCond{Left: left, Right: right}, Doi: doi})
}

// Len returns the number of atomic preferences.
func (p *Profile) Len() int { return len(p.atoms) }

// Atoms returns all atomic preferences in insertion order.
func (p *Profile) Atoms() []Atomic { return append([]Atomic(nil), p.atoms...) }

// JoinsFrom returns the join preferences whose left-hand relation is the
// given one — the edges a traversal may follow out of that relation.
func (p *Profile) JoinsFrom(relation string) []Atomic {
	idxs := p.joinsFrom[relation]
	out := make([]Atomic, 0, len(idxs))
	for _, i := range idxs {
		out = append(out, p.atoms[i])
	}
	return out
}

// SelectionsOn returns the selection preferences on attributes of the given
// relation.
func (p *Profile) SelectionsOn(relation string) []Atomic {
	idxs := p.selsOn[relation]
	out := make([]Atomic, 0, len(idxs))
	for _, i := range idxs {
		out = append(out, p.atoms[i])
	}
	return out
}

// Validate checks every preference against the schema: attributes resolve,
// selection literals are comparable with their column, join endpoints are
// type-compatible and cross-relation.
func (p *Profile) Validate(s *schema.Schema) error {
	for _, a := range p.atoms {
		if a.Sel != nil {
			c, err := s.ResolveAttr(a.Sel.Attr)
			if err != nil {
				return fmt.Errorf("prefs: %s: %v", a, err)
			}
			if !a.Sel.Value.IsNull() && !value.Comparable(a.Sel.Value, kindProbe(c.Type)) {
				return fmt.Errorf("prefs: %s: literal kind %s incompatible with column %s",
					a, a.Sel.Value.Kind(), c.Type)
			}
			continue
		}
		lc, err := s.ResolveAttr(a.Join.Left)
		if err != nil {
			return fmt.Errorf("prefs: %s: %v", a, err)
		}
		rc, err := s.ResolveAttr(a.Join.Right)
		if err != nil {
			return fmt.Errorf("prefs: %s: %v", a, err)
		}
		if lc.Type != rc.Type {
			return fmt.Errorf("prefs: %s: join endpoint types %s and %s differ", a, lc.Type, rc.Type)
		}
		if a.Join.Left.Relation == a.Join.Right.Relation {
			return fmt.Errorf("prefs: %s: join within one relation", a)
		}
	}
	return nil
}

// kindProbe returns a zero value of the kind for comparability checks.
func kindProbe(k value.Kind) value.Value {
	switch k {
	case value.KindInt:
		return value.Int(0)
	case value.KindFloat:
		return value.Float(0)
	case value.KindString:
		return value.Str("")
	case value.KindBool:
		return value.Bool(false)
	default:
		return value.Null()
	}
}

// String serializes the profile in its text format, one preference per line.
func (p *Profile) String() string {
	var b strings.Builder
	for _, a := range p.atoms {
		b.WriteString(a.String())
		b.WriteString("\n")
	}
	return b.String()
}
