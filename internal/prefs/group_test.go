package prefs

import (
	"math"
	"strings"
	"testing"
)

func memberProfiles(t *testing.T) (*Profile, *Profile, *Profile) {
	t.Helper()
	parse := func(src string) *Profile {
		t.Helper()
		p, err := ParseProfile(src)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	a := parse(`
doi(GENRE.genre = 'comedy') = 0.8
doi(MOVIE.year >= 1990) = 0.6
doi(MOVIE.mid = GENRE.mid) = 0.9
`)
	b := parse(`
doi(GENRE.genre = 'comedy') = 0.4
doi(GENRE.genre = 'drama') = 0.7
doi(MOVIE.mid = GENRE.mid) = 0.5
`)
	c := parse(`
doi(GENRE.genre = 'comedy') = 0.6
`)
	return a, b, c
}

func findDoi(t *testing.T, p *Profile, cond string) (float64, bool) {
	t.Helper()
	for _, a := range p.Atoms() {
		if a.Condition() == cond {
			return a.Doi, true
		}
	}
	return 0, false
}

func TestCombineAverage(t *testing.T) {
	a, b, c := memberProfiles(t)
	g, err := CombineProfiles(CombineAverage, a, b, c)
	if err != nil {
		t.Fatal(err)
	}
	// comedy held by all three: (0.8+0.4+0.6)/3 = 0.6
	if doi, ok := findDoi(t, g, "GENRE.genre = 'comedy'"); !ok || math.Abs(doi-0.6) > 1e-12 {
		t.Errorf("comedy doi = %v, %v", doi, ok)
	}
	// drama held by one of three: 0.7/3
	if doi, ok := findDoi(t, g, "GENRE.genre = 'drama'"); !ok || math.Abs(doi-0.7/3) > 1e-12 {
		t.Errorf("drama doi = %v", doi)
	}
	// join preference combines too: (0.9+0.5)/3
	if doi, ok := findDoi(t, g, "MOVIE.mid = GENRE.mid"); !ok || math.Abs(doi-1.4/3) > 1e-12 {
		t.Errorf("join doi = %v", doi)
	}
}

func TestCombineMax(t *testing.T) {
	a, b, c := memberProfiles(t)
	g, err := CombineProfiles(CombineMax, a, b, c)
	if err != nil {
		t.Fatal(err)
	}
	if doi, _ := findDoi(t, g, "GENRE.genre = 'comedy'"); doi != 0.8 {
		t.Errorf("comedy max = %v", doi)
	}
	if doi, _ := findDoi(t, g, "GENRE.genre = 'drama'"); doi != 0.7 {
		t.Errorf("drama max = %v", doi)
	}
	if g.Len() != 4 {
		t.Errorf("group has %d prefs", g.Len())
	}
}

func TestCombineMinUnanimity(t *testing.T) {
	a, b, c := memberProfiles(t)
	g, err := CombineProfiles(CombineMin, a, b, c)
	if err != nil {
		t.Fatal(err)
	}
	// Only comedy is unanimous.
	if g.Len() != 1 {
		t.Fatalf("unanimous prefs = %d, want 1: %s", g.Len(), g.String())
	}
	if doi, _ := findDoi(t, g, "GENRE.genre = 'comedy'"); doi != 0.4 {
		t.Errorf("comedy min = %v", doi)
	}
}

func TestCombineErrors(t *testing.T) {
	if _, err := CombineProfiles(CombineAverage); err == nil {
		t.Error("zero profiles must fail")
	}
	a, _, _ := memberProfiles(t)
	if _, err := CombineProfiles(CombineMode(99), a); err == nil {
		t.Error("unknown mode must fail")
	}
}

func TestCombineSingleIsIdentityByMode(t *testing.T) {
	a, _, _ := memberProfiles(t)
	for _, mode := range []CombineMode{CombineAverage, CombineMax, CombineMin} {
		g, err := CombineProfiles(mode, a)
		if err != nil {
			t.Fatal(err)
		}
		if g.Len() != a.Len() {
			t.Errorf("%v: %d prefs, want %d", mode, g.Len(), a.Len())
		}
		for _, atom := range a.Atoms() {
			doi, ok := findDoi(t, g, atom.Condition())
			if !ok || math.Abs(doi-atom.Doi) > 1e-12 {
				t.Errorf("%v: %s doi %v, want %v", mode, atom.Condition(), doi, atom.Doi)
			}
		}
	}
}

func TestCombineModeString(t *testing.T) {
	for _, m := range []CombineMode{CombineAverage, CombineMax, CombineMin} {
		if m.String() == "" || strings.HasPrefix(m.String(), "CombineMode(") {
			t.Errorf("mode %d has no name", m)
		}
	}
	if !strings.HasPrefix(CombineMode(42).String(), "CombineMode(") {
		t.Error("unknown mode string")
	}
}
