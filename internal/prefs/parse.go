package prefs

import (
	"fmt"
	"strconv"
	"strings"

	"cqp/internal/query"
	"cqp/internal/schema"
	"cqp/internal/value"
)

// ParseProfile parses the text profile format of Figure 1 in the paper:
// one preference per line,
//
//	doi(GENRE.genre = 'musical') = 0.5
//	doi(MOVIE.did = DIRECTOR.did) = 1.0
//
// Blank lines and lines starting with '#' are skipped. A right-hand side of
// the form REL.attr makes the line a (directed) join preference; a literal
// makes it a selection preference.
func ParseProfile(src string) (*Profile, error) {
	p := NewProfile()
	for lineNo, line := range strings.Split(src, "\n") {
		t := strings.TrimSpace(line)
		if t == "" || strings.HasPrefix(t, "#") {
			continue
		}
		a, err := ParseAtomic(t)
		if err != nil {
			return nil, fmt.Errorf("prefs: line %d: %v", lineNo+1, err)
		}
		if err := p.Add(a); err != nil {
			return nil, fmt.Errorf("prefs: line %d: %v", lineNo+1, err)
		}
	}
	return p, nil
}

// ParseAtomic parses one "doi(<condition>) = <number>" line.
func ParseAtomic(line string) (Atomic, error) {
	t := strings.TrimSpace(line)
	if !strings.HasPrefix(strings.ToLower(t), "doi(") {
		return Atomic{}, fmt.Errorf("expected doi(...), got %q", line)
	}
	// Find the matching close parenthesis of doi( ... ), respecting quotes.
	body, rest, err := splitParen(t[len("doi("):])
	if err != nil {
		return Atomic{}, err
	}
	rest = strings.TrimSpace(rest)
	if !strings.HasPrefix(rest, "=") {
		return Atomic{}, fmt.Errorf("expected '= <doi>' after condition in %q", line)
	}
	doi, err := strconv.ParseFloat(strings.TrimSpace(rest[1:]), 64)
	if err != nil {
		return Atomic{}, fmt.Errorf("bad doi value in %q: %v", line, err)
	}
	cond, err := parseCondition(body)
	if err != nil {
		return Atomic{}, err
	}
	cond.Doi = doi
	return cond, nil
}

// splitParen splits "body) tail" into body and tail, honoring single-quoted
// strings in body.
func splitParen(s string) (body, tail string, err error) {
	inStr := false
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\'':
			inStr = !inStr
		case ')':
			if !inStr {
				return s[:i], s[i+1:], nil
			}
		}
	}
	return "", "", fmt.Errorf("unbalanced parenthesis in %q", s)
}

// parseCondition parses "attr op rhs" where rhs is an attribute reference
// (join) or a literal (selection).
func parseCondition(s string) (Atomic, error) {
	opIdx, opLen := findOp(s)
	if opIdx < 0 {
		return Atomic{}, fmt.Errorf("no comparison operator in condition %q", s)
	}
	lhs := strings.TrimSpace(s[:opIdx])
	opText := s[opIdx : opIdx+opLen]
	rhs := strings.TrimSpace(s[opIdx+opLen:])
	attr, err := schema.ParseAttrRef(lhs)
	if err != nil {
		return Atomic{}, err
	}
	op, err := query.ParseOp(opText)
	if err != nil {
		return Atomic{}, err
	}
	// Join if the RHS looks like Relation.attr (identifier.identifier).
	if isAttrRef(rhs) {
		if op != query.OpEq {
			return Atomic{}, fmt.Errorf("join preference must use '=', got %q", opText)
		}
		right, err := schema.ParseAttrRef(rhs)
		if err != nil {
			return Atomic{}, err
		}
		return Atomic{Join: &JoinCond{Left: attr, Right: right}}, nil
	}
	v, err := value.ParseLiteral(rhs)
	if err != nil {
		return Atomic{}, err
	}
	return Atomic{Sel: &SelectionCond{Attr: attr, Op: op, Value: v}}, nil
}

// findOp locates the first comparison operator outside quotes, preferring
// two-character operators.
func findOp(s string) (idx, length int) {
	inStr := false
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c == '\'' {
			inStr = !inStr
			continue
		}
		if inStr {
			continue
		}
		switch c {
		case '<':
			if i+1 < len(s) && (s[i+1] == '=' || s[i+1] == '>') {
				return i, 2
			}
			return i, 1
		case '>':
			if i+1 < len(s) && s[i+1] == '=' {
				return i, 2
			}
			return i, 1
		case '!':
			if i+1 < len(s) && s[i+1] == '=' {
				return i, 2
			}
		case '=':
			return i, 1
		}
	}
	return -1, 0
}

// isAttrRef reports whether s has the shape ident.ident (not a quoted or
// numeric literal).
func isAttrRef(s string) bool {
	if s == "" || s[0] == '\'' || s[0] == '-' || (s[0] >= '0' && s[0] <= '9') {
		return false
	}
	dot := strings.IndexByte(s, '.')
	if dot <= 0 || dot == len(s)-1 {
		return false
	}
	return !strings.ContainsAny(s, "' ")
}
