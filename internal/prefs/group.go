package prefs

import "fmt"

// Group profile support: the paper's introduction frames personalization
// for users "as individuals or members of particular groups". A group
// profile combines member profiles condition by condition, so a query can
// be personalized once for a family, a team, or a segment.

// CombineMode selects how the dois of a condition shared by several
// members combine.
type CombineMode uint8

const (
	// CombineAverage uses the mean doi over members that hold the
	// preference, scaled by the fraction of members holding it — a
	// consensus reading: a preference half the group holds at doi 0.8
	// enters the group profile at 0.4.
	CombineAverage CombineMode = iota
	// CombineMax uses the strongest member doi — an advocacy reading: one
	// enthusiast is enough to surface a preference.
	CombineMax
	// CombineMin uses the weakest doi among members that hold the
	// preference and drops conditions any member lacks entirely — a
	// unanimity reading.
	CombineMin
)

// String names the mode.
func (m CombineMode) String() string {
	switch m {
	case CombineAverage:
		return "average"
	case CombineMax:
		return "max"
	case CombineMin:
		return "min"
	default:
		return fmt.Sprintf("CombineMode(%d)", uint8(m))
	}
}

// CombineProfiles merges member profiles into one group profile under the
// given mode. Join preferences combine exactly like selections: their dois
// express how strongly related entities carry preference across, which is
// as member-dependent as value interest.
func CombineProfiles(mode CombineMode, members ...*Profile) (*Profile, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("prefs: combining zero profiles")
	}
	type acc struct {
		atom  Atomic
		sum   float64
		max   float64
		min   float64
		count int
	}
	var order []string
	byCond := make(map[string]*acc)
	for _, m := range members {
		for _, a := range m.Atoms() {
			key := a.Condition()
			e, ok := byCond[key]
			if !ok {
				e = &acc{atom: a, min: a.Doi}
				byCond[key] = e
				order = append(order, key)
			}
			e.sum += a.Doi
			e.count++
			if a.Doi > e.max {
				e.max = a.Doi
			}
			if a.Doi < e.min {
				e.min = a.Doi
			}
		}
	}
	out := NewProfile()
	n := float64(len(members))
	for _, key := range order {
		e := byCond[key]
		var doi float64
		switch mode {
		case CombineAverage:
			doi = e.sum / n // members without the preference contribute 0
		case CombineMax:
			doi = e.max
		case CombineMin:
			if e.count < len(members) {
				continue // unanimity: every member must hold it
			}
			doi = e.min
		default:
			return nil, fmt.Errorf("prefs: unknown combine mode %d", mode)
		}
		merged := e.atom
		merged.Doi = doi
		if err := out.Add(merged); err != nil {
			return nil, err
		}
	}
	return out, nil
}
